type ctx = {
  c_schema : Duodb.Schema.t;
  c_nlq : Duonl.Nlq.t;
  c_temperature : float;
  c_words : string list;  (* stemmed content words *)
  c_all_words : string list;  (* stemmed words incl. stopwords, for "or" etc. *)
  (* per-column raw evidence, precomputed once: expansion calls the column
     modules thousands of times per synthesis *)
  c_base_scores : (Duodb.Schema.column * float) list;
  c_where_scores : (Duodb.Schema.column * float) list;
}

let make ?(temperature = 1.0) ?index schema nlq =
  (* Re-ground literals when an index is supplied and the NLQ lacks
     groundings. *)
  let nlq =
    match index with
    | None -> nlq
    | Some idx ->
        let ground l =
          match l.Duonl.Nlq.lit_value with
          | Duodb.Value.Text s when l.Duonl.Nlq.lit_columns = [] ->
              { l with
                Duonl.Nlq.lit_columns =
                  List.map
                    (fun h -> (h.Duodb.Index.hit_table, h.Duodb.Index.hit_column))
                    (Duodb.Index.lookup idx s) }
          | Duodb.Value.Null | Duodb.Value.Int _ | Duodb.Value.Float _
          | Duodb.Value.Text _ ->
              l
        in
        { nlq with Duonl.Nlq.literals = List.map ground nlq.Duonl.Nlq.literals }
  in
  let c_words = Duonl.Nlq.content_words nlq in
  let grounded = List.concat_map (fun l -> l.Duonl.Nlq.lit_columns) nlq.Duonl.Nlq.literals in
  let has_numeric_lit =
    List.exists (fun l -> Duodb.Value.is_numeric l.Duonl.Nlq.lit_value) nlq.Duonl.Nlq.literals
  in
  let fk_columns =
    List.concat_map
      (fun e ->
        [ (e.Duodb.Schema.fk_table, e.Duodb.Schema.fk_column);
          (e.Duodb.Schema.pk_table, e.Duodb.Schema.pk_column) ])
      schema.Duodb.Schema.foreign_keys
  in
  let base_score col =
    let sim = Score.column_similarity ~nlq_words:c_words col in
    (* users rarely ask for key columns by name *)
    let key_penalty =
      if
        Duodb.Schema.is_pk_column schema ~table:col.Duodb.Schema.col_table
          col.Duodb.Schema.col_name
        || List.mem (col.Duodb.Schema.col_table, col.Duodb.Schema.col_name) fk_columns
      then -1.0
      else 0.0
    in
    (3.0 *. sim) +. key_penalty
  in
  let where_score col =
    let ground_bonus =
      if
        List.exists
          (fun (tb, cn) ->
            String.equal tb col.Duodb.Schema.col_table
            && String.equal cn col.Duodb.Schema.col_name)
          grounded
      then 2.5
      else 0.0
    in
    let numeric_bonus =
      if has_numeric_lit
         && Duodb.Datatype.equal col.Duodb.Schema.col_type Duodb.Datatype.Number
      then 0.7
      else 0.0
    in
    base_score col +. ground_bonus +. numeric_bonus
  in
  let all_cols = Duodb.Schema.all_columns schema in
  {
    c_schema = schema;
    c_nlq = nlq;
    c_temperature = temperature;
    c_words;
    c_all_words = Duonl.Token.words nlq.Duonl.Nlq.tokens;
    c_base_scores = List.map (fun c -> (c, base_score c)) all_cols;
    c_where_scores = List.map (fun c -> (c, where_score c)) all_cols;
  }

let schema t = t.c_schema
let nlq t = t.c_nlq

let norm t cands = Score.normalize ~temperature:t.c_temperature cands

(* --- KW module --- *)

type kw_set = {
  kw_where : bool;
  kw_group : bool;
  kw_order : bool;
}

let keywords t =
  let w = t.c_words in
  let has_literals = t.c_nlq.Duonl.Nlq.literals <> [] in
  let where_ev =
    Hints.where_signal w +. (if has_literals then 1.5 else 0.0)
  in
  let group_ev =
    Hints.group_signal w
    +. (let _, c, s, a, _, _ = Hints.agg_signals w in
        (* aggregate phrasing next to an entity word often implies grouping *)
        0.4 *. (c +. s +. a))
  in
  let order_ev = Hints.order_signal w in
  let base = 0.6 in
  let score set =
    (if set.kw_where then where_ev else base)
    +. (if set.kw_group then group_ev else base)
    +. if set.kw_order then order_ev else base
  in
  let all =
    List.concat_map
      (fun wh ->
        List.concat_map
          (fun gr ->
            List.map
              (fun ord -> { kw_where = wh; kw_group = gr; kw_order = ord })
              [ false; true ])
          [ false; true ])
      [ false; true ]
  in
  norm t (List.map (fun s -> (s, score s)) all)

(* --- COL module --- *)

type col_target =
  | Target_column of Duodb.Schema.column
  | Target_count_star

let equal_column (a : Duodb.Schema.column) (b : Duodb.Schema.column) =
  String.equal a.Duodb.Schema.col_table b.Duodb.Schema.col_table
  && String.equal a.Duodb.Schema.col_name b.Duodb.Schema.col_name

let equal_target a b =
  match a, b with
  | Target_count_star, Target_count_star -> true
  | Target_column x, Target_column y -> equal_column x y
  | Target_count_star, Target_column _ | Target_column _, Target_count_star -> false

let projection_targets ?out t ~used =
  let _, count_ev, _, _, _, _ = Hints.agg_signals t.c_words in
  let cands =
    (Target_count_star, count_ev -. 0.5)
    :: List.map (fun (c, s) -> (Target_column c, s)) t.c_base_scores
  in
  let cands =
    List.filter (fun (c, _) -> not (List.exists (equal_target c) used)) cands
  in
  (* When the TSQ annotates this slot's output type, drop targets no
     aggregate choice can reconcile with it: a star-count is always
     numeric, and a numeric column stays numeric under every aggregate.
     A text column still admits a numeric annotation via COUNT, so it
     survives here and is settled by [aggregates]. *)
  let cands =
    match out with
    | None -> cands
    | Some want ->
        List.filter
          (fun (tgt, _) ->
            match tgt, want with
            | Target_count_star, Duodb.Datatype.Number -> true
            | Target_count_star, Duodb.Datatype.Text -> false
            | Target_column c, Duodb.Datatype.Text ->
                Duodb.Datatype.equal c.Duodb.Schema.col_type Duodb.Datatype.Text
            | Target_column _, Duodb.Datatype.Number -> true)
          cands
  in
  norm t cands

let num_projections t ~hint =
  match hint with
  | Some h when 1 <= h && h <= 4 ->
      (* The TSQ's width is definitional, not a preference: a candidate
         with any other projection count can never satisfy the table
         sketch, so the enumerator proposes exactly the hinted width
         instead of spending pushes on arities the cascade must kill. *)
      norm t [ (h, 0.0) ]
  | Some _ | None ->
      let base = [| 0.0; 1.2; 0.8; 0.2; -0.4 |] in
      (* Name-similar columns raise the expected projection width. *)
      let similar =
        List.filter
          (fun c -> Score.column_similarity ~nlq_words:t.c_words c > 0.45)
          (Duodb.Schema.all_columns t.c_schema)
      in
      let expected = min 4 (max 1 (List.length similar)) in
      let cands =
        List.init 4 (fun i ->
            let n = i + 1 in
            (n, base.(n) +. if n = expected then 0.8 else 0.0))
      in
      norm t cands

let where_columns t ~used =
  let cands =
    List.filter (fun (c, _) -> not (List.exists (equal_column c) used)) t.c_where_scores
  in
  norm t cands

let group_columns t ~projected =
  let cands =
    List.map
      (fun (c, s) ->
        let proj_bonus = if List.exists (equal_column c) projected then 2.0 else 0.0 in
        (c, s +. proj_bonus))
      t.c_base_scores
  in
  norm t cands

(* --- AGG module --- *)

let aggregates ?out t ty =
  let none, count, sum, avg, mx, mn = Hints.agg_signals t.c_words in
  let cands =
    match ty with
    | Duodb.Datatype.Text -> [ (None, none +. 1.0); (Some Duosql.Ast.Count, count) ]
    | Duodb.Datatype.Number ->
        [
          (None, none +. 0.6);
          (Some Duosql.Ast.Count, count -. 0.3);
          (Some Duosql.Ast.Sum, sum);
          (Some Duosql.Ast.Avg, avg);
          (Some Duosql.Ast.Min, mn);
          (Some Duosql.Ast.Max, mx);
        ]
  in
  (* TSQ-annotated output type for the slot: keep only aggregates whose
     result type matches (COUNT/SUM/AVG produce numbers; MIN/MAX and the
     identity keep the column's type). *)
  let cands =
    match out with
    | None -> cands
    | Some want ->
        List.filter
          (fun (agg, _) ->
            let produced =
              match agg with
              | Some (Duosql.Ast.Count | Duosql.Ast.Sum | Duosql.Ast.Avg) ->
                  Duodb.Datatype.Number
              | Some (Duosql.Ast.Min | Duosql.Ast.Max) | None -> ty
            in
            Duodb.Datatype.equal produced want)
          cands
  in
  norm t cands

(* --- OP module --- *)

type op_shape =
  | Shape_cmp of Duosql.Ast.cmp
  | Shape_between

let operators t ty =
  let s = Hints.op_signals t.c_all_words in
  let numeric_lits = Duonl.Nlq.numeric_literals t.c_nlq in
  match ty with
  | Duodb.Datatype.Text ->
      norm t
        [
          (Shape_cmp Duosql.Ast.Eq, s.(0) +. 1.0);
          (Shape_cmp Duosql.Ast.Neq, s.(1) -. 0.5);
          (Shape_cmp Duosql.Ast.Like, s.(6) -. 0.3);
          (Shape_cmp Duosql.Ast.Not_like, s.(7) -. 0.8);
        ]
  | Duodb.Datatype.Number ->
      let between_ev =
        if List.length numeric_lits >= 2 then
          0.4 +. Hints.count_matches t.c_words [ "between"; "within" ]
        else -2.0
      in
      norm t
        [
          (Shape_cmp Duosql.Ast.Eq, s.(0));
          (Shape_cmp Duosql.Ast.Neq, s.(1) -. 0.5);
          (Shape_cmp Duosql.Ast.Lt, s.(2));
          (Shape_cmp Duosql.Ast.Le, s.(3) -. 0.3);
          (Shape_cmp Duosql.Ast.Gt, s.(4));
          (Shape_cmp Duosql.Ast.Ge, s.(5) -. 0.3);
          (Shape_between, between_ev);
        ]

(* --- Value assignment --- *)

let values t col =
  let lits = t.c_nlq.Duonl.Nlq.literals in
  let is_text = Duodb.Datatype.equal col.Duodb.Schema.col_type Duodb.Datatype.Text in
  let cands =
    List.filter_map
      (fun l ->
        match l.Duonl.Nlq.lit_value with
        | Duodb.Value.Text _ when is_text ->
            let bonus =
              if
                List.exists
                  (fun (tb, cn) ->
                    String.equal tb col.Duodb.Schema.col_table
                    && String.equal cn col.Duodb.Schema.col_name)
                  l.Duonl.Nlq.lit_columns
              then 2.0
              else if l.Duonl.Nlq.lit_columns = [] then 0.0
              else -1.0  (* grounded elsewhere *)
            in
            Some (l.Duonl.Nlq.lit_value, 1.0 +. bonus)
        | (Duodb.Value.Int _ | Duodb.Value.Float _) when not is_text ->
            Some (l.Duonl.Nlq.lit_value, 1.0)
        | Duodb.Value.Text _ | Duodb.Value.Int _ | Duodb.Value.Float _
        | Duodb.Value.Null ->
            None)
      lits
  in
  match cands with [] -> [] | _ -> norm t cands

let value_ranges t =
  let nums = List.sort_uniq Duodb.Value.compare (Duonl.Nlq.numeric_literals t.c_nlq) in
  let rec pairs = function
    | [] -> []
    | lo :: rest -> List.map (fun hi -> (lo, hi)) rest @ pairs rest
  in
  pairs nums

let num_predicates t =
  let lit_count = List.length t.c_nlq.Duonl.Nlq.literals in
  let cands =
    List.init 3 (fun i ->
        let n = i + 1 in
        let s = if n <= lit_count then 1.0 else -0.5 -. float_of_int (n - lit_count) in
        (n, s +. if n = 1 then 0.3 else 0.0))
  in
  norm t cands

(* --- AND/OR module --- *)

let connective t =
  let or_ev = Hints.or_signal t.c_all_words in
  norm t [ (Duosql.Ast.And, 1.0); (Duosql.Ast.Or, or_ev -. 0.3) ]

(* --- HAVING module --- *)

let having_presence t =
  let ev = Hints.having_signal t.c_words in
  norm t [ (false, 1.0); (true, ev -. 0.4) ]

(* --- DESC/ASC module --- *)

let direction t =
  let desc_ev = Hints.descending_signal t.c_words in
  norm t [ (Duosql.Ast.Asc, 0.6); (Duosql.Ast.Desc, desc_ev) ]

let limit t ~hint =
  let limit_ev = Hints.limit_signal t.c_words in
  let nums =
    List.filter_map
      (function
        | Duodb.Value.Int n when n > 0 && n <= 1000 -> Some n
        | Duodb.Value.Null | Duodb.Value.Int _ | Duodb.Value.Float _
        | Duodb.Value.Text _ ->
            None)
      (Duonl.Nlq.numeric_literals t.c_nlq)
  in
  let cands =
    (None, 1.0 -. limit_ev)
    :: (Some 1, limit_ev -. 0.2)
    :: List.map (fun n -> (Some n, limit_ev -. 0.4)) (List.sort_uniq compare nums)
  in
  let cands =
    match hint with
    | Some k ->
        List.map (fun (c, s) -> (c, if c = Some k then s +. 3.0 else s)) cands
        |> fun l -> if List.mem_assoc (Some k) l then l else (Some k, 2.5) :: l
    | None -> cands
  in
  norm t cands

let order_targets t ~projected =
  let order_words = t.c_words in
  let proj_cands =
    List.map
      (fun (agg, col) ->
        let sim =
          match col with
          | Some c -> Score.column_similarity ~nlq_words:order_words c
          | None -> 0.0
        in
        ((agg, col), 1.0 +. sim))
      projected
  in
  (* Non-projected numeric columns can also order results (e.g. "from
     earliest"), and COUNT of all rows orders grouped queries. *)
  let extra =
    List.filter_map
      (fun c ->
        if Duodb.Datatype.equal c.Duodb.Schema.col_type Duodb.Datatype.Number
           && not (List.exists (fun (_, pc) -> match pc with Some p -> equal_column p c | None -> false) projected)
        then
          let sim = Score.column_similarity ~nlq_words:order_words c in
          if sim > 0.3 then Some ((None, Some c), 0.2 +. sim) else None
        else None)
      (Duodb.Schema.all_columns t.c_schema)
  in
  let count_cand =
    let _, count_ev, _, _, _, _ = Hints.agg_signals t.c_words in
    [ ((Some Duosql.Ast.Count, None), count_ev -. 0.5) ]
  in
  norm t (proj_cands @ extra @ count_cand)
