(** The guidance model: Duoquest's substitute for SyntaxSQLNet's neural
    modules (Table 3 of the paper).

    Each function mirrors one SyntaxSQLNet module: given the NLQ and the
    schema it returns {e all} candidate output classes for one inference
    decision, each with a softmax probability.  Probabilities over the
    candidates of a single decision sum to 1, which gives the enumerator the
    paper's Property 1 (the children of a state partition its confidence
    mass).

    The model is deliberately imperfect: it scores candidates from lexical
    evidence (name similarity, hint words, literal grounding), so ambiguous
    NLQs produce genuinely ambiguous distributions — the regime in which
    the TSQ's pruning earns its keep. *)

type ctx

(** [make ?temperature ?index schema nlq] prepares a scoring context.
    [temperature] flattens (>1) or sharpens (<1) all distributions;
    [index] enables grounding text literals to columns. *)
val make :
  ?temperature:float ->
  ?index:Duodb.Index.t ->
  Duodb.Schema.t ->
  Duonl.Nlq.t ->
  ctx

val schema : ctx -> Duodb.Schema.t
val nlq : ctx -> Duonl.Nlq.t

(** {1 KW module} *)

type kw_set = {
  kw_where : bool;
  kw_group : bool;
  kw_order : bool;
}

(** All 8 clause subsets, with probabilities. *)
val keywords : ctx -> (kw_set * float) list

(** {1 COL module} *)

(** A projection target: a real column or [COUNT] of all rows. *)
type col_target =
  | Target_column of Duodb.Schema.column
  | Target_count_star

(** Candidate projection targets, excluding [used] ones.  [out] is the
    TSQ's type annotation for the slot being filled: targets that no
    aggregate choice could reconcile with it are dropped before
    normalization, so the enumerator never spends a push on them. *)
val projection_targets :
  ?out:Duodb.Datatype.t ->
  ctx ->
  used:col_target list ->
  (col_target * float) list

(** Number of projected columns (1..4).  [hint] biases toward the TSQ's
    column count when the sketch provides one. *)
val num_projections : ctx -> hint:int option -> (int * float) list

(** Candidate columns for a WHERE predicate; columns grounded by a literal
    value score higher. Excludes [used]. *)
val where_columns :
  ctx -> used:Duodb.Schema.column list -> (Duodb.Schema.column * float) list

(** Candidate GROUP BY columns; projected plain columns score higher. *)
val group_columns :
  ctx -> projected:Duodb.Schema.column list -> (Duodb.Schema.column * float) list

(** {1 AGG module} *)

(** Aggregate options for a projection target of the given type: text
    columns admit [None]/[Count]; numeric columns admit all six.  [out]
    restricts to aggregates producing the TSQ-annotated output type. *)
val aggregates :
  ?out:Duodb.Datatype.t ->
  ctx ->
  Duodb.Datatype.t ->
  (Duosql.Ast.agg option * float) list

(** {1 OP module} *)

(** Predicate shapes for a column: comparison operators applicable to the
    column type, plus BETWEEN when two numeric literals could bound it.
    Returned shapes are abstract (the value module fills the literal). *)
type op_shape =
  | Shape_cmp of Duosql.Ast.cmp
  | Shape_between

val operators : ctx -> Duodb.Datatype.t -> (op_shape * float) list

(** {1 Value assignment} *)

(** Literal candidates for a predicate on [col]: text literals grounded to
    the column score highest; numeric literals are offered to numeric
    columns.  Returns an empty list when no compatible literal exists. *)
val values :
  ctx -> Duodb.Schema.column -> (Duodb.Value.t * float) list

(** Ordered pairs (lo, hi) of numeric literals for BETWEEN. *)
val value_ranges : ctx -> (Duodb.Value.t * Duodb.Value.t) list

(** Number of WHERE predicates (1..3). *)
val num_predicates : ctx -> (int * float) list

(** {1 AND/OR module} *)

val connective : ctx -> (Duosql.Ast.connective * float) list

(** {1 HAVING module} *)

val having_presence : ctx -> (bool * float) list

(** {1 DESC/ASC module} *)

val direction : ctx -> (Duosql.Ast.dir * float) list

(** LIMIT candidates: [None] (no limit) and plausible [Some k] values from
    the NLQ's numeric tokens or 1 under superlative phrasing.  [hint]
    biases toward the TSQ's limit when provided. *)
val limit : ctx -> hint:int option -> (int option * float) list

(** ORDER BY targets: projected items plus aggregates on numeric columns. *)
val order_targets :
  ctx ->
  projected:(Duosql.Ast.agg option * Duodb.Schema.column option) list ->
  ((Duosql.Ast.agg option * Duodb.Schema.column option) * float) list
