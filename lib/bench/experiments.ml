module Enumerate = Duocore.Enumerate
module Simulation_ = Simulation

type scale =
  [ `Full
  | `Quick
  ]

type runs = {
  r_dq : Simulation.per_task list Lazy.t;  (** Duoquest, Full TSQ *)
  r_dq_partial : Simulation.per_task list Lazy.t;
  r_dq_minimal : Simulation.per_task list Lazy.t;
  r_nli : Simulation.per_task list Lazy.t;
  r_pbe : (Spider_gen.task * Simulation.pbe_status) list Lazy.t;
  r_noguide : Simulation.per_task list Lazy.t;
  r_nopq : Simulation.per_task list Lazy.t;
}

type t = {
  scale : scale;
  dev : Spider_gen.split Lazy.t;
  test : Spider_gen.split Lazy.t;
  dev_runs : runs;
  test_runs : runs;
  nli_study : Study.study Lazy.t;
  pbe_study : Study.study Lazy.t;
}

let make_runs ?pool split =
  let detail d = Some d in
  {
    r_dq =
      lazy (Simulation.run_split ?pool ~mode:`Duoquest ~detail:(detail Tsq_synth.Full) (Lazy.force split));
    r_dq_partial =
      lazy (Simulation.run_split ?pool ~mode:`Duoquest ~detail:(detail Tsq_synth.Partial) (Lazy.force split));
    r_dq_minimal =
      lazy (Simulation.run_split ?pool ~mode:`Duoquest ~detail:(detail Tsq_synth.Minimal) (Lazy.force split));
    r_nli = lazy (Simulation.run_split ?pool ~mode:`Nli ~detail:None (Lazy.force split));
    r_pbe = lazy (Simulation.run_pbe ?pool (Lazy.force split));
    r_noguide =
      lazy (Simulation.run_split ?pool ~mode:`No_guide ~detail:(detail Tsq_synth.Full) (Lazy.force split));
    r_nopq =
      lazy (Simulation.run_split ?pool ~mode:`No_pq ~detail:(detail Tsq_synth.Full) (Lazy.force split));
  }

(* [pool] shards split generation and every simulation run across its
   domains (per-task results and generated splits stay bit-identical to
   the sequential path; see Simulation/Spider_gen).  The caller owns the
   pool's lifetime — runs are lazy, so the pool must outlive the last
   [Lazy.force] on this value. *)
let create ?(scale = `Full) ?pool () =
  let dev =
    lazy
      (match scale with
      | `Full -> Spider_gen.dev ?pool ()
      | `Quick -> Spider_gen.mini ~seed:11 ?pool ~n_dbs:4 ~per_db:9 ())
  in
  let test =
    lazy
      (match scale with
      | `Full -> Spider_gen.test ?pool ()
      | `Quick -> Spider_gen.mini ~seed:22 ?pool ~n_dbs:6 ~per_db:9 ())
  in
  {
    scale;
    dev;
    test;
    dev_runs = make_runs ?pool dev;
    test_runs = make_runs ?pool test;
    nli_study = lazy (Study.nli_study ());
    pbe_study = lazy (Study.pbe_study ());
  }

(* --- rendering helpers --- *)

let pct num den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let bar ppf fraction =
  let width = 30 in
  let n = int_of_float (fraction /. 100.0 *. float_of_int width) in
  let n = max 0 (min width n) in
  Format.fprintf ppf "%s%s" (String.make n '#') (String.make (width - n) '.')

let header ppf title = Format.fprintf ppf "@.=== %s ===@." title

(* --- experiments --- *)

let table1 _t ppf =
  header ppf "Table 1: Duoquest vs NLI/PBE capability matrix";
  Format.fprintf ppf "%s@." (Duocore.Capability.to_string ())

let table4 _t ppf =
  header ppf "Table 4: semantic pruning rules (each example must be rejected)";
  let db = Movies.database () in
  let schema = Duodb.Database.schema db in
  List.iter
    (fun (name, example, alternative) ->
      let verdict =
        match Duosql.Parser.query ~schema example with
        | Error e -> Printf.sprintf "parse error (%s)" e
        | Ok q -> (
            match Duocore.Semantics.check_query schema q with
            | Error v -> "rejected: " ^ Duocore.Semantics.violation_to_string v
            | Ok () -> "NOT REJECTED (bug)")
      in
      let alt_verdict =
        if alternative = "N/A" then "n/a"
        else
          match Duosql.Parser.query ~schema alternative with
          | Error e -> Printf.sprintf "parse error (%s)" e
          | Ok q -> (
              match Duocore.Semantics.check_query schema q with
              | Ok () -> "accepted"
              | Error v -> "REJECTED (bug): " ^ Duocore.Semantics.violation_to_string v)
      in
      Format.fprintf ppf "%-32s  example %-28s alternative %s@." name verdict alt_verdict)
    Duocore.Semantics.catalogue

let count_diff tasks d =
  List.length
    (List.filter (fun t -> t.Spider_gen.sp_difficulty = d) tasks)

let table5 t ppf =
  header ppf "Table 5: datasets";
  Format.fprintf ppf "%-14s %4s %5s %5s %5s %6s %7s %8s %6s@." "Dataset" "DBs"
    "Easy" "Med" "Hard" "Total" "Tables" "Columns" "FK-PK";
  let mas = Mas.schema in
  Format.fprintf ppf "%-14s %4d %5s %5d %5d %6d %7d %8d %6d@." "MAS (studies)" 1
    "0"
    (List.length
       (List.filter (fun (x : Mas.task) -> x.Mas.task_level = Mas.Medium)
          (Mas.nli_study_tasks @ Mas.pbe_study_tasks)))
    (List.length
       (List.filter (fun (x : Mas.task) -> x.Mas.task_level = Mas.Hard)
          (Mas.nli_study_tasks @ Mas.pbe_study_tasks)))
    (List.length (Mas.nli_study_tasks @ Mas.pbe_study_tasks))
    (Duodb.Schema.num_tables mas) (Duodb.Schema.num_columns mas)
    (Duodb.Schema.num_foreign_keys mas);
  List.iter
    (fun split ->
      let split = Lazy.force split in
      let tb, cols, fk = Spider_gen.schema_stats split in
      Format.fprintf ppf "%-14s %4d %5d %5d %5d %6d %7.1f %8.1f %6.1f@."
        split.Spider_gen.split_name
        (List.length split.Spider_gen.databases)
        (count_diff split.Spider_gen.tasks `Easy)
        (count_diff split.Spider_gen.tasks `Medium)
        (count_diff split.Spider_gen.tasks `Hard)
        (List.length split.Spider_gen.tasks)
        tb cols fk)
    [ t.dev; t.test ]

let fig_success t ppf ~title study_lazy baseline_label =
  header ppf title;
  let study = Lazy.force study_lazy in
  ignore t;
  Format.fprintf ppf "%-6s %-10s %-9s %s@." "Task" "System" "%success" "";
  List.iter
    (fun arm ->
      let label =
        if arm.Study.arm_system = "baseline" then baseline_label else arm.Study.arm_system
      in
      let rate = 100.0 *. Study.success_rate arm in
      Format.fprintf ppf "%-6s %-10s %8.1f%% %a@." arm.Study.arm_task label rate bar rate)
    study.Study.arms

let fig_time t ppf ~title study_lazy baseline_label =
  header ppf title;
  let study = Lazy.force study_lazy in
  ignore t;
  Format.fprintf ppf "%-6s %-10s %-12s@." "Task" "System" "mean time(s)";
  List.iter
    (fun arm ->
      let label =
        if arm.Study.arm_system = "baseline" then baseline_label else arm.Study.arm_system
      in
      match Study.mean_success_time arm with
      | Some m -> Format.fprintf ppf "%-6s %-10s %10.1f  %a@." arm.Study.arm_task label m bar (m /. 3.0)
      | None -> Format.fprintf ppf "%-6s %-10s %10s@." arm.Study.arm_task label "(no successful trials)")
    study.Study.arms

let fig9 t ppf =
  header ppf "Figure 9: mean # examples per successful trial (PBE study)";
  let study = Lazy.force t.pbe_study in
  Format.fprintf ppf "%-6s %-10s %-10s@." "Task" "System" "mean #ex";
  List.iter
    (fun arm ->
      let label = if arm.Study.arm_system = "baseline" then "PBE" else arm.Study.arm_system in
      match Study.mean_examples arm with
      | Some m -> Format.fprintf ppf "%-6s %-10s %8.2f@." arm.Study.arm_task label m
      | None -> Format.fprintf ppf "%-6s %-10s %8s@." arm.Study.arm_task label "-")
    study.Study.arms

let pbe_counts results =
  let count st = List.length (List.filter (fun (_, s) -> s = st) results) in
  (count Simulation_.Pbe_correct, count Simulation_.Pbe_unsupported)

let fig10_split ppf name runs total =
  let dq = Lazy.force runs.r_dq and nli = Lazy.force runs.r_nli in
  let pbe = Lazy.force runs.r_pbe in
  let correct, unsupported = pbe_counts pbe in
  Format.fprintf ppf "@.%s (%d tasks)@." name total;
  Format.fprintf ppf "%-8s %10s %10s %10s %12s@." "System" "Top-1" "Top-10" "Correct" "Unsupported";
  let line sys results =
    let t1 = Simulation.top_k_count results 1 in
    let t10 = Simulation.top_k_count results 10 in
    Format.fprintf ppf "%-8s %4d/%4.1f%% %4d/%4.1f%% %10s %12s@." sys t1
      (pct t1 total) t10 (pct t10 total) "-" "-"
  in
  line "Duoquest" dq;
  line "NLI" nli;
  Format.fprintf ppf "%-8s %10s %10s %4d/%4.1f%% %5d/%4.1f%%@." "PBE" "-" "-" correct
    (pct correct total) unsupported (pct unsupported total)

let fig10 t ppf =
  header ppf "Figure 10: top-1/top-10 accuracy (simulation study)";
  fig10_split ppf "Spider-like Dev" t.dev_runs
    (List.length (Lazy.force t.dev).Spider_gen.tasks);
  fig10_split ppf "Spider-like Test" t.test_runs
    (List.length (Lazy.force t.test).Spider_gen.tasks)

let fig11_split ppf name runs split =
  Format.fprintf ppf "@.%s@." name;
  Format.fprintf ppf "%-8s | %14s | %14s | %14s@." "System" "Easy" "Medium" "Hard";
  let dq = Lazy.force runs.r_dq and nli = Lazy.force runs.r_nli in
  let pbe = Lazy.force runs.r_pbe in
  let diff_total d = count_diff split.Spider_gen.tasks d in
  let line sys results =
    Format.fprintf ppf "%-8s" sys;
    List.iter
      (fun d ->
        let sub = Simulation.by_difficulty results d in
        let ok = Simulation.top_k_count sub 10 in
        Format.fprintf ppf " | %4d (%5.1f%%)" ok (pct ok (diff_total d)))
      [ `Easy; `Medium; `Hard ];
    Format.fprintf ppf "@."
  in
  line "Duoquest" dq;
  line "NLI" nli;
  Format.fprintf ppf "%-8s" "PBE";
  List.iter
    (fun d ->
      let sub =
        List.filter (fun (task, _) -> task.Spider_gen.sp_difficulty = d) pbe
      in
      let ok = List.length (List.filter (fun (_, s) -> s = Simulation_.Pbe_correct) sub) in
      let unsup =
        List.length (List.filter (fun (_, s) -> s = Simulation_.Pbe_unsupported) sub)
      in
      Format.fprintf ppf " | %3d ok %3d un" ok unsup)
    [ `Easy; `Medium; `Hard ];
  Format.fprintf ppf "@."

let fig11 t ppf =
  header ppf "Figure 11: correctness by difficulty (top-10 for Dq/NLI)";
  fig11_split ppf "Spider-like Dev" t.dev_runs (Lazy.force t.dev);
  fig11_split ppf "Spider-like Test" t.test_runs (Lazy.force t.test)

let fig12_curve ppf label results =
  let buckets = [ 0.001; 0.002; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2; 0.5; 1.0; 2.0; 3.0 ] in
  Format.fprintf ppf "%-9s" label;
  List.iter
    (fun b ->
      Format.fprintf ppf " %5.1f" (100.0 *. Simulation.completed_within results b))
    buckets;
  Format.fprintf ppf "@."

let fig12 t ppf =
  header ppf "Figure 12: % of tasks whose gold query was synthesized within t seconds";
  Format.fprintf ppf
    "(wall-clock, as on the paper's 60 s axis; the in-memory engine compresses the scale)@.";
  List.iter
    (fun (name, runs) ->
      Format.fprintf ppf "@.%s@." name;
      Format.fprintf ppf "%-9s" "t(s) =";
      List.iter
        (fun b -> Format.fprintf ppf " %5g" b)
        [ 0.001; 0.002; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2; 0.5; 1.0; 2.0; 3.0 ];
      Format.fprintf ppf "@.";
      fig12_curve ppf "Duoquest" (Lazy.force runs.r_dq);
      fig12_curve ppf "NoPQ" (Lazy.force runs.r_nopq);
      fig12_curve ppf "NoGuide" (Lazy.force runs.r_noguide))
    [ ("Spider-like Dev", t.dev_runs); ("Spider-like Test", t.test_runs) ]

let table6_split ppf name runs total =
  Format.fprintf ppf "@.%s@." name;
  Format.fprintf ppf "%-9s %7s %7s %8s@." "Detail" "Top-1" "Top-10" "Top-100";
  let line label results =
    let v k = pct (Simulation.top_k_count results k) total in
    Format.fprintf ppf "%-9s %6.1f%% %6.1f%% %7.1f%%@." label (v 1) (v 10) (v 100)
  in
  line "Full" (Lazy.force runs.r_dq);
  line "Partial" (Lazy.force runs.r_dq_partial);
  line "Minimal" (Lazy.force runs.r_dq_minimal);
  line "NLI" (Lazy.force runs.r_nli)

let table6 t ppf =
  header ppf "Table 6: exact-match accuracy vs TSQ specification detail";
  table6_split ppf "Spider-like Dev" t.dev_runs
    (List.length (Lazy.force t.dev).Spider_gen.tasks);
  table6_split ppf "Spider-like Test" t.test_runs
    (List.length (Lazy.force t.test).Spider_gen.tasks)

let tasks_table ppf title tasks =
  header ppf title;
  let db = Mas.database () in
  List.iter
    (fun (task : Mas.task) ->
      let gold = Mas.gold task in
      let rows =
        match Duoengine.Executor.run db gold with
        | Ok res -> Duoengine.Executor.cardinality res
        | Error _ -> -1
      in
      Format.fprintf ppf "@.%s [%s] (%d result rows)@.  NLQ: %s@.  SQL: %s@."
        task.Mas.task_id
        (Mas.level_to_string task.Mas.task_level)
        rows task.Mas.task_nlq
        (Duosql.Pretty.query gold))
    tasks

let table7 _t ppf = tasks_table ppf "Table 7: user study tasks vs NLI" Mas.nli_study_tasks
let table8 _t ppf = tasks_table ppf "Table 8: user study tasks vs PBE" Mas.pbe_study_tasks

(* --- ablations beyond the paper's (design choices in DESIGN.md) --- *)

let ablation_cascade t ppf =
  header ppf "Ablation: verification-cascade stage attribution";
  Format.fprintf ppf
    "Prunes by stage over the dev split (cheap stages run first; the bulk@.\
     of pruning happening in the cheap stages is what makes the@.\
     ascending-cost order pay off):@.";
  let split = Lazy.force t.dev in
  let sample = List.filteri (fun i _ -> i mod 5 = 0) split.Spider_gen.tasks in
  let sessions = Hashtbl.create 16 in
  List.iter
    (fun (name, db) -> Hashtbl.replace sessions name (Duocore.Duoquest.create_session db))
    split.Spider_gen.databases;
  let totals = Duocore.Verify.new_stats () in
  let rng = Rng.create 555 in
  List.iter
    (fun (task : Spider_gen.task) ->
      let session = Hashtbl.find sessions task.Spider_gen.sp_db in
      let db = Duocore.Duoquest.session_db session in
      let tsq = Tsq_synth.synthesize rng db task.Spider_gen.sp_gold ~detail:Tsq_synth.Full in
      let outcome =
        Duocore.Duoquest.synthesize ~config:Simulation.sim_config ?tsq
          ~literals:task.Spider_gen.sp_literals session ~nlq:task.Spider_gen.sp_nlq ()
      in
      let s = outcome.Enumerate.out_stats in
      totals.Duocore.Verify.pruned_by_static <-
        totals.Duocore.Verify.pruned_by_static + s.Duocore.Verify.pruned_by_static;
      totals.Duocore.Verify.static_warnings <-
        totals.Duocore.Verify.static_warnings + s.Duocore.Verify.static_warnings;
      totals.Duocore.Verify.pruned_by_clauses <-
        totals.Duocore.Verify.pruned_by_clauses + s.Duocore.Verify.pruned_by_clauses;
      totals.Duocore.Verify.pruned_by_semantics <-
        totals.Duocore.Verify.pruned_by_semantics + s.Duocore.Verify.pruned_by_semantics;
      totals.Duocore.Verify.pruned_by_types <-
        totals.Duocore.Verify.pruned_by_types + s.Duocore.Verify.pruned_by_types;
      totals.Duocore.Verify.pruned_by_column <-
        totals.Duocore.Verify.pruned_by_column + s.Duocore.Verify.pruned_by_column;
      totals.Duocore.Verify.pruned_by_row <-
        totals.Duocore.Verify.pruned_by_row + s.Duocore.Verify.pruned_by_row;
      totals.Duocore.Verify.pruned_by_complete <-
        totals.Duocore.Verify.pruned_by_complete + s.Duocore.Verify.pruned_by_complete;
      totals.Duocore.Verify.column_probes <-
        totals.Duocore.Verify.column_probes + s.Duocore.Verify.column_probes;
      totals.Duocore.Verify.row_probes <-
        totals.Duocore.Verify.row_probes + s.Duocore.Verify.row_probes;
      totals.Duocore.Verify.full_executions <-
        totals.Duocore.Verify.full_executions + s.Duocore.Verify.full_executions)
    sample;
  Format.fprintf ppf "tasks sampled: %d@." (List.length sample);
  Format.fprintf ppf "pruned by static      (lint): %8d@." totals.Duocore.Verify.pruned_by_static;
  Format.fprintf ppf "pruned by clauses     (free): %8d@." totals.Duocore.Verify.pruned_by_clauses;
  Format.fprintf ppf "pruned by semantics   (free): %8d@." totals.Duocore.Verify.pruned_by_semantics;
  Format.fprintf ppf "pruned by types     (schema): %8d@." totals.Duocore.Verify.pruned_by_types;
  Format.fprintf ppf "pruned by column     (probe): %8d@." totals.Duocore.Verify.pruned_by_column;
  Format.fprintf ppf "pruned by row        (query): %8d@." totals.Duocore.Verify.pruned_by_row;
  Format.fprintf ppf "pruned at completion  (full): %8d@." totals.Duocore.Verify.pruned_by_complete;
  Format.fprintf ppf "column probes: %d, row probes: %d, full executions: %d@."
    totals.Duocore.Verify.column_probes totals.Duocore.Verify.row_probes
    totals.Duocore.Verify.full_executions;
  Format.fprintf ppf "static warnings (deprioritized, never pruned): %d@."
    totals.Duocore.Verify.static_warnings

let ablation_joins t ppf =
  header ppf "Ablation: Steiner-only vs progressive join paths";
  let split = Lazy.force t.dev in
  let needs_extension (task : Spider_gen.task) =
    let db = List.assoc task.Spider_gen.sp_db split.Spider_gen.databases in
    let schema = Duodb.Database.schema db in
    let gold = task.Spider_gen.sp_gold in
    let referenced = Duosql.Ast.referenced_tables gold in
    match Duocore.Steiner.tree schema referenced with
    | None -> true
    | Some tr ->
        let steiner = List.sort String.compare tr.Duocore.Steiner.tr_tables in
        let gold_tables =
          List.sort String.compare gold.Duosql.Ast.q_from.Duosql.Ast.f_tables
        in
        steiner <> gold_tables
  in
  let n = List.length split.Spider_gen.tasks in
  let ext = List.length (List.filter needs_extension split.Spider_gen.tasks) in
  Format.fprintf ppf
    "%d/%d dev tasks (%.1f%%) have a gold FROM clause beyond the Steiner tree@.\
     of their referenced tables; only progressive construction (Algorithm 2,@.\
     lines 10-12) can reach them.@."
    ext n (pct ext n)

let ablation_semantics t ppf =
  header ppf "Ablation: Table 4 semantic rules on/off";
  let split = Lazy.force t.dev in
  let sample = List.filteri (fun i _ -> i mod 10 = 0) split.Spider_gen.tasks in
  let sessions = Hashtbl.create 16 in
  List.iter
    (fun (name, db) -> Hashtbl.replace sessions name (Duocore.Duoquest.create_session db))
    split.Spider_gen.databases;
  let run semantic_rules =
    let rng = Rng.create 777 in
    let config = { Simulation.sim_config with Enumerate.semantic_rules } in
    List.filter_map
      (fun (task : Spider_gen.task) ->
        let session = Hashtbl.find sessions task.Spider_gen.sp_db in
        let db = Duocore.Duoquest.session_db session in
        let tsq = Tsq_synth.synthesize rng db task.Spider_gen.sp_gold ~detail:Tsq_synth.Full in
        let outcome =
          Duocore.Duoquest.synthesize ~config ?tsq
            ~literals:task.Spider_gen.sp_literals session ~nlq:task.Spider_gen.sp_nlq ()
        in
        Duocore.Duoquest.rank_of outcome ~gold:task.Spider_gen.sp_gold)
      sample
  in
  let with_rules = run true and without = run false in
  let top1 rs = List.length (List.filter (fun r -> r = 1) rs) in
  let n = List.length sample in
  Format.fprintf ppf "tasks sampled: %d@." n;
  Format.fprintf ppf "with rules:    top-1 %d (%.1f%%), found %d@." (top1 with_rules)
    (pct (top1 with_rules) n) (List.length with_rules);
  Format.fprintf ppf "without rules: top-1 %d (%.1f%%), found %d@." (top1 without)
    (pct (top1 without) n) (List.length without)

(* --- registry --- *)

let experiments =
  [
    ("table1", "capability matrix", table1);
    ("table4", "semantic pruning rules", table4);
    ("table5", "dataset statistics", table5);
    ( "fig5",
      "% successful trials, user study vs NLI",
      fun t ppf ->
        fig_success t ppf ~title:"Figure 5: % successful trials (NLI study)" t.nli_study "NLI" );
    ( "fig6",
      "mean trial time, user study vs NLI",
      fun t ppf ->
        fig_time t ppf ~title:"Figure 6: mean time per successful trial (NLI study)" t.nli_study "NLI" );
    ( "fig7",
      "% successful trials, user study vs PBE",
      fun t ppf ->
        fig_success t ppf ~title:"Figure 7: % successful trials (PBE study)" t.pbe_study "PBE" );
    ( "fig8",
      "mean trial time, user study vs PBE",
      fun t ppf ->
        fig_time t ppf ~title:"Figure 8: mean time per successful trial (PBE study)" t.pbe_study "PBE" );
    ("fig9", "mean #examples, user study vs PBE", fig9);
    ("fig10", "top-1/top-10 accuracy, simulation study", fig10);
    ("fig11", "accuracy by difficulty", fig11);
    ("fig12", "time-to-synthesis distributions (GPQE ablations)", fig12);
    ("table6", "accuracy vs TSQ detail", table6);
    ("table7", "NLI study task suite", table7);
    ("table8", "PBE study task suite", table8);
    ("ablation-cascade", "verification cascade attribution", ablation_cascade);
    ("ablation-joins", "join path construction ablation", ablation_joins);
    ("ablation-semantics", "semantic rules ablation", ablation_semantics);
  ]

let all_ids = List.map (fun (id, _, _) -> id) experiments

let describe id =
  List.find_map
    (fun (id', d, _) -> if String.equal id id' then Some d else None)
    experiments

let run t ppf id =
  match List.find_opt (fun (id', _, _) -> String.equal id id') experiments with
  | None -> Error (Printf.sprintf "unknown experiment %S" id)
  | Some (_, _, f) ->
      f t ppf;
      Ok ()

let run_all t ppf =
  List.iter
    (fun (_, _, f) ->
      f t ppf;
      Format.pp_print_flush ppf ())
    experiments
