(** Spider-like cross-domain benchmark generator (Section 5.4, Table 5).

    The Spider dataset itself is not redistributable, so this module
    regenerates its {e setting}: many small databases across distinct
    domains, with NLQ-SQL task pairs in three difficulty classes —

    - {b Easy}: project-join queries, possibly with aggregates, sorting and
      limit;
    - {b Medium}: easy plus selection predicates;
    - {b Hard}: medium plus grouping (and possibly HAVING).

    Ten domain templates (concerts, employees, world, shops, courses, pets,
    books, museums, orchestras, airlines) are instantiated with different
    seeds to form the dev split (20 databases, 589 tasks: 239/252/98) and
    the test split (40 databases, 1247 tasks: 524/481/242) — the same task
    counts and difficulty mix as the paper's filtered Spider splits.  NLQs
    are rendered from paraphrasing templates with the literal set attached,
    mirroring how Spider tasks carry their values.  Every generated task is
    guaranteed to execute to a non-empty result (the paper removed
    empty-result tasks). *)

type difficulty =
  [ `Easy
  | `Medium
  | `Hard
  ]

type task = {
  sp_db : string;  (** database name the task runs on *)
  sp_difficulty : difficulty;
  sp_nlq : string;
  sp_gold : Duosql.Ast.query;
  sp_literals : Duodb.Value.t list;
}

type split = {
  split_name : string;
  databases : (string * Duodb.Database.t) list;
  tasks : task list;
}

(** The dev split: 20 databases, 589 tasks (239 easy / 252 medium / 98
    hard). Deterministic — including under [pool], which shards the
    database builds and per-database task generation across the pool's
    domains: per-shard rngs are pre-split in the sequential draw order
    and shards merge by index, so the split is bit-identical to the
    sequential one (Table-5-scale generation is where Duobench spends
    its setup time). *)
val dev : ?pool:Duopar.Pool.t -> unit -> split

(** The test split: 40 databases, 1247 tasks (524 / 481 / 242). *)
val test : ?pool:Duopar.Pool.t -> unit -> split

(** A small split for fast smoke tests: [n_dbs] databases and [per_db]
    tasks each, even difficulty mix. *)
val mini : ?seed:int -> ?pool:Duopar.Pool.t -> n_dbs:int -> per_db:int -> unit -> split

val difficulty_to_string : difficulty -> string

(** Average (tables, columns, FKs) over the split's schemas, for the
    Table 5 row. *)
val schema_stats : split -> float * float * float
