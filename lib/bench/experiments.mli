(** Experiment harness: one entry per table/figure of the paper's
    evaluation (see DESIGN.md's per-experiment index), each printing the
    corresponding rows/series to the given formatter.

    Heavy inputs (the generated splits and the per-system simulation runs)
    are computed lazily and shared across experiments within a process, so
    [run_all] performs each synthesis sweep exactly once.

    [scale] trades fidelity for speed: [`Full] uses the paper-sized splits
    (589 dev / 1247 test tasks); [`Quick] uses small splits for smoke
    runs. *)

type scale =
  [ `Full
  | `Quick
  ]

type t

(** [pool] shards split generation and every lazy simulation run across
    the pool's domains (results are bit-identical to the sequential
    path; only wall-clock changes).  The caller owns the pool and must
    keep it alive until the last experiment has been forced. *)
val create : ?scale:scale -> ?pool:Duopar.Pool.t -> unit -> t

(** All experiment ids, in presentation order. *)
val all_ids : string list

(** [run t ppf id] executes one experiment; [Error msg] for unknown ids. *)
val run : t -> Format.formatter -> string -> (unit, string) result

val run_all : t -> Format.formatter -> unit

(** One-line description per experiment id. *)
val describe : string -> string option
