module Enumerate = Duocore.Enumerate
module Duoquest = Duocore.Duoquest

type per_task = {
  pt_task : Spider_gen.task;
  pt_rank : int option;
  pt_time : float option;
  pt_candidates : int;
  pt_pops : int;
}

let sim_config =
  { Enumerate.default_config with
    Enumerate.max_pops = 40_000;
    max_candidates = 100;
    time_budget_s = 1.0;
    domains = Enumerate.domains_from_env () }

let sessions_of split =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, db) -> Hashtbl.replace tbl name (Duoquest.create_session db))
    split.Spider_gen.databases;
  tbl

let run_split ?(config = sim_config) ?(seed = 4242) ~mode ~detail split =
  let sessions = sessions_of split in
  let rng = Rng.create seed in
  (* One worker pool for the whole split: spawning and joining domains
     per task would dominate these sub-second runs. *)
  let eff_domains = Enumerate.effective_domains config in
  let pool =
    if eff_domains > 1 then Some (Duopar.Pool.create ~domains:eff_domains)
    else None
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Duopar.Pool.shutdown pool)
    (fun () ->
      List.map
        (fun (task : Spider_gen.task) ->
          let trng = Rng.split rng in
          let session = Hashtbl.find sessions task.Spider_gen.sp_db in
          let db = Duoquest.session_db session in
          let gold = task.Spider_gen.sp_gold in
          let tsq =
            match detail with
            | None -> None
            | Some d -> Tsq_synth.synthesize trng db gold ~detail:d
          in
          let outcome =
            Duoquest.synthesize ~config ~mode ?tsq ?pool
              ~literals:task.Spider_gen.sp_literals session
              ~nlq:task.Spider_gen.sp_nlq ()
          in
          let rank = Duoquest.rank_of outcome ~gold in
          let time =
            Option.bind rank (fun r ->
                List.nth_opt outcome.Enumerate.out_candidates (r - 1)
                |> Option.map (fun c -> c.Enumerate.cand_time_s))
          in
          {
            pt_task = task;
            pt_rank = rank;
            pt_time = time;
            pt_candidates = List.length outcome.Enumerate.out_candidates;
            pt_pops = outcome.Enumerate.out_pops;
          })
        split.Spider_gen.tasks)

type pbe_status =
  | Pbe_correct
  | Pbe_incorrect
  | Pbe_unsupported

let run_pbe ?(seed = 4242) split =
  let dbs = Hashtbl.create 16 in
  List.iter (fun (name, db) -> Hashtbl.replace dbs name db) split.Spider_gen.databases;
  let rng = Rng.create seed in
  List.map
    (fun (task : Spider_gen.task) ->
      let trng = Rng.split rng in
      let db = Hashtbl.find dbs task.Spider_gen.sp_db in
      let gold = task.Spider_gen.sp_gold in
      let status =
        if not (Duopbe.Squid.supported_query db gold) then Pbe_unsupported
        else
          match Tsq_synth.synthesize trng db gold ~detail:Tsq_synth.Full with
          | None -> Pbe_incorrect
          | Some tsq -> (
              match Duopbe.Squid.discover db tsq.Duocore.Tsq.tuples with
              | Some result when Duopbe.Squid.correct_for result ~gold -> Pbe_correct
              | Some _ | None -> Pbe_incorrect)
      in
      (task, status))
    split.Spider_gen.tasks

let top_k_count results k =
  List.length
    (List.filter
       (fun r -> match r.pt_rank with Some rk -> rk <= k | None -> false)
       results)

let by_difficulty results d =
  List.filter (fun r -> r.pt_task.Spider_gen.sp_difficulty = d) results

let completed_within results t =
  let n = List.length results in
  if n = 0 then 0.0
  else
    float_of_int
      (List.length
         (List.filter
            (fun r -> match r.pt_time with Some x -> x <= t | None -> false)
            results))
    /. float_of_int n
