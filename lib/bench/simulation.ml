module Enumerate = Duocore.Enumerate
module Duoquest = Duocore.Duoquest

type per_task = {
  pt_task : Spider_gen.task;
  pt_rank : int option;
  pt_time : float option;
  pt_candidates : int;
  pt_pops : int;
}

let sim_config =
  { Enumerate.default_config with
    Enumerate.max_pops = 40_000;
    max_candidates = 100;
    time_budget_s = 1.0;
    domains = Enumerate.domains_from_env () }

let sessions_of split =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, db) -> Hashtbl.replace tbl name (Duoquest.create_session db))
    split.Spider_gen.databases;
  tbl

(* Shard [f] over [items] on [pool] when it carries real parallelism,
   merging results by index (fixed shard order).  Each item must carry
   everything mutable it needs (pre-split rng, its own database) so
   shards never share writable state; [Pool.run] is never nested —
   sharded work runs its inner synthesis with [domains = 1]. *)
let shard_map pool items f =
  match pool with
  | Some p when Duopar.Pool.domains p > 1 ->
      let arr = Array.of_list items in
      let out = Array.make (Array.length arr) None in
      Duopar.Pool.run p (Array.length arr) (fun ~worker:_ i ->
          out.(i) <- Some (f arr.(i)));
      List.filter_map Fun.id (Array.to_list out)
  | _ -> List.map f items

(* Pre-split one child rng per task, in exactly the order the sequential
   loop would draw them — an explicit ascending loop, so shard merges
   reproduce the sequential stream bit-for-bit. *)
let split_rngs rng n =
  let rngs = Array.make (max 1 n) rng in
  for i = 0 to n - 1 do
    rngs.(i) <- Rng.split rng
  done;
  rngs

let run_split ?(config = sim_config) ?(seed = 4242) ?pool ~mode ~detail split =
  let sessions = sessions_of split in
  let rng = Rng.create seed in
  let n_tasks = List.length split.Spider_gen.tasks in
  let rngs = split_rngs rng n_tasks in
  (* Two ways to use the domains: [pool] shards the split one task per
     pool shard with sequential inner synthesis (Duopar v2's Duobench
     scaling — per-task outcomes are domain-count-invariant, so the
     merged list matches the sequential one); without it the v1 shape
     stands — one private pool parallelizing {e inside} each synthesis.
     Pool rounds never nest either way. *)
  let sharded = match pool with Some p -> Duopar.Pool.domains p > 1 | None -> false in
  let inner_config =
    if sharded then { config with Enumerate.domains = 1 } else config
  in
  let inner_pool =
    if sharded then None
    else
      let eff_domains = Enumerate.effective_domains config in
      if eff_domains > 1 then Some (Duopar.Pool.create ~domains:eff_domains)
      else None
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Duopar.Pool.shutdown inner_pool)
    (fun () ->
      let run_task i (task : Spider_gen.task) =
        let trng = rngs.(i) in
        let session = Hashtbl.find sessions task.Spider_gen.sp_db in
        let db = Duoquest.session_db session in
        let gold = task.Spider_gen.sp_gold in
        let tsq =
          match detail with
          | None -> None
          | Some d -> Tsq_synth.synthesize trng db gold ~detail:d
        in
        let outcome =
          Duoquest.synthesize ~config:inner_config ~mode ?tsq ?pool:inner_pool
            ~literals:task.Spider_gen.sp_literals session
            ~nlq:task.Spider_gen.sp_nlq ()
        in
        let rank = Duoquest.rank_of outcome ~gold in
        let time =
          Option.bind rank (fun r ->
              List.nth_opt outcome.Enumerate.out_candidates (r - 1)
              |> Option.map (fun c -> c.Enumerate.cand_time_s))
        in
        {
          pt_task = task;
          pt_rank = rank;
          pt_time = time;
          pt_candidates = List.length outcome.Enumerate.out_candidates;
          pt_pops = outcome.Enumerate.out_pops;
        }
      in
      let indexed = List.mapi (fun i task -> (i, task)) split.Spider_gen.tasks in
      shard_map pool indexed (fun (i, task) -> run_task i task))

type pbe_status =
  | Pbe_correct
  | Pbe_incorrect
  | Pbe_unsupported

let run_pbe ?(seed = 4242) ?pool split =
  let dbs = Hashtbl.create 16 in
  List.iter (fun (name, db) -> Hashtbl.replace dbs name db) split.Spider_gen.databases;
  let rng = Rng.create seed in
  let rngs = split_rngs rng (List.length split.Spider_gen.tasks) in
  let indexed = List.mapi (fun i task -> (i, task)) split.Spider_gen.tasks in
  shard_map pool indexed
    (fun (i, (task : Spider_gen.task)) ->
      let trng = rngs.(i) in
      let db = Hashtbl.find dbs task.Spider_gen.sp_db in
      let gold = task.Spider_gen.sp_gold in
      let status =
        if not (Duopbe.Squid.supported_query db gold) then Pbe_unsupported
        else
          match Tsq_synth.synthesize trng db gold ~detail:Tsq_synth.Full with
          | None -> Pbe_incorrect
          | Some tsq -> (
              match Duopbe.Squid.discover db tsq.Duocore.Tsq.tuples with
              | Some result when Duopbe.Squid.correct_for result ~gold -> Pbe_correct
              | Some _ | None -> Pbe_incorrect)
      in
      (task, status))

let top_k_count results k =
  List.length
    (List.filter
       (fun r -> match r.pt_rank with Some rk -> rk <= k | None -> false)
       results)

let by_difficulty results d =
  List.filter (fun r -> r.pt_task.Spider_gen.sp_difficulty = d) results

let completed_within results t =
  let n = List.length results in
  if n = 0 then 0.0
  else
    float_of_int
      (List.length
         (List.filter
            (fun r -> match r.pt_time with Some x -> x <= t | None -> false)
            results))
    /. float_of_int n
