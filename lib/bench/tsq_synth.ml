module Value = Duodb.Value
module Tsq = Duocore.Tsq

type detail =
  | Full
  | Partial
  | Minimal

let detail_to_string = function
  | Full -> "Full"
  | Partial -> "Partial"
  | Minimal -> "Minimal"

(* Pick [n] result rows; when the query sorts, keep them in result order so
   the ordered-match semantics of Definition 2.4 hold. *)
let pick_rows rng sorted n rows =
  let total = List.length rows in
  if total <= n then rows
  else if sorted then begin
    let idxs = List.sort_uniq compare (Rng.sample rng n (List.init total Fun.id)) in
    List.filteri (fun i _ -> List.mem i idxs) rows
  end
  else Rng.sample rng n rows

let synthesize ?(n_examples = 2) rng db gold ~detail =
  match Duoengine.Executor.run db gold with
  | Error _ -> None
  | Ok res ->
      if res.Duoengine.Executor.res_rows = [] then None
      else begin
        let types = List.map snd res.Duoengine.Executor.res_cols in
        let sorted = gold.Duosql.Ast.q_order_by <> [] in
        let limit = Option.value ~default:0 gold.Duosql.Ast.q_limit in
        let tuples =
          match detail with
          | Minimal -> []
          | Full | Partial ->
              let rows =
                pick_rows rng sorted n_examples res.Duoengine.Executor.res_rows
              in
              let tuples =
                List.map
                  (fun row -> Array.to_list (Array.map (fun v -> Tsq.Exact v) row))
                  rows
              in
              if detail = Partial && List.length types >= 2 then begin
                (* erase all values of one randomly selected column *)
                let erased = Rng.int rng (List.length types) in
                List.map
                  (List.mapi (fun i cell -> if i = erased then Tsq.Any else cell))
                  tuples
              end
              else tuples
        in
        Some (Tsq.make ~types ~tuples ~sorted ~limit ())
      end

let user_tuples ?(exact_p = 0.7) ?(range_p = 0.2) rng db gold ~n =
  match Duoengine.Executor.run db gold with
  | Error _ -> None
  | Ok res ->
      if res.Duoengine.Executor.res_rows = [] then None
      else begin
        let sorted = gold.Duosql.Ast.q_order_by <> [] in
        let rows = pick_rows rng sorted n res.Duoengine.Executor.res_rows in
        let fuzz v =
          if Rng.bool rng exact_p then Tsq.Exact v
          else
            match v with
            | Value.Int x when Rng.bool rng (range_p /. (1.0 -. exact_p)) ->
                (* a range the user half-remembers, containing the truth *)
                let lo = x - Rng.range rng 1 5 and hi = x + Rng.range rng 1 5 in
                Tsq.Range (Value.Int lo, Value.Int hi)
            | Value.Float x when Rng.bool rng (range_p /. (1.0 -. exact_p)) ->
                Tsq.Range (Value.Float (x -. 2.0), Value.Float (x +. 2.0))
            | Value.Null | Value.Int _ | Value.Float _ | Value.Text _ ->
                Tsq.Any
        in
        let tuples =
          List.map (fun row -> Array.to_list (Array.map fuzz row)) rows
        in
        (* A tuple of only Any cells carries no information; keep at least
           one exact cell per tuple by pinning the first column. *)
        let tuples =
          List.map2
            (fun row tup ->
              if List.exists (fun c -> c <> Tsq.Any) tup then tup
              else
                match Array.to_list row with
                | v :: rest -> Tsq.Exact v :: List.map (fun _ -> Tsq.Any) rest
                | [] -> tup)
            rows tuples
        in
        Some tuples
      end
