(** The simulation study on the Spider-like benchmark (Section 5.4).

    For each task the gold SQL is the desired query, its literals are the
    tagged set L, and the TSQ is synthesized per Section 5.4.1 (type
    annotations, two example tuples, tau and k).  Duoquest receives NLQ +
    literals + TSQ; NLI receives NLQ + literals; PBE receives the example
    tuples alone. *)

type per_task = {
  pt_task : Spider_gen.task;
  pt_rank : int option;  (** 1-based rank of the gold query, if emitted *)
  pt_time : float option;  (** processor time at which the gold appeared *)
  pt_candidates : int;
  pt_pops : int;
}

(** Budget used for every synthesis run (the paper's 60 s timeout scaled to
    the in-memory engine). *)
val sim_config : Duocore.Enumerate.config

(** [run_split ~mode ~detail split] runs one system over all tasks.
    [detail = None] means no TSQ is supplied (the NLI setting). Sessions
    are cached per database.

    [pool] shards the split across the pool's domains — one task per
    shard, sequential inner synthesis, per-task rngs pre-split in
    sequential order and results merged in fixed shard order, so the
    returned list is identical to the sequential one (wall-clock fields
    aside).  Without [pool], the domains of [config] parallelize
    {e inside} each synthesis instead (a private pool per call). *)
val run_split :
  ?config:Duocore.Enumerate.config ->
  ?seed:int ->
  ?pool:Duopar.Pool.t ->
  mode:Duocore.Duoquest.mode ->
  detail:Tsq_synth.detail option ->
  Spider_gen.split ->
  per_task list

type pbe_status =
  | Pbe_correct
  | Pbe_incorrect
  | Pbe_unsupported

(** Run the PBE baseline over the split's tasks using the Full-TSQ example
    tuples (Section 5.4.2's protocol).  [pool] shards tasks as in
    {!run_split}. *)
val run_pbe :
  ?seed:int ->
  ?pool:Duopar.Pool.t ->
  Spider_gen.split ->
  (Spider_gen.task * pbe_status) list

(** Top-k accuracy over task results. *)
val top_k_count : per_task list -> int -> int

(** Restrict to one difficulty class. *)
val by_difficulty : per_task list -> Spider_gen.difficulty -> per_task list

(** Fraction of tasks whose gold query was found within [t] wall-clock
    seconds (candidate timestamps use {!Duocore.Clock.now}), for the
    Figure 12 curves. *)
val completed_within : per_task list -> float -> float
