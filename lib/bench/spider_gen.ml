open Duosql.Ast
module Value = Duodb.Value
module Datatype = Duodb.Datatype
module Schema = Duodb.Schema

type difficulty =
  [ `Easy
  | `Medium
  | `Hard
  ]

type task = {
  sp_db : string;
  sp_difficulty : difficulty;
  sp_nlq : string;
  sp_gold : query;
  sp_literals : Value.t list;
}

type split = {
  split_name : string;
  databases : (string * Duodb.Database.t) list;
  tasks : task list;
}

let difficulty_to_string = function
  | `Easy -> "easy"
  | `Medium -> "medium"
  | `Hard -> "hard"

let text = Datatype.Text
let number = Datatype.Number
let iv n = Value.Int n
let tv s = Value.Text s

(* --- shared value pools --- *)

let person_names =
  [ "Olivia Reed"; "Liam Carter"; "Emma Brooks"; "Noah Hayes"; "Ava Murphy";
    "Ethan Price"; "Mia Coleman"; "Lucas Ward"; "Isabella Foster"; "Mason Gray";
    "Sophia Bell"; "Logan Cooper"; "Amelia Ross"; "Jacob Bennett"; "Harper Diaz";
    "Elijah Wood"; "Evelyn James"; "Daniel Cruz"; "Abigail Stone"; "Henry Webb";
    "Emily Fox"; "Jackson Lane"; "Ella Burke"; "Aiden Shaw"; "Scarlett Nash" ]

let city_names =
  [ "Springfield"; "Riverton"; "Lakeside"; "Fairview"; "Ashford"; "Milbrook";
    "Eastport"; "Granville"; "Oakdale"; "Winfield"; "Harborview"; "Kingsley" ]

let country_names =
  [ "United States"; "France"; "Japan"; "Brazil"; "Germany"; "Australia";
    "Canada"; "Italy"; "Spain"; "Netherlands"; "South Korea"; "Mexico" ]

let word_pool =
  [ "Aurora"; "Velvet"; "Summit"; "Harbor"; "Cascade"; "Ember"; "Juniper";
    "Meridian"; "Nova"; "Orchid"; "Quartz"; "Sable"; "Tundra"; "Vista";
    "Willow"; "Zenith"; "Beacon"; "Cobalt"; "Drift"; "Falcon" ]

let pick_name rng pool suffix_bound =
  let base = Rng.choose rng pool in
  if suffix_bound <= 1 then base
  else Printf.sprintf "%s %d" base (1 + Rng.int rng suffix_bound)

(* --- domain templates --- *)

type domain = {
  dom_name : string;
  dom_build : Rng.t -> string -> Duodb.Database.t;
}

let concerts =
  let build rng name =
    let schema =
      Schema.make ~name
        [
          Schema.table "stadium"
            [ ("stadium_id", number); ("name", text); ("location", text);
              ("capacity", number) ]
            ~pk:[ "stadium_id" ];
          Schema.table "singer"
            [ ("singer_id", number); ("name", text); ("country", text);
              ("age", number) ]
            ~pk:[ "singer_id" ];
          Schema.table "concert"
            [ ("concert_id", number); ("concert_name", text); ("theme", text);
              ("year", number); ("stadium_id", number) ]
            ~pk:[ "concert_id" ];
          Schema.table "singer_in_concert"
            [ ("sic_id", number); ("concert_id", number); ("singer_id", number) ]
            ~pk:[ "sic_id" ];
        ]
        [
          Schema.fk ("concert", "stadium_id") ("stadium", "stadium_id");
          Schema.fk ("singer_in_concert", "concert_id") ("concert", "concert_id");
          Schema.fk ("singer_in_concert", "singer_id") ("singer", "singer_id");
        ]
    in
    let db = Duodb.Database.create schema in
    let n_stadium = Rng.range rng 6 10 in
    for k = 1 to n_stadium do
      Duodb.Database.insert db ~table:"stadium"
        [| iv k; tv (pick_name rng word_pool 3 ^ " Arena"); tv (Rng.choose rng city_names);
           iv (Rng.range rng 5 90 * 1000) |]
    done;
    let n_singer = Rng.range rng 12 20 in
    for k = 1 to n_singer do
      Duodb.Database.insert db ~table:"singer"
        [| iv k; tv (pick_name rng person_names 4); tv (Rng.choose rng country_names);
           iv (Rng.range rng 18 70) |]
    done;
    let n_concert = Rng.range rng 15 25 in
    for k = 1 to n_concert do
      Duodb.Database.insert db ~table:"concert"
        [| iv k; tv (pick_name rng word_pool 5 ^ " Fest"); tv (Rng.choose rng [ "Pop"; "Rock"; "Jazz"; "Folk" ]);
           iv (Rng.range rng 2005 2020); iv (1 + Rng.int rng n_stadium) |]
    done;
    let sic = ref 0 in
    for c = 1 to n_concert do
      for _ = 1 to Rng.range rng 1 3 do
        incr sic;
        Duodb.Database.insert db ~table:"singer_in_concert"
          [| iv !sic; iv c; iv (1 + Rng.int rng n_singer) |]
      done
    done;
    db
  in
  { dom_name = "concerts"; dom_build = build }

let employees =
  let build rng name =
    let schema =
      Schema.make ~name
        [
          Schema.table "department"
            [ ("department_id", number); ("name", text); ("city", text);
              ("budget", number) ]
            ~pk:[ "department_id" ];
          Schema.table "employee"
            [ ("employee_id", number); ("name", text); ("title", text);
              ("salary", number); ("age", number); ("department_id", number) ]
            ~pk:[ "employee_id" ];
        ]
        [ Schema.fk ("employee", "department_id") ("department", "department_id") ]
    in
    let db = Duodb.Database.create schema in
    let depts = [ "Engineering"; "Marketing"; "Finance"; "Operations"; "Design"; "Legal" ] in
    List.iteri
      (fun idx d ->
        Duodb.Database.insert db ~table:"department"
          [| iv (idx + 1); tv d; tv (Rng.choose rng city_names);
             iv (Rng.range rng 100 900 * 1000) |])
      depts;
    let n_emp = Rng.range rng 25 45 in
    for k = 1 to n_emp do
      Duodb.Database.insert db ~table:"employee"
        [| iv k; tv (pick_name rng person_names 4);
           tv (Rng.choose rng [ "Analyst"; "Manager"; "Engineer"; "Director"; "Intern" ]);
           iv (Rng.range rng 35 180 * 1000); iv (Rng.range rng 21 64);
           iv (1 + Rng.int rng (List.length depts)) |]
    done;
    db
  in
  { dom_name = "employees"; dom_build = build }

let world =
  let build rng name =
    let schema =
      Schema.make ~name
        [
          Schema.table "country"
            [ ("country_id", number); ("name", text); ("continent", text);
              ("population", number); ("gdp", number) ]
            ~pk:[ "country_id" ];
          Schema.table "city"
            [ ("city_id", number); ("name", text); ("population", number);
              ("country_id", number) ]
            ~pk:[ "city_id" ];
        ]
        [ Schema.fk ("city", "country_id") ("country", "country_id") ]
    in
    let db = Duodb.Database.create schema in
    let continents = [ "Asia"; "Europe"; "Africa"; "Americas"; "Oceania" ] in
    let n_country = Rng.range rng 8 12 in
    for k = 1 to n_country do
      Duodb.Database.insert db ~table:"country"
        [| iv k; tv (List.nth country_names ((k - 1) mod List.length country_names));
           tv (Rng.choose rng continents); iv (Rng.range rng 1 1400 * 100000);
           iv (Rng.range rng 10 2000) |]
    done;
    let n_city = Rng.range rng 20 35 in
    for k = 1 to n_city do
      Duodb.Database.insert db ~table:"city"
        [| iv k; tv (pick_name rng city_names 4); iv (Rng.range rng 5 900 * 10000);
           iv (1 + Rng.int rng n_country) |]
    done;
    db
  in
  { dom_name = "world"; dom_build = build }

let shops =
  let build rng name =
    let schema =
      Schema.make ~name
        [
          Schema.table "shop"
            [ ("shop_id", number); ("name", text); ("district", text);
              ("open_year", number) ]
            ~pk:[ "shop_id" ];
          Schema.table "product"
            [ ("product_id", number); ("name", text); ("category", text);
              ("price", number); ("shop_id", number) ]
            ~pk:[ "product_id" ];
        ]
        [ Schema.fk ("product", "shop_id") ("shop", "shop_id") ]
    in
    let db = Duodb.Database.create schema in
    let n_shop = Rng.range rng 6 10 in
    for k = 1 to n_shop do
      Duodb.Database.insert db ~table:"shop"
        [| iv k; tv (pick_name rng word_pool 3 ^ " Store"); tv (Rng.choose rng city_names);
           iv (Rng.range rng 1990 2020) |]
    done;
    let n_prod = Rng.range rng 25 45 in
    for k = 1 to n_prod do
      Duodb.Database.insert db ~table:"product"
        [| iv k; tv (pick_name rng word_pool 6);
           tv (Rng.choose rng [ "Food"; "Clothing"; "Electronics"; "Toys" ]);
           iv (Rng.range rng 2 500); iv (1 + Rng.int rng n_shop) |]
    done;
    db
  in
  { dom_name = "shops"; dom_build = build }

let courses =
  let build rng name =
    let schema =
      Schema.make ~name
        [
          Schema.table "instructor"
            [ ("instructor_id", number); ("name", text); ("department", text) ]
            ~pk:[ "instructor_id" ];
          Schema.table "course"
            [ ("course_id", number); ("title", text); ("credits", number);
              ("instructor_id", number) ]
            ~pk:[ "course_id" ];
          Schema.table "student"
            [ ("student_id", number); ("name", text); ("major", text);
              ("year", number) ]
            ~pk:[ "student_id" ];
          Schema.table "takes"
            [ ("takes_id", number); ("student_id", number); ("course_id", number);
              ("grade", number) ]
            ~pk:[ "takes_id" ];
        ]
        [
          Schema.fk ("course", "instructor_id") ("instructor", "instructor_id");
          Schema.fk ("takes", "student_id") ("student", "student_id");
          Schema.fk ("takes", "course_id") ("course", "course_id");
        ]
    in
    let db = Duodb.Database.create schema in
    let majors = [ "Biology"; "History"; "Physics"; "Economics"; "Computer Science" ] in
    let n_instr = Rng.range rng 6 10 in
    for k = 1 to n_instr do
      Duodb.Database.insert db ~table:"instructor"
        [| iv k; tv (pick_name rng person_names 3); tv (Rng.choose rng majors) |]
    done;
    let n_course = Rng.range rng 10 16 in
    for k = 1 to n_course do
      Duodb.Database.insert db ~table:"course"
        [| iv k; tv ("Introduction to " ^ Rng.choose rng word_pool);
           iv (Rng.range rng 1 5); iv (1 + Rng.int rng n_instr) |]
    done;
    let n_student = Rng.range rng 15 30 in
    for k = 1 to n_student do
      Duodb.Database.insert db ~table:"student"
        [| iv k; tv (pick_name rng person_names 4); tv (Rng.choose rng majors);
           iv (Rng.range rng 1 4) |]
    done;
    let tk = ref 0 in
    for s = 1 to n_student do
      for _ = 1 to Rng.range rng 1 4 do
        incr tk;
        Duodb.Database.insert db ~table:"takes"
          [| iv !tk; iv s; iv (1 + Rng.int rng n_course); iv (Rng.range rng 50 100) |]
      done
    done;
    db
  in
  { dom_name = "courses"; dom_build = build }

let pets =
  let build rng name =
    let schema =
      Schema.make ~name
        [
          Schema.table "owner"
            [ ("owner_id", number); ("name", text); ("city", text); ("age", number) ]
            ~pk:[ "owner_id" ];
          Schema.table "pet"
            [ ("pet_id", number); ("name", text); ("pet_type", text);
              ("weight", number); ("owner_id", number) ]
            ~pk:[ "pet_id" ];
        ]
        [ Schema.fk ("pet", "owner_id") ("owner", "owner_id") ]
    in
    let db = Duodb.Database.create schema in
    let n_owner = Rng.range rng 10 18 in
    for k = 1 to n_owner do
      Duodb.Database.insert db ~table:"owner"
        [| iv k; tv (pick_name rng person_names 3); tv (Rng.choose rng city_names);
           iv (Rng.range rng 18 80) |]
    done;
    let n_pet = Rng.range rng 18 30 in
    for k = 1 to n_pet do
      Duodb.Database.insert db ~table:"pet"
        [| iv k; tv (Rng.choose rng word_pool);
           tv (Rng.choose rng [ "dog"; "cat"; "bird"; "rabbit" ]);
           iv (Rng.range rng 1 60); iv (1 + Rng.int rng n_owner) |]
    done;
    db
  in
  { dom_name = "pets"; dom_build = build }

let books =
  let build rng name =
    let schema =
      Schema.make ~name
        [
          Schema.table "writer"
            [ ("writer_id", number); ("name", text); ("country", text) ]
            ~pk:[ "writer_id" ];
          Schema.table "book"
            [ ("book_id", number); ("title", text); ("genre", text);
              ("year", number); ("pages", number); ("writer_id", number) ]
            ~pk:[ "book_id" ];
        ]
        [ Schema.fk ("book", "writer_id") ("writer", "writer_id") ]
    in
    let db = Duodb.Database.create schema in
    let n_writer = Rng.range rng 8 14 in
    for k = 1 to n_writer do
      Duodb.Database.insert db ~table:"writer"
        [| iv k; tv (pick_name rng person_names 3); tv (Rng.choose rng country_names) |]
    done;
    let n_book = Rng.range rng 20 35 in
    for k = 1 to n_book do
      Duodb.Database.insert db ~table:"book"
        [| iv k; tv ("The " ^ pick_name rng word_pool 5);
           tv (Rng.choose rng [ "Mystery"; "Fantasy"; "Biography"; "Poetry" ]);
           iv (Rng.range rng 1950 2020); iv (Rng.range rng 80 900);
           iv (1 + Rng.int rng n_writer) |]
    done;
    db
  in
  { dom_name = "books"; dom_build = build }

let museums =
  let build rng name =
    let schema =
      Schema.make ~name
        [
          Schema.table "museum"
            [ ("museum_id", number); ("name", text); ("city", text);
              ("num_paintings", number) ]
            ~pk:[ "museum_id" ];
          Schema.table "visitor"
            [ ("visitor_id", number); ("name", text); ("age", number) ]
            ~pk:[ "visitor_id" ];
          Schema.table "visit"
            [ ("visit_id", number); ("museum_id", number); ("visitor_id", number);
              ("num_tickets", number) ]
            ~pk:[ "visit_id" ];
        ]
        [
          Schema.fk ("visit", "museum_id") ("museum", "museum_id");
          Schema.fk ("visit", "visitor_id") ("visitor", "visitor_id");
        ]
    in
    let db = Duodb.Database.create schema in
    let n_museum = Rng.range rng 5 9 in
    for k = 1 to n_museum do
      Duodb.Database.insert db ~table:"museum"
        [| iv k; tv (pick_name rng word_pool 3 ^ " Museum"); tv (Rng.choose rng city_names);
           iv (Rng.range rng 50 2000) |]
    done;
    let n_visitor = Rng.range rng 12 20 in
    for k = 1 to n_visitor do
      Duodb.Database.insert db ~table:"visitor"
        [| iv k; tv (pick_name rng person_names 3); iv (Rng.range rng 8 80) |]
    done;
    let vt = ref 0 in
    for v = 1 to n_visitor do
      for _ = 1 to Rng.range rng 1 3 do
        incr vt;
        Duodb.Database.insert db ~table:"visit"
          [| iv !vt; iv (1 + Rng.int rng n_museum); iv v; iv (Rng.range rng 1 6) |]
      done
    done;
    db
  in
  { dom_name = "museums"; dom_build = build }

let orchestras =
  let build rng name =
    let schema =
      Schema.make ~name
        [
          Schema.table "conductor"
            [ ("conductor_id", number); ("name", text); ("nationality", text);
              ("age", number) ]
            ~pk:[ "conductor_id" ];
          Schema.table "orchestra"
            [ ("orchestra_id", number); ("name", text); ("year_founded", number);
              ("conductor_id", number) ]
            ~pk:[ "orchestra_id" ];
        ]
        [ Schema.fk ("orchestra", "conductor_id") ("conductor", "conductor_id") ]
    in
    let db = Duodb.Database.create schema in
    let n_cond = Rng.range rng 6 10 in
    for k = 1 to n_cond do
      Duodb.Database.insert db ~table:"conductor"
        [| iv k; tv (pick_name rng person_names 3); tv (Rng.choose rng country_names);
           iv (Rng.range rng 30 80) |]
    done;
    let n_orch = Rng.range rng 10 16 in
    for k = 1 to n_orch do
      Duodb.Database.insert db ~table:"orchestra"
        [| iv k; tv (pick_name rng city_names 3 ^ " Symphony"); iv (Rng.range rng 1880 2010);
           iv (1 + Rng.int rng n_cond) |]
    done;
    db
  in
  { dom_name = "orchestras"; dom_build = build }

let airlines =
  let build rng name =
    let schema =
      Schema.make ~name
        [
          Schema.table "airline"
            [ ("airline_id", number); ("name", text); ("country", text) ]
            ~pk:[ "airline_id" ];
          Schema.table "flight"
            [ ("flight_id", number); ("flight_number", text); ("origin", text);
              ("destination", text); ("distance", number); ("airline_id", number) ]
            ~pk:[ "flight_id" ];
        ]
        [ Schema.fk ("flight", "airline_id") ("airline", "airline_id") ]
    in
    let db = Duodb.Database.create schema in
    let n_air = Rng.range rng 5 8 in
    for k = 1 to n_air do
      Duodb.Database.insert db ~table:"airline"
        [| iv k; tv (pick_name rng word_pool 3 ^ " Air"); tv (Rng.choose rng country_names) |]
    done;
    let n_flight = Rng.range rng 25 40 in
    for k = 1 to n_flight do
      Duodb.Database.insert db ~table:"flight"
        [| iv k; tv (Printf.sprintf "FL%03d" k); tv (Rng.choose rng city_names);
           tv (Rng.choose rng city_names); iv (Rng.range rng 100 9000);
           iv (1 + Rng.int rng n_air) |]
    done;
    db
  in
  { dom_name = "airlines"; dom_build = build }

let domains =
  [ concerts; employees; world; shops; courses; pets; books; museums;
    orchestras; airlines ]

(* --- generic task generation --- *)

let phrase s = String.map (fun c -> if c = '_' then ' ' else c) s

(* Columns a user would name: not keys. *)
let interesting_columns schema =
  let fk_cols =
    List.concat_map
      (fun e ->
        [ (e.Schema.fk_table, e.Schema.fk_column); (e.Schema.pk_table, e.Schema.pk_column) ])
      schema.Schema.foreign_keys
  in
  List.filter
    (fun c ->
      (not (Schema.is_pk_column schema ~table:c.Schema.col_table c.Schema.col_name))
      && not (List.mem (c.Schema.col_table, c.Schema.col_name) fk_cols))
    (Schema.all_columns schema)

let cols_of_tables schema tables =
  List.filter (fun c -> List.mem c.Schema.col_table tables) (interesting_columns schema)

let col_ref_of c = col c.Schema.col_table c.Schema.col_name

(* Sample a realistic literal from the column's data. *)
let sample_value rng db (c : Schema.column) =
  let tbl = Duodb.Database.table_exn db c.Schema.col_table in
  let vs =
    List.rev
      (Array.fold_left
         (fun acc v -> if Value.is_null v then acc else v :: acc)
         []
         (Duodb.Table.column_array tbl c.Schema.col_name))
  in
  match vs with [] -> None | _ -> Some (Rng.choose rng vs)

let op_phrase rng op =
  match op with
  | Gt -> Rng.choose rng [ "greater than"; "more than"; "above"; "over" ]
  | Ge -> Rng.choose rng [ "at least"; "no less than" ]
  | Lt -> Rng.choose rng [ "less than"; "below"; "under"; "smaller than" ]
  | Le -> Rng.choose rng [ "at most"; "no more than" ]
  | Eq -> ""
  | Neq -> "not"
  | Like -> "containing"
  | Not_like -> "not containing"

let agg_phrase rng = function
  | Count -> Rng.choose rng [ "the number of"; "how many" ]
  | Sum -> Rng.choose rng [ "the total"; "the sum of" ]
  | Avg -> Rng.choose rng [ "the average"; "the mean" ]
  | Min -> Rng.choose rng [ "the minimum"; "the smallest" ]
  | Max -> Rng.choose rng [ "the maximum"; "the largest" ]

let value_phrase v =
  match v with
  | Value.Text s -> Printf.sprintf "\"%s\"" s
  | Value.Int _ | Value.Float _ -> Value.to_display v
  | Value.Null -> "null"

(* A candidate FROM clause: either a single table or tables joined along
   1-2 FK edges. *)
let choose_tables rng schema ~want_join =
  let tables = List.map (fun t -> t.Schema.tbl_name) schema.Schema.tables in
  if (not want_join) || schema.Schema.foreign_keys = [] then
    [ Rng.choose rng tables ]
  else begin
    let e = Rng.choose rng schema.Schema.foreign_keys in
    let base = [ e.Schema.fk_table; e.Schema.pk_table ] in
    if Rng.bool rng 0.35 then begin
      (* extend by one more hop when possible *)
      let exts =
        List.filter
          (fun e' ->
            let a = e'.Schema.fk_table and b = e'.Schema.pk_table in
            List.mem a base <> List.mem b base)
          schema.Schema.foreign_keys
      in
      match exts with
      | [] -> base
      | _ ->
          let e' = Rng.choose rng exts in
          let extra =
            if List.mem e'.Schema.fk_table base then e'.Schema.pk_table
            else e'.Schema.fk_table
          in
          base @ [ extra ]
    end
    else base
  end

let from_of rng schema tables =
  ignore rng;
  match Duocore.Steiner.tree schema tables with
  | Some tr -> Some (Duocore.Joinpath.from_of_tree tr)
  | None -> None

(* Group-count distribution for a HAVING threshold that keeps some groups. *)
let having_threshold db from group_col =
  let q =
    {
      q_distinct = false;
      q_select = [ { p_agg = None; p_col = Some group_col; p_distinct = false }; count_star ];
      q_from = from;
      q_where = None;
      q_group_by = [ group_col ];
      q_having = None;
      q_order_by = [];
      q_limit = None;
    }
  in
  match Duoengine.Executor.run db q with
  | Error _ -> None
  | Ok res ->
      let counts =
        List.filter_map
          (fun row ->
            match row.(1) with
            | Value.Int n -> Some n
            | Value.Null | Value.Float _ | Value.Text _ -> None)
          res.Duoengine.Executor.res_rows
      in
      let sorted = List.sort compare counts in
      let n = List.length sorted in
      if n < 3 then None
      else
        let k = List.nth sorted (n / 2) in
        if k >= 1 && List.exists (fun c -> c > k) sorted then Some k else None

(* One generation attempt; None when the draw is unusable. *)
let attempt rng db difficulty =
  let schema = Duodb.Database.schema db in
  let want_join = Rng.bool rng 0.55 in
  let tables = choose_tables rng schema ~want_join in
  match from_of rng schema tables with
  | None -> None
  | Some from -> (
      let avail = cols_of_tables schema from.f_tables in
      let text_cols =
        List.filter (fun c -> Datatype.equal c.Schema.col_type text) avail
      in
      let num_cols =
        List.filter (fun c -> Datatype.equal c.Schema.col_type number) avail
      in
      if avail = [] then None
      else
        (* main entity phrase: the "many" side of the join when counting
           join rows, else the FROM base table *)
        let many_side (f : from_clause) =
          match f.f_tables with
          | [ t ] -> t
          | _ -> (
              let fk_side =
                List.filter
                  (fun t ->
                    List.exists (fun j -> String.equal j.j_from.cr_table t) f.f_joins
                    && not
                         (List.exists (fun j -> String.equal j.j_to.cr_table t) f.f_joins))
                  f.f_tables
              in
              match fk_side with t :: _ -> t | [] -> List.hd f.f_tables)
        in
        let entity = phrase (many_side from) ^ "s" in
        let nlq = Buffer.create 64 in
        let literals = ref [] in
        (* --- WHERE (medium and hard) --- *)
        let gen_pred used =
          let cands = List.filter (fun c -> not (List.memq c used)) avail in
          if cands = [] then None
          else
            let c = Rng.choose rng cands in
            match sample_value rng db c with
            | None -> None
            | Some v -> (
                match c.Schema.col_type with
                | Datatype.Text -> (
                    match v with
                    | Value.Text s when Rng.bool rng 0.12 && String.length s >= 4 ->
                        (* LIKE with a prefix pattern *)
                        let prefix = String.sub s 0 3 in
                        let pat = prefix ^ "%" in
                        Some
                          ( c,
                            pred (col_ref_of c) Like (tv pat),
                            Printf.sprintf "whose %s starts with \"%s\"" (phrase c.Schema.col_name) prefix,
                            [ tv pat ] )
                    | Value.Null | Value.Int _ | Value.Float _ | Value.Text _
                      ->
                        let op, phrase_op =
                          if Rng.bool rng 0.08 then (Neq, "is not") else (Eq, "is")
                        in
                        Some
                          ( c,
                            pred (col_ref_of c) op v,
                            Printf.sprintf "whose %s %s %s" (phrase c.Schema.col_name) phrase_op (value_phrase v),
                            [ v ] ))
                | Datatype.Number ->
                    if Rng.bool rng 0.15 then begin
                      match sample_value rng db c with
                      | Some v2 when not (Value.equal v v2) ->
                          let lo = if Value.compare v v2 < 0 then v else v2 in
                          let hi = if Value.compare v v2 < 0 then v2 else v in
                          Some
                            ( c,
                              between (col_ref_of c) lo hi,
                              Printf.sprintf "whose %s is between %s and %s"
                                (phrase c.Schema.col_name) (value_phrase lo) (value_phrase hi),
                              [ lo; hi ] )
                      | _ -> None
                    end
                    else
                      let op = Rng.choose rng [ Gt; Lt; Ge; Le ] in
                      Some
                        ( c,
                          pred (col_ref_of c) op v,
                          Printf.sprintf "whose %s is %s %s" (phrase c.Schema.col_name)
                            (op_phrase rng op) (value_phrase v),
                          [ v ] ))
        in
        let where, where_phrases, where_cols =
          match difficulty with
          | `Easy -> (None, [], [])
          | `Medium | `Hard ->
              let n_preds = if Rng.bool rng 0.75 then 1 else 2 in
              let rec build k used acc_preds acc_phr =
                if k = 0 then (acc_preds, acc_phr, used)
                else
                  match gen_pred used with
                  | None -> (acc_preds, acc_phr, used)
                  | Some (c, p, phr, lits) ->
                      literals := !literals @ lits;
                      build (k - 1) (c :: used) (acc_preds @ [ p ]) (acc_phr @ [ phr ])
              in
              let preds, phrases, used = build n_preds [] [] [] in
              if preds = [] then (None, [], [])
              else
                let conn =
                  if List.length preds >= 2 && Rng.bool rng 0.2 then Or else And
                in
                (Some { c_preds = preds; c_conn = conn }, phrases, used)
        in
        (match difficulty with
        | (`Medium | `Hard) when where = None -> raise Exit
        | _ -> ());
        (* --- SELECT / GROUP --- *)
        match difficulty with
        | `Hard -> (
            (* grouped aggregation *)
            let group_cands =
              List.filter (fun c -> not (List.memq c where_cols)) text_cols
            in
            match group_cands with
            | [] -> None
            | _ ->
                let g = Rng.choose rng group_cands in
                let gref = col_ref_of g in
                let agg_proj, agg_phrase_str =
                  if Rng.bool rng 0.7 then (count_star, "the number of " ^ entity)
                  else
                    match List.filter (fun c -> not (List.memq c where_cols)) num_cols with
                    | [] -> (count_star, "the number of " ^ entity)
                    | ncs ->
                        let nc = Rng.choose rng ncs in
                        let a = Rng.choose rng [ Sum; Avg; Min; Max ] in
                        ( proj_agg a (col_ref_of nc),
                          Printf.sprintf "%s %s" (agg_phrase rng a) (phrase nc.Schema.col_name) )
                in
                let having =
                  if agg_proj.p_agg = Some Count && Rng.bool rng 0.4 then
                    match having_threshold db from gref with
                    | Some k ->
                        literals := !literals @ [ iv k ];
                        Some
                          ( { c_preds = [ { pr_agg = Some Count; pr_col = None; pr_rhs = Cmp (Gt, iv k) } ];
                              c_conn = And },
                            Printf.sprintf " with more than %d %s" k entity )
                    | None -> None
                  else None
                in
                let order =
                  if Rng.bool rng 0.35 then
                    Some
                      ( [ { o_agg = Some Count; o_col = None; o_dir = Desc } ],
                        " ordered from most to least" )
                  else None
                in
                Buffer.add_string nlq
                  (Printf.sprintf "For each %s, show %s" (phrase g.Schema.col_name) agg_phrase_str);
                List.iter (fun p -> Buffer.add_string nlq (" " ^ p)) where_phrases;
                Option.iter (fun (_, p) -> Buffer.add_string nlq p) having;
                Option.iter (fun (_, p) -> Buffer.add_string nlq p) order;
                let q =
                  {
                    q_distinct = false;
                    q_select = [ proj_col gref; agg_proj ];
                    q_from = from;
                    q_where = where;
                    q_group_by = [ gref ];
                    q_having = Option.map fst having;
                    q_order_by = Option.fold ~none:[] ~some:fst order;
                    q_limit = None;
                  }
                in
                Some (q, Buffer.contents nlq, !literals))
        | `Easy | `Medium ->
            let single_agg = Rng.bool rng 0.2 in
            if single_agg then begin
              let agg_proj, agg_txt =
                if Rng.bool rng 0.5 || num_cols = [] then
                  (count_star, "How many " ^ entity ^ " are there")
                else
                  let nc = Rng.choose rng num_cols in
                  let a = Rng.choose rng [ Sum; Avg; Min; Max ] in
                  ( proj_agg a (col_ref_of nc),
                    Printf.sprintf "What is %s %s of %s" (agg_phrase rng a)
                      (phrase nc.Schema.col_name) entity )
              in
              Buffer.add_string nlq agg_txt;
              List.iter (fun p -> Buffer.add_string nlq (" " ^ p)) where_phrases;
              let q =
                {
                  q_distinct = false;
                  q_select = [ agg_proj ];
                  q_from = from;
                  q_where = where;
                  q_group_by = [];
                  q_having = None;
                  q_order_by = [];
                  q_limit = None;
                }
              in
              Some (q, Buffer.contents nlq, !literals)
            end
            else begin
              let proj_cands =
                List.filter (fun c -> not (List.memq c where_cols)) avail
              in
              if proj_cands = [] then None
              else begin
                let n_proj = min (List.length proj_cands) (1 + Rng.int rng 2) in
                let chosen = Rng.sample rng n_proj proj_cands in
                let projs = List.map (fun c -> proj_col (col_ref_of c)) chosen in
                let entity =
                  match chosen with
                  | c :: _ -> phrase c.Schema.col_table ^ "s"
                  | [] -> entity
                in
                Buffer.add_string nlq
                  (Printf.sprintf "Show the %s of %s"
                     (String.concat " and " (List.map (fun c -> phrase c.Schema.col_name) chosen))
                     entity);
                List.iter (fun p -> Buffer.add_string nlq (" " ^ p)) where_phrases;
                let order, limit =
                  if num_cols <> [] && Rng.bool rng 0.4 then begin
                    let oc = Rng.choose rng num_cols in
                    let dir = if Rng.bool rng 0.5 then Desc else Asc in
                    let dir_txt =
                      match dir with
                      | Desc -> Rng.choose rng [ "from highest to lowest"; "in descending order" ]
                      | Asc -> Rng.choose rng [ "from lowest to highest"; "in ascending order" ]
                    in
                    Buffer.add_string nlq
                      (Printf.sprintf " sorted by %s %s" (phrase oc.Schema.col_name) dir_txt);
                    let limit =
                      if Rng.bool rng 0.45 then begin
                        let k = Rng.choose rng [ 1; 3; 5 ] in
                        if k > 1 then begin
                          Buffer.add_string nlq (Printf.sprintf ", top %d only" k);
                          literals := !literals @ [ iv k ]
                        end
                        else Buffer.add_string nlq ", first one only";
                        Some k
                      end
                      else None
                    in
                    ([ { o_agg = None; o_col = Some (col_ref_of oc); o_dir = dir } ], limit)
                  end
                  else ([], None)
                in
                let q =
                  {
                    q_distinct = false;
                    q_select = projs;
                    q_from = from;
                    q_where = where;
                    q_group_by = [];
                    q_having = None;
                    q_order_by = order;
                    q_limit = limit;
                  }
                in
                Some (q, Buffer.contents nlq, !literals)
              end
            end)

(* Gold queries must not carry joins the query does not need — a redundant
   join would make a strictly simpler equivalent query outrank the gold.
   Counting queries are the exception: COUNT of all rows over a join counts
   join rows, so the chosen FROM is semantic there.  [many_side_table]
   mirrors the NLQ's counting entity. *)
let many_side_table (f : from_clause) =
  match f.f_tables with
  | [ t ] -> Some t
  | _ -> (
      let fk_side =
        List.filter
          (fun t ->
            List.exists (fun j -> String.equal j.j_from.cr_table t) f.f_joins
            && not (List.exists (fun j -> String.equal j.j_to.cr_table t) f.f_joins))
          f.f_tables
      in
      match fk_side, f.f_tables with
      | t :: _, _ -> Some t
      | [], t :: _ -> Some t
      | [], [] -> None)

let rebuild_minimal_from schema q =
  let has_count_star =
    List.exists (fun p -> p.p_agg = Some Count && p.p_col = None) q.q_select
  in
  if q.q_group_by <> [] && has_count_star then Some q
  else begin
    let tables = referenced_tables q in
    let tables =
      if has_count_star then
        match many_side_table q.q_from with
        | Some t when not (List.mem t tables) -> t :: tables
        | _ -> tables
      else tables
    in
    match tables with
    | [] -> (
        match q.q_from.f_tables with
        | t :: _ -> Some { q with q_from = from_table t }
        | [] -> None)
    | _ -> (
        match Duocore.Steiner.tree schema tables with
        | Some tr -> Some { q with q_from = Duocore.Joinpath.from_of_tree tr }
        | None -> None)
  end

let gen_task rng db_name db difficulty =
  let rec try_gen k =
    if k = 0 then None
    else
      match (try attempt rng db difficulty with Exit -> None) with
      | None -> try_gen (k - 1)
      | Some (q, nlq, lits) -> (
          match rebuild_minimal_from (Duodb.Database.schema db) q with
          | None -> try_gen (k - 1)
          | Some q -> (
          let schema = Duodb.Database.schema db in
          match Duocore.Semantics.check_query schema q with
          | Error _ -> try_gen (k - 1)
          | Ok () -> (
              match Duoengine.Executor.run db q with
              | Error _ -> try_gen (k - 1)
              | Ok res ->
                  if res.Duoengine.Executor.res_rows = [] then try_gen (k - 1)
                  else
                    Some
                      {
                        sp_db = db_name;
                        sp_difficulty = difficulty;
                        sp_nlq = nlq;
                        sp_gold = q;
                        sp_literals = lits;
                      })))
  in
  try_gen 40

(* Distribute [total] tasks over [n] databases as evenly as possible. *)
let quotas total n =
  List.init n (fun i -> (total / n) + if i < total mod n then 1 else 0)

(* Shard [f] over [items] on [pool]'s domains, merged by index (fixed
   shard order).  Items carry their own pre-split rng and database, so
   shards share no writable state. *)
let shard_map pool items f =
  match pool with
  | Some p when Duopar.Pool.domains p > 1 ->
      let arr = Array.of_list items in
      let out = Array.make (Array.length arr) None in
      Duopar.Pool.run p (Array.length arr) (fun ~worker:_ i ->
          out.(i) <- Some (f arr.(i)));
      List.filter_map Fun.id (Array.to_list out)
  | _ -> List.map f items

let make_split ?pool split_name ~seed ~n_dbs ~easy ~medium ~hard =
  let rng = Rng.create seed in
  (* Determinism under sharding: every [Rng.split rng] below sits in the
     exact structural position of the sequential code, so the parent
     stream is consumed in the same order whether or not a pool is
     supplied; the expensive work (database build, task generation) then
     runs from the captured child rngs and is merged by index. *)
  let db_specs =
    List.init n_dbs (fun i ->
        let dom = List.nth domains (i mod List.length domains) in
        let name = Printf.sprintf "%s_%d" dom.dom_name (i / List.length domains + 1) in
        (name, dom, Rng.split rng))
  in
  let databases =
    shard_map pool db_specs (fun (name, dom, drng) ->
        (name, dom.dom_build drng name))
  in
  let gen_for difficulty total =
    let specs =
      List.map2
        (fun (name, db) quota -> (name, db, quota, Rng.split rng))
        databases (quotas total n_dbs)
    in
    List.concat
      (shard_map pool specs (fun (name, db, quota, trng) ->
           (* Prefer distinct gold queries; accept a repeat draw only after
              several attempts so small schemas can still fill quotas. *)
           let rec collect n acc seen =
             if n = 0 then List.rev acc
             else
               let rec draw k =
                 match gen_task trng name db difficulty with
                 | None -> None
                 | Some task ->
                     let key = Duosql.Pretty.query task.sp_gold in
                     if List.mem key seen && k > 0 then draw (k - 1)
                     else Some (task, key)
               in
               match draw 20 with
               | None -> List.rev acc
               | Some (task, key) -> collect (n - 1) (task :: acc) (key :: seen)
           in
           collect quota [] []))
  in
  let tasks = gen_for `Easy easy @ gen_for `Medium medium @ gen_for `Hard hard in
  { split_name; databases; tasks }

let dev ?pool () =
  make_split ?pool "spider-dev" ~seed:1001 ~n_dbs:20 ~easy:239 ~medium:252
    ~hard:98

let test ?pool () =
  make_split ?pool "spider-test" ~seed:2002 ~n_dbs:40 ~easy:524 ~medium:481
    ~hard:242

let mini ?(seed = 7) ?pool ~n_dbs ~per_db () =
  let third = per_db / 3 in
  make_split ?pool "spider-mini" ~seed ~n_dbs ~easy:(third * n_dbs)
    ~medium:(third * n_dbs)
    ~hard:((per_db - (2 * third)) * n_dbs)

let schema_stats split =
  let n = float_of_int (List.length split.databases) in
  let sum f =
    List.fold_left (fun acc (_, db) -> acc + f (Duodb.Database.schema db)) 0 split.databases
  in
  ( float_of_int (sum Schema.num_tables) /. n,
    float_of_int (sum Schema.num_columns) /. n,
    float_of_int (sum Schema.num_foreign_keys) /. n )
