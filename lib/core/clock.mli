(** Clocks for the enumeration loop.

    Budgets and candidate timestamps must reflect {e real} time: the
    paper's 60 s budget (Section 5) is wall clock, and a synthesis run
    that blocks on anything other than CPU would otherwise overrun its
    budget unnoticed.  Profiling accumulators sample far more often than
    budgets do — once per cascade stage per pushed child — so they use
    the cheapest clock available instead. *)

(** Wall-clock seconds since an arbitrary epoch.  Backed by
    [Unix.gettimeofday]: the closest thing to a monotonic clock available
    without external dependencies; callers only ever take differences. *)
val now : unit -> float

(** Processor time ([Sys.time]) — insensitive to scheduling noise, but a
    sample costs a syscall (~250 ns), which swamps sub-microsecond
    intervals.  Kept for coarse accumulators. *)
val cpu : unit -> float

(** Monotonic wall clock via [clock_gettime(CLOCK_MONOTONIC)] — served
    from the vDSO, so a sample costs ~20 ns with nanosecond resolution.
    The right clock for per-stage profiling accumulators, where the
    measured interval is often shorter than one [cpu] sample. *)
val mono : unit -> float
