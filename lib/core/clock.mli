(** Clocks for the enumeration loop.

    Budgets and candidate timestamps must reflect {e real} time: the
    paper's 60 s budget (Section 5) is wall clock, and a synthesis run
    that blocks on anything other than CPU would otherwise overrun its
    budget unnoticed.  Stage profiling, by contrast, wants processor
    time, which is insensitive to scheduling noise. *)

(** Wall-clock seconds since an arbitrary epoch.  Backed by
    [Unix.gettimeofday]: the closest thing to a monotonic clock available
    without external dependencies; callers only ever take differences. *)
val now : unit -> float

(** Processor time ([Sys.time]) — for profiling accumulators only, never
    for budgets. *)
val cpu : unit -> float
