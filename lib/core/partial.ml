open Duosql.Ast

type phase =
  | P_keywords
  | P_num_proj
  | P_proj_target of int
  | P_proj_agg of int
  | P_where_num
  | P_where_col of int
  | P_where_op of int
  | P_where_conn
  | P_group_col
  | P_having_presence
  | P_having_pred
  | P_order_target
  | P_order_dir
  | P_limit
  | P_done
  | P_joinpath of phase

type proj_slot = {
  pj_target : Duoguide.Model.col_target;
  pj_agg : Duosql.Ast.agg option option;
}

type t = {
  phase : phase;
  kw : Duoguide.Model.kw_set;
  nproj : int;
  projs : proj_slot list;
  where_n : int;
  where_preds : pred list;
  where_pending : Duodb.Schema.column option;
  conn : connective;
  group_col : col_ref option;
  having_pred : pred option;
  order_item : (agg option * col_ref option) option;
  order_dir : dir;
  limit : int option;
  from : from_clause option;
  confidence : float;
  depth : int;
}

let root =
  {
    phase = P_keywords;
    kw = { Duoguide.Model.kw_where = false; kw_group = false; kw_order = false };
    nproj = 0;
    projs = [];
    where_n = 0;
    where_preds = [];
    where_pending = None;
    conn = And;
    group_col = None;
    having_pred = None;
    order_item = None;
    order_dir = Asc;
    limit = None;
    from = None;
    confidence = 1.0;
    depth = 0;
  }

let is_complete t = t.phase = P_done

let target_col = function
  | Duoguide.Model.Target_column c -> Some c
  | Duoguide.Model.Target_count_star -> None

let col_ref_of_column c =
  col c.Duodb.Schema.col_table c.Duodb.Schema.col_name

let proj_of_slot slot =
  match slot.pj_target, slot.pj_agg with
  | Duoguide.Model.Target_count_star, _ -> Some count_star
  | Duoguide.Model.Target_column c, Some agg ->
      Some { p_agg = agg; p_col = Some (col_ref_of_column c); p_distinct = false }
  | Duoguide.Model.Target_column _, None -> None

let to_query t =
  if not (is_complete t) then None
  else
    match t.from with
    | None -> None
    | Some from ->
        let projs = List.filter_map proj_of_slot t.projs in
        if List.length projs <> List.length t.projs then None
        else
          let where =
            match t.where_preds with
            | [] -> None
            | preds -> Some { c_preds = preds; c_conn = t.conn }
          in
          let having =
            Option.map (fun p -> { c_preds = [ p ]; c_conn = And }) t.having_pred
          in
          let order_by =
            match t.order_item with
            | None -> []
            | Some (agg, col) -> [ { o_agg = agg; o_col = col; o_dir = t.order_dir } ]
          in
          Some
            {
              q_distinct = false;
              q_select = projs;
              q_from = from;
              q_where = where;
              q_group_by = Option.to_list t.group_col;
              q_having = having;
              q_order_by = order_by;
              q_limit = t.limit;
            }

let referenced_tables t =
  let cols =
    List.filter_map (fun s -> target_col s.pj_target) t.projs
    |> List.map col_ref_of_column
  in
  let where_cols =
    List.filter_map (fun p -> p.pr_col) t.where_preds
    @ (match t.where_pending with
      | Some c -> [ col_ref_of_column c ]
      | None -> [])
  in
  let having_cols =
    Option.fold ~none:[] ~some:(fun p -> Option.to_list p.pr_col) t.having_pred
  in
  let order_cols =
    Option.fold ~none:[] ~some:(fun (_, c) -> Option.to_list c) t.order_item
  in
  let all = cols @ where_cols @ Option.to_list t.group_col @ having_cols @ order_cols in
  List.sort_uniq String.compare (List.map (fun c -> c.cr_table) all)

let decided_projections t =
  List.map (fun s -> (s.pj_agg, target_col s.pj_target)) t.projs

let used_literals t =
  List.concat_map
    (fun p ->
      match p.pr_rhs with
      | Cmp (_, v) -> [ v ]
      | Between (lo, hi) -> [ lo; hi ])
    (t.where_preds @ Option.to_list t.having_pred)

let to_string t =
  let slot_str s =
    match proj_of_slot s with
    | Some p -> Duosql.Pretty.proj p
    | None -> (
        match target_col s.pj_target with
        | Some c -> Printf.sprintf "?(%s.%s)" c.Duodb.Schema.col_table c.Duodb.Schema.col_name
        | None -> "?")
  in
  let select =
    match t.projs with
    | [] -> "?"
    | slots ->
        let holes = max 0 (t.nproj - List.length slots) in
        String.concat ", " (List.map slot_str slots @ List.init holes (fun _ -> "?"))
  in
  let from =
    match t.from with
    | Some f -> Duosql.Pretty.from_clause f
    | None -> "?"
  in
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "SELECT %s FROM %s" select from);
  if t.kw.Duoguide.Model.kw_where && t.phase <> P_keywords then begin
    let preds = List.map Duosql.Pretty.pred t.where_preds in
    let holes = max 0 (t.where_n - List.length preds) in
    let conn = match t.conn with And -> " AND " | Or -> " OR " in
    Buffer.add_string buf
      (" WHERE " ^ String.concat conn (preds @ List.init holes (fun _ -> "?")))
  end;
  if t.kw.Duoguide.Model.kw_group && t.phase <> P_keywords then
    Buffer.add_string buf
      (match t.group_col with
      | Some c -> " GROUP BY " ^ Duosql.Pretty.col_ref c
      | None -> " GROUP BY ?");
  Option.iter (fun p -> Buffer.add_string buf (" HAVING " ^ Duosql.Pretty.pred p)) t.having_pred;
  if t.kw.Duoguide.Model.kw_order && t.phase <> P_keywords then
    Buffer.add_string buf
      (match t.order_item with
      | Some (agg, c) ->
          " ORDER BY "
          ^ Duosql.Pretty.order_item { o_agg = agg; o_col = c; o_dir = t.order_dir }
      | None -> " ORDER BY ?");
  Option.iter (fun n -> Buffer.add_string buf (Printf.sprintf " LIMIT %d" n)) t.limit;
  Buffer.contents buf

let rec phase_index = function
  | P_joinpath inner -> 1000 + phase_index inner
  | P_keywords -> 0
  | P_num_proj -> 1
  | P_proj_target i -> 100 + i
  | P_proj_agg i -> 200 + i
  | P_where_num -> 2
  | P_where_col i -> 300 + i
  | P_where_op i -> 400 + i
  | P_where_conn -> 3
  | P_group_col -> 4
  | P_having_presence -> 5
  | P_having_pred -> 6
  | P_order_target -> 7
  | P_order_dir -> 8
  | P_limit -> 9
  | P_done -> 10

let key t =
  Printf.sprintf "%d|%d|%d|%s|%b%b%b|%s|%s"
    (phase_index t.phase) t.nproj t.where_n
    (match t.conn with And -> "&" | Or -> "|")
    t.kw.Duoguide.Model.kw_where t.kw.Duoguide.Model.kw_group
    t.kw.Duoguide.Model.kw_order
    (match t.where_pending with
    | Some c -> c.Duodb.Schema.col_table ^ "." ^ c.Duodb.Schema.col_name
    | None -> "")
    (to_string t)

(* Whether the decided predicate list and connective can still change.
   Mirrors [Verify.where_done]; duplicated because the dependency runs
   the other way. *)
let rec where_settled = function
  | P_joinpath inner -> where_settled inner
  | P_keywords | P_num_proj | P_proj_target _ | P_proj_agg _ | P_where_num
  | P_where_col _ | P_where_op _ | P_where_conn ->
      false
  | P_group_col | P_having_presence | P_having_pred | P_order_target
  | P_order_dir | P_limit | P_done ->
      true

let canonical_key t =
  (* Interval-folding the conjuncts is only meaning-preserving when the
     predicate set is conjunctive and settled; otherwise fall back to
     sorting, which is sound under either connective (commutativity and
     idempotence).  FROM and the join path stay verbatim: their order can
     steer executor row order, which a sorted sketch observes. *)
  let fold_ok =
    match t.where_preds with
    | [] | [ _ ] -> true
    | _ :: _ :: _ -> where_settled t.phase && t.conn = And
  in
  let where_preds =
    if fold_ok then Duolint.Duosem.canonical_conjuncts t.where_preds
    else Duolint.Duosem.sorted_preds t.where_preds
  in
  let having_pred =
    match t.having_pred with
    | None -> None
    | Some p -> (
        match Duolint.Duosem.canonical_conjuncts [ p ] with
        | [ p' ] -> Some p'
        | [] | _ :: _ :: _ -> Some p)
  in
  (* Folding can erase which tagged literals the state consumed (x > 3
     AND x > 5 folds like x > 4 AND x > 5), and the complete-stage
     literal check observes exactly that — so the key carries the used
     literal multiset verbatim. *)
  let lits =
    used_literals t
    |> List.map Duodb.Value.to_sql
    |> List.sort String.compare
    |> String.concat ","
  in
  Printf.sprintf "%d|%d|%d|%s|%b%b%b|%s|%s|%s"
    (phase_index t.phase) t.nproj t.where_n
    (match t.conn with And -> "&" | Or -> "|")
    t.kw.Duoguide.Model.kw_where t.kw.Duoguide.Model.kw_group
    t.kw.Duoguide.Model.kw_order
    (match t.where_pending with
    | Some c -> c.Duodb.Schema.col_table ^ "." ^ c.Duodb.Schema.col_name
    | None -> "")
    lits
    (to_string { t with where_preds; having_pred })

let join_length t =
  match t.from with
  | None -> 0
  | Some f -> List.length f.f_joins

let compare_priority (a, seq_a) (b, seq_b) =
  let c = Float.compare b.confidence a.confidence in
  if c <> 0 then c
  else
    let c = Int.compare (join_length a) (join_length b) in
    if c <> 0 then c else Int.compare seq_a seq_b
