module Value = Duodb.Value

type cell =
  | Any
  | Exact of Value.t
  | Range of Value.t * Value.t

type tuple = cell list

type t = {
  types : Duodb.Datatype.t list option;
  tuples : tuple list;
  sorted : bool;
  limit : int;
  negatives : tuple list;
  min_support : int option;
}

let empty =
  { types = None; tuples = []; sorted = false; limit = 0; negatives = [];
    min_support = None }

let make ?types ?(tuples = []) ?(sorted = false) ?(limit = 0) ?(negatives = [])
    ?min_support () =
  { types; tuples; sorted; limit; negatives; min_support }

let required_support t =
  let n = List.length t.tuples in
  match t.min_support with
  | None -> n
  | Some m -> max 0 (min m n)

let add_positive t tuple = { t with tuples = t.tuples @ [ tuple ] }
let add_negative t tuple = { t with negatives = t.negatives @ [ tuple ] }

let cell_matches cell v =
  match cell with
  | Any -> true
  | Exact x -> Value.equal x v
  | Range (lo, hi) ->
      (not (Value.is_null v)) && Value.compare v lo >= 0 && Value.compare v hi <= 0

let tuple_matches tuple row =
  List.length tuple = Array.length row
  && List.for_all2 cell_matches tuple (Array.to_list row)

(* Each example tuple needs a distinct result row (Definition 2.4, item 2):
   backtracking bipartite matching, generalized to "at least [support] of
   the tuples must be assigned" for the noisy-example extension.  Example
   counts are tiny (typically 2), so exhaustive search is fine.

   [tuple_ok] abstracts how a tuple is tested against a row so the
   full-width check and the position-restricted check used on partial
   queries share one matcher and cannot drift. *)
let distinct_match_core ~tuple_ok support tuples rows =
  let rows = Array.of_list rows in
  let n = Array.length rows in
  let total = List.length tuples in
  let rec assign matched skipped used = function
    | [] -> matched >= support
    | tup :: rest ->
        (* can we still reach the target even if everything else fails? *)
        matched + (total - matched - skipped) >= support
        && (let rec try_row i =
              if i >= n then false
              else if (not (List.mem i used)) && tuple_ok tup rows.(i) then
                assign (matched + 1) skipped (i :: used) rest || try_row (i + 1)
              else try_row (i + 1)
            in
            try_row 0
           || assign matched (skipped + 1) used rest)
  in
  support <= 0 || assign 0 0 [] tuples

let distinct_match_atleast support tuples rows =
  distinct_match_core ~tuple_ok:tuple_matches support tuples rows

(* Matching restricted to decided projection positions: [(out_idx,
   cell_idx)] says result column [out_idx] must satisfy example cell
   [cell_idx]; cells beyond a tuple's width are unconstrained. *)
let cells_match_at positions tuple row =
  let cells = Array.of_list tuple in
  List.for_all
    (fun (out_idx, cell_idx) ->
      cell_idx >= Array.length cells || cell_matches cells.(cell_idx) row.(out_idx))
    positions

let distinct_match_on ~support positions tuples rows =
  distinct_match_core ~tuple_ok:(cells_match_at positions) support tuples rows



(* Order-preserving variant (Definition 2.4, item 3): example tuples must
   match result rows at strictly increasing indices, in the order the
   examples were given; at least [support] of them under noise tolerance. *)
let ordered_match_atleast support tuples rows =
  let rows = Array.of_list rows in
  let n = Array.length rows in
  let total = List.length tuples in
  let rec assign matched skipped from = function
    | [] -> matched >= support
    | tup :: rest ->
        matched + (total - matched - skipped) >= support
        && (let rec try_row i =
              if i >= n then false
              else if tuple_matches tup rows.(i) then
                assign (matched + 1) skipped (i + 1) rest || try_row (i + 1)
              else try_row (i + 1)
            in
            try_row from
           || assign matched (skipped + 1) from rest)
  in
  support <= 0 || assign 0 0 0 tuples



let satisfies ?cache ?max_rows t db q =
  let open Duosql.Ast in
  let clause_ok =
    (* tau obliges an ORDER BY clause and k a LIMIT clause (Example 3.3).
       The implications only run one way: an unchecked sorted box means
       "no order constraint", not "must be unordered" — Definition 2.4
       constrains the result order only when tau holds. *)
    ((not t.sorted) || q.q_order_by <> [])
    && (if t.limit = 0 then q.q_limit = None
        else match q.q_limit with Some n -> n <= t.limit | None -> false)
  in
  clause_ok
  &&
  match Duoengine.Executor.run ?cache ?max_rows db q with
  | Error _ -> false
  | Ok res ->
      let types_ok =
        match t.types with
        | None -> true
        | Some tys ->
            List.length tys = List.length res.Duoengine.Executor.res_cols
            && List.for_all2
                 (fun ty (_, ty') -> Duodb.Datatype.equal ty ty')
                 tys res.Duoengine.Executor.res_cols
      in
      let tuples_ok =
        t.tuples = []
        || (List.for_all
              (fun tup ->
                List.length tup = List.length res.Duoengine.Executor.res_cols)
              t.tuples
           &&
           let support = required_support t in
           if t.sorted && List.length t.tuples >= 2 then
             ordered_match_atleast support t.tuples res.Duoengine.Executor.res_rows
           else distinct_match_atleast support t.tuples res.Duoengine.Executor.res_rows)
      in
      let negatives_ok =
        List.for_all
          (fun neg ->
            List.length neg = List.length res.Duoengine.Executor.res_cols
            && not
                 (List.exists (tuple_matches neg) res.Duoengine.Executor.res_rows))
          t.negatives
      in
      let limit_ok =
        t.limit = 0 || List.length res.Duoengine.Executor.res_rows <= t.limit
      in
      types_ok && tuples_ok && negatives_ok && limit_ok

let num_tuples t = List.length t.tuples

let width t =
  match t.types with
  | Some tys -> Some (List.length tys)
  | None -> (
      match t.tuples with
      | tup :: _ -> Some (List.length tup)
      | [] -> None)

type refinement = Tightening | Incomparable

(* [xs] appears in [ys] in order (not necessarily contiguously). *)
let rec subsequence xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: xs', y :: ys' ->
      if x = y then subsequence xs' ys' else subsequence xs ys'

let refines ~old ~new_ =
  (* Tightening must guarantee two things at once: (a) every cascade
     stage is monotone — a state failing under [old] also fails under
     [new_] — and (b) the guidance hints derived from the sketch header
     (types, width, limit) are unchanged, so a rebased run expands and
     scores exactly like a from-root run.  Header edits are therefore
     Incomparable even when they logically restrict the query set. *)
  let header_fixed =
    old.types = new_.types && old.limit = new_.limit
    && width old = width new_
  in
  (* With a partial support threshold, adding a tuple is NOT a
     tightening: a result matching only the new tuple can satisfy
     [new_] yet fail [old].  Extending the example list is only safe
     when both sketches demand every tuple. *)
  let tuples_tighten =
    if old.tuples = new_.tuples then
      required_support new_ >= required_support old
    else
      subsequence old.tuples new_.tuples
      && required_support old = List.length old.tuples
      && required_support new_ = List.length new_.tuples
  in
  let negatives_tighten =
    List.for_all (fun n -> List.mem n new_.negatives) old.negatives
  in
  let sorted_tighten = (not old.sorted) || new_.sorted in
  if header_fixed && tuples_tighten && negatives_tighten && sorted_tighten
  then Tightening
  else Incomparable

let pp_cell ppf = function
  | Any -> Format.pp_print_string ppf "_"
  | Exact v -> Value.pp ppf v
  | Range (lo, hi) -> Format.fprintf ppf "[%a,%a]" Value.pp lo Value.pp hi

let pp ppf t =
  Format.fprintf ppf "@[<v>TSQ{";
  (match t.types with
  | None -> Format.fprintf ppf " types=?;"
  | Some tys ->
      Format.fprintf ppf " types=(%s);"
        (String.concat "," (List.map Duodb.Datatype.to_string tys)));
  List.iter
    (fun tup ->
      Format.fprintf ppf "@, (%s)"
        (String.concat ", "
           (List.map (fun c -> Format.asprintf "%a" pp_cell c) tup)))
    t.tuples;
  List.iter
    (fun tup ->
      Format.fprintf ppf "@, NOT (%s)"
        (String.concat ", "
           (List.map (fun c -> Format.asprintf "%a" pp_cell c) tup)))
    t.negatives;
  Format.fprintf ppf "@, sorted=%b limit=%d%s }@]" t.sorted t.limit
    (match t.min_support with
    | None -> ""
    | Some m -> Printf.sprintf " support>=%d" m)
