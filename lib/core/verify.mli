(** Ascending-cost cascading verification (Section 3.4, Algorithm 3).

    Stages run cheapest-first and prune a partial query as early as its
    decided parts contradict the TSQ:

    + [VerifyClauses] — clause presence vs the sketch's sorted flag and
      limit (no database access);
    + [VerifySemantics] — the Table 4 rules on decided parts (no database
      access);
    + [VerifyColumnTypes] — projection types vs the sketch's type
      annotations (schema only);
    + [VerifyByColumn] — column-wise existence probes, one per decided
      projection and example cell (cheap single-table queries, cached);
    + [VerifyByRow] — row-wise probes requiring example cells to co-occur
      in one tuple; for aggregated projections this waits until WHERE and
      GROUP BY are complete ([CanCheckRows]);
    + for complete queries — [VerifyLiterals] (all tagged NLQ literals
      appear in the query) and the full Definition 2.4 satisfaction check
      (which subsumes [VerifyByOrder]).

    All stages are {e monotone}: a stage that fails on a partial query also
    fails on every completion of it, so pruning never discards a prefix of
    a satisfying query (property-tested in the suite). *)

type stats = {
  mutable column_probes : int;  (** column-wise verification queries run *)
  mutable index_probes : int;
      (** column probes answered by the inverted index, no scan *)
  mutable row_probes : int;  (** row-wise verification queries run *)
  mutable full_executions : int;  (** complete-query executions *)
  mutable relcache_hits : int;  (** joined relations served from cache *)
  mutable pushdown_builds : int;
      (** relations built with predicates pushed into base scans *)
  mutable pruned : int;  (** states rejected by any stage *)
  mutable pruned_by_clauses : int;
  mutable pruned_by_semantics : int;
  mutable pruned_by_types : int;
  mutable pruned_by_column : int;
  mutable pruned_by_row : int;
  mutable pruned_by_complete : int;
  mutable stage_seconds : float array;
      (** processor time per cascade stage: clauses, semantics, types,
          column, row, complete *)
}

val new_stats : unit -> stats

(** A verification environment: database, sketch, tagged literals, probe
    cache and counters. *)
type env

(** [semantics = false] disables the Table 4 rules (for the
    ablation bench); default [true].  [index] supplies a prebuilt inverted
    index for column probes (sessions already hold one); without it the
    index is built lazily on first text probe.  [relcache] shares a
    relation cache across environments — sound only while the database is
    not mutated. *)
val make_env :
  ?stats:stats ->
  ?semantics:bool ->
  ?index:Duodb.Index.t ->
  ?relcache:Duoengine.Executor.relation_cache ->
  db:Duodb.Database.t ->
  tsq:Tsq.t option ->
  literals:Duodb.Value.t list ->
  unit ->
  env

val stats : env -> stats

(** [verify env pq] is Algorithm 3's [Verify]: true when the partial query
    survives every applicable stage. *)
val verify : env -> Partial.t -> bool

(** Individual stages, exposed for tests and the cascade-order ablation. *)
val verify_clauses : env -> Partial.t -> bool

val verify_semantics : env -> Partial.t -> bool
val verify_column_types : env -> Partial.t -> bool
val verify_by_column : env -> Partial.t -> bool

(** Returns true when row-wise checking is allowed on this state
    ([CanCheckRows]). *)
val can_check_rows : Partial.t -> bool

val verify_by_row : env -> Partial.t -> bool

(** Complete-query stage: literal usage plus full TSQ satisfaction. *)
val verify_complete : env -> Duosql.Ast.query -> bool
