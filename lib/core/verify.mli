(** Ascending-cost cascading verification (Section 3.4, Algorithm 3).

    Stages run cheapest-first and prune a partial query as early as its
    decided parts contradict the TSQ:

    + [VerifyStatic] — Duolint stage 0: schema/type errors, unsatisfiable
      predicates and broken structure on decided clauses (no database
      access, no TSQ needed);
    + [VerifyClauses] — clause presence vs the sketch's sorted flag and
      limit (no database access);
    + [VerifyCardinality] — Duosem's abstract row-count upper bound vs
      the sketch's required tuple count (schema only);
    + [VerifySemantics] — the Table 4 rules on decided parts (no database
      access);
    + [VerifyColumnTypes] — projection types vs the sketch's type
      annotations (schema only);
    + [VerifyByColumn] — column-wise existence probes, one per decided
      projection and example cell (cheap single-table queries, cached);
    + [VerifyByRow] — row-wise probes requiring example cells to co-occur
      in one tuple; for aggregated projections this waits until WHERE and
      GROUP BY are complete ([CanCheckRows]);
    + for complete queries — [VerifyLiterals] (all tagged NLQ literals
      appear in the query) and the full Definition 2.4 satisfaction check
      (which subsumes [VerifyByOrder]).

    All stages are {e monotone}: a stage that fails on a partial query also
    fails on every completion of it, so pruning never discards a prefix of
    a satisfying query (property-tested in the suite). *)

(** The cascade's stages, cheapest first.  [stats.stage_seconds] is
    indexed by {!stage_index}; {!all_stages} fixes the report order. *)
type stage =
  | S_static
  | S_clauses
  | S_cardinality
  | S_semantics
  | S_types
  | S_column
  | S_row
  | S_complete

val all_stages : stage list
val stage_index : stage -> int
val stage_name : stage -> string

type stats = {
  mutable column_probes : int;  (** column-wise verification queries run *)
  mutable index_probes : int;
      (** column probes answered by the inverted index, no scan *)
  mutable row_probes : int;  (** row-wise verification queries run *)
  mutable full_executions : int;  (** complete-query executions *)
  mutable relcache_hits : int;  (** joined relations served from cache *)
  mutable pushdown_builds : int;
      (** relations built with predicates pushed into base scans *)
  mutable pruned : int;  (** states rejected by any stage *)
  mutable pruned_by_static : int;
  mutable pruned_by_clauses : int;
  mutable pruned_by_cardinality : int;
      (** states whose Duosem row-count upper bound is below the
          sketch's required tuple count *)
  mutable pruned_by_semantics : int;
  mutable pruned_by_types : int;
  mutable pruned_by_column : int;
  mutable pruned_by_row : int;
  mutable pruned_by_complete : int;
  mutable dedup_semantic : int;
      (** enumerator pushes/emissions suppressed because a
          Duosem-canonically-equal state or candidate was already seen *)
  mutable static_warnings : int;
      (** Duolint warnings used to deprioritize frontier pushes *)
  mutable batch_rounds : int;
      (** {!verify_batch} rounds that executed at least one row probe *)
  mutable batched_probes : int;
      (** row probes served by a shared base scan inside a batch round *)
  mutable stage_seconds : float array;
      (** processor time per cascade stage, indexed by {!stage_index} *)
}

val new_stats : unit -> stats

(** Zero every counter of [s] in place (including [stage_seconds]).
    Lets the Duopar task arenas recycle one stats record per task slot
    across rounds instead of allocating fresh records. *)
val reset_stats : stats -> unit

(** Per-stage prune counter, by the same enum that indexes
    [stage_seconds]. *)
val pruned_by : stats -> stage -> int

(** [merge_stats ~into s] adds every counter of [s] into [into]
    (elementwise for [stage_seconds]).  The Duopar loop runs each
    speculative verification task against a private stats record and
    merges it into the run's totals only when the task's state is
    committed, so parallel prune counts match the sequential run
    exactly.  Note [relcache_hits]/[pushdown_builds] are summed too —
    callers must ensure each merged record carries only its own
    relation cache's numbers. *)
val merge_stats : into:stats -> stats -> unit

(** Process-wide count of cascade invocations ({!verify} +
    {!check_static}) across all domains and runs — the one globally
    shared counter, backed by an [Atomic].  Monotone; callers interested
    in a single run take a delta. *)
val total_verifies : unit -> int

(** A verification environment: database, sketch, tagged literals, probe
    cache and counters. *)
type env

(** [semantics = false] disables the Table 4 rules and [static = false]
    disables Duolint stage 0 (both for the ablation bench); default
    [true].  [index] supplies a prebuilt inverted index for column probes
    (sessions already hold one); without it the index is built lazily on
    first text probe.  [relcache] shares a relation cache across
    environments — sound only while the database is not mutated. *)
val make_env :
  ?stats:stats ->
  ?semantics:bool ->
  ?static:bool ->
  ?index:Duodb.Index.t ->
  ?relcache:Duoengine.Executor.relation_cache ->
  db:Duodb.Database.t ->
  tsq:Tsq.t option ->
  literals:Duodb.Value.t list ->
  unit ->
  env

val stats : env -> stats

(** The environment's relation cache (per-domain in parallel runs), for
    aggregating {!Duoengine.Executor.cache_stats} across domains. *)
val relcache : env -> Duoengine.Executor.relation_cache

(** [fork_env env] builds a per-domain clone for Duopar workers: the
    database, TSQ, literals and the (forced) inverted index are shared —
    all immutable during synthesis — while every mutable part (probe
    caches, relation cache, stats, Duolint prepared tables with their
    one-slot memos) is private to the clone.  Caches only memoize pure
    probe results, so which domain answers a probe can never change a
    verdict. *)
val fork_env : env -> env

(** [with_stats env s] is [env] with [s] as its stats sink; caches are
    shared with [env].  Used to give each speculative task a private
    record that is merged (or discarded) at commit time. *)
val with_stats : env -> stats -> env

(** [set_stats env s] retargets [env]'s stats sink at [s] in place — the
    zero-allocation counterpart of {!with_stats}.  Only safe from the
    domain that owns [env]; Duopar workers each own a {!fork_env} clone,
    so retargeting between arena tasks never races. *)
val set_stats : env -> stats -> unit

(** [verify env pq] is Algorithm 3's [Verify]: true when the partial query
    survives every applicable stage. *)
val verify : env -> Partial.t -> bool

(** [verify_batch env children] runs the cascade over a sibling set (the
    children of one expansion) and returns each child with its verdict,
    in order.  Verdicts, prune counters and probe counts are exactly
    those of calling {!verify} on each child in sequence; the difference
    is purely executional — the uncached row probes of the surviving
    children are deduplicated and executed through one
    {!Duoengine.Executor.run_batch} call, so candidates probing the same
    base table share a single scan ([stats.batch_rounds] /
    [stats.batched_probes] report the activity). *)
val verify_batch : env -> Partial.t list -> (Partial.t * bool) list

(** Project an enumerator state into Duolint's open-world clause view.
    Finality flags are conservative: set only when no later decision can
    change the clause (FROM only on complete states — join-path
    construction replaces it wholesale). *)
val outline_of_partial : Partial.t -> Duolint.Outline.t

(** Individual stages, exposed for tests and the cascade-order ablation. *)
val verify_static : env -> Partial.t -> bool

(** [verify_static] with time and prunes attributed to stage 0 — the
    frontier-side entry point for the enumerator, so statically dead
    children are rejected before they are pushed. *)
val check_static : env -> Partial.t -> bool

(** Duolint warning count on the state's decided clauses, accumulated
    into [stats.static_warnings]; the enumerator uses it to deprioritize
    (never prune) suspicious states. *)
val static_warnings : env -> Partial.t -> int

(** Stage-0 errors on a complete query (also enforced inside
    {!verify_complete} so partial-query pruning stays monotone). *)
val verify_static_query : env -> Duosql.Ast.query -> bool

val verify_clauses : env -> Partial.t -> bool

(** Duosem stage: prunes when the state's abstract row-count upper bound
    ({!Duolint.Duosem.bound} over {!outline_of_partial}) is strictly
    below the sketch's required tuple count.  Monotone because the bound
    only tightens as more clauses are decided. *)
val verify_cardinality : env -> Partial.t -> bool

val verify_semantics : env -> Partial.t -> bool
val verify_column_types : env -> Partial.t -> bool
val verify_by_column : env -> Partial.t -> bool

(** Returns true when row-wise checking is allowed on this state
    ([CanCheckRows]). *)
val can_check_rows : Partial.t -> bool

val verify_by_row : env -> Partial.t -> bool

(** Complete-query stage: literal usage plus full TSQ satisfaction. *)
val verify_complete : env -> Duosql.Ast.query -> bool

(** [retarget env ~tsq] points the environment at a tightened sketch for
    {!Enumerate.rebase}.  The column-probe and range caches memoize pure
    database facts and carry over; the row-probe cache memoizes match
    verdicts against the sketch's tuples and is reset. *)
val retarget : env -> tsq:Tsq.t -> env

(** [reverify env t] re-runs only the cascade stages whose verdict can
    change under a [Tsq.Tightening] edit — [S_clauses], [S_cardinality]
    (the required tuple count only grows), [S_column], [S_row], and the
    full complete-query check — on a state that already survived the
    full cascade under the pre-refinement sketch.
    [S_static]/[S_semantics] never read the sketch and [S_types] reads
    only the (unchanged) type annotations, so their verdicts carry.
    Counts as a cascade invocation in {!total_verifies}. *)
val reverify : env -> Partial.t -> bool

(** [reverify_query env q] re-checks an already-emitted candidate under
    the retargeted sketch, with time and prunes attributed to the
    complete stage. *)
val reverify_query : env -> Duosql.Ast.query -> bool
