open Duosql.Ast

let edge_to_join (e : Duodb.Schema.foreign_key) =
  {
    j_from = col e.Duodb.Schema.fk_table e.Duodb.Schema.fk_column;
    j_to = col e.Duodb.Schema.pk_table e.Duodb.Schema.pk_column;
  }

let from_of_tree (tr : Steiner.tree) =
  { f_tables = tr.Steiner.tr_tables; f_joins = List.map edge_to_join tr.Steiner.tr_edges }

let covers from tables = List.for_all (fun t -> List.mem t from.f_tables) tables
let length from = List.length from.f_joins

let clause_equal a b =
  List.sort String.compare a.f_tables = List.sort String.compare b.f_tables

(* One-FK-hop extensions (Algorithm 2, lines 10-12): for each FK edge
   incident to a tree table and leading to a table outside the tree, add
   the join. *)
let extensions schema (from : from_clause) =
  List.concat_map
    (fun t ->
      List.filter_map
        (fun e ->
          let next =
            if String.equal e.Duodb.Schema.fk_table t then e.Duodb.Schema.pk_table
            else e.Duodb.Schema.fk_table
          in
          if List.mem next from.f_tables then None
          else
            Some
              {
                f_tables = from.f_tables @ [ next ];
                f_joins = from.f_joins @ [ edge_to_join e ];
              })
        (Duodb.Schema.join_edges schema ~table:t))
    from.f_tables

(* Construction is called once per enumerated child state; memoize per
   (schema, tables, depth).  Schemas are immutable during synthesis, but
   the key must capture the join-relevant structure, not just the schema
   name: two same-named schemas with different FK graphs must not share
   entries (found by Duocheck — its fuzz schemas, all named "fuzzdb",
   were served each other's join paths). *)
let memo : (string * string * int, from_clause list) Hashtbl.t = Hashtbl.create 256

let schema_signature (schema : Duodb.Schema.t) =
  String.concat "|"
    (List.map
       (fun (e : Duodb.Schema.foreign_key) ->
         e.Duodb.Schema.fk_table ^ "." ^ e.Duodb.Schema.fk_column ^ ">"
         ^ e.Duodb.Schema.pk_table ^ "." ^ e.Duodb.Schema.pk_column)
       schema.Duodb.Schema.foreign_keys)
  ^ "#"
  ^ String.concat ","
      (List.map
         (fun (t : Duodb.Schema.table) -> t.Duodb.Schema.tbl_name)
         schema.Duodb.Schema.tables)

let construct_uncached ?(depth = 1) schema ~tables =
  match tables with
  | [] ->
      (* No column references yet: every table is a candidate base
         (Algorithm 2, line 6). *)
      List.map
        (fun ts -> from_table ts.Duodb.Schema.tbl_name)
        schema.Duodb.Schema.tables
  | _ -> (
      match Steiner.tree schema tables with
      | None -> []
      | Some tr ->
          let base = from_of_tree tr in
          let rec expand_level level frontier acc =
            if level = 0 then acc
            else
              let next = List.concat_map (extensions schema) frontier in
              let acc', fresh =
                List.fold_left
                  (fun (acc, fresh) f ->
                    if List.exists (clause_equal f) acc then (acc, fresh)
                    else (acc @ [ f ], fresh @ [ f ]))
                  (acc, []) next
              in
              expand_level (level - 1) fresh acc'
          in
          expand_level depth [ base ] [ base ])

let construct ?(depth = 1) schema ~tables =
  let key =
    ( schema.Duodb.Schema.name ^ ":" ^ schema_signature schema,
      String.concat ";" (List.sort String.compare tables),
      depth )
  in
  match Hashtbl.find_opt memo key with
  | Some r -> r
  | None ->
      let r = construct_uncached ~depth schema ~tables in
      if Hashtbl.length memo > 100_000 then Hashtbl.reset memo;
      Hashtbl.replace memo key r;
      r
