open Duosql.Ast

let edge_to_join (e : Duodb.Schema.foreign_key) =
  {
    j_from = col e.Duodb.Schema.fk_table e.Duodb.Schema.fk_column;
    j_to = col e.Duodb.Schema.pk_table e.Duodb.Schema.pk_column;
  }

let from_of_tree (tr : Steiner.tree) =
  { f_tables = tr.Steiner.tr_tables; f_joins = List.map edge_to_join tr.Steiner.tr_edges }

let covers from tables = List.for_all (fun t -> List.mem t from.f_tables) tables
let length from = List.length from.f_joins

let clause_equal a b =
  List.sort String.compare a.f_tables = List.sort String.compare b.f_tables

(* One-FK-hop extensions (Algorithm 2, lines 10-12): for each FK edge
   incident to a tree table and leading to a table outside the tree, add
   the join. *)
let extensions schema (from : from_clause) =
  List.concat_map
    (fun t ->
      List.filter_map
        (fun e ->
          let next =
            if String.equal e.Duodb.Schema.fk_table t then e.Duodb.Schema.pk_table
            else e.Duodb.Schema.fk_table
          in
          if List.mem next from.f_tables then None
          else
            Some
              {
                f_tables = from.f_tables @ [ next ];
                f_joins = from.f_joins @ [ edge_to_join e ];
              })
        (Duodb.Schema.join_edges schema ~table:t))
    from.f_tables

(* Construction is called once per enumerated child state; memoize per
   (schema, tables, depth).  Schemas are immutable during synthesis, but
   the key must capture the join-relevant structure, not just the schema
   name: two same-named schemas with different FK graphs must not share
   entries (found by Duocheck — its fuzz schemas, all named "fuzzdb",
   were served each other's join paths).

   The memo is domain-local ([Domain.DLS]): expansion runs on Duopar
   worker domains, and an unsynchronized shared [Hashtbl] would race.
   Per-domain memos need no locks, and since construction is a pure
   function of the key, duplicated entries across domains cannot change
   results — they only cost memory, bounded by [max_memo_entries] per
   domain. *)

type slot = { mutable hit : bool; value : from_clause list }

let max_memo_entries = 100_000

let memo_key : (string * string * int, slot) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

(* Halving eviction (clock-style second chance): drop the entries not
   hit since the previous eviction, then arbitrary extras until at most
   half the cap survives.  A long session keeps its hot join paths,
   where the old all-or-nothing [Hashtbl.reset] dropped the entire memo
   right on the hot path. *)
let evict_half memo =
  let keep = max_memo_entries / 2 in
  let stale = Hashtbl.fold (fun k s acc -> if s.hit then acc else k :: acc) memo [] in
  List.iter (Hashtbl.remove memo) stale;
  let excess = Hashtbl.length memo - keep in
  if excess > 0 then begin
    let doomed = ref [] in
    let n = ref 0 in
    (try
       Hashtbl.iter
         (fun k _ ->
           if !n >= excess then raise Exit;
           doomed := k :: !doomed;
           incr n)
         memo
     with Exit -> ());
    List.iter (Hashtbl.remove memo) !doomed
  end;
  Hashtbl.iter (fun _ s -> s.hit <- false) memo

let schema_signature (schema : Duodb.Schema.t) =
  String.concat "|"
    (List.map
       (fun (e : Duodb.Schema.foreign_key) ->
         e.Duodb.Schema.fk_table ^ "." ^ e.Duodb.Schema.fk_column ^ ">"
         ^ e.Duodb.Schema.pk_table ^ "." ^ e.Duodb.Schema.pk_column)
       schema.Duodb.Schema.foreign_keys)
  ^ "#"
  ^ String.concat ","
      (List.map
         (fun (t : Duodb.Schema.table) -> t.Duodb.Schema.tbl_name)
         schema.Duodb.Schema.tables)

let construct_uncached ?(depth = 1) schema ~tables =
  match tables with
  | [] ->
      (* No column references yet: every table is a candidate base
         (Algorithm 2, line 6). *)
      List.map
        (fun ts -> from_table ts.Duodb.Schema.tbl_name)
        schema.Duodb.Schema.tables
  | _ -> (
      match Steiner.tree schema tables with
      | None -> []
      | Some tr ->
          let base = from_of_tree tr in
          let rec expand_level level frontier acc =
            if level = 0 then acc
            else
              let next = List.concat_map (extensions schema) frontier in
              let acc', fresh =
                List.fold_left
                  (fun (acc, fresh) f ->
                    if List.exists (clause_equal f) acc then (acc, fresh)
                    else (acc @ [ f ], fresh @ [ f ]))
                  (acc, []) next
              in
              expand_level (level - 1) fresh acc'
          in
          expand_level depth [ base ] [ base ])

let construct ?(depth = 1) schema ~tables =
  let memo = Domain.DLS.get memo_key in
  let key =
    ( schema.Duodb.Schema.name ^ ":" ^ schema_signature schema,
      String.concat ";" (List.sort String.compare tables),
      depth )
  in
  match Hashtbl.find_opt memo key with
  | Some s ->
      s.hit <- true;
      s.value
  | None ->
      let r = construct_uncached ~depth schema ~tables in
      if Hashtbl.length memo >= max_memo_entries then evict_half memo;
      Hashtbl.replace memo key { hit = false; value = r };
      r
