type session = {
  s_db : Duodb.Database.t;
  s_index : Duodb.Index.t;
}

let create_session db = { s_db = db; s_index = Duodb.Index.build db }
let session_db s = s.s_db
let session_index s = s.s_index

type mode =
  [ `Duoquest
  | `Nli
  | `No_guide
  | `No_pq
  ]

let mode_name = function
  | `Duoquest -> "Duoquest"
  | `Nli -> "NLI"
  | `No_guide -> "NoGuide"
  | `No_pq -> "NoPQ"

let prepare ?(config = Enumerate.default_config) ?(mode = `Duoquest) ?tsq
    ?literals ?relcache ?pool ?on_candidate session ~nlq () =
  let config =
    match mode with
    | `Duoquest | `Nli -> config
    | `No_guide -> { config with Enumerate.guided = false }
    | `No_pq -> { config with Enumerate.prune_partial = false }
  in
  let tsq = match mode with `Nli -> None | `Duoquest | `No_guide | `No_pq -> tsq in
  let analyzed =
    match literals with
    | None -> Duonl.Nlq.analyze ~index:session.s_index nlq
    | Some lits -> Duonl.Nlq.with_literals ~index:session.s_index nlq lits
  in
  let ctx =
    Duoguide.Model.make ~temperature:config.Enumerate.temperature
      ~index:session.s_index
      (Duodb.Database.schema session.s_db)
      analyzed
  in
  let literal_values =
    List.map (fun l -> l.Duonl.Nlq.lit_value) analyzed.Duonl.Nlq.literals
  in
  Enumerate.init config ctx session.s_db ~index:session.s_index ?relcache ?pool
    ~tsq ~literals:literal_values ?on_candidate ()

let synthesize ?config ?mode ?tsq ?literals ?relcache ?pool ?on_candidate
    session ~nlq () =
  let state =
    prepare ?config ?mode ?tsq ?literals ?relcache ?pool ?on_candidate session
      ~nlq ()
  in
  Fun.protect
    ~finally:(fun () -> Enumerate.release state)
    (fun () ->
      ignore (Enumerate.step state);
      Enumerate.outcome state)

let rank_of outcome ~gold =
  let rec find i = function
    | [] -> None
    | c :: rest ->
        if Duolint.Duosem.equal_queries c.Enumerate.cand_query gold then Some i
        else find (i + 1) rest
  in
  find 1 outcome.Enumerate.out_candidates

let top_k outcome k =
  List.filteri (fun i _ -> i < k) outcome.Enumerate.out_candidates
