(** Guided partial query enumeration (Algorithm 1).

    Maintains a best-first frontier of partial-query states, repeatedly pops
    the highest-confidence state, expands it by one inference decision
    ([EnumNextStep], Section 3.3.2), verifies each child against the TSQ
    (Algorithm 3), and emits surviving complete queries as ranked
    candidates.

    The two GPQE ingredients can be disabled independently for the paper's
    ablations (Section 5.4.3): [guided = false] replaces every module
    distribution with a uniform one (NoGuide — breadth-first-like
    enumeration, literals still used); [prune_partial = false] verifies
    complete queries only (NoPQ — the naive chaining approach of
    Section 3.5). *)

type config = {
  guided : bool;
  prune_partial : bool;
  max_pops : int;  (** enumeration budget: states popped from the frontier *)
  max_candidates : int;  (** stop after emitting this many candidates *)
  time_budget_s : float;  (** wall-clock budget (see {!Clock}) *)
  temperature : float;  (** guidance temperature (Section: Duoguide) *)
  semantic_rules : bool;  (** apply the Table 4 rules (ablation switch) *)
  static_rules : bool;
      (** Duolint stage 0: prune statically dead children before they are
          pushed and deprioritize warned ones (ablation switch) *)
  static_penalty : float;
      (** confidence multiplier per Duolint warning at push time (never
          applied inside [expand]: Property 1 is about expansion) *)
  max_frontier : int;
      (** frontier memory guard: compact to the best half beyond this many
          queued states *)
  domains : int;
      (** Duopar: worker domains for speculative parallel
          expand-and-verify (clamped to [1, 64]).  Any value produces the
          {e same} candidate list, emission order and per-stage prune
          counts as [domains = 1]: the sequential best-first loop remains
          the only committing loop; extra domains merely precompute
          results for states it is about to pop (see DESIGN.md,
          "Duopar"). *)
  overcommit : bool;
      (** When [false] (the default), the worker-domain count is further
          clamped to [Domain.recommended_domain_count ()]: on a
          single-core host speculation is pure overhead, so the run takes
          the sequential path outright.  [true] keeps [domains] as
          requested regardless of the hardware (determinism tests
          exercise the speculative machinery this way). *)
  spec_adaptive : bool;
      (** Duopar v2 adaptive speculation: size each speculative round
          from the measured commit rate ({!Duopar.Controller}'s AIMD law
          over an EWMA of [spec_hits / spec_tasks], floor 1 — the
          sequential degeneration — ceiling [8 * domains]).  [false]
          pins the v1 fixed [4 * domains] round (A/B baseline).  The
          round size never affects results, only how far ahead workers
          precompute. *)
  spec_schedule : (int -> int) option;
      (** test hook: force round [i]'s size (clamped to the controller
          bounds), overriding the AIMD law.  Candidates must be — and
          are property-tested to be — bit-identical under any schedule. *)
  arena : bool;
      (** Duopar v2 task arenas: recycle the round buffers
          ({!Frontier.pop_entries_into}), task descriptors and per-task
          stats records ({!Verify.set_stats}) so a steady-state
          speculative round allocates (near-)zero fresh heap.  [false]
          keeps the v1 allocate-per-task profile (the bench's
          [bytes_per_round] baseline). *)
}

(** Duoquest defaults: guided, pruning, 200k pops, 100 candidates, 60 s,
    1 domain, no overcommit. *)
val default_config : config

(** The worker-domain count a run with this config will actually use on
    this machine ([domains] clamped to [1, 64] and, without [overcommit],
    to the available cores).  Callers that share one {!Duopar.Pool.t}
    across runs size it with this. *)
val effective_domains : config -> int

(** Reads [DUOQUEST_DOMAINS]; 1 when unset, unparsable, or < 1; capped
    at 64.  The CLI, bench and simulation paths use this so parallelism
    stays an opt-in deployment knob. *)
val domains_from_env : unit -> int

type candidate = {
  cand_query : Duosql.Ast.query;
  cand_confidence : float;
  cand_index : int;  (** 0-based emission rank *)
  cand_pops : int;  (** frontier pops before this emission *)
  cand_time_s : float;  (** wall-clock seconds from run start to emission *)
}

type outcome = {
  out_candidates : candidate list;  (** in emission order *)
  out_pops : int;
  out_pushed : int;
  out_stats : Verify.stats;
  out_elapsed_s : float;  (** wall-clock seconds for the whole run *)
  out_expand_s : float;  (** processor time spent in EnumNextStep *)
  out_verify_s : float;  (** processor time spent in the verification cascade *)
  out_exhausted : bool;
      (** the frontier emptied within budget {e and} compaction never
          dropped a state — i.e. the reachable space was fully enumerated *)
  out_dropped : int;
      (** states discarded by frontier compaction; when positive, an empty
          frontier does not mean exhaustion *)
  out_domains : int;  (** worker domains actually used (clamped) *)
  out_domain_stats : Verify.stats array;
      (** committed verification work per domain, indexed by worker id;
          [out_stats] is their merge (plus push-time lint warnings).
          With [domains = 1] this is [[| out_stats |]]. *)
  out_spec_rounds : int;
      (** Duopar pool rounds run (0 when [domains = 1]) *)
  out_spec_tasks : int;
      (** speculative expand-and-verify tasks launched across all rounds *)
  out_spec_hits : int;
      (** speculative results committed by a pop; [out_spec_hits /
          out_spec_tasks] is the speculation commit rate *)
  out_spec_round_size : int;
      (** the controller's current round size (the fixed [4 * domains]
          with [spec_adaptive = false]; 0 when sequential) *)
  out_spec_ewma : float;
      (** the controller's commit-rate EWMA ([1.0] before any sample or
          without a controller) *)
  out_spec_grows : int;  (** controller additive-increase decisions *)
  out_spec_shrinks : int;  (** controller multiplicative-decrease decisions *)
  out_rebases : int;  (** warm restarts taken via {!rebase} *)
  out_rebase_kept : int;
      (** frontier states and candidates that survived re-verification
          across all rebases *)
  out_rebase_dropped : int;
      (** frontier states and candidates pruned by re-verification
          across all rebases *)
}

(** TSQ-derived enumeration hints.  The limit hint only re-ranks module
    outputs, but the sketch's {e header} — projection width and per-slot
    output types — is definitional: no candidate disagreeing with it can
    ever satisfy the TSQ, so the enumerator declines to propose such
    children rather than paying the cascade to kill them. *)
type hints = {
  h_nproj : int option;
  h_limit : int option;
  h_types : Duodb.Datatype.t list;
      (** per-slot output type annotations; [] when the sketch carries
          none *)
}

val no_hints : hints
val hints_of_tsq : Tsq.t -> hints

(** One [EnumNextStep]: all children of a state, confidences updated.
    Exposed for tests (completeness and Property-1 checks). *)
val expand :
  guided:bool -> hints -> Duoguide.Model.ctx -> Partial.t -> Partial.t list

(** {2 Resumable enumeration}

    A {!state} is a paused run: the frontier, dedup table, join-path
    memos, per-domain verification environments and all accounting.
    {!init} builds it, {!step} advances it by a bounded number of
    frontier pops, {!outcome} snapshots the observable results at any
    point, and {!release} frees the worker pool.  {!run} is exactly
    [init] + one unbounded [step] + [outcome] + [release], so a run
    paused after any pop and resumed later commits the same pops in the
    same order — candidates, prune counts and accounting are
    bit-identical to the uninterrupted run (property-tested under
    [@fuzz]).  Duoserve time-slices many concurrent sessions over this
    interface. *)

type state

type status =
  | Running  (** the slice ended with budget and frontier remaining *)
  | Finished  (** a budget hit or the frontier drained; the run is over *)

(** [init config ctx db ~tsq ~literals ()] builds a paused run with the
    root state on the frontier.  [tsq = None] is the pure-NLI setting.
    [on_candidate] fires at each emission (the paper's streaming UI).
    [index] and [relcache] thread a session's inverted index and shared
    relation cache into the verification environment (see
    {!Verify.make_env}).  [pool] supplies a caller-owned worker pool
    shared across runs (one per server or bench process); it fixes the
    domain count and is {e not} shut down by {!release}.  Without it a
    pool is created when {!effective_domains} exceeds 1 and owned by the
    state. *)
val init :
  config ->
  Duoguide.Model.ctx ->
  Duodb.Database.t ->
  ?index:Duodb.Index.t ->
  ?relcache:Duoengine.Executor.relation_cache ->
  ?pool:Duopar.Pool.t ->
  tsq:Tsq.t option ->
  literals:Duodb.Value.t list ->
  ?on_candidate:(candidate -> unit) ->
  unit ->
  state

(** [step ?max_pops s] advances the run by at most [max_pops] further
    frontier pops (unbounded when omitted).  Budgets come from the
    config given to {!init}; the wall-clock budget counts only active
    stepping time, so a paused session is not charged for its pause.
    Stepping a [Finished] state is a no-op. *)
val step : ?max_pops:int -> state -> status

val finished : state -> bool

(** Snapshot the run's observable outcome; callable mid-run (a streaming
    UI polling candidates) and after the final step — final results are
    whatever the last call returns once {!finished} holds. *)
val outcome : state -> outcome

(** Shut down the state's worker pool if it owns one (no-op for a pool
    passed into {!init}, and with [domains = 1]).  Idempotent.  A
    released state must not be stepped again. *)
val release : state -> unit

(** {2 Incremental re-synthesis}

    [rebase s ~tsq] warm-restarts a paused (or finished) run under a
    {e tightened} sketch instead of re-enumerating from the root: the
    caller must have classified the edit as [Tsq.Tightening] (rebasing
    on an [Incomparable] edit is unsound — restart from the root
    instead).  Every cascade stage is monotone under a tightening, so
    states pruned before the refinement stay pruned; only the survivors
    — the frontier and the emitted candidates — are re-checked, and only
    through the sketch-reading stages ({!Verify.reverify}).  The
    frontier keeps its insertion order and the guidance hints are
    unchanged by construction of [Tsq.refines], so subsequent {!step}s
    emit exactly what a from-root run under [tsq] would emit
    (candidate-for-candidate; property-tested).

    Budgets after a rebase: the pop budget starts fresh (per
    refinement), the wall-clock budget stays cumulative — rebase work
    itself is charged to it.  Rebase counts are reported in
    [out_rebases] / [out_rebase_kept] / [out_rebase_dropped]. *)
val rebase : state -> tsq:Tsq.t -> unit

(** [charge s seconds] pre-spends active time against the run's
    wall-clock budget.  The session layer charges a replacement run with
    the previous run's elapsed time on a from-root refinement restart,
    so a client cannot extend its time budget by refining. *)
val charge : state -> float -> unit

(** Run the enumeration to completion: [init] + one unbounded [step] +
    [outcome] + [release].  Arguments as {!init}. *)
val run :
  config ->
  Duoguide.Model.ctx ->
  Duodb.Database.t ->
  ?index:Duodb.Index.t ->
  ?relcache:Duoengine.Executor.relation_cache ->
  ?pool:Duopar.Pool.t ->
  tsq:Tsq.t option ->
  literals:Duodb.Value.t list ->
  ?on_candidate:(candidate -> unit) ->
  unit ->
  outcome
