let now () = Unix.gettimeofday ()
let cpu () = Sys.time ()

external mono : unit -> (float[@unboxed])
  = "duo_clock_mono_byte" "duo_clock_mono"
[@@noalloc]
