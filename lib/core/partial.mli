(** Partial queries (Definition 3.1) as enumeration states.

    A partial query is a SQL query in which elements may still be
    placeholders.  We represent it as a builder record plus a cursor
    ([phase]) naming the next inference decision, mirroring SyntaxSQLNet's
    fixed module execution order (Section 3.3.1): clause keywords, then the
    SELECT list (width, targets, aggregates), then WHERE (count, column,
    operator+value, connective), then GROUP BY / HAVING, then
    ORDER BY / direction / LIMIT.

    Each state also carries its candidate join path (Section 3.3.4) — all
    verification probes execute against it — and its confidence score, the
    product of the softmax scores of the decisions that produced it
    (Section 3.3.3). *)

type phase =
  | P_keywords
  | P_num_proj
  | P_proj_target of int
  | P_proj_agg of int
  | P_where_num
  | P_where_col of int
  | P_where_op of int
  | P_where_conn
  | P_group_col
  | P_having_presence
  | P_having_pred
  | P_order_target
  | P_order_dir
  | P_limit
  | P_done
  | P_joinpath of phase
      (** decide the join path (Section 3.3.4), then continue with the
          wrapped phase; deferring this keeps column decisions and join
          decisions from multiplying into one huge expansion *)

(** A decided projection slot. [pj_agg = None] means the aggregate decision
    is still pending; [Some a] records the decision ([Some (Some Count)]
    etc., [Some None] = plain column). *)
type proj_slot = {
  pj_target : Duoguide.Model.col_target;
  pj_agg : Duosql.Ast.agg option option;
}

type t = {
  phase : phase;
  kw : Duoguide.Model.kw_set;  (** meaningful once past [P_keywords] *)
  nproj : int;
  projs : proj_slot list;  (** decided prefix, in SELECT order *)
  where_n : int;
  where_preds : Duosql.Ast.pred list;  (** decided, in order *)
  where_pending : Duodb.Schema.column option;
      (** column chosen for the next predicate, operator/value pending *)
  conn : Duosql.Ast.connective;
  group_col : Duosql.Ast.col_ref option;
  having_pred : Duosql.Ast.pred option;
  order_item : (Duosql.Ast.agg option * Duosql.Ast.col_ref option) option;
  order_dir : Duosql.Ast.dir;
  limit : int option;
  from : Duosql.Ast.from_clause option;
      (** candidate join path; [None] until a column is referenced *)
  confidence : float;
  depth : int;  (** number of inference decisions made *)
}

(** The root state: no decisions made, confidence 1 (Algorithm 1, line 2). *)
val root : t

val is_complete : t -> bool

(** The complete {!Duosql.Ast.query} once [phase = P_done]; [None]
    otherwise or when the state lacks a join path. *)
val to_query : t -> Duosql.Ast.query option

(** Tables referenced by decided columns (outside the FROM clause). *)
val referenced_tables : t -> string list

(** The column of a projection target, if any. *)
val target_col : Duoguide.Model.col_target -> Duodb.Schema.column option

(** Decided projections as [(agg decision, column)] pairs, for modules that
    need the current SELECT list. *)
val decided_projections :
  t -> (Duosql.Ast.agg option option * Duodb.Schema.column option) list

(** Literals already used in decided predicates. *)
val used_literals : t -> Duodb.Value.t list

(** Render the partial query for display, with [?] placeholders. *)
val to_string : t -> string

(** Canonical identity of a state's decided content (phase, decisions and
    join path; not confidence).  States produced by different join-fork
    orders can coincide; the enumerator dedupes on this key. *)
val key : t -> string

(** Like {!key}, but with WHERE/HAVING conjuncts put into Duosem normal
    form (sorted; interval-folded once the predicate set is settled and
    conjunctive), so states that differ only by predicate order or by
    equivalent predicate spellings collide.  The used literal multiset
    and the verbatim join path are part of the key, keeping the
    complete-stage literal check and row-order-sensitive sketch
    satisfaction observationally equal across collapsed states.  The
    enumerator uses it as a second visited-set layer ([dedup_semantic]). *)
val canonical_key : t -> string

(** Confidence-then-join-length ordering for the best-first frontier:
    higher confidence first; ties prefer shorter join paths
    (Section 3.3.4), then earlier creation. *)
val compare_priority : t * int -> t * int -> int
