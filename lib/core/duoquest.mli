(** The Duoquest system facade (Section 4).

    A {!session} packages a database with its inverted column index (the
    autocomplete substrate).  {!synthesize} consumes the dual specification
    — an NLQ plus an optional TSQ — and streams ranked candidate queries,
    exactly the Enumerator + Verifier micro-service pair of Figure 3.

    The [mode] argument selects the paper's systems:
    - [`Duoquest] — GPQE with guidance and partial-query pruning;
    - [`Nli] — guided enumeration with no TSQ (the SyntaxSQLNet-style
      baseline; the TSQ argument is ignored);
    - [`No_guide] — uniform enumeration, TSQ pruning kept (ablation);
    - [`No_pq] — guidance kept, but only complete queries verified
      (the chaining baseline of Section 3.5). *)

type session

val create_session : Duodb.Database.t -> session
val session_db : session -> Duodb.Database.t
val session_index : session -> Duodb.Index.t

type mode =
  [ `Duoquest
  | `Nli
  | `No_guide
  | `No_pq
  ]

val mode_name : mode -> string

(** [synthesize session ~nlq ()] runs query synthesis.

    - [literals]: the tagged literal set [L]; extracted from the NLQ's
      quoted spans and numbers when omitted.
    - [tsq]: the table sketch query; omitting it (or passing [`Nli]) makes
      the run single-specification.
    - [config]: enumeration budgets (see {!Enumerate.config}).
    - [relcache]: a relation cache shared across runs on the same
      database (sound while the database is immutable).
    - [pool]: a caller-owned {!Duopar.Pool.t} reused across runs instead
      of spawning and joining domains per call.
    - [on_candidate]: streaming callback, as the front-end displays
      candidates one at a time. *)
val synthesize :
  ?config:Enumerate.config ->
  ?mode:mode ->
  ?tsq:Tsq.t ->
  ?literals:Duodb.Value.t list ->
  ?relcache:Duoengine.Executor.relation_cache ->
  ?pool:Duopar.Pool.t ->
  ?on_candidate:(Enumerate.candidate -> unit) ->
  session ->
  nlq:string ->
  unit ->
  Enumerate.outcome

(** [prepare] is {!synthesize} stopped before the first enumeration step:
    it analyzes the NLQ, builds the guidance context and returns the
    paused {!Enumerate.state}.  Duoserve sessions are built on this —
    the server time-slices many prepared states with {!Enumerate.step}.
    The caller owns the state ({!Enumerate.release} when done). *)
val prepare :
  ?config:Enumerate.config ->
  ?mode:mode ->
  ?tsq:Tsq.t ->
  ?literals:Duodb.Value.t list ->
  ?relcache:Duoengine.Executor.relation_cache ->
  ?pool:Duopar.Pool.t ->
  ?on_candidate:(Enumerate.candidate -> unit) ->
  session ->
  nlq:string ->
  unit ->
  Enumerate.state

(** 1-based rank of the gold query among the candidates (by
    {!Duolint.Duosem.equal_queries} — canonical-form equality, so a
    candidate spelling the gold's predicates in another equivalent way
    still counts), or [None]. *)
val rank_of : Enumerate.outcome -> gold:Duosql.Ast.query -> int option

(** First [k] candidates in emission order. *)
val top_k : Enumerate.outcome -> int -> Enumerate.candidate list
