open Duosql.Ast
module Model = Duoguide.Model

type config = {
  guided : bool;
  prune_partial : bool;
  max_pops : int;
  max_candidates : int;
  time_budget_s : float;
  temperature : float;
  semantic_rules : bool;
  static_rules : bool;
  static_penalty : float;
  max_frontier : int;
  domains : int;
  overcommit : bool;
  spec_adaptive : bool;
      (* adaptive speculative round size (Duopar v2); [false] pins the
         v1 fixed [4 * domains] round for A/B baselines *)
  spec_schedule : (int -> int) option;
      (* test hook: force round [i]'s size (clamped to the controller's
         bounds) — determinism must hold under any schedule *)
  arena : bool;
      (* reusable task arenas: recycle round buffers and per-task stats
         records so a steady-state round allocates (near-)zero fresh
         heap; [false] keeps the v1 allocate-per-task profile *)
}

let default_config =
  {
    guided = true;
    prune_partial = true;
    max_pops = 200_000;
    max_candidates = 100;
    time_budget_s = 60.0;
    temperature = 1.0;
    semantic_rules = true;
    static_rules = true;
    static_penalty = 0.85;
    max_frontier = 400_000;
    domains = 1;
    overcommit = false;
    spec_adaptive = true;
    spec_schedule = None;
    arena = true;
  }

(* Speculation only pays off when the extra domains map to real cores:
   on a single-core host the workers time-share with the committing loop
   and every round is pure overhead (the 0.34x "speedup" of the first
   Duopar bench).  The default path therefore clamps the domain count to
   the hardware; [overcommit] keeps the old behavior for tests that must
   exercise the parallel machinery regardless of the machine. *)
let effective_domains config =
  let requested = max 1 (min config.domains 64) in
  if config.overcommit then requested
  else min requested (max 1 (Domain.recommended_domain_count ()))

(* DUOQUEST_DOMAINS=<n> is the deployment-side knob (CLI, bench,
   simulation); unset, unparsable or out-of-range values fall back to
   sequential. *)
let domains_from_env () =
  match Sys.getenv_opt "DUOQUEST_DOMAINS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n 64
      | Some _ | None -> 1)

type candidate = {
  cand_query : query;
  cand_confidence : float;
  cand_index : int;
  cand_pops : int;
  cand_time_s : float;
}

type outcome = {
  out_candidates : candidate list;
  out_pops : int;
  out_pushed : int;
  out_stats : Verify.stats;
  out_elapsed_s : float;
  out_expand_s : float;
  out_verify_s : float;
  out_exhausted : bool;
  out_dropped : int;
  out_domains : int;
  out_domain_stats : Verify.stats array;
  out_spec_rounds : int;
  out_spec_tasks : int;
  out_spec_hits : int;
  out_spec_round_size : int;
  out_spec_ewma : float;
  out_spec_grows : int;
  out_spec_shrinks : int;
  out_rebases : int;
  out_rebase_kept : int;
  out_rebase_dropped : int;
}

type hints = {
  h_nproj : int option;
  h_limit : int option;
  h_types : Duodb.Datatype.t list;
      (** per-slot output type annotations from the TSQ; [] when the
          sketch carries none *)
}

let no_hints = { h_nproj = None; h_limit = None; h_types = [] }

let hints_of_tsq tsq =
  {
    h_nproj = Tsq.width tsq;
    h_limit = (if tsq.Tsq.limit > 0 then Some tsq.Tsq.limit else None);
    h_types = (match tsq.Tsq.types with Some tys -> tys | None -> []);
  }

(* --- phase sequencing --- *)

let after_group (t : Partial.t) =
  if t.Partial.kw.Model.kw_order then Partial.P_order_target else Partial.P_done

let after_where (t : Partial.t) =
  if t.Partial.kw.Model.kw_group then Partial.P_group_col else after_group t

let after_select (t : Partial.t) =
  if t.Partial.kw.Model.kw_where then Partial.P_where_num else after_where t

let next_after_slot (t : Partial.t) i =
  if i + 1 < t.Partial.nproj then Partial.P_proj_target (i + 1) else after_select t

let next_after_pred (t : Partial.t) i =
  if i + 1 < t.Partial.where_n then Partial.P_where_col (i + 1)
  else if t.Partial.where_n >= 2 then Partial.P_where_conn
  else after_where t

(* --- helpers --- *)

let col_ref_of c = col c.Duodb.Schema.col_table c.Duodb.Schema.col_name

(* Candidate join paths for a state whose referenced tables may have grown
   (Section 3.3.4): keep the current path when it still covers, otherwise
   fork one state per candidate clause. *)
let step (t : Partial.t) phase prob =
  { t with
    Partial.phase;
    confidence = t.Partial.confidence *. prob;
    depth = t.Partial.depth + 1 }

let is_counting (t : Partial.t) =
  List.exists
    (fun s -> s.Partial.pj_target = Model.Target_count_star)
    t.Partial.projs

(* Progressive join path construction (Section 3.3.4), deferred: when a
   decision makes the current join path stale, the state first passes
   through a [P_joinpath] phase whose expansion enumerates the candidate
   clauses.  Deferring keeps column fan-out and join fan-out additive
   rather than multiplicative.  Counting states revisit the join decision
   after every step because COUNT of all rows depends on every joined
   table (extensions up to two FK hops); revisits are deduped by the run
   loop. *)
let advance (t : Partial.t) phase prob =
  let t' = step t phase prob in
  let tables = Partial.referenced_tables t' in
  if tables = [] then t'
  else
    match t'.Partial.from with
    | Some f
      when Joinpath.covers f tables
           && ((not (is_counting t'))
              || List.length f.Duosql.Ast.f_tables > List.length tables) ->
        t'
    | Some _ | None -> { t' with Partial.phase = Partial.P_joinpath phase }

let uniform cands =
  match cands with
  | [] -> []
  | _ ->
      let p = 1.0 /. float_of_int (List.length cands) in
      List.map (fun (x, _) -> (x, p)) cands

(* Rescale a weighted choice list to total mass 1.  Expansions that drop
   some branches (no literal for a comparison shape, no range pair for
   BETWEEN) would otherwise leak the dropped branches' probability mass
   and break Property 1: children confidences must sum to the parent's. *)
let renormalize pairs =
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 pairs in
  if total <= 0.0 then pairs
  else List.map (fun (x, p) -> (x, p /. total)) pairs

let replace_last lst x =
  match List.rev lst with
  | [] -> invalid_arg "replace_last: empty"
  | _ :: rest -> List.rev (x :: rest)

let expand ~guided hints ctx (t : Partial.t) =
  let maybe_uniform cands = if guided then cands else uniform cands in
  match t.Partial.phase with
  | Partial.P_done -> []
  | Partial.P_joinpath next ->
      let tables = Partial.referenced_tables t in
      if tables = [] then [ { t with Partial.phase = next } ]
      else
        let depth = if is_counting t then 2 else 1 in
        (* Join-path siblings keep the parent's confidence (Section 3.3.4);
           the frontier breaks ties toward shorter paths. *)
        List.map
          (fun f -> { t with Partial.from = Some f; phase = next })
          (Joinpath.construct ~depth (Model.schema ctx) ~tables)
  | Partial.P_keywords ->
      List.map
        (fun (kw, p) -> step { t with Partial.kw } Partial.P_num_proj p)
        (maybe_uniform (Model.keywords ctx))
  | Partial.P_num_proj ->
      List.map
        (fun (n, p) ->
          step { t with Partial.nproj = n } (Partial.P_proj_target 0) p)
        (maybe_uniform (Model.num_projections ctx ~hint:hints.h_nproj))
  | Partial.P_proj_target i ->
      let used = List.map (fun s -> s.Partial.pj_target) t.Partial.projs in
      List.concat_map
        (fun (target, p) ->
          let slot =
            {
              Partial.pj_target = target;
              pj_agg =
                (match target with
                | Model.Target_count_star -> Some (Some Count)
                | Model.Target_column _ -> None);
            }
          in
          let t' = { t with Partial.projs = t.Partial.projs @ [ slot ] } in
          let phase =
            match target with
            | Model.Target_count_star -> next_after_slot t' i
            | Model.Target_column _ -> Partial.P_proj_agg i
          in
          [ advance t' phase p ])
        (maybe_uniform
           (Model.projection_targets ?out:(List.nth_opt hints.h_types i) ctx
              ~used))
  | Partial.P_proj_agg i -> (
      match List.rev t.Partial.projs with
      | { Partial.pj_target = Model.Target_column c; _ } :: _ ->
          List.map
            (fun (agg, p) ->
              let slot = { Partial.pj_target = Model.Target_column c; pj_agg = Some agg } in
              let t' = { t with Partial.projs = replace_last t.Partial.projs slot } in
              step t' (next_after_slot t' i) p)
            (maybe_uniform
               (Model.aggregates ?out:(List.nth_opt hints.h_types i) ctx
                  c.Duodb.Schema.col_type))
      | { Partial.pj_target = Model.Target_count_star; _ } :: _ | [] -> [])
  | Partial.P_where_num ->
      List.map
        (fun (n, p) ->
          step { t with Partial.where_n = n } (Partial.P_where_col 0) p)
        (maybe_uniform (Model.num_predicates ctx))
  | Partial.P_where_col i ->
      let used =
        List.filter_map
          (fun pr ->
            Option.bind pr.pr_col (fun c ->
                Duodb.Schema.find_column (Model.schema ctx) ~table:c.cr_table c.cr_col))
          t.Partial.where_preds
      in
      List.map
        (fun (c, p) ->
          advance { t with Partial.where_pending = Some c } (Partial.P_where_op i) p)
        (maybe_uniform (Model.where_columns ctx ~used))
  | Partial.P_where_op i -> (
      match t.Partial.where_pending with
      | None -> []
      | Some c ->
          let shapes = maybe_uniform (Model.operators ctx c.Duodb.Schema.col_type) in
          let rhss =
            List.concat_map
              (fun (shape, p_shape) ->
                match shape with
                | Model.Shape_cmp op ->
                    List.map
                      (fun (v, p_val) -> (Cmp (op, v), p_shape *. p_val))
                      (maybe_uniform (Model.values ctx c))
                | Model.Shape_between ->
                    let ranges = Model.value_ranges ctx in
                    let n = List.length ranges in
                    if n = 0 then []
                    else
                      List.map
                        (fun (lo, hi) ->
                          (Between (lo, hi), p_shape /. float_of_int n))
                        ranges)
              shapes
          in
          List.map
            (fun (rhs, p) ->
              let pred = { pr_agg = None; pr_col = Some (col_ref_of c); pr_rhs = rhs } in
              let t' =
                { t with
                  Partial.where_preds = t.Partial.where_preds @ [ pred ];
                  where_pending = None }
              in
              step t' (next_after_pred t' i) p)
            (renormalize rhss))
  | Partial.P_where_conn ->
      List.map
        (fun (conn, p) -> step { t with Partial.conn } (after_where t) p)
        (maybe_uniform (Model.connective ctx))
  | Partial.P_group_col ->
      let projected =
        List.filter_map
          (fun s ->
            match s.Partial.pj_agg with
            | Some None -> Partial.target_col s.Partial.pj_target
            | _ -> None)
          t.Partial.projs
      in
      List.map
        (fun (c, p) ->
          advance
            { t with Partial.group_col = Some (col_ref_of c) }
            Partial.P_having_presence p)
        (maybe_uniform (Model.group_columns ctx ~projected))
  | Partial.P_having_presence ->
      List.map
        (fun (present, p) ->
          if present then step t Partial.P_having_pred p
          else step t (after_group t) p)
        (maybe_uniform (Model.having_presence ctx))
  | Partial.P_having_pred ->
      (* HAVING targets: COUNT of all rows, or an aggregate over a
         numeric projected column. *)
      let numeric_projected =
        List.filter_map
          (fun s ->
            match Partial.target_col s.Partial.pj_target with
            | Some c
              when Duodb.Datatype.equal c.Duodb.Schema.col_type Duodb.Datatype.Number ->
                Some c
            | _ -> None)
          t.Partial.projs
      in
      let targets =
        (Some Count, None)
        :: List.concat_map
             (fun c ->
               List.map
                 (fun a -> (Some a, Some (col_ref_of c)))
                 [ Sum; Avg; Min; Max ])
             numeric_projected
      in
      let p_target = 1.0 /. float_of_int (List.length targets) in
      let numeric_values =
        List.filter Duodb.Value.is_numeric
          (List.map (fun l -> l.Duonl.Nlq.lit_value) (Model.nlq ctx).Duonl.Nlq.literals)
      in
      let ops = maybe_uniform (Model.operators ctx Duodb.Datatype.Number) in
      (* BETWEEN has no HAVING form here and the literal pool may be
         empty, so collect the surviving predicates first and renormalize
         their weights (Property 1). *)
      let preds =
        List.concat_map
          (fun (agg, colref) ->
            List.concat_map
              (fun (shape, p_op) ->
                match shape with
                | Model.Shape_between -> []
                | Model.Shape_cmp op ->
                    let n_vals = List.length numeric_values in
                    if n_vals = 0 then []
                    else
                      List.map
                        (fun v ->
                          ( { pr_agg = agg; pr_col = colref; pr_rhs = Cmp (op, v) },
                            p_target *. p_op /. float_of_int n_vals ))
                        numeric_values)
              ops)
          targets
      in
      List.map
        (fun (pred, p) ->
          step { t with Partial.having_pred = Some pred } (after_group t) p)
        (renormalize preds)
  | Partial.P_order_target ->
      let projected =
        List.filter_map
          (fun s ->
            match s.Partial.pj_agg with
            | Some agg -> Some (agg, Partial.target_col s.Partial.pj_target)
            | None -> None)
          t.Partial.projs
      in
      List.map
        (fun ((agg, colopt), p) ->
          let item = (agg, Option.map col_ref_of colopt) in
          advance { t with Partial.order_item = Some item } Partial.P_order_dir p)
        (maybe_uniform (Model.order_targets ctx ~projected))
  | Partial.P_order_dir ->
      List.map
        (fun (dir, p) -> step { t with Partial.order_dir = dir } Partial.P_limit p)
        (maybe_uniform (Model.direction ctx))
  | Partial.P_limit ->
      List.map
        (fun (lim, p) -> step { t with Partial.limit = lim } Partial.P_done p)
        (maybe_uniform (Model.limit ctx ~hint:hints.h_limit))

exception Budget_exhausted

(* One verdict pass over an expansion's children.  Both the sequential
   loop and the Duopar speculative tasks go through this single function,
   so verdicts and per-stage prune counts are independent of [domains].
   With partial-query pruning the whole sibling set runs through
   {!Verify.verify_batch}, which shares one base scan across the
   children's uncached row probes; under NoPQ only complete children pay
   the cascade (partials get at most the free static stage). *)
let judge env config children =
  if config.prune_partial then Verify.verify_batch env children
  else
    List.map
      (fun (child : Partial.t) ->
        let ok =
          if Partial.is_complete child then Verify.verify env child
          else (not config.static_rules) || Verify.check_static env child
        in
        (child, ok))
      children

(* The result of speculatively processing one frontier state on some
   domain: the expanded children with their cascade verdicts, plus the
   private stats and profile times the task accumulated.  Expansion and
   verification are pure functions of the state (the database, model
   context and TSQ are immutable during a run; every cache only memoizes
   deterministic results), so a task's verdicts are independent of which
   domain ran it or when.  Stats are merged into the run's totals only
   when the state is actually popped by the sequential committing loop —
   speculation on states that are never popped leaves no trace, keeping
   prune counts identical to a [domains = 1] run. *)
type task_result = {
  (* mutable so the task arena can recycle one record per slot across
     rounds ([tr_stats] is zeroed with [Verify.reset_stats]) instead of
     allocating a record + stats + timing floats per task *)
  mutable tr_worker : int;
  mutable tr_children : (Partial.t * bool) list;
  tr_stats : Verify.stats;
  mutable tr_expand_s : float;
  mutable tr_verify_s : float;
}

let fresh_result () =
  {
    tr_worker = 0;
    tr_children = [];
    tr_stats = Verify.new_stats ();
    tr_expand_s = 0.0;
    tr_verify_s = 0.0;
  }

(* Reusable per-round scratch (Duopar v2 task arena).  All arrays are
   sized once to the controller's ceiling, so a steady-state round does
   no array allocation; [task_result] records circulate through
   round slot -> speculation memo -> (commit) -> free stack.  The
   aliasing contract: a record belongs to exactly one owner at a time —
   a round slot while its task runs, the memo entry afterwards, and the
   free stack once the committing loop has merged (or a rebase dropped)
   it — so recycling can never let two tasks write one stats record. *)
type arena = {
  ar_entries : (Partial.t * int) array;  (* [Frontier.pop_entries_into] buffer *)
  ar_tasks : Partial.t array;  (* states picked for this round *)
  ar_results : task_result array;  (* slot -> recycled result record *)
  ar_free : task_result array;  (* stack of recycled records *)
  mutable ar_n_free : int;
  mutable ar_fn : (worker:int -> int -> unit) option;
      (* the round body closure, built once on first use *)
}

let make_arena ~capacity =
  {
    ar_entries = Array.make capacity (Partial.root, -1);
    ar_tasks = Array.make capacity Partial.root;
    ar_results = Array.make capacity (fresh_result ());
    ar_free = Array.make (4 * capacity) (fresh_result ());
    ar_n_free = 0;
    ar_fn = None;
  }

(* The arena path memoizes speculative results by the *physical* state:
   the committing loop pops the very same [Partial.t] object the round
   staged (the frontier stores states, never copies them), so identity
   is an exact key and no [Partial.key] string is ever rendered on the
   speculation hot path.  States are immutable, so the bounded
   structural [Hashtbl.hash] of an object can never drift between the
   staging [replace] and the commit [find]. *)
module Phys_tbl = Hashtbl.Make (struct
  type t = Partial.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

(* Recycle a result record whose owner (memo entry) is done with it; a
   full stack simply drops the record to the GC — rare, harmless. *)
let arena_recycle ar r =
  if ar.ar_n_free < Array.length ar.ar_free then begin
    r.tr_children <- [];  (* do not pin children past commit *)
    ar.ar_free.(ar.ar_n_free) <- r;
    ar.ar_n_free <- ar.ar_n_free + 1
  end

let arena_take ar =
  if ar.ar_n_free > 0 then begin
    ar.ar_n_free <- ar.ar_n_free - 1;
    ar.ar_free.(ar.ar_n_free)
  end
  else fresh_result ()

(* --- resumable enumeration state ---------------------------------------
   Everything [run] used to keep in closure-captured refs now lives in an
   explicit record, so a run can be paused after any pop and resumed later
   (Duoserve time-slices many sessions this way).  [run] is rebuilt as
   [init] + one unbounded [step]: the loop body is shared, so the stepped
   and the monolithic executions are the same code and their candidates,
   prune counts and accounting are bit-identical by construction. *)

type status =
  | Running
  | Finished

type state = {
  st_config : config;
  st_ctx : Model.ctx;
  mutable st_hints : hints;  (* retargeted by [rebase] *)
  st_domains : int;
  st_envs : Verify.env array;  (* index 0 is the committing loop's env *)
  st_stats : Verify.stats;
  st_domain_stats : Verify.stats array;
  st_frontier : Frontier.t;
  st_visited : (string, unit) Hashtbl.t;
  st_canon : (string, unit) Hashtbl.t;
      (* Duosem canonical keys of admitted states: a second visited-set
         layer collapsing states that differ only by predicate order or
         by equivalent predicate spellings ([Partial.canonical_key]) *)
  st_emitted : (string, unit) Hashtbl.t;
      (* Duosem canonical keys of emitted candidates *)
  st_pool : Duopar.Pool.t option;
  st_owns_pool : bool;
  st_controller : Duopar.Controller.t option;
      (* adaptive round-size controller; [None] pins the fixed
         [4 * domains] v1 round *)
  st_arena : arena option;  (* [None] = v1 allocate-per-task profile *)
  st_memo : (string, task_result) Hashtbl.t;
      (* v1 speculation memo, keyed by rendered [Partial.key] *)
  st_memo_phys : task_result Phys_tbl.t;
      (* arena-path speculation memo, keyed by physical state *)
  st_on_candidate : candidate -> unit;
  mutable st_candidates : candidate list;  (* newest first *)
  mutable st_n_candidates : int;
  mutable st_pops : int;
  mutable st_pop_base : int;
      (* pops at the last (re)start: the pop budget is per refinement,
         while [st_pops] stays cumulative for reporting *)
  mutable st_rebases : int;
  mutable st_rebase_kept : int;
  mutable st_rebase_dropped : int;
  mutable st_exhausted : bool;
  mutable st_finished : bool;
  mutable st_released : bool;
  mutable st_elapsed_s : float;  (* active wall time across steps *)
  mutable st_expand_s : float;
  mutable st_verify_s : float;
  mutable st_spec_rounds : int;
  mutable st_spec_tasks : int;
  mutable st_spec_hits : int;
}

let init config ctx db ?index ?relcache ?pool ~tsq ~literals
    ?(on_candidate = fun _ -> ()) () =
  (* A caller-supplied pool fixes the domain count: the caller already
     decided how much parallelism this process runs with (one pool per
     server or bench process, shared across runs). *)
  let domains =
    match pool with
    | Some p -> Duopar.Pool.domains p
    | None -> effective_domains config
  in
  let stats = Verify.new_stats () in
  let index =
    (* Force the index on the caller's domain before any worker can race
       to build it: environments share one immutable index. *)
    if domains = 1 then index
    else Some (match index with Some i -> i | None -> Duodb.Index.build db)
  in
  let env =
    Verify.make_env ~stats ~semantics:config.semantic_rules
      ~static:config.static_rules ?index ?relcache ~db ~tsq ~literals ()
  in
  let envs =
    Array.init domains (fun d -> if d = 0 then env else Verify.fork_env env)
  in
  (* Committed per-domain work.  With [domains = 1] this aliases [stats],
     so the sequential path keeps its single-record accounting. *)
  let domain_stats =
    if domains = 1 then [| stats |]
    else Array.init domains (fun _ -> Verify.new_stats ())
  in
  let hints = match tsq with Some s -> hints_of_tsq s | None -> no_hints in
  let frontier = Frontier.create ~cap:config.max_frontier () in
  Frontier.push frontier Partial.root;
  let pool, owns_pool =
    if domains > 1 then
      match pool with
      | Some p -> (Some p, false)
      | None -> (Some (Duopar.Pool.create ~domains), true)
    else (None, false)
  in
  let controller =
    if domains > 1 && (config.spec_adaptive || config.spec_schedule <> None)
    then
      Some (Duopar.Controller.create ?schedule:config.spec_schedule ~domains ())
    else None
  in
  let arena =
    (* capacity = the controller ceiling (8 * domains), which also covers
       the fixed 4 * domains round, so fill never outgrows the arrays *)
    if domains > 1 && config.arena then Some (make_arena ~capacity:(8 * domains))
    else None
  in
  {
    st_config = config;
    st_ctx = ctx;
    st_hints = hints;
    st_domains = domains;
    st_envs = envs;
    st_stats = stats;
    st_domain_stats = domain_stats;
    st_frontier = frontier;
    st_visited = Hashtbl.create 4096;
    st_canon = Hashtbl.create 4096;
    st_emitted = Hashtbl.create 64;
    st_pool = pool;
    st_owns_pool = owns_pool;
    st_controller = controller;
    st_arena = arena;
    st_memo = Hashtbl.create 256;
    st_memo_phys = Phys_tbl.create 256;
    st_on_candidate = on_candidate;
    st_candidates = [];
    st_n_candidates = 0;
    st_pops = 0;
    st_pop_base = 0;
    st_rebases = 0;
    st_rebase_kept = 0;
    st_rebase_dropped = 0;
    st_exhausted = false;
    st_finished = false;
    st_released = false;
    st_elapsed_s = 0.0;
    st_expand_s = 0.0;
    st_verify_s = 0.0;
    st_spec_rounds = 0;
    st_spec_tasks = 0;
    st_spec_hits = 0;
  }

let finished s = s.st_finished

let release s =
  if not s.st_released then begin
    s.st_released <- true;
    if s.st_owns_pool then Option.iter Duopar.Pool.shutdown s.st_pool
  end

(* Duolint warnings deprioritize at push time, never inside [expand]:
   expansion keeps children confidences summing to the parent's
   (Property 1); the frontier order is where suspicion belongs. *)
let deprioritize s (child : Partial.t) =
  if not s.st_config.static_rules then child
  else
    match Verify.static_warnings s.st_envs.(0) child with
    | 0 -> child
    | n ->
        {
          child with
          Partial.confidence =
            child.Partial.confidence
            *. (s.st_config.static_penalty ** float_of_int n);
        }

let push_fresh s (child : Partial.t) =
  let key = Partial.key child in
  if not (Hashtbl.mem s.st_visited key) then begin
    Hashtbl.replace s.st_visited key ();
    (* Second layer: collapse states whose decided content is Duosem-
       canonically equal (predicate order, equivalent spellings).  Runs
       only on the committing loop, so the collapse — like all dedup —
       is deterministic across domain counts. *)
    let ckey = Partial.canonical_key child in
    if Hashtbl.mem s.st_canon ckey then
      s.st_stats.Verify.dedup_semantic <- s.st_stats.Verify.dedup_semantic + 1
    else begin
      Hashtbl.replace s.st_canon ckey ();
      Frontier.push s.st_frontier (deprioritize s child)
    end
  end

let process s worker (p : Partial.t) =
  let tstats = Verify.new_stats () in
  let env_t = Verify.with_stats s.st_envs.(worker) tstats in
  let t0 = Clock.mono () in
  let children = expand ~guided:s.st_config.guided s.st_hints s.st_ctx p in
  let t1 = Clock.mono () in
  let verdicts = judge env_t s.st_config children in
  let t2 = Clock.mono () in
  (* [sync_relcache] copies the worker cache's *cumulative* counters
     into the current record; merging those per task would multiply
     them.  Per-domain cache numbers are re-derived from the caches
     once, when the run finishes. *)
  tstats.Verify.relcache_hits <- 0;
  tstats.Verify.pushdown_builds <- 0;
  {
    tr_worker = worker;
    tr_children = verdicts;
    tr_stats = tstats;
    tr_expand_s = t1 -. t0;
    tr_verify_s = t2 -. t1;
  }

(* Arena variant of [process]: fill a recycled [task_result] in place.
   Instead of copying the worker's env per task ([with_stats]), the
   env's stats sink is retargeted in place — safe because each worker
   owns its forked env, and worker 0's sink is restored by [fill] before
   the committing loop runs again. *)
let process_into s worker (p : Partial.t) (r : task_result) =
  Verify.reset_stats r.tr_stats;
  let env_t = s.st_envs.(worker) in
  Verify.set_stats env_t r.tr_stats;
  let t0 = Clock.mono () in
  let children = expand ~guided:s.st_config.guided s.st_hints s.st_ctx p in
  let t1 = Clock.mono () in
  let verdicts = judge env_t s.st_config children in
  let t2 = Clock.mono () in
  (* zeroed for the same reason as in [process]: the relation-cache
     mirrors are cumulative and re-derived at outcome time *)
  r.tr_stats.Verify.relcache_hits <- 0;
  r.tr_stats.Verify.pushdown_builds <- 0;
  r.tr_worker <- worker;
  r.tr_children <- verdicts;
  r.tr_expand_s <- t1 -. t0;
  r.tr_verify_s <- t2 -. t1

(* One speculative pool round ahead of the committing loop: batch-pop the
   top of the frontier, process every un-memoized incomplete state on some
   domain, memoize (by physical state on the arena path, by rendered key
   on the v1 path — [push_fresh] admits each key once, so either way a
   memo entry belongs to exactly one live state), restore. *)
let arena_round_fn s ar =
  match ar.ar_fn with
  | Some f -> f
  | None ->
      let f ~worker i = process_into s worker ar.ar_tasks.(i) ar.ar_results.(i) in
      ar.ar_fn <- Some f;
      f

let fill s pool (p : Partial.t) =
  (* Round size: the adaptive controller closes the books on the last
     round (cumulative [st_spec_hits] gives it the commit delta) and
     picks the next size; without a controller the v1 fixed round
     stands.  A floor-sized round carries only [p], and [Pool.run _ 1]
     runs inline — the sequential degeneration really is sequential. *)
  let spec_batch =
    match s.st_controller with
    | Some c ->
        let b = Duopar.Controller.begin_round c ~hits:s.st_spec_hits in
        (* Budget awareness is part of the controller law: [p] already
           consumed a pop, so at most [remaining] further states can be
           popped this refinement — staging past that is guaranteed
           waste (the fixed v1 round does exactly that on every run's
           last round). *)
        let remaining =
          s.st_config.max_pops - (s.st_pops - s.st_pop_base)
        in
        max 1 (min b (remaining + 1))
    | None -> s.st_domains * 4
  in
  s.st_spec_rounds <- s.st_spec_rounds + 1;
  match s.st_arena with
  | Some ar ->
      (* Zero-allocation path: pop into the arena buffer, stage tasks
         and recycled result records in the arena arrays, run, move the
         records into the memo, restore.  [spec_batch] never exceeds the
         arrays' capacity (controller ceiling). *)
      let n_extra =
        Frontier.pop_entries_into s.st_frontier ar.ar_entries (spec_batch - 1)
      in
      ar.ar_tasks.(0) <- p;
      let n_tasks = ref 1 in
      for i = 0 to n_extra - 1 do
        let st, _ = ar.ar_entries.(i) in
        if
          (not (Partial.is_complete st))
          && not (Phys_tbl.mem s.st_memo_phys st)
        then begin
          ar.ar_tasks.(!n_tasks) <- st;
          incr n_tasks
        end
      done;
      let n = !n_tasks in
      for i = 0 to n - 1 do
        ar.ar_results.(i) <- arena_take ar
      done;
      s.st_spec_tasks <- s.st_spec_tasks + n;
      Option.iter
        (fun c -> Duopar.Controller.launched c ~tasks:n)
        s.st_controller;
      Duopar.Pool.run pool n (arena_round_fn s ar);
      (* [process_into] retargeted worker 0's (the caller's) stats sink;
         point it back at the run record before the committing loop's
         own verifications ([deprioritize]) resume. *)
      Verify.set_stats s.st_envs.(0) s.st_stats;
      for i = 0 to n - 1 do
        Phys_tbl.replace s.st_memo_phys ar.ar_tasks.(i) ar.ar_results.(i);
        ar.ar_tasks.(i) <- Partial.root
      done;
      Frontier.restore_array s.st_frontier ar.ar_entries n_extra
  | None ->
      let extras = Frontier.pop_entries s.st_frontier (spec_batch - 1) in
      let tasks =
        Array.of_list
          (p
          :: List.filter_map
               (fun ((st : Partial.t), _) ->
                 if
                   Partial.is_complete st
                   || Hashtbl.mem s.st_memo (Partial.key st)
                 then None
                 else Some st)
               extras)
      in
      s.st_spec_tasks <- s.st_spec_tasks + Array.length tasks;
      Option.iter
        (fun c -> Duopar.Controller.launched c ~tasks:(Array.length tasks))
        s.st_controller;
      let results = Array.make (Array.length tasks) None in
      Duopar.Pool.run pool (Array.length tasks) (fun ~worker i ->
          results.(i) <- Some (process s worker tasks.(i)));
      Array.iteri
        (fun i st ->
          match results.(i) with
          | Some r -> Hashtbl.replace s.st_memo (Partial.key st) r
          | None -> ())
        tasks;
      Frontier.restore s.st_frontier extras

exception Slice_exhausted

(* [step ?max_pops s] advances the run by at most [max_pops] further
   frontier pops (unbounded when omitted), stopping early when any budget
   of [s.st_config] finishes the run.  The time budget counts only active
   stepping time, so a paused session is not charged for the pause. *)
let step ?max_pops s =
  if s.st_finished then Finished
  else begin
    let config = s.st_config in
    let t0 = Clock.now () in
    let now () = s.st_elapsed_s +. (Clock.now () -. t0) in
    let pop_limit =
      match max_pops with
      | None -> max_int
      | Some k when k >= max_int - s.st_pops -> max_int
      | Some k -> s.st_pops + max 0 k
    in
    let over_time () = now () > config.time_budget_s in
    let emit pq q =
      (* Candidate dedup on Duosem canonical keys: a strict coarsening of
         the former [Duosql.Equal.queries] scan (which already treated
         FROM and WHERE as multisets), O(1) per emission instead of a
         list walk. *)
      let ckey = Duolint.Duosem.dedup_key q in
      if Hashtbl.mem s.st_emitted ckey then
        s.st_stats.Verify.dedup_semantic <-
          s.st_stats.Verify.dedup_semantic + 1
      else begin
        Hashtbl.replace s.st_emitted ckey ();
        let c =
          {
            cand_query = q;
            cand_confidence = pq.Partial.confidence;
            cand_index = s.st_n_candidates;
            cand_pops = s.st_pops;
            cand_time_s = now ();
          }
        in
        s.st_candidates <- c :: s.st_candidates;
        s.st_n_candidates <- s.st_n_candidates + 1;
        s.st_on_candidate c;
        if s.st_n_candidates >= config.max_candidates then
          raise Budget_exhausted
      end
    in
    let timed acc f =
      let m0 = Clock.mono () in
      let r = f () in
      acc (Clock.mono () -. m0);
      r
    in
    (* The sequential best-first loop stays the single committing loop: it
       alone pops, emits, merges stats and pushes children, so candidate
       order, dedup and prune accounting are decided exactly as with
       [domains = 1]; worker domains merely precompute results for states
       it is about to pop (see [fill]). *)
    (try
       while true do
         if s.st_pops >= pop_limit then raise Slice_exhausted;
         if Frontier.is_empty s.st_frontier then begin
           (* An empty frontier only proves exhaustion when compaction never
              discarded a state: dropped states stay in [st_visited] and can
              never re-enter, so their subtrees were not enumerated. *)
           s.st_exhausted <- Frontier.dropped s.st_frontier = 0;
           raise Budget_exhausted
         end;
         if s.st_pops - s.st_pop_base >= config.max_pops then
           raise Budget_exhausted;
         if over_time () then raise Budget_exhausted;
         match Frontier.pop s.st_frontier with
         | None -> raise Budget_exhausted
         | Some p when Partial.is_complete p -> (
             (* Complete states are emitted when popped, so candidates
                stream out in nonincreasing confidence order. *)
             s.st_pops <- s.st_pops + 1;
             match Partial.to_query p with
             | Some q -> emit p q
             | None -> ())
         | Some p -> (
             s.st_pops <- s.st_pops + 1;
             match s.st_pool with
             | None ->
                 let children =
                   timed
                     (fun d -> s.st_expand_s <- s.st_expand_s +. d)
                     (fun () ->
                       expand ~guided:config.guided s.st_hints s.st_ctx p)
                 in
                 (* verification can dominate a pop; respect the budget *)
                 if over_time () then raise Budget_exhausted;
                 let verdicts =
                   timed
                     (fun d -> s.st_verify_s <- s.st_verify_s +. d)
                     (fun () -> judge s.st_envs.(0) config children)
                 in
                 List.iter
                   (fun ((child : Partial.t), ok) ->
                     if over_time () then raise Budget_exhausted;
                     if ok then push_fresh s child)
                   verdicts
             | Some pool ->
                 let r =
                   match s.st_arena with
                   | Some _ -> (
                       (* Identity lookup: [p] is the object the round
                          staged, so no key string is rendered here. *)
                       match Phys_tbl.find_opt s.st_memo_phys p with
                       | Some r ->
                           Phys_tbl.remove s.st_memo_phys p;
                           r
                       | None ->
                           (* [p] is always the first task of the fill. *)
                           fill s pool p;
                           let r = Phys_tbl.find s.st_memo_phys p in
                           Phys_tbl.remove s.st_memo_phys p;
                           r)
                   | None ->
                       let key = Partial.key p in
                       let r =
                         match Hashtbl.find_opt s.st_memo key with
                         | Some r -> r
                         | None ->
                             fill s pool p;
                             Hashtbl.find s.st_memo key
                       in
                       Hashtbl.remove s.st_memo key;
                       r
                 in
                 s.st_spec_hits <- s.st_spec_hits + 1;
                 Verify.merge_stats
                   ~into:s.st_domain_stats.(r.tr_worker)
                   r.tr_stats;
                 s.st_expand_s <- s.st_expand_s +. r.tr_expand_s;
                 s.st_verify_s <- s.st_verify_s +. r.tr_verify_s;
                 List.iter
                   (fun ((child : Partial.t), ok) ->
                     if over_time () then raise Budget_exhausted;
                     if ok then push_fresh s child)
                   r.tr_children;
                 (* committed: the record's memo ownership ends here *)
                 Option.iter (fun ar -> arena_recycle ar r) s.st_arena)
       done
     with
    | Budget_exhausted -> s.st_finished <- true
    | Slice_exhausted -> ());
    s.st_elapsed_s <- now ();
    if s.st_finished then Finished else Running
  end

(* [charge s seconds] pre-spends active time against the run's wall-clock
   budget, as if the run had already stepped for that long.  The session
   layer uses it to make the time budget cumulative across from-root
   refinement restarts: the replacement run starts with the old run's
   elapsed time already on the meter. *)
let charge s seconds = if seconds > 0.0 then s.st_elapsed_s <- s.st_elapsed_s +. seconds

(* Warm-restart the run under a tightened sketch (Tsq.Tightening — the
   caller classifies; rebasing on an Incomparable edit is unsound).

   Soundness rests on per-stage monotonicity: under a tightening, every
   cascade stage that failed a state under the old sketch also fails it
   under the new one, so states pruned before the refinement need no
   second look — only the *survivors* (the frontier, and the emitted
   candidates) can change verdict, and only from pass to fail.  Each
   survivor is re-checked with {!Verify.reverify}, which re-runs just the
   sketch-reading stages (clauses / column / row / complete) and carries
   the TSQ-independent verdicts (static, semantics) and the
   type-annotation stage (a tightening keeps [types] equal).

   Equivalence with a from-root run under the new sketch: a tightening
   also keeps the guidance header ([hints_of_tsq]) identical, so
   expansion proposes the same children with the same confidences;
   [Frontier.pop_entries]/[restore] preserve insertion sequence numbers,
   so the surviving frontier keeps the exact relative order the cold
   run's frontier would impose on those states.  The re-filtered
   candidate list is therefore candidate-for-candidate the cold run's
   prefix (unit- and property-tested). *)
let rebase s ~tsq =
  let t0 = Clock.now () in
  let m0 = Clock.mono () in
  (* Retarget every domain's environment and the guidance hints; the
     speculation memo holds verdicts computed under the old sketch and
     must be dropped (visited-key dedup is unaffected: any state whose
     key is already recorded was either kept, or pruned — and a pruned
     state stays pruned under a tightening). *)
  Array.iteri (fun d env -> s.st_envs.(d) <- Verify.retarget env ~tsq) s.st_envs;
  s.st_hints <- hints_of_tsq tsq;
  (* the dropped memo records go back to the arena, not the GC *)
  Option.iter
    (fun ar ->
      Hashtbl.iter (fun _ r -> arena_recycle ar r) s.st_memo;
      Phys_tbl.iter (fun _ r -> arena_recycle ar r) s.st_memo_phys)
    s.st_arena;
  Hashtbl.reset s.st_memo;
  Phys_tbl.reset s.st_memo_phys;
  let env = s.st_envs.(0) in
  (* Re-verify the frontier survivors.  Under NoPQ partial states were
     never verified against the sketch, so only complete states are
     re-checked there. *)
  let entries =
    Frontier.pop_entries s.st_frontier (Frontier.size s.st_frontier)
  in
  let kept, dropped =
    List.partition
      (fun ((p : Partial.t), _) ->
        if s.st_config.prune_partial || Partial.is_complete p then
          Verify.reverify env p
        else true)
      entries
  in
  Frontier.restore s.st_frontier kept;
  (* Re-filter the emitted candidates ([st_candidates] is newest-first)
     and renumber the survivors in emission order. *)
  let kept_cands =
    List.filter (fun c -> Verify.reverify_query env c.cand_query) s.st_candidates
  in
  let n = List.length kept_cands in
  s.st_candidates <- List.mapi (fun i c -> { c with cand_index = n - 1 - i }) kept_cands;
  (* The emission-dedup table must mirror the surviving candidate list:
     a dropped candidate's canonical twin may satisfy the tightened
     sketch (satisfaction can read row order, which canonicalization
     abstracts) and deserves a fresh chance to emit. *)
  Hashtbl.reset s.st_emitted;
  List.iter
    (fun c ->
      Hashtbl.replace s.st_emitted (Duolint.Duosem.dedup_key c.cand_query) ())
    s.st_candidates;
  let dropped_cands = s.st_n_candidates - n in
  s.st_n_candidates <- n;
  s.st_rebases <- s.st_rebases + 1;
  s.st_rebase_kept <- s.st_rebase_kept + List.length kept + n;
  s.st_rebase_dropped <- s.st_rebase_dropped + List.length dropped + dropped_cands;
  (* The pop budget is per refinement; the time budget stays cumulative
     (rebase work itself is on the meter).  If the carried candidates
     already fill the candidate budget, a cold run under the new sketch
     would stop right where they end, so the rebased run is done too. *)
  s.st_pop_base <- s.st_pops;
  s.st_finished <- s.st_n_candidates >= s.st_config.max_candidates;
  if not s.st_finished then s.st_exhausted <- false;
  s.st_verify_s <- s.st_verify_s +. (Clock.mono () -. m0);
  s.st_elapsed_s <- s.st_elapsed_s +. (Clock.now () -. t0)

(* Snapshot the run's observable outcome.  Pure with respect to results:
   recomputing the per-domain relation-cache counters just overwrites them
   with the caches' current cumulative numbers, so calling this mid-run
   (Duoserve's [get_candidates]) and again at the end is safe. *)
let outcome s =
  let out_stats =
    if s.st_domains = 1 then s.st_stats
    else begin
      (* Per-domain relation-cache numbers come from the caches
         themselves; task records were zeroed (see [process]). *)
      Array.iteri
        (fun d ds ->
          let hits, _misses, pushd =
            Duoengine.Executor.cache_stats (Verify.relcache s.st_envs.(d))
          in
          ds.Verify.relcache_hits <- hits;
          ds.Verify.pushdown_builds <- pushd)
        s.st_domain_stats;
      let total = Verify.new_stats () in
      (* [st_stats] holds only push-time deprioritization warnings in
         parallel mode (verification runs through task records). *)
      Verify.merge_stats ~into:total s.st_stats;
      Array.iter (fun ds -> Verify.merge_stats ~into:total ds) s.st_domain_stats;
      total
    end
  in
  {
    out_candidates = List.rev s.st_candidates;
    out_pops = s.st_pops;
    out_pushed = Frontier.pushed s.st_frontier;
    out_stats;
    out_elapsed_s = s.st_elapsed_s;
    out_expand_s = s.st_expand_s;
    out_verify_s = s.st_verify_s;
    out_exhausted = s.st_exhausted;
    out_dropped = Frontier.dropped s.st_frontier;
    out_domains = s.st_domains;
    out_domain_stats = s.st_domain_stats;
    out_spec_rounds = s.st_spec_rounds;
    out_spec_tasks = s.st_spec_tasks;
    out_spec_hits = s.st_spec_hits;
    out_spec_round_size =
      (match s.st_controller with
      | Some c -> Duopar.Controller.size c
      | None -> if s.st_pool = None then 0 else s.st_domains * 4);
    out_spec_ewma =
      (match s.st_controller with
      | Some c -> Duopar.Controller.ewma c
      | None -> 1.0);
    out_spec_grows =
      (match s.st_controller with
      | Some c -> Duopar.Controller.grows c
      | None -> 0);
    out_spec_shrinks =
      (match s.st_controller with
      | Some c -> Duopar.Controller.shrinks c
      | None -> 0);
    out_rebases = s.st_rebases;
    out_rebase_kept = s.st_rebase_kept;
    out_rebase_dropped = s.st_rebase_dropped;
  }

let run config ctx db ?index ?relcache ?pool ~tsq ~literals ?on_candidate () =
  let s = init config ctx db ?index ?relcache ?pool ~tsq ~literals ?on_candidate () in
  Fun.protect
    ~finally:(fun () -> release s)
    (fun () ->
      ignore (step s);
      outcome s)
