open Duosql.Ast
module Value = Duodb.Value
module Datatype = Duodb.Datatype

(* The cascade's stages, cheapest first.  [stage_seconds] is indexed by
   [stage_index], so reordering or extending the cascade cannot silently
   misattribute time: both the cascade and the stats report go through the
   same enum. *)
type stage =
  | S_static
  | S_clauses
  | S_cardinality
  | S_semantics
  | S_types
  | S_column
  | S_row
  | S_complete

let all_stages =
  [ S_static; S_clauses; S_cardinality; S_semantics; S_types; S_column;
    S_row; S_complete ]

let stage_index = function
  | S_static -> 0
  | S_clauses -> 1
  | S_cardinality -> 2
  | S_semantics -> 3
  | S_types -> 4
  | S_column -> 5
  | S_row -> 6
  | S_complete -> 7

let stage_name = function
  | S_static -> "static"
  | S_clauses -> "clauses"
  | S_cardinality -> "cardinality"
  | S_semantics -> "semantics"
  | S_types -> "types"
  | S_column -> "column"
  | S_row -> "row"
  | S_complete -> "complete"

type stats = {
  mutable column_probes : int;
  mutable index_probes : int;
  mutable row_probes : int;
  mutable full_executions : int;
  mutable relcache_hits : int;
  mutable pushdown_builds : int;
  mutable pruned : int;
  mutable pruned_by_static : int;
  mutable pruned_by_clauses : int;
  mutable pruned_by_cardinality : int;
  mutable pruned_by_semantics : int;
  mutable pruned_by_types : int;
  mutable pruned_by_column : int;
  mutable pruned_by_row : int;
  mutable pruned_by_complete : int;
  mutable dedup_semantic : int;
  mutable static_warnings : int;
  mutable batch_rounds : int;
  mutable batched_probes : int;
  mutable stage_seconds : float array;
}

let new_stats () =
  { column_probes = 0; index_probes = 0; row_probes = 0; full_executions = 0;
    relcache_hits = 0; pushdown_builds = 0; pruned = 0;
    pruned_by_static = 0; pruned_by_clauses = 0; pruned_by_cardinality = 0;
    pruned_by_semantics = 0;
    pruned_by_types = 0; pruned_by_column = 0; pruned_by_row = 0;
    pruned_by_complete = 0; dedup_semantic = 0; static_warnings = 0;
    batch_rounds = 0; batched_probes = 0;
    stage_seconds = Array.make (List.length all_stages) 0.0 }

(* Zero a stats record in place so Duopar task arenas can recycle one
   per task slot instead of allocating a fresh record every round. *)
let reset_stats s =
  s.column_probes <- 0;
  s.index_probes <- 0;
  s.row_probes <- 0;
  s.full_executions <- 0;
  s.relcache_hits <- 0;
  s.pushdown_builds <- 0;
  s.pruned <- 0;
  s.pruned_by_static <- 0;
  s.pruned_by_clauses <- 0;
  s.pruned_by_cardinality <- 0;
  s.pruned_by_semantics <- 0;
  s.pruned_by_types <- 0;
  s.pruned_by_column <- 0;
  s.pruned_by_row <- 0;
  s.pruned_by_complete <- 0;
  s.dedup_semantic <- 0;
  s.static_warnings <- 0;
  s.batch_rounds <- 0;
  s.batched_probes <- 0;
  Array.fill s.stage_seconds 0 (Array.length s.stage_seconds) 0.0

let pruned_by s = function
  | S_static -> s.pruned_by_static
  | S_clauses -> s.pruned_by_clauses
  | S_cardinality -> s.pruned_by_cardinality
  | S_semantics -> s.pruned_by_semantics
  | S_types -> s.pruned_by_types
  | S_column -> s.pruned_by_column
  | S_row -> s.pruned_by_row
  | S_complete -> s.pruned_by_complete

(* All counters are plain adds; [stage_seconds] sums elementwise.  The
   relation-cache mirrors ([relcache_hits], [pushdown_builds]) are also
   summed, so a caller merging several per-domain stats records must
   make sure each record carries only its own cache's numbers (see
   [sync_relcache], which {e sets} cumulative values). *)
let merge_stats ~into s =
  into.column_probes <- into.column_probes + s.column_probes;
  into.index_probes <- into.index_probes + s.index_probes;
  into.row_probes <- into.row_probes + s.row_probes;
  into.full_executions <- into.full_executions + s.full_executions;
  into.relcache_hits <- into.relcache_hits + s.relcache_hits;
  into.pushdown_builds <- into.pushdown_builds + s.pushdown_builds;
  into.pruned <- into.pruned + s.pruned;
  into.pruned_by_static <- into.pruned_by_static + s.pruned_by_static;
  into.pruned_by_clauses <- into.pruned_by_clauses + s.pruned_by_clauses;
  into.pruned_by_cardinality <-
    into.pruned_by_cardinality + s.pruned_by_cardinality;
  into.pruned_by_semantics <- into.pruned_by_semantics + s.pruned_by_semantics;
  into.pruned_by_types <- into.pruned_by_types + s.pruned_by_types;
  into.pruned_by_column <- into.pruned_by_column + s.pruned_by_column;
  into.pruned_by_row <- into.pruned_by_row + s.pruned_by_row;
  into.pruned_by_complete <- into.pruned_by_complete + s.pruned_by_complete;
  into.dedup_semantic <- into.dedup_semantic + s.dedup_semantic;
  into.static_warnings <- into.static_warnings + s.static_warnings;
  into.batch_rounds <- into.batch_rounds + s.batch_rounds;
  into.batched_probes <- into.batched_probes + s.batched_probes;
  Array.iteri
    (fun i v -> into.stage_seconds.(i) <- into.stage_seconds.(i) +. v)
    s.stage_seconds

(* Process-wide cascade invocation counter.  The per-run stats records
   above are all domain-confined; this is the one counter that must be
   global (it spans every domain and every concurrent run), so it is an
   [Atomic] rather than a mutable field. *)
let verify_calls : int Atomic.t = Atomic.make 0

let total_verifies () = Atomic.get verify_calls

(* Verification queries abort past this relation size — the stand-in for
   the real system's per-query timeout (Section 3.4's "costly depending on
   the nature of the query"). *)
let verification_max_rows = 20_000

type env = {
  e_db : Duodb.Database.t;
  e_tsq : Tsq.t option;
  e_literals : Value.t list;
  e_semantics : bool;
  e_static : bool;
  (* schema compiled to hash lookups for the stage-0 rules *)
  e_lint : Duolint.Analyze.prepared;
  (* immutable schema key facts for the Duosem cardinality stage; safe
     to share across forked domains *)
  e_sem : Duolint.Duosem.prepared;
  (* mutable so Duopar task arenas can retarget one environment at a
     per-slot stats record ([set_stats]) instead of copying the whole
     env per task ([with_stats], kept for the legacy arena-off path) *)
  mutable e_stats : stats;
  (* Master inverted index for text-literal column probes; forced on first
     use when no session index is supplied.  The database is append-only
     during synthesis, so the snapshot stays valid. *)
  e_index : Duodb.Index.t Lazy.t;
  (* (table, column, cell) -> probe result *)
  e_cache : (string * string * string, bool) Hashtbl.t;
  (* rendered row-probe query + positions -> probe result *)
  e_row_cache : (string, bool) Hashtbl.t;
  e_relcache : Duoengine.Executor.relation_cache;
  (* (table, column) -> min/max range, for AVG checks *)
  e_range_cache : (string * string, (Value.t * Value.t) option) Hashtbl.t;
}

let make_env ?stats ?(semantics = true) ?(static = true) ?index ?relcache ~db
    ~tsq ~literals () =
  {
    e_db = db;
    e_tsq = tsq;
    e_literals = literals;
    e_semantics = semantics;
    e_static = static;
    e_lint = Duolint.Analyze.prepare (Duodb.Database.schema db);
    e_sem = Duolint.Duosem.prepare (Duodb.Database.schema db);
    e_stats = (match stats with Some s -> s | None -> new_stats ());
    e_index =
      (match index with
      | Some i -> Lazy.from_val i
      | None -> lazy (Duodb.Index.build db));
    e_cache = Hashtbl.create 256;
    e_row_cache = Hashtbl.create 256;
    e_relcache =
      (match relcache with
      | Some c -> c
      | None -> Duoengine.Executor.create_cache ());
    e_range_cache = Hashtbl.create 64;
  }

let stats env = env.e_stats
let relcache env = env.e_relcache

(* Per-domain environment for the Duopar speculative rounds: shares the
   immutable inputs (database, TSQ, literals, the *forced* inverted
   index) and gets private copies of everything mutable — probe caches,
   relation cache, stats, and the Duolint prepared tables (whose
   one-slot memos are written on every check).  Forcing the index here
   runs on the caller's domain, so worker domains never race the lazy
   thunk. *)
let fork_env env =
  {
    env with
    e_lint = Duolint.Analyze.prepare (Duodb.Database.schema env.e_db);
    e_stats = new_stats ();
    e_index = Lazy.from_val (Lazy.force env.e_index);
    e_cache = Hashtbl.create 256;
    e_row_cache = Hashtbl.create 256;
    e_relcache = Duoengine.Executor.create_cache ();
    e_range_cache = Hashtbl.create 64;
  }

(* Same environment (caches included), different stats sink — gives each
   speculative task a private stats record that is merged into the run's
   totals only if the task's state is actually popped. *)
let with_stats env stats = { env with e_stats = stats }

(* In-place variant of [with_stats]: point the environment's sink at
   [stats] without copying the record.  Only safe within a single
   domain — Duopar workers each own a forked env, so retargeting between
   tasks never races. *)
let set_stats env stats = env.e_stats <- stats

(* Mirror the shared relation cache's counters into the stats record after
   each executor call, so outcomes report pushdown and reuse activity. *)
let sync_relcache env =
  let hits, _, pushdowns = Duoengine.Executor.cache_stats env.e_relcache in
  env.e_stats.relcache_hits <- hits;
  env.e_stats.pushdown_builds <- pushdowns

(* --- phase predicates --- *)

(* A state deciding its join path carries the progress of the wrapped
   phase. *)
let rec effective_phase = function
  | Partial.P_joinpath inner -> effective_phase inner
  | ( Partial.P_keywords | Partial.P_num_proj | Partial.P_proj_target _
    | Partial.P_proj_agg _ | Partial.P_where_num | Partial.P_where_col _
    | Partial.P_where_op _ | Partial.P_where_conn | Partial.P_group_col
    | Partial.P_having_presence | Partial.P_having_pred
    | Partial.P_order_target | Partial.P_order_dir | Partial.P_limit
    | Partial.P_done ) as p ->
      p

let kw_decided (t : Partial.t) =
  effective_phase t.Partial.phase <> Partial.P_keywords

let select_done (t : Partial.t) =
  match effective_phase t.Partial.phase with
  | Partial.P_keywords | Partial.P_num_proj | Partial.P_proj_target _
  | Partial.P_proj_agg _ ->
      false
  | Partial.P_where_num | Partial.P_where_col _ | Partial.P_where_op _
  | Partial.P_where_conn | Partial.P_group_col | Partial.P_having_presence
  | Partial.P_having_pred | Partial.P_order_target | Partial.P_order_dir
  | Partial.P_limit | Partial.P_done ->
      true
  | Partial.P_joinpath _ -> assert false (* effective_phase unwraps *)

let where_done (t : Partial.t) =
  match effective_phase t.Partial.phase with
  | Partial.P_keywords | Partial.P_num_proj | Partial.P_proj_target _
  | Partial.P_proj_agg _ | Partial.P_where_num | Partial.P_where_col _
  | Partial.P_where_op _ | Partial.P_where_conn ->
      false
  | Partial.P_group_col | Partial.P_having_presence | Partial.P_having_pred
  | Partial.P_order_target | Partial.P_order_dir | Partial.P_limit
  | Partial.P_done ->
      true
  | Partial.P_joinpath _ -> assert false

let group_decided (t : Partial.t) =
  match effective_phase t.Partial.phase with
  | Partial.P_having_presence | Partial.P_having_pred | Partial.P_order_target
  | Partial.P_order_dir | Partial.P_limit | Partial.P_done ->
      true
  | Partial.P_joinpath _ -> assert false
  | Partial.P_keywords | Partial.P_num_proj | Partial.P_proj_target _
  | Partial.P_proj_agg _ | Partial.P_where_num | Partial.P_where_col _
  | Partial.P_where_op _ | Partial.P_where_conn | Partial.P_group_col ->
      false

let having_done (t : Partial.t) =
  match effective_phase t.Partial.phase with
  | Partial.P_order_target | Partial.P_order_dir | Partial.P_limit
  | Partial.P_done ->
      true
  | Partial.P_joinpath _ -> assert false
  | Partial.P_keywords | Partial.P_num_proj | Partial.P_proj_target _
  | Partial.P_proj_agg _ | Partial.P_where_num | Partial.P_where_col _
  | Partial.P_where_op _ | Partial.P_where_conn | Partial.P_group_col
  | Partial.P_having_presence | Partial.P_having_pred ->
      false

let order_done (t : Partial.t) =
  match effective_phase t.Partial.phase with
  | Partial.P_limit | Partial.P_done -> true
  | Partial.P_joinpath _ -> assert false
  | Partial.P_keywords | Partial.P_num_proj | Partial.P_proj_target _
  | Partial.P_proj_agg _ | Partial.P_where_num | Partial.P_where_col _
  | Partial.P_where_op _ | Partial.P_where_conn | Partial.P_group_col
  | Partial.P_having_presence | Partial.P_having_pred
  | Partial.P_order_target | Partial.P_order_dir ->
      false

(* --- stage 1: clause presence (Example 3.3) --- *)

let verify_clauses env (t : Partial.t) =
  match env.e_tsq with
  | None -> true
  | Some tsq ->
      (not (kw_decided t))
      || begin
           let kw = t.Partial.kw in
           (* tau => ORDER BY; the reverse is not required — an unchecked
              sorted box leaves the order unconstrained (Definition 2.4),
              so pruning ORDER BY queries here would over-prune.  A limit
              k > 0 still requires ORDER BY: LIMIT is only enumerated
              after an ORDER BY decision, so no completion without one can
              carry the LIMIT clause the sketch demands. *)
           ((not tsq.Tsq.sorted) || kw.Duoguide.Model.kw_order)
           && ((tsq.Tsq.limit = 0) || kw.Duoguide.Model.kw_order)
           &&
           match t.Partial.limit with
           | None -> true
           | Some n -> tsq.Tsq.limit > 0 && n <= tsq.Tsq.limit
         end

(* --- stage 3: semantic rules on decided parts (Table 4) --- *)

let decided_slot_proj (s : Partial.proj_slot) =
  match s.Partial.pj_target, s.Partial.pj_agg with
  | Duoguide.Model.Target_count_star, _ -> Some count_star
  | Duoguide.Model.Target_column c, Some agg ->
      Some
        { p_agg = agg;
          p_col = Some (col c.Duodb.Schema.col_table c.Duodb.Schema.col_name);
          p_distinct = false }
  | Duoguide.Model.Target_column _, None -> None

(* --- stage 0: Duolint static analysis (no database access) --- *)

(* Project the enumerator's state into Duolint's open-world clause view.
   Finality flags are conservative: a flag is set only when no later
   decision can change that clause.  FROM is the delicate one — join-path
   construction replaces the clause wholesale, so it is final only on
   complete states. *)
let outline_of_partial (t : Partial.t) : Duolint.Outline.t =
  let kw = t.Partial.kw in
  let kwd = kw_decided t in
  let complete = Partial.is_complete t in
  let no_group = kwd && not kw.Duoguide.Model.kw_group in
  let no_order = kwd && not kw.Duoguide.Model.kw_order in
  {
    Duolint.Outline.o_select =
      List.filter_map decided_slot_proj t.Partial.projs;
    o_select_final = select_done t;
    o_from = t.Partial.from;
    o_from_final = complete;
    o_where = t.Partial.where_preds;
    o_where_conn = (if where_done t then Some t.Partial.conn else None);
    o_where_final = where_done t;
    o_group_by = Option.to_list t.Partial.group_col;
    o_group_final = no_group || group_decided t;
    o_having = Option.to_list t.Partial.having_pred;
    o_having_conn =
      (if no_group || having_done t then Some And else None);
    o_having_final = no_group || having_done t;
    o_order_by =
      (match t.Partial.order_item with
      | None -> []
      | Some (agg, col) ->
          [ { o_agg = agg; o_col = col; o_dir = t.Partial.order_dir } ]);
    o_order_final = no_order || order_done t;
    o_limit = t.Partial.limit;
    o_limit_final = complete || no_order;
  }

let verify_static env (t : Partial.t) =
  (not env.e_static)
  || not (Duolint.Analyze.has_errors_p env.e_lint (outline_of_partial t))

(* Frontier-side entry point: lets the enumerator reject statically dead
   children before they are ever pushed, with time and prunes attributed
   to stage 0. *)
let check_static env (t : Partial.t) =
  Atomic.incr verify_calls;
  let s = env.e_stats in
  let t0 = Clock.mono () in
  let ok = verify_static env t in
  let i = stage_index S_static in
  s.stage_seconds.(i) <- s.stage_seconds.(i) +. (Clock.mono () -. t0);
  if not ok then begin
    s.pruned_by_static <- s.pruned_by_static + 1;
    s.pruned <- s.pruned + 1
  end;
  ok

(* Warning count for the enumerator's deprioritization: warnings never
   prune, they only push suspicious states down the frontier. *)
let static_warnings env (t : Partial.t) =
  if not env.e_static then 0
  else begin
    let n = Duolint.Analyze.count_warnings_p env.e_lint (outline_of_partial t) in
    if n > 0 then env.e_stats.static_warnings <- env.e_stats.static_warnings + n;
    n
  end

let verify_static_query env q =
  (not env.e_static)
  || not (Duolint.Analyze.has_errors_p env.e_lint (Duolint.Outline.of_query q))

(* --- stage 2: Duosem cardinality bound vs the required tuple count --- *)

(* Database-free: a sketch with example tuples needs at least
   [required_support] distinct result rows ([Tsq.satisfies] matches
   tuples to rows injectively), so a state whose abstract row-count
   upper bound (Duosem: aggregation without GROUP BY, pinned primary
   keys, LIMIT) falls below that threshold has no satisfying completion.
   Monotone under refinement: a tightening only grows
   [required_support], and the bound itself only tightens with more
   decisions. *)
(* Grammar-aware refinement of the outline for cardinality purposes: once
   keywords commit to GROUP BY, the projection list is final and exactly
   one projection is plain, every completion that survives the static
   rules groups by exactly that column — [Partial] has a single group
   slot and [Projection_not_grouped] rejects any other choice.  The
   outline may therefore commit the GROUP BY clause before the
   enumerator decides it, letting the pinned-group-key bound fire
   database-free ahead of the probe stages.  Only valid under enforced
   static rules: without them, ungrouped-projection completions survive
   and keep SQLite's bare-column (many-row) semantics. *)
let outline_for_cardinality env (t : Partial.t) =
  let o = outline_of_partial t in
  if
    env.e_static && kw_decided t
    && t.Partial.kw.Duoguide.Model.kw_group
    && t.Partial.group_col = None
    && o.Duolint.Outline.o_select_final
  then
    match
      List.filter_map
        (fun (p : proj) -> if p.p_agg = None then p.p_col else None)
        o.Duolint.Outline.o_select
    with
    | [ c ] ->
        { o with Duolint.Outline.o_group_by = [ c ]; o_group_final = true }
    | [] | _ :: _ :: _ -> o
  else o

let verify_cardinality env (t : Partial.t) =
  match env.e_tsq with
  | None -> true
  | Some tsq -> (
      let support = Tsq.required_support tsq in
      support <= 0
      ||
      match
        (Duolint.Duosem.bound env.e_sem (outline_for_cardinality env t))
          .Duolint.Duosem.c_hi
      with
      | None -> true
      | Some hi -> hi >= support)

let verify_semantics env (t : Partial.t) =
  env.e_semantics = false
  ||
  let schema = Duodb.Database.schema env.e_db in
  let decided_projs = List.filter_map decided_slot_proj t.Partial.projs in
  List.for_all (Semantics.projection_types_ok schema) decided_projs
  && List.for_all (Semantics.predicate_types_ok schema) t.Partial.where_preds
  && Option.fold ~none:true
       ~some:(Semantics.predicate_types_ok schema)
       t.Partial.having_pred
  && (* Ungrouped aggregation is decidable as soon as SELECT is complete. *)
  (not (select_done t)
  || t.Partial.kw.Duoguide.Model.kw_group
  || not
       (List.exists (fun p -> Option.is_some p.p_agg) decided_projs
       && List.exists (fun p -> p.p_agg = None) decided_projs))
  && (* Predicate consistency and constant-output once WHERE is final. *)
  ((not (where_done t))
  || t.Partial.where_preds = []
  ||
  let cond = { c_preds = t.Partial.where_preds; c_conn = t.Partial.conn } in
  Semantics.condition_consistent cond
  && Semantics.no_constant_projection decided_projs (Some cond))
  && (* Grouping rules once the GROUP BY column is decided. *)
  ((not (group_decided t))
  || (not t.Partial.kw.Duoguide.Model.kw_group)
  ||
  match t.Partial.group_col with
  | None -> true
  | Some g ->
      (not (Duodb.Schema.is_pk_column schema ~table:g.cr_table g.cr_col))
      && List.for_all
           (fun p ->
             match p.p_agg, p.p_col with
             | None, Some c -> equal_col_ref c g
             | _ -> true)
           decided_projs)

(* --- stage 3: projection types vs annotations (Example 3.4) --- *)

let proj_output_type schema (s : Partial.proj_slot) =
  match s.Partial.pj_target, s.Partial.pj_agg with
  | Duoguide.Model.Target_count_star, _ -> Some Datatype.Number
  | Duoguide.Model.Target_column _, Some (Some (Count | Sum | Avg)) ->
      Some Datatype.Number
  | Duoguide.Model.Target_column c, Some (Some (Min | Max) | None) ->
      Option.map
        (fun col -> col.Duodb.Schema.col_type)
        (Duodb.Schema.find_column schema ~table:c.Duodb.Schema.col_table
           c.Duodb.Schema.col_name)
  | Duoguide.Model.Target_column _, None -> None (* aggregate undecided *)

let verify_column_types env (t : Partial.t) =
  match Option.bind env.e_tsq (fun tsq -> tsq.Tsq.types) with
  | None -> true
  | Some tys ->
      let n_ann = List.length tys in
      (t.Partial.nproj = 0 || t.Partial.nproj = n_ann)
      && List.length t.Partial.projs <= n_ann
      && List.for_all2
           (fun slot ty ->
             match proj_output_type (Duodb.Database.schema env.e_db) slot with
             | None -> true
             | Some ty' -> Datatype.equal ty ty')
           t.Partial.projs
           (List.filteri (fun i _ -> i < List.length t.Partial.projs) tys)

(* --- stage 4: column-wise probes (Example 3.5) --- *)

let cell_key = function
  | Tsq.Any -> "_"
  | Tsq.Exact v -> "=" ^ Value.to_sql v
  | Tsq.Range (lo, hi) -> "[" ^ Value.to_sql lo ^ "," ^ Value.to_sql hi ^ "]"

(* Existence probe: SELECT 1 FROM table WHERE col <cell> LIMIT 1.  Exact
   text cells on text columns are answered from the inverted index when it
   is definitive; everything else falls back to a direct column scan. *)
let column_probe env (c : Duodb.Schema.column) cell =
  let key = (c.Duodb.Schema.col_table, c.Duodb.Schema.col_name, cell_key cell) in
  match Hashtbl.find_opt env.e_cache key with
  | Some r -> r
  | None ->
      env.e_stats.column_probes <- env.e_stats.column_probes + 1;
      let indexed =
        match cell with
        | Tsq.Exact (Value.Text s)
          when Datatype.equal c.Duodb.Schema.col_type Datatype.Text ->
            Duodb.Index.contains_exact (Lazy.force env.e_index)
              ~table:c.Duodb.Schema.col_table ~column:c.Duodb.Schema.col_name s
        | Tsq.Exact (Value.Null | Value.Int _ | Value.Float _ | Value.Text _)
        | Tsq.Any | Tsq.Range _ ->
            None
      in
      let r =
        match indexed with
        | Some r ->
            env.e_stats.index_probes <- env.e_stats.index_probes + 1;
            r
        | None -> (
            (* Vectorized column probe: dictionary lookup / zone-skipped
               columnar pass instead of materializing every row. *)
            let tbl = Duodb.Database.table_exn env.e_db c.Duodb.Schema.col_table in
            let idx = Duodb.Table.column_index tbl c.Duodb.Schema.col_name in
            match cell with
            | Tsq.Any -> Duodb.Table.row_count tbl > 0
            | Tsq.Exact v ->
                List.exists
                  (fun ((_ : Value.t), r) -> r)
                  (Duoengine.Kernel.probe_exists tbl ~col:idx [ v ])
            | Tsq.Range (lo, hi) ->
                Duoengine.Kernel.probe_range tbl ~col:idx lo hi)
      in
      Hashtbl.replace env.e_cache key r;
      r

let cell_interval = function
  | Tsq.Any -> None
  | Tsq.Exact v -> Some (v, v)
  | Tsq.Range (lo, hi) -> Some (lo, hi)

let ranges_intersect (a_lo, a_hi) (b_lo, b_hi) =
  Value.compare a_lo b_hi <= 0 && Value.compare b_lo a_hi <= 0

let verify_by_column env (t : Partial.t) =
  let tuples =
    match env.e_tsq with None -> [] | Some tsq -> tsq.Tsq.tuples
  in
  let support =
    match env.e_tsq with None -> 0 | Some tsq -> Tsq.required_support tsq
  in
  tuples = []
  || support
     <= List.length
          (List.filter
             (fun tuple ->
         let cells = Array.of_list tuple in
         List.for_all
           (fun (i, slot) ->
             if i >= Array.length cells then true
             else
               let cell = cells.(i) in
               match cell, slot.Partial.pj_target, slot.Partial.pj_agg with
               | Tsq.Any, _, _ -> true
               | (Tsq.Exact _ | Tsq.Range _), Duoguide.Model.Target_count_star, _
                 ->
                   true
               | (Tsq.Exact _ | Tsq.Range _), Duoguide.Model.Target_column _, None
                 ->
                   true
               | ( (Tsq.Exact _ | Tsq.Range _),
                   Duoguide.Model.Target_column _,
                   Some (Some (Count | Sum)) ) ->
                   true (* no conclusion for partial queries *)
               | ( (Tsq.Exact _ | Tsq.Range _),
                   Duoguide.Model.Target_column c,
                   Some (Some Avg) ) -> (
                   (* AVG lies within the column's min-max range. *)
                   let rkey = (c.Duodb.Schema.col_table, c.Duodb.Schema.col_name) in
                   let range =
                     match Hashtbl.find_opt env.e_range_cache rkey with
                     | Some r -> r
                     | None ->
                         env.e_stats.column_probes <- env.e_stats.column_probes + 1;
                         let tbl =
                           Duodb.Database.table_exn env.e_db c.Duodb.Schema.col_table
                         in
                         let r = Duodb.Table.column_range tbl c.Duodb.Schema.col_name in
                         Hashtbl.replace env.e_range_cache rkey r;
                         r
                   in
                   match range, cell_interval cell with
                   | Some r1, Some r2 -> ranges_intersect r1 r2
                   | None, _ | _, None -> false)
               | ( (Tsq.Exact _ | Tsq.Range _),
                   Duoguide.Model.Target_column c,
                   Some (Some (Min | Max) | None) ) ->
                   column_probe env c cell)
           (List.mapi (fun i s -> (i, s)) t.Partial.projs))
             tuples)

(* --- stage 5: row-wise probes (Example 3.6) --- *)

let slot_has_agg (s : Partial.proj_slot) =
  match s.Partial.pj_target, s.Partial.pj_agg with
  | Duoguide.Model.Target_count_star, _ -> true
  | Duoguide.Model.Target_column _, Some (Some _) -> true
  | Duoguide.Model.Target_column _, (Some None | None) -> false

let can_check_rows (t : Partial.t) =
  let has_agg = List.exists slot_has_agg t.Partial.projs in
  (not has_agg) || (where_done t && group_decided t)

(* Distinct matching restricted to the decided projection positions, with
   the noisy-example support threshold — the shared matcher from [Tsq], so
   partial-query and complete-query semantics cannot drift. *)
let distinct_match_on = Tsq.distinct_match_on

(* A row probe the stage has decided to run: the probe query, the
   (output position, example cell index) pairs to match on, and the
   memoization key.  Splitting planning from execution lets
   [verify_batch] collect the plans of a whole sibling set and run the
   uncached ones through one {!Duoengine.Executor.run_batch} call. *)
type row_plan = {
  rp_probe : query;
  rp_positions : (int * int) list;
  rp_key : string;
}

let row_probe_plan env (t : Partial.t) : row_plan option =
  let tuples =
    match env.e_tsq with None -> [] | Some tsq -> tsq.Tsq.tuples
  in
  if tuples = [] then None
  else if Partial.is_complete t then None
    (* complete states go through the full Definition 2.4 check instead *)
  else if not (can_check_rows t) then None
  else
    match t.Partial.from with
    | None -> None
    | Some from ->
        (* Keep only fully decided slots; record (output position, cell
           index) pairs so skipped slots stay unconstrained. *)
        let decided =
          List.filteri (fun _ s -> Option.is_some (decided_slot_proj s)) t.Partial.projs
        in
        if decided = [] then None
        else begin
          let indexed =
            List.mapi (fun i s -> (i, s)) t.Partial.projs
            |> List.filter (fun (_, s) -> Option.is_some (decided_slot_proj s))
          in
          let select = List.filter_map (fun (_, s) -> decided_slot_proj s) indexed in
          let positions = List.mapi (fun out (cell_idx, _) -> (out, cell_idx)) indexed in
          let where =
            if where_done t && t.Partial.where_preds <> [] then
              Some { c_preds = t.Partial.where_preds; c_conn = t.Partial.conn }
            else None
          in
          let group_by =
            if group_decided t then Option.to_list t.Partial.group_col else []
          in
          (* A state still deciding its join path may reference tables the
             current clause does not cover yet; row checking waits. *)
          let probe_tables =
            List.sort_uniq String.compare
              (List.filter_map
                 (fun p -> Option.map (fun c -> c.cr_table) p.p_col)
                 select
              @ (match where with
                | Some w ->
                    List.filter_map
                      (fun p -> Option.map (fun c -> c.cr_table) p.pr_col)
                      w.c_preds
                | None -> [])
              @ List.map (fun c -> c.cr_table) group_by)
          in
          (* With a single decided plain slot and no WHERE/GROUP decided,
             the row probe adds nothing over the column probe. *)
          let redundant =
            List.length positions = 1 && where = None && group_by = []
            && not (List.exists slot_has_agg t.Partial.projs)
          in
          if
            redundant
            || not (List.for_all (fun tb -> List.mem tb from.f_tables) probe_tables)
          then None
          else begin
            let probe =
              {
                q_distinct = false;
                q_select = select;
                q_from = from;
                q_where = where;
                q_group_by = group_by;
                q_having = None;
                q_order_by = [];
                q_limit = None;
              }
            in
            let key =
              Duosql.Pretty.query probe ^ "|"
              ^ String.concat ","
                  (List.map (fun (o, c) -> Printf.sprintf "%d:%d" o c) positions)
            in
            Some { rp_probe = probe; rp_positions = positions; rp_key = key }
          end
        end

(* Match a probe's result rows against the example tuples at the plan's
   decided positions. *)
let row_probe_matches env plan (res : Duoengine.Executor.resultset) =
  let support =
    match env.e_tsq with None -> 0 | Some tsq -> Tsq.required_support tsq
  in
  let tuples =
    match env.e_tsq with None -> [] | Some tsq -> tsq.Tsq.tuples
  in
  distinct_match_on ~support plan.rp_positions tuples
    res.Duoengine.Executor.res_rows

let run_row_probe env plan =
  match Hashtbl.find_opt env.e_row_cache plan.rp_key with
  | Some r -> r
  | None ->
      env.e_stats.row_probes <- env.e_stats.row_probes + 1;
      let r =
        match
          Duoengine.Executor.run ~cache:env.e_relcache
            ~max_rows:verification_max_rows env.e_db plan.rp_probe
        with
        | Error _ -> false
        | Ok res -> row_probe_matches env plan res
      in
      sync_relcache env;
      Hashtbl.replace env.e_row_cache plan.rp_key r;
      r

let verify_by_row env (t : Partial.t) =
  match row_probe_plan env t with
  | None -> true
  | Some plan -> run_row_probe env plan

(* --- complete-query stage --- *)

let verify_literals env q =
  let used = literals q in
  List.for_all (fun l -> List.exists (Value.equal l) used) env.e_literals

let verify_complete env q =
  verify_literals env q
  && ((not env.e_semantics)
     || Result.is_ok (Semantics.check_query (Duodb.Database.schema env.e_db) q))
  && (* Stage-0 errors are enforced here too, so pruning a partial query
        on a static error stays monotone w.r.t. complete verification. *)
  verify_static_query env q
  &&
  match env.e_tsq with
  | None -> true
  | Some tsq ->
      env.e_stats.full_executions <- env.e_stats.full_executions + 1;
      let r =
        Tsq.satisfies ~cache:env.e_relcache ~max_rows:verification_max_rows tsq
          env.e_db q
      in
      sync_relcache env;
      r

let bump_pruned s = function
  | S_static -> s.pruned_by_static <- s.pruned_by_static + 1
  | S_clauses -> s.pruned_by_clauses <- s.pruned_by_clauses + 1
  | S_cardinality -> s.pruned_by_cardinality <- s.pruned_by_cardinality + 1
  | S_semantics -> s.pruned_by_semantics <- s.pruned_by_semantics + 1
  | S_types -> s.pruned_by_types <- s.pruned_by_types + 1
  | S_column -> s.pruned_by_column <- s.pruned_by_column + 1
  | S_row -> s.pruned_by_row <- s.pruned_by_row + 1
  | S_complete -> s.pruned_by_complete <- s.pruned_by_complete + 1

let verify env (t : Partial.t) =
  Atomic.incr verify_calls;
  let s = env.e_stats in
  let stage st check =
    let i = stage_index st in
    (* stage_seconds is a profiling accumulator, not a budget: it uses
       the cheap monotonic clock so sub-microsecond stages measure the
       stage and not the clock (see {!Clock}). *)
    let t0 = Clock.mono () in
    let ok = check env t in
    s.stage_seconds.(i) <- s.stage_seconds.(i) +. (Clock.mono () -. t0);
    ok
    || begin
         bump_pruned s st;
         false
       end
  in
  let ok =
    stage S_static verify_static
    && stage S_clauses verify_clauses
    && stage S_cardinality verify_cardinality
    && stage S_semantics verify_semantics
    && stage S_types verify_column_types
    && stage S_column verify_by_column
    && stage S_row verify_by_row
    &&
    match Partial.to_query t with
    | Some q when Partial.is_complete t ->
        let i = stage_index S_complete in
        let t0 = Clock.mono () in
        let ok = verify_complete env q in
        s.stage_seconds.(i) <- s.stage_seconds.(i) +. (Clock.mono () -. t0);
        ok
        || begin
             bump_pruned s S_complete;
             false
           end
    | Some _ | None -> true
  in
  if not ok then s.pruned <- s.pruned + 1;
  ok

(* --- incremental refinement (Enumerate.rebase) --- *)

(* Point the environment at a tightened sketch.  The column-probe and
   range caches memoize pure facts about the database ("does this cell
   occur in this column") that no sketch edit can change, so they carry
   over; the row-probe cache memoizes *match verdicts* against the
   sketch's tuples and support threshold, so it must start empty. *)
let retarget env ~tsq =
  { env with e_tsq = Some tsq; e_row_cache = Hashtbl.create 256 }

(* Re-verification of a state that already survived the full cascade
   under the pre-refinement sketch.  Under a [Tsq.Tightening] edit the
   carried verdicts stay valid without re-running:
   - [S_static] and [S_semantics] never read the sketch;
   - [S_types] reads only [tsq.types], which a tightening keeps equal.
   What can flip is anything reading [sorted], [tuples], [negatives] or
   the support threshold: [S_clauses], [S_cardinality] (the required
   tuple count only grows under a tightening), [S_column], [S_row], and
   the full Definition 2.4 check on complete states. *)
let reverify env (t : Partial.t) =
  Atomic.incr verify_calls;
  let s = env.e_stats in
  let stage st check =
    let i = stage_index st in
    let t0 = Clock.mono () in
    let ok = check env t in
    s.stage_seconds.(i) <- s.stage_seconds.(i) +. (Clock.mono () -. t0);
    ok
    || begin
         bump_pruned s st;
         false
       end
  in
  let ok =
    stage S_clauses verify_clauses
    && stage S_cardinality verify_cardinality
    && stage S_column verify_by_column
    && stage S_row verify_by_row
    &&
    match Partial.to_query t with
    | Some q when Partial.is_complete t ->
        let i = stage_index S_complete in
        let t0 = Clock.mono () in
        let ok = verify_complete env q in
        s.stage_seconds.(i) <- s.stage_seconds.(i) +. (Clock.mono () -. t0);
        ok
        || begin
             bump_pruned s S_complete;
             false
           end
    | Some _ | None -> true
  in
  if not ok then s.pruned <- s.pruned + 1;
  ok

(* Re-check an already-emitted candidate (a complete query) under the
   retargeted sketch; counted and timed like a complete-stage prune. *)
let reverify_query env q =
  Atomic.incr verify_calls;
  let s = env.e_stats in
  let i = stage_index S_complete in
  let t0 = Clock.mono () in
  let ok = verify_complete env q in
  s.stage_seconds.(i) <- s.stage_seconds.(i) +. (Clock.mono () -. t0);
  if not ok then begin
    bump_pruned s S_complete;
    s.pruned <- s.pruned + 1
  end;
  ok

(* Batched cascade over a sibling set (the children of one expansion).
   Verdicts, prune counters and probe counts are exactly what running
   {!verify} on each child in order would produce — the batching only
   changes *how* the uncached row probes execute: their plans are
   collected across the surviving children, deduplicated against the
   row-probe cache, and executed through one
   {!Duoengine.Executor.run_batch} call, so candidates scanning the same
   base table share a single scan. *)
let verify_batch env (children : Partial.t list) =
  let s = env.e_stats in
  let arr = Array.of_list children in
  let n = Array.length arr in
  let alive = Array.make n true in
  let fail i st =
    bump_pruned s st;
    s.pruned <- s.pruned + 1;
    alive.(i) <- false
  in
  let timed_stage st check t =
    let k = stage_index st in
    let t0 = Clock.mono () in
    let ok = check env t in
    s.stage_seconds.(k) <- s.stage_seconds.(k) +. (Clock.mono () -. t0);
    ok
  in
  (* Stages 0-4 are pure or probe-cached per candidate; run them with the
     usual early exit. *)
  let early =
    [ (S_static, verify_static);
      (S_clauses, verify_clauses);
      (S_cardinality, verify_cardinality);
      (S_semantics, verify_semantics);
      (S_types, verify_column_types);
      (S_column, verify_by_column) ]
  in
  Array.iteri
    (fun i t ->
      Atomic.incr verify_calls;
      let rec go = function
        | [] -> ()
        | (st, check) :: rest ->
            if timed_stage st check t then go rest else fail i st
      in
      go early)
    arr;
  (* Row stage: plan every survivor's probe, then run the uncached plans
     (deduplicated by key) as one batch. *)
  let t0 = Clock.mono () in
  let plans = Array.make n None in
  Array.iteri
    (fun i t -> if alive.(i) then plans.(i) <- row_probe_plan env t)
    arr;
  let pending : (string, row_plan) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun p ->
      match p with
      | Some p
        when (not (Hashtbl.mem env.e_row_cache p.rp_key))
             && not (Hashtbl.mem pending p.rp_key) ->
          Hashtbl.add pending p.rp_key p
      | Some _ | None -> ())
    plans;
  let todo =
    Array.of_list (Hashtbl.fold (fun _ p acc -> p :: acc) pending [])
  in
  if Array.length todo > 0 then begin
    s.batch_rounds <- s.batch_rounds + 1;
    let results, report =
      Duoengine.Executor.run_batch ~cache:env.e_relcache
        ~max_rows:verification_max_rows env.e_db
        (Array.map (fun p -> p.rp_probe) todo)
    in
    s.batched_probes <- s.batched_probes + report.Duoengine.Executor.br_shared;
    Array.iteri
      (fun k p ->
        s.row_probes <- s.row_probes + 1;
        let r =
          match results.(k) with
          | Error _ -> false
          | Ok res -> row_probe_matches env p res
        in
        Hashtbl.replace env.e_row_cache p.rp_key r)
      todo;
    sync_relcache env
  end;
  Array.iteri
    (fun i _ ->
      if alive.(i) then
        let ok =
          match plans.(i) with
          | None -> true
          | Some p -> run_row_probe env p (* cache hit after the batch *)
        in
        if not ok then fail i S_row)
    arr;
  let k = stage_index S_row in
  s.stage_seconds.(k) <- s.stage_seconds.(k) +. (Clock.mono () -. t0);
  (* Complete-query stage, per candidate as before. *)
  Array.iteri
    (fun i t ->
      if alive.(i) then
        match Partial.to_query t with
        | Some q when Partial.is_complete t ->
            let kc = stage_index S_complete in
            let tc = Clock.mono () in
            let ok = verify_complete env q in
            s.stage_seconds.(kc) <- s.stage_seconds.(kc) +. (Clock.mono () -. tc);
            if not ok then fail i S_complete
        | Some _ | None -> ())
    arr;
  Array.to_list (Array.mapi (fun i t -> (t, alive.(i))) arr)
