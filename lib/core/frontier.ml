type entry = Partial.t * int

type t = {
  mutable heap : entry array;
  mutable len : int;
  mutable seq : int;
  mutable dropped : int;
  cap : int;
  dummy : entry;
}

let create ?(cap = max_int) () =
  let dummy = (Partial.root, -1) in
  { heap = Array.make 64 dummy; len = 0; seq = 0; dropped = 0; cap; dummy }

let dropped t = t.dropped

let size t = t.len
let is_empty t = t.len = 0
let pushed t = t.seq

(* entry [a] has higher priority than [b] when compare_priority a b < 0 *)
let higher a b = Partial.compare_priority a b < 0

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if higher t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.len && higher t.heap.(l) t.heap.(!best) then best := l;
  if r < t.len && higher t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    swap t i !best;
    sift_down t !best
  end

(* Compact to the best cap/2 entries when the cap is exceeded. *)
let compact t =
  let live = Array.sub t.heap 0 t.len in
  Array.sort Partial.compare_priority live;
  let keep = max 1 (t.cap / 2) in
  let keep = min keep t.len in
  t.dropped <- t.dropped + (t.len - keep);
  Array.fill t.heap 0 t.len t.dummy;
  Array.blit live 0 t.heap 0 keep;
  t.len <- keep

(* Insert a pre-stamped entry: shared by [push] (fresh sequence number)
   and [restore] (original sequence number, no counter bump). *)
let push_entry t entry =
  if t.len >= t.cap then compact t;
  if t.len = Array.length t.heap then begin
    let heap' = Array.make (2 * t.len) t.dummy in
    Array.blit t.heap 0 heap' 0 t.len;
    t.heap <- heap'
  end;
  t.heap.(t.len) <- entry;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let push t pq =
  push_entry t (pq, t.seq);
  t.seq <- t.seq + 1

let pop_entry t =
  if t.len = 0 then None
  else begin
    let entry = t.heap.(0) in
    t.len <- t.len - 1;
    t.heap.(0) <- t.heap.(t.len);
    t.heap.(t.len) <- t.dummy;
    if t.len > 0 then sift_down t 0;
    Some entry
  end

let pop t = Option.map fst (pop_entry t)

let pop_entries t k =
  let rec go k acc =
    if k <= 0 then List.rev acc
    else
      match pop_entry t with
      | None -> List.rev acc
      | Some e -> go (k - 1) (e :: acc)
  in
  go k []

let pop_k t k = List.map fst (pop_entries t k)

let restore t entries = List.iter (push_entry t) entries

(* Arena variants: same semantics as [pop_entries]/[restore], but the
   batch lives in a caller-owned buffer so a pop-and-restore round
   allocates nothing (the entry tuples themselves were allocated at push
   time and are merely moved). *)
let pop_entries_into t buf k =
  let k = min k (Array.length buf) in
  let n = ref 0 in
  let continue_ = ref true in
  while !continue_ && !n < k do
    match pop_entry t with
    | None -> continue_ := false
    | Some e ->
        buf.(!n) <- e;
        incr n
  done;
  !n

let restore_array t buf n =
  for i = 0 to n - 1 do
    push_entry t buf.(i);
    (* drop the arena's alias so it does not pin the state between rounds *)
    buf.(i) <- t.dummy
  done
