(** Best-first frontier for Algorithm 1: a binary min-heap ordered by
    {!Partial.compare_priority} (highest confidence first, then shorter join
    paths, then insertion order for determinism). *)

type t

(** [create ?cap ()] — when more than [cap] states are queued, the frontier
    is compacted to its best [cap/2] entries (bounded best-first search: a
    memory guard, the only deviation from complete enumeration, and only
    under extreme fan-out). Default: unbounded. *)
val create : ?cap:int -> unit -> t

(** States discarded by compaction so far. *)
val dropped : t -> int

(** Number of states currently queued. *)
val size : t -> int

val is_empty : t -> bool

(** [push t pq] enqueues a state, stamping it with an insertion sequence
    number. *)
val push : t -> Partial.t -> unit

(** Remove and return the highest-priority state. *)
val pop : t -> Partial.t option

(** [pop_k t k] removes and returns up to [k] states in priority order —
    exactly the states [k] successive {!pop} calls would return.  Fewer
    than [k] states come back only when the frontier runs dry. *)
val pop_k : t -> int -> Partial.t list

(** Like {!pop_k} but keeps each state's insertion sequence number, so a
    batch that was only {e inspected} can be put back verbatim with
    {!restore}.  Used by the Duopar speculative rounds: the enumerator
    batch-pops the top-K, processes them on worker domains, and restores
    the ones it has not yet committed. *)
val pop_entries : t -> int -> (Partial.t * int) list

(** Re-insert entries from {!pop_entries} with their original sequence
    numbers.  Does not advance the {!pushed} counter, so a
    pop-and-restore round leaves priority order, tie-breaking and
    accounting exactly as if it never happened.  (Restoring into a
    frontier past its cap still triggers compaction, like any insert.) *)
val restore : t -> (Partial.t * int) list -> unit

(** Total states ever pushed (the sequence counter). *)
val pushed : t -> int

(** [pop_entries_into t buf k] is {!pop_entries} into a caller-owned
    buffer: pops up to [min k (Array.length buf)] entries into
    [buf.(0 .. n-1)] (priority order) and returns [n].  Allocates
    nothing — this is the Duopar v2 task-arena entry point. *)
val pop_entries_into : t -> (Partial.t * int) array -> int -> int

(** [restore_array t buf n] is {!restore} for [buf.(0 .. n-1)], clearing
    each slot after re-insertion so the arena does not retain states
    between rounds. *)
val restore_array : t -> (Partial.t * int) array -> int -> unit
