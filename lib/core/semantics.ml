open Duosql.Ast
module Value = Duodb.Value
module Datatype = Duodb.Datatype

type violation =
  | Inconsistent_predicates
  | Constant_output_column
  | Ungrouped_aggregation
  | Singleton_groups
  | Unnecessary_group_by
  | Aggregate_type_error
  | Type_comparison_error

let violation_to_string = function
  | Inconsistent_predicates -> "inconsistent predicates"
  | Constant_output_column -> "constant output column"
  | Ungrouped_aggregation -> "ungrouped aggregation"
  | Singleton_groups -> "GROUP BY with singleton groups"
  | Unnecessary_group_by -> "unnecessary GROUP BY"
  | Aggregate_type_error -> "aggregate type usage"
  | Type_comparison_error -> "faulty type comparison"

let column_type schema c =
  match Duodb.Schema.find_column schema ~table:c.cr_table c.cr_col with
  | Some col -> Some col.Duodb.Schema.col_type
  | None -> None

let agg_type_ok schema agg col =
  match agg, col with
  | None, _ -> true
  | Some Count, _ -> true
  | Some (Sum | Avg | Min | Max), None -> false
  | Some (Sum | Avg | Min | Max), Some c -> (
      match column_type schema c with
      | Some Datatype.Number -> true
      | Some Datatype.Text | None -> false)

let projection_types_ok schema p = agg_type_ok schema p.p_agg p.p_col

let predicate_types_ok schema p =
  agg_type_ok schema p.pr_agg p.pr_col
  &&
  (* The compared type: the aggregate's output type, or the column type. *)
  let cmp_type =
    match p.pr_agg with
    | Some (Count | Sum | Avg) -> Some Datatype.Number
    | Some (Min | Max) | None -> Option.bind p.pr_col (column_type schema)
  in
  match cmp_type with
  | None -> false
  | Some ty -> (
      match p.pr_rhs with
      | Cmp ((Lt | Le | Gt | Ge), v) ->
          Datatype.equal ty Datatype.Number && Value.is_numeric v
      | Between (lo, hi) ->
          Datatype.equal ty Datatype.Number && Value.is_numeric lo && Value.is_numeric hi
      | Cmp ((Like | Not_like), v) -> (
          Datatype.equal ty Datatype.Text
          &&
          match v with
          | Value.Text _ -> true
          | Value.Null | Value.Int _ | Value.Float _ -> false)
      | Cmp ((Eq | Neq), v) -> Datatype.value_matches ty v)

(* Interval view of a predicate on a totally ordered domain, for
   satisfiability of AND-conjunctions on one column.  Neq/Not_like are
   treated as always satisfiable against the rest. *)
type interval = {
  lo : Value.t option;
  lo_strict : bool;
  hi : Value.t option;
  hi_strict : bool;
}

let full = { lo = None; lo_strict = false; hi = None; hi_strict = false }

let interval_of_pred p =
  match p.pr_rhs with
  | Cmp (Eq, v) -> Some { lo = Some v; lo_strict = false; hi = Some v; hi_strict = false }
  | Cmp (Lt, v) -> Some { full with hi = Some v; hi_strict = true }
  | Cmp (Le, v) -> Some { full with hi = Some v }
  | Cmp (Gt, v) -> Some { full with lo = Some v; lo_strict = true }
  | Cmp (Ge, v) -> Some { full with lo = Some v }
  | Between (lo, hi) -> Some { lo = Some lo; lo_strict = false; hi = Some hi; hi_strict = false }
  | Cmp ((Neq | Like | Not_like), _) -> None

let interval_nonempty a b =
  let lo, lo_strict =
    match a.lo, b.lo with
    | None, None -> (None, false)
    | Some v, None -> (Some v, a.lo_strict)
    | None, Some v -> (Some v, b.lo_strict)
    | Some va, Some vb ->
        let c = Value.compare va vb in
        if c > 0 then (Some va, a.lo_strict)
        else if c < 0 then (Some vb, b.lo_strict)
        else (Some va, a.lo_strict || b.lo_strict)
  in
  let hi, hi_strict =
    match a.hi, b.hi with
    | None, None -> (None, false)
    | Some v, None -> (Some v, a.hi_strict)
    | None, Some v -> (Some v, b.hi_strict)
    | Some va, Some vb ->
        let c = Value.compare va vb in
        if c < 0 then (Some va, a.hi_strict)
        else if c > 0 then (Some vb, b.hi_strict)
        else (Some va, a.hi_strict || b.hi_strict)
  in
  match lo, hi with
  | Some l, Some h ->
      let c = Value.compare l h in
      c < 0 || (c = 0 && (not lo_strict) && not hi_strict)
  | _ -> true

let same_target p q =
  equal_agg p.pr_agg q.pr_agg
  &&
  match p.pr_col, q.pr_col with
  | None, None -> true
  | Some a, Some b -> equal_col_ref a b
  | None, Some _ | Some _, None -> false

let condition_consistent cond =
  (* Exact duplicates are redundant under either connective. *)
  let rec no_dups = function
    | [] -> true
    | p :: rest -> (not (List.exists (equal_pred p) rest)) && no_dups rest
  in
  no_dups cond.c_preds
  && (cond.c_conn = Or
     ||
     (* AND: per-target interval intersections must be non-empty, and two
        different equalities on one target contradict. *)
     let rec pairs_ok = function
       | [] -> true
       | p :: rest ->
           List.for_all
             (fun q ->
               if not (same_target p q) then true
               else
                 match interval_of_pred p, interval_of_pred q with
                 | Some a, Some b -> interval_nonempty a b
                 | _ -> true)
             rest
           && pairs_ok rest
     in
     pairs_ok cond.c_preds)

let no_constant_projection projs where =
  match where with
  | None -> true
  | Some cond ->
      cond.c_conn = Or && List.length cond.c_preds > 1
      || List.for_all
           (fun p ->
             match p.p_agg, p.p_col with
             | None, Some c ->
                 not
                   (List.exists
                      (fun pr ->
                        match pr.pr_agg, pr.pr_col, pr.pr_rhs with
                        | None, Some pc, Cmp (Eq, _) -> equal_col_ref c pc
                        | ( None,
                            Some _,
                            ( Cmp ((Neq | Lt | Le | Gt | Ge | Like | Not_like), _)
                            | Between _ ) )
                        | None, None, _
                        | Some _, _, _ ->
                            false)
                      cond.c_preds)
             | _ -> true)
           projs

let grouping_ok schema ~projs ~group_by ~having ~order_by =
  let has_agg_proj = List.exists (fun p -> Option.is_some p.p_agg) projs in
  let has_plain_proj = List.exists (fun p -> p.p_agg = None) projs in
  let agg_elsewhere =
    Option.is_some having
    || List.exists (fun o -> Option.is_some o.o_agg) order_by
  in
  if group_by = [] then
    (* Ungrouped aggregation: cannot mix plain and aggregated projections. *)
    not (has_agg_proj && has_plain_proj)
  else
    (* Unnecessary GROUP BY: grouping without any aggregate anywhere. *)
    (has_agg_proj || agg_elsewhere)
    && (* Singleton groups: grouping by a primary key makes every group a
          single row, so aggregation is pointless. *)
    (not
       (List.exists
          (fun c -> Duodb.Schema.is_pk_column schema ~table:c.cr_table c.cr_col)
          group_by))
    && (* Plain projections must be grouping columns. *)
    List.for_all
      (fun p ->
        match p.p_agg, p.p_col with
        | None, Some c -> List.exists (equal_col_ref c) group_by
        | _ -> true)
      projs

let check_query schema q =
  let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let check cond v = if cond then Ok () else Error v in
  check (List.for_all (projection_types_ok schema) q.q_select) Aggregate_type_error
  >>= fun () ->
  let all_preds =
    Option.fold ~none:[] ~some:(fun c -> c.c_preds) q.q_where
    @ Option.fold ~none:[] ~some:(fun c -> c.c_preds) q.q_having
  in
  check (List.for_all (predicate_types_ok schema) all_preds) Type_comparison_error
  >>= fun () ->
  check
    (Option.fold ~none:true ~some:condition_consistent q.q_where
    && Option.fold ~none:true ~some:condition_consistent q.q_having)
    Inconsistent_predicates
  >>= fun () ->
  check (no_constant_projection q.q_select q.q_where) Constant_output_column
  >>= fun () ->
  let has_agg_proj = List.exists (fun p -> Option.is_some p.p_agg) q.q_select in
  let has_plain_proj = List.exists (fun p -> p.p_agg = None) q.q_select in
  check
    (not (q.q_group_by = [] && has_agg_proj && has_plain_proj))
    Ungrouped_aggregation
  >>= fun () ->
  if q.q_group_by = [] then Ok ()
  else
    let agg_elsewhere =
      Option.is_some q.q_having
      || List.exists (fun o -> Option.is_some o.o_agg) q.q_order_by
    in
    check (has_agg_proj || agg_elsewhere) Unnecessary_group_by >>= fun () ->
    check
      (not
         (List.exists
            (fun c -> Duodb.Schema.is_pk_column schema ~table:c.cr_table c.cr_col)
            q.q_group_by))
      Singleton_groups
    >>= fun () ->
    check
      (List.for_all
         (fun p ->
           match p.p_agg, p.p_col with
           | None, Some c -> List.exists (equal_col_ref c) q.q_group_by
           | _ -> true)
         q.q_select)
      Ungrouped_aggregation

let catalogue =
  [
    ( "Inconsistent predicates",
      "SELECT name FROM actor WHERE name = 'Tom Hanks' AND name = 'Brad Pitt'",
      "SELECT name FROM actor WHERE name = 'Tom Hanks' OR name = 'Brad Pitt'" );
    ( "Constant output column",
      "SELECT name, birth_yr FROM actor WHERE birth_yr = 1950",
      "SELECT name FROM actor WHERE birth_yr = 1950" );
    ( "Ungrouped aggregation",
      "SELECT birth_yr, COUNT(*) FROM actor",
      "SELECT birth_yr, COUNT(*) FROM actor GROUP BY birth_yr" );
    ( "GROUP BY with singleton groups",
      "SELECT aid, MAX(birth_yr) FROM actor GROUP BY aid",
      "SELECT aid, birth_yr FROM actor" );
    ( "Unnecessary GROUP BY",
      "SELECT name FROM actor GROUP BY name",
      "SELECT name FROM actor" );
    ( "Aggregate type usage",
      "SELECT AVG(name) FROM actor",
      "N/A" );
    ( "Faulty type comparison",
      "SELECT name FROM actor WHERE name >= 'Tom Hanks'",
      "N/A" );
    ( "Faulty type comparison (LIKE)",
      "SELECT birth_yr FROM actor WHERE birth_yr LIKE '%1956%'",
      "N/A" );
  ]
