/* Monotonic clock for the per-stage profiling accumulators.

   Sys.time goes through the times() syscall (~250 ns per sample here),
   which is the same order of magnitude as the cheap cascade stages it is
   supposed to measure.  CLOCK_MONOTONIC is served from the vDSO without
   entering the kernel, so a sample costs ~20 ns and the accumulators
   measure the stage instead of the clock. */

#include <time.h>

#include <caml/alloc.h>
#include <caml/mlvalues.h>

CAMLprim double duo_clock_mono(value unit)
{
  struct timespec ts;
  (void) unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (double) ts.tv_sec + (double) ts.tv_nsec * 1e-9;
}

CAMLprim value duo_clock_mono_byte(value unit)
{
  return caml_copy_double(duo_clock_mono(unit));
}
