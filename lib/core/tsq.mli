(** Table sketch queries (Definition 2.3) and TSQ satisfaction
    (Definition 2.4).

    A TSQ [T = (alpha, chi, tau, k)] carries optional column type
    annotations, optional example tuples whose cells are exact values,
    ranges, or empty (match-anything), a sorted flag, and a limit
    ([k = 0] means unlimited). *)

type cell =
  | Any
  | Exact of Duodb.Value.t
  | Range of Duodb.Value.t * Duodb.Value.t  (** inclusive bounds *)

type tuple = cell list

type t = {
  types : Duodb.Datatype.t list option;  (** alpha *)
  tuples : tuple list;  (** chi *)
  sorted : bool;  (** tau *)
  limit : int;  (** k; 0 = no limit *)
  negatives : tuple list;
      (** rows the user marked as wrong: no result row may match one
          (the paper's Section 7 iterative-interaction extension) *)
  min_support : int option;
      (** noisy-example tolerance (Section 7): at least this many of the
          example tuples must be satisfied; [None] = all of them *)
}

(** The empty sketch: no annotations, no tuples, unsorted, unlimited.
    Every in-scope query satisfies it. *)
val empty : t

val make :
  ?types:Duodb.Datatype.t list ->
  ?tuples:tuple list ->
  ?sorted:bool ->
  ?limit:int ->
  ?negatives:tuple list ->
  ?min_support:int ->
  unit ->
  t

(** Number of example tuples a query must satisfy: [min_support] clamped to
    [0, length tuples], defaulting to all of them. *)
val required_support : t -> int

(** [add_positive t tuple] / [add_negative t tuple] — sketch refinement as
    in the Figure 1 interaction loop. *)
val add_positive : t -> tuple -> t

val add_negative : t -> tuple -> t

(** [cell_matches cell v]: [Any] matches everything; [Exact x] matches
    values equal to [x]; [Range (lo, hi)] matches [lo <= v <= hi]
    (numeric comparison across int/float). *)
val cell_matches : cell -> Duodb.Value.t -> bool

(** [tuple_matches tuple row] checks cells positionally; the tuple must have
    exactly the row's width. *)
val tuple_matches : tuple -> Duodb.Value.t array -> bool

(** [distinct_match_atleast support tuples rows]: backtracking bipartite
    matching — at least [support] of the example tuples must each match a
    {e distinct} result row (Definition 2.4, item 2, with the
    noisy-example support threshold). *)
val distinct_match_atleast : int -> tuple list -> Duodb.Value.t array list -> bool

(** [distinct_match_on ~support positions tuples rows]: the same matcher
    restricted to decided projection positions, as used by the row-wise
    cascade stage on partial queries.  Each [(out_idx, cell_idx)] pair
    constrains result column [out_idx] by example cell [cell_idx]; cell
    indices beyond a tuple's width are unconstrained.  Sharing the matcher
    with {!distinct_match_atleast} keeps the support-threshold semantics of
    the partial-query and complete-query checks identical. *)
val distinct_match_on :
  support:int -> (int * int) list -> tuple list -> Duodb.Value.t array list -> bool

(** Order-preserving variant (Definition 2.4, item 3): matched rows must
    appear at strictly increasing result indices, in example order. *)
val ordered_match_atleast : int -> tuple list -> Duodb.Value.t array list -> bool

(** [satisfies t db q] is the function [T(q, D)] of Definition 2.4: executes
    [q] and checks (1) type annotations, (2) a distinct result tuple per
    example tuple (maximum bipartite matching, so overlapping examples are
    handled correctly), (3) order preservation when sorted, and (4) the row
    limit.  Queries that fail to execute do not satisfy. *)
val satisfies :
  ?cache:Duoengine.Executor.relation_cache ->
  ?max_rows:int ->
  t ->
  Duodb.Database.t ->
  Duosql.Ast.query ->
  bool

(** Number of example tuples. *)
val num_tuples : t -> int

(** Width of the sketch: length of [types] or of the first tuple; [None]
    when the sketch constrains neither. *)
val width : t -> int option

(** Classification of a sketch edit for incremental re-synthesis. *)
type refinement =
  | Tightening
      (** [new_] accepts a subset of the queries [old] accepts, {e and}
          derives the same expansion guidance: every cascade verdict is
          monotone (fail under [old] implies fail under [new_]), so a
          running enumeration can be rebased instead of restarted. *)
  | Incomparable
      (** Anything else — the caller must restart from the root. *)

(** [refines ~old ~new_] is [Tightening] when [new_] only narrows [old]:
    same type annotations, limit, and sketch width (header edits change
    the guidance hints, so they always classify [Incomparable]); example
    tuples unchanged with equal-or-higher support, or extended as an
    order-preserving supersequence with full support demanded on both
    sides; negatives a superset; and [sorted] only toggled on. *)
val refines : old:t -> new_:t -> refinement

val pp : Format.formatter -> t -> unit
