module Enumerate = Duocore.Enumerate
module Duoquest = Duocore.Duoquest

type config = {
  max_sessions : int;
  slice_pops : int;
  session_config : Enumerate.config;
}

let default_config =
  {
    max_sessions = 32;
    slice_pops = 64;
    session_config =
      { Enumerate.default_config with
        Enumerate.max_pops = 5_000;
        max_candidates = 10;
        time_budget_s = 10.0 };
  }

type t = {
  config : config;
  dbs : (string * Duoquest.session) list;
  caches : (string * Duoengine.Executor.relation_cache) list;
  pool : Duopar.Pool.t option;
  owns_pool : bool;
  sessions : (int, Session.t) Hashtbl.t;
  mutable next_sid : int;
  mutable rr_last : int;  (** sid stepped most recently (round-robin cursor) *)
  mutable is_draining : bool;
  mutable opened : int;
  mutable rejected : int;
  mutable completed : int;
  mutable cancelled : int;
  mutable refined : int;
  mutable rebased : int;  (** refinements served by the warm rebase path *)
  mutable slices : int;
}

let create ?pool config dbs =
  let pool, owns_pool =
    match pool with
    | Some p -> (Some p, false)
    | None ->
        let domains = Enumerate.effective_domains config.session_config in
        if domains > 1 then (Some (Duopar.Pool.create ~domains), true)
        else (None, false)
  in
  {
    config;
    dbs = List.map (fun (name, db) -> (name, Duoquest.create_session db)) dbs;
    caches =
      List.map (fun (name, _) -> (name, Duoengine.Executor.create_cache ())) dbs;
    pool;
    owns_pool;
    sessions = Hashtbl.create 64;
    next_sid = 1;
    rr_last = 0;
    is_draining = false;
    opened = 0;
    rejected = 0;
    completed = 0;
    cancelled = 0;
    refined = 0;
    rebased = 0;
    slices = 0;
  }

let draining t = t.is_draining

let running_count t =
  Hashtbl.fold
    (fun _ s acc ->
      match Session.status s with
      | Session.Running -> acc + 1
      | Session.Finished | Session.Cancelled -> acc)
    t.sessions 0

let drained t = t.is_draining && running_count t = 0

(* --- scheduling ------------------------------------------------------ *)

(* Next runnable sid after the round-robin cursor: the smallest running
   sid greater than [rr_last], wrapping to the smallest overall. *)
let next_runnable t =
  Hashtbl.fold
    (fun sid s acc ->
      match Session.status s with
      | Session.Finished | Session.Cancelled -> acc
      | Session.Running -> (
          let better cur =
            match cur with None -> true | Some best -> sid < best
          in
          match acc with
          | (after, any) when sid > t.rr_last ->
              ((if better after then Some sid else after), any)
          | (after, any) ->
              (after, if better any then Some sid else any)))
    t.sessions (None, None)
  |> fun (after, any) -> (match after with Some _ -> after | None -> any)

let tick t =
  match next_runnable t with
  | None -> false
  | Some sid ->
      let s = Hashtbl.find t.sessions sid in
      t.rr_last <- sid;
      t.slices <- t.slices + 1;
      Session.step ~max_pops:t.config.slice_pops s;
      (match Session.status s with
      | Session.Finished -> t.completed <- t.completed + 1
      | Session.Running | Session.Cancelled -> ());
      true

(* --- protocol dispatch ----------------------------------------------- *)

let clamp_config t (p : Protocol.open_params) =
  let ceiling = t.config.session_config in
  let clamp_int req ceil = max 1 (min req ceil) in
  let max_pops =
    match p.Protocol.op_max_pops with
    | Some n -> clamp_int n ceiling.Enumerate.max_pops
    | None -> ceiling.Enumerate.max_pops
  in
  let max_candidates =
    match p.Protocol.op_max_candidates with
    | Some n -> clamp_int n ceiling.Enumerate.max_candidates
    | None -> ceiling.Enumerate.max_candidates
  in
  let time_budget_s =
    match p.Protocol.op_time_budget_s with
    | Some b when b > 0.0 -> Float.min b ceiling.Enumerate.time_budget_s
    | Some _ | None -> ceiling.Enumerate.time_budget_s
  in
  { ceiling with Enumerate.max_pops; max_candidates; time_budget_s }

let find_session t sid =
  match Hashtbl.find_opt t.sessions sid with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "unknown session %d" sid)

let session_fields s =
  [
    ("session", Json.Num (float_of_int (Session.sid s)));
    ("status", Json.Str (Session.status_name (Session.status s)));
  ]

let handle_open t (p : Protocol.open_params) =
  if t.is_draining then Error "server is draining"
  else if Hashtbl.length t.sessions >= t.config.max_sessions then (
    t.rejected <- t.rejected + 1;
    Error
      (Printf.sprintf "server full: %d sessions open" (Hashtbl.length t.sessions)))
  else
    match List.assoc_opt p.Protocol.op_db t.dbs with
    | None -> Error (Printf.sprintf "unknown database %S" p.Protocol.op_db)
    | Some duo ->
        let sid = t.next_sid in
        t.next_sid <- sid + 1;
        let config = clamp_config t p in
        let s =
          Session.create ~sid ~db_name:p.Protocol.op_db ~config
            ?relcache:(List.assoc_opt p.Protocol.op_db t.caches)
            ?pool:t.pool ~nlq:p.Protocol.op_nlq ?tsq:p.Protocol.op_tsq
            ?literals:p.Protocol.op_literals duo
        in
        Hashtbl.replace t.sessions sid s;
        t.opened <- t.opened + 1;
        Ok (session_fields s)

let handle_candidates s k =
  let o = Session.outcome s in
  let cands =
    match k with
    | Some k -> List.filteri (fun i _ -> i < k) o.Enumerate.out_candidates
    | None -> o.Enumerate.out_candidates
  in
  session_fields s
  @ [
      ("candidates", Json.List (List.map Protocol.candidate_json cands));
      ("total", Json.Num (float_of_int (List.length o.Enumerate.out_candidates)));
      ("pops", Json.Num (float_of_int o.Enumerate.out_pops));
      ("exhausted", Json.Bool o.Enumerate.out_exhausted);
    ]

(* Duopar visibility for operators: pool shape plus the adaptive
   controller's live state aggregated over the open sessions —
   [round_size] is the widest current round (sessions inherit their
   controller across slices, so this is the steady-state answer to "how
   far ahead is the server speculating"), and [commit_rate] is the
   cumulative hits/tasks ratio (1.0 when nothing was speculated: the
   degenerate sequential path wastes nothing). *)
let duopar_fields t =
  let tasks = ref 0 and hits = ref 0 and round_size = ref 0 in
  Hashtbl.iter
    (fun _ s ->
      let o = Session.outcome s in
      tasks := !tasks + o.Enumerate.out_spec_tasks;
      hits := !hits + o.Enumerate.out_spec_hits;
      round_size := max !round_size o.Enumerate.out_spec_round_size)
    t.sessions;
  let commit_rate =
    if !tasks = 0 then 1.0 else float_of_int !hits /. float_of_int !tasks
  in
  [
    ( "domains_requested",
      Json.Num (float_of_int t.config.session_config.Enumerate.domains) );
    ( "domains",
      Json.Num
        (float_of_int
           (match t.pool with Some p -> Duopar.Pool.domains p | None -> 1)) );
    ("round_size", Json.Num (float_of_int !round_size));
    ("commit_rate", Json.Num commit_rate);
    ("spec_tasks", Json.Num (float_of_int !tasks));
    ("spec_hits", Json.Num (float_of_int !hits));
  ]

let stats_fields t =
  [
    ("sessions", Json.Num (float_of_int (Hashtbl.length t.sessions)));
    ("running", Json.Num (float_of_int (running_count t)));
    ("opened", Json.Num (float_of_int t.opened));
    ("rejected", Json.Num (float_of_int t.rejected));
    ("completed", Json.Num (float_of_int t.completed));
    ("cancelled", Json.Num (float_of_int t.cancelled));
    ("refined", Json.Num (float_of_int t.refined));
    ("rebased", Json.Num (float_of_int t.rebased));
    ("slices", Json.Num (float_of_int t.slices));
    ("draining", Json.Bool t.is_draining);
    ("duopar", Json.Obj (duopar_fields t));
  ]

let handle_request t req =
  match req with
  | Protocol.Open_session p -> (
      match handle_open t p with
      | Ok fields -> Protocol.ok_line fields
      | Error e -> Protocol.error_line e)
  | Protocol.Refine_tsq (sid, tsq) -> (
      match find_session t sid with
      | Error e -> Protocol.error_line e
      | Ok s ->
          let before = Session.rebased s in
          Session.refine s tsq;
          let warm = Session.rebased s > before in
          t.refined <- t.refined + 1;
          if warm then t.rebased <- t.rebased + 1;
          (* A warm rebase can finish on the spot when the carried
             candidates already fill the budget; keep the completion
             books consistent with the tick path. *)
          (match Session.status s with
          | Session.Finished -> t.completed <- t.completed + 1
          | Session.Running | Session.Cancelled -> ());
          Protocol.ok_line
            (session_fields s
            @ [
                ("refinements", Json.Num (float_of_int (Session.refinements s)));
                ("rebased", Json.Bool warm);
              ]))
  | Protocol.Get_candidates (sid, k) -> (
      match find_session t sid with
      | Error e -> Protocol.error_line e
      | Ok s -> Protocol.ok_line (handle_candidates s k))
  | Protocol.Cancel sid -> (
      match find_session t sid with
      | Error e -> Protocol.error_line e
      | Ok s ->
          (match Session.status s with
          | Session.Running -> t.cancelled <- t.cancelled + 1
          | Session.Finished | Session.Cancelled -> ());
          Session.cancel s;
          Protocol.ok_line (session_fields s))
  | Protocol.Close sid -> (
      match find_session t sid with
      | Error e -> Protocol.error_line e
      | Ok s ->
          (match Session.status s with
          | Session.Running -> t.cancelled <- t.cancelled + 1
          | Session.Finished | Session.Cancelled -> ());
          Session.close s;
          Hashtbl.remove t.sessions sid;
          Protocol.ok_line
            [
              ("session", Json.Num (float_of_int sid)); ("closed", Json.Bool true);
            ])
  | Protocol.List_dbs ->
      Protocol.ok_line
        [
          ( "dbs",
            Json.List (List.map (fun (name, _) -> Json.Str name) t.dbs) );
        ]
  | Protocol.Stats -> Protocol.ok_line (stats_fields t)
  | Protocol.Shutdown ->
      t.is_draining <- true;
      Protocol.ok_line [ ("draining", Json.Bool true) ]

let handle_line t line =
  match Protocol.request_of_line line with
  | Error e -> Protocol.error_line e
  | Ok req -> handle_request t req

let destroy t =
  Hashtbl.iter (fun _ s -> Session.close s) t.sessions;
  Hashtbl.reset t.sessions;
  if t.owns_pool then
    match t.pool with
    | Some p -> Duopar.Pool.shutdown p
    | None -> ()

(* --- the event loop --------------------------------------------------- *)

type client = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable outbuf : string;
}

let feed t client data =
  Buffer.add_string client.inbuf data;
  let s = Buffer.contents client.inbuf in
  let rec split from acc =
    match String.index_from_opt s from '\n' with
    | Some nl -> split (nl + 1) (String.sub s from (nl - from) :: acc)
    | None -> (List.rev acc, String.sub s from (String.length s - from))
  in
  let lines, rest = split 0 [] in
  Buffer.clear client.inbuf;
  Buffer.add_string client.inbuf rest;
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" then
        client.outbuf <- client.outbuf ^ handle_line t line ^ "\n")
    lines

let serve t ~listen =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  let clients = ref [] in
  let drop c =
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    clients := List.filter (fun c' -> c'.fd <> c.fd) !clients
  in
  let finished = ref false in
  while not !finished do
    let can_exit =
      drained t && List.for_all (fun c -> c.outbuf = "") !clients
    in
    if can_exit then begin
      List.iter drop !clients;
      (try Unix.close listen with Unix.Unix_error _ -> ());
      finished := true
    end
    else begin
      let read_fds =
        (if t.is_draining then [] else [ listen ])
        @ List.map (fun c -> c.fd) !clients
      in
      let write_fds =
        List.filter_map
          (fun c -> if c.outbuf = "" then None else Some c.fd)
          !clients
      in
      let timeout = if running_count t > 0 then 0.0 else 0.05 in
      let readable, writable, _ =
        try Unix.select read_fds write_fds [] timeout
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if List.mem listen readable then (
        match Unix.accept ~cloexec:true listen with
        | fd, _ ->
            clients :=
              { fd; inbuf = Buffer.create 256; outbuf = "" } :: !clients
        | exception Unix.Unix_error _ -> ());
      List.iter
        (fun c ->
          if List.mem c.fd readable then
            let buf = Bytes.create 4096 in
            match Unix.read c.fd buf 0 4096 with
            | 0 -> drop c
            | n -> feed t c (Bytes.sub_string buf 0 n)
            | exception
                Unix.Unix_error
                  ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
                drop c
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
              ->
                ())
        !clients;
      List.iter
        (fun c ->
          if List.mem c.fd writable && c.outbuf <> "" then
            let data = Bytes.of_string c.outbuf in
            match Unix.write c.fd data 0 (Bytes.length data) with
            | n ->
                c.outbuf <-
                  String.sub c.outbuf n (String.length c.outbuf - n)
            | exception
                Unix.Unix_error
                  ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
                drop c
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
              ->
                ())
        !clients;
      ignore (tick t)
    end
  done
