module Enumerate = Duocore.Enumerate
module Duoquest = Duocore.Duoquest
module Tsq = Duocore.Tsq

type status =
  | Running
  | Finished
  | Cancelled

let status_name = function
  | Running -> "running"
  | Finished -> "finished"
  | Cancelled -> "cancelled"

type t = {
  sid : int;
  db_name : string;
  nlq : string;
  config : Enumerate.config;
  duo : Duoquest.session;
  relcache : Duoengine.Executor.relation_cache option;
  pool : Duopar.Pool.t option;
  literals : Duodb.Value.t list option;
  mutable tsq : Duocore.Tsq.t option;
  mutable state : Enumerate.state option;
  mutable last : Enumerate.outcome option;
      (** snapshot kept after the state is released *)
  mutable status : status;
  mutable slices : int;
  mutable refinements : int;
  mutable rebased : int;
}

let sid s = s.sid
let db_name s = s.db_name
let nlq s = s.nlq
let status s = s.status
let slices s = s.slices
let refinements s = s.refinements
let rebased s = s.rebased

let prepare s =
  Duoquest.prepare ~config:s.config ?tsq:s.tsq ?literals:s.literals
    ?relcache:s.relcache ?pool:s.pool s.duo ~nlq:s.nlq ()

let create ~sid ~db_name ~config ?relcache ?pool ~nlq ?tsq ?literals duo =
  let s =
    {
      sid;
      db_name;
      nlq;
      config;
      duo;
      relcache;
      pool;
      literals;
      tsq;
      state = None;
      last = None;
      status = Running;
      slices = 0;
      refinements = 0;
      rebased = 0;
    }
  in
  s.state <- Some (prepare s);
  s

let release_state s =
  match s.state with
  | None -> ()
  | Some st ->
      s.last <- Some (Enumerate.outcome st);
      Enumerate.release st;
      s.state <- None

let step ~max_pops s =
  match (s.status, s.state) with
  | Running, Some st -> (
      s.slices <- s.slices + 1;
      match Enumerate.step ~max_pops st with
      | Enumerate.Running -> ()
      | Enumerate.Finished -> s.status <- Finished)
  | Running, None | (Finished | Cancelled), (Some _ | None) -> ()

(* A fresh record every call: outcomes carry a mutable [Verify.stats], so
   a shared module-level value would let one caller's mutation corrupt
   every session's empty outcome (regression-tested). *)
let empty_outcome () =
  {
    Enumerate.out_candidates = [];
    out_pops = 0;
    out_pushed = 0;
    out_stats = Duocore.Verify.new_stats ();
    out_elapsed_s = 0.0;
    out_expand_s = 0.0;
    out_verify_s = 0.0;
    out_exhausted = false;
    out_dropped = 0;
    out_domains = 1;
    out_domain_stats = [||];
    out_spec_rounds = 0;
    out_spec_tasks = 0;
    out_spec_hits = 0;
    out_spec_round_size = 0;
    out_spec_ewma = 1.0;
    out_spec_grows = 0;
    out_spec_shrinks = 0;
    out_rebases = 0;
    out_rebase_kept = 0;
    out_rebase_dropped = 0;
  }

let outcome s =
  match s.state with
  | Some st -> Enumerate.outcome st
  | None -> (
      match s.last with Some o -> o | None -> empty_outcome ())

let refine s tsq =
  s.refinements <- s.refinements + 1;
  let warm =
    (* Warm-restart only when the live enumeration state is still around
       (a cancelled session released it) and the edit is a proper
       tightening of the previous sketch. *)
    match (s.state, s.tsq) with
    | Some st, Some old when Tsq.refines ~old ~new_:tsq = Tsq.Tightening ->
        Some st
    | (Some _ | None), (Some _ | None) -> None
  in
  s.tsq <- Some tsq;
  match warm with
  | Some st ->
      s.rebased <- s.rebased + 1;
      Enumerate.rebase st ~tsq;
      s.last <- None;
      s.status <- (if Enumerate.finished st then Finished else Running)
  | None ->
      (* From-root fallback.  The time budget is cumulative across
         refinements: the replacement run starts with the previous run's
         active stepping time already charged, so a client cannot extend
         its wall-clock budget by refining (the pop budget, by contrast,
         is per refinement). *)
      let spent = (outcome s).Enumerate.out_elapsed_s in
      release_state s;
      s.last <- None;
      let st = prepare s in
      Enumerate.charge st spent;
      s.state <- Some st;
      s.status <- Running

let cancel s =
  release_state s;
  match s.status with
  | Running -> s.status <- Cancelled
  | Finished | Cancelled -> ()

let close s =
  release_state s;
  s.last <- None;
  (* A session that ran to completion stays [Finished] in the books;
     only an interrupted run is reported as cancelled. *)
  match s.status with
  | Running -> s.status <- Cancelled
  | Finished | Cancelled -> ()
