(** The Duoserve server: many interactive synthesis sessions multiplexed
    over one process.

    Architecture: a single-threaded event loop owns every session and
    time-slices the [Running] ones round-robin, advancing one
    {!Session.step} of [slice_pops] frontier pops between socket polls.
    Parallelism lives {e inside} a slice — the shared {!Duopar.Pool.t}
    fans each step's speculative expand-and-verify out across worker
    domains — so no two sessions ever mutate state concurrently and
    cross-session interference is impossible by construction.  Resume
    determinism (see {!Duocore.Enumerate.step}) then guarantees each
    session computes exactly what a solo run would.

    Sessions share per-database read-only structure: the inverted column
    index and a relation cache (sound because databases are immutable).

    {!handle_line} is the whole protocol with no sockets attached — the
    golden-transcript tests drive it directly; {!serve} wraps it in a
    Unix [select] loop over a listening socket. *)

type config = {
  max_sessions : int;
      (** admission bound: open sessions (any status) occupy a slot until
          closed *)
  slice_pops : int;  (** frontier pops per scheduler slice *)
  session_config : Duocore.Enumerate.config;
      (** per-session defaults; its budgets are also the ceilings for
          per-request overrides *)
}

(** 32 sessions, 64-pop slices, {!Duocore.Enumerate.default_config} with
    5000 pops / 10 candidates / 10 s per session. *)
val default_config : config

type t

(** [create config dbs] builds a server over named databases (indexes and
    relation caches are built here).  [pool] supplies a caller-owned
    worker pool; without it one is created when the session config wants
    more than one effective domain, and {!destroy} shuts it down. *)
val create : ?pool:Duopar.Pool.t -> config -> (string * Duodb.Database.t) list -> t

(** Process one protocol request line; the response line (no newline). *)
val handle_line : t -> string -> string

(** Advance the next [Running] session by one slice; [false] when there
    is nothing to run. *)
val tick : t -> bool

val draining : t -> bool

(** Sessions currently [Running]. *)
val running_count : t -> int

(** [draining] and every session has wound down — the loop may exit. *)
val drained : t -> bool

(** Close all sessions and shut down an owned pool.  The server must not
    be used afterwards. *)
val destroy : t -> unit

(** Run the event loop on a listening socket until a [shutdown] request
    drains the server: poll clients, answer complete lines, interleave
    {!tick} slices; on drain, flush responses, close every socket
    ([listen] included) and return.  Never accepts while draining. *)
val serve : t -> listen:Unix.file_descr -> unit
