(** The Duoserve line protocol.

    Each request and each response is one JSON object per line.  A
    request carries an ["op"] field naming the operation; responses
    carry ["ok"] plus operation-specific fields, or
    [{"ok":false,"error":...}].

    Operations:
    - [open_session] — admit a dual-specification session: ["db"],
      ["nlq"], optional ["tsq"], ["literals"], and per-session budget
      overrides ["max_pops"] / ["max_candidates"] / ["time_budget_s"]
      (each clamped to the server's ceiling);
    - [refine_tsq] — replace a session's sketch (the Figure 1
      interaction loop) and restart its enumeration under the new TSQ;
    - [get_candidates] — snapshot the session's ranked candidates so
      far, optionally the top ["k"];
    - [cancel] — stop a session's enumeration, keeping its results
      readable;
    - [close] — drop the session and free its slot;
    - [list_dbs], [stats], [shutdown] — server-level operations
      (shutdown starts a graceful drain).

    TSQ wire form: [{"types":["text","number"], "tuples":[[cell,...],...],
    "sorted":bool, "limit":int, "negatives":[...], "min_support":int}]
    where a cell is [null] (match anything), a scalar (exact match), or
    [{"lo":v,"hi":v}] (inclusive range).  Numbers decode to [Int] when
    integral, [Float] otherwise. *)

type open_params = {
  op_db : string;
  op_nlq : string;
  op_tsq : Duocore.Tsq.t option;
  op_literals : Duodb.Value.t list option;
      (** [None]: extract literals from the NLQ (the usual path) *)
  op_max_pops : int option;
  op_max_candidates : int option;
  op_time_budget_s : float option;
}

type request =
  | Open_session of open_params
  | Refine_tsq of int * Duocore.Tsq.t
  | Get_candidates of int * int option
  | Cancel of int
  | Close of int
  | List_dbs
  | Stats
  | Shutdown

(** Decode one request line.  The error string is ready to ship back via
    {!error_line}. *)
val request_of_line : string -> (request, string) result

(** Encode a request as a protocol line (no trailing newline) — the
    client half, used by the load generator and the smoke test. *)
val request_to_line : request -> string

(** [{"ok":true, <fields>}] as a line. *)
val ok_line : (string * Json.t) list -> string

(** [{"ok":false,"error":msg}] as a line. *)
val error_line : string -> string

(** {2 Wire pieces} *)

val value_to_json : Duodb.Value.t -> Json.t
val value_of_json : Json.t -> (Duodb.Value.t, string) result
val tsq_to_json : Duocore.Tsq.t -> Json.t
val tsq_of_json : Json.t -> (Duocore.Tsq.t, string) result

(** [{"rank":i,"sql":s,"confidence":c,"pops":n}] — emission rank is
    1-based on the wire. *)
val candidate_json : Duocore.Enumerate.candidate -> Json.t
