(** A minimal line-oriented JSON codec for the Duoserve wire protocol.

    The container ships no JSON library, and the protocol needs only the
    plain data subset: objects, arrays, strings, numbers, booleans and
    null.  {!to_string} emits each value on one line with object fields
    in the order given (the golden-transcript tests rely on that
    stability); {!parse} accepts any RFC 8259 document, including
    [\uXXXX] escapes (decoded to UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact single-line rendering; integral numbers print without a
    decimal point. *)
val to_string : t -> string

(** Parse a complete document; trailing garbage (other than whitespace)
    is an error.  The error string describes the first failure and its
    byte offset. *)
val parse : string -> (t, string) result

(** {2 Accessors} — all total; [None] on a shape mismatch. *)

(** Field lookup on objects. *)
val member : string -> t -> t option

val get_str : t -> string option
val get_num : t -> float option

(** [get_int] requires the number to be integral. *)
val get_int : t -> int option

val get_bool : t -> bool option
val get_list : t -> t list option
