type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
}

let of_fd fd = { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let connect_unix path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  of_fd fd

let connect_tcp ?(host = "127.0.0.1") port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  of_fd fd

let request c req =
  match
    output_string c.oc (Protocol.request_to_line req);
    output_char c.oc '\n';
    flush c.oc;
    input_line c.ic
  with
  | exception End_of_file -> Error "connection closed by server"
  | exception Sys_error e -> Error ("connection failed: " ^ e)
  | exception Unix.Unix_error (e, _, _) ->
      Error ("connection failed: " ^ Unix.error_message e)
  | line -> (
      match Json.parse line with
      | Error e -> Error ("unparsable response: " ^ e)
      | Ok j -> (
          match Option.bind (Json.member "ok" j) Json.get_bool with
          | Some true -> Ok j
          | Some false | None -> (
              match Option.bind (Json.member "error" j) Json.get_str with
              | Some msg -> Error msg
              | None -> Error ("bad response: " ^ line))))

let request_exn c req =
  match request c req with
  | Ok j -> j
  | Error e ->
      failwith
        (Printf.sprintf "duoserve request %s failed: %s"
           (Protocol.request_to_line req)
           e)

let close c =
  try Unix.close c.fd with Unix.Unix_error _ -> ()
