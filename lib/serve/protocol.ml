module Value = Duodb.Value
module Tsq = Duocore.Tsq

type open_params = {
  op_db : string;
  op_nlq : string;
  op_tsq : Tsq.t option;
  op_literals : Value.t list option;
  op_max_pops : int option;
  op_max_candidates : int option;
  op_time_budget_s : float option;
}

type request =
  | Open_session of open_params
  | Refine_tsq of int * Tsq.t
  | Get_candidates of int * int option
  | Cancel of int
  | Close of int
  | List_dbs
  | Stats
  | Shutdown

(* --- scalar values --------------------------------------------------- *)

let value_to_json = function
  | Value.Null -> Json.Null
  | Value.Int i -> Json.Num (float_of_int i)
  | Value.Float f -> Json.Num f
  | Value.Text s -> Json.Str s

let value_of_json = function
  | Json.Null -> Ok Value.Null
  | Json.Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Ok (Value.Int (int_of_float f))
      else Ok (Value.Float f)
  | Json.Str s -> Ok (Value.Text s)
  | Json.Bool _ | Json.List _ | Json.Obj _ ->
      Error "literal must be null, a number or a string"

(* --- TSQ ------------------------------------------------------------- *)

let cell_to_json = function
  | Tsq.Any -> Json.Null
  | Tsq.Exact v -> value_to_json v
  | Tsq.Range (lo, hi) ->
      Json.Obj [ ("lo", value_to_json lo); ("hi", value_to_json hi) ]

let cell_of_json j =
  match j with
  | Json.Null -> Ok Tsq.Any
  | Json.Obj _ -> (
      match (Json.member "lo" j, Json.member "hi" j) with
      | Some lo, Some hi -> (
          match (value_of_json lo, value_of_json hi) with
          | Ok lo, Ok hi -> Ok (Tsq.Range (lo, hi))
          | Error e, (Ok _ | Error _) | Ok _, Error e ->
              Error ("bad range bound: " ^ e))
      | None, (Some _ | None) | Some _, None ->
          Error "range cell needs both \"lo\" and \"hi\"")
  | Json.Num _ | Json.Str _ -> (
      match value_of_json j with
      | Ok v -> Ok (Tsq.Exact v)
      | Error e -> Error e)
  | Json.Bool _ | Json.List _ ->
      Error "cell must be null, a scalar, or {\"lo\":..,\"hi\":..}"

let rec map_result f = function
  | [] -> Ok []
  | x :: rest -> (
      match f x with
      | Error e -> Error e
      | Ok y -> (
          match map_result f rest with
          | Ok ys -> Ok (y :: ys)
          | Error e -> Error e))

let tuple_of_json j =
  match Json.get_list j with
  | None -> Error "tuple must be an array of cells"
  | Some cells -> map_result cell_of_json cells

let ( let* ) r f = Result.bind r f

let tuples_of_field name j =
  match Json.member name j with
  | None -> Ok []
  | Some l -> (
      match Json.get_list l with
      | None -> Error (Printf.sprintf "%S must be an array of tuples" name)
      | Some ts -> map_result tuple_of_json ts)

let tsq_to_json (t : Tsq.t) =
  let tuples ts = Json.List (List.map (fun tu -> Json.List (List.map cell_to_json tu)) ts) in
  let fields = ref [] in
  let push k v = fields := (k, v) :: !fields in
  (match t.Tsq.min_support with
  | Some m -> push "min_support" (Json.Num (float_of_int m))
  | None -> ());
  if t.Tsq.negatives <> [] then push "negatives" (tuples t.Tsq.negatives);
  if t.Tsq.limit > 0 then push "limit" (Json.Num (float_of_int t.Tsq.limit));
  if t.Tsq.sorted then push "sorted" (Json.Bool true);
  if t.Tsq.tuples <> [] then push "tuples" (tuples t.Tsq.tuples);
  (match t.Tsq.types with
  | Some tys ->
      push "types"
        (Json.List
           (List.map (fun ty -> Json.Str (Duodb.Datatype.to_string ty)) tys))
  | None -> ());
  Json.Obj !fields

let tsq_of_json j =
  let decoded =
    match j with
    | Json.Obj _ ->
        let int_field name =
          match Json.member name j with
          | None -> Ok None
          | Some v -> (
              match Json.get_int v with
              | Some i -> Ok (Some i)
              | None -> Error (Printf.sprintf "%S must be an integer" name))
        in
        let* types =
          match Json.member "types" j with
          | None -> Ok None
          | Some l -> (
              match Json.get_list l with
              | None -> Error "\"types\" must be an array"
              | Some tys ->
                  let parse ty =
                    match Json.get_str ty with
                    | None -> Error "type annotation must be a string"
                    | Some s -> (
                        match Duodb.Datatype.of_string s with
                        | Some t -> Ok t
                        | None ->
                            Error
                              (Printf.sprintf
                                 "unknown type %S (expected \"text\" or \
                                  \"number\")"
                                 s))
                  in
                  Result.map Option.some (map_result parse tys))
        in
        let* tuples = tuples_of_field "tuples" j in
        let* sorted =
          match Json.member "sorted" j with
          | None -> Ok false
          | Some v -> (
              match Json.get_bool v with
              | Some b -> Ok b
              | None -> Error "\"sorted\" must be a boolean")
        in
        let* limit = int_field "limit" in
        let* negatives = tuples_of_field "negatives" j in
        let* min_support = int_field "min_support" in
        Ok
          (Tsq.make ?types ~tuples ~sorted
             ~limit:(Option.value limit ~default:0)
             ~negatives ?min_support ())
    | Json.Null | Json.Bool _ | Json.Num _ | Json.Str _ | Json.List _ ->
        Error "expected an object"
  in
  Result.map_error (fun e -> "bad tsq: " ^ e) decoded

(* --- requests -------------------------------------------------------- *)

let str_field j name =
  match Json.member name j with
  | None -> Error (Printf.sprintf "missing %S" name)
  | Some v -> (
      match Json.get_str v with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "%S must be a string" name))

let sid_field j =
  match Json.member "session" j with
  | None -> Error "missing \"session\""
  | Some v -> (
      match Json.get_int v with
      | Some i -> Ok i
      | None -> Error "\"session\" must be an integer")

let opt_int j name =
  match Json.member name j with
  | None -> Ok None
  | Some v -> (
      match Json.get_int v with
      | Some i -> Ok (Some i)
      | None -> Error (Printf.sprintf "%S must be an integer" name))

let opt_num j name =
  match Json.member name j with
  | None -> Ok None
  | Some v -> (
      match Json.get_num v with
      | Some f -> Ok (Some f)
      | None -> Error (Printf.sprintf "%S must be a number" name))

let open_of_json j =
  let* db = str_field j "db" in
  let* nlq = str_field j "nlq" in
  let* tsq =
    match Json.member "tsq" j with
    | None -> Ok None
    | Some Json.Null -> Ok None
    | Some (Json.Bool _ | Json.Num _ | Json.Str _ | Json.List _ | Json.Obj _)
      as t ->
        Result.map Option.some (tsq_of_json (Option.get t))
  in
  let* literals =
    match Json.member "literals" j with
    | None -> Ok None
    | Some l -> (
        match Json.get_list l with
        | None -> Error "\"literals\" must be an array"
        | Some vs -> Result.map Option.some (map_result value_of_json vs))
  in
  let* max_pops = opt_int j "max_pops" in
  let* max_candidates = opt_int j "max_candidates" in
  let* time_budget_s = opt_num j "time_budget_s" in
  Ok
    (Open_session
       {
         op_db = db;
         op_nlq = nlq;
         op_tsq = tsq;
         op_literals = literals;
         op_max_pops = max_pops;
         op_max_candidates = max_candidates;
         op_time_budget_s = time_budget_s;
       })

let request_of_line line =
  match Json.parse line with
  | Error e -> Error ("malformed JSON: " ^ e)
  | Ok j -> (
      match str_field j "op" with
      | Error e -> Error e
      | Ok op -> (
          match op with
          | "open_session" -> open_of_json j
          | "refine_tsq" ->
              let* sid = sid_field j in
              let* tsq =
                match Json.member "tsq" j with
                | None -> Error "missing \"tsq\""
                | Some t -> tsq_of_json t
              in
              Ok (Refine_tsq (sid, tsq))
          | "get_candidates" ->
              let* sid = sid_field j in
              let* k = opt_int j "k" in
              Ok (Get_candidates (sid, k))
          | "cancel" ->
              let* sid = sid_field j in
              Ok (Cancel sid)
          | "close" ->
              let* sid = sid_field j in
              Ok (Close sid)
          | "list_dbs" -> Ok List_dbs
          | "stats" -> Ok Stats
          | "shutdown" -> Ok Shutdown
          | op -> Error (Printf.sprintf "unknown op %S" op)))

let request_to_line req =
  let obj op fields = Json.to_string (Json.Obj (("op", Json.Str op) :: fields)) in
  let sid i = ("session", Json.Num (float_of_int i)) in
  match req with
  | Open_session p ->
      let fields = ref [] in
      let push k v = fields := (k, v) :: !fields in
      (match p.op_time_budget_s with
      | Some f -> push "time_budget_s" (Json.Num f)
      | None -> ());
      (match p.op_max_candidates with
      | Some i -> push "max_candidates" (Json.Num (float_of_int i))
      | None -> ());
      (match p.op_max_pops with
      | Some i -> push "max_pops" (Json.Num (float_of_int i))
      | None -> ());
      (match p.op_literals with
      | Some vs -> push "literals" (Json.List (List.map value_to_json vs))
      | None -> ());
      (match p.op_tsq with
      | Some t -> push "tsq" (tsq_to_json t)
      | None -> ());
      push "nlq" (Json.Str p.op_nlq);
      push "db" (Json.Str p.op_db);
      obj "open_session" !fields
  | Refine_tsq (i, t) -> obj "refine_tsq" [ sid i; ("tsq", tsq_to_json t) ]
  | Get_candidates (i, k) ->
      obj "get_candidates"
        (sid i
        ::
        (match k with
        | Some k -> [ ("k", Json.Num (float_of_int k)) ]
        | None -> []))
  | Cancel i -> obj "cancel" [ sid i ]
  | Close i -> obj "close" [ sid i ]
  | List_dbs -> obj "list_dbs" []
  | Stats -> obj "stats" []
  | Shutdown -> obj "shutdown" []

(* --- responses ------------------------------------------------------- *)

let ok_line fields = Json.to_string (Json.Obj (("ok", Json.Bool true) :: fields))

let error_line msg =
  Json.to_string
    (Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ])

let candidate_json (c : Duocore.Enumerate.candidate) =
  Json.Obj
    [
      ("rank", Json.Num (float_of_int (c.Duocore.Enumerate.cand_index + 1)));
      ("sql", Json.Str (Duosql.Pretty.query c.Duocore.Enumerate.cand_query));
      ("confidence", Json.Num c.Duocore.Enumerate.cand_confidence);
      ("pops", Json.Num (float_of_int c.Duocore.Enumerate.cand_pops));
    ]
