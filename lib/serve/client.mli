(** A minimal blocking Duoserve client: one connection, synchronous
    request/response.  Used by the load generator and the smoke test;
    interactive callers would talk the line protocol directly. *)

type t

val connect_unix : string -> t
val connect_tcp : ?host:string -> int -> t

(** Send one request and wait for the response line.  [Ok json] for an
    [{"ok":true}] response, [Error msg] for a protocol error or a dead
    connection. *)
val request : t -> Protocol.request -> (Json.t, string) result

(** [Error]-raising variant for scripted sessions. *)
val request_exn : t -> Protocol.request -> Json.t

val close : t -> unit
