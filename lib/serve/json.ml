type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing -------------------------------------------------------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%d" (int_of_float f))
  else Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec add buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool true -> Buffer.add_string buf "true"
  | Bool false -> Buffer.add_string buf "false"
  | Num f -> add_num buf f
  | Str s -> add_escaped buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          add buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          add buf x)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* --- parsing --------------------------------------------------------- *)

exception Fail of int * string

let fail pos msg = raise (Fail (pos, msg))

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        go ()
    | Some _ | None -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c.pos (Printf.sprintf "expected '%c', found '%c'" ch x)
  | None -> fail c.pos (Printf.sprintf "expected '%c', found end of input" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = word
  then (
    c.pos <- c.pos + n;
    value)
  else fail c.pos (Printf.sprintf "invalid literal (expected %s)" word)

(* Encode a Unicode scalar as UTF-8 into [buf]. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then (
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F))))
  else if u < 0x10000 then (
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F))))
  else (
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F))))

let hex4 c =
  let digit ch =
    match ch with
    | '0' .. '9' -> Char.code ch - Char.code '0'
    | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
    | _ -> fail c.pos "invalid \\u escape"
  in
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek c with
    | Some ch -> v := (!v * 16) + digit ch
    | None -> fail c.pos "unterminated \\u escape");
    advance c
  done;
  !v

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c.pos "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail c.pos "unterminated escape"
        | Some ch ->
            advance c;
            (match ch with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                let u = hex4 c in
                (* surrogate pair *)
                if u >= 0xD800 && u <= 0xDBFF then (
                  expect c '\\';
                  expect c 'u';
                  let lo = hex4 c in
                  if lo < 0xDC00 || lo > 0xDFFF then
                    fail c.pos "invalid low surrogate"
                  else
                    add_utf8 buf
                      (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00)))
                else add_utf8 buf u
            | ch -> fail (c.pos - 1) (Printf.sprintf "invalid escape '\\%c'" ch));
            go ())
    | Some ch when Char.code ch < 0x20 -> fail c.pos "raw control character"
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let accept p =
    match peek c with Some ch when p ch -> advance c; true | Some _ | None -> false
  in
  let digits () =
    if not (accept (function '0' .. '9' -> true | _ -> false)) then
      fail c.pos "expected digit";
    while accept (function '0' .. '9' -> true | _ -> false) do
      ()
    done
  in
  ignore (accept (fun ch -> ch = '-'));
  digits ();
  if accept (fun ch -> ch = '.') then digits ();
  if accept (function 'e' | 'E' -> true | _ -> false) then (
    ignore (accept (function '+' | '-' -> true | _ -> false));
    digits ());
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail start (Printf.sprintf "bad number %S" s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c.pos "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then (
        advance c;
        Obj [])
      else
        let rec fields acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance c;
              Obj (List.rev ((k, v) :: acc))
          | Some ch -> fail c.pos (Printf.sprintf "expected ',' or '}', found '%c'" ch)
          | None -> fail c.pos "unterminated object"
        in
        fields []
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then (
        advance c;
        List [])
      else
        let rec elems acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              elems (v :: acc)
          | Some ']' ->
              advance c;
              List (List.rev (v :: acc))
          | Some ch -> fail c.pos (Printf.sprintf "expected ',' or ']', found '%c'" ch)
          | None -> fail c.pos "unterminated array"
        in
        elems []
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number c)
  | Some ch -> fail c.pos (Printf.sprintf "unexpected character '%c'" ch)

let parse s =
  let c = { src = s; pos = 0 } in
  match
    let v = parse_value c in
    skip_ws c;
    (match peek c with
    | Some ch -> fail c.pos (Printf.sprintf "trailing garbage '%c'" ch)
    | None -> ());
    v
  with
  | v -> Ok v
  | exception Fail (pos, msg) ->
      Error (Printf.sprintf "%s at byte %d" msg pos)

(* --- accessors ------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Num _ | Str _ | List _ -> None

let get_str = function
  | Str s -> Some s
  | Null | Bool _ | Num _ | List _ | Obj _ -> None

let get_num = function
  | Num f -> Some f
  | Null | Bool _ | Str _ | List _ | Obj _ -> None

let get_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | Num _ | Null | Bool _ | Str _ | List _ | Obj _ -> None

let get_bool = function
  | Bool b -> Some b
  | Null | Num _ | Str _ | List _ | Obj _ -> None

let get_list = function
  | List xs -> Some xs
  | Null | Bool _ | Num _ | Str _ | Obj _ -> None
