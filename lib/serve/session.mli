(** One Duoserve synthesis session: a dual specification (NLQ + optional
    TSQ) bound to a database, carrying its resumable
    {!Duocore.Enumerate.state}.

    The server time-slices sessions cooperatively with {!step}; by
    resume determinism (see {!Duocore.Enumerate.step}) the interleaving
    never changes a session's results, so concurrent sessions cannot
    interfere.  The wall-clock budget charges only active stepping time
    — a session preempted by its neighbours is not billed for waiting.

    {!refine} implements the paper's interaction loop (Figure 1)
    incrementally: when the new sketch is a {!Duocore.Tsq.Tightening} of
    the previous one, the running enumeration is warm-restarted in place
    via {!Duocore.Enumerate.rebase} — the frontier and emitted
    candidates are re-checked through only the sketch-reading cascade
    stages, everything already pruned stays pruned (stage monotonicity),
    and subsequent steps emit exactly what a from-root run under the new
    sketch would.  [Incomparable] edits (or a refine after cancel) fall
    back to a from-root restart.  Either way the wall-clock budget is
    cumulative across refinements; the pop budget is per refinement. *)

type status =
  | Running
  | Finished
  | Cancelled

val status_name : status -> string

type t

val sid : t -> int
val db_name : t -> string
val nlq : t -> string
val status : t -> status

(** Slices this session has been stepped, and times it was refined. *)
val slices : t -> int

val refinements : t -> int

(** Refinements served by the warm {!Duocore.Enumerate.rebase} path
    (the rest fell back to a from-root restart). *)
val rebased : t -> int

(** [create ~sid ~db_name ~config duo params] admits the session and
    prepares its enumeration (paused before the first pop).  [config] is
    the already-clamped per-session budget; [relcache] is the per-database
    shared relation cache; [pool] the server's shared worker pool. *)
val create :
  sid:int ->
  db_name:string ->
  config:Duocore.Enumerate.config ->
  ?relcache:Duoengine.Executor.relation_cache ->
  ?pool:Duopar.Pool.t ->
  nlq:string ->
  ?tsq:Duocore.Tsq.t ->
  ?literals:Duodb.Value.t list ->
  Duocore.Duoquest.session ->
  t

(** Advance a [Running] session by at most [max_pops] frontier pops; a
    no-op otherwise. *)
val step : max_pops:int -> t -> unit

(** Replace the TSQ: warm-restart via {!Duocore.Enumerate.rebase} on a
    tightening edit, from-root (with the elapsed time re-charged)
    otherwise.  The session returns to [Running] — or directly to
    [Finished] when the carried candidates already fill the budget. *)
val refine : t -> Duocore.Tsq.t -> unit

(** Stop enumerating and release the enumeration state.  The outcome
    snapshot stays readable until {!close}. *)
val cancel : t -> unit

(** Results so far — callable in any status.  A session with no state
    and no snapshot reports a fresh all-zero outcome (a new record per
    call — outcomes carry mutable stats). *)
val outcome : t -> Duocore.Enumerate.outcome

(** Release everything.  A [Finished] session keeps that status for the
    books; a [Running] one is marked [Cancelled].  The session must not
    be used afterwards. *)
val close : t -> unit
