(** One Duoserve synthesis session: a dual specification (NLQ + optional
    TSQ) bound to a database, carrying its resumable
    {!Duocore.Enumerate.state}.

    The server time-slices sessions cooperatively with {!step}; by
    resume determinism (see {!Duocore.Enumerate.step}) the interleaving
    never changes a session's results, so concurrent sessions cannot
    interfere.  The wall-clock budget charges only active stepping time
    — a session preempted by its neighbours is not billed for waiting.

    {!refine} implements the paper's interaction loop (Figure 1): the
    sketch is replaced and enumeration restarts from the root under the
    new TSQ.  Results from the previous sketch are discarded — the new
    sketch re-judges the whole space, not just past survivors. *)

type status =
  | Running
  | Finished
  | Cancelled

val status_name : status -> string

type t

val sid : t -> int
val db_name : t -> string
val nlq : t -> string
val status : t -> status

(** Slices this session has been stepped, and times it was refined. *)
val slices : t -> int

val refinements : t -> int

(** [create ~sid ~db_name ~config duo params] admits the session and
    prepares its enumeration (paused before the first pop).  [config] is
    the already-clamped per-session budget; [relcache] is the per-database
    shared relation cache; [pool] the server's shared worker pool. *)
val create :
  sid:int ->
  db_name:string ->
  config:Duocore.Enumerate.config ->
  ?relcache:Duoengine.Executor.relation_cache ->
  ?pool:Duopar.Pool.t ->
  nlq:string ->
  ?tsq:Duocore.Tsq.t ->
  ?literals:Duodb.Value.t list ->
  Duocore.Duoquest.session ->
  t

(** Advance a [Running] session by at most [max_pops] frontier pops; a
    no-op otherwise. *)
val step : max_pops:int -> t -> unit

(** Replace the TSQ and restart enumeration; any status returns to
    [Running]. *)
val refine : t -> Duocore.Tsq.t -> unit

(** Stop enumerating and release the enumeration state.  The outcome
    snapshot stays readable until {!close}. *)
val cancel : t -> unit

(** Results so far — callable in any status. *)
val outcome : t -> Duocore.Enumerate.outcome

(** Release everything.  The session must not be used afterwards. *)
val close : t -> unit
