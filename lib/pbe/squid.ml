open Duosql.Ast
module Value = Duodb.Value
module Tsq = Duocore.Tsq

type filter =
  | F_eq of Value.t
  | F_range of Value.t * Value.t

type result = {
  projections : Duodb.Schema.column list;
  filters : (Duodb.Schema.column * filter) list;
  count_properties : (string list * int) list;
  witness_count : int;
}

let supported_query db q =
  let schema = Duodb.Database.schema db in
  let text_col c =
    match Duodb.Schema.find_column schema ~table:c.cr_table c.cr_col with
    | Some col -> Duodb.Datatype.equal col.Duodb.Schema.col_type Duodb.Datatype.Text
    | None -> false
  in
  (* Projections: plain text columns only — no aggregates, no numbers. *)
  List.for_all
    (fun p ->
      p.p_agg = None
      && match p.p_col with Some c -> text_col c | None -> false)
    q.q_select
  (* HAVING is expressible only as a COUNT property over the derived
     relation. *)
  && (match q.q_having with
     | None -> true
     | Some cond ->
         List.for_all
           (fun pr ->
             pr.pr_agg = Some Count
             && match pr.pr_rhs with
                | Cmp ((Eq | Lt | Le | Gt | Ge), _) | Between _ -> true
                | Cmp ((Neq | Like | Not_like), _) -> false)
           cond.c_preds)
  && (match q.q_where with
     | None -> true
     | Some cond ->
         List.for_all
           (fun pr ->
             match pr.pr_rhs with
             | Cmp ((Eq | Lt | Le | Gt | Ge), _) | Between _ -> true
             | Cmp ((Neq | Like | Not_like), _) -> false)
           cond.c_preds)
  (* Grouped aggregate output is not expressible. *)
  && (q.q_group_by = []
     || List.for_all (fun p -> p.p_agg = None) q.q_select)

(* Candidate schema text columns containing every exact cell at position
   [i] of the examples. *)
let candidate_columns db examples i =
  let schema = Duodb.Database.schema db in
  let cells =
    List.filter_map
      (fun tup -> List.nth_opt tup i)
      examples
  in
  let exact_texts =
    List.filter_map
      (function
        | Tsq.Exact (Value.Text s) -> Some s
        | Tsq.Exact (Value.Null | Value.Int _ | Value.Float _)
        | Tsq.Any | Tsq.Range _ ->
            None)
      cells
  in
  let has_non_text =
    List.exists
      (function
        | Tsq.Exact (Value.Int _ | Value.Float _) | Tsq.Range _ -> true
        | Tsq.Exact (Value.Null | Value.Text _) | Tsq.Any -> false)
      cells
  in
  if has_non_text then []  (* numeric projections unsupported *)
  else
    List.filter
      (fun c ->
        Duodb.Datatype.equal c.Duodb.Schema.col_type Duodb.Datatype.Text
        && (exact_texts = []
           ||
           let tbl = Duodb.Database.table_exn db c.Duodb.Schema.col_table in
           let idx = Duodb.Table.column_index tbl c.Duodb.Schema.col_name in
           List.for_all
             (fun s ->
               Duodb.Table.exists
                 (fun row -> Value.equal row.(idx) (Value.Text s))
                 tbl)
             exact_texts))
      (Duodb.Schema.all_columns schema)

(* Choose, per position, the candidate column minimizing the joint Steiner
   tree; greedy left-to-right with first-found preference. *)
let choose_projections db examples width =
  let schema = Duodb.Database.schema db in
  let rec go i chosen =
    if i >= width then Some (List.rev chosen)
    else
      let cands = candidate_columns db examples i in
      let try_cand c =
        let tables =
          List.sort_uniq String.compare
            (List.map (fun col -> col.Duodb.Schema.col_table) (c :: chosen))
        in
        match Duocore.Steiner.tree schema tables with
        | Some tr -> Some (c, Duocore.Steiner.size tr)
        | None -> None
      in
      let best =
        List.fold_left
          (fun acc c ->
            match try_cand c, acc with
            | Some (c, sz), Some (_, sz') when sz < sz' -> Some (c, sz)
            | Some (c, sz), None -> Some (c, sz)
            | _, acc -> acc)
          None cands
      in
      match best with
      | None -> None
      | Some (c, _) -> go (i + 1) (c :: chosen)
  in
  go 0 []

let col_ref_of c = col c.Duodb.Schema.col_table c.Duodb.Schema.col_name

(* Filter abduction over one (possibly extended) join clause: find the
   columns whose values the witnesses of every example share.  SQuID calls
   these semantic properties; extending the clause over FK hops derives
   properties of related entities (an author's conference, a movie's
   genre). *)
let abduce_filters db examples projections (from : from_clause) =
  let schema = Duodb.Database.schema db in
  let all_cols =
    List.concat_map
      (fun t ->
        match Duodb.Schema.find_table schema t with
        | Some ts -> ts.Duodb.Schema.tbl_columns
        | None -> [])
      from.f_tables
  in
  let wide =
    simple (List.map (fun c -> proj_col (col_ref_of c)) all_cols) from
  in
  match Duoengine.Executor.run db wide with
  | Error _ -> None
  | Ok res ->
      let rows = res.Duoengine.Executor.res_rows in
      let proj_idx =
        List.map
          (fun p ->
            let rec find i = function
              | [] -> -1
              | c :: rest ->
                  if
                    String.equal c.Duodb.Schema.col_table p.Duodb.Schema.col_table
                    && String.equal c.Duodb.Schema.col_name p.Duodb.Schema.col_name
                  then i
                  else find (i + 1) rest
            in
            find 0 all_cols)
          projections
      in
      (* Witness rows per example: joined rows whose projected cells match
         the example's cells.  Projections outside this clause are treated
         as unconstrained. *)
      let witnesses_of tup =
        let cells = Array.of_list tup in
        List.filter
          (fun row ->
            List.for_all
              (fun (pos, idx) ->
                idx < 0 || pos >= Array.length cells
                || Tsq.cell_matches cells.(pos) row.(idx))
              (List.mapi (fun pos idx -> (pos, idx)) proj_idx))
          rows
      in
      let witness_sets = List.map witnesses_of examples in
      if List.exists (fun ws -> ws = []) witness_sets then None
      else begin
        let witness_count =
          List.fold_left (fun acc ws -> acc + List.length ws) 0 witness_sets
        in
        let min_witnesses =
          List.fold_left (fun acc ws -> min acc (List.length ws)) max_int witness_sets
        in
        (* A column yields an equality filter when some value covers every
           example (appears in at least one witness of each); numeric
           columns also yield the spanning range. *)
        let filters =
          List.concat
            (List.mapi
               (fun idx c ->
                 let values_per_example =
                   List.map
                     (fun ws ->
                       List.sort_uniq Value.compare
                         (List.filter_map
                            (fun row ->
                              if Value.is_null row.(idx) then None
                              else Some row.(idx))
                            ws))
                     witness_sets
                 in
                 if List.exists (fun vs -> vs = []) values_per_example then []
                 else
                   let first, rest =
                     match values_per_example with
                     | f :: r -> (f, r)
                     | [] -> ([], [])
                   in
                   let common =
                     List.filter
                       (fun v -> List.for_all (List.exists (Value.equal v)) rest)
                       first
                   in
                   let eqs = List.map (fun v -> (c, F_eq v)) common in
                   let range =
                     if
                       Duodb.Datatype.equal c.Duodb.Schema.col_type
                         Duodb.Datatype.Number
                     then
                       let all = List.concat values_per_example in
                       match List.sort Value.compare all with
                       | [] -> []
                       | sorted ->
                           [ (c, F_range (List.hd sorted, List.nth sorted (List.length sorted - 1))) ]
                     else []
                   in
                   eqs @ range)
               all_cols)
        in
        Some (filters, witness_count, min_witnesses)
      end

let discover db examples =
  let width =
    List.fold_left (fun acc tup -> max acc (List.length tup)) 0 examples
  in
  if width = 0 then None
  else
    match choose_projections db examples width with
    | None -> None
    | Some projections -> (
        let schema = Duodb.Database.schema db in
        let tables =
          List.sort_uniq String.compare
            (List.map (fun c -> c.Duodb.Schema.col_table) projections)
        in
        (* Base clause for the witness count, plus FK-hop extensions whose
           derived properties (shared values and per-entity counts) become
           additional candidate filters. *)
        let clauses = Duocore.Joinpath.construct ~depth:3 schema ~tables in
        match clauses with
        | [] -> None
        | base :: extensions -> (
            match abduce_filters db examples projections base with
            | None -> None
            | Some (filters, witness_count, _) ->
                let extra, count_properties =
                  List.fold_left
                    (fun (fs_acc, cp_acc) clause ->
                      match abduce_filters db examples projections clause with
                      | Some (fs, _, min_w) ->
                          let cp =
                            if min_w >= 2 then
                              (clause.f_tables, min_w) :: cp_acc
                            else cp_acc
                          in
                          (fs_acc @ fs, cp)
                      | None -> (fs_acc, cp_acc))
                    ([], []) extensions
                in
                let dedup =
                  List.fold_left
                    (fun acc (c, f) ->
                      if
                        List.exists
                          (fun (c2, f2) ->
                            String.equal c.Duodb.Schema.col_table c2.Duodb.Schema.col_table
                            && String.equal c.Duodb.Schema.col_name c2.Duodb.Schema.col_name
                            && f = f2)
                          acc
                      then acc
                      else acc @ [ (c, f) ])
                    [] (filters @ extra)
                in
                Some
                  { projections; filters = dedup;
                    count_properties = List.rev count_properties;
                    witness_count }))

let correct_for result ~gold =
  let proj_ok =
    List.length gold.q_select = List.length result.projections
    && List.for_all2
         (fun p c ->
           match p.p_col with
           | Some cr ->
               String.equal cr.cr_table c.Duodb.Schema.col_table
               && String.equal cr.cr_col c.Duodb.Schema.col_name
           | None -> false)
         gold.q_select result.projections
  in
  let filter_cols = List.map fst result.filters in
  let preds_ok =
    match gold.q_where with
    | None -> true
    | Some cond ->
        List.for_all
          (fun pr ->
            match pr.pr_col with
            | None -> false
            | Some cr ->
                List.exists
                  (fun c ->
                    String.equal c.Duodb.Schema.col_table cr.cr_table
                    && String.equal c.Duodb.Schema.col_name cr.cr_col)
                  filter_cols)
          cond.c_preds
  in
  (* A HAVING-COUNT intent is covered when some derived clause shows every
     example entity with >= 2 witnesses over the gold query's tables
     (literal values ignored, as in Section 5.4.2). *)
  let having_ok =
    match gold.q_having with
    | None -> true
    | Some cond ->
        List.for_all
          (fun pr ->
            pr.pr_agg = Some Count
            && List.exists
                 (fun (tables, _) ->
                   List.for_all
                     (fun t -> List.mem t tables)
                     gold.q_from.f_tables)
                 result.count_properties)
          cond.c_preds
  in
  proj_ok && preds_ok && having_ok
