(** The Duocheck fuzz properties, as QCheck tests.

    - {b differential}: planner-on and planner-off execution agree with
      the naive {!Reference} interpreter on every generated query (all
      three error out on out-of-scope inputs);
    - {b round-trip}: [parse (pretty q) = q] under {!Duosql.Equal.queries};
    - {b columnar}: Duodb's columnar views (cells, column vectors, zone
      maps) and the engine's probe kernels agree with the materialized
      row view and a scalar reference scan;
    - {b batched execution}: {!Duoengine.Executor.run_batch} returns
      exactly what per-query {!Duoengine.Executor.run} returns;
    - {b cascade soundness}: no Verify stage prunes a partial query that
      has a completion satisfying the TSQ ({!Soundness.check});
    - {b Property 1}: every expansion's children partition the parent's
      confidence mass (join-path forks exempt by design);
    - {b Duopar determinism}: enumeration with worker domains is
      observably identical to the sequential run;
    - {b resume determinism}: a run time-sliced via {!Duocore.Enumerate.step}
      and resumed is observably identical to the uninterrupted run — the
      contract Duoserve's session scheduler rests on;
    - {b refinement monotonicity}: any {!Duocore.Tsq.refines} tightening
      only grows the cascade's prune set — no state pruned under the old
      sketch is revived by the new one (the contract behind
      {!Duocore.Enumerate.rebase} keeping the visited set);
    - {b incremental refine}: enumerating under a loosened sketch, then
      rebasing onto the original mid-run, emits the same candidates as a
      from-root run under the original;
    - {b Duosem equivalence}: {!Duolint.Duosem.canonical_query} keeps the
      error status and the result multiset of every generated query on
      its database, and canonicalization is idempotent;
    - {b Duosem cardinality}: {!Duolint.Duosem.bound_query}'s interval
      contains the true row count of every query that executes;
    - {b Domain lattice laws}: {!Duolint.Domain} meet is exact
      intersection and join over-approximates union (checked against
      concrete membership), [leq] is a partial order consistent with
      inclusion, and widening covers its operand and stabilizes along
      randomized ascending chains. *)

(** Individual properties, exposed for ad-hoc harnesses. *)

val differential_prop : Gen.scenario -> bool
val roundtrip_prop : Gen.scenario -> bool
val columnar_prop : Gen.scenario -> bool
val batch_prop : Gen.scenario -> bool
val soundness_prop : Gen.scenario -> bool
val property1_prop : Gen.scenario * int -> bool
val duosem_equiv_prop : Gen.scenario -> bool
val duosem_card_prop : Gen.scenario -> bool
val domain_lattice_prop : int -> bool

(** [tests ~mult ()] builds the property list with iteration counts scaled
    by [mult] (default 1: the small seeded configuration wired into
    [dune runtest]; the [@fuzz] alias passes a large multiplier). *)
val tests : ?mult:int -> unit -> QCheck.Test.t list
