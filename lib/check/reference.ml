open Duosql.Ast
module Value = Duodb.Value
module Datatype = Duodb.Datatype

(* The oracle side of the differential property.  Everything here is the
   simplest possible implementation of the dialect: association lists,
   nested loops, list append.  Resist the urge to optimize — speed lives
   in [Duoengine]; this module's only job is to be obviously correct. *)

exception Ref_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Ref_error s)) fmt

(* Wide rows are value lists; [pos] maps (table, column) to an offset. *)
type rel = {
  pos : ((string * string) * int) list;
  rows : Value.t list list;
}

let lookup rel c =
  match List.assoc_opt (c.cr_table, c.cr_col) rel.pos with
  | Some i -> i
  | None -> fail "column %s.%s not in FROM clause" c.cr_table c.cr_col

let cell rel row c = List.nth row (lookup rel c)

let table_schema db t =
  match Duodb.Schema.find_table (Duodb.Database.schema db) t with
  | Some ts -> ts
  | None -> fail "unknown table %s" t

let table_rows db t =
  ignore (table_schema db t);
  Array.to_list (Duodb.Table.rows (Duodb.Database.table_exn db t))
  |> List.map Array.to_list

(* --- FROM: nested loops in clause attach order --- *)

(* Attach tables starting from the first FROM table, always taking the
   first join edge (in clause order) with exactly one already-joined
   endpoint — the dialect's canonical nested-loop order. *)
let build_from db (f : from_clause) =
  match f.f_tables with
  | [] -> fail "empty FROM clause"
  | first :: rest ->
      let cols_of t =
        List.map
          (fun c -> (t, c.Duodb.Schema.col_name))
          (table_schema db t).Duodb.Schema.tbl_columns
      in
      let start =
        {
          pos = List.mapi (fun i k -> (k, i)) (cols_of first);
          rows = table_rows db first;
        }
      in
      let attach rel (t, (left : col_ref), right_col) =
        let width = List.length rel.pos in
        let pos =
          rel.pos @ List.mapi (fun i k -> (k, width + i)) (cols_of t)
        in
        let li = lookup rel left in
        let ri =
          let rec idx i = function
            | [] -> fail "join column %s.%s not in relation" t right_col
            | c :: rest ->
                if String.equal c.Duodb.Schema.col_name right_col then i
                else idx (i + 1) rest
          in
          idx 0 (table_schema db t).Duodb.Schema.tbl_columns
        in
        let right_rows = table_rows db t in
        let rows =
          List.concat_map
            (fun wide ->
              let v = List.nth wide li in
              if Value.is_null v then []
              else
                List.filter_map
                  (fun r ->
                    let w = List.nth r ri in
                    if (not (Value.is_null w)) && Value.equal v w then
                      Some (wide @ r)
                    else None)
                  right_rows)
            rel.rows
        in
        { pos; rows }
      in
      let rec go rel joined pending =
        if pending = [] then rel
        else
          let usable e =
            let a = e.j_from.cr_table and b = e.j_to.cr_table in
            if List.mem a joined && List.mem b pending then
              Some (b, e.j_from, e.j_to.cr_col)
            else if List.mem b joined && List.mem a pending then
              Some (a, e.j_to, e.j_from.cr_col)
            else None
          in
          match List.find_map usable f.f_joins with
          | None -> fail "FROM clause is not a connected join tree"
          | Some ((t, _, _) as step) ->
              go (attach rel step) (t :: joined)
                (List.filter (fun x -> not (String.equal x t)) pending)
      in
      go start [ first ] rest

(* --- scalar evaluation --- *)

let eval_cmp op lhs rhs =
  if Value.is_null lhs || Value.is_null rhs then false
  else
    match op with
    | Eq -> Value.equal lhs rhs
    | Neq -> not (Value.equal lhs rhs)
    | Lt -> Value.compare lhs rhs < 0
    | Le -> Value.compare lhs rhs <= 0
    | Gt -> Value.compare lhs rhs > 0
    | Ge -> Value.compare lhs rhs >= 0
    | Like -> (
        match lhs, rhs with
        | Value.Text s, Value.Text p -> Value.like s ~pattern:p
        | (Value.Null | Value.Int _ | Value.Float _ | Value.Text _), _ ->
            fail "LIKE requires text operands")
    | Not_like -> (
        match lhs, rhs with
        | Value.Text s, Value.Text p -> not (Value.like s ~pattern:p)
        | (Value.Null | Value.Int _ | Value.Float _ | Value.Text _), _ ->
            fail "NOT LIKE requires text operands")

let eval_rhs rhs v =
  match rhs with
  | Cmp (op, lit) -> eval_cmp op v lit
  | Between (lo, hi) ->
      (not (Value.is_null v))
      && Value.compare v lo >= 0
      && Value.compare v hi <= 0

let eval_where rel cond row =
  let eval_pred p =
    match p.pr_agg, p.pr_col with
    | Some _, _ -> fail "aggregate predicate in WHERE"
    | None, None -> fail "missing column in WHERE predicate"
    | None, Some c -> eval_rhs p.pr_rhs (cell rel row c)
  in
  match cond.c_conn with
  | And -> List.for_all eval_pred cond.c_preds
  | Or -> List.exists eval_pred cond.c_preds

(* --- grouping and aggregation --- *)

let eval_agg rel agg col distinct (group : Value.t list list) =
  let values () =
    let c = match col with Some c -> c | None -> fail "aggregate needs a column" in
    List.filter_map
      (fun row ->
        let v = cell rel row c in
        if Value.is_null v then None else Some v)
      group
  in
  let distinct_values vs =
    List.fold_left
      (fun acc v -> if List.exists (Value.equal v) acc then acc else acc @ [ v ])
      [] vs
  in
  let numeric vs =
    List.map
      (fun v ->
        if Value.is_numeric v then Value.to_float v
        else fail "numeric aggregate over text")
      vs
  in
  match agg with
  | Count -> (
      match col with
      | None -> Value.Int (List.length group)
      | Some _ ->
          let vs = values () in
          let vs = if distinct then distinct_values vs else vs in
          Value.Int (List.length vs))
  | Sum -> (
      match values () with
      | [] -> Value.Null
      | vs ->
          if
            List.for_all
              (function
                | Value.Int _ -> true
                | Value.Null | Value.Float _ | Value.Text _ -> false)
              vs
          then
            Value.Int
              (List.fold_left
                 (fun acc v ->
                   match v with
                   | Value.Int i -> acc + i
                   | Value.Null | Value.Float _ | Value.Text _ -> acc)
                 0 vs)
          else
            let total = List.fold_left ( +. ) 0. (numeric vs) in
            if Float.is_integer total then Value.Int (int_of_float total)
            else Value.Float total)
  | Avg -> (
      match values () with
      | [] -> Value.Null
      | vs ->
          let fs = numeric vs in
          Value.Float (List.fold_left ( +. ) 0. fs /. float_of_int (List.length fs)))
  | Min -> (
      match values () with
      | [] -> Value.Null
      | v :: vs ->
          List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) v vs)
  | Max -> (
      match values () with
      | [] -> Value.Null
      | v :: vs ->
          List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) v vs)

let eval_item rel (agg, col, distinct) group =
  match agg with
  | Some a -> eval_agg rel a col distinct group
  | None -> (
      match col with
      | Some c -> (
          match group with
          | [] -> Value.Null
          | row :: _ -> cell rel row c)
      | None -> fail "bare star projection")

let eval_having rel cond group =
  let eval_pred p =
    eval_rhs p.pr_rhs (eval_item rel (p.pr_agg, p.pr_col, false) group)
  in
  match cond.c_conn with
  | And -> List.for_all eval_pred cond.c_preds
  | Or -> List.exists eval_pred cond.c_preds

let make_groups q rel (sel : Value.t list list) =
  let needs_groups =
    q.q_group_by <> []
    || List.exists (fun p -> Option.is_some p.p_agg) q.q_select
    || Option.is_some q.q_having
    || List.exists (fun o -> Option.is_some o.o_agg) q.q_order_by
  in
  if not needs_groups then List.map (fun row -> [ row ]) sel
  else if q.q_group_by = [] then [ sel ] (* single group, even when empty *)
  else
    (* first-seen key order, insertion order within each group *)
    let key row = List.map (cell rel row) q.q_group_by in
    List.fold_left
      (fun groups row ->
        let k = key row in
        let hit = ref false in
        let groups =
          List.map
            (fun (k', rows) ->
              if (not !hit) && List.for_all2 Value.equal k k' then begin
                hit := true;
                (k', rows @ [ row ])
              end
              else (k', rows))
            groups
        in
        if !hit then groups else groups @ [ (k, [ row ]) ])
      [] sel
    |> List.map snd

let proj_type db (p : proj) =
  match p.p_agg with
  | Some (Count | Sum | Avg) -> Datatype.Number
  | Some (Min | Max) | None -> (
      match p.p_col with
      | Some c -> (
          match
            Duodb.Schema.find_column (Duodb.Database.schema db) ~table:c.cr_table
              c.cr_col
          with
          | Some col -> col.Duodb.Schema.col_type
          | None -> fail "unknown column %s.%s" c.cr_table c.cr_col)
      | None -> Datatype.Number)

let run db q =
  try
    let rel = build_from db q.q_from in
    List.iter (fun c -> ignore (lookup rel c)) (referenced_columns q);
    let sel =
      match q.q_where with
      | None -> rel.rows
      | Some cond -> List.filter (eval_where rel cond) rel.rows
    in
    let groups = make_groups q rel sel in
    let groups =
      match q.q_having with
      | None -> groups
      | Some cond -> List.filter (eval_having rel cond) groups
    in
    let project group =
      let out =
        Array.of_list
          (List.map
             (fun p -> eval_item rel (p.p_agg, p.p_col, p.p_distinct) group)
             q.q_select)
      in
      let keys =
        List.map (fun o -> eval_item rel (o.o_agg, o.o_col, false) group) q.q_order_by
      in
      (out, keys)
    in
    let projected = List.map project groups in
    let projected =
      if not q.q_distinct then projected
      else
        List.fold_left
          (fun acc (out, keys) ->
            let same (out', _) =
              Array.length out = Array.length out'
              && List.for_all2 Value.equal (Array.to_list out) (Array.to_list out')
            in
            if List.exists same acc then acc else acc @ [ (out, keys) ])
          [] projected
    in
    let projected =
      if q.q_order_by = [] then projected
      else
        let dirs = List.map (fun o -> o.o_dir) q.q_order_by in
        let cmp (_, ka) (_, kb) =
          let rec go ks1 ks2 ds =
            match ks1, ks2, ds with
            | k1 :: r1, k2 :: r2, d :: rd ->
                let c = Value.compare k1 k2 in
                let c = match d with Asc -> c | Desc -> -c in
                if c <> 0 then c else go r1 r2 rd
            | _ -> 0
          in
          go ka kb dirs
        in
        List.stable_sort cmp projected
    in
    let out_rows = List.map fst projected in
    let out_rows =
      match q.q_limit with
      | None -> out_rows
      | Some n -> List.filteri (fun i _ -> i < n) out_rows
    in
    Ok
      {
        Duoengine.Executor.res_cols =
          List.map (fun p -> (Duosql.Pretty.proj p, proj_type db p)) q.q_select;
        res_rows = out_rows;
      }
  with Ref_error e -> Error e
