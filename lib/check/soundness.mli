(** Mechanical check of cascade soundness (the monotonicity claim of
    Section 3.4): whenever a Verify stage prunes a partial query, a
    bounded brute-force enumeration of that state's completions must find
    no query satisfying the TSQ.  Used by the fuzz properties and by the
    gold-survival regression tests. *)

(** A soundness violation: [vi_stage] pruned [vi_state], yet [vi_witness]
    — a completion of it — passes the full Definition 2.4 check. *)
type violation = {
  vi_state : Duocore.Partial.t;
  vi_stage : string;
  vi_witness : Duosql.Ast.query;
}

(** Cascade stage names, cheapest first: ["clauses"; "semantics"; "types";
    "column"; "row"; "complete"]. *)
val stage_names : string list

(** The first cascade stage that rejects the state, in ascending-cost
    order ([None] = survives; the row stage only runs when
    {!Duocore.Verify.can_check_rows} allows it, the complete stage only on
    complete states). *)
val first_failing_stage :
  Duocore.Verify.env -> Duocore.Partial.t -> string option

(** [completions ~guided ~hints ctx ~max_nodes ~max_complete state]
    brute-forces complete queries reachable from [state] by repeated
    {!Duocore.Enumerate.expand}, visiting at most [max_nodes] states and
    returning at most [max_complete] queries.  No verification is applied
    — this is the raw reachable set. *)
val completions :
  guided:bool ->
  hints:Duocore.Enumerate.hints ->
  Duoguide.Model.ctx ->
  max_nodes:int ->
  max_complete:int ->
  Duocore.Partial.t ->
  Duosql.Ast.query list

(** [check env ctx ~hints ()] explores the enumeration space best-first
    (up to [max_states] pops), and for up to [max_pruned] pruned children
    brute-forces their completions looking for a satisfying witness.
    Returns all violations found (so an empty list is the property). *)
val check :
  ?guided:bool ->
  ?max_states:int ->
  ?max_pruned:int ->
  ?max_completion_nodes:int ->
  ?max_completions:int ->
  Duocore.Verify.env ->
  Duoguide.Model.ctx ->
  hints:Duocore.Enumerate.hints ->
  unit ->
  violation list

val pp_violation : Format.formatter -> violation -> unit

(** Rebuilds the enumeration states deriving [q] in decision order
    (keywords, SELECT slots, WHERE, GROUP BY/HAVING, ORDER BY/LIMIT),
    each carrying the gold join path.  [None] when [q] lies outside the
    enumeration space (query-level DISTINCT, several GROUP BY or ORDER BY
    items, aggregates in WHERE, LIMIT without ORDER BY, ...). *)
val derivation_states :
  Duodb.Schema.t -> Duosql.Ast.query -> Duocore.Partial.t list option

(** Replays the derivation against the cascade and returns the first
    pruned (stage, state), or [None] when the gold survives end to end —
    required whenever the environment's TSQ was synthesized from [q]'s
    own result.  Also [None] when the query is outside the enumeration
    space (nothing to replay). *)
val gold_survival :
  Duocore.Verify.env ->
  Duodb.Schema.t ->
  Duosql.Ast.query ->
  (string * Duocore.Partial.t) option
