open Duosql.Ast
module Value = Duodb.Value
module Datatype = Duodb.Datatype
module Schema = Duodb.Schema
module Database = Duodb.Database
module Tsq = Duocore.Tsq

(* Seeded generators for the fuzz properties.  QCheck generators are plain
   functions of a [Random.State.t], so everything below is written in that
   state-passing style and composed at the end into QCheck arbitraries
   with printers and shrinkers (failures must print a minimal query/TSQ
   pair, so shrinking works on the query and sketch while keeping the
   generated database fixed). *)

type scenario = {
  sc_db : Database.t;
  sc_query : query;
  sc_tsq : Tsq.t;
}

let rint st lo hi = lo + Random.State.int st (hi - lo + 1)
let pick st arr = arr.(Random.State.int st (Array.length arr))
let pick_list st l = List.nth l (Random.State.int st (List.length l))
let chance st p = Random.State.float st 1.0 < p

let table_pool = [| "users"; "orders"; "items"; "events" |]
let word_pool = [| "amber"; "birch"; "cedar"; "delta"; "ember"; "fjord"; "grove"; "iris" |]

let extra_col_pool =
  [| ("label", Datatype.Text); ("city", Datatype.Text); ("score", Datatype.Number);
     ("year", Datatype.Number); ("qty", Datatype.Number) |]

(* --- random schema: a tree of 2-3 tables joined by FK-PK edges --- *)

let gen_schema st =
  let n = rint st 2 3 in
  let names = Array.init n (fun i -> table_pool.(i)) in
  let parent = Array.init n (fun i -> if i = 0 then None else Some (Random.State.int st i)) in
  let extras st =
    let k = rint st 2 3 in
    let rec go acc =
      if List.length acc >= k then acc
      else
        let c = pick st extra_col_pool in
        if List.mem_assoc (fst c) acc then go acc else go (acc @ [ c ])
    in
    go []
  in
  let tables =
    Array.to_list
      (Array.mapi
         (fun i name ->
           let pk = (name ^ "_id", Datatype.Number) in
           let fk =
             match parent.(i) with
             | None -> []
             | Some j -> [ (names.(j) ^ "_ref", Datatype.Number) ]
           in
           Schema.table name ((pk :: fk) @ extras st) ~pk:[ name ^ "_id" ])
         names)
  in
  let fks =
    List.filter_map
      (fun i ->
        Option.map
          (fun j ->
            Schema.fk (names.(i), names.(j) ^ "_ref") (names.(j), names.(j) ^ "_id"))
          parent.(i))
      (List.init n Fun.id)
  in
  Schema.make ~name:"fuzzdb" tables fks

(* --- random database: small tables, valid-ish FKs, occasional NULLs --- *)

let gen_db st schema =
  let db = Database.create schema in
  List.iter
    (fun (tbl : Schema.table) ->
      let nrows = rint st 3 8 in
      let fk_target c =
        List.find_opt
          (fun fk ->
            String.equal fk.Schema.fk_table tbl.Schema.tbl_name
            && String.equal fk.Schema.fk_column c)
          schema.Schema.foreign_keys
      in
      for r = 1 to nrows do
        let row =
          List.map
            (fun (c : Schema.column) ->
              if List.mem c.Schema.col_name tbl.Schema.tbl_pk then Value.Int r
              else
                match fk_target c.Schema.col_name with
                | Some fk ->
                    if chance st 0.1 then Value.Null
                    else
                      let parent_rows =
                        Duodb.Table.row_count (Database.table_exn db fk.Schema.pk_table)
                      in
                      (* occasionally dangling: joins must simply drop it *)
                      Value.Int (rint st 1 (parent_rows + 1))
                | None -> (
                    match c.Schema.col_type with
                    | Datatype.Text ->
                        if chance st 0.08 then Value.Null
                        else Value.Text (pick st word_pool ^ string_of_int (rint st 0 3))
                    | Datatype.Number ->
                        if chance st 0.08 then Value.Null else Value.Int (rint st 0 40)))
            tbl.Schema.tbl_columns
        in
        Database.insert db ~table:tbl.Schema.tbl_name (Array.of_list row)
      done)
    schema.Schema.tables;
  db

(* --- random in-scope query over a connected FK subgraph --- *)

let sample_value st db (c : Schema.column) =
  let vs =
    List.rev
      (Array.fold_left
         (fun acc v -> if Value.is_null v then acc else v :: acc)
         []
         (Duodb.Table.column_array
            (Database.table_exn db c.Schema.col_table)
            c.Schema.col_name))
  in
  if vs = [] then None else Some (pick_list st vs)

let gen_query st db =
  let schema = Database.schema db in
  (* connected table subset, grown along FK edges; tables and joins kept
     in attach order so pretty-printing emits them verbatim *)
  let all_tables = List.map (fun t -> t.Schema.tbl_name) schema.Schema.tables in
  let start = pick_list st all_tables in
  let rec grow chosen joins =
    if List.length chosen >= 3 || not (chance st 0.5) then (chosen, joins)
    else
      let frontier =
        List.filter
          (fun fk ->
            List.mem fk.Schema.fk_table chosen <> List.mem fk.Schema.pk_table chosen)
          schema.Schema.foreign_keys
      in
      match frontier with
      | [] -> (chosen, joins)
      | _ ->
          let fk = pick_list st frontier in
          let nt =
            if List.mem fk.Schema.fk_table chosen then fk.Schema.pk_table
            else fk.Schema.fk_table
          in
          let j =
            { j_from = col fk.Schema.fk_table fk.Schema.fk_column;
              j_to = col fk.Schema.pk_table fk.Schema.pk_column }
          in
          grow (chosen @ [ nt ]) (joins @ [ j ])
  in
  let tables, joins = grow [ start ] [] in
  let from = { f_tables = tables; f_joins = joins } in
  let cols =
    List.concat_map
      (fun t -> (Schema.find_table_exn schema t).Schema.tbl_columns)
      tables
  in
  let pick_col () = pick_list st cols in
  (* SELECT *)
  let nproj = rint st 1 3 in
  let projs =
    List.init nproj (fun _ ->
        if chance st 0.12 then count_star
        else
          let c = pick_col () in
          let cr = col c.Schema.col_table c.Schema.col_name in
          if chance st 0.3 then
            let aggs =
              match c.Schema.col_type with
              | Datatype.Number -> [ Count; Sum; Avg; Min; Max ]
              | Datatype.Text -> [ Count; Min; Max ]
            in
            let a = pick_list st aggs in
            { p_agg = Some a; p_col = Some cr; p_distinct = a = Count && chance st 0.25 }
          else proj_col cr)
  in
  let has_agg = List.exists (fun p -> Option.is_some p.p_agg) projs in
  (* WHERE *)
  let gen_pred () =
    let c = pick_col () in
    let cr = col c.Schema.col_table c.Schema.col_name in
    match c.Schema.col_type with
    | Datatype.Text ->
        let v =
          match sample_value st db c with
          | Some (Value.Text s) -> s
          | Some (Value.Null | Value.Int _ | Value.Float _) | None ->
              pick st word_pool
        in
        let op = pick_list st [ Eq; Neq; Like; Not_like ] in
        let rhs =
          match op with
          | Like | Not_like ->
              if chance st 0.5 then Value.Text ("%" ^ String.sub v 0 (min 3 (String.length v)) ^ "%")
              else Value.Text v
          | Eq | Neq | Lt | Le | Gt | Ge -> Value.Text v
        in
        { pr_agg = None; pr_col = Some cr; pr_rhs = Cmp (op, rhs) }
    | Datatype.Number ->
        let v =
          match sample_value st db c with
          | Some (Value.Int x) -> x
          | Some (Value.Null | Value.Float _ | Value.Text _) | None ->
              rint st 0 40
        in
        if chance st 0.2 then
          let lo = v - rint st 0 5 in
          between cr (Value.Int lo) (Value.Int (v + rint st 0 5))
        else
          let op = pick_list st [ Eq; Neq; Lt; Le; Gt; Ge ] in
          pred cr op (Value.Int v)
  in
  let where =
    let n = if chance st 0.45 then 0 else if chance st 0.65 then 1 else 2 in
    if n = 0 then None
    else
      Some
        { c_preds = List.init n (fun _ -> gen_pred ());
          c_conn = (if chance st 0.7 then And else Or) }
  in
  (* GROUP BY a plainly projected column *)
  let plain_cols = List.filter_map (fun p -> if p.p_agg = None then p.p_col else None) projs in
  let group_by =
    if plain_cols <> [] && chance st (if has_agg then 0.7 else 0.2) then
      [ List.hd plain_cols ]
    else []
  in
  (* HAVING only on grouped/aggregated queries *)
  let having =
    if (group_by <> [] && chance st 0.4) || (has_agg && group_by = [] && chance st 0.15)
    then
      let p =
        if chance st 0.6 then
          { pr_agg = Some Count; pr_col = None;
            pr_rhs = Cmp (pick_list st [ Eq; Lt; Le; Gt; Ge ], Value.Int (rint st 0 4)) }
        else
          let numeric =
            List.filter (fun c -> c.Schema.col_type = Datatype.Number) cols
          in
          match numeric with
          | [] ->
              { pr_agg = Some Count; pr_col = None; pr_rhs = Cmp (Ge, Value.Int 1) }
          | _ ->
              let c = pick_list st numeric in
              { pr_agg = Some (pick_list st [ Sum; Avg; Min; Max ]);
                pr_col = Some (col c.Schema.col_table c.Schema.col_name);
                pr_rhs = Cmp (pick_list st [ Lt; Le; Gt; Ge ], Value.Int (rint st 0 60)) }
      in
      Some { c_preds = [ p ]; c_conn = And }
    else None
  in
  let aggregated = has_agg || group_by <> [] || having <> None in
  (* ORDER BY *)
  let order_by =
    if not (chance st 0.4) then []
    else
      let dir = if chance st 0.5 then Asc else Desc in
      if aggregated then
        let p = pick_list st projs in
        [ { o_agg = p.p_agg; o_col = p.p_col; o_dir = dir } ]
      else
        let c = pick_col () in
        [ { o_agg = None; o_col = Some (col c.Schema.col_table c.Schema.col_name); o_dir = dir } ]
  in
  let limit = if order_by <> [] && chance st 0.4 then Some (rint st 1 5) else if chance st 0.1 then Some (rint st 1 5) else None in
  {
    q_distinct = (not has_agg) && chance st 0.15;
    q_select = projs;
    q_from = from;
    q_where = where;
    q_group_by = group_by;
    q_having = having;
    q_order_by = order_by;
    q_limit = limit;
  }

(* --- random TSQ: derived from the query's true result, then sometimes
   mutated into a deliberately wrong sketch --- *)

let mutate_cell = function
  | Tsq.Exact (Value.Int v) -> Tsq.Exact (Value.Int (v + 13))
  | Tsq.Exact (Value.Text s) -> Tsq.Exact (Value.Text (s ^ "x"))
  | (Tsq.Exact (Value.Null | Value.Float _) | Tsq.Any | Tsq.Range _) as c -> c

let gen_tsq st db q =
  match Reference.run db q with
  | Error _ -> Tsq.empty
  | Ok res ->
      let types = List.map snd res.Duoengine.Executor.res_cols in
      let rows = res.Duoengine.Executor.res_rows in
      let tuples =
        if rows = [] || chance st 0.25 then []
        else begin
          let n = List.length rows in
          let i1 = Random.State.int st n in
          let idxs =
            if n >= 2 && chance st 0.7 then
              let i2 = Random.State.int st n in
              if i1 = i2 then [ i1 ] else List.sort compare [ i1; i2 ]
            else [ i1 ]
          in
          List.map
            (fun i ->
              Array.to_list
                (Array.map
                   (fun v ->
                     if Value.is_null v || chance st 0.2 then Tsq.Any
                     else if Value.is_numeric v && chance st 0.15 then
                       let f = int_of_float (Value.to_float v) in
                       Tsq.Range (Value.Int (f - 2), Value.Int (f + 3))
                     else Tsq.Exact v)
                   (List.nth rows i)))
            idxs
        end
      in
      let sorted = q.q_order_by <> [] || chance st 0.1 in
      let limit =
        match q.q_limit with
        | Some n -> if chance st 0.7 then n + rint st 0 2 else max 1 (n - 1)
        | None -> if chance st 0.1 then rint st 1 3 else 0
      in
      (* mutations: deliberately wrong sketches exercise the pruning
         paths; soundness is about stage consistency, not satisfiability *)
      let tuples =
        if tuples <> [] && chance st 0.3 then
          match tuples with
          | t0 :: rest -> List.map mutate_cell t0 :: rest
          | [] -> tuples
        else tuples
      in
      let negatives =
        if rows <> [] && chance st 0.2 then
          [ Array.to_list (Array.map (fun v -> Tsq.Exact v) (List.hd rows)) ]
        else []
      in
      let min_support =
        if List.length tuples >= 2 && chance st 0.3 then Some 1 else None
      in
      Tsq.make ~types ~tuples ~sorted ~limit ~negatives ?min_support ()

let gen_scenario st =
  let schema = gen_schema st in
  let db = gen_db st schema in
  let q = gen_query st db in
  { sc_db = db; sc_query = q; sc_tsq = gen_tsq st db q }

(* --- deterministic literal seeding for guidance contexts --- *)

(* The guidance model only proposes predicate values drawn from the NLQ's
   literal set; hand it a few values from the database (plus the query's
   own literals, added by callers) so WHERE/HAVING branches are populated. *)
let seed_literals db =
  let schema = Database.schema db in
  let texts = ref [] and nums = ref [] in
  List.iter
    (fun (tbl : Schema.table) ->
      let t = Database.table_exn db tbl.Schema.tbl_name in
      List.iter
        (fun (c : Schema.column) ->
          Array.iter
            (fun v ->
              match v with
              | Value.Text _ when List.length !texts < 2 && not (List.mem v !texts) ->
                  texts := !texts @ [ v ]
              | Value.Int _ when List.length !nums < 3 && not (List.mem v !nums) ->
                  nums := !nums @ [ v ]
              | Value.Null | Value.Int _ | Value.Float _ | Value.Text _ -> ())
            (Duodb.Table.column_array t c.Schema.col_name))
        tbl.Schema.tbl_columns)
    schema.Schema.tables;
  !texts @ !nums

(* --- printing and shrinking --- *)

let print_scenario sc =
  let schema = Database.schema sc.sc_db in
  let sizes =
    String.concat ", "
      (List.map
         (fun (t : Schema.table) ->
           Printf.sprintf "%s:%d rows" t.Schema.tbl_name
             (Duodb.Table.row_count (Database.table_exn sc.sc_db t.Schema.tbl_name)))
         schema.Schema.tables)
  in
  Printf.sprintf "db {%s}\nquery: %s\ntsq: %s" sizes
    (Duosql.Pretty.query sc.sc_query)
    (Format.asprintf "%a" Tsq.pp sc.sc_tsq)

(* Query shrinking: drop clauses one at a time, then try truncating the
   join path to a prefix that still covers every referenced table.  The
   database and sketch stay fixed so a failing case stays failing for the
   same reason. *)
let shrink_query (q : query) =
  let drop_clauses =
    (if q.q_limit <> None then [ { q with q_limit = None } ] else [])
    @ (if q.q_order_by <> [] then [ { q with q_order_by = [] } ] else [])
    @ (if q.q_having <> None then [ { q with q_having = None } ] else [])
    @ (if q.q_group_by <> [] then [ { q with q_group_by = [] } ] else [])
    @ (if q.q_distinct then [ { q with q_distinct = false } ] else [])
    @ (match q.q_where with
      | None -> []
      | Some { c_preds = [ _ ]; _ } -> [ { q with q_where = None } ]
      | Some cond ->
          List.mapi
            (fun i _ ->
              { q with
                q_where =
                  Some
                    { cond with
                      c_preds = List.filteri (fun j _ -> j <> i) cond.c_preds } })
            cond.c_preds)
    @ (if List.length q.q_select > 1 then
         [ { q with
             q_select = List.filteri (fun i _ -> i < List.length q.q_select - 1) q.q_select } ]
       else [])
  in
  let table_prefixes =
    let n = List.length q.q_from.f_tables in
    List.filter_map
      (fun k ->
        let tables = List.filteri (fun i _ -> i < k) q.q_from.f_tables in
        let q' =
          { q with
            q_from =
              { f_tables = tables;
                f_joins = List.filteri (fun i _ -> i < k - 1) q.q_from.f_joins } }
        in
        if List.for_all (fun t -> List.mem t tables) (referenced_tables q') then
          Some q'
        else None)
      (List.init (max 0 (n - 1)) (fun i -> i + 1))
  in
  drop_clauses @ table_prefixes

let shrink_tsq (t : Tsq.t) =
  (if t.Tsq.negatives <> [] then [ { t with Tsq.negatives = [] } ] else [])
  @ (match t.Tsq.tuples with
    | [] -> []
    | _ :: rest -> [ { t with Tsq.tuples = rest } ])
  @ (if t.Tsq.min_support <> None then [ { t with Tsq.min_support = None } ] else [])

let shrink_scenario sc yield =
  List.iter
    (fun q -> yield { sc with sc_query = q })
    (shrink_query sc.sc_query);
  List.iter
    (fun t -> yield { sc with sc_tsq = t })
    (shrink_tsq sc.sc_tsq)

let arb_scenario =
  QCheck.make ~print:print_scenario ~shrink:shrink_scenario gen_scenario
