module Tsq = Duocore.Tsq
module Value = Duodb.Value
module Executor = Duoengine.Executor

(* The four fuzz properties, parameterized by an iteration-count
   multiplier: [tests ()] is the small seeded set wired into the default
   test runner, [tests ~mult:50 ()] is a long fuzz run (the [@fuzz]
   alias). *)

let resultsets_agree (a : Executor.resultset) (b : Executor.resultset) =
  a.Executor.res_cols = b.Executor.res_cols
  && List.length a.Executor.res_rows = List.length b.Executor.res_rows
  && List.for_all2
       (fun ra rb ->
         Array.length ra = Array.length rb
         && List.for_all2 Value.equal (Array.to_list ra) (Array.to_list rb))
       a.Executor.res_rows b.Executor.res_rows

(* planner-on = planner-off = naive reference interpreter *)
let differential_prop (sc : Gen.scenario) =
  let on = Executor.run ~planner:true sc.Gen.sc_db sc.Gen.sc_query in
  let off = Executor.run ~planner:false sc.Gen.sc_db sc.Gen.sc_query in
  let oracle = Reference.run sc.Gen.sc_db sc.Gen.sc_query in
  match (on, off, oracle) with
  | Ok a, Ok b, Ok c -> resultsets_agree a b && resultsets_agree a c
  | Error _, Error _, Error _ -> true
  | _ -> false

(* parse (pretty q) = q *)
let roundtrip_prop (sc : Gen.scenario) =
  let sql = Duosql.Pretty.query sc.Gen.sc_query in
  match
    Duosql.Parser.query ~schema:(Duodb.Database.schema sc.Gen.sc_db) sql
  with
  | Ok q' -> Duosql.Equal.queries sc.Gen.sc_query q'
  | Error _ -> false

(* Guidance context for a scenario: the query's own literals plus a few
   database values, so the model's WHERE/HAVING branches are populated. *)
let ctx_of (sc : Gen.scenario) =
  let lits =
    Duosql.Ast.literals sc.Gen.sc_query @ Gen.seed_literals sc.Gen.sc_db
  in
  let nlq = Duonl.Nlq.with_literals "find the matching rows" lits in
  Duoguide.Model.make (Duodb.Database.schema sc.Gen.sc_db) nlq

(* no Verify stage prunes a state with a satisfying completion *)
let soundness_prop (sc : Gen.scenario) =
  let ctx = ctx_of sc in
  let env =
    Duocore.Verify.make_env ~db:sc.Gen.sc_db ~tsq:(Some sc.Gen.sc_tsq)
      ~literals:[] ()
  in
  let hints = Duocore.Enumerate.hints_of_tsq sc.Gen.sc_tsq in
  match Soundness.check env ctx ~hints () with
  | [] -> true
  | v :: _ ->
      QCheck.Test.fail_reportf "%a" Soundness.pp_violation v

(* Property 1 (Section 3.3.3): each expansion partitions the parent's
   confidence mass — the children's confidences sum to the parent's.
   Join-path forks are exempt by design (siblings carry the parent's
   confidence; they fork the same decision point, not a distribution). *)
let property1_prop ((sc : Gen.scenario), seed) =
  let st = Random.State.make [| seed |] in
  let ctx = ctx_of sc in
  let guided = seed land 1 = 0 in
  let hints = Duocore.Enumerate.hints_of_tsq sc.Gen.sc_tsq in
  let eps = 1e-6 in
  let rec walk state steps =
    steps <= 0
    ||
    let children = Duocore.Enumerate.expand ~guided hints ctx state in
    match children with
    | [] -> true
    | _ ->
        let exempt =
          match state.Duocore.Partial.phase with
          | Duocore.Partial.P_joinpath _ | Duocore.Partial.P_done -> true
          | _ -> false
        in
        let sum =
          List.fold_left
            (fun acc c -> acc +. c.Duocore.Partial.confidence)
            0.0 children
        in
        let parent = state.Duocore.Partial.confidence in
        if (not exempt) && Float.abs (sum -. parent) > eps *. Float.max 1.0 parent
        then
          QCheck.Test.fail_reportf
            "children sum to %.9f but parent confidence is %.9f at %s" sum
            parent
            (Duocore.Partial.to_string state)
        else
          let next = List.nth children (Random.State.int st (List.length children)) in
          walk next (steps - 1)
  in
  walk Duocore.Partial.root 40

let arb_seeded =
  QCheck.make
    ~print:(fun (sc, seed) ->
      Printf.sprintf "seed %d\n%s" seed (Gen.print_scenario sc))
    ~shrink:(fun (sc, seed) yield ->
      Gen.shrink_scenario sc (fun sc' -> yield (sc', seed)))
    (fun st -> (Gen.gen_scenario st, Random.State.int st 1_000_000))

let tests ?(mult = 1) () =
  [
    QCheck.Test.make ~count:(60 * mult)
      ~name:"differential: planner-on = planner-off = reference"
      Gen.arb_scenario differential_prop;
    QCheck.Test.make ~count:(120 * mult)
      ~name:"round-trip: parse (pretty q) = q" Gen.arb_scenario roundtrip_prop;
    QCheck.Test.make ~count:(8 * mult)
      ~name:"cascade soundness: pruned states have no satisfying completion"
      Gen.arb_scenario soundness_prop;
    QCheck.Test.make ~count:(30 * mult)
      ~name:"Property 1: expansions partition confidence mass" arb_seeded
      property1_prop;
  ]
