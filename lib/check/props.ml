module Value = Duodb.Value
module Executor = Duoengine.Executor

(* The four fuzz properties, parameterized by an iteration-count
   multiplier: [tests ()] is the small seeded set wired into the default
   test runner, [tests ~mult:50 ()] is a long fuzz run (the [@fuzz]
   alias). *)

let resultsets_agree (a : Executor.resultset) (b : Executor.resultset) =
  a.Executor.res_cols = b.Executor.res_cols
  && List.length a.Executor.res_rows = List.length b.Executor.res_rows
  && List.for_all2
       (fun ra rb ->
         Array.length ra = Array.length rb
         && List.for_all2 Value.equal (Array.to_list ra) (Array.to_list rb))
       a.Executor.res_rows b.Executor.res_rows

(* planner-on = planner-off = naive reference interpreter *)
let differential_prop (sc : Gen.scenario) =
  let on = Executor.run ~planner:true sc.Gen.sc_db sc.Gen.sc_query in
  let off = Executor.run ~planner:false sc.Gen.sc_db sc.Gen.sc_query in
  let oracle = Reference.run sc.Gen.sc_db sc.Gen.sc_query in
  match (on, off, oracle) with
  | Ok a, Ok b, Ok c -> resultsets_agree a b && resultsets_agree a c
  | Error _, Error _, Error _ -> true
  | (Ok _ | Error _), (Ok _ | Error _), (Ok _ | Error _) -> false

(* parse (pretty q) = q *)
let roundtrip_prop (sc : Gen.scenario) =
  let sql = Duosql.Pretty.query sc.Gen.sc_query in
  match
    Duosql.Parser.query ~schema:(Duodb.Database.schema sc.Gen.sc_db) sql
  with
  | Ok q' -> Duosql.Equal.queries sc.Gen.sc_query q'
  | Error _ -> false

(* Columnar storage = row reference: every derived columnar view of a
   generated database — single cells, column vectors, per-block zone
   maps — agrees with the materialized row view, and the probe kernels
   answer exactly like a scalar row scan under the verifier's cell
   semantics ([Value.equal] membership; [Value.compare] ranges skipping
   NULLs). *)
let columnar_prop (sc : Gen.scenario) =
  let module Table = Duodb.Table in
  let module Schema = Duodb.Schema in
  let db = sc.Gen.sc_db in
  let schema = Duodb.Database.schema db in
  List.for_all
    (fun (tdef : Schema.table) ->
      let tbl = Duodb.Database.table_exn db tdef.Schema.tbl_name in
      let rows = Table.rows tbl in
      let n = Table.row_count tbl in
      List.for_all
        (fun (c : Schema.column) ->
          let j = Table.column_index tbl c.Schema.col_name in
          let colv = Table.column_array tbl c.Schema.col_name in
          let cells_ok =
            Array.length colv = n
            &&
            let ok = ref true in
            for i = 0 to n - 1 do
              if
                (not (Value.equal colv.(i) rows.(i).(j)))
                || not (Value.equal (Table.value_at tbl ~col:j ~row:i) rows.(i).(j))
              then ok := false
            done;
            !ok
          in
          let zones_ok =
            let ok = ref true in
            for b = 0 to Table.num_blocks tbl - 1 do
              let lo = b * Table.block
              and hi = min n ((b + 1) * Table.block) - 1 in
              let zref = ref None in
              for i = lo to hi do
                let v = rows.(i).(j) in
                if not (Value.is_null v) then
                  zref :=
                    (match !zref with
                    | None -> Some (v, v)
                    | Some (mn, mx) ->
                        Some
                          ( (if Value.compare v mn < 0 then v else mn),
                            if Value.compare v mx > 0 then v else mx ))
              done;
              match (Table.zone tbl ~col:j ~blk:b, !zref) with
              | None, None -> ()
              | Some (zlo, zhi), Some (rlo, rhi) ->
                  if not (Value.equal zlo rlo && Value.equal zhi rhi) then
                    ok := false
              | None, Some _ | Some _, None -> ok := false
            done;
            !ok
          in
          (* Probe pool: a few distinct column values plus values surely
             absent, NULL included (Exact-cell probes match NULL cells). *)
          let probes =
            Value.Null :: Value.Text "duocheck-absent" :: Value.Float 999983.5
            :: List.filteri
                 (fun i _ -> i < 8)
                 (List.sort_uniq Value.compare (Array.to_list colv))
          in
          let probe_ok =
            List.for_all
              (fun (v, r) ->
                r = Table.exists (fun row -> Value.equal row.(j) v) tbl)
              (Duoengine.Kernel.probe_exists tbl ~col:j probes)
          in
          let rprobes = List.filteri (fun i _ -> i < 5) probes in
          let range_ok =
            List.for_all
              (fun lo ->
                List.for_all
                  (fun hi ->
                    Duoengine.Kernel.probe_range tbl ~col:j lo hi
                    = Table.exists
                        (fun row ->
                          let v = row.(j) in
                          (not (Value.is_null v))
                          && Value.compare lo v <= 0
                          && Value.compare v hi <= 0)
                        tbl)
                  rprobes)
              rprobes
          in
          cells_ok && zones_ok && probe_ok && range_ok
          || QCheck.Test.fail_reportf
               "columnar mismatch on %s.%s (cells %b zones %b probe %b range %b)"
               tdef.Schema.tbl_name c.Schema.col_name cells_ok zones_ok
               probe_ok range_ok)
        tdef.Schema.tbl_columns)
    schema.Schema.tables

(* run_batch = run, query by query: batching shared base scans is purely
   executional.  The batch mixes the scenario's own (possibly joining)
   query with simple single-table probes over every column — several per
   table, so the shared-scan grouping path is actually taken. *)
let batch_prop (sc : Gen.scenario) =
  let open Duosql.Ast in
  let db = sc.Gen.sc_db in
  let schema = Duodb.Database.schema db in
  let probes =
    List.concat_map
      (fun (t : Duodb.Schema.table) ->
        let tbl = Duodb.Database.table_exn db t.Duodb.Schema.tbl_name in
        List.concat_map
          (fun (c : Duodb.Schema.column) ->
            let cr = col t.Duodb.Schema.tbl_name c.Duodb.Schema.col_name in
            let base =
              {
                q_distinct = false;
                q_select = [ { p_agg = None; p_col = Some cr; p_distinct = false } ];
                q_from = from_table t.Duodb.Schema.tbl_name;
                q_where = None;
                q_group_by = [];
                q_having = None;
                q_order_by = [];
                q_limit = None;
              }
            in
            let with_pred rhs =
              { base with
                q_where =
                  Some
                    { c_preds = [ { pr_agg = None; pr_col = Some cr; pr_rhs = rhs } ];
                      c_conn = And } }
            in
            base
            :: (match
                  Array.find_opt
                    (fun v -> not (Value.is_null v))
                    (Duodb.Table.column_array tbl c.Duodb.Schema.col_name)
                with
               | Some v -> [ with_pred (Cmp (Eq, v)); with_pred (Cmp (Le, v)) ]
               | None -> []))
          t.Duodb.Schema.tbl_columns)
      schema.Duodb.Schema.tables
  in
  let qs = Array.of_list (sc.Gen.sc_query :: probes) in
  let batched, _report = Executor.run_batch db qs in
  let ok = ref true in
  Array.iteri
    (fun i q ->
      match (batched.(i), Executor.run db q) with
      | Ok a, Ok b -> if not (resultsets_agree a b) then ok := false
      | Error ea, Error eb -> if ea <> eb then ok := false
      | Ok _, Error _ | Error _, Ok _ -> ok := false)
    qs;
  !ok

(* Guidance context for a scenario: the query's own literals plus a few
   database values, so the model's WHERE/HAVING branches are populated. *)
let ctx_of (sc : Gen.scenario) =
  let lits =
    Duosql.Ast.literals sc.Gen.sc_query @ Gen.seed_literals sc.Gen.sc_db
  in
  let nlq = Duonl.Nlq.with_literals "find the matching rows" lits in
  Duoguide.Model.make (Duodb.Database.schema sc.Gen.sc_db) nlq

(* no Verify stage prunes a state with a satisfying completion *)
let soundness_prop (sc : Gen.scenario) =
  let ctx = ctx_of sc in
  let env =
    Duocore.Verify.make_env ~db:sc.Gen.sc_db ~tsq:(Some sc.Gen.sc_tsq)
      ~literals:[] ()
  in
  let hints = Duocore.Enumerate.hints_of_tsq sc.Gen.sc_tsq in
  match Soundness.check env ctx ~hints () with
  | [] -> true
  | v :: _ ->
      QCheck.Test.fail_reportf "%a" Soundness.pp_violation v

(* Property 1 (Section 3.3.3): each expansion partitions the parent's
   confidence mass — the children's confidences sum to the parent's.
   Join-path forks are exempt by design (siblings carry the parent's
   confidence; they fork the same decision point, not a distribution). *)
let property1_prop ((sc : Gen.scenario), seed) =
  let st = Random.State.make [| seed |] in
  let ctx = ctx_of sc in
  let guided = seed land 1 = 0 in
  let hints = Duocore.Enumerate.hints_of_tsq sc.Gen.sc_tsq in
  let eps = 1e-6 in
  let rec walk state steps =
    steps <= 0
    ||
    let children = Duocore.Enumerate.expand ~guided hints ctx state in
    match children with
    | [] -> true
    | _ ->
        let exempt =
          match state.Duocore.Partial.phase with
          | Duocore.Partial.P_joinpath _ | Duocore.Partial.P_done -> true
          | Duocore.Partial.P_keywords | Duocore.Partial.P_num_proj
          | Duocore.Partial.P_proj_target _ | Duocore.Partial.P_proj_agg _
          | Duocore.Partial.P_where_num | Duocore.Partial.P_where_col _
          | Duocore.Partial.P_where_op _ | Duocore.Partial.P_where_conn
          | Duocore.Partial.P_group_col | Duocore.Partial.P_having_presence
          | Duocore.Partial.P_having_pred | Duocore.Partial.P_order_target
          | Duocore.Partial.P_order_dir | Duocore.Partial.P_limit ->
              false
        in
        let sum =
          List.fold_left
            (fun acc c -> acc +. c.Duocore.Partial.confidence)
            0.0 children
        in
        let parent = state.Duocore.Partial.confidence in
        if (not exempt) && Float.abs (sum -. parent) > eps *. Float.max 1.0 parent
        then
          QCheck.Test.fail_reportf
            "children sum to %.9f but parent confidence is %.9f at %s" sum
            parent
            (Duocore.Partial.to_string state)
        else
          let next = List.nth children (Random.State.int st (List.length children)) in
          walk next (steps - 1)
  in
  walk Duocore.Partial.root 40

(* Duopar determinism: enumeration with worker domains is observably
   identical to the sequential run — same candidate queries in the same
   emission order, same pop/push counts, and the same per-stage prune
   counts.  This is the contract that makes [domains] a pure deployment
   knob (DESIGN.md, "Duopar"): speculation must never leak into results
   or accounting.  Seed picks the domain count (2..5) and whether
   partial-query pruning is on. *)
let parallel_determinism_prop ((sc : Gen.scenario), seed) =
  let ctx = ctx_of sc in
  let domains = 2 + (seed mod 4) in
  let prune_partial = seed land 1 = 0 in
  let run domains =
    let config =
      { Duocore.Enumerate.default_config with
        Duocore.Enumerate.max_pops = 600;
        max_candidates = 10;
        time_budget_s = 20.0;
        prune_partial;
        domains;
        (* exercise the speculative machinery even on one core *)
        overcommit = true }
    in
    Duocore.Enumerate.run config ctx sc.Gen.sc_db ~tsq:(Some sc.Gen.sc_tsq)
      ~literals:[] ()
  in
  let seq = run 1 in
  let par = run domains in
  let sigs (o : Duocore.Enumerate.outcome) =
    List.map
      (fun (c : Duocore.Enumerate.candidate) ->
        (Duosql.Pretty.query c.Duocore.Enumerate.cand_query,
         c.Duocore.Enumerate.cand_pops))
      o.Duocore.Enumerate.out_candidates
  in
  let prunes (o : Duocore.Enumerate.outcome) =
    List.map
      (Duocore.Verify.pruned_by o.Duocore.Enumerate.out_stats)
      Duocore.Verify.all_stages
  in
  if sigs seq <> sigs par then
    QCheck.Test.fail_reportf
      "candidates diverge at domains=%d:\nseq: %s\npar: %s" domains
      (String.concat " | " (List.map fst (sigs seq)))
      (String.concat " | " (List.map fst (sigs par)))
  else if
    seq.Duocore.Enumerate.out_pops <> par.Duocore.Enumerate.out_pops
    || seq.Duocore.Enumerate.out_pushed <> par.Duocore.Enumerate.out_pushed
  then
    QCheck.Test.fail_reportf
      "loop accounting diverges at domains=%d: pops %d/%d pushes %d/%d"
      domains seq.Duocore.Enumerate.out_pops par.Duocore.Enumerate.out_pops
      seq.Duocore.Enumerate.out_pushed par.Duocore.Enumerate.out_pushed
  else if prunes seq <> prunes par then
    QCheck.Test.fail_reportf "prune counts diverge at domains=%d" domains
  else true

(* Adaptive determinism (Duopar v2): the speculation round size is a pure
   performance knob.  Whatever the controller does — the AIMD law, the
   fixed v1 round, or a seed-derived adversarial [spec_schedule]
   thrashing between the floor and past the ceiling — and whether the
   task arena is on or off, the candidates, loop accounting and prune
   counts are bit-identical to the sequential run.  This is the contract
   that lets the controller adapt freely at runtime. *)
let adaptive_determinism_prop ((sc : Gen.scenario), seed) =
  let ctx = ctx_of sc in
  let domains = 2 + (seed mod 3) in
  (* adversarial schedule: seed-derived sizes in [-1, 30], thrashing
     through floor-degenerate rounds and ceiling clamps *)
  let schedule i = (((seed / 4) + (i * 7)) mod 32) - 1 in
  let run config =
    Duocore.Enumerate.run config ctx sc.Gen.sc_db ~tsq:(Some sc.Gen.sc_tsq)
      ~literals:[] ()
  in
  let base =
    { Duocore.Enumerate.default_config with
      Duocore.Enumerate.max_pops = 400;
      max_candidates = 10;
      time_budget_s = 20.0;
      overcommit = true }
  in
  let seq = run { base with Duocore.Enumerate.domains = 1 } in
  let regimes =
    [
      ("adaptive", { base with Duocore.Enumerate.domains });
      ("fixed", { base with Duocore.Enumerate.domains; spec_adaptive = false });
      ( "adversarial",
        { base with
          Duocore.Enumerate.domains;
          spec_schedule = Some schedule } );
      ( "no-arena",
        { base with
          Duocore.Enumerate.domains;
          spec_schedule = Some schedule;
          arena = false } );
    ]
  in
  let sigs (o : Duocore.Enumerate.outcome) =
    List.map
      (fun (c : Duocore.Enumerate.candidate) ->
        (Duosql.Pretty.query c.Duocore.Enumerate.cand_query,
         c.Duocore.Enumerate.cand_pops))
      o.Duocore.Enumerate.out_candidates
  in
  let prunes (o : Duocore.Enumerate.outcome) =
    List.map
      (Duocore.Verify.pruned_by o.Duocore.Enumerate.out_stats)
      Duocore.Verify.all_stages
  in
  List.for_all
    (fun (name, config) ->
      let par = run config in
      if sigs seq <> sigs par then
        QCheck.Test.fail_reportf
          "%s schedule diverges at domains=%d:\nseq: %s\npar: %s" name domains
          (String.concat " | " (List.map fst (sigs seq)))
          (String.concat " | " (List.map fst (sigs par)))
      else if
        seq.Duocore.Enumerate.out_pops <> par.Duocore.Enumerate.out_pops
        || seq.Duocore.Enumerate.out_pushed <> par.Duocore.Enumerate.out_pushed
      then
        QCheck.Test.fail_reportf
          "%s schedule: loop accounting diverges at domains=%d" name domains
      else if prunes seq <> prunes par then
        QCheck.Test.fail_reportf
          "%s schedule: prune counts diverge at domains=%d" name domains
      else true)
    regimes

(* Resume determinism: a run paused via [Enumerate.step] after any number
   of pops and resumed later is observably identical to the uninterrupted
   [run] — same candidates in the same order, same pop/push counts, same
   per-stage prunes, same exhaustion flag.  This is the contract Duoserve
   time-slicing rests on: the scheduler may suspend a session at any
   slice boundary without changing what it computes.  Seed picks the
   slice size (1..12), the domain count (1..3) and whether partial-query
   pruning is on. *)
let resume_determinism_prop ((sc : Gen.scenario), seed) =
  let ctx = ctx_of sc in
  let slice = 1 + (seed mod 12) in
  let domains = 1 + (seed / 12 mod 3) in
  let prune_partial = seed land 1 = 0 in
  let config =
    { Duocore.Enumerate.default_config with
      Duocore.Enumerate.max_pops = 400;
      max_candidates = 10;
      time_budget_s = 20.0;
      prune_partial;
      domains;
      overcommit = true }
  in
  let full =
    Duocore.Enumerate.run config ctx sc.Gen.sc_db ~tsq:(Some sc.Gen.sc_tsq)
      ~literals:[] ()
  in
  let st =
    Duocore.Enumerate.init config ctx sc.Gen.sc_db ~tsq:(Some sc.Gen.sc_tsq)
      ~literals:[] ()
  in
  let stepped =
    Fun.protect
      ~finally:(fun () -> Duocore.Enumerate.release st)
      (fun () ->
        let rec go () =
          match Duocore.Enumerate.step ~max_pops:slice st with
          | Duocore.Enumerate.Running -> go ()
          | Duocore.Enumerate.Finished -> Duocore.Enumerate.outcome st
        in
        go ())
  in
  let sigs (o : Duocore.Enumerate.outcome) =
    List.map
      (fun (c : Duocore.Enumerate.candidate) ->
        (Duosql.Pretty.query c.Duocore.Enumerate.cand_query,
         c.Duocore.Enumerate.cand_pops))
      o.Duocore.Enumerate.out_candidates
  in
  let prunes (o : Duocore.Enumerate.outcome) =
    List.map
      (Duocore.Verify.pruned_by o.Duocore.Enumerate.out_stats)
      Duocore.Verify.all_stages
  in
  if sigs full <> sigs stepped then
    QCheck.Test.fail_reportf
      "candidates diverge at slice=%d domains=%d:\nrun:  %s\nstep: %s" slice
      domains
      (String.concat " | " (List.map fst (sigs full)))
      (String.concat " | " (List.map fst (sigs stepped)))
  else if
    full.Duocore.Enumerate.out_pops <> stepped.Duocore.Enumerate.out_pops
    || full.Duocore.Enumerate.out_pushed <> stepped.Duocore.Enumerate.out_pushed
  then
    QCheck.Test.fail_reportf
      "loop accounting diverges at slice=%d: pops %d/%d pushes %d/%d" slice
      full.Duocore.Enumerate.out_pops stepped.Duocore.Enumerate.out_pops
      full.Duocore.Enumerate.out_pushed stepped.Duocore.Enumerate.out_pushed
  else if prunes full <> prunes stepped then
    QCheck.Test.fail_reportf "prune counts diverge at slice=%d" slice
  else if
    full.Duocore.Enumerate.out_exhausted
    <> stepped.Duocore.Enumerate.out_exhausted
    || full.Duocore.Enumerate.out_dropped
       <> stepped.Duocore.Enumerate.out_dropped
  then QCheck.Test.fail_reportf "exhaustion accounting diverges at slice=%d" slice
  else true

(* --- Incremental refinement ----------------------------------------- *)

(* A seeded tightening edit of a sketch: append a duplicate example (when
   full support is already demanded), add a negative built from a
   perturbed example row, or toggle the sorted flag on (the always-legal
   fallback).  [Tsq.refines] must classify every one as a tightening. *)
let neg_cell = function
  | Duocore.Tsq.Exact (Value.Int v) -> Duocore.Tsq.Exact (Value.Int (v + 13))
  | Duocore.Tsq.Exact (Value.Text s) ->
      Duocore.Tsq.Exact (Value.Text (s ^ "x"))
  | Duocore.Tsq.Exact (Value.Null | Value.Float _)
  | Duocore.Tsq.Any | Duocore.Tsq.Range _ ->
      Duocore.Tsq.Exact (Value.Text "duocheck-neg")

let tighten_tsq (t : Duocore.Tsq.t) seed =
  let module Tsq = Duocore.Tsq in
  let full_support =
    t.Tsq.tuples <> [] && Tsq.required_support t = List.length t.Tsq.tuples
  in
  match seed mod 3 with
  | 0 when full_support ->
      { t with
        Tsq.tuples = t.Tsq.tuples @ [ List.hd t.Tsq.tuples ];
        min_support = None }
  | 1 when t.Tsq.tuples <> [] ->
      Tsq.add_negative t (List.map neg_cell (List.hd t.Tsq.tuples))
  | _ -> { t with Tsq.sorted = true }

(* Tightening monotonicity: every state the cascade prunes under the old
   sketch stays pruned under the tightened one — the contract that lets
   [Enumerate.rebase] keep the visited set and re-check only survivors.
   Walks a random derivation and compares full-cascade verdicts under
   both sketches at every state (pruned or not). *)
let refine_monotone_prop ((sc : Gen.scenario), seed) =
  let old_t = sc.Gen.sc_tsq in
  let new_t = tighten_tsq old_t seed in
  if Duocore.Tsq.refines ~old:old_t ~new_:new_t <> Duocore.Tsq.Tightening then
    QCheck.Test.fail_reportf "seeded edit did not classify as a tightening"
  else begin
    let ctx = ctx_of sc in
    let env_old =
      Duocore.Verify.make_env ~db:sc.Gen.sc_db ~tsq:(Some old_t) ~literals:[] ()
    in
    let env_new =
      Duocore.Verify.make_env ~db:sc.Gen.sc_db ~tsq:(Some new_t) ~literals:[] ()
    in
    (* header edits are Incomparable, so old and new hints coincide *)
    let hints = Duocore.Enumerate.hints_of_tsq old_t in
    let st = Random.State.make [| seed |] in
    let rec walk state steps =
      steps <= 0
      ||
      let old_ok = Duocore.Verify.verify env_old state in
      let new_ok = Duocore.Verify.verify env_new state in
      if new_ok && not old_ok then
        QCheck.Test.fail_reportf "tightened sketch revived a pruned state: %s"
          (Duocore.Partial.to_string state)
      else
        match Duocore.Enumerate.expand ~guided:true hints ctx state with
        | [] -> true
        | children ->
            walk
              (List.nth children (Random.State.int st (List.length children)))
              (steps - 1)
    in
    walk Duocore.Partial.root 40
  end

(* Incremental re-synthesis = from-root restart: loosen the scenario's
   sketch (first example only, unsorted, no negatives), enumerate under
   the loose sketch for a random number of pops, [rebase] onto the
   original, finish — and compare against an uninterrupted run under the
   original sketch.  The pop budget is per refinement by design, so when
   the cold run is stopped by its pop budget the warm run may legally
   emit more: the cold candidate list must then be a strict prefix. *)
let incremental_refine_prop ((sc : Gen.scenario), seed) =
  let module Tsq = Duocore.Tsq in
  let module E = Duocore.Enumerate in
  let new_t = { sc.Gen.sc_tsq with Tsq.min_support = None } in
  let old_t =
    { new_t with
      Tsq.tuples =
        (match new_t.Tsq.tuples with [] -> [] | t :: _ -> [ t ]);
      sorted = false;
      negatives = [] }
  in
  if Tsq.refines ~old:old_t ~new_:new_t <> Tsq.Tightening then
    QCheck.Test.fail_reportf "loosened sketch is not refined by the original"
  else begin
    let ctx = ctx_of sc in
    let config =
      { E.default_config with
        E.max_pops = 1_500;
        max_candidates = 5;
        time_budget_s = 20.0 }
    in
    let cold = E.run config ctx sc.Gen.sc_db ~tsq:(Some new_t) ~literals:[] () in
    let st = E.init config ctx sc.Gen.sc_db ~tsq:(Some old_t) ~literals:[] () in
    let warm =
      Fun.protect
        ~finally:(fun () -> E.release st)
        (fun () ->
          ignore (E.step ~max_pops:(1 + (seed mod 40)) st);
          E.rebase st ~tsq:new_t;
          let rec go () =
            match E.step st with E.Running -> go () | E.Finished -> ()
          in
          go ();
          E.outcome st)
    in
    let sqls (o : E.outcome) =
      List.map
        (fun (c : E.candidate) -> Duosql.Pretty.query c.E.cand_query)
        o.E.out_candidates
    in
    let rec is_prefix xs ys =
      match (xs, ys) with
      | [], _ -> true
      | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
      | _ :: _, [] -> false
    in
    let cs = sqls cold and ws = sqls warm in
    let cold_budget_bound = cold.E.out_pops >= config.E.max_pops in
    if not (is_prefix cs ws) then
      QCheck.Test.fail_reportf
        "incremental candidates diverge from the from-root run:\ncold: %s\nwarm: %s"
        (String.concat " | " cs) (String.concat " | " ws)
    else if (not cold_budget_bound) && cs <> ws then
      QCheck.Test.fail_reportf
        "warm run emitted extra candidates without a cold budget bound:\ncold: %s\nwarm: %s"
        (String.concat " | " cs) (String.concat " | " ws)
    else if warm.E.out_rebases <> 1 then
      QCheck.Test.fail_reportf "expected exactly one rebase, saw %d"
        warm.E.out_rebases
    else true
  end

(* --- Duolint error soundness ---------------------------------------- *)

(* A query Duolint rejects as an {e error} can never be a correct intent.
   What "never correct" means is observable per rule class:

   - reference rules (unknown table/column, broken FROM): the reference
     interpreter refuses to execute the query;
   - intent rules (type errors, grouping violations): the Table 4 semantic
     catalogue rejects the query — these can {e execute} (e.g. [Neq] with a
     mismatched literal is true on every row), the error is about meaning;
   - emptiness rules (unsatisfiable predicates, nonpositive limit): the
     query admits no rows, so no TSQ derived from a true answer matches.
     Contradictory WHERE is checked on a stripped row query because
     aggregates over the empty set still emit one row (a zero COUNT).

   Each fuzz case seeds one fault from a catalog into a generated valid
   query, asserts Duolint catches it, and then checks {e every} emitted
   error diagnostic against its rule class's consequence. *)

module Lint = Duolint.Analyze
module Diag = Duolint.Diagnostic

let from_columns schema (q : Duosql.Ast.query) =
  List.concat_map
    (fun t ->
      match Duodb.Schema.find_table schema t with
      | Some tbl ->
          List.map
            (fun c ->
              ( Duosql.Ast.col t c.Duodb.Schema.col_name,
                c.Duodb.Schema.col_type ))
            tbl.Duodb.Schema.tbl_columns
      | None -> [])
    q.Duosql.Ast.q_from.Duosql.Ast.f_tables

let values_for = function
  | Duodb.Datatype.Number -> (Value.Int 1, Value.Int 2)
  | Duodb.Datatype.Text -> (Value.Text "a", Value.Text "b")

let plain_pred c rhs = { Duosql.Ast.pr_agg = None; pr_col = Some c; pr_rhs = rhs }

let with_where (q : Duosql.Ast.query) preds =
  { q with
    Duosql.Ast.q_where =
      Some { Duosql.Ast.c_preds = preds; c_conn = Duosql.Ast.And } }

(* The seeded-fault catalog, keyed by [seed mod 7].  Returns the mutated
   query and the rule the fault must trip (identity seeds expect
   nothing — they exercise the consequence check on whatever fires). *)
let seed_fault (sc : Gen.scenario) seed =
  let open Duosql.Ast in
  let schema = Duodb.Database.schema sc.Gen.sc_db in
  let q = sc.Gen.sc_query in
  let cols = from_columns schema q in
  let has ty (_, ty') = Duodb.Datatype.equal ty ty' in
  match seed mod 7 with
  | 1 -> (
      match cols with
      | (c, ty) :: _ ->
          let v1, v2 = values_for ty in
          ( with_where q [ plain_pred c (Cmp (Eq, v1)); plain_pred c (Cmp (Eq, v2)) ],
            Some Diag.Unsatisfiable_where )
      | [] -> (q, None))
  | 2 -> (
      match cols with
      | (c, ty) :: _ ->
          let v1, _ = values_for ty in
          ( with_where q [ plain_pred c (Cmp (Eq, v1)); plain_pred c (Cmp (Neq, v1)) ],
            Some Diag.Unsatisfiable_where )
      | [] -> (q, None))
  | 3 -> (
      (* an ordering comparison on a text column, or LIKE on a number *)
      match List.find_opt (has Duodb.Datatype.Text) cols with
      | Some (c, _) ->
          ( with_where q [ plain_pred c (Cmp (Lt, Value.Int 3)) ],
            Some Diag.Comparison_type )
      | None -> (
          match cols with
          | (c, _) :: _ ->
              ( with_where q [ plain_pred c (Cmp (Like, Value.Text "x%")) ],
                Some Diag.Comparison_type )
          | [] -> (q, None)))
  | 4 -> (
      match q.q_from.f_tables with
      | t :: _ ->
          ( with_where q
              [ plain_pred (col t "duolint_no_such_column") (Cmp (Eq, Value.Int 1)) ],
            Some Diag.Unknown_column )
      | [] -> (q, None))
  | 5 -> ({ q with q_limit = Some 0 }, Some Diag.Nonpositive_limit)
  | 6 -> (
      match List.find_opt (has Duodb.Datatype.Number) cols with
      | Some (c, _) ->
          ( with_where q [ plain_pred c (Between (Value.Int 5, Value.Int 1)) ],
            Some Diag.Unsatisfiable_where )
      | None -> (q, None))
  | _ -> (q, None)

(* SELECT <one plain column> FROM ... WHERE <the suspect condition> —
   the row-level observation for a contradictory WHERE. *)
let unsat_where_probe (q : Duosql.Ast.query) =
  let open Duosql.Ast in
  let col =
    match List.filter_map (fun p -> p.pr_col) (match q.q_where with
      | Some c -> c.c_preds
      | None -> [])
    with
    | c :: _ -> Some c
    | [] -> None
  in
  Option.map
    (fun c ->
      { q with
        q_distinct = false;
        q_select = [ { p_agg = None; p_col = Some c; p_distinct = false } ];
        q_group_by = [];
        q_having = None;
        q_order_by = [];
        q_limit = None })
    col

let error_consequence db schema (q : Duosql.Ast.query) (d : Diag.t) =
  let sem_rejects () =
    Result.is_error (Duocore.Semantics.check_query schema q)
  in
  let fails_or_empty q' =
    match Reference.run db q' with
    | Error _ -> true
    | Ok r -> r.Executor.res_rows = []
  in
  match d.Diag.d_rule with
  | Diag.Unknown_table | Diag.Unknown_column | Diag.Table_not_joined
  | Diag.Disconnected_from ->
      Result.is_error (Reference.run db q)
  | Diag.Comparison_type | Diag.Ungrouped_aggregation
  | Diag.Projection_not_grouped | Diag.Unnecessary_group_by
  | Diag.Group_by_primary_key ->
      sem_rejects ()
  | Diag.Aggregate_type -> sem_rejects () || Result.is_error (Reference.run db q)
  | Diag.Nonpositive_limit -> fails_or_empty q
  | Diag.Unsatisfiable_where -> (
      match unsat_where_probe q with
      | Some probe -> fails_or_empty probe
      | None -> false (* the rule fired without a WHERE column: unsound *))
  | Diag.Unsatisfiable_having ->
      fails_or_empty { q with Duosql.Ast.q_order_by = []; q_limit = None }
  | Diag.Duplicate_predicate | Diag.Subsumed_predicate
  | Diag.Duplicate_projection | Diag.Self_join | Diag.Duplicate_join
  | Diag.Constant_output | Diag.Order_by_unprojected ->
      true (* warnings never prune; nothing to prove *)

let lint_soundness_prop ((sc : Gen.scenario), seed) =
  let schema = Duodb.Database.schema sc.Gen.sc_db in
  let q, expected = seed_fault sc seed in
  let errs = Lint.errors (Lint.check_query schema q) in
  (match expected with
  | Some rule when not (List.exists (fun d -> d.Diag.d_rule = rule) errs) ->
      QCheck.Test.fail_reportf "seeded fault %s escaped Duolint on %s"
        (Diag.rule_name rule)
        (Duosql.Pretty.query q)
  | Some _ | None -> ());
  List.for_all
    (fun d ->
      error_consequence sc.Gen.sc_db schema q d
      || QCheck.Test.fail_reportf "unsound diagnostic %a on %s" Diag.pp d
           (Duosql.Pretty.query q))
    errs

(* --- Duosem equivalence and cardinality ------------------------------ *)

module Duosem = Duolint.Duosem
module Domain = Duolint.Domain

(* Canonicalization is meaning-preserving: the canonical form of every
   generated query has the same error status and the same result
   multiset as the original on its database (row order may differ —
   canonicalization sorts the FROM clause, and the planner's table order
   is a legitimate tie-break) — and taking the canonical form again is a
   fixpoint, so [canonical_key] really is a key. *)
let duosem_equiv_prop (sc : Gen.scenario) =
  let q = sc.Gen.sc_query in
  let cq = Duosem.canonical_query q in
  if Duosem.canonical_key cq <> Duosem.canonical_key q then
    QCheck.Test.fail_reportf "canonicalization is not idempotent on %s"
      (Duosql.Pretty.query q)
  else
    let sorted_rows (r : Executor.resultset) =
      List.sort compare
        (List.map
           (fun row -> List.map Value.to_sql (Array.to_list row))
           r.Executor.res_rows)
    in
    match (Reference.run sc.Gen.sc_db q, Reference.run sc.Gen.sc_db cq) with
    | Ok a, Ok b ->
        (a.Executor.res_cols = b.Executor.res_cols
        && sorted_rows a = sorted_rows b)
        || QCheck.Test.fail_reportf
             "canonical form changes the result multiset:\n%s\n%s"
             (Duosql.Pretty.query q) (Duosql.Pretty.query cq)
    | Error _, Error _ -> true
    | Ok _, Error _ | Error _, Ok _ ->
        QCheck.Test.fail_reportf "canonical form changes the error status:\n%s\n%s"
          (Duosql.Pretty.query q) (Duosql.Pretty.query cq)

(* The abstract row-count interval contains the true count on every
   generated query that executes. *)
let duosem_card_prop (sc : Gen.scenario) =
  let q = sc.Gen.sc_query in
  let pre = Duosem.prepare (Duodb.Database.schema sc.Gen.sc_db) in
  let c = Duosem.bound_query pre q in
  match Reference.run sc.Gen.sc_db q with
  | Error _ -> true
  | Ok r ->
      let n = List.length r.Executor.res_rows in
      (c.Duosem.c_lo <= n
      && match c.Duosem.c_hi with None -> true | Some h -> n <= h)
      || QCheck.Test.fail_reportf "true count %d outside bound %s for %s" n
           (Duosem.card_to_string c) (Duosql.Pretty.query q)

(* --- Domain lattice laws --------------------------------------------- *)

let gen_lattice_value st =
  match Random.State.int st 6 with
  | 0 -> Value.Int (Random.State.int st 7 - 3)
  | 1 -> Value.Int (Random.State.int st 100)
  | 2 -> Value.Float (float_of_int (Random.State.int st 14 - 6) /. 2.0)
  | 3 -> Value.Text (String.make 1 (Char.chr (97 + Random.State.int st 4)))
  | 4 -> Value.Text "mm"
  | _ -> Value.Int 0

(* Normalized elements only: everything reachable from predicate
   abstractions through meets and joins — exactly the values the
   analyzer ever holds.  [Neq] seeds exclusion lists, equal-endpoint
   [Between] seeds points, reversed [Between] seeds [Bot]. *)
let rec gen_lattice_domain st depth =
  if depth <= 0 || Random.State.int st 3 = 0 then
    let v = gen_lattice_value st in
    let open Duosql.Ast in
    match Random.State.int st 8 with
    | 0 -> Domain.of_rhs (Cmp (Eq, v))
    | 1 -> Domain.of_rhs (Cmp (Neq, v))
    | 2 -> Domain.of_rhs (Cmp (Lt, v))
    | 3 -> Domain.of_rhs (Cmp (Le, v))
    | 4 -> Domain.of_rhs (Cmp (Gt, v))
    | 5 -> Domain.of_rhs (Cmp (Ge, v))
    | 6 -> Domain.of_rhs (Between (v, gen_lattice_value st))
    | _ -> Domain.top
  else
    let a = gen_lattice_domain st (depth - 1) in
    let b = gen_lattice_domain st (depth - 1) in
    if Random.State.bool st then Domain.meet a b else Domain.join a b

(* Lattice laws, checked against concrete membership on a probe pool:
   meet is exact intersection, join over-approximates union, [leq] is a
   partial order consistent with inclusion, and widening covers its next
   operand and stabilizes along randomized ascending chains. *)
let domain_lattice_prop seed =
  let st = Random.State.make [| seed |] in
  let probes = List.init 24 (fun _ -> gen_lattice_value st) in
  let a = gen_lattice_domain st 3 in
  let b = gen_lattice_domain st 3 in
  let c = gen_lattice_domain st 3 in
  let fail fmt = QCheck.Test.fail_reportf fmt in
  let mem_ok =
    List.for_all
      (fun v ->
        Domain.mem v (Domain.meet a b) = (Domain.mem v a && Domain.mem v b)
        && ((not (Domain.mem v a || Domain.mem v b))
           || Domain.mem v (Domain.join a b))
        && ((not (Domain.leq a b)) || not (Domain.mem v a) || Domain.mem v b))
      probes
  in
  if not mem_ok then fail "meet/join/leq disagree with membership"
  else if not (Domain.leq a a) then fail "leq is not reflexive"
  else if Domain.leq a b && Domain.leq b a && not (Domain.equal a b) then
    fail "leq is not antisymmetric"
  else if Domain.leq a b && Domain.leq b c && not (Domain.leq a c) then
    fail "leq is not transitive"
  else if not (Domain.leq a (Domain.join a b) && Domain.leq b (Domain.join a b))
  then fail "join is not an upper bound"
  else if
    not (Domain.leq (Domain.meet a b) a && Domain.leq (Domain.meet a b) b)
  then fail "meet is not a lower bound"
  else begin
    (* Randomized ascending chain: fold widening over successive joins.
       Each iterate must cover the next operand and grow monotonically;
       afterwards re-widening with every chain element is the identity —
       the chain has stabilized. *)
    let chain = List.init 20 (fun _ -> gen_lattice_domain st 2) in
    let w =
      List.fold_left
        (fun w d ->
          let next = Domain.join w d in
          let w' = Domain.widen w next in
          if not (Domain.leq next w') then
            fail "widen does not cover its next operand"
          else if not (Domain.leq w w') then fail "widen is not ascending"
          else w')
        (gen_lattice_domain st 2)
        chain
    in
    List.for_all
      (fun d ->
        Domain.equal (Domain.widen w (Domain.join w d)) w
        || fail "widened chain did not stabilize")
      chain
  end

let arb_seeded =
  QCheck.make
    ~print:(fun (sc, seed) ->
      Printf.sprintf "seed %d\n%s" seed (Gen.print_scenario sc))
    ~shrink:(fun (sc, seed) yield ->
      Gen.shrink_scenario sc (fun sc' -> yield (sc', seed)))
    (fun st -> (Gen.gen_scenario st, Random.State.int st 1_000_000))

let tests ?(mult = 1) () =
  [
    QCheck.Test.make ~count:(60 * mult)
      ~name:"differential: planner-on = planner-off = reference"
      Gen.arb_scenario differential_prop;
    QCheck.Test.make ~count:(120 * mult)
      ~name:"round-trip: parse (pretty q) = q" Gen.arb_scenario roundtrip_prop;
    QCheck.Test.make ~count:(40 * mult)
      ~name:"columnar storage = row reference" Gen.arb_scenario columnar_prop;
    QCheck.Test.make ~count:(20 * mult)
      ~name:"batched probe execution = per-query run" Gen.arb_scenario
      batch_prop;
    QCheck.Test.make ~count:(8 * mult)
      ~name:"cascade soundness: pruned states have no satisfying completion"
      Gen.arb_scenario soundness_prop;
    QCheck.Test.make ~count:(30 * mult)
      ~name:"Property 1: expansions partition confidence mass" arb_seeded
      property1_prop;
    QCheck.Test.make ~count:(500 * mult)
      ~name:"Duolint soundness: rejected queries match no true answer"
      arb_seeded lint_soundness_prop;
    QCheck.Test.make ~count:(6 * mult)
      ~name:"Duopar determinism: parallel enumeration = sequential"
      arb_seeded parallel_determinism_prop;
    QCheck.Test.make ~count:(6 * mult)
      ~name:"adaptive determinism: any controller schedule = sequential"
      arb_seeded adaptive_determinism_prop;
    QCheck.Test.make ~count:(6 * mult)
      ~name:"resume determinism: stepped enumeration = uninterrupted run"
      arb_seeded resume_determinism_prop;
    QCheck.Test.make ~count:(20 * mult)
      ~name:"refinement monotonicity: tightened prune set contains the original"
      arb_seeded refine_monotone_prop;
    QCheck.Test.make ~count:(6 * mult)
      ~name:"incremental refine = from-root restart"
      arb_seeded incremental_refine_prop;
    QCheck.Test.make ~count:(80 * mult)
      ~name:"Duosem equivalence: canonical query = original on its database"
      Gen.arb_scenario duosem_equiv_prop;
    QCheck.Test.make ~count:(80 * mult)
      ~name:"Duosem cardinality bound contains the true row count"
      Gen.arb_scenario duosem_card_prop;
    QCheck.Test.make ~count:(200 * mult)
      ~name:"Domain lattice laws: meet/join/leq/widen vs membership"
      (QCheck.make ~print:string_of_int (fun st ->
           Random.State.int st 1_000_000))
      domain_lattice_prop;
  ]
