(** Naive reference interpreter for the SQL dialect.

    Implements the dialect's semantics directly from the AST: nested-loop
    joins in FROM-clause order, no planner, no predicate pushdown, no
    caches, no provenance machinery.  It is deliberately slow and
    deliberately independent of [Duoengine] — the differential property
    (planner-on ≡ planner-off ≡ reference) is only meaningful when the
    two sides share no execution code.

    Semantics mirrored from the dialect definition:
    - joins attach in clause order starting from the first FROM table;
      rows stream in nested-loop order (base outermost); NULL join keys
      never match;
    - WHERE evaluates with a single connective; comparisons against NULL
      are false; LIKE on non-text operands is an error;
    - grouping triggers on GROUP BY, any aggregate in SELECT or ORDER BY,
      or HAVING; groups appear in first-seen key order; without GROUP BY
      an aggregated query has exactly one (possibly empty) group;
    - aggregates skip NULLs; SUM over integers stays integral, a float
      SUM with integral total collapses to an integer; AVG is always a
      float; DISTINCT inside an aggregate applies to COUNT only;
    - DISTINCT keeps the first occurrence of each output row; ORDER BY is
      a stable sort; LIMIT applies after sorting. *)

(** [run db q] evaluates [q] and returns the same result-set shape as
    {!Duoengine.Executor.run}.  [Error] on out-of-scope or ill-formed
    queries (unknown tables/columns, disconnected FROM, aggregates in
    WHERE, numeric aggregates over text, ...). *)
val run :
  Duodb.Database.t ->
  Duosql.Ast.query ->
  (Duoengine.Executor.resultset, string) result
