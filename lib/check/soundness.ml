module Partial = Duocore.Partial
module Verify = Duocore.Verify
module Enumerate = Duocore.Enumerate
module Model = Duoguide.Model
open Duosql.Ast

(* Cascade soundness: every Verify stage must be monotone — a stage that
   prunes a partial query must also fail on every completion of it.  We
   check the contrapositive mechanically: explore the enumeration space,
   and whenever a stage prunes a child, brute-force a bounded set of its
   completions; if any completion passes the full Definition 2.4 check
   ([Verify.verify_complete]), pruning threw away a satisfying query. *)

type violation = {
  vi_state : Partial.t;
  vi_stage : string;
  vi_witness : query;
}

(* Derived from the cascade's own stage enum, so a stage added to Verify
   cannot silently escape the soundness check. *)
let stage_names = List.map Verify.stage_name Verify.all_stages

let first_failing_stage env (t : Partial.t) =
  if not (Verify.verify_static env t) then Some "static"
  else if not (Verify.verify_clauses env t) then Some "clauses"
  else if not (Verify.verify_cardinality env t) then Some "cardinality"
  else if not (Verify.verify_semantics env t) then Some "semantics"
  else if not (Verify.verify_column_types env t) then Some "types"
  else if not (Verify.verify_by_column env t) then Some "column"
  else if Verify.can_check_rows t && not (Verify.verify_by_row env t) then
    Some "row"
  else
    match Partial.to_query t with
    | Some q when not (Verify.verify_complete env q) -> Some "complete"
    | _ -> None

let completions ~guided ~hints ctx ~max_nodes ~max_complete state =
  let acc = ref [] in
  let n = ref 0 in
  let q = Queue.create () in
  Queue.add state q;
  while
    (not (Queue.is_empty q))
    && !n < max_nodes
    && List.length !acc < max_complete
  do
    let s = Queue.pop q in
    incr n;
    if Partial.is_complete s then (
      match Partial.to_query s with
      | Some qq -> acc := qq :: !acc
      | None -> ())
    else List.iter (fun c -> Queue.add c q) (Enumerate.expand ~guided hints ctx s)
  done;
  List.rev !acc

let check ?(guided = true) ?(max_states = 200) ?(max_pruned = 40)
    ?(max_completion_nodes = 600) ?(max_completions = 80) env ctx ~hints () =
  let violations = ref [] in
  let pruned_checked = ref 0 in
  let seen = Hashtbl.create 256 in
  let frontier = Duocore.Frontier.create () in
  Duocore.Frontier.push frontier Partial.root;
  let popped = ref 0 in
  let continue = ref true in
  while !continue && !popped < max_states do
    match Duocore.Frontier.pop frontier with
    | None -> continue := false
    | Some s ->
        incr popped;
        List.iter
          (fun child ->
            match first_failing_stage env child with
            | None ->
                let key = Partial.key child in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.replace seen key ();
                  if not (Partial.is_complete child) then
                    Duocore.Frontier.push frontier child
                end
            | Some "complete" ->
                (* the complete stage IS the ground truth the earlier
                   stages are checked against; nothing to brute-force *)
                ()
            | Some stage when !pruned_checked < max_pruned ->
                incr pruned_checked;
                let comps =
                  completions ~guided ~hints ctx
                    ~max_nodes:max_completion_nodes
                    ~max_complete:max_completions child
                in
                (match
                   List.find_opt (fun qq -> Verify.verify_complete env qq) comps
                 with
                | Some w ->
                    violations :=
                      { vi_state = child; vi_stage = stage; vi_witness = w }
                      :: !violations
                | None -> ())
            | Some _ -> ())
          (Enumerate.expand ~guided hints ctx s)
  done;
  List.rev !violations

let pp_violation fmt v =
  Format.fprintf fmt "stage %s pruned %s, yet completion %s satisfies the TSQ"
    v.vi_stage (Partial.to_string v.vi_state)
    (Duosql.Pretty.query v.vi_witness)

(* --- gold-query derivations ---------------------------------------- *)

exception Unrepresentable

(* Rebuild the enumeration states that derive [q], in decision order, so
   tests can assert that a gold query survives every cascade stage at
   every point of its own derivation.  Returns [None] when the query uses
   features outside the enumeration space (DISTINCT, multi-column GROUP
   BY, several ORDER BY keys, aggregates in WHERE, ...). *)
let derivation_states schema (q : query) : Partial.t list option =
  let after_group (kw : Model.kw_set) =
    if kw.Model.kw_order then Partial.P_order_target else Partial.P_done
  in
  let after_where (kw : Model.kw_set) =
    if kw.Model.kw_group then Partial.P_group_col else after_group kw
  in
  let after_select (kw : Model.kw_set) =
    if kw.Model.kw_where then Partial.P_where_num else after_where kw
  in
  try
    if q.q_distinct then raise Unrepresentable;
    let kw =
      {
        Model.kw_where = q.q_where <> None;
        kw_group = q.q_group_by <> [];
        kw_order = q.q_order_by <> [];
      }
    in
    let slot_of (p : proj) =
      if p.p_distinct then raise Unrepresentable;
      match p.p_col with
      | None ->
          if p.p_agg = Some Count then
            { Partial.pj_target = Model.Target_count_star; pj_agg = Some (Some Count) }
          else raise Unrepresentable
      | Some c -> (
          match Duodb.Schema.find_column schema ~table:c.cr_table c.cr_col with
          | None -> raise Unrepresentable
          | Some col ->
              { Partial.pj_target = Model.Target_column col; pj_agg = Some p.p_agg })
    in
    let slots = List.map slot_of q.q_select in
    let nproj = List.length slots in
    let preds = match q.q_where with None -> [] | Some c -> c.c_preds in
    List.iter (fun p -> if p.pr_agg <> None then raise Unrepresentable) preds;
    let conn = match q.q_where with Some c -> c.c_conn | None -> And in
    let group_col =
      match q.q_group_by with
      | [] -> None
      | [ c ] -> Some c
      | _ -> raise Unrepresentable
    in
    let having_pred =
      match q.q_having with
      | None -> None
      | Some { c_preds = [ p ]; _ } -> Some p
      | Some _ -> raise Unrepresentable
    in
    if having_pred <> None && not kw.Model.kw_group then raise Unrepresentable;
    let order_item, order_dir =
      match q.q_order_by with
      | [] -> (None, Asc)
      | [ o ] -> (Some (o.o_agg, o.o_col), o.o_dir)
      | _ -> raise Unrepresentable
    in
    if q.q_limit <> None && not kw.Model.kw_order then raise Unrepresentable;
    (* the derivation pins the gold join path from the start: every state
       is verified against the relation the probes would really use *)
    let base = { Partial.root with Partial.from = Some q.q_from } in
    let states = ref [ base ] in
    let s = ref { base with Partial.kw; phase = Partial.P_num_proj } in
    let push st = states := st :: !states in
    push !s;
    s := { !s with Partial.nproj; phase = Partial.P_proj_target 0 };
    push !s;
    List.iteri
      (fun i slot ->
        let prev = (!s).Partial.projs in
        (match slot.Partial.pj_target with
        | Model.Target_column _ ->
            (* target decided, aggregate pending *)
            push
              { !s with
                Partial.projs = prev @ [ { slot with Partial.pj_agg = None } ];
                phase = Partial.P_proj_agg i }
        | Model.Target_count_star -> ());
        let next =
          if i + 1 < nproj then Partial.P_proj_target (i + 1)
          else after_select kw
        in
        s := { !s with Partial.projs = prev @ [ slot ]; phase = next };
        push !s)
      slots;
    if kw.Model.kw_where then begin
      let n = List.length preds in
      if n = 0 then raise Unrepresentable;
      s := { !s with Partial.where_n = n; phase = Partial.P_where_col 0 };
      push !s;
      List.iteri
        (fun i p ->
          let next =
            if i + 1 < n then Partial.P_where_col (i + 1)
            else if n >= 2 then Partial.P_where_conn
            else after_where kw
          in
          s :=
            { !s with
              Partial.where_preds = (!s).Partial.where_preds @ [ p ];
              phase = next };
          push !s)
        preds;
      if n >= 2 then begin
        s := { !s with Partial.conn; phase = after_where kw };
        push !s
      end
    end;
    if kw.Model.kw_group then begin
      s := { !s with Partial.group_col; phase = Partial.P_having_presence };
      push !s;
      match having_pred with
      | Some _ ->
          s := { !s with Partial.phase = Partial.P_having_pred };
          push !s;
          s := { !s with Partial.having_pred; phase = after_group kw };
          push !s
      | None ->
          s := { !s with Partial.phase = after_group kw };
          push !s
    end;
    if kw.Model.kw_order then begin
      s := { !s with Partial.order_item; phase = Partial.P_order_dir };
      push !s;
      s := { !s with Partial.order_dir; phase = Partial.P_limit };
      push !s;
      s := { !s with Partial.limit = q.q_limit; phase = Partial.P_done };
      push !s
    end;
    (* sanity: the final state must rebuild the gold query exactly *)
    match Partial.to_query !s with
    | Some q' when Duosql.Equal.queries q q' -> Some (List.rev !states)
    | _ -> None
  with Unrepresentable -> None

(* [gold_survival env schema q] replays [q]'s derivation and returns the
   first (stage, state) pruned by the cascade, or [None] when the gold
   survives end to end — which is what soundness demands whenever the TSQ
   in [env] was synthesized from [q]'s own result. *)
let gold_survival env schema (q : query) =
  match derivation_states schema q with
  | None -> None
  | Some states ->
      List.fold_left
        (fun acc st ->
          match acc with
          | Some _ -> acc
          | None -> (
              match first_failing_stage env st with
              | Some stage -> Some (stage, st)
              | None -> None))
        None states
