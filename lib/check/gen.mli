(** Seeded random instance generators for the Duocheck properties.

    A {!scenario} bundles a random database over a random FK-tree schema,
    a random in-scope query over it, and a TSQ derived from the query's
    true result (sometimes deliberately mutated into a wrong sketch, so
    the pruning paths get exercised too).

    Queries are generated inside the enumerable dialect: joins follow FK
    edges and are listed in nested-loop attach order (so pretty-printing
    round-trips exactly), DISTINCT appears only at query level or inside
    COUNT, literals are integers and apostrophe-free text. *)

type scenario = {
  sc_db : Duodb.Database.t;
  sc_query : Duosql.Ast.query;
  sc_tsq : Duocore.Tsq.t;
}

(** Raw generators, exposed for composing custom properties. *)

val gen_schema : Random.State.t -> Duodb.Schema.t
val gen_db : Random.State.t -> Duodb.Schema.t -> Duodb.Database.t
val gen_query : Random.State.t -> Duodb.Database.t -> Duosql.Ast.query

(** [gen_tsq st db q] derives a sketch from [q]'s true result: a sample of
    result rows with some cells relaxed to [Any] or numeric ranges, the
    sorted flag and limit read off the query (sometimes perturbed), and —
    with some probability — a mutated cell or a negative tuple that makes
    the sketch deliberately unsatisfiable by [q]. *)
val gen_tsq : Random.State.t -> Duodb.Database.t -> Duosql.Ast.query -> Duocore.Tsq.t

val gen_scenario : Random.State.t -> scenario

(** A few concrete values scanned deterministically from the database, for
    populating guidance-model literal pools (see {!Duonl.Nlq.with_literals}). *)
val seed_literals : Duodb.Database.t -> Duodb.Value.t list

val print_scenario : scenario -> string

(** Shrinks the query clause-by-clause (then the sketch), keeping the
    database fixed, so QCheck failures print a minimal query/TSQ pair. *)
val shrink_scenario : scenario QCheck.Shrink.t

val arb_scenario : scenario QCheck.arbitrary
