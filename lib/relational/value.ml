type t =
  | Null
  | Int of int
  | Float of float
  | Text of string

let rank = function Null -> 0 | Int _ | Float _ -> 1 | Text _ -> 2

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Float x, Float y -> Float.compare x y
  | Text x, Text y -> String.compare x y
  | (Null | Int _ | Float _ | Text _), _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0
let is_null = function Null -> true | Int _ | Float _ | Text _ -> false
let is_numeric = function Int _ | Float _ -> true | Null | Text _ -> false

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | Null -> invalid_arg "Value.to_float: Null"
  | Text s -> invalid_arg ("Value.to_float: Text " ^ s)

(* Render floats without a trailing dot so that e.g. 3.0 prints as "3". *)
let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let to_display = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f -> float_to_string f
  | Text s -> s

let escape_quotes s =
  String.concat "''" (String.split_on_char '\'' s)

let to_sql = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f -> float_to_string f
  | Text s -> "'" ^ escape_quotes s ^ "'"

let pp ppf v = Format.pp_print_string ppf (to_sql v)

(* Case-insensitive LIKE matching by dynamic programming over the pattern.
   [%] matches any substring, [_] any single character. *)
let like s ~pattern =
  let s = String.lowercase_ascii s
  and p = String.lowercase_ascii pattern in
  let n = String.length s and m = String.length p in
  (* ok.(i).(j): does s[i..] match p[j..]? Filled right-to-left. *)
  let ok = Array.make_matrix (n + 1) (m + 1) false in
  ok.(n).(m) <- true;
  for j = m - 1 downto 0 do
    ok.(n).(j) <- p.[j] = '%' && ok.(n).(j + 1)
  done;
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      ok.(i).(j) <-
        (match p.[j] with
        | '%' -> ok.(i).(j + 1) || ok.(i + 1).(j)
        | '_' -> ok.(i + 1).(j + 1)
        | c -> c = s.[i] && ok.(i + 1).(j + 1))
    done
  done;
  ok.(0).(0)

let hash = function
  | Null -> 17
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | Text s -> Hashtbl.hash s
