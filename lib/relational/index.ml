type hit = {
  hit_value : string;
  hit_table : string;
  hit_column : string;
}

module Smap = Map.Make (String)

type t = {
  (* lowercased value -> hits (original casing preserved in hits) *)
  mutable postings : hit list Smap.t;
  mutable size : int;
}

let add t key hit =
  let existing = Option.value ~default:[] (Smap.find_opt key t.postings) in
  let dup =
    List.exists
      (fun h ->
        String.equal h.hit_table hit.hit_table
        && String.equal h.hit_column hit.hit_column)
      existing
  in
  if not dup then begin
    t.postings <- Smap.add key (hit :: existing) t.postings;
    t.size <- t.size + 1
  end

let build db =
  let t = { postings = Smap.empty; size = 0 } in
  let schema = Database.schema db in
  List.iter
    (fun ts ->
      let tbl = Database.table_exn db ts.Schema.tbl_name in
      List.iter
        (fun c ->
          if Datatype.equal c.Schema.col_type Datatype.Text then
            let idx = Table.column_index tbl c.Schema.col_name in
            Table.iter
              (fun row ->
                match row.(idx) with
                | Value.Text s when String.length s > 0 ->
                    add t (String.lowercase_ascii s)
                      { hit_value = s;
                        hit_table = ts.Schema.tbl_name;
                        hit_column = c.Schema.col_name }
                | Value.Text _ | Value.Null | Value.Int _ | Value.Float _ -> ())
              tbl)
        ts.Schema.tbl_columns)
    schema.Schema.tables;
  t

let lookup t value =
  Option.value ~default:[] (Smap.find_opt (String.lowercase_ascii value) t.postings)

let is_prefix ~prefix s =
  String.length prefix <= String.length s
  && String.equal prefix (String.sub s 0 (String.length prefix))

let complete t ?(limit = 10) ~prefix () =
  let prefix = String.lowercase_ascii prefix in
  (* Maps iterate in key order, so we can stop once past the prefix range. *)
  let exception Done of hit list in
  let collect acc key hits =
    if List.length acc >= limit then raise (Done acc)
    else if is_prefix ~prefix key then
      let remaining = limit - List.length acc in
      let taken = List.filteri (fun i _ -> i < remaining) hits in
      acc @ taken
    else if String.compare key prefix > 0 then raise (Done acc)
    else acc
  in
  try Smap.fold (fun k v acc -> collect acc k v) t.postings []
  with Done acc -> acc

let contains t ~table ~column value =
  List.exists
    (fun h -> String.equal h.hit_table table && String.equal h.hit_column column)
    (lookup t value)

(* Case-sensitive membership.  Postings key on the lowercased value and
   keep one hit per (value, column) pair, so only two answers are
   definitive: no hit for the column under this key means no casing
   variant exists at all (hence no exact match), and a stored hit with
   identical casing proves membership.  A column hit with different
   casing is inconclusive — the probed casing may or may not also occur —
   and empty strings are never indexed. *)
let contains_exact t ~table ~column value =
  if String.length value = 0 then None
  else
    let col_hits =
      List.filter
        (fun h -> String.equal h.hit_table table && String.equal h.hit_column column)
        (lookup t value)
    in
    if col_hits = [] then Some false
    else if List.exists (fun h -> String.equal h.hit_value value) col_hits then
      Some true
    else None

let size t = t.size
