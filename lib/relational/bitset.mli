(** Packed bit vector: the null and int-tag bitmaps of columnar storage.

    Reads via {!get} are bounds-unchecked for speed — callers index only
    within [0, length).  Writes grow the backing bytes as needed. *)

type t

(** [create n] is an all-zero bitset of length [n]. *)
val create : int -> t

val length : t -> int

(** [get t i] is bit [i].  Unchecked: [i] must be below {!length}. *)
val get : t -> int -> bool

val set : t -> int -> unit
val clear : t -> int -> unit

(** [push t b] appends one bit. *)
val push : t -> bool -> unit

(** Number of set bits (test/debug use; O(length)). *)
val count : t -> int
