(** Columnar table storage: a table schema plus typed per-column arrays.

    Values are decomposed on insert: number columns into an unboxed
    [float array] (plus an int-tag bitmap and an exact side table for
    integers beyond float precision), text columns into dictionary
    codes.  Every column carries a null bitmap and per-{!block} min/max
    zone maps for block skipping.  Storage is append-only; the synthesis
    workloads build databases once and only read them afterwards.

    {b Aliasing contract.}  The row-oriented functions ({!rows}, {!get},
    {!fold}, {!iter}, {!exists}) serve rows from a single lazily
    materialized row view that is shared between calls and with the
    table itself.  Returned arrays are that live view — callers must
    not mutate them (treat every [Value.t array] obtained from this
    module as read-only).  Materialization is incremental: inserting
    after a read only rebuilds the new suffix. *)

type t

(** [create schema_table] makes an empty table.  Row width is fixed to the
    number of columns. *)
val create : Schema.table -> t

val schema : t -> Schema.table
val name : t -> string

(** [insert t row] appends a row.  Raises [Invalid_argument] when the arity
    differs from the schema or a value's type contradicts its column type. *)
val insert : t -> Value.t array -> unit

(** [insert_all t rows] inserts rows in order. *)
val insert_all : t -> Value.t array list -> unit

val row_count : t -> int
val num_columns : t -> int

(** Position of a column name within rows. Raises [Not_found]-style
    [Invalid_argument] for unknown columns. *)
val column_index : t -> string -> int

(** All rows in insertion order.  The rows are the live materialized
    view — see the aliasing contract above; callers must not mutate. *)
val rows : t -> Value.t array array

(** [get t i] is row [i] (insertion order) without copying the row array.
    Raises [Invalid_argument] when [i] is out of bounds.  The executor's
    scans use this for index-based access; the row is the live
    materialized view (aliasing contract above). *)
val get : t -> int -> Value.t array

(** [value_at t ~col ~row] reconstructs a single cell straight from the
    columns, without materializing the row view. *)
val value_at : t -> col:int -> row:int -> Value.t

(** [column_array t col] is a freshly allocated column vector for [col]
    (the caller owns it). *)
val column_array : t -> string -> Value.t array

(** [column_values t col] is {!column_array} as a list.  Compatibility
    shim — hot paths should use {!column_array} or {!view}. *)
val column_values : t -> string -> Value.t list

(** [fold f init t] folds over rows in insertion order. *)
val fold : ('a -> Value.t array -> 'a) -> 'a -> t -> 'a

val iter : (Value.t array -> unit) -> t -> unit

(** [exists p t] holds when some row satisfies [p]. *)
val exists : (Value.t array -> bool) -> t -> bool

(** Min and max of a column ignoring [Null]s; [None] when all null/empty.
    Computed from the zone maps.  Used by AVG range verification
    (Section 3.4). *)
val column_range : t -> string -> (Value.t * Value.t) option

(** {1 Columnar access for the engine's vectorized kernels} *)

(** Rows per zone-map block. *)
val block : int

(** Live columnar storage of one column.  Arrays may be longer than
    {!row_count} (growth slack) — only indices in [\[0, row_count)] are
    meaningful.  Do not mutate.

    [V_num]: [data.(i)] is the numeric magnitude (0.0 in null slots);
    [is_int] tags slots holding [Value.Int] (exact reconstruction goes
    through {!value_at}).  [V_txt]: [codes.(i)] is a dictionary code or
    [-1] for NULL; [dict.(0 .. dict_len-1)] are the distinct strings. *)
type view =
  | V_num of { data : float array; is_int : Bitset.t; nulls : Bitset.t }
  | V_txt of {
      codes : int array;
      dict : string array;
      dict_len : int;
      nulls : Bitset.t;
    }

(** [view t j] is the live columnar view of column [j]. *)
val view : t -> int -> view

(** [find_code t j s] is the dictionary code of string [s] in text
    column [j]; [None] when absent (so no row can equal [s]) or when
    the column is numeric. *)
val find_code : t -> int -> string -> int option

(** Number of zone-map blocks covering [\[0, row_count)]. *)
val num_blocks : t -> int

(** [zone t ~col ~blk] is the min/max over non-null values of rows
    [\[blk*block, (blk+1)*block) ∩ \[0, row_count)]; [None] when the
    block holds no non-null value. *)
val zone : t -> col:int -> blk:int -> (Value.t * Value.t) option
