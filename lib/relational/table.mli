(** In-memory table storage: a table schema plus its rows.

    Rows are value arrays indexed in the order of the schema's column list.
    Storage is append-only; the synthesis workloads build databases once and
    only read them afterwards. *)

type t

(** [create schema_table] makes an empty table.  Row width is fixed to the
    number of columns. *)
val create : Schema.table -> t

val schema : t -> Schema.table
val name : t -> string

(** [insert t row] appends a row.  Raises [Invalid_argument] when the arity
    differs from the schema or a value's type contradicts its column type. *)
val insert : t -> Value.t array -> unit

(** [insert_all t rows] inserts rows in order. *)
val insert_all : t -> Value.t array list -> unit

val row_count : t -> int

(** Position of a column name within rows. Raises [Not_found]-style
    [Invalid_argument] for unknown columns. *)
val column_index : t -> string -> int

(** All rows in insertion order. The returned array is the live storage —
    callers must not mutate it. *)
val rows : t -> Value.t array array

(** [get t i] is row [i] (insertion order) without copying the row array.
    Raises [Invalid_argument] when [i] is out of bounds.  The executor's
    scans use this for index-based access to the array-backed storage. *)
val get : t -> int -> Value.t array

(** [column_values t col] is the column vector for [col]. *)
val column_values : t -> string -> Value.t list

(** [fold f init t] folds over rows in insertion order. *)
val fold : ('a -> Value.t array -> 'a) -> 'a -> t -> 'a

val iter : (Value.t array -> unit) -> t -> unit

(** [exists p t] holds when some row satisfies [p]. *)
val exists : (Value.t array -> bool) -> t -> bool

(** Min and max of a column ignoring [Null]s; [None] when all null/empty.
    Used by AVG range verification (Section 3.4). *)
val column_range : t -> string -> (Value.t * Value.t) option
