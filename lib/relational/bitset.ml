(* Packed bit vector used for the columnar null / int-tag bitmaps.  One
   byte holds eight rows; growth doubles like the column arrays so the
   amortized insert cost stays O(1). *)

type t = {
  mutable bits : Bytes.t;
  mutable len : int;  (* bits in use *)
}

let create n =
  { bits = Bytes.make (max 1 ((n + 7) / 8)) '\000'; len = n }

let length t = t.len

let ensure t n =
  let need = (n + 7) / 8 in
  let cap = Bytes.length t.bits in
  if need > cap then begin
    let cap' = max need (cap * 2) in
    let bits' = Bytes.make cap' '\000' in
    Bytes.blit t.bits 0 bits' 0 cap;
    t.bits <- bits'
  end;
  if n > t.len then t.len <- n

let get t i =
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  ensure t (i + 1);
  let j = i lsr 3 in
  Bytes.unsafe_set t.bits j
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.bits j) lor (1 lsl (i land 7))))

let clear t i =
  ensure t (i + 1);
  let j = i lsr 3 in
  Bytes.unsafe_set t.bits j
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get t.bits j) land lnot (1 lsl (i land 7)) land 0xff))

let push t b =
  let i = t.len in
  ensure t (i + 1);
  if b then set t i else clear t i

let count t =
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    if get t i then incr n
  done;
  !n
