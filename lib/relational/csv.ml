let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let quote s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let field_of_value = function
  | Value.Null -> ""
  | (Value.Int _ | Value.Float _ | Value.Text _) as v -> quote (Value.to_display v)

let rows_to_string ~header rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," (List.map quote header));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat "," (Array.to_list (Array.map field_of_value row)));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let table_to_string tbl =
  let header =
    List.map (fun c -> c.Schema.col_name) (Table.schema tbl).Schema.tbl_columns
  in
  rows_to_string ~header (Array.to_list (Table.rows tbl))

(* --- parsing --- *)

(* Split one CSV document into records of fields, honouring quotes. *)
let parse_records s =
  let records = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let n = String.length s in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_record () =
    flush_field ();
    records := List.rev !fields :: !records;
    fields := []
  in
  let rec go i in_quotes =
    if i >= n then begin
      if Buffer.length buf > 0 || !fields <> [] then flush_record ();
      List.rev !records
    end
    else
      let c = s.[i] in
      if in_quotes then
        if c = '"' then
          if i + 1 < n && s.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            go (i + 2) true
          end
          else go (i + 1) false
        else begin
          Buffer.add_char buf c;
          go (i + 1) true
        end
      else
        match c with
        | '"' -> go (i + 1) true
        | ',' ->
            flush_field ();
            go (i + 1) false
        | '\r' -> go (i + 1) false
        | '\n' ->
            flush_record ();
            go (i + 1) false
        | _ ->
            Buffer.add_char buf c;
            go (i + 1) false
  in
  go 0 false

let value_of_field ty s =
  if s = "" then Ok Value.Null
  else
    match ty with
    | Datatype.Text -> Ok (Value.Text s)
    | Datatype.Number -> (
        match int_of_string_opt s with
        | Some n -> Ok (Value.Int n)
        | None -> (
            match float_of_string_opt s with
            | Some f -> Ok (Value.Float f)
            | None -> Error (Printf.sprintf "expected a number, got %S" s)))

let table_of_string ts s =
  match parse_records s with
  | [] -> Error "empty CSV document"
  | header :: rows -> (
      let expected = List.map (fun c -> c.Schema.col_name) ts.Schema.tbl_columns in
      if header <> expected then
        Error
          (Printf.sprintf "header mismatch: expected %s, got %s"
             (String.concat "," expected) (String.concat "," header))
      else
        let tbl = Table.create ts in
        let rec insert_all line = function
          | [] -> Ok tbl
          | fields :: rest ->
              if List.length fields <> List.length ts.Schema.tbl_columns then
                Error (Printf.sprintf "line %d: wrong field count" line)
              else
                let parsed =
                  List.map2
                    (fun c f -> value_of_field c.Schema.col_type f)
                    ts.Schema.tbl_columns fields
                in
                let rec collect acc = function
                  | [] -> Ok (List.rev acc)
                  | Ok v :: r -> collect (v :: acc) r
                  | Error e :: _ -> Error (Printf.sprintf "line %d: %s" line e)
                in
                (match collect [] parsed with
                | Error e -> Error e
                | Ok values ->
                    Table.insert tbl (Array.of_list values);
                    insert_all (line + 1) rest)
        in
        insert_all 2 rows)

let export_database db ~dir =
  try
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iter
      (fun ts ->
        let tbl = Database.table_exn db ts.Schema.tbl_name in
        let path = Filename.concat dir (ts.Schema.tbl_name ^ ".csv") in
        let oc = open_out path in
        output_string oc (table_to_string tbl);
        close_out oc)
      (Database.schema db).Schema.tables;
    Ok ()
  with Sys_error e -> Error e

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let import_database schema ~dir =
  try
    let db = Database.create schema in
    let rec load = function
      | [] -> Ok db
      | ts :: rest -> (
          let path = Filename.concat dir (ts.Schema.tbl_name ^ ".csv") in
          if not (Sys.file_exists path) then load rest
          else
            match table_of_string ts (read_file path) with
            | Error e -> Error (ts.Schema.tbl_name ^ ": " ^ e)
            | Ok tbl ->
                Table.iter (Database.insert db ~table:ts.Schema.tbl_name) tbl;
                load rest)
    in
    load schema.Schema.tables
  with Sys_error e -> Error e
