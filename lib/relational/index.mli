(** Master inverted column index over all text columns of a database
    (Section 4): maps every distinct text value to the columns containing
    it.  Backs the autocomplete interface for literal tagging and TSQ cells,
    and lets the guidance model ground NLQ literals to schema columns. *)

type t

type hit = {
  hit_value : string;  (** the stored text value *)
  hit_table : string;
  hit_column : string;
}

(** Build the index by scanning every text column of the database. *)
val build : Database.t -> t

(** Columns containing [value] exactly (case-insensitive). *)
val lookup : t -> string -> hit list

(** Autocomplete: distinct values starting with [prefix] (case-insensitive),
    at most [limit], lexicographically ordered, with one hit per
    value/column pair. *)
val complete : t -> ?limit:int -> prefix:string -> unit -> hit list

(** [contains t ~table ~column value] checks membership of [value] in a
    specific column without a database scan. *)
val contains : t -> table:string -> column:string -> string -> bool

(** [contains_exact t ~table ~column value] is case-{e sensitive}
    membership: [Some true] / [Some false] when the index can answer
    definitively, [None] when it cannot (a different-cased variant is
    stored for the column, or [value] is empty — empty strings are not
    indexed) and the caller must fall back to a scan.  Backs the
    verification cascade's index-accelerated column probes. *)
val contains_exact :
  t -> table:string -> column:string -> string -> bool option

(** Number of distinct (value, column) postings. *)
val size : t -> int
