(* Columnar table storage (Duodb).

   Rows are decomposed into typed per-column arrays at insert time:

   - number columns keep their magnitudes in an unboxed [float array]
     plus an int-tag bitmap (so [Int 3] and [Float 3.0] stay distinct on
     the way back out) and a tiny side table for integers whose float
     round-trip is lossy (|i| >= 2^53);
   - text columns are dictionary-coded: an [int array] of codes into a
     per-column string dictionary ([null_code] marks NULL);
   - every column carries a null bitmap and per-block min/max zone maps
     ({!block} rows per block, nulls excluded) that the engine's
     vectorized kernels use to skip whole blocks.

   The row-oriented API ([rows], [get], [fold], ...) is preserved by a
   lazily materialized row view: [ensure_rows] (the single
   materialization point) rebuilds missing suffix rows from the columns.
   Returned row arrays are that shared view — callers must treat them as
   read-only (see the .mli aliasing contract). *)

let block = 256
let null_code = -1

type num_col = {
  mutable nc_data : float array;  (* magnitude; 0.0 in null slots *)
  nc_int : Bitset.t;              (* slot holds an Int *)
  nc_null : Bitset.t;
  nc_exact : (int, int) Hashtbl.t;
      (* row -> original int where [int_of_float (float_of_int i) <> i] *)
}

type txt_col = {
  mutable tc_codes : int array;   (* dictionary code, or [null_code] *)
  mutable tc_dict : string array;
  mutable tc_dict_len : int;
  tc_lookup : (string, int) Hashtbl.t;
  tc_null : Bitset.t;             (* mirrors [code = null_code] *)
}

type store =
  | Cnum of num_col
  | Ctxt of txt_col

type col = {
  c_store : store;
  (* per-block min/max over non-null values ([Value.compare] order);
     [None] = no non-null value in the block yet *)
  mutable c_zones : (Value.t * Value.t) option array;
}

type t = {
  tschema : Schema.table;
  cols : col array;
  mutable len : int;
  mutable cap : int;
  (* materialized row view; rows [0, rowv_len) are built *)
  mutable rowv : Value.t array array;
  mutable rowv_len : int;
}

let make_col (c : Schema.column) =
  let c_store =
    match c.Schema.col_type with
    | Datatype.Number ->
        Cnum
          { nc_data = [||]; nc_int = Bitset.create 0; nc_null = Bitset.create 0;
            nc_exact = Hashtbl.create 4 }
    | Datatype.Text ->
        Ctxt
          { tc_codes = [||]; tc_dict = [||]; tc_dict_len = 0;
            tc_lookup = Hashtbl.create 16; tc_null = Bitset.create 0 }
  in
  { c_store; c_zones = [||] }

let create tschema =
  {
    tschema;
    cols = Array.of_list (List.map make_col tschema.Schema.tbl_columns);
    len = 0;
    cap = 0;
    rowv = [||];
    rowv_len = 0;
  }

let schema t = t.tschema
let name t = t.tschema.Schema.tbl_name
let row_count t = t.len
let num_columns t = Array.length t.cols

let column_index t col =
  let rec find i = function
    | [] ->
        invalid_arg
          (Printf.sprintf "Table.column_index: no column %s.%s" (name t) col)
    | c :: rest ->
        if String.equal c.Schema.col_name col then i else find (i + 1) rest
  in
  find 0 t.tschema.Schema.tbl_columns

(* --- growth --- *)

let grow_float arr cap' =
  let a = Array.make cap' 0.0 in
  Array.blit arr 0 a 0 (Array.length arr);
  a

let grow_int arr cap' =
  let a = Array.make cap' null_code in
  Array.blit arr 0 a 0 (Array.length arr);
  a

let ensure_cap t =
  if t.len = t.cap then begin
    let cap' = if t.cap = 0 then 16 else t.cap * 2 in
    let nblocks = ((cap' + block - 1) / block) in
    Array.iter
      (fun c ->
        (match c.c_store with
        | Cnum nc -> nc.nc_data <- grow_float nc.nc_data cap'
        | Ctxt tc -> tc.tc_codes <- grow_int tc.tc_codes cap');
        if Array.length c.c_zones < nblocks then begin
          let z = Array.make nblocks None in
          Array.blit c.c_zones 0 z 0 (Array.length c.c_zones);
          c.c_zones <- z
        end)
      t.cols;
    t.cap <- cap'
  end

(* --- insert --- *)

let zone_update c i v =
  if not (Value.is_null v) then begin
    let b = i / block in
    c.c_zones.(b) <-
      (match c.c_zones.(b) with
      | None -> Some (v, v)
      | Some (lo, hi) ->
          let lo = if Value.compare v lo < 0 then v else lo in
          let hi = if Value.compare v hi > 0 then v else hi in
          Some (lo, hi))
  end

let intern tc s =
  match Hashtbl.find_opt tc.tc_lookup s with
  | Some code -> code
  | None ->
      let code = tc.tc_dict_len in
      if code = Array.length tc.tc_dict then begin
        let cap' = if code = 0 then 16 else code * 2 in
        let d = Array.make cap' "" in
        Array.blit tc.tc_dict 0 d 0 code;
        tc.tc_dict <- d
      end;
      tc.tc_dict.(code) <- s;
      tc.tc_dict_len <- code + 1;
      Hashtbl.replace tc.tc_lookup s code;
      code

let store_cell t j v =
  let i = t.len in
  let c = t.cols.(j) in
  (match c.c_store, v with
  | Cnum nc, Value.Null ->
      nc.nc_data.(i) <- 0.0;
      Bitset.push nc.nc_int false;
      Bitset.push nc.nc_null true
  | Cnum nc, Value.Int x ->
      let f = float_of_int x in
      nc.nc_data.(i) <- f;
      if int_of_float f <> x then Hashtbl.replace nc.nc_exact i x;
      Bitset.push nc.nc_int true;
      Bitset.push nc.nc_null false
  | Cnum nc, Value.Float f ->
      nc.nc_data.(i) <- f;
      Bitset.push nc.nc_int false;
      Bitset.push nc.nc_null false
  | Ctxt tc, Value.Null ->
      tc.tc_codes.(i) <- null_code;
      Bitset.push tc.tc_null true
  | Ctxt tc, Value.Text s ->
      tc.tc_codes.(i) <- intern tc s;
      Bitset.push tc.tc_null false
  | Cnum _, Value.Text _ | Ctxt _, (Value.Int _ | Value.Float _) ->
      (* unreachable: [insert] type-checks against the schema first *)
      invalid_arg "Table.store_cell: value contradicts column type");
  zone_update c i v

let insert t row =
  let cols = t.tschema.Schema.tbl_columns in
  let arity = List.length cols in
  if Array.length row <> arity then
    invalid_arg
      (Printf.sprintf "Table.insert: table %s expects %d values, got %d" (name t)
         arity (Array.length row));
  List.iteri
    (fun i c ->
      if not (Datatype.value_matches c.Schema.col_type row.(i)) then
        invalid_arg
          (Printf.sprintf "Table.insert: %s.%s expects %s, got %s" (name t)
             c.Schema.col_name
             (Datatype.to_string c.Schema.col_type)
             (Value.to_sql row.(i))))
    cols;
  ensure_cap t;
  Array.iteri (fun j _ -> store_cell t j row.(j)) row;
  t.len <- t.len + 1

let insert_all t rows = List.iter (insert t) rows

(* --- cell access from the columns --- *)

let value_at t ~col ~row =
  match t.cols.(col).c_store with
  | Cnum nc ->
      if Bitset.get nc.nc_null row then Value.Null
      else if Bitset.get nc.nc_int row then
        Value.Int
          (match Hashtbl.find_opt nc.nc_exact row with
          | Some x -> x
          | None -> int_of_float nc.nc_data.(row))
      else Value.Float nc.nc_data.(row)
  | Ctxt tc ->
      let code = tc.tc_codes.(row) in
      if code = null_code then Value.Null else Value.Text tc.tc_dict.(code)

(* --- materialized row view ---------------------------------------------
   The single place rows are (re)built from the columns: every row-view
   entry point funnels through [ensure_rows], so the aliasing contract
   ("returned arrays are the live shared view, do not mutate") is
   enforced here and nowhere else. *)

let ensure_rows t =
  if t.rowv_len < t.len then begin
    if Array.length t.rowv < t.len then begin
      let rv = Array.make t.cap [||] in
      Array.blit t.rowv 0 rv 0 t.rowv_len;
      t.rowv <- rv
    end;
    let ncols = num_columns t in
    for i = t.rowv_len to t.len - 1 do
      t.rowv.(i) <- Array.init ncols (fun j -> value_at t ~col:j ~row:i)
    done;
    t.rowv_len <- t.len
  end

let rows t =
  ensure_rows t;
  Array.sub t.rowv 0 t.len

let get t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Table.get: row %d out of %d in %s" i t.len (name t));
  if t.rowv_len <= i then ensure_rows t;
  t.rowv.(i)

let fold f init t =
  ensure_rows t;
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.rowv.(i)
  done;
  !acc

let iter f t =
  ensure_rows t;
  for i = 0 to t.len - 1 do
    f t.rowv.(i)
  done

let exists p t =
  ensure_rows t;
  let rec go i = i < t.len && (p t.rowv.(i) || go (i + 1)) in
  go 0

(* --- columnar accessors --- *)

let column_array t col =
  let j = column_index t col in
  Array.init t.len (fun i -> value_at t ~col:j ~row:i)

let column_values t col = Array.to_list (column_array t col)

type view =
  | V_num of { data : float array; is_int : Bitset.t; nulls : Bitset.t }
  | V_txt of {
      codes : int array;
      dict : string array;
      dict_len : int;
      nulls : Bitset.t;
    }

let view t j =
  match t.cols.(j).c_store with
  | Cnum nc ->
      V_num { data = nc.nc_data; is_int = nc.nc_int; nulls = nc.nc_null }
  | Ctxt tc ->
      V_txt
        { codes = tc.tc_codes; dict = tc.tc_dict; dict_len = tc.tc_dict_len;
          nulls = tc.tc_null }

let find_code t j s =
  match t.cols.(j).c_store with
  | Cnum _ -> None
  | Ctxt tc -> Hashtbl.find_opt tc.tc_lookup s

let num_blocks t = (t.len + block - 1) / block

let zone t ~col ~blk = t.cols.(col).c_zones.(blk)

let column_range t col =
  let j = column_index t col in
  let acc = ref None in
  for b = 0 to num_blocks t - 1 do
    match zone t ~col:j ~blk:b with
    | None -> ()
    | Some (lo, hi) ->
        acc :=
          (match !acc with
          | None -> Some (lo, hi)
          | Some (lo', hi') ->
              let lo = if Value.compare lo lo' < 0 then lo else lo' in
              let hi = if Value.compare hi hi' > 0 then hi else hi' in
              Some (lo, hi))
  done;
  !acc
