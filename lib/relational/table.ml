type t = {
  tschema : Schema.table;
  mutable data : Value.t array array;
  mutable len : int;
}

let create tschema = { tschema; data = [||]; len = 0 }
let schema t = t.tschema
let name t = t.tschema.Schema.tbl_name
let row_count t = t.len

let column_index t col =
  let rec find i = function
    | [] ->
        invalid_arg
          (Printf.sprintf "Table.column_index: no column %s.%s" (name t) col)
    | c :: rest ->
        if String.equal c.Schema.col_name col then i else find (i + 1) rest
  in
  find 0 t.tschema.Schema.tbl_columns

let grow t =
  let cap = Array.length t.data in
  let cap' = if cap = 0 then 16 else cap * 2 in
  let data' = Array.make cap' [||] in
  Array.blit t.data 0 data' 0 t.len;
  t.data <- data'

let insert t row =
  let cols = t.tschema.Schema.tbl_columns in
  let arity = List.length cols in
  if Array.length row <> arity then
    invalid_arg
      (Printf.sprintf "Table.insert: table %s expects %d values, got %d" (name t)
         arity (Array.length row));
  List.iteri
    (fun i c ->
      if not (Datatype.value_matches c.Schema.col_type row.(i)) then
        invalid_arg
          (Printf.sprintf "Table.insert: %s.%s expects %s, got %s" (name t)
             c.Schema.col_name
             (Datatype.to_string c.Schema.col_type)
             (Value.to_sql row.(i))))
    cols;
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- row;
  t.len <- t.len + 1

let insert_all t rows = List.iter (insert t) rows
let rows t = Array.sub t.data 0 t.len

let get t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Table.get: row %d out of %d in %s" i t.len (name t));
  t.data.(i)

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

let column_values t col =
  let idx = column_index t col in
  List.rev (fold (fun acc row -> row.(idx) :: acc) [] t)

let column_range t col =
  let idx = column_index t col in
  fold
    (fun acc row ->
      let v = row.(idx) in
      if Value.is_null v then acc
      else
        match acc with
        | None -> Some (v, v)
        | Some (lo, hi) ->
            let lo = if Value.compare v lo < 0 then v else lo in
            let hi = if Value.compare v hi > 0 then v else hi in
            Some (lo, hi))
    None t
