(** Duolint diagnostics: a rule identifier, the clause it fired on, and a
    rendered message.

    Severity is a function of the rule, fixed by design: {e errors} mark
    queries that can never be a correct intent (type violations, empty
    predicates, broken structure) and are safe to prune; {e warnings} mark
    suspicious but executable queries (redundancy) and only deprioritize
    partial queries during enumeration. *)

type severity = Error | Warning

type clause = Select | From | Where | Group_by | Having | Order_by | Limit

type rule =
  | Unknown_table
  | Unknown_column
  | Aggregate_type
  | Comparison_type
  | Unsatisfiable_where
  | Unsatisfiable_having
  | Table_not_joined
  | Disconnected_from
  | Ungrouped_aggregation
  | Projection_not_grouped
  | Unnecessary_group_by
  | Group_by_primary_key
  | Nonpositive_limit
  | Duplicate_predicate
  | Subsumed_predicate
  | Duplicate_projection
  | Self_join
  | Duplicate_join
  | Constant_output
  | Order_by_unprojected

type t = {
  d_rule : rule;
  d_clause : clause;
  d_message : string;
}

val severity : rule -> severity
val is_error : t -> bool
val rule_name : rule -> string
val clause_name : clause -> string

val make : rule -> clause -> ('a, unit, string, t) format4 -> 'a
(** [make rule clause fmt ...] builds a diagnostic with a printf-rendered
    message. *)

val pp : Format.formatter -> t -> unit
