(** Open-world clause view of a query under construction.

    Duolint never sees {!Duocore.Partial} directly (the dependency points
    the other way); callers project their states into this record.  Each
    clause carries the decided parts plus a finality flag.  The pruning
    discipline: a rule may read decided parts at any time, but may only
    conclude from {e absence} — "no GROUP BY", "no more predicates" —
    when the clause's flag says the clause is final.  A partial query that
    could still repair itself must never be rejected. *)

type t = {
  o_select : Duosql.Ast.proj list;  (** decided projections, in order *)
  o_select_final : bool;
  o_from : Duosql.Ast.from_clause option;
  o_from_final : bool;
      (** joinpath construction replaces the FROM clause wholesale, so
          structural FROM errors fire only when this is set *)
  o_where : Duosql.Ast.pred list;  (** decided WHERE predicates *)
  o_where_conn : Duosql.Ast.connective option;  (** [Some] once decided *)
  o_where_final : bool;
  o_group_by : Duosql.Ast.col_ref list;
  o_group_final : bool;
      (** true also when the keyword set rules GROUP BY out entirely *)
  o_having : Duosql.Ast.pred list;
  o_having_conn : Duosql.Ast.connective option;
  o_having_final : bool;
  o_order_by : Duosql.Ast.order_item list;
  o_order_final : bool;
  o_limit : int option;
  o_limit_final : bool;
}

val empty : t
(** Nothing decided, nothing final: no rule can fire. *)

val of_query : Duosql.Ast.query -> t
(** The closed world of a complete query: every clause final. *)
