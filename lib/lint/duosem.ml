open Duosql.Ast
module Schema = Duodb.Schema
module Value = Duodb.Value

(* Duosem: database-free semantic analysis.  Three layers, all reading
   nothing but the query/outline and the schema:

   1. a canonicalizer rewriting queries into a normal form (sorted
      conjuncts, oriented and sorted join edges, per-target interval
      folding that subsumes BETWEEN<->range normalization, duplicate and
      subsumed-conjunct elimination, constant folding) so that
      semantically equal candidates collide on [canonical_key];
   2. a constraint reasoner over schema PK/FK facts plus the
      {!Domain} intervals (predicate implication, redundant DISTINCT,
      key-preserving join elimination), surfaced as facts for
      [duolint --explain];
   3. a cardinality bounder assigning each (partial) query an abstract
      row-count interval, the enumerator's database-free prune rule
      against the TSQ's required tuple count.

   The dialect keeps negation at the predicate leaves ([!=], [NOT LIKE])
   and has no NULL tests, so NOT-pushdown normalization reduces to
   folding [!=] into the domain's exclusion sets. *)

(* --- canonicalizer --- *)

let same_target (p : pred) (q : pred) =
  equal_agg p.pr_agg q.pr_agg
  &&
  match p.pr_col, q.pr_col with
  | None, None -> true
  | Some a, Some b -> equal_col_ref a b
  | None, Some _ | Some _, None -> false

(* Predicates are ordered (and deduplicated) by their rendering, which is
   injective up to value equality — [Int 5] and [Float 5.0] both print
   "5" and compare equal, so a rendering collision is always a semantic
   equality. *)
let compare_preds a b = String.compare (Duosql.Pretty.pred a) (Duosql.Pretty.pred b)
let sorted_preds ps = List.sort_uniq compare_preds ps

let target_pred (rep : pred) rhs =
  { pr_agg = rep.pr_agg; pr_col = rep.pr_col; pr_rhs = rhs }

(* Render a (non-empty) abstract element back into the canonical
   predicate list with exactly the same satisfying set: a point becomes
   [=], two inclusive bounds become [BETWEEN], single/strict bounds
   become the matching comparison, exclusions become [!=].  [None] for
   [Bot]: an unsatisfiable conjunction has no canonical rendering, the
   caller keeps the original predicates (the linter flags them). *)
let rendered rep d =
  match d with
  | Domain.Bot -> None
  | Domain.Itv { lo; hi; excl } ->
      let bounds =
        match Domain.concretize d with
        | Some v -> [ target_pred rep (Cmp (Eq, v)) ]
        | None -> (
            match lo, hi with
            | Some (l, false), Some (h, false) ->
                [ target_pred rep (Between (l, h)) ]
            | (Some _ | None), (Some _ | None) ->
                (match lo with
                | Some (l, true) -> [ target_pred rep (Cmp (Gt, l)) ]
                | Some (l, false) -> [ target_pred rep (Cmp (Ge, l)) ]
                | None -> [])
                @ (match hi with
                  | Some (h, true) -> [ target_pred rep (Cmp (Lt, h)) ]
                  | Some (h, false) -> [ target_pred rep (Cmp (Le, h)) ]
                  | None -> []))
      in
      Some (bounds @ List.map (fun v -> target_pred rep (Cmp (Neq, v))) excl)

let canonical_conjuncts preds =
  let rec split groups = function
    | [] -> List.rev groups
    | p :: rest ->
        let mine, other = List.partition (same_target p) rest in
        split ((p :: mine) :: groups) other
  in
  let folded =
    List.concat_map
      (fun group ->
        (* Only exactly-abstracted predicates fold through the domain;
           LIKE/NOT LIKE over-approximate and are kept verbatim. *)
        let exact, opaque =
          List.partition (fun (p : pred) -> Domain.exact_rhs p.pr_rhs) group
        in
        match exact with
        | [] -> opaque
        | rep :: _ -> (
            let d =
              List.fold_left
                (fun d (p : pred) -> Domain.meet d (Domain.of_rhs p.pr_rhs))
                Domain.top exact
            in
            match rendered rep d with
            | Some ps -> ps @ opaque
            | None -> exact @ opaque))
      (split [] preds)
  in
  sorted_preds folded

let canonical_condition = function
  | None -> None
  | Some c -> (
      let ps =
        match c.c_conn with
        | And -> canonical_conjuncts c.c_preds
        | Or ->
            if List.length c.c_preds <= 1 then canonical_conjuncts c.c_preds
            else sorted_preds c.c_preds (* OR is commutative and idempotent *)
      in
      match ps with
      | [] -> None
      | _ :: _ ->
          let conn = if List.length ps <= 1 then And else c.c_conn in
          Some { c_preds = ps; c_conn = conn })

let compare_cols a b =
  String.compare (Duosql.Pretty.col_ref a) (Duosql.Pretty.col_ref b)

(* Join equality is symmetric: orient each edge by its rendered
   endpoints, then sort the edge list.  Duplicate edges (after
   orientation) are dropped — a conjunction is idempotent. *)
let canonical_edge (e : join_edge) =
  if compare_cols e.j_from e.j_to <= 0 then e
  else { j_from = e.j_to; j_to = e.j_from }

let compare_edges a b =
  let render (e : join_edge) =
    Duosql.Pretty.col_ref e.j_from ^ "=" ^ Duosql.Pretty.col_ref e.j_to
  in
  String.compare (render a) (render b)

let canonical_from (f : from_clause) =
  {
    f_tables = List.sort_uniq String.compare f.f_tables;
    f_joins = List.sort_uniq compare_edges (List.map canonical_edge f.f_joins);
  }

(* Whether the query's result multiset can depend on base row order —
   and hence on the FROM clause's table/edge order, which steers the
   executor's scan order.  Two cases: LIMIT truncates at a row-order-
   dependent cut (absent a provably tie-free ORDER BY, which is not
   decidable here), and a bare column projected next to aggregation (or
   outside its GROUP BY key) is picked from the group's first row. *)
let order_sensitive (q : query) =
  q.q_limit <> None
  ||
  let has_agg =
    List.exists (fun (p : proj) -> Option.is_some p.p_agg) q.q_select
    || List.exists (fun (o : order_item) -> Option.is_some o.o_agg) q.q_order_by
    || (match q.q_having with
       | Some c -> List.exists (fun (p : pred) -> Option.is_some p.pr_agg) c.c_preds
       | None -> false)
  in
  (has_agg || q.q_group_by <> [])
  && List.exists
       (fun (p : proj) ->
         p.p_agg = None
         &&
         match p.p_col with
         | Some c -> not (List.exists (equal_col_ref c) q.q_group_by)
         | None -> false)
       q.q_select

(* SELECT and ORDER BY stay positional (output columns and sort keys are
   ordered); everything multiset-like is sorted.  The FROM clause is
   sorted only when the result multiset provably cannot observe scan
   order ([order_sensitive]). *)
let canonical_query (q : query) =
  {
    q with
    q_from = (if order_sensitive q then q.q_from else canonical_from q.q_from);
    q_where = canonical_condition q.q_where;
    q_group_by = List.sort_uniq compare_cols q.q_group_by;
    q_having = canonical_condition q.q_having;
  }

let canonical_key q = Duosql.Pretty.query (canonical_query q)
let equal_queries a b = String.equal (canonical_key a) (canonical_key b)

(* Candidate-dedup key: like [canonical_key] but with the FROM clause
   unconditionally sorted — the multiset view [Duosql.Equal.queries]
   already takes, so replacing the emission-dedup scan with this key
   never emits a pair the old scan would have collapsed.  Not a semantic
   equivalence on order-sensitive queries; rankings treat scan-order
   variants as one candidate by design. *)
let dedup_key (q : query) =
  Duosql.Pretty.query { (canonical_query q) with q_from = canonical_from q.q_from }

(* --- prepared schema facts --- *)

type prepared = {
  s_schema : Schema.t;
  s_pk : (string, string list) Hashtbl.t;  (* table -> primary key *)
}

let prepare (schema : Schema.t) =
  let s_pk = Hashtbl.create 16 in
  List.iter
    (fun (t : Schema.table) ->
      Hashtbl.replace s_pk t.Schema.tbl_name t.Schema.tbl_pk)
    schema.Schema.tables;
  { s_schema = schema; s_pk }

let single_pk pre tbl col =
  match Hashtbl.find_opt pre.s_pk tbl with
  | Some [ k ] -> String.equal k col
  | Some _ | None -> false

(* --- constraint reasoner / cardinality bounder --- *)

(* The decided predicates usable as conjuncts.  With a known AND (or a
   single predicate) every decided predicate must hold on every result
   row of every completion — additional conjuncts only shrink the result.
   With an undecided connective a later OR could weaken any decided
   predicate, so nothing can be assumed. *)
let conjuncts (o : Outline.t) =
  match o.Outline.o_where_conn with
  | Some And -> o.Outline.o_where
  | Some Or -> ( match o.Outline.o_where with [ p ] -> [ p ] | _ -> [])
  | None ->
      if o.Outline.o_where_final && List.length o.Outline.o_where <= 1 then
        o.Outline.o_where
      else []

let point_value (p : pred) =
  match p.pr_rhs with
  | Cmp (Eq, v) when not (Value.is_null v) -> Some v
  | Between (lo, hi) when (not (Value.is_null lo)) && Value.equal lo hi ->
      Some lo
  | Cmp ((Eq | Neq | Lt | Le | Gt | Ge | Like | Not_like), _) | Between _ ->
      None

(* Tables whose full primary key is fixed to constants by point
   predicates among the conjuncts: at most one surviving row each. *)
let pinned_tables pre conj =
  List.filter_map
    (fun (tbl : Schema.table) ->
      match tbl.Schema.tbl_pk with
      | [] -> None
      | pk ->
          if
            List.for_all
              (fun k ->
                List.exists
                  (fun (p : pred) ->
                    p.pr_agg = None
                    && (match p.pr_col with
                       | Some c ->
                           String.equal c.cr_table tbl.Schema.tbl_name
                           && String.equal c.cr_col k
                       | None -> false)
                    && Option.is_some (point_value p))
                  conj)
              pk
          then Some tbl.Schema.tbl_name
          else None)
    pre.s_schema.Schema.tables

(* Close a set of row-pinned tables over key-preserving join edges: a
   table [u] joined on its full single-column primary key to an
   already-pinned side contributes at most one row per join row, so the
   joined relation stays pinned. *)
let pinned_closure pre (f : from_clause) seed =
  let pinned = Hashtbl.create 8 in
  List.iter (fun t -> Hashtbl.replace pinned t ()) seed;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (e : join_edge) ->
        let try_side (u : col_ref) (v : col_ref) =
          if
            Hashtbl.mem pinned v.cr_table
            && (not (Hashtbl.mem pinned u.cr_table))
            && single_pk pre u.cr_table u.cr_col
          then begin
            Hashtbl.replace pinned u.cr_table ();
            changed := true
          end
        in
        try_side e.j_from e.j_to;
        try_side e.j_to e.j_from)
      f.f_joins
  done;
  pinned

type card = { c_lo : int; c_hi : int option }

let card_to_string c =
  Printf.sprintf "[%d, %s]" c.c_lo
    (match c.c_hi with None -> "inf" | Some n -> string_of_int n)

(* Abstract row-count interval of every completion of the outline.
   Soundness argument per rule (DESIGN.md, "Duosem"):
   - aggregation without GROUP BY evaluates over the single implicit
     group, so any well-formed completion returns at most one row
     (exactly one when nothing can filter or truncate the output);
     mixed aggregate/plain completions are semantic errors and satisfy
     no TSQ, so they need no bound.  The rule only needs the group
     clause to be decided empty — it is FROM- and WHERE-independent.
   - a final FROM whose every table is pinned (full-PK point predicates,
     closed over key-preserving join edges) yields at most one joined
     row; later conjuncts, grouping, HAVING and LIMIT only shrink that.
     The rule requires the final FROM: join-path growth could multiply
     rows through a later fan-out edge.
   - a final nonempty GROUP BY whose every column's abstract domain
     (the meet of the conjuncts' abstractions) is a single point admits
     at most one group, hence at most one output row.  Sound even
     through over-approximate abstractions (LIKE): if the
     over-approximation is a singleton the true value set is contained
     in it, so the group-key space still has at most one element; NULL
     group keys cannot occur because every abstraction excludes NULL.
     Finality matters: a further GROUP BY column could split the group.
   - a decided LIMIT k caps the output at k rows. *)
let bound pre (o : Outline.t) =
  let hi = ref None in
  let cap n = hi := Some (match !hi with None -> n | Some m -> min m n) in
  let has_agg =
    List.exists (fun (p : proj) -> Option.is_some p.p_agg) o.Outline.o_select
  in
  let agg_no_group =
    has_agg && o.Outline.o_group_final && o.Outline.o_group_by = []
  in
  if agg_no_group then cap 1;
  (match o.Outline.o_group_by with
  | _ :: _ as group when o.Outline.o_group_final ->
      let conj = conjuncts o in
      let pinned_col (c : col_ref) =
        let d =
          List.fold_left
            (fun d (p : pred) ->
              if
                p.pr_agg = None
                && match p.pr_col with
                   | Some pc -> equal_col_ref pc c
                   | None -> false
              then Domain.meet d (Domain.of_rhs p.pr_rhs)
              else d)
            Domain.top conj
        in
        Option.is_some (Domain.concretize d)
      in
      if List.for_all pinned_col group then cap 1
  | _ :: _ | [] -> ());
  (if o.Outline.o_from_final then
     match o.Outline.o_from with
     | Some f when f.f_tables <> [] -> (
         match pinned_tables pre (conjuncts o) with
         | [] -> ()
         | seed ->
             let pinned = pinned_closure pre f seed in
             if List.for_all (fun t -> Hashtbl.mem pinned t) f.f_tables then
               cap 1)
     | Some _ | None -> ());
  (match o.Outline.o_limit with Some n -> cap (max n 0) | None -> ());
  let lo =
    if
      agg_no_group && o.Outline.o_select_final && o.Outline.o_having = []
      && o.Outline.o_having_final && o.Outline.o_limit_final
      && (match o.Outline.o_limit with None -> true | Some n -> n >= 1)
    then 1
    else 0
  in
  { c_lo = lo; c_hi = !hi }

let bound_query pre q = bound pre (Outline.of_query q)

(* DISTINCT adds nothing when the output rows are provably distinct
   already: a single-row result, a grouped query projecting its whole
   group key, or a single-table query projecting the table's whole
   primary key. *)
let redundant_distinct pre (q : query) =
  q.q_distinct
  &&
  let plain_cols =
    List.filter_map
      (fun (p : proj) -> if p.p_agg = None then p.p_col else None)
      q.q_select
  in
  (match (bound_query pre q).c_hi with Some n -> n <= 1 | None -> false)
  || (match q.q_group_by with
     | _ :: _ as group ->
         List.for_all
           (fun gc -> List.exists (equal_col_ref gc) plain_cols)
           group
     | [] -> (
         match q.q_from.f_tables with
         | [ t ] -> (
             match Hashtbl.find_opt pre.s_pk t with
             | Some (_ :: _ as pk) ->
                 List.for_all
                   (fun k ->
                     List.exists
                       (fun c ->
                         String.equal c.cr_table t && String.equal c.cr_col k)
                       plain_cols)
                   pk
             | Some [] | None -> false)
         | _ -> false))

(* A FROM table that no other clause reads and that joins through a
   single key-preserving edge only restricts rows; under enforced FK
   integrity the join is removable outright. *)
let eliminable_joins pre (q : query) =
  let referenced = Duosql.Ast.referenced_tables q in
  List.filter
    (fun t ->
      (not (List.mem t referenced))
      &&
      let incident =
        List.filter
          (fun (e : join_edge) ->
            String.equal e.j_from.cr_table t || String.equal e.j_to.cr_table t)
          q.q_from.f_joins
      in
      match incident with
      | [ e ] ->
          let mine, _other =
            if String.equal e.j_from.cr_table t then (e.j_from, e.j_to)
            else (e.j_to, e.j_from)
          in
          single_pk pre t mine.cr_col
      | [] | _ :: _ :: _ -> false)
    q.q_from.f_tables

(* Predicate implication among the conjuncts, with the subsumption
   soundness rule: the implied side must abstract exactly. *)
let implication_facts conj =
  let arr = Array.of_list conj in
  let doms = Array.map (fun (p : pred) -> Domain.of_rhs p.pr_rhs) arr in
  let out = ref [] in
  Array.iteri
    (fun i pi ->
      Array.iteri
        (fun j pj ->
          if
            i <> j && same_target pi pj
            && (not (equal_pred pi pj))
            && Domain.exact_rhs pj.pr_rhs
            && (not (Domain.is_top doms.(j)))
            && Domain.leq doms.(i) doms.(j)
          then
            out :=
              Printf.sprintf "%s implies %s (the weaker predicate is redundant)"
                (Duosql.Pretty.pred pi) (Duosql.Pretty.pred pj)
              :: !out)
        arr)
    arr;
  List.rev !out

let facts pre (q : query) =
  let o = Outline.of_query q in
  let conj = conjuncts o in
  let out = ref [] in
  let add fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  List.iter
    (fun t -> add "%s is pinned to at most one row by primary-key point predicates" t)
    (pinned_tables pre conj);
  List.iter
    (fun (e : join_edge) ->
      let keyed (u : col_ref) (v : col_ref) =
        if single_pk pre u.cr_table u.cr_col then
          add "join %s = %s is key-preserving: each %s row matches at most one %s row"
            (Duosql.Pretty.col_ref u) (Duosql.Pretty.col_ref v) v.cr_table
            u.cr_table
      in
      keyed e.j_from e.j_to;
      keyed e.j_to e.j_from)
    q.q_from.f_joins;
  List.iter
    (fun t ->
      add "%s is join-eliminable: unreferenced outside FROM and joined on its primary key (assuming FK integrity)"
        t)
    (eliminable_joins pre q);
  List.iter (fun s -> add "%s" s) (implication_facts conj);
  if redundant_distinct pre q then add "DISTINCT is redundant: output rows are already distinct";
  List.rev !out

type explanation = {
  ex_canonical : string;
  ex_facts : string list;
  ex_card : card;
}

let explain pre q =
  { ex_canonical = canonical_key q; ex_facts = facts pre q; ex_card = bound_query pre q }
