module Value = Duodb.Value

(* A bound is a value plus a strictness flag: [(v, true)] excludes [v]
   itself.  The domain is ordered by [Value.compare], which totally orders
   the mixed value universe (numbers before text), so text constants are
   just point intervals and cross-type predicates still abstract soundly:
   [meet = Bot] always means no single value satisfies every predicate. *)
type bound = Value.t * bool

type t =
  | Bot
  | Itv of {
      lo : bound option;  (** [None] is unbounded below *)
      hi : bound option;  (** [None] is unbounded above *)
      excl : Value.t list;  (** excluded points, sorted and inside the bounds *)
    }

let top = Itv { lo = None; hi = None; excl = [] }
let bot = Bot
let is_bot = function Bot -> true | Itv _ -> false

let is_top = function
  | Itv { lo = None; hi = None; excl = [] } -> true
  | Bot | Itv _ -> false

(* Membership of a non-null value.  NULL satisfies no SQL comparison, so
   every abstract element describes sets of non-null values and [mem Null]
   is uniformly false — including for [top]. *)
let mem v = function
  | Bot -> false
  | Itv { lo; hi; excl } ->
      (not (Value.is_null v))
      && (match lo with
         | None -> true
         | Some (l, strict) ->
             let c = Value.compare v l in
             if strict then c > 0 else c >= 0)
      && (match hi with
         | None -> true
         | Some (h, strict) ->
             let c = Value.compare v h in
             if strict then c < 0 else c <= 0)
      && not (List.exists (Value.equal v) excl)

(* Smart constructor: collapse empty intervals to [Bot] and prune excluded
   points to the ones actually inside the bounds, keeping them sorted so
   structural equality is canonical. *)
let norm lo hi excl =
  let empty =
    match lo, hi with
    | Some (l, ls), Some (h, hs) ->
        let c = Value.compare l h in
        c > 0 || (c = 0 && (ls || hs || List.exists (Value.equal l) excl))
    | Some _, None | None, Some _ | None, None -> false
  in
  if empty then Bot
  else
    let bounds_only = Itv { lo; hi; excl = [] } in
    let excl =
      List.sort_uniq Value.compare (List.filter (fun v -> mem v bounds_only) excl)
    in
    Itv { lo; hi; excl }

let point v = if Value.is_null v then Bot else norm (Some (v, false)) (Some (v, false)) []
let abstract = point

let concretize = function
  | Itv { lo = Some (l, false); hi = Some (h, false); excl = [] }
    when Value.equal l h ->
      Some l
  | Bot | Itv _ -> None

let equal_bound a b =
  match a, b with
  | None, None -> true
  | Some (va, sa), Some (vb, sb) -> Value.equal va vb && sa = sb
  | None, Some _ | Some _, None -> false

let equal a b =
  match a, b with
  | Bot, Bot -> true
  | Bot, Itv _ | Itv _, Bot -> false
  | Itv a, Itv b ->
      equal_bound a.lo b.lo && equal_bound a.hi b.hi
      && List.equal Value.equal a.excl b.excl

(* Lower bounds ordered by tightness: a strict bound at [v] is tighter
   (larger) than a non-strict one.  Dually for upper bounds. *)
let max_lo a b =
  match a, b with
  | None, x | x, None -> x
  | Some (va, sa), Some (vb, sb) ->
      let c = Value.compare va vb in
      if c > 0 then a else if c < 0 then b else Some (va, sa || sb)

let min_hi a b =
  match a, b with
  | None, x | x, None -> x
  | Some (va, sa), Some (vb, sb) ->
      let c = Value.compare va vb in
      if c < 0 then a else if c > 0 then b else Some (va, sa || sb)

let meet a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Itv ia, Itv ib ->
      norm (max_lo ia.lo ib.lo) (min_hi ia.hi ib.hi) (ia.excl @ ib.excl)

let join a b =
  match a, b with
  | Bot, d | d, Bot -> d
  | Itv ia, Itv ib ->
      let lo =
        match ia.lo, ib.lo with
        | None, _ | _, None -> None
        | Some (va, sa), Some (vb, sb) ->
            let c = Value.compare va vb in
            if c < 0 then Some (va, sa)
            else if c > 0 then Some (vb, sb)
            else Some (va, sa && sb)
      in
      let hi =
        match ia.hi, ib.hi with
        | None, _ | _, None -> None
        | Some (va, sa), Some (vb, sb) ->
            let c = Value.compare va vb in
            if c > 0 then Some (va, sa)
            else if c < 0 then Some (vb, sb)
            else Some (va, sa && sb)
      in
      (* A point may be excluded from the hull only when neither operand
         contains it — the join must over-approximate the union. *)
      let excl =
        List.filter (fun v -> (not (mem v a)) && not (mem v b)) (ia.excl @ ib.excl)
      in
      norm lo hi excl

(* Standard interval widening, [widen old next]: a bound that moved since
   the previous iterate is dropped to infinity; exclusions only ever
   shrink (subset of the old ones), so chains stabilize. *)
let widen a b =
  match a, b with
  | Bot, d | d, Bot -> d
  | Itv ia, Itv ib ->
      let lo =
        match ia.lo, ib.lo with
        | Some (va, sa), Some (vb, sb)
          when Value.compare vb va > 0 || (Value.equal va vb && (sb || not sa)) ->
            ia.lo
        | (None | Some _), _ -> None
      in
      let hi =
        match ia.hi, ib.hi with
        | Some (va, sa), Some (vb, sb)
          when Value.compare vb va < 0 || (Value.equal va vb && (sb || not sa)) ->
            ia.hi
        | (None | Some _), _ -> None
      in
      let excl = List.filter (fun v -> not (mem v b)) ia.excl in
      norm lo hi excl

(* [leq a b]: every value of [a] lies in [b].  Exact on this domain:
   the meet computes canonical bounds, so inclusion is an equality test. *)
let leq a b = equal (meet a b) a

(* Smallest string strictly above every string with prefix [s] in byte
   order: increment the last incrementable byte and truncate there.
   [None] when no such string exists (all bytes are 0xff). *)
let succ_string s =
  let rec last_incr i =
    if i < 0 then None
    else if Char.code s.[i] < 0xff then Some i
    else last_incr (i - 1)
  in
  match last_incr (String.length s - 1) with
  | None -> None
  | Some i ->
      Some
        (String.init (i + 1) (fun j ->
             if j < i then s.[j] else Char.chr (Char.code s.[j] + 1)))

(* The literal prefix of a LIKE pattern: the characters before the first
   wildcard, and whether a wildcard follows. *)
let like_prefix p =
  let n = String.length p in
  let rec go i = if i < n && p.[i] <> '%' && p.[i] <> '_' then go (i + 1) else i in
  let k = go 0 in
  (String.sub p 0 k, k < n)

(* LIKE matches case-insensitively ([Value.like] folds both sides), so
   its satisfying set is not exactly an interval of the case-sensitive
   order.  But a pattern with a non-leading wildcard still pins every
   matching string into the prefix's lexicographic band: each byte of the
   match's prefix is the pattern byte in either case, uppercase ASCII
   sorts below lowercase, hence
   [uppercase(prefix) <= s < succ(lowercase(prefix))].  A wildcard-free
   pattern tightens the upper bound to [lowercase(pattern)] inclusive.
   The result over-approximates (e.g. ["aZ"] lies in the band of
   [LIKE 'ab%'] without matching), so it is sound for unsatisfiability
   but not for implication — see {!exact_rhs}. *)
let of_like v =
  match v with
  | Value.Text p ->
      let prefix, wildcards = like_prefix p in
      if prefix = "" then top
      else
        let lo = Some (Value.Text (String.uppercase_ascii prefix), false) in
        let hi =
          if wildcards then
            match succ_string (String.lowercase_ascii prefix) with
            | Some s -> Some (Value.Text s, true)
            | None -> None
          else Some (Value.Text (String.lowercase_ascii p), false)
        in
        norm lo hi []
  | Value.Null | Value.Int _ | Value.Float _ ->
      (* non-text pattern: a type error upstream; stay sound with top *)
      top

let of_rhs (rhs : Duosql.Ast.pred_rhs) =
  match rhs with
  | Duosql.Ast.Cmp (op, v) ->
      if Value.is_null v then Bot (* no comparison against NULL holds *)
      else (
        match op with
        | Duosql.Ast.Eq -> point v
        | Duosql.Ast.Neq -> norm None None [ v ]
        | Duosql.Ast.Lt -> norm None (Some (v, true)) []
        | Duosql.Ast.Le -> norm None (Some (v, false)) []
        | Duosql.Ast.Gt -> norm (Some (v, true)) None []
        | Duosql.Ast.Ge -> norm (Some (v, false)) None []
        | Duosql.Ast.Like -> of_like v
        (* the complement of a LIKE set is not an interval at all *)
        | Duosql.Ast.Not_like -> top)
  | Duosql.Ast.Between (lo, hi) ->
      if Value.is_null lo || Value.is_null hi then Bot
      else norm (Some (lo, false)) (Some (hi, false)) []

(* Whether [of_rhs rhs] is the predicate's exact satisfying set rather
   than an over-approximation.  Comparisons and BETWEEN abstract exactly;
   LIKE/NOT LIKE do not (case-folding).  Only exact abstractions may sit
   on the implied side of a subsumption argument. *)
let exact_rhs (rhs : Duosql.Ast.pred_rhs) =
  match rhs with
  | Duosql.Ast.Cmp ((Duosql.Ast.Like | Duosql.Ast.Not_like), _) -> false
  | Duosql.Ast.Cmp
      ( ( Duosql.Ast.Eq | Duosql.Ast.Neq | Duosql.Ast.Lt | Duosql.Ast.Le
        | Duosql.Ast.Gt | Duosql.Ast.Ge ),
        _ )
  | Duosql.Ast.Between _ ->
      true

let pp fmt = function
  | Bot -> Format.pp_print_string fmt "bot"
  | Itv { lo; hi; excl } ->
      let bound side fmt = function
        | None -> Format.pp_print_string fmt (if side = `Lo then "(-inf" else "+inf)")
        | Some (v, strict) ->
            if side = `Lo then
              Format.fprintf fmt "%s%a" (if strict then "(" else "[") Value.pp v
            else Format.fprintf fmt "%a%s" Value.pp v (if strict then ")" else "]")
      in
      Format.fprintf fmt "%a, %a" (bound `Lo) lo (bound `Hi) hi;
      if excl <> [] then
        Format.fprintf fmt " \\ {%a}"
          (Format.pp_print_list
             ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
             Value.pp)
          excl
