(** Interval/constant abstract domain over {!Duodb.Value.t}.

    One abstract element describes the set of non-null values a column may
    take under a conjunction of predicates: an interval with optionally
    strict bounds plus a finite set of excluded points (from [!=]).  Text
    constants are point intervals — [Value.compare] totally orders the
    mixed value universe — so ['a' = x AND x = 'b'] bottoms out exactly
    like [x > 5 AND x < 3].

    NULL satisfies no SQL comparison, so every element (including {!top})
    denotes non-null values only and [mem Null d] is always [false]. *)

type bound = Duodb.Value.t * bool
(** A bound value and its strictness: [(v, true)] excludes [v] itself. *)

type t =
  | Bot  (** the empty set: an unsatisfiable conjunction *)
  | Itv of {
      lo : bound option;
      hi : bound option;
      excl : Duodb.Value.t list;
    }

val top : t
val bot : t
val is_bot : t -> bool
val is_top : t -> bool

val point : Duodb.Value.t -> t
(** Singleton set; [Bot] for [Null]. *)

val abstract : Duodb.Value.t -> t
(** Alias of {!point}: the abstraction of one concrete value. *)

val concretize : t -> Duodb.Value.t option
(** The single concrete value of a singleton element, if it is one.
    [concretize (abstract v) = Some v] for every non-null [v]. *)

val mem : Duodb.Value.t -> t -> bool

val of_rhs : Duosql.Ast.pred_rhs -> t
(** Abstraction of one predicate right-hand side.  A [LIKE] pattern with
    a literal prefix (no leading wildcard) abstracts to the prefix's
    lexicographic band with case-folded bounds —
    [[uppercase(prefix), succ(lowercase(prefix)))], tightened to
    [lowercase(pattern)] inclusive when the pattern has no wildcard at
    all; leading-wildcard [LIKE] and every [NOT LIKE] abstract to {!top}.
    The [LIKE] bands {e over}-approximate (sound for unsatisfiability,
    not for implication — see {!exact_rhs}). *)

val exact_rhs : Duosql.Ast.pred_rhs -> bool
(** Whether {!of_rhs} returns the predicate's exact satisfying set.
    [true] for comparisons and [BETWEEN]; [false] for [LIKE]/[NOT LIKE],
    whose abstractions over-approximate.  Subsumption reasoning may only
    conclude "[p] implies [q]" from [leq (of_rhs p) (of_rhs q)] when
    [exact_rhs q] holds. *)

val meet : t -> t -> t
(** Set intersection, exact on this domain. *)

val join : t -> t -> t
(** Over-approximation of set union (interval hull; a point stays
    excluded only when neither operand contains it). *)

val widen : t -> t -> t
(** [widen old next]: drop any bound that moved since [old] to infinity
    and keep only the exclusions [next] still rules out, so ascending
    chains stabilize in finitely many steps. *)

val leq : t -> t -> bool
(** Set inclusion, exact on this domain. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
