open Duosql.Ast
module Schema = Duodb.Schema
module Datatype = Duodb.Datatype
module Value = Duodb.Value
module D = Diagnostic

(* Rules emit diagnostics through a callback so the boolean fast path
   ([has_errors], the cascade's stage 0) can short-circuit on the first
   error without accumulating a list. *)

let pp_col c = c.cr_table ^ "." ^ c.cr_col

(* The cascade evaluates the rules once per enumerator push, so schema
   lookups go through hash tables prepared once per session instead of
   walking the schema's table lists on every column reference.

   The memo slots exploit how partial states evolve: a push copies the
   state record and physically shares every clause it did not decide, and
   the enumerator verifies the children of one expansion back-to-back.
   Consecutive cascade calls therefore re-present the same clause lists,
   and a one-slot cache keyed on physical identity hits on all but the
   clause the child just changed. *)
type 'k memo = { mutable m_key : 'k; mutable m_ok : bool }

type prepared = {
  p_tables : (string, unit) Hashtbl.t;
  p_cols : (string * string, Datatype.t) Hashtbl.t;
  p_pks : (string * string, unit) Hashtbl.t;
  m_select : proj list memo;
  m_where : pred list memo;
  m_group : col_ref list memo;
  m_having : pred list memo;
  m_order : order_item list memo;
  m_where_sat : (pred list * connective) memo;
  m_having_sat : (pred list * connective) memo;
  m_from : from_clause memo;
}

let prepare (schema : Schema.t) =
  let p_tables = Hashtbl.create 16 in
  let p_cols = Hashtbl.create 64 in
  let p_pks = Hashtbl.create 16 in
  List.iter
    (fun (t : Schema.table) ->
      Hashtbl.replace p_tables t.Schema.tbl_name ();
      List.iter
        (fun (c : Schema.column) ->
          Hashtbl.replace p_cols
            (t.Schema.tbl_name, c.Schema.col_name)
            c.Schema.col_type)
        t.Schema.tbl_columns;
      List.iter
        (fun pk -> Hashtbl.replace p_pks (t.Schema.tbl_name, pk) ())
        t.Schema.tbl_pk)
    schema.Schema.tables;
  {
    p_tables;
    p_cols;
    p_pks;
    (* the empty clause carries no errors, so [m_ok = true] seeds every
       slot consistently with its initial key *)
    m_select = { m_key = []; m_ok = true };
    m_where = { m_key = []; m_ok = true };
    m_group = { m_key = []; m_ok = true };
    m_having = { m_key = []; m_ok = true };
    m_order = { m_key = []; m_ok = true };
    m_where_sat = { m_key = ([], And); m_ok = true };
    m_having_sat = { m_key = ([], And); m_ok = true };
    m_from = { m_key = { f_tables = []; f_joins = [] }; m_ok = true };
  }

let column_type pre (c : col_ref) =
  Hashtbl.find_opt pre.p_cols (c.cr_table, c.cr_col)

(* --- schema/type checking of decided column references --- *)

let check_col pre emit clause (c : col_ref) =
  if not (Hashtbl.mem pre.p_tables c.cr_table) then
    emit (D.make D.Unknown_table clause "no table named %s" c.cr_table)
  else if not (Hashtbl.mem pre.p_cols (c.cr_table, c.cr_col)) then
    emit (D.make D.Unknown_column clause "no column named %s" (pp_col c))

let check_agg pre emit clause agg col =
  match agg with
  | None | Some Count -> ()
  | Some ((Sum | Avg | Min | Max) as a) -> (
      match col with
      | None ->
          emit
            (D.make D.Aggregate_type clause "%s needs a column argument"
               (agg_to_string a))
      | Some c -> (
          match column_type pre c with
          | Some Datatype.Text ->
              emit
                (D.make D.Aggregate_type clause "%s over text column %s"
                   (agg_to_string a) (pp_col c))
          | Some Datatype.Number | None -> ()))

(* Mirror of [Duocore.Semantics.predicate_types_ok], split so an unknown
   column is reported once by [check_col] instead of as a type error. *)
let check_pred_types pre emit clause (p : pred) =
  let cmp_type =
    match p.pr_agg with
    | Some (Count | Sum | Avg) -> Some Datatype.Number
    | Some (Min | Max) | None -> Option.bind p.pr_col (column_type pre)
  in
  (match p.pr_agg, p.pr_col with
  | None, None ->
      emit (D.make D.Comparison_type clause "predicate without a column")
  | (None | Some _), _ -> ());
  match cmp_type with
  | None -> ()
  | Some ty -> (
      (* built on demand: the common case emits nothing *)
      let target () =
        match p.pr_agg, p.pr_col with
        | Some a, Some c -> agg_to_string a ^ "(" ^ pp_col c ^ ")"
        | Some a, None -> agg_to_string a ^ "(*)"
        | None, Some c -> pp_col c
        | None, None -> "?"
      in
      match p.pr_rhs with
      | Cmp ((Lt | Le | Gt | Ge) as op, v) ->
          if not (Datatype.equal ty Datatype.Number && Value.is_numeric v) then
            emit
              (D.make D.Comparison_type clause "%s %s %s compares non-numbers"
                 (target ()) (cmp_to_string op) (Value.to_sql v))
      | Between (lo, hi) ->
          if
            not
              (Datatype.equal ty Datatype.Number
              && Value.is_numeric lo && Value.is_numeric hi)
          then
            emit
              (D.make D.Comparison_type clause "%s BETWEEN over non-numbers"
                 (target ()))
      | Cmp ((Like | Not_like) as op, v) ->
          if
            not
              (Datatype.equal ty Datatype.Text
              &&
              match v with
              | Value.Text _ -> true
              | Value.Null | Value.Int _ | Value.Float _ -> false)
          then
            emit
              (D.make D.Comparison_type clause "%s %s %s needs text operands"
                 (target ()) (cmp_to_string op) (Value.to_sql v))
      | Cmp ((Eq | Neq) as op, v) ->
          if not (Datatype.value_matches ty v) then
            emit
              (D.make D.Comparison_type clause "%s %s %s mixes types"
                 (target ()) (cmp_to_string op) (Value.to_sql v)))

(* --- predicate satisfiability --- *)

let same_target (p : pred) (q : pred) =
  equal_agg p.pr_agg q.pr_agg
  &&
  match p.pr_col, q.pr_col with
  | None, None -> true
  | Some a, Some b -> equal_col_ref a b
  | None, Some _ | Some _, None -> false

let pred_target (p : pred) =
  match p.pr_agg, p.pr_col with
  | Some a, Some c -> agg_to_string a ^ "(" ^ pp_col c ^ ")"
  | Some a, None -> agg_to_string a ^ "(*)"
  | None, Some c -> pp_col c
  | None, None -> "?"

(* Unsatisfiability of a final condition.  AND: the per-target meet over
   the abstract domain must be non-empty for every target (predicates on
   different targets cannot contradict in this dialect — no column-column
   comparisons).  OR: the whole condition is unsatisfiable only when every
   disjunct alone is. *)
let check_condition emit clause rule preds conn =
  match preds, conn with
  | [], _ -> ()
  | _, Or when List.length preds > 1 ->
      if
        List.for_all (fun p -> Domain.is_bot (Domain.of_rhs p.pr_rhs)) preds
      then
        emit (D.make rule clause "every disjunct is unsatisfiable on its own")
  | _, (And | Or) ->
      let rec targets acc = function
        | [] -> List.rev acc
        | p :: rest ->
            if List.exists (same_target p) acc then targets acc rest
            else targets (p :: acc) rest
      in
      List.iter
        (fun rep ->
          let dom =
            List.fold_left
              (fun d p ->
                if same_target rep p then Domain.meet d (Domain.of_rhs p.pr_rhs)
                else d)
              Domain.top preds
          in
          if Domain.is_bot dom then
            emit
              (D.make rule clause "predicates on %s cannot all hold"
                 (pred_target rep)))
        (targets [] preds)

(* --- redundancy (warnings) --- *)

let check_duplicate_preds emit clause preds =
  let rec go = function
    | [] -> ()
    | p :: rest ->
        if List.exists (equal_pred p) rest then
          emit
            (D.make D.Duplicate_predicate clause "duplicate predicate on %s"
               (pred_target p));
        go (List.filter (fun q -> not (equal_pred p q)) rest)
  in
  go preds

(* Subsumption under a decided AND: a predicate whose satisfying set
   contains a strictly stronger sibling on the same target adds nothing.
   [top] never subsumes — "everything includes X" is not evidence of
   redundancy — and the implied side must abstract {e exactly}
   ([Domain.exact_rhs]): a LIKE band over-approximates, so containment in
   it proves nothing about the LIKE itself. *)
let check_subsumed emit clause preds conn =
  match conn with
  | Some And when List.length preds >= 2 ->
      let arr = Array.of_list preds in
      let doms = Array.map (fun p -> Domain.of_rhs p.pr_rhs) arr in
      let implied j = Domain.exact_rhs arr.(j).pr_rhs && not (Domain.is_top doms.(j)) in
      let n = Array.length arr in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if
            i <> j && j > i (* report each pair once, blaming the weaker *)
            && same_target arr.(i) arr.(j)
            && not (equal_pred arr.(i) arr.(j))
          then
            if implied j && Domain.leq doms.(i) doms.(j)
            then
              emit
                (D.make D.Subsumed_predicate clause "%s is implied by %s"
                   (Duosql.Pretty.pred arr.(j))
                   (Duosql.Pretty.pred arr.(i)))
            else if
              implied i && Domain.leq doms.(j) doms.(i)
            then
              emit
                (D.make D.Subsumed_predicate clause "%s is implied by %s"
                   (Duosql.Pretty.pred arr.(i))
                   (Duosql.Pretty.pred arr.(j)))
        done
      done
  | Some (And | Or) | None -> ()

let equal_proj (a : proj) (b : proj) =
  equal_agg a.p_agg b.p_agg && a.p_distinct = b.p_distinct
  && (match a.p_col, b.p_col with
     | None, None -> true
     | Some x, Some y -> equal_col_ref x y
     | None, Some _ | Some _, None -> false)

let check_duplicate_projs emit projs =
  let rec go = function
    | [] -> ()
    | p :: rest ->
        if List.exists (equal_proj p) rest then
          emit
            (D.make D.Duplicate_projection D.Select "duplicate projection %s"
               (Duosql.Pretty.proj p));
        go (List.filter (fun q -> not (equal_proj p q)) rest)
  in
  go projs

(* --- structural rules on the FROM clause --- *)

let equal_edge (a : join_edge) (b : join_edge) =
  (equal_col_ref a.j_from b.j_from && equal_col_ref a.j_to b.j_to)
  || (equal_col_ref a.j_from b.j_to && equal_col_ref a.j_to b.j_from)

(* Warnings on join edges fire on any decided FROM clause — they only
   deprioritize, so the open-world discipline does not apply. *)
let check_join_redundancy emit (f : from_clause) =
  List.iter
    (fun (e : join_edge) ->
      if equal_col_ref e.j_from e.j_to then
        emit
          (D.make D.Self_join D.From "join of %s with itself is always true"
             (pp_col e.j_from)))
    f.f_joins;
  let rec go = function
    | [] -> ()
    | e :: rest ->
        if List.exists (equal_edge e) rest then
          emit
            (D.make D.Duplicate_join D.From "duplicate join on %s = %s"
               (pp_col e.j_from) (pp_col e.j_to));
        go (List.filter (fun e' -> not (equal_edge e e')) rest)
  in
  go f.f_joins

(* Structural errors need the final FROM clause: join-path construction
   may replace the clause wholesale on a later decision.  The checks are
   split by what they read — [check_from_tables] and
   [check_from_connectivity] depend on the clause alone (memoizable),
   [check_from_referenced] also reads the other clauses. *)
let check_from_tables pre emit (f : from_clause) =
  List.iter
    (fun t ->
      if not (Hashtbl.mem pre.p_tables t) then
        emit (D.make D.Unknown_table D.From "no table named %s" t))
    f.f_tables;
  List.iter
    (fun (e : join_edge) ->
      check_col pre emit D.From e.j_from;
      check_col pre emit D.From e.j_to;
      List.iter
        (fun c ->
          if not (List.mem c.cr_table f.f_tables) then
            emit
              (D.make D.Table_not_joined D.From "join references %s outside FROM"
                 (pp_col c)))
        [ e.j_from; e.j_to ])
    f.f_joins

let check_from_referenced emit (f : from_clause) referenced =
  List.iter
    (fun t ->
      if not (List.mem t f.f_tables) then
        emit
          (D.make D.Table_not_joined D.From
             "%s is referenced but not in FROM" t))
    referenced

(* Connectivity: every FROM table reachable from the first through the
   join edges.  A disconnected clause is rejected by the execution
   planner, so it is an error, not a style nit. *)
let check_from_connectivity emit (f : from_clause) =
  match f.f_tables with
  | [] | [ _ ] -> ()
  | first :: _ ->
      let reached = Hashtbl.create 8 in
      Hashtbl.replace reached first ();
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun (e : join_edge) ->
            let a = e.j_from.cr_table and b = e.j_to.cr_table in
            let touch x y =
              if Hashtbl.mem reached x && not (Hashtbl.mem reached y) then begin
                Hashtbl.replace reached y ();
                changed := true
              end
            in
            touch a b;
            touch b a)
          f.f_joins
      done;
      List.iter
        (fun t ->
          if not (Hashtbl.mem reached t) then
            emit
              (D.make D.Disconnected_from D.From
                 "%s is not connected to %s by the join edges" t first))
        f.f_tables

let check_from_structure pre emit (f : from_clause) ~referenced =
  check_from_tables pre emit f;
  check_from_referenced emit f referenced;
  check_from_connectivity emit f

(* --- the analysis: every rule over one outline --- *)

let referenced_tables (o : Outline.t) =
  let cols =
    List.filter_map (fun p -> p.p_col) o.Outline.o_select
    @ List.filter_map (fun p -> p.pr_col) o.Outline.o_where
    @ o.Outline.o_group_by
    @ List.filter_map (fun p -> p.pr_col) o.Outline.o_having
    @ List.filter_map (fun i -> i.o_col) o.Outline.o_order_by
  in
  List.sort_uniq String.compare (List.map (fun c -> c.cr_table) cols)

let is_eq_rhs = function
  | Cmp (Eq, _) -> true
  | Cmp ((Neq | Lt | Le | Gt | Ge | Like | Not_like), _) | Between _ -> false

(* Per-clause error rules, shared between the diagnostic pass
   ([run_rules]) and the memoized boolean fast path ([has_errors_p]).
   Each reads nothing but its own clause and the prepared schema, which
   is what makes the one-slot memos sound. *)

let select_rules pre emit projs =
  List.iter
    (fun (p : proj) ->
      Option.iter (check_col pre emit D.Select) p.p_col;
      check_agg pre emit D.Select p.p_agg p.p_col)
    projs

let pred_rules pre emit clause preds =
  List.iter
    (fun (p : pred) ->
      Option.iter (check_col pre emit clause) p.pr_col;
      check_agg pre emit clause p.pr_agg p.pr_col;
      check_pred_types pre emit clause p)
    preds

let group_rules pre emit cols = List.iter (check_col pre emit D.Group_by) cols

let group_pk_rules pre emit cols =
  List.iter
    (fun c ->
      if Hashtbl.mem pre.p_pks (c.cr_table, c.cr_col) then
        emit
          (D.make D.Group_by_primary_key D.Group_by
             "grouping by primary key %s makes every group a single row"
             (pp_col c)))
    cols

let order_rules pre emit items =
  List.iter
    (fun (i : order_item) ->
      Option.iter (check_col pre emit D.Order_by) i.o_col;
      check_agg pre emit D.Order_by i.o_agg i.o_col)
    items

(* [errors]/[warnings] select which rule classes run: the cascade's
   boolean fast path skips the warning rules entirely, and the
   deprioritization pass skips the error rules (the cascade already ran
   them on the same state). *)
let run_rules ~errors ~warnings pre (o : Outline.t) emit =
  let { Outline.o_select; o_select_final; o_from; o_from_final; o_where;
        o_where_conn; o_where_final; o_group_by; o_group_final; o_having;
        o_having_conn; o_having_final; o_order_by; o_order_final; o_limit;
        o_limit_final = _ } = o in
  if errors then begin
    (* 1. schema/type checks on every decided reference: decided clause
       parts persist along every completion, so these fire eagerly. *)
    select_rules pre emit o_select;
    pred_rules pre emit D.Where o_where;
    group_rules pre emit o_group_by;
    pred_rules pre emit D.Having o_having;
    order_rules pre emit o_order_by;
    (* 2. predicate satisfiability, once the condition is final (an open
       OR could still repair an inconsistent conjunction). *)
    if o_where_final then
      Option.iter
        (check_condition emit D.Where D.Unsatisfiable_where o_where)
        o_where_conn;
    if o_having_final then
      Option.iter
        (check_condition emit D.Having D.Unsatisfiable_having o_having)
        o_having_conn;
    (* 3. structure. *)
    (match o_from with
    | Some f ->
        if o_from_final then
          check_from_structure pre emit f ~referenced:(referenced_tables o)
    | None -> ());
    let has_agg = List.exists (fun p -> Option.is_some p.p_agg) o_select in
    let has_plain = List.exists (fun p -> p.p_agg = None) o_select in
    if
      o_select_final && o_group_final && o_group_by = [] && has_agg
      && has_plain
    then
      emit
        (D.make D.Ungrouped_aggregation D.Select
           "aggregated and plain projections without GROUP BY");
    if o_select_final && o_group_final && o_group_by <> [] then
      List.iter
        (fun (p : proj) ->
          match p.p_agg, p.p_col with
          | None, Some c ->
              if not (List.exists (equal_col_ref c) o_group_by) then
                emit
                  (D.make D.Projection_not_grouped D.Select
                     "%s is projected but not grouped" (pp_col c))
          | (None | Some _), _ -> ())
        o_select;
    group_pk_rules pre emit o_group_by;
    if
      o_select_final && o_group_final && o_having_final && o_order_final
      && o_group_by <> [] && (not has_agg) && o_having = []
      && not (List.exists (fun i -> Option.is_some i.o_agg) o_order_by)
    then
      emit
        (D.make D.Unnecessary_group_by D.Group_by
           "GROUP BY without any aggregate");
    match o_limit with
    | Some n when n <= 0 ->
        emit (D.make D.Nonpositive_limit D.Limit "LIMIT %d returns nothing" n)
    | Some _ | None -> ()
  end;
  if warnings then begin
    (* 4. redundancy: warnings fire on decided parts, no finality needed
       (they deprioritize rather than prune). *)
    Option.iter (check_join_redundancy emit) o_from;
    check_duplicate_preds emit D.Where o_where;
    check_duplicate_preds emit D.Having o_having;
    check_subsumed emit D.Where o_where o_where_conn;
    check_subsumed emit D.Having o_having o_having_conn;
    check_duplicate_projs emit o_select;
    if o_where_final then
      (match o_where_conn, o_where with
      | Some Or, _ :: _ :: _ -> ()
      | (Some (And | Or) | None), _ ->
          List.iter
            (fun (p : proj) ->
              match p.p_agg, p.p_col with
              | None, Some c ->
                  if
                    List.exists
                      (fun pr ->
                        match pr.pr_agg, pr.pr_col, pr.pr_rhs with
                        | None, Some pc, rhs ->
                            is_eq_rhs rhs && equal_col_ref c pc
                        | Some _, _, _ | None, None, _ -> false)
                      o_where
                  then
                    emit
                      (D.make D.Constant_output D.Select
                         "%s is pinned to a constant by WHERE" (pp_col c))
              | (None | Some _), _ -> ())
            o_select);
    if o_group_final && o_group_by <> [] then
      List.iter
        (fun (i : order_item) ->
          match i.o_agg, i.o_col with
          | None, Some c ->
              if
                (not (List.exists (equal_col_ref c) o_group_by))
                && not
                     (List.exists
                        (fun (p : proj) ->
                          p.p_agg = None
                          && match p.p_col with
                             | Some pc -> equal_col_ref pc c
                             | None -> false)
                        o_select)
              then
                emit
                  (D.make D.Order_by_unprojected D.Order_by
                     "ordering a grouped query by ungrouped column %s"
                     (pp_col c))
          | (None | Some _), _ -> ())
        o_order_by
  end

let check_p pre o =
  let acc = ref [] in
  run_rules ~errors:true ~warnings:true pre o (fun d -> acc := d :: !acc);
  List.rev !acc

exception Found_error

(* Every rule in the errors section carries [D.Error] severity, so the
   fast path aborts on the first emission without inspecting it. *)
let raising_emit (_ : D.t) = raise Found_error

let memo_ok (m : 'k memo) (key : 'k) check =
  if m.m_key == key then m.m_ok
  else begin
    let ok = try check (); true with Found_error -> false in
    m.m_key <- key;
    m.m_ok <- ok;
    ok
  end

let sat_ok m clause rule preds conn =
  let cached_preds, cached_conn = m.m_key in
  if
    cached_preds == preds
    && (match cached_conn, conn with
       | And, And | Or, Or -> true
       | And, Or | Or, And -> false)
  then m.m_ok
  else begin
    let ok =
      try
        check_condition raising_emit clause rule preds conn;
        true
      with Found_error -> false
    in
    m.m_key <- (preds, conn);
    m.m_ok <- ok;
    ok
  end

(* Boolean twin of [check_from_referenced] that walks the clause columns
   directly instead of materialising a sorted table list per call. *)
let referenced_in_from (f : from_clause) (o : Outline.t) =
  let ok_col (c : col_ref) = List.mem c.cr_table f.f_tables in
  let ok_opt = function None -> true | Some c -> ok_col c in
  List.for_all (fun (p : proj) -> ok_opt p.p_col) o.Outline.o_select
  && List.for_all (fun (p : pred) -> ok_opt p.pr_col) o.Outline.o_where
  && List.for_all ok_col o.Outline.o_group_by
  && List.for_all (fun (p : pred) -> ok_opt p.pr_col) o.Outline.o_having
  && List.for_all (fun (i : order_item) -> ok_opt i.o_col) o.Outline.o_order_by

(* Boolean twin of the cross-clause grouping rules (ungrouped
   aggregation, projection-not-grouped, unnecessary GROUP BY). *)
let grouping_ok (o : Outline.t) =
  (not (o.Outline.o_select_final && o.Outline.o_group_final))
  ||
  let has_agg =
    List.exists (fun (p : proj) -> Option.is_some p.p_agg) o.Outline.o_select
  in
  match o.Outline.o_group_by with
  | [] ->
      (not has_agg)
      || not (List.exists (fun (p : proj) -> p.p_agg = None) o.Outline.o_select)
  | _ :: _ as group_by ->
      List.for_all
        (fun (p : proj) ->
          match p.p_agg, p.p_col with
          | None, Some c -> List.exists (equal_col_ref c) group_by
          | (None | Some _), _ -> true)
        o.Outline.o_select
      && (not (o.Outline.o_having_final && o.Outline.o_order_final)
         || has_agg
         || o.Outline.o_having <> []
         || List.exists
              (fun (i : order_item) -> Option.is_some i.o_agg)
              o.Outline.o_order_by)

let has_errors_p pre (o : Outline.t) =
  let ok =
    memo_ok pre.m_select o.Outline.o_select (fun () ->
        select_rules pre raising_emit o.Outline.o_select)
    && memo_ok pre.m_where o.Outline.o_where (fun () ->
           pred_rules pre raising_emit D.Where o.Outline.o_where)
    && memo_ok pre.m_group o.Outline.o_group_by (fun () ->
           group_rules pre raising_emit o.Outline.o_group_by;
           group_pk_rules pre raising_emit o.Outline.o_group_by)
    && memo_ok pre.m_having o.Outline.o_having (fun () ->
           pred_rules pre raising_emit D.Having o.Outline.o_having)
    && memo_ok pre.m_order o.Outline.o_order_by (fun () ->
           order_rules pre raising_emit o.Outline.o_order_by)
    && (o.Outline.o_where = []
       || (not o.Outline.o_where_final)
       ||
       match o.Outline.o_where_conn with
       | None -> true
       | Some conn ->
           sat_ok pre.m_where_sat D.Where D.Unsatisfiable_where
             o.Outline.o_where conn)
    && (o.Outline.o_having = []
       || (not o.Outline.o_having_final)
       ||
       match o.Outline.o_having_conn with
       | None -> true
       | Some conn ->
           sat_ok pre.m_having_sat D.Having D.Unsatisfiable_having
             o.Outline.o_having conn)
    && (match o.Outline.o_from with
       | Some f when o.Outline.o_from_final ->
           memo_ok pre.m_from f (fun () ->
               check_from_tables pre raising_emit f;
               check_from_connectivity raising_emit f)
           && referenced_in_from f o
       | Some _ | None -> true)
    && grouping_ok o
    && match o.Outline.o_limit with Some n -> n > 0 | None -> true
  in
  not ok

let count_warnings_p pre o =
  let n = ref 0 in
  run_rules ~errors:false ~warnings:true pre o (fun d ->
      if not (D.is_error d) then incr n);
  !n

let check schema o = check_p (prepare schema) o
let has_errors schema o = has_errors_p (prepare schema) o
let count_warnings schema o = count_warnings_p (prepare schema) o
let errors ds = List.filter D.is_error ds
let warnings ds = List.filter (fun d -> not (D.is_error d)) ds
let check_query schema q = check schema (Outline.of_query q)
