open Duosql.Ast

(* The open-world view of a query under construction.  Each clause comes
   with the parts already decided plus a finality flag; a rule that prunes
   may only read decided parts and may only conclude from absence when the
   clause is final.  [of_query] closes the world: every flag is true. *)

type t = {
  o_select : proj list;
  o_select_final : bool;
  o_from : from_clause option;
  o_from_final : bool;
  o_where : pred list;
  o_where_conn : connective option;
  o_where_final : bool;
  o_group_by : col_ref list;
  o_group_final : bool;
  o_having : pred list;
  o_having_conn : connective option;
  o_having_final : bool;
  o_order_by : order_item list;
  o_order_final : bool;
  o_limit : int option;
  o_limit_final : bool;
}

let empty =
  {
    o_select = [];
    o_select_final = false;
    o_from = None;
    o_from_final = false;
    o_where = [];
    o_where_conn = None;
    o_where_final = false;
    o_group_by = [];
    o_group_final = false;
    o_having = [];
    o_having_conn = None;
    o_having_final = false;
    o_order_by = [];
    o_order_final = false;
    o_limit = None;
    o_limit_final = false;
  }

let of_query (q : query) =
  {
    o_select = q.q_select;
    o_select_final = true;
    o_from = Some q.q_from;
    o_from_final = true;
    o_where = Option.fold ~none:[] ~some:(fun c -> c.c_preds) q.q_where;
    o_where_conn = Some (Option.fold ~none:And ~some:(fun c -> c.c_conn) q.q_where);
    o_where_final = true;
    o_group_by = q.q_group_by;
    o_group_final = true;
    o_having = Option.fold ~none:[] ~some:(fun c -> c.c_preds) q.q_having;
    o_having_conn = Some (Option.fold ~none:And ~some:(fun c -> c.c_conn) q.q_having);
    o_having_final = true;
    o_order_by = q.q_order_by;
    o_order_final = true;
    o_limit = q.q_limit;
    o_limit_final = true;
  }
