(** Duosem: database-free semantic analysis over queries and outlines.

    Three layers on top of {!Domain} and the schema:

    - a {b canonicalizer} rewriting a query into a normal form so that
      semantically equal candidates render identically ({!canonical_key});
    - a {b constraint reasoner} over schema PK/FK facts and the abstract
      domain (predicate implication, redundant [DISTINCT], key-preserving
      join elimination), surfaced as human-readable facts;
    - a {b cardinality bounder} assigning abstract row-count intervals to
      (partial) queries, usable as a database-free prune rule against a
      sketch's required tuple count.

    The normal form: FROM tables sorted; join edges oriented by their
    rendered endpoints, sorted, deduplicated; WHERE/HAVING conjunct sets
    folded per target through {!Domain} (so [BETWEEN 2 AND 8] and
    [x >= 2 AND x <= 8] collide, duplicate and subsumed conjuncts
    vanish, point intervals become [=]) with LIKE predicates kept
    verbatim and sorted; OR disjunct lists sorted and deduplicated;
    GROUP BY sorted; SELECT and ORDER BY kept positional.  Folding only
    uses exact abstractions ({!Domain.exact_rhs}), so canonicalization
    preserves each query's result multiset on every database (pinned by
    a Duocheck property). *)

(** {1 Canonicalizer} *)

val canonical_query : Duosql.Ast.query -> Duosql.Ast.query
(** The normal form.  Result-multiset-equivalent to the input on every
    database.  The FROM clause is sorted only when the result multiset
    provably cannot observe scan order — LIMIT cuts and bare columns
    picked from a group's first row keep it verbatim. *)

val canonical_key : Duosql.Ast.query -> string
(** Rendering of {!canonical_query}: canonically-equal queries get equal
    keys. *)

val equal_queries : Duosql.Ast.query -> Duosql.Ast.query -> bool
(** Key equality: semantic equivalence as decided by the canonicalizer.
    Equal keys imply equal result multisets on every database (pinned by
    a Duocheck property). *)

val dedup_key : Duosql.Ast.query -> string
(** Like {!canonical_key} but with the FROM clause unconditionally
    sorted — a strict coarsening of {!Duosql.Equal.queries}' multiset
    view, for candidate-emission dedup where scan-order variants count
    as one candidate.  Not a semantic equivalence on order-sensitive
    queries. *)

val canonical_conjuncts : Duosql.Ast.pred list -> Duosql.Ast.pred list
(** Normal form of a conjunct set: per-target interval folding for
    exactly-abstracted predicates, opaque predicates kept verbatim, the
    result sorted and deduplicated by rendering.  The returned list's
    conjunction has exactly the satisfying set of the input's. *)

val sorted_preds : Duosql.Ast.pred list -> Duosql.Ast.pred list
(** Sort and deduplicate by rendering only — the canonicalization valid
    under {e any} connective (commutativity and idempotence). *)

(** {1 Prepared schema facts} *)

type prepared
(** Immutable per-schema tables (primary keys); safe to share across
    domains. *)

val prepare : Duodb.Schema.t -> prepared

(** {1 Cardinality bounder} *)

type card = { c_lo : int; c_hi : int option (** [None] is unbounded *) }
(** An abstract row-count interval: every completion of the analyzed
    outline returns between [c_lo] and [c_hi] rows (errors aside). *)

val card_to_string : card -> string

val bound : prepared -> Outline.t -> card
(** Row-count interval of every completion of an open-world outline.
    Upper bounds come from aggregation without GROUP BY (the single
    implicit group), a final FROM fully pinned by primary-key point
    predicates closed over key-preserving join edges, a final GROUP BY
    whose every column is pinned to one constant by the conjuncts (a
    single group), and a decided LIMIT.  Monotone: more decisions can
    only tighten the interval. *)

val bound_query : prepared -> Duosql.Ast.query -> card
(** {!bound} of a complete query's closed outline. *)

(** {1 Constraint reasoner} *)

val redundant_distinct : prepared -> Duosql.Ast.query -> bool
(** [SELECT DISTINCT] whose output rows are provably distinct already:
    a single-row bound, a grouped query projecting its whole group key,
    or a single-table query projecting the table's whole primary key. *)

val eliminable_joins : prepared -> Duosql.Ast.query -> string list
(** FROM tables referenced by no other clause and joined through one
    key-preserving edge (their full single-column primary key): the join
    only restricts rows and is removable under enforced FK integrity. *)

val facts : prepared -> Duosql.Ast.query -> string list
(** Every constraint-reasoner conclusion about the query, rendered as
    one human-readable line each. *)

type explanation = {
  ex_canonical : string;  (** {!canonical_key} of the query *)
  ex_facts : string list;  (** {!facts} *)
  ex_card : card;  (** {!bound_query} *)
}

val explain : prepared -> Duosql.Ast.query -> explanation
(** The [duolint --explain] payload for one query. *)
