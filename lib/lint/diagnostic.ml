type severity =
  | Error  (** the query can never be a correct intent: prune/reject *)
  | Warning  (** the query is suspicious but executable: deprioritize *)

type clause =
  | Select
  | From
  | Where
  | Group_by
  | Having
  | Order_by
  | Limit

type rule =
  (* schema/type errors *)
  | Unknown_table
  | Unknown_column
  | Aggregate_type
  | Comparison_type
  (* predicate satisfiability *)
  | Unsatisfiable_where
  | Unsatisfiable_having
  (* structural well-formedness *)
  | Table_not_joined
  | Disconnected_from
  | Ungrouped_aggregation
  | Projection_not_grouped
  | Unnecessary_group_by
  | Group_by_primary_key
  | Nonpositive_limit
  (* redundancy: warnings *)
  | Duplicate_predicate
  | Subsumed_predicate
  | Duplicate_projection
  | Self_join
  | Duplicate_join
  | Constant_output
  | Order_by_unprojected

type t = {
  d_rule : rule;
  d_clause : clause;
  d_message : string;
}

let severity = function
  | Unknown_table | Unknown_column | Aggregate_type | Comparison_type
  | Unsatisfiable_where | Unsatisfiable_having | Table_not_joined
  | Disconnected_from | Ungrouped_aggregation | Projection_not_grouped
  | Unnecessary_group_by | Group_by_primary_key | Nonpositive_limit ->
      Error
  | Duplicate_predicate | Subsumed_predicate | Duplicate_projection | Self_join
  | Duplicate_join | Constant_output | Order_by_unprojected ->
      Warning

let is_error d = severity d.d_rule = Error

let rule_name = function
  | Unknown_table -> "unknown-table"
  | Unknown_column -> "unknown-column"
  | Aggregate_type -> "aggregate-type"
  | Comparison_type -> "comparison-type"
  | Unsatisfiable_where -> "unsatisfiable-where"
  | Unsatisfiable_having -> "unsatisfiable-having"
  | Table_not_joined -> "table-not-joined"
  | Disconnected_from -> "disconnected-from"
  | Ungrouped_aggregation -> "ungrouped-aggregation"
  | Projection_not_grouped -> "projection-not-grouped"
  | Unnecessary_group_by -> "unnecessary-group-by"
  | Group_by_primary_key -> "group-by-primary-key"
  | Nonpositive_limit -> "nonpositive-limit"
  | Duplicate_predicate -> "duplicate-predicate"
  | Subsumed_predicate -> "subsumed-predicate"
  | Duplicate_projection -> "duplicate-projection"
  | Self_join -> "self-join"
  | Duplicate_join -> "duplicate-join"
  | Constant_output -> "constant-output"
  | Order_by_unprojected -> "order-by-unprojected"

let clause_name = function
  | Select -> "SELECT"
  | From -> "FROM"
  | Where -> "WHERE"
  | Group_by -> "GROUP BY"
  | Having -> "HAVING"
  | Order_by -> "ORDER BY"
  | Limit -> "LIMIT"

let make rule clause fmt =
  Printf.ksprintf
    (fun msg -> { d_rule = rule; d_clause = clause; d_message = msg })
    fmt

let pp fmt d =
  Format.fprintf fmt "%s [%s] %s: %s"
    (match severity d.d_rule with Error -> "error" | Warning -> "warning")
    (rule_name d.d_rule) (clause_name d.d_clause) d.d_message
