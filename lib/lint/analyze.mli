(** The Duolint rule engine: composable checks over a schema and an
    {!Outline.t} clause view.  Database-free — every rule reads only the
    schema and the abstract syntax, so a run costs microseconds and is
    safe as stage 0 of the verification cascade. *)

type prepared
(** A schema compiled to hash-table lookups.  The cascade runs the rules
    once per enumerator push, so callers on that path {!prepare} once per
    session; the plain [Duodb.Schema.t] entry points below prepare on
    every call and suit one-shot linting. *)

val prepare : Duodb.Schema.t -> prepared

val check_p : prepared -> Outline.t -> Diagnostic.t list
(** All diagnostics, in rule order. *)

val has_errors_p : prepared -> Outline.t -> bool
(** Fast path for the cascade: runs only the error rules and
    short-circuits on the first hit without building messages. *)

val count_warnings_p : prepared -> Outline.t -> int
(** Number of warnings (deprioritization weight for the enumerator);
    runs only the warning rules. *)

val check : Duodb.Schema.t -> Outline.t -> Diagnostic.t list
val has_errors : Duodb.Schema.t -> Outline.t -> bool
val count_warnings : Duodb.Schema.t -> Outline.t -> int

val errors : Diagnostic.t list -> Diagnostic.t list
val warnings : Diagnostic.t list -> Diagnostic.t list

val check_query : Duodb.Schema.t -> Duosql.Ast.query -> Diagnostic.t list
(** Lint a complete query (every clause final). *)
