(** Duopar: a fixed pool of worker domains for batch-parallel rounds.

    Built on the OCaml 5 stdlib only ([Domain], [Mutex], [Condition],
    [Atomic]) — no external dependencies.  The pool is designed for the
    enumerator's speculative verification rounds: short bursts of
    independent pure tasks separated by sequential merge work on the
    caller's domain.

    Concurrency contract:
    - {!run} is a {e barrier}: it returns only after every task of the
      round has finished.  Between rounds the worker domains block on a
      condition variable, so an idle pool costs nothing but memory.
    - The calling domain participates in every round as worker [0];
      worker ids [1 .. domains-1] are the spawned domains.  Tasks are
      claimed from a shared [Atomic] counter (work stealing), so the
      mapping from task index to worker is {e not} deterministic — tasks
      must not communicate through anything keyed by worker id except
      domain-confined caches whose contents never change results.
    - At most one round may be in flight per pool; {!run} must only be
      called from the domain that created the pool, and never from
      inside a task.

    A pool with [domains = 1] spawns nothing and {!run} degenerates to a
    plain sequential [for] loop on the caller — the parallel and
    sequential code paths are the same code. *)

type t

(** [create ~domains] spawns [domains - 1] worker domains (clamped to
    [1 .. 64]).  The caller's domain is worker [0]. *)
val create : domains:int -> t

(** Number of domains participating in rounds (workers + caller). *)
val domains : t -> int

(** [run t n f] executes [f ~worker i] for every [i] in [0 .. n-1],
    distributing tasks across all domains, and returns when all have
    completed.  [worker] identifies the executing domain
    ([0 .. domains-1]) so tasks can index per-domain state.  If any task
    raises, the first exception (by completion order) is re-raised on
    the caller after the round completes; the remaining tasks still
    run. *)
val run : t -> int -> (worker:int -> int -> unit) -> unit

(** Stop and join all worker domains.  The pool must be idle (no round
    in flight).  Idempotent. *)
val shutdown : t -> unit

(** [with_pool ~domains f] runs [f] with a fresh pool and shuts it down
    afterwards, even if [f] raises. *)
val with_pool : domains:int -> (t -> 'a) -> 'a
