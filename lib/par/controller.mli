(** Adaptive speculation controller for the Duopar rounds (Duopar v2).

    Decides how many frontier states the enumerator speculates per pool
    round.  The law is AIMD over an EWMA of the per-round {e commit
    rate} (speculative results actually consumed by a pop): a high rate
    grows the round additively by the domain count, a low rate halves
    it, and the floor of 1 degenerates to the sequential loop — a
    floor-sized round carries only the state the committing loop is
    about to pop.

    The controller reads nothing but task/hit counts, which are
    themselves deterministic, so its size sequence is reproducible; and
    since speculation never decides results (the sequential committing
    loop does), {e any} size sequence — adaptive, fixed, or adversarial
    via [schedule] — yields bit-identical candidates (property-tested:
    "adaptive determinism"). *)

type t

(** [create ~domains ()] starts at size [4 * domains] (the Duopar v1
    fixed size) with [floor = 1] and [ceiling = 8 * domains].
    [schedule] is a test hook: it forces round [i]'s size to
    [schedule i] (clamped to [floor, ceiling]), replacing the AIMD law
    while keeping all accounting. *)
val create :
  ?schedule:(int -> int) -> ?floor:int -> ?ceiling:int -> domains:int ->
  unit -> t

(** Current round size. *)
val size : t -> int

(** EWMA of the per-round commit rate ([1.0] before the first sample). *)
val ewma : t -> float

val rounds : t -> int

(** Additive-increase decisions taken so far. *)
val grows : t -> int

(** Multiplicative-decrease decisions taken so far. *)
val shrinks : t -> int

(** [begin_round t ~hits] closes the books on the previous round —
    [hits] is the {e cumulative} committed-speculation count, so the
    delta against the last call is the previous round's sample — adapts
    the size, and returns the size to use for the round now starting. *)
val begin_round : t -> hits:int -> int

(** [launched t ~tasks] records how many tasks the round just launched
    actually carried (states already memoized or complete are filtered
    out, so this can be below the size {!begin_round} returned). *)
val launched : t -> tasks:int -> unit

(** One raw AIMD transition from a (tasks, hits) sample — the law
    {!begin_round} applies, exposed so unit tests can pin it on
    synthetic commit-rate traces. *)
val observe : t -> tasks:int -> hits:int -> unit
