(* A round is one batch of [r_n] independent tasks.  Workers claim task
   indices from [r_next] (fetch-and-add work stealing) and count
   completions in [r_done].

   The pool owns ONE round record, reused for every round (Duopar v2's
   zero-allocation contract: a steady-state round allocates nothing).
   Reuse is safe because the record's plain fields ([r_n], [r_fn]) are
   only written under the pool mutex while [active_workers] is zero —
   every worker brackets its time inside [run_tasks] with a
   mutex-protected increment/decrement of [active_workers], so a
   straggler from a previous round can never race a reset: the caller
   waits for full quiescence before touching the record. *)
type round = {
  mutable r_n : int;
  mutable r_fn : worker:int -> int -> unit;
  r_next : int Atomic.t;
  r_done : int Atomic.t;
}

type t = {
  n_domains : int;
  mu : Mutex.t;
  work_cv : Condition.t;  (* workers wait here for a new round / stop *)
  done_cv : Condition.t;  (* the caller waits here for round completion *)
  round : round;
  mutable active_workers : int;
      (* workers (caller included) currently inside [run_tasks] *)
  mutable epoch : int;  (* bumped once per installed round *)
  mutable stop : bool;
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable handles : unit Domain.t list;
}

let domains t = t.n_domains

(* Claim and run tasks until the round's index counter is exhausted.
   Exceptions are recorded (first one wins) and the task still counts as
   completed — the barrier must not deadlock on a failing task. *)
let run_tasks t (r : round) ~worker =
  let continue_ = ref true in
  while !continue_ do
    let i = Atomic.fetch_and_add r.r_next 1 in
    if i >= r.r_n then continue_ := false
    else begin
      (try r.r_fn ~worker i
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock t.mu;
         if Option.is_none t.failure then t.failure <- Some (e, bt);
         Mutex.unlock t.mu);
      Atomic.incr r.r_done
    end
  done

(* Enter/exit the round under the mutex.  The exit of the last active
   worker is the round's completion event: all tasks were claimed (or
   the worker would still be looping) and all claimed tasks finished
   (their workers were active until done), so signalling the caller
   here cannot be early. *)
let rec worker_loop t ~worker last_epoch =
  Mutex.lock t.mu;
  while (not t.stop) && t.epoch = last_epoch do
    Condition.wait t.work_cv t.mu
  done;
  if t.stop then Mutex.unlock t.mu
  else begin
    let epoch = t.epoch in
    t.active_workers <- t.active_workers + 1;
    Mutex.unlock t.mu;
    run_tasks t t.round ~worker;
    Mutex.lock t.mu;
    t.active_workers <- t.active_workers - 1;
    if t.active_workers = 0 then Condition.signal t.done_cv;
    Mutex.unlock t.mu;
    worker_loop t ~worker epoch
  end

let create ~domains =
  let n = max 1 (min domains 64) in
  let t =
    {
      n_domains = n;
      mu = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      round =
        {
          r_n = 0;
          r_fn = (fun ~worker:_ _ -> ());
          r_next = Atomic.make 0;
          r_done = Atomic.make 0;
        };
      active_workers = 0;
      epoch = 0;
      stop = false;
      failure = None;
      handles = [];
    }
  in
  t.handles <-
    List.init (n - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t ~worker:(i + 1) 0));
  t

let run t n f =
  if n > 0 then begin
    if t.n_domains = 1 || n = 1 then
      (* no pool traffic: the degenerate cases run inline — this is the
         path a floor-1 speculative round takes, so the adaptive
         controller's sequential degeneration really is the sequential
         loop *)
      for i = 0 to n - 1 do
        f ~worker:0 i
      done
    else begin
      let r = t.round in
      Mutex.lock t.mu;
      (* Wait out stragglers from the previous round (workers that woke
         late, entered, and found nothing to claim) before reinstalling
         the shared record: writes below must not race their reads. *)
      while t.active_workers > 0 do
        Condition.wait t.done_cv t.mu
      done;
      t.failure <- None;
      r.r_n <- n;
      r.r_fn <- f;
      Atomic.set r.r_next 0;
      Atomic.set r.r_done 0;
      t.active_workers <- 1;  (* the caller is worker 0 *)
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.work_cv;
      Mutex.unlock t.mu;
      run_tasks t r ~worker:0;
      Mutex.lock t.mu;
      t.active_workers <- t.active_workers - 1;
      while not (t.active_workers = 0 && Atomic.get r.r_done >= r.r_n) do
        Condition.wait t.done_cv t.mu
      done;
      (* Close the round: late-waking workers will still enter once the
         broadcast reaches them, claim nothing ([r_next] is exhausted —
         the next [run] waits for them before resetting it), and leave. *)
      let failure = t.failure in
      t.failure <- None;
      Mutex.unlock t.mu;
      match failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

let shutdown t =
  Mutex.lock t.mu;
  t.stop <- true;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.mu;
  List.iter Domain.join t.handles;
  t.handles <- []

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
