(* A round is one batch of [r_n] independent tasks.  Workers claim task
   indices from [r_next] (fetch-and-add work stealing) and count
   completions in [r_done]; the worker that completes the last task
   signals the caller under the pool mutex, so the caller's wait cannot
   miss it. *)
type round = {
  r_n : int;
  r_fn : worker:int -> int -> unit;
  r_next : int Atomic.t;
  r_done : int Atomic.t;
}

type t = {
  n_domains : int;
  mu : Mutex.t;
  work_cv : Condition.t;  (* workers wait here for a new round / stop *)
  done_cv : Condition.t;  (* the caller waits here for round completion *)
  mutable current : round option;
  mutable epoch : int;  (* bumped once per installed round *)
  mutable stop : bool;
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable handles : unit Domain.t list;
}

let domains t = t.n_domains

(* Claim and run tasks until the round's index counter is exhausted.
   Exceptions are recorded (first one wins) and the task still counts as
   completed — the barrier must not deadlock on a failing task. *)
let run_tasks t (r : round) ~worker =
  let continue_ = ref true in
  while !continue_ do
    let i = Atomic.fetch_and_add r.r_next 1 in
    if i >= r.r_n then continue_ := false
    else begin
      (try r.r_fn ~worker i
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock t.mu;
         if Option.is_none t.failure then t.failure <- Some (e, bt);
         Mutex.unlock t.mu);
      if Atomic.fetch_and_add r.r_done 1 = r.r_n - 1 then begin
        (* last task: wake the caller.  Locking the mutex orders this
           signal after the caller's wait registration. *)
        Mutex.lock t.mu;
        Condition.signal t.done_cv;
        Mutex.unlock t.mu
      end
    end
  done

let rec worker_loop t ~worker last_epoch =
  Mutex.lock t.mu;
  while (not t.stop) && t.epoch = last_epoch do
    Condition.wait t.work_cv t.mu
  done;
  if t.stop then Mutex.unlock t.mu
  else begin
    let epoch = t.epoch in
    let r = t.current in
    Mutex.unlock t.mu;
    (match r with Some r -> run_tasks t r ~worker | None -> ());
    worker_loop t ~worker epoch
  end

let create ~domains =
  let n = max 1 (min domains 64) in
  let t =
    {
      n_domains = n;
      mu = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      current = None;
      epoch = 0;
      stop = false;
      failure = None;
      handles = [];
    }
  in
  t.handles <-
    List.init (n - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t ~worker:(i + 1) 0));
  t

let run t n f =
  if n > 0 then begin
    if t.n_domains = 1 || n = 1 then
      (* no pool traffic: the degenerate cases run inline *)
      for i = 0 to n - 1 do
        f ~worker:0 i
      done
    else begin
      let r =
        { r_n = n; r_fn = f; r_next = Atomic.make 0; r_done = Atomic.make 0 }
      in
      Mutex.lock t.mu;
      t.failure <- None;
      t.current <- Some r;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.work_cv;
      Mutex.unlock t.mu;
      (* the caller is worker 0 *)
      run_tasks t r ~worker:0;
      Mutex.lock t.mu;
      while Atomic.get r.r_done < r.r_n do
        Condition.wait t.done_cv t.mu
      done;
      t.current <- None;
      let failure = t.failure in
      t.failure <- None;
      Mutex.unlock t.mu;
      match failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

let shutdown t =
  Mutex.lock t.mu;
  t.stop <- true;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.mu;
  List.iter Domain.join t.handles;
  t.handles <- []

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
