(* Adaptive speculation controller (Duopar v2).

   The enumerator's speculative rounds used to be a fixed [4 * domains]
   tasks.  That size is only right when most speculated states are
   committed soon after; on hostile workloads (frontier churn, deep
   re-ranking) the commit rate collapses and every oversized round is
   wasted expand+verify work.  The controller sets the next round's size
   from the *measured* per-round commit rate:

   - each round's sample is [hits since the last round / tasks launched
     in the last round], clamped to [0, 1];
   - samples feed an EWMA ([alpha = 0.3]) so one noisy round cannot whip
     the size around;
   - AIMD law: EWMA >= 0.8 grows the size additively (+[domains], the
     marginal cost of keeping every domain busy one more task); EWMA
     < 0.5 halves it (multiplicative decrease).  Between the thresholds
     the size holds.

   The floor is 1: a floor-sized round speculates nothing beyond the
   state the committing loop is about to pop, so the run degenerates to
   the sequential loop (same code path, no extra work).  The ceiling
   defaults to [8 * domains].

   Everything the controller reads is a deterministic function of the
   enumeration schedule (task/hit *counts*, never clocks), so the round
   sizes — and therefore the speculation pattern — are reproducible
   run-to-run.  Results never depend on the sizes at all: the committing
   loop alone decides what is popped and emitted (see DESIGN.md,
   "Duopar v2"). *)

type t = {
  c_floor : int;
  c_ceiling : int;
  c_step : int;  (* additive-increase step: the domain count *)
  c_schedule : (int -> int) option;
      (* test hook: round index -> forced size (clamped); replaces the
         AIMD law but leaves all accounting in place *)
  mutable c_size : int;
  mutable c_ewma : float;
  mutable c_primed : bool;  (* [c_ewma] holds at least one sample *)
  mutable c_rounds : int;
  mutable c_grows : int;
  mutable c_shrinks : int;
  mutable c_prev_tasks : int;
  mutable c_prev_hits : int;  (* cumulative hits at the last launch *)
}

let alpha = 0.3
let grow_threshold = 0.8
let shrink_threshold = 0.5

let clamp t n = max t.c_floor (min t.c_ceiling n)

let create ?schedule ?(floor = 1) ?ceiling ~domains () =
  let domains = max 1 domains in
  let floor = max 1 floor in
  let ceiling =
    match ceiling with Some c -> max floor c | None -> max floor (8 * domains)
  in
  let t =
    {
      c_floor = floor;
      c_ceiling = ceiling;
      c_step = domains;
      c_schedule = schedule;
      c_size = max floor (min ceiling (4 * domains));
      c_ewma = 1.0;
      c_primed = false;
      c_rounds = 0;
      c_grows = 0;
      c_shrinks = 0;
      c_prev_tasks = 0;
      c_prev_hits = 0;
    }
  in
  (match schedule with Some f -> t.c_size <- clamp t (f 0) | None -> ());
  t

let size t = t.c_size
let ewma t = t.c_ewma
let rounds t = t.c_rounds
let grows t = t.c_grows
let shrinks t = t.c_shrinks

(* One AIMD step from the last round's commit sample.  Exposed separately
   from {!begin_round} so unit tests can pin the transition law on
   synthetic traces without running an enumeration. *)
let observe t ~tasks ~hits =
  if tasks > 0 then begin
    let sample =
      Float.max 0.0 (Float.min 1.0 (float_of_int hits /. float_of_int tasks))
    in
    t.c_ewma <-
      (if t.c_primed then ((1.0 -. alpha) *. t.c_ewma) +. (alpha *. sample)
       else sample);
    t.c_primed <- true;
    if t.c_ewma >= grow_threshold then begin
      if t.c_size < t.c_ceiling then begin
        t.c_size <- min t.c_ceiling (t.c_size + t.c_step);
        t.c_grows <- t.c_grows + 1
      end
    end
    else if t.c_ewma < shrink_threshold && t.c_size > t.c_floor then begin
      t.c_size <- max t.c_floor (t.c_size / 2);
      t.c_shrinks <- t.c_shrinks + 1
    end
  end

let begin_round t ~hits =
  if t.c_rounds > 0 then
    observe t ~tasks:t.c_prev_tasks ~hits:(hits - t.c_prev_hits);
  (* A forced schedule overrides the law's choice but keeps the EWMA and
     decision counters honest, so adversarial-schedule tests still
     exercise the accounting. *)
  (match t.c_schedule with
  | Some f -> t.c_size <- clamp t (f t.c_rounds)
  | None -> ());
  t.c_prev_hits <- hits;
  t.c_rounds <- t.c_rounds + 1;
  t.c_size

let launched t ~tasks = t.c_prev_tasks <- tasks
