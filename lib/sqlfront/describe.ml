open Ast

let phrase s = String.map (fun c -> if c = '_' then ' ' else c) s

let col_phrase c = phrase c.cr_col ^ " of " ^ phrase c.cr_table

let agg_phrase agg arg =
  match agg with
  | Count -> (
      match arg with
      | None -> "the number of rows"
      | Some c -> "the number of " ^ col_phrase c ^ " values")
  | Sum -> "the total " ^ (match arg with Some c -> col_phrase c | None -> "value")
  | Avg -> "the average " ^ (match arg with Some c -> col_phrase c | None -> "value")
  | Min -> "the smallest " ^ (match arg with Some c -> col_phrase c | None -> "value")
  | Max -> "the largest " ^ (match arg with Some c -> col_phrase c | None -> "value")

let projection p =
  match p.p_agg with
  | None -> (
      match p.p_col with
      | Some c ->
          (if p.p_distinct then "each distinct " else "the ")
          ^ col_phrase c
      | None -> "everything")
  | Some a ->
      let base = agg_phrase a p.p_col in
      if p.p_distinct then base ^ " (distinct)" else base

let value_phrase v =
  match v with
  | Duodb.Value.Text s -> "\"" ^ s ^ "\""
  | Duodb.Value.Null | Duodb.Value.Int _ | Duodb.Value.Float _ ->
      Duodb.Value.to_display v

let cmp_phrase = function
  | Eq -> "is"
  | Neq -> "is not"
  | Lt -> "is below"
  | Le -> "is at most"
  | Gt -> "is above"
  | Ge -> "is at least"
  | Like -> "matches"
  | Not_like -> "does not match"

let pred_lhs p =
  match p.pr_agg with
  | None -> (
      match p.pr_col with
      | Some c -> "the " ^ col_phrase c
      | None -> "the row")
  | Some a -> agg_phrase a p.pr_col

let predicate p =
  match p.pr_rhs with
  | Cmp (op, v) ->
      Printf.sprintf "%s %s %s" (pred_lhs p) (cmp_phrase op) (value_phrase v)
  | Between (lo, hi) ->
      Printf.sprintf "%s is between %s and %s" (pred_lhs p) (value_phrase lo)
        (value_phrase hi)

let condition c =
  let conn = match c.c_conn with And -> " and " | Or -> " or " in
  String.concat conn (List.map predicate c.c_preds)

let order_phrase o =
  let what =
    match o.o_agg with
    | None -> (
        match o.o_col with
        | Some c -> "the " ^ col_phrase c
        | None -> "the result")
    | Some a -> agg_phrase a o.o_col
  in
  let dir =
    match o.o_dir with
    | Asc -> "from lowest to highest"
    | Desc -> "from highest to lowest"
  in
  what ^ " " ^ dir

let query q =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "show ";
  Buffer.add_string buf (String.concat ", and " (List.map projection q.q_select));
  (match q.q_from.f_tables with
  | [ t ] -> Buffer.add_string buf (Printf.sprintf " from the %s table" (phrase t))
  | ts ->
      Buffer.add_string buf
        (Printf.sprintf " by combining %s" (String.concat ", " (List.map phrase ts))));
  (match q.q_group_by with
  | [] -> ()
  | cols ->
      Buffer.add_string buf
        (", for each " ^ String.concat " and " (List.map col_phrase cols)));
  Option.iter
    (fun c -> Buffer.add_string buf ("; keep rows where " ^ condition c))
    q.q_where;
  Option.iter
    (fun c -> Buffer.add_string buf ("; keep groups where " ^ condition c))
    q.q_having;
  (match q.q_order_by with
  | [] -> ()
  | items ->
      Buffer.add_string buf
        ("; ordered by " ^ String.concat ", then " (List.map order_phrase items)));
  Option.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "; first %d row%s only" n (if n = 1 then "" else "s")))
    q.q_limit;
  Buffer.contents buf
