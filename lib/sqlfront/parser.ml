(* Parsing happens in two passes: the grammar pass builds a "raw" query in
   which column references are (optional qualifier, name) pairs, because
   SELECT is parsed before the FROM clause that defines aliases.  The
   resolution pass then rewrites raw references into real [Ast.col_ref]s
   using the alias table and, for unqualified names, the schema. *)

type rcol = {
  rq : string option;
  rn : string;
}

type rlhs = {
  rl_agg : Ast.agg option;
  rl_col : rcol option;  (* None = "*" *)
  rl_distinct : bool;
}

type rpred =
  | Rcmp of rlhs * Ast.cmp * Duodb.Value.t
  | Rbetween of rlhs * Duodb.Value.t * Duodb.Value.t

type rquery = {
  r_distinct : bool;
  r_select : rlhs list;
  r_tables : (string * string) list;  (* (alias, table) *)
  r_joins : (rcol * rcol) list;
  r_where : (rpred list * Ast.connective) option;
  r_group : rcol list;
  r_having : (rpred list * Ast.connective) option;
  r_order : (rlhs * Ast.dir) list;
  r_limit : int option;
}

exception Parse_error of string

type state = {
  toks : Lexer.token array;
  mutable pos : int;
}

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let peek st = if st.pos < Array.length st.toks then Some st.toks.(st.pos) else None
let advance st = st.pos <- st.pos + 1

(* Total classifiers over the token type: the parser below tests tokens
   through these (or through structural equality for punctuation), so a new
   token constructor is flagged here rather than silently falling into a
   catch-all branch. *)
let tok_ident = function
  | Lexer.Ident s -> Some s
  | Lexer.Number _ | Lexer.String _ | Lexer.Lparen | Lexer.Rparen
  | Lexer.Comma | Lexer.Dot | Lexer.Star | Lexer.Op _ -> None

let tok_literal = function
  | Lexer.Number v -> Some v
  | Lexer.String s -> Some (Duodb.Value.Text s)
  | Lexer.Ident _ | Lexer.Lparen | Lexer.Rparen | Lexer.Comma | Lexer.Dot
  | Lexer.Star | Lexer.Op _ -> None

let tok_op = function
  | Lexer.Op o -> Some o
  | Lexer.Ident _ | Lexer.Number _ | Lexer.String _ | Lexer.Lparen
  | Lexer.Rparen | Lexer.Comma | Lexer.Dot | Lexer.Star -> None

let peek_ident st = Option.bind (peek st) tok_ident

let is_kw st kw =
  match peek_ident st with
  | Some s -> String.equal (String.uppercase_ascii s) kw
  | None -> false

let eat_kw st kw =
  if is_kw st kw then advance st
  else
    fail "expected %s at token %d (%s)" kw st.pos
      (match peek st with Some t -> Lexer.token_to_string t | None -> "<eof>")

let accept_kw st kw =
  if is_kw st kw then begin
    advance st;
    true
  end
  else false

let expect_ident st what =
  match peek_ident st with
  | Some s ->
      advance st;
      s
  | None ->
      fail "expected %s, got %s" what
        (match peek st with Some t -> Lexer.token_to_string t | None -> "<eof>")

let agg_of_ident s =
  match String.uppercase_ascii s with
  | "COUNT" -> Some Ast.Count
  | "SUM" -> Some Ast.Sum
  | "AVG" -> Some Ast.Avg
  | "MIN" -> Some Ast.Min
  | "MAX" -> Some Ast.Max
  | _ -> None

let keywords =
  [ "SELECT"; "DISTINCT"; "FROM"; "JOIN"; "ON"; "WHERE"; "AND"; "OR"; "GROUP";
    "BY"; "HAVING"; "ORDER"; "LIMIT"; "BETWEEN"; "LIKE"; "NOT"; "AS"; "ASC";
    "DESC" ]

let is_keyword s = List.mem (String.uppercase_ascii s) keywords

(* colref ::= ident ["." ident] *)
let parse_rcol st =
  let first = expect_ident st "column reference" in
  if peek st = Some Lexer.Dot then begin
    advance st;
    let second = expect_ident st "column name" in
    { rq = Some first; rn = second }
  end
  else { rq = None; rn = first }

(* lhs ::= [DISTINCT] colref | agg "(" [DISTINCT] (colref | "*") ")" *)
let parse_rlhs st =
  let distinct_prefix = accept_kw st "DISTINCT" in
  match peek_ident st with
  | Some s when Option.is_some (agg_of_ident s) && st.pos + 1 < Array.length st.toks
                && st.toks.(st.pos + 1) = Lexer.Lparen ->
      let agg = agg_of_ident s in
      advance st;
      advance st;
      let inner_distinct = accept_kw st "DISTINCT" in
      let col =
        if peek st = Some Lexer.Star then begin
          advance st;
          None
        end
        else Some (parse_rcol st)
      in
      if peek st = Some Lexer.Rparen then advance st
      else fail "expected ) after aggregate argument";
      { rl_agg = agg; rl_col = col; rl_distinct = distinct_prefix || inner_distinct }
  | Some _ | None ->
      if peek st = Some Lexer.Star then begin
        advance st;
        { rl_agg = None; rl_col = None; rl_distinct = distinct_prefix }
      end
      else
        let c = parse_rcol st in
        { rl_agg = None; rl_col = Some c; rl_distinct = distinct_prefix }

let parse_literal st =
  match Option.bind (peek st) tok_literal with
  | Some v ->
      advance st;
      v
  | None ->
      fail "expected literal, got %s"
        (match peek st with Some t -> Lexer.token_to_string t | None -> "<eof>")

(* pred ::= lhs (op literal | BETWEEN lit AND lit | [NOT] LIKE lit) *)
let parse_rpred st =
  let lhs = parse_rlhs st in
  match Option.bind (peek st) tok_op with
  | Some o ->
      advance st;
      let v = parse_literal st in
      let cmp =
        match o with
        | "=" -> Ast.Eq
        | "!=" -> Ast.Neq
        | "<" -> Ast.Lt
        | "<=" -> Ast.Le
        | ">" -> Ast.Gt
        | ">=" -> Ast.Ge
        | _ -> fail "unknown operator %s" o
      in
      Rcmp (lhs, cmp, v)
  | None ->
      if is_kw st "BETWEEN" then begin
        advance st;
        let lo = parse_literal st in
        eat_kw st "AND";
        let hi = parse_literal st in
        Rbetween (lhs, lo, hi)
      end
      else if is_kw st "LIKE" then begin
        advance st;
        let v = parse_literal st in
        Rcmp (lhs, Ast.Like, v)
      end
      else if is_kw st "NOT" then begin
        advance st;
        eat_kw st "LIKE";
        let v = parse_literal st in
        Rcmp (lhs, Ast.Not_like, v)
      end
      else
        fail "expected predicate operator, got %s"
          (match peek st with Some t -> Lexer.token_to_string t | None -> "<eof>")

(* cond ::= pred ((AND | OR) pred)*, one connective only (Section 2.5). *)
let parse_rcond st =
  let first = parse_rpred st in
  let rec more acc conn =
    if accept_kw st "AND" then
      match conn with
      | Some Ast.Or -> fail "mixed AND/OR conditions are outside the task scope"
      | Some Ast.And | None -> more (parse_rpred st :: acc) (Some Ast.And)
    else if accept_kw st "OR" then
      match conn with
      | Some Ast.And -> fail "mixed AND/OR conditions are outside the task scope"
      | Some Ast.Or | None -> more (parse_rpred st :: acc) (Some Ast.Or)
    else (List.rev acc, Option.value ~default:Ast.And conn)
  in
  more [ first ] None

(* tref ::= ident [AS ident | ident]  — a bare trailing ident that is not a
   keyword is treated as an implicit alias. *)
let parse_tref st =
  let table = expect_ident st "table name" in
  if accept_kw st "AS" then
    let alias = expect_ident st "alias" in
    (alias, table)
  else
    match peek_ident st with
    | Some s when not (is_keyword s) ->
        advance st;
        (s, table)
    | Some _ | None -> (table, table)

let parse_from st =
  let first = parse_tref st in
  let rec joins trefs edges =
    if accept_kw st "JOIN" then begin
      let tref = parse_tref st in
      eat_kw st "ON";
      let a = parse_rcol st in
      (if peek st = Some (Lexer.Op "=") then advance st
       else fail "expected = in join condition");
      let b = parse_rcol st in
      joins (tref :: trefs) ((a, b) :: edges)
    end
    else (List.rev trefs, List.rev edges)
  in
  joins [ first ] []

let parse_rquery st =
  eat_kw st "SELECT";
  let r_distinct = accept_kw st "DISTINCT" in
  let rec projs acc =
    let p = parse_rlhs st in
    if peek st = Some Lexer.Comma then begin
      advance st;
      projs (p :: acc)
    end
    else List.rev (p :: acc)
  in
  let r_select = projs [] in
  eat_kw st "FROM";
  let r_tables, r_joins = parse_from st in
  let r_where = if accept_kw st "WHERE" then Some (parse_rcond st) else None in
  let r_group =
    if accept_kw st "GROUP" then begin
      eat_kw st "BY";
      let rec cols acc =
        let c = parse_rcol st in
        if peek st = Some Lexer.Comma then begin
          advance st;
          cols (c :: acc)
        end
        else List.rev (c :: acc)
      in
      cols []
    end
    else []
  in
  let r_having = if accept_kw st "HAVING" then Some (parse_rcond st) else None in
  let r_order =
    if accept_kw st "ORDER" then begin
      eat_kw st "BY";
      let rec items acc =
        let lhs = parse_rlhs st in
        let dir =
          if accept_kw st "DESC" then Ast.Desc
          else begin
            ignore (accept_kw st "ASC");
            Ast.Asc
          end
        in
        if peek st = Some Lexer.Comma then begin
          advance st;
          items ((lhs, dir) :: acc)
        end
        else List.rev ((lhs, dir) :: acc)
      in
      items []
    end
    else []
  in
  let r_limit =
    if accept_kw st "LIMIT" then
      match Option.bind (peek st) tok_literal with
      | Some (Duodb.Value.Int n) ->
          advance st;
          Some n
      | Some (Duodb.Value.Null | Duodb.Value.Float _ | Duodb.Value.Text _)
      | None ->
          fail "expected integer after LIMIT"
    else None
  in
  (match peek st with
  | None -> ()
  | Some t -> fail "trailing input: %s" (Lexer.token_to_string t));
  { r_distinct; r_select; r_tables; r_joins; r_where; r_group; r_having;
    r_order; r_limit }

(* --- Resolution pass --- *)

let resolve_col ~aliases ~schema ~tables rc =
  match rc.rq with
  | Some q -> (
      match List.assoc_opt q aliases with
      | Some table -> Ast.col table rc.rn
      | None -> fail "unknown table or alias %S" q)
  | None -> (
      match schema with
      | None -> fail "unqualified column %S needs a schema to resolve" rc.rn
      | Some sch -> (
          let owners =
            List.filter
              (fun t -> Option.is_some (Duodb.Schema.find_column sch ~table:t rc.rn))
              tables
          in
          match owners with
          | [ t ] -> Ast.col t rc.rn
          | [] -> fail "column %S not found in FROM tables" rc.rn
          | _ :: _ :: _ -> fail "ambiguous unqualified column %S" rc.rn))

let resolve_lhs ~aliases ~schema ~tables (l : rlhs) =
  let col = Option.map (resolve_col ~aliases ~schema ~tables) l.rl_col in
  (l.rl_agg, col, l.rl_distinct)

let resolve_pred ~aliases ~schema ~tables p =
  let mk lhs rhs =
    let agg, col, _ = resolve_lhs ~aliases ~schema ~tables lhs in
    { Ast.pr_agg = agg; pr_col = col; pr_rhs = rhs }
  in
  match p with
  | Rcmp (lhs, op, v) -> mk lhs (Ast.Cmp (op, v))
  | Rbetween (lhs, lo, hi) -> mk lhs (Ast.Between (lo, hi))

let resolve_cond ~aliases ~schema ~tables (preds, conn) =
  { Ast.c_preds = List.map (resolve_pred ~aliases ~schema ~tables) preds;
    c_conn = conn }

let resolve rq ~schema =
  let aliases = rq.r_tables in
  let tables = List.map snd rq.r_tables in
  let rescol = resolve_col ~aliases ~schema ~tables in
  let q_select =
    List.map
      (fun l ->
        let agg, col, distinct = resolve_lhs ~aliases ~schema ~tables l in
        if agg = None && col = None then
          fail "bare * projection is outside the task scope";
        { Ast.p_agg = agg; p_col = col; p_distinct = distinct })
      rq.r_select
  in
  let q_from =
    { Ast.f_tables = tables;
      f_joins =
        List.map (fun (a, b) -> { Ast.j_from = rescol a; j_to = rescol b }) rq.r_joins }
  in
  let q_order =
    List.map
      (fun (l, dir) ->
        let agg, col, _ = resolve_lhs ~aliases ~schema ~tables l in
        { Ast.o_agg = agg; o_col = col; o_dir = dir })
      rq.r_order
  in
  { Ast.q_distinct = rq.r_distinct;
    q_select;
    q_from;
    q_where = Option.map (resolve_cond ~aliases ~schema ~tables) rq.r_where;
    q_group_by = List.map rescol rq.r_group;
    q_having = Option.map (resolve_cond ~aliases ~schema ~tables) rq.r_having;
    q_order_by = q_order;
    q_limit = rq.r_limit }

let query ?schema s =
  match Lexer.tokenize s with
  | Error e -> Error e
  | Ok toks -> (
      let st = { toks = Array.of_list toks; pos = 0 } in
      try Ok (resolve (parse_rquery st) ~schema) with
      | Parse_error e -> Error e)

let query_exn ?schema s =
  match query ?schema s with
  | Ok q -> q
  | Error e -> failwith (Printf.sprintf "Parser.query_exn: %s in %S" e s)
