(** Vectorized predicate kernels over {!Duodb.Table}'s columnar storage.

    Pushed scan conditions compile into per-predicate closures over the
    raw column arrays (unboxed floats, dictionary codes) and evaluate
    block-by-block with zone-map skipping — no [Value.t] is
    reconstructed per cell.  Results are bit-for-bit identical to the
    scalar evaluator: anything whose semantics the kernels cannot
    replicate exactly (aggregate predicates, unknown columns, LIKE
    forms that can raise on non-text operands) refuses to compile and
    the caller falls back to the scalar row loop. *)

(** [select tbl cond] is the ascending row indices of [tbl] satisfying
    [cond] under the executor's pushed-scan semantics (NULL comparisons
    false, [And]/[Or] over the predicates), or [None] when some
    predicate is not compilable. *)
val select : Duodb.Table.t -> Duosql.Ast.condition -> int array option

(** [probe_exists tbl ~col vs] answers, for each probe value, whether
    some cell of column [col] equals it under [Value.equal] semantics
    (NULL matches NULL, NaN matches NaN — this is cell membership, not a
    SQL comparison).  All probes share one zone-skipped pass over the
    column, stopping as soon as every probe is resolved; text probes
    resolve through the dictionary, so an absent string costs no row
    accesses at all. *)
val probe_exists :
  Duodb.Table.t -> col:int -> Duodb.Value.t list -> (Duodb.Value.t * bool) list

(** [probe_range tbl ~col lo hi] is true when some non-null cell [v] of
    column [col] satisfies [lo <= v <= hi] under [Value.compare] — the
    verifier's Range cell probe.  Zone-skipped, stops at the first
    hit. *)
val probe_range :
  Duodb.Table.t -> col:int -> Duodb.Value.t -> Duodb.Value.t -> bool
