(* Vectorized predicate kernels over Duodb's columnar storage.

   A pushed WHERE condition is compiled once per scan into per-predicate
   columnar tests — closures over the raw column arrays — and evaluated
   block-by-block with zone-map skipping, instead of reconstructing a
   [Value.t] per cell.  Compilation refuses anything whose evaluation
   could raise or needs semantics beyond single-column comparisons
   ([compile] returns [None]); the executor falls back to the scalar row
   loop, so the kernels never change observable behaviour.

   Numeric comparisons run on the unboxed [float array].  Primitive
   float comparisons agree with [Value.compare] everywhere except NaN
   (handled explicitly; OCaml's [Float.compare] only diverges from the
   primitives there — [-0.] and [0.] compare equal both ways) and
   int/int comparisons beyond float precision (|v| >= 2^53), where a
   scalar [Value.compare] confirms primitively-equal outcomes.  Text
   predicates run on dictionary codes: LIKE is evaluated once per
   distinct dictionary entry, equality probes are a dictionary lookup
   (an absent string matches nothing without touching a single row). *)

open Duosql.Ast
module Value = Duodb.Value
module Table = Duodb.Table
module Bitset = Duodb.Bitset

(* Growable selection vector. *)
module Ivec = struct
  type t = {
    mutable arr : int array;
    mutable len : int;
  }

  let create () = { arr = [||]; len = 0 }

  let push d x =
    if d.len = Array.length d.arr then begin
      let cap = if d.len = 0 then 64 else d.len * 2 in
      let arr = Array.make cap 0 in
      Array.blit d.arr 0 arr 0 d.len;
      d.arr <- arr
    end;
    d.arr.(d.len) <- x;
    d.len <- d.len + 1

  let to_array d = Array.sub d.arr 0 d.len
end

type compiled = {
  k_test : int -> bool;  (* row index -> predicate verdict *)
  k_zmay : (Value.t * Value.t) option -> bool;
      (* zone -> may any row in the block match? [None] = all-null block *)
  k_col : int;  (* column whose zone map [k_zmay] consults *)
}

let two53 = 9007199254740992.0 (* 2^53: ints beyond this lose float precision *)

let sign_decides op s =
  match op with
  | Eq -> s = 0
  | Neq -> s <> 0
  | Lt -> s < 0
  | Le -> s <= 0
  | Gt -> s > 0
  | Ge -> s >= 0
  | Like | Not_like -> assert false (* compiled via the dictionary path *)

(* Sign of [Value.compare cell lit] for a non-null numeric cell at row [i].
   Strict float verdicts are exact (rounding is monotonic); primitive
   equality falls back to a scalar compare only for the int/int case past
   2^53, and NaN cells sort below every non-NaN literal. *)
let num_sign tbl j (data : float array) (is_int : Bitset.t) lit =
  match lit with
  | Value.Null -> fun (_ : int) -> 1 (* numbers rank above NULL *)
  | Value.Text _ -> fun (_ : int) -> -1 (* numbers rank below text *)
  | Value.Int _ | Value.Float _ ->
      let x = Value.to_float lit in
      if x <> x then fun i ->
        let f = data.(i) in
        if f <> f then 0 else 1 (* NaN literal: only NaN cells tie *)
      else
        let risky =
          match lit with
          | Value.Int _ -> Float.abs x >= two53
          | Value.Null | Value.Float _ | Value.Text _ -> false
        in
        fun i ->
          let f = data.(i) in
          if f < x then -1
          else if f > x then 1
          else if f <> f then -1 (* NaN cell below non-NaN literal *)
          else if risky && Bitset.get is_int i then
            Value.compare (Table.value_at tbl ~col:j ~row:i) lit
          else 0

(* Zone-map block tests: may any row of a block with non-null range
   [Some (lo, hi)] satisfy the predicate?  All-null blocks ([None])
   never match — every comparison against NULL is false. *)
let zmay_cmp op lit z =
  match z with
  | None -> false
  | Some (lo, hi) -> (
      match op with
      | Eq -> Value.compare lit lo >= 0 && Value.compare lit hi <= 0
      | Neq -> not (Value.compare lo hi = 0 && Value.compare lo lit = 0)
      | Lt -> Value.compare lo lit < 0
      | Le -> Value.compare lo lit <= 0
      | Gt -> Value.compare hi lit > 0
      | Ge -> Value.compare hi lit >= 0
      | Like | Not_like -> true)

let zmay_between lo_v hi_v z =
  match z with
  | None -> false
  | Some (lo, hi) -> Value.compare hi lo_v >= 0 && Value.compare lo hi_v <= 0

let non_null_zone z = match z with None -> false | Some (_, _) -> true

(* Sign of [Value.compare cell bound] for a non-null text cell, as a
   function of its dictionary code: text ranks above NULL and numbers. *)
let txt_bound dict dict_len b =
  match b with
  | Value.Null | Value.Int _ | Value.Float _ -> fun (_ : int) -> 1
  | Value.Text s ->
      let signs = Array.init dict_len (fun k -> String.compare dict.(k) s) in
      fun k -> signs.(k)

let const_false j =
  Some { k_test = (fun (_ : int) -> false); k_zmay = (fun (_ : (Value.t * Value.t) option) -> false); k_col = j }

(* Compile one predicate into a columnar test, or [None] when it must go
   through the scalar path (aggregate/missing column, or a LIKE whose
   evaluation could raise on non-text operands). *)
let compile tbl (p : pred) =
  match p.pr_agg, p.pr_col with
  | Some _, (Some _ | None) | None, None -> None
  | None, Some c -> (
      match Table.column_index tbl c.cr_col with
      | exception Invalid_argument _ -> None
      | j -> (
          match p.pr_rhs, Table.view tbl j with
          | Cmp ((Eq | Neq | Lt | Le | Gt | Ge) as op, lit), Table.V_num { data; is_int; nulls } ->
              if Value.is_null lit then const_false j
              else
                let sg = num_sign tbl j data is_int lit in
                Some
                  {
                    k_test = (fun i -> (not (Bitset.get nulls i)) && sign_decides op (sg i));
                    k_zmay = zmay_cmp op lit;
                    k_col = j;
                  }
          | Between (lo, hi), Table.V_num { data; is_int; nulls } ->
              let slo = num_sign tbl j data is_int lo
              and shi = num_sign tbl j data is_int hi in
              Some
                {
                  k_test =
                    (fun i -> (not (Bitset.get nulls i)) && slo i >= 0 && shi i <= 0);
                  k_zmay = zmay_between lo hi;
                  k_col = j;
                }
          | Cmp ((Eq | Neq | Lt | Le | Gt | Ge) as op, lit), Table.V_txt { codes; dict; dict_len; nulls = _ } -> (
              match lit with
              | Value.Null -> const_false j
              | Value.Text s -> (
                  match op with
                  | Eq -> (
                      match Table.find_code tbl j s with
                      | Some code ->
                          Some
                            {
                              k_test = (fun i -> codes.(i) = code);
                              k_zmay = zmay_cmp Eq lit;
                              k_col = j;
                            }
                      | None -> const_false j)
                  | Neq | Lt | Le | Gt | Ge ->
                      let signs = Array.init dict_len (fun k -> String.compare dict.(k) s) in
                      Some
                        {
                          k_test =
                            (fun i ->
                              let k = codes.(i) in
                              k >= 0 && sign_decides op signs.(k));
                          k_zmay = zmay_cmp op lit;
                          k_col = j;
                        }
                  | Like | Not_like -> assert false)
              | Value.Int _ | Value.Float _ ->
                  (* text cells rank above numeric literals: sign is +1 for
                     every non-null cell *)
                  if sign_decides op 1 then
                    Some
                      { k_test = (fun i -> codes.(i) >= 0); k_zmay = non_null_zone; k_col = j }
                  else const_false j)
          | Between (lo, hi), Table.V_txt { codes; dict; dict_len; nulls = _ } ->
              let slo = txt_bound dict dict_len lo
              and shi = txt_bound dict dict_len hi in
              Some
                {
                  k_test =
                    (fun i ->
                      let k = codes.(i) in
                      k >= 0 && slo k >= 0 && shi k <= 0);
                  k_zmay = zmay_between lo hi;
                  k_col = j;
                }
          | Cmp ((Like | Not_like) as op, Value.Text pat), Table.V_txt { codes; dict; dict_len; nulls = _ } ->
              (* one LIKE evaluation per distinct dictionary entry *)
              let m = Array.init dict_len (fun k -> Value.like dict.(k) ~pattern:pat) in
              let want = (match op with
                | Like -> true
                | Not_like -> false
                | Eq | Neq | Lt | Le | Gt | Ge -> assert false)
              in
              Some
                {
                  k_test =
                    (fun i ->
                      let k = codes.(i) in
                      k >= 0 && m.(k) = want);
                  k_zmay = non_null_zone;
                  k_col = j;
                }
          | Cmp ((Like | Not_like), (Value.Null | Value.Int _ | Value.Float _ | Value.Text _)), (Table.V_num _ | Table.V_txt _) ->
              (* LIKE over a numeric column or with a non-text pattern can
                 raise; leave it to the scalar evaluator *)
              None))

(* [select tbl cond] is the ascending row indices satisfying [cond] under
   the executor's pushed-scan semantics, or [None] when some predicate is
   not compilable (caller falls back to the scalar filter). *)
let select tbl (cond : condition) =
  let rec comp acc = function
    | [] -> Some (List.rev acc)
    | p :: ps -> (
        match compile tbl p with
        | Some c -> comp (c :: acc) ps
        | None -> None)
  in
  match comp [] cond.c_preds with
  | None | Some [] -> None
  | Some comps ->
      let n = Table.row_count tbl in
      let block_may, row_test =
        match comps, cond.c_conn with
        | [ c ], (And | Or) ->
            ((fun b -> c.k_zmay (Table.zone tbl ~col:c.k_col ~blk:b)), c.k_test)
        | comps, And ->
            ( (fun b ->
                List.for_all (fun c -> c.k_zmay (Table.zone tbl ~col:c.k_col ~blk:b)) comps),
              fun i -> List.for_all (fun c -> c.k_test i) comps )
        | comps, Or ->
            ( (fun b ->
                List.exists (fun c -> c.k_zmay (Table.zone tbl ~col:c.k_col ~blk:b)) comps),
              fun i -> List.exists (fun c -> c.k_test i) comps )
      in
      let out = Ivec.create () in
      for b = 0 to Table.num_blocks tbl - 1 do
        if block_may b then begin
          let lo = b * Table.block in
          let hi = min n (lo + Table.block) - 1 in
          for i = lo to hi do
            if row_test i then Ivec.push out i
          done
        end
      done;
      Some (Ivec.to_array out)

(* Membership probes for the verifier's column stage: for each value,
   does some cell of column [col] satisfy [Value.equal cell v]?  Unlike
   SQL comparisons, NULL probes match NULL cells and NaN matches NaN
   ([Value.equal] semantics).  All probes share one zone-skipped pass;
   the scan stops as soon as every probe is resolved. *)
let probe_exists tbl ~col:j values =
  match values with
  | [] -> []
  | values ->
      let view = Table.view tbl j in
      let mk v =
        match view, v with
        | Table.V_num { nulls; _ }, Value.Null ->
            ((fun i -> Bitset.get nulls i), fun (_ : (Value.t * Value.t) option) -> true)
        | Table.V_txt { codes; _ }, Value.Null ->
            ((fun i -> codes.(i) < 0), fun (_ : (Value.t * Value.t) option) -> true)
        | Table.V_num { data; is_int; nulls }, (Value.Int _ | Value.Float _) ->
            let sg = num_sign tbl j data is_int v in
            ((fun i -> (not (Bitset.get nulls i)) && sg i = 0), zmay_cmp Eq v)
        | Table.V_txt { codes; _ }, Value.Text s -> (
            match Table.find_code tbl j s with
            | Some code -> ((fun i -> codes.(i) = code), zmay_cmp Eq v)
            | None ->
                ((fun (_ : int) -> false), fun (_ : (Value.t * Value.t) option) -> false))
        | Table.V_num _, Value.Text _ | Table.V_txt _, (Value.Int _ | Value.Float _) ->
            (* type rank mismatch: no cell can be equal *)
            ((fun (_ : int) -> false), fun (_ : (Value.t * Value.t) option) -> false)
      in
      let probes = Array.of_list (List.map (fun v -> (v, mk v, ref false)) values) in
      let n = Table.row_count tbl in
      let nb = Table.num_blocks tbl in
      let remaining = ref (Array.length probes) in
      let b = ref 0 in
      while !remaining > 0 && !b < nb do
        let z = Table.zone tbl ~col:j ~blk:!b in
        let active =
          Array.fold_right
            (fun (_, (test, zmay), found) acc ->
              if (not !found) && zmay z then (test, found) :: acc else acc)
            probes []
        in
        (match active with
        | [] -> ()
        | active ->
            let lo = !b * Table.block in
            let hi = min n (lo + Table.block) - 1 in
            let i = ref lo in
            let active = ref active in
            while !active <> [] && !i <= hi do
              active :=
                List.filter
                  (fun (test, found) ->
                    if test !i then begin
                      found := true;
                      decr remaining;
                      false
                    end
                    else true)
                  !active;
              incr i
            done);
        incr b
      done;
      Array.to_list (Array.map (fun (v, _, found) -> (v, !found)) probes)

(* [probe_range tbl ~col lo hi] is true when some non-null cell [v] of
   the column satisfies [lo <= v <= hi] under [Value.compare] — the
   verifier's Range cell probe.  Zone-skipped, early exit on the first
   hit. *)
let probe_range tbl ~col:j lo hi =
  let test =
    match Table.view tbl j with
    | Table.V_num { data; is_int; nulls } ->
        let slo = num_sign tbl j data is_int lo
        and shi = num_sign tbl j data is_int hi in
        fun i -> (not (Bitset.get nulls i)) && slo i >= 0 && shi i <= 0
    | Table.V_txt { codes; dict; dict_len; nulls = _ } ->
        let slo = txt_bound dict dict_len lo
        and shi = txt_bound dict dict_len hi in
        fun i ->
          let k = codes.(i) in
          k >= 0 && slo k >= 0 && shi k <= 0
  in
  let n = Table.row_count tbl in
  let nb = Table.num_blocks tbl in
  let found = ref false in
  let b = ref 0 in
  while (not !found) && !b < nb do
    if zmay_between lo hi (Table.zone tbl ~col:j ~blk:!b) then begin
      let lo_i = !b * Table.block in
      let hi_i = min n (lo_i + Table.block) - 1 in
      let i = ref lo_i in
      while (not !found) && !i <= hi_i do
        if test !i then found := true;
        incr i
      done
    end;
    incr b
  done;
  !found
