open Duosql.Ast
module Value = Duodb.Value
module Datatype = Duodb.Datatype

(* Hashing on values directly avoids rendering SQL strings for every join
   bucket, group key, and DISTINCT check. *)
module Vkey = struct
  type t = Value.t list

  let equal a b = List.length a = List.length b && List.for_all2 Value.equal a b
  let hash vs = Hashtbl.hash (List.map Value.hash vs)
end

module Vtbl = Hashtbl.Make (Vkey)

(* Join buckets key on a single value; skipping the list wrapper saves an
   allocation per probe. *)
module V1tbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type resultset = {
  res_cols : (string * Datatype.t) list;
  res_rows : Value.t array list;
}

exception Exec_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Exec_error s)) fmt

(* A joined relation: wide rows concatenating the base tables' columns,
   with a lookup from (table, column) to position.  Rows are array-backed;
   grouping and DISTINCT passes work on row indices into [rel_rows]. *)
type relation = {
  rel_index : (string * string, int) Hashtbl.t;
  rel_rows : Value.t array array;
}

(* Minimal growable array; OCaml < 5.2 has no Dynarray. *)
module Dyn = struct
  type 'a t = {
    mutable arr : 'a array;
    mutable len : int;
  }

  let create () = { arr = [||]; len = 0 }

  let push d x =
    if d.len = Array.length d.arr then begin
      let cap = if d.len = 0 then 16 else d.len * 2 in
      let arr = Array.make cap x in
      Array.blit d.arr 0 arr 0 d.len;
      d.arr <- arr
    end;
    d.arr.(d.len) <- x;
    d.len <- d.len + 1

  let to_array d = Array.sub d.arr 0 d.len
end

let column_type db c =
  match Duodb.Schema.find_column (Duodb.Database.schema db) ~table:c.cr_table c.cr_col with
  | Some col -> col.Duodb.Schema.col_type
  | None -> fail "unknown column %s.%s" c.cr_table c.cr_col

let table_columns db t =
  match Duodb.Schema.find_table (Duodb.Database.schema db) t with
  | Some ts -> ts.Duodb.Schema.tbl_columns
  | None -> fail "unknown table %s" t

let lookup rel c =
  match Hashtbl.find_opt rel.rel_index (c.cr_table, c.cr_col) with
  | Some i -> i
  | None -> fail "column %s.%s not in FROM clause" c.cr_table c.cr_col

(* Scalar predicate evaluation on a single wide row. *)
let eval_cmp op lhs rhs =
  if Value.is_null lhs || Value.is_null rhs then false
  else
    match op with
    | Eq -> Value.equal lhs rhs
    | Neq -> not (Value.equal lhs rhs)
    | Lt -> Value.compare lhs rhs < 0
    | Le -> Value.compare lhs rhs <= 0
    | Gt -> Value.compare lhs rhs > 0
    | Ge -> Value.compare lhs rhs >= 0
    | Like -> (
        match lhs, rhs with
        | Value.Text s, Value.Text p -> Value.like s ~pattern:p
        | (Value.Null | Value.Int _ | Value.Float _ | Value.Text _), _ ->
            fail "LIKE requires text operands")
    | Not_like -> (
        match lhs, rhs with
        | Value.Text s, Value.Text p -> not (Value.like s ~pattern:p)
        | (Value.Null | Value.Int _ | Value.Float _ | Value.Text _), _ ->
            fail "NOT LIKE requires text operands")

let eval_rhs rhs v =
  match rhs with
  | Cmp (op, lit) -> eval_cmp op v lit
  | Between (lo, hi) ->
      (not (Value.is_null v))
      && Value.compare v lo >= 0
      && Value.compare v hi <= 0

let eval_where rel cond wide =
  let eval_pred p =
    match p.pr_agg, p.pr_col with
    | Some _, _ -> fail "aggregate predicate in WHERE"
    | None, None -> fail "missing column in WHERE predicate"
    | None, Some c -> eval_rhs p.pr_rhs wide.(lookup rel c)
  in
  match cond.c_conn with
  | And -> List.for_all eval_pred cond.c_preds
  | Or -> List.exists eval_pred cond.c_preds

(* --- relation building (plan execution) --- *)

(* Pushed scan filter on a raw base-table row: positions are column
   indices within the table, so no relation lookup is needed. *)
let scan_filter tbl (cond : condition) =
  let compiled =
    List.map
      (fun p ->
        match p.pr_col with
        | Some c -> (Duodb.Table.column_index tbl c.cr_col, p.pr_rhs)
        | None -> fail "missing column in pushed predicate")
      cond.c_preds
  in
  fun row ->
    match cond.c_conn with
    | And -> List.for_all (fun (i, rhs) -> eval_rhs rhs row.(i)) compiled
    | Or -> List.exists (fun (i, rhs) -> eval_rhs rhs row.(i)) compiled

(* Matching row indices for an optional pushed condition: the vectorized
   kernel scan (zone-map block skipping, dictionary probes) when the
   condition compiles, the scalar row loop otherwise.  [None] means "all
   rows" — callers iterate [0, row_count) directly. *)
let scan_indices tbl cond_opt =
  match cond_opt with
  | None -> None
  | Some cond -> (
      match Kernel.select tbl cond with
      | Some idxs -> Some idxs
      | None ->
          let keep = scan_filter tbl cond in
          let out = Dyn.create () in
          let n = Duodb.Table.row_count tbl in
          for i = 0 to n - 1 do
            if keep (Duodb.Table.get tbl i) then Dyn.push out i
          done;
          Some (Dyn.to_array out))

(* Filtered base scan: surviving rows plus their original row indices
   (join provenance). *)
let scan db name pushed =
  ignore (table_columns db name);
  let tbl = Duodb.Database.table_exn db name in
  match scan_indices tbl (List.assoc_opt name pushed) with
  | None -> Array.init (Duodb.Table.row_count tbl) (fun i -> (Duodb.Table.get tbl i, i))
  | Some idxs -> Array.map (fun i -> (Duodb.Table.get tbl i, i)) idxs

(* Build the joined relation following the plan's attach sequence.  Each
   wide row carries a provenance vector (per-table source row index, in
   canonical attach order) so reordered executions can be sorted back to
   the historical nested-loop row order. *)
let build_relation ?(max_rows = max_int) db (plan : Planner.t) =
  let ntables = List.length plan.Planner.plan_canonical in
  let cpos t = List.assoc t plan.Planner.plan_canonical in
  let pushed = plan.Planner.plan_pushed in
  (* base *)
  let base_cols = table_columns db plan.Planner.plan_base in
  let rel_index = Hashtbl.create 16 in
  List.iteri
    (fun i c ->
      Hashtbl.replace rel_index (plan.Planner.plan_base, c.Duodb.Schema.col_name) i)
    base_cols;
  let base_pos = cpos plan.Planner.plan_base in
  let rows =
    ref
      (Array.map
         (fun (row, i) ->
           let prov = Array.make ntables 0 in
           prov.(base_pos) <- i;
           (row, prov))
         (scan db plan.Planner.plan_base pushed))
  in
  (* joins *)
  List.iter
    (fun (op : Planner.join_op) ->
      let t = op.Planner.jo_table in
      let cols = table_columns db t in
      let tbl = Duodb.Database.table_exn db t in
      let right_idx = Duodb.Table.column_index tbl op.Planner.jo_right in
      (* Bucket the attached table's surviving rows by join key, keeping
         table order within each bucket so in-order executions need no
         sort afterwards.  The pushed filter runs as a kernel scan when
         it compiles. *)
      let buckets = V1tbl.create 256 in
      let bucket_row i =
        let row = Duodb.Table.get tbl i in
        let v = row.(right_idx) in
        if not (Value.is_null v) then begin
          match V1tbl.find_opt buckets v with
          | Some d -> Dyn.push d (row, i)
          | None ->
              let d = Dyn.create () in
              Dyn.push d (row, i);
              V1tbl.replace buckets v d
        end
      in
      (match scan_indices tbl (List.assoc_opt t pushed) with
      | None ->
          for i = 0 to Duodb.Table.row_count tbl - 1 do
            bucket_row i
          done
      | Some idxs -> Array.iter bucket_row idxs);
      let left_idx =
        match Hashtbl.find_opt rel_index op.Planner.jo_left with
        | Some i -> i
        | None ->
            fail "join column %s.%s not in relation" (fst op.Planner.jo_left)
              (snd op.Planner.jo_left)
      in
      let width = Hashtbl.length rel_index in
      List.iteri
        (fun i c -> Hashtbl.replace rel_index (t, c.Duodb.Schema.col_name) (width + i))
        cols;
      let pos = cpos t in
      let out = Dyn.create () in
      let count = ref 0 in
      Array.iter
        (fun (wide, prov) ->
          let v = wide.(left_idx) in
          if not (Value.is_null v) then
            match V1tbl.find_opt buckets v with
            | None -> ()
            | Some d ->
                count := !count + d.Dyn.len;
                if !count > max_rows then
                  fail "joined relation exceeds %d rows" max_rows;
                for k = 0 to d.Dyn.len - 1 do
                  let row, i = d.Dyn.arr.(k) in
                  let prov' = Array.copy prov in
                  prov'.(pos) <- i;
                  Dyn.push out (Array.append wide row, prov')
                done)
        !rows;
      rows := Dyn.to_array out)
    plan.Planner.plan_joins;
  let rows = !rows in
  (* Provenance sort: restore canonical nested-loop order after a
     reordered execution.  Provenance vectors are unique per row, so the
     order is total. *)
  if not plan.Planner.plan_in_order then
    Array.sort
      (fun (_, pa) (_, pb) ->
        let rec go i =
          if i >= Array.length pa then 0
          else
            let c = Int.compare pa.(i) pb.(i) in
            if c <> 0 then c else go (i + 1)
        in
        go 0)
      rows;
  { rel_index; rel_rows = Array.map fst rows }

(* [Error msg] entries memoize relations that exceeded the row bound, so
   repeated probes over an exploding join fail fast.  Keys come from the
   planner and cover FROM plus pushed predicates, so probes sharing a join
   tree and WHERE clause reuse one relation. *)
type relation_cache = {
  rc_tbl : (string, (relation, string) result) Hashtbl.t;
  mutable rc_hits : int;
  mutable rc_misses : int;
  mutable rc_pushdown_builds : int;
}

let create_cache () =
  { rc_tbl = Hashtbl.create 64; rc_hits = 0; rc_misses = 0; rc_pushdown_builds = 0 }

let cache_stats c = (c.rc_hits, c.rc_misses, c.rc_pushdown_builds)

(* Parallel verification keeps one relation cache per domain (a shared
   [Hashtbl] would race); reporting sums their counters. *)
let combined_stats caches =
  List.fold_left
    (fun (h, m, p) c ->
      let h', m', p' = cache_stats c in
      (h + h', m + m', p + p'))
    (0, 0, 0) caches

let build_relation_cached ?cache ?max_rows db (plan : Planner.t) =
  match cache with
  | None -> build_relation ?max_rows db plan
  | Some c -> (
      let key = plan.Planner.plan_key in
      match Hashtbl.find_opt c.rc_tbl key with
      | Some (Ok rel) ->
          c.rc_hits <- c.rc_hits + 1;
          rel
      | Some (Error e) ->
          c.rc_hits <- c.rc_hits + 1;
          raise (Exec_error e)
      | None -> (
          c.rc_misses <- c.rc_misses + 1;
          if plan.Planner.plan_pushdown then
            c.rc_pushdown_builds <- c.rc_pushdown_builds + 1;
          match build_relation ?max_rows db plan with
          | rel ->
              Hashtbl.replace c.rc_tbl key (Ok rel);
              rel
          | exception Exec_error e ->
              Hashtbl.replace c.rc_tbl key (Error e);
              raise (Exec_error e)))

(* --- aggregation --- *)

(* Aggregate over a group of wide rows, given as row indices into the
   relation. *)
let eval_agg rel agg col distinct (group : int array) =
  let rows = rel.rel_rows in
  let values () =
    let c = match col with Some c -> c | None -> fail "aggregate needs a column" in
    let i = lookup rel c in
    Array.fold_right
      (fun r acc -> if Value.is_null rows.(r).(i) then acc else rows.(r).(i) :: acc)
      group []
  in
  let distinct_values vs =
    let seen = V1tbl.create 16 in
    List.filter
      (fun v ->
        if V1tbl.mem seen v then false
        else begin
          V1tbl.add seen v ();
          true
        end)
      vs
  in
  let numeric vs =
    List.map
      (fun v -> if Value.is_numeric v then Value.to_float v else fail "numeric aggregate over text")
      vs
  in
  match agg with
  | Count -> (
      match col with
      | None -> Value.Int (Array.length group)
      | Some _ ->
          let vs = values () in
          let vs = if distinct then distinct_values vs else vs in
          Value.Int (List.length vs))
  | Sum -> (
      match values () with
      | [] -> Value.Null
      | vs ->
          (* Integer columns sum in integer arithmetic: float accumulation
             silently loses precision past 2^53.  Floats keep the float
             path (with the historical integral-total collapse to Int). *)
          if
            List.for_all
              (function
                | Value.Int _ -> true
                | Value.Null | Value.Float _ | Value.Text _ -> false)
              vs
          then
            Value.Int
              (List.fold_left
                 (fun acc v ->
                   match v with
                   | Value.Int i -> acc + i
                   | Value.Null | Value.Float _ | Value.Text _ -> acc)
                 0 vs)
          else
            let total = List.fold_left ( +. ) 0. (numeric vs) in
            if Float.is_integer total then Value.Int (int_of_float total)
            else Value.Float total)
  | Avg -> (
      match values () with
      | [] -> Value.Null
      | vs ->
          let fs = numeric vs in
          Value.Float (List.fold_left ( +. ) 0. fs /. float_of_int (List.length fs)))
  | Min -> (
      match values () with
      | [] -> Value.Null
      | v :: vs -> List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) v vs)
  | Max -> (
      match values () with
      | [] -> Value.Null
      | v :: vs -> List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) v vs)

(* Evaluate a projection-like item (agg option, col option, distinct) for a
   group.  For unaggregated items the group's first row supplies the value
   (SQL-legal only when the item is in GROUP BY; Semantics rules enforce
   this upstream, and tests rely on executor-level enforcement too). *)
let eval_item rel (agg, col, distinct) (group : int array) =
  match agg with
  | Some a -> eval_agg rel a col distinct group
  | None -> (
      match col with
      | Some c ->
          if Array.length group = 0 then Value.Null
          else rel.rel_rows.(group.(0)).(lookup rel c)
      | None -> fail "bare star projection")

let eval_having rel cond group =
  let eval_pred p =
    let v = eval_item rel (p.pr_agg, p.pr_col, false) group in
    eval_rhs p.pr_rhs v
  in
  match cond.c_conn with
  | And -> List.for_all eval_pred cond.c_preds
  | Or -> List.exists eval_pred cond.c_preds

let proj_type db (p : proj) =
  match p.p_agg with
  | Some Count -> Datatype.Number
  | Some (Sum | Avg) -> Datatype.Number
  | Some (Min | Max) | None -> (
      match p.p_col with
      | Some c -> column_type db c
      | None -> Datatype.Number)

let output_types db q =
  try Ok (List.map (proj_type db) q.q_select) with
  | Exec_error e -> Error e

(* Group the filtered rows when the query aggregates; otherwise each row is
   its own singleton group.  Groups are index vectors into [rel_rows]:
   first-seen key order, insertion order within each group. *)
let make_groups q rel (sel : int array) : int array list =
  let needs_groups =
    q.q_group_by <> []
    || List.exists (fun p -> Option.is_some p.p_agg) q.q_select
    || Option.is_some q.q_having
    || List.exists (fun o -> Option.is_some o.o_agg) q.q_order_by
  in
  if not needs_groups then Array.to_list (Array.map (fun r -> [| r |]) sel)
  else if q.q_group_by = [] then [ sel ]  (* single group, even when empty *)
  else begin
    let idxs = List.map (lookup rel) q.q_group_by in
    let order = Dyn.create () in
    let buckets = Vtbl.create 64 in
    Array.iter
      (fun r ->
        let row = rel.rel_rows.(r) in
        let key = List.map (fun i -> row.(i)) idxs in
        match Vtbl.find_opt buckets key with
        | Some d -> Dyn.push d r
        | None ->
            let d = Dyn.create () in
            Dyn.push d r;
            Vtbl.add buckets key d;
            Dyn.push order d)
      sel;
    Array.to_list (Array.map Dyn.to_array (Dyn.to_array order))
  end

(* Execute the post-relation pipeline (filter, group, HAVING, project,
   DISTINCT, sort, limit) of [q] against an already-built relation.
   [sel] short-circuits the residual filter with a precomputed selection
   vector (indices into [rel.rel_rows]) — the batched probe path feeds
   kernel-computed selections for shared single-table scans. *)
let exec_on_relation ?sel ~residual db rel q =
  (* Validate every referenced column against the FROM clause up front. *)
  List.iter (fun c -> ignore (lookup rel c)) (referenced_columns q);
  let sel =
    match sel with
    | Some s -> s
    | None -> (
        match residual with
        | None -> Array.init (Array.length rel.rel_rows) Fun.id
        | Some cond ->
            let out = Dyn.create () in
            Array.iteri
              (fun i row -> if eval_where rel cond row then Dyn.push out i)
              rel.rel_rows;
            Dyn.to_array out)
  in
    let groups = make_groups q rel sel in
    let groups =
      match q.q_having with
      | None -> groups
      | Some cond -> List.filter (eval_having rel cond) groups
    in
    (* Project and compute ORDER BY keys in the same pass so sort keys can
       reference non-projected expressions. *)
    let project group =
      let out =
        Array.of_list
          (List.map (fun p -> eval_item rel (p.p_agg, p.p_col, p.p_distinct) group) q.q_select)
      in
      let keys =
        List.map (fun o -> eval_item rel (o.o_agg, o.o_col, false) group) q.q_order_by
      in
      (out, keys)
    in
    let projected = List.map project groups in
    let projected =
      if not q.q_distinct then projected
      else begin
        let seen = Vtbl.create 64 in
        List.filter
          (fun (out, _) ->
            let k = Array.to_list out in
            if Vtbl.mem seen k then false
            else begin
              Vtbl.add seen k ();
              true
            end)
          projected
      end
    in
    let projected =
      if q.q_order_by = [] then projected
      else
        let dirs = List.map (fun o -> o.o_dir) q.q_order_by in
        let cmp (_, ka) (_, kb) =
          let rec go ks1 ks2 ds =
            match ks1, ks2, ds with
            | [], [], _ -> 0
            | k1 :: r1, k2 :: r2, d :: rd ->
                let c = Value.compare k1 k2 in
                let c = match d with Asc -> c | Desc -> -c in
                if c <> 0 then c else go r1 r2 rd
            | _ -> 0
          in
          go ka kb dirs
        in
        List.stable_sort cmp projected
    in
    let out_rows = List.map fst projected in
    let out_rows =
      match q.q_limit with
      | None -> out_rows
      | Some n -> List.filteri (fun i _ -> i < n) out_rows
    in
    let res_cols =
      List.map (fun p -> (Duosql.Pretty.proj p, proj_type db p)) q.q_select
    in
    { res_cols; res_rows = out_rows }

let run ?cache ?max_rows ?(planner = true) db q =
  try
    let plan =
      match Planner.plan ~enabled:planner db q with
      | Ok p -> p
      | Error e -> fail "%s" e
    in
    let rel = build_relation_cached ?cache ?max_rows db plan in
    Ok (exec_on_relation ~residual:plan.Planner.plan_residual db rel q)
  with
  | Exec_error e -> Error e

(* --- batched multi-candidate probes --- *)

type batch_report = {
  br_queries : int;
  br_groups : int;
  br_shared : int;
}

(* Execute a batch of candidate probe queries together.  Single-table
   probes are grouped per base table: the unfiltered base scan is built
   (or fetched from the cache) once, and each candidate's WHERE clause
   becomes a selection over that shared in-order relation — computed by
   the vectorized kernel when it compiles, by the scalar residual
   evaluator otherwise.  This replaces N near-identical filtered scans
   with one scan plus N cheap selections.

   Soundness of sharing: a single-table relation is never bounded by
   [max_rows] (only join growth is checked), so the shared unfiltered
   relation cannot raise an error that per-query pushed execution would
   have avoided; and because the relation is in table order, kernel
   selection indices address [rel_rows] directly.  Multi-table probes
   keep per-query execution (an unfiltered join could overflow
   [max_rows] where the pushed join would not) and still share work
   through the relation cache.  Each result is exactly what {!run}
   would return for that query. *)
let run_batch ?cache ?max_rows ?(planner = true) db (qs : query array) =
  let nq = Array.length qs in
  let results = Array.make nq (Error "batch: not executed") in
  let done_ = Array.make nq false in
  let groups : (string, int Dyn.t) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun i q ->
      match q.q_from.f_tables with
      | [ t ] when q.q_from.f_joins = [] -> (
          match Hashtbl.find_opt groups t with
          | Some d -> Dyn.push d i
          | None ->
              let d = Dyn.create () in
              Dyn.push d i;
              Hashtbl.replace groups t d)
      | [] | _ :: _ -> ())
    qs;
  let br_groups = ref 0 and br_shared = ref 0 in
  Hashtbl.iter
    (fun t d ->
      if d.Dyn.len >= 2 then begin
        let members = Dyn.to_array d in
        match Planner.plan ~enabled:planner db { qs.(members.(0)) with q_where = None } with
        | Error _ -> () (* members fall through to per-query execution *)
        | Ok plan -> (
            incr br_groups;
            match build_relation_cached ?cache ?max_rows db plan with
            | exception Exec_error e ->
                (* e.g. unknown table: every member fails identically *)
                Array.iter
                  (fun i ->
                    results.(i) <- Error e;
                    done_.(i) <- true;
                    incr br_shared)
                  members
            | rel ->
                let tbl = Duodb.Database.table_exn db t in
                Array.iter
                  (fun i ->
                    let q = qs.(i) in
                    results.(i) <-
                      (try
                         match q.q_where with
                         | None -> Ok (exec_on_relation ~residual:None db rel q)
                         | Some cond -> (
                             match Kernel.select tbl cond with
                             | Some sel -> Ok (exec_on_relation ~sel ~residual:None db rel q)
                             | None -> Ok (exec_on_relation ~residual:(Some cond) db rel q))
                       with Exec_error e -> Error e);
                    done_.(i) <- true;
                    incr br_shared)
                  members)
      end)
    groups;
  Array.iteri
    (fun i q ->
      if not done_.(i) then results.(i) <- run ?cache ?max_rows ~planner db q)
    qs;
  (results, { br_queries = nq; br_groups = !br_groups; br_shared = !br_shared })

let run_exn ?cache ?max_rows ?planner db q =
  match run ?cache ?max_rows ?planner db q with
  | Ok r -> r
  | Error e -> failwith (Printf.sprintf "Executor.run_exn: %s on %s" e (Duosql.Pretty.query q))

let cardinality r = List.length r.res_rows
