open Duosql.Ast
module Value = Duodb.Value
module Datatype = Duodb.Datatype

type join_op = {
  jo_table : string;
  jo_left : string * string;
  jo_right : string;
}

type t = {
  plan_base : string;
  plan_joins : join_op list;
  plan_pushed : (string * condition) list;
  plan_residual : condition option;
  plan_canonical : (string * int) list;
  plan_in_order : bool;
  plan_key : string;
  plan_pushdown : bool;
}

(* --- canonical attach order ---

   Replicates the historical build loop on table names alone: start from
   the first FROM table, repeatedly take the first join edge (in clause
   order) with exactly one endpoint joined.  Row provenance is keyed to
   this order so any execution order can be sorted back to it. *)

let usable_edge joined pending e =
  let a = e.j_from.cr_table and b = e.j_to.cr_table in
  if List.mem a joined && (not (List.mem b joined)) && List.mem b pending then
    Some { jo_table = b; jo_left = (a, e.j_from.cr_col); jo_right = e.j_to.cr_col }
  else if List.mem b joined && (not (List.mem a joined)) && List.mem a pending
  then
    Some { jo_table = a; jo_left = (b, e.j_to.cr_col); jo_right = e.j_from.cr_col }
  else None

let canonical_steps (f : from_clause) =
  match f.f_tables with
  | [] -> Error "empty FROM clause"
  | first :: rest ->
      let rec attach acc joined pending =
        if pending = [] then Ok (first, List.rev acc)
        else
          match List.find_map (usable_edge joined pending) f.f_joins with
          | None -> Error "FROM clause is not a connected join tree"
          | Some op ->
              attach (op :: acc) (op.jo_table :: joined)
                (List.filter (fun x -> not (String.equal x op.jo_table)) pending)
      in
      attach [] [ first ] rest

(* --- predicate pushdown ---

   A predicate is pushable when evaluating it on a base row can neither
   raise nor disagree with post-join evaluation: plain single-column
   predicates with comparison/BETWEEN right-hand sides.  LIKE can raise on
   non-text operands, so it is pushed only when both the column and the
   pattern are text. *)

let pushable_table schema (p : pred) =
  match p.pr_agg, p.pr_col with
  | Some _, _ | None, None -> None
  | None, Some c -> (
      match Duodb.Schema.find_column schema ~table:c.cr_table c.cr_col with
      | None -> None
      | Some col -> (
          match p.pr_rhs with
          | Cmp ((Like | Not_like), rhs) -> (
              match col.Duodb.Schema.col_type, rhs with
              | Datatype.Text, Value.Text _ -> Some c.cr_table
              | (Datatype.Text | Datatype.Number),
                (Value.Null | Value.Int _ | Value.Float _ | Value.Text _) ->
                  None)
          | Cmp ((Eq | Neq | Lt | Le | Gt | Ge), _) | Between _ ->
              Some c.cr_table))

(* Split WHERE into per-table scan filters.  AND distributes over the join
   freely; OR only when every disjunct lives in one and the same table.
   Anything else keeps the whole condition residual. *)
let pushdown schema (f : from_clause) (where : condition option) =
  match where with
  | None -> ([], None)
  | Some cond -> (
      let tables = List.map (pushable_table schema) cond.c_preds in
      let all_pushable =
        List.for_all
          (function
            | Some t -> List.mem t f.f_tables
            | None -> false)
          tables
      in
      if not all_pushable then ([], Some cond)
      else
        match cond.c_conn with
        | And ->
            let by_table =
              List.filter_map
                (fun t ->
                  let preds =
                    List.filter
                      (fun p ->
                        match p.pr_col with
                        | Some c -> String.equal c.cr_table t
                        | None -> false)
                      cond.c_preds
                  in
                  if preds = [] then None
                  else Some (t, { c_preds = preds; c_conn = And }))
                (List.sort_uniq String.compare f.f_tables)
            in
            (by_table, None)
        | Or -> (
            match List.sort_uniq String.compare (List.filter_map Fun.id tables) with
            | [ t ] -> ([ (t, cond) ], None)
            | _ -> ([], Some cond)))

(* --- selectivity and join ordering --- *)

let selectivity (p : pred) =
  match p.pr_rhs with
  | Cmp (Eq, _) -> 0.05
  | Cmp (Neq, _) -> 0.9
  | Cmp ((Lt | Le | Gt | Ge), _) -> 0.4
  | Cmp (Like, _) -> 0.25
  | Cmp (Not_like, _) -> 0.9
  | Between _ -> 0.25

let estimate db pushed table =
  match Duodb.Database.table db table with
  | None -> infinity
  | Some tbl ->
      let n = float_of_int (Duodb.Table.row_count tbl) in
      let sel =
        match List.assoc_opt table pushed with
        | None -> 1.0
        | Some cond -> (
            match cond.c_conn with
            | And ->
                List.fold_left
                  (fun acc p -> acc *. selectivity p)
                  1.0 cond.c_preds
            | Or ->
                min 1.0
                  (List.fold_left
                     (fun acc p -> acc +. selectivity p)
                     0.0 cond.c_preds))
      in
      n *. sel

(* Join reordering applies only to proper join trees over known tables:
   exactly n-1 edges, all endpoints in FROM, connected.  There each
   pending table attaches through a unique edge regardless of order, so
   any attach sequence yields the same multiset of joined rows. *)
let is_proper_tree db (f : from_clause) =
  List.length f.f_joins = List.length f.f_tables - 1
  && List.for_all
       (fun e ->
         List.mem e.j_from.cr_table f.f_tables
         && List.mem e.j_to.cr_table f.f_tables)
       f.f_joins
  && List.for_all (fun t -> Option.is_some (Duodb.Database.table db t)) f.f_tables

let greedy_order db pushed (f : from_clause) canonical_pos =
  let cost t = estimate db pushed t in
  let pos t = List.assoc t canonical_pos in
  let better a b =
    let ca = cost a and cb = cost b in
    if ca < cb then true else if ca > cb then false else pos a < pos b
  in
  let base =
    List.fold_left
      (fun best t -> if better t best then t else best)
      (List.hd f.f_tables) (List.tl f.f_tables)
  in
  let rec attach acc joined pending =
    if pending = [] then Some (base, List.rev acc)
    else
      let candidates =
        List.filter_map (usable_edge joined pending) f.f_joins
      in
      match candidates with
      | [] -> None (* disconnected; caller falls back to canonical *)
      | c0 :: cs ->
          let op =
            List.fold_left
              (fun best c ->
                if better c.jo_table best.jo_table then c else best)
              c0 cs
          in
          attach (op :: acc) (op.jo_table :: joined)
            (List.filter (fun x -> not (String.equal x op.jo_table)) pending)
  in
  attach [] [ base ]
    (List.filter (fun x -> not (String.equal x base)) f.f_tables)

(* --- cache key --- *)

let from_key (f : from_clause) =
  String.concat ";" f.f_tables ^ "|"
  ^ String.concat ";"
      (List.map
         (fun j ->
           j.j_from.cr_table ^ "." ^ j.j_from.cr_col ^ "=" ^ j.j_to.cr_table
           ^ "." ^ j.j_to.cr_col)
         f.f_joins)

let pushed_key pushed =
  String.concat "&"
    (List.map
       (fun (t, cond) ->
         t ^ ":"
         ^ (match cond.c_conn with And -> "and:" | Or -> "or:")
         ^ String.concat ","
             (List.map Duosql.Pretty.pred cond.c_preds))
       pushed)

let plan ?(enabled = true) db (q : query) =
  match canonical_steps q.q_from with
  | Error _ as e -> e
  | Ok (canon_base, canon_joins) ->
      let canonical_pos =
        List.mapi (fun i t -> (t, i))
          (canon_base :: List.map (fun op -> op.jo_table) canon_joins)
      in
      let schema = Duodb.Database.schema db in
      let pushed, residual =
        if enabled then pushdown schema q.q_from q.q_where
        else ([], q.q_where)
      in
      let base, joins =
        if enabled && is_proper_tree db q.q_from then
          match greedy_order db pushed q.q_from canonical_pos with
          | Some (b, js) -> (b, js)
          | None -> (canon_base, canon_joins)
        else (canon_base, canon_joins)
      in
      let in_order =
        String.equal base canon_base
        && List.length joins = List.length canon_joins
        && List.for_all2
             (fun a b -> String.equal a.jo_table b.jo_table)
             joins canon_joins
      in
      Ok
        {
          plan_base = base;
          plan_joins = joins;
          plan_pushed = pushed;
          plan_residual = residual;
          plan_canonical = canonical_pos;
          plan_in_order = in_order;
          plan_key = from_key q.q_from ^ "||" ^ pushed_key pushed;
          plan_pushdown = pushed <> [];
        }
