(** In-memory execution of {!Duosql.Ast} queries.

    Implements the complete task scope: inner joins along FK-PK edges,
    WHERE filtering, grouping with aggregates, HAVING, SELECT DISTINCT,
    ORDER BY (on projected or non-projected expressions), and LIMIT.

    Execution follows a {!Planner} plan: WHERE predicates confined to a
    single table are applied during that table's base scan (before any
    join), and the join order is chosen by estimated post-pushdown
    cardinality.  Results are identical to naive FROM-order evaluation —
    including row order under ORDER BY and first-seen group order —
    because every joined row carries provenance and reordered executions
    are sorted back to the canonical nested-loop order.

    SQL semantics notes:
    - comparisons involving [NULL] are false; aggregates skip nulls except
      [COUNT] of all rows;
    - an aggregate query without GROUP BY yields exactly one row (e.g.
      [COUNT] 0 on an empty input);
    - ORDER BY is a stable sort, so ties keep join order, making results
      deterministic. *)

type resultset = {
  res_cols : (string * Duodb.Datatype.t) list;
      (** output column labels (pretty-printed projection) and types *)
  res_rows : Duodb.Value.t array list;
}

(** Memoizes joined relations keyed by (FROM clause, pushed predicates),
    for callers (the verification cascade) that execute many probe queries
    over the same join tree.  Safe because databases are append-only
    during synthesis. *)
type relation_cache

val create_cache : unit -> relation_cache

(** [(hits, misses, pushdown_builds)]: cache hits, relations built, and
    how many of those builds had predicates pushed into base scans. *)
val cache_stats : relation_cache -> int * int * int

(** Sum of {!cache_stats} over several caches — parallel verification
    keeps one relation cache per domain, and reports merge them. *)
val combined_stats : relation_cache list -> int * int * int

(** [run ?cache ?max_rows ?planner db q] executes [q]. [Error msg] reports
    unknown tables/columns, disconnected FROM clauses, aggregates over
    incompatible types, or non-grouped projections mixed with aggregates.
    [max_rows] bounds the intermediate joined relation — the
    execution-time guard the verifier uses in place of a wall-clock query
    timeout; exceeding it is an error.  [planner = false] disables
    predicate pushdown and join reordering (canonical FROM-order
    evaluation, for differential tests and ablations); default [true]. *)
val run :
  ?cache:relation_cache ->
  ?max_rows:int ->
  ?planner:bool ->
  Duodb.Database.t ->
  Duosql.Ast.query ->
  (resultset, string) result

(** What {!run_batch} shared: [br_groups] shared base scans served
    [br_shared] of the [br_queries] probe queries; the rest executed
    individually (still sharing relations through the cache). *)
type batch_report = {
  br_queries : int;
  br_groups : int;
  br_shared : int;
}

(** [run_batch db qs] executes candidate probe queries together.
    Single-table probes that scan the same base table share one
    unfiltered scan: each candidate's WHERE becomes a vectorized
    selection over the shared in-order relation instead of its own
    filtered table scan.  Multi-table probes run individually (an
    unfiltered join could exceed [max_rows] where the pushed join would
    not), sharing relations through [cache] as usual.  The result array
    is positionally aligned with [qs] and each entry is exactly what
    {!run} returns for that query. *)
val run_batch :
  ?cache:relation_cache ->
  ?max_rows:int ->
  ?planner:bool ->
  Duodb.Database.t ->
  Duosql.Ast.query array ->
  (resultset, string) result array * batch_report

(** Like {!run} but raises [Failure]. *)
val run_exn :
  ?cache:relation_cache ->
  ?max_rows:int ->
  ?planner:bool ->
  Duodb.Database.t ->
  Duosql.Ast.query ->
  resultset

(** [output_types db q] computes the projection types without executing:
    [Count] is numeric, [Sum]/[Avg] numeric, [Min]/[Max] and plain
    projections keep the column type. *)
val output_types : Duodb.Database.t -> Duosql.Ast.query -> (Duodb.Datatype.t list, string) result

(** Number of rows in a result. *)
val cardinality : resultset -> int
