(** Selectivity-aware execution planning for {!Executor}.

    Sits between the AST and the evaluator and decides, per query:

    - {b predicate pushdown} — WHERE predicates whose column lives in a
      single base table are applied during that table's scan, before any
      join, shrinking join inputs instead of join outputs.  Pushdown is
      all-or-nothing: either the whole WHERE condition distributes over
      the base scans (conjunctive conditions, or a disjunction confined
      to one table) or nothing is pushed and the condition is evaluated
      on joined rows exactly as before.  A disjunction spanning several
      tables is never pushed.
    - {b join ordering} — when the FROM clause is a proper join tree over
      known tables, the base table and attach order are chosen by
      estimated post-pushdown cardinality (row count x a cheap
      per-predicate selectivity constant) rather than FROM-clause order.
      Results stay identical: the executor restores the canonical row
      order by provenance sort.
    - {b cache keys} — relations are memoized under (FROM, pushed
      predicates), so probe queries sharing a join tree and WHERE clause
      reuse one relation even as the rest of the query varies. *)

open Duosql

(** One join step: attach [jo_table] to the relation built so far, on
    [jo_left] (a column of the relation, as [(table, column)]) equal to
    [jo_right] (a column of [jo_table]). *)
type join_op = {
  jo_table : string;
  jo_left : string * string;
  jo_right : string;
}

type t = {
  plan_base : string;  (** first table scanned *)
  plan_joins : join_op list;  (** attach sequence after the base scan *)
  plan_pushed : (string * Ast.condition) list;
      (** per-table scan filters; empty when nothing is pushed *)
  plan_residual : Ast.condition option;
      (** WHERE remainder evaluated on joined rows (the whole condition
          when pushdown does not apply, [None] when fully pushed) *)
  plan_canonical : (string * int) list;
      (** table -> position in the canonical (FROM-order) attach
          sequence; provenance sort keys follow this order *)
  plan_in_order : bool;
      (** execution order equals canonical order: provenance sort is a
          no-op and the executor skips it *)
  plan_key : string;  (** relation-cache key: FROM + pushed predicates *)
  plan_pushdown : bool;  (** at least one predicate was pushed *)
}

(** [plan ?enabled db q] plans [q].  [enabled = false] (differential
    testing, ablations) keeps canonical join order and pushes nothing,
    reproducing the pre-planner evaluation strategy exactly.  [Error]
    reports an empty or disconnected FROM clause with the same messages
    the executor historically raised. *)
val plan : ?enabled:bool -> Duodb.Database.t -> Ast.query -> (t, string) result

(** Estimated fraction of rows surviving [pred]; a cheap System-R-style
    constant per operator class.  Exposed for tests and the bench. *)
val selectivity : Ast.pred -> float
