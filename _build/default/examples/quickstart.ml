(* Quickstart: the smallest end-to-end use of the public API.

   1. build (or load) a database;
   2. open a Duoquest session (this also builds the autocomplete index);
   3. describe the desired query twice — in English, and as a table sketch;
   4. read the ranked candidates.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. the paper's movie database: actor / movies / starring *)
  let db = Duobench.Movies.database () in

  (* 2. a session wraps the database with its inverted column index *)
  let session = Duocore.Duoquest.create_session db in

  (* 3a. the natural language query; double quotes tag literal text values *)
  let nlq = "Show the names of movies from before 1995" in

  (* 3b. the table sketch query: one output column of type text, and one
     example row the user remembers — Forrest Gump should be in the
     answer.  No sorting, no limit. *)
  let tsq =
    Duocore.Tsq.make
      ~types:[ Duodb.Datatype.Text ]
      ~tuples:[ [ Duocore.Tsq.Exact (Duodb.Value.Text "Forrest Gump") ] ]
      ()
  in

  (* 4. synthesize: candidates arrive ranked by confidence, and every one
     of them is guaranteed to satisfy the sketch (soundness). *)
  let outcome =
    Duocore.Duoquest.synthesize ~tsq ~literals:[ Duodb.Value.Int 1995 ]
      session ~nlq ()
  in
  Printf.printf "NLQ: %s\n" nlq;
  Printf.printf "TSQ: one text column; example row (Forrest Gump)\n\n";
  List.iteri
    (fun i c ->
      Printf.printf "#%d (confidence %.4f)  %s\n" (i + 1)
        c.Duocore.Enumerate.cand_confidence
        (Duosql.Pretty.query c.Duocore.Enumerate.cand_query))
    (Duocore.Duoquest.top_k outcome 5);

  (* execute the top candidate to show its result *)
  match outcome.Duocore.Enumerate.out_candidates with
  | [] -> print_endline "no candidates!"
  | best :: _ ->
      let res = Duoengine.Executor.run_exn db best.Duocore.Enumerate.cand_query in
      print_endline "\nTop candidate's result:";
      List.iter
        (fun row ->
          Printf.printf "  %s\n"
            (String.concat " | " (Array.to_list (Array.map Duodb.Value.to_display row))))
        res.Duoengine.Executor.res_rows
