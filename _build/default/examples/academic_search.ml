(* Domain example: the Microsoft Academic Search workload of the user
   studies (Appendix A), on the 15-table MAS schema.

   Shows two tasks end to end: a medium join task (A1) and a hard
   grouped-aggregate task with HAVING (B3), each specified dually with an
   NLQ plus a small sketch, as a study participant would.

   Run with: dune exec examples/academic_search.exe *)

module Tsq = Duocore.Tsq
module V = Duodb.Value

let show_outcome db outcome =
  List.iteri
    (fun i c ->
      if i < 5 then begin
        Printf.printf "#%d  %s\n" (i + 1)
          (Duosql.Pretty.query c.Duocore.Enumerate.cand_query);
        match Duoengine.Executor.run db c.Duocore.Enumerate.cand_query with
        | Ok res ->
            let rows = res.Duoengine.Executor.res_rows in
            List.iteri
              (fun j row ->
                if j < 2 then
                  Printf.printf "      %s\n"
                    (String.concat " | "
                       (Array.to_list (Array.map V.to_display row))))
              rows;
            Printf.printf "      (%d rows)\n" (List.length rows)
        | Error e -> Printf.printf "      error: %s\n" e
      end)
    outcome.Duocore.Enumerate.out_candidates

let config =
  { Duocore.Enumerate.default_config with
    Duocore.Enumerate.time_budget_s = 15.0;
    max_candidates = 25 }

let () =
  let db = Duobench.Mas.database () in
  let session = Duocore.Duoquest.create_session db in

  (* Task A1: publications in SIGMOD with their years.  The user recalls
     one SIGMOD paper title from the autocomplete and knows the output is
     (text, number). *)
  print_endline "=== Task A1: SIGMOD publications and years ===";
  (* The participant remembers one paper they know appeared at SIGMOD and
     types its first words; autocomplete resolves the full title. *)
  let sigmod_paper =
    let res =
      Duoengine.Executor.run_exn db
        (Duosql.Parser.query_exn ~schema:Duobench.Mas.schema
           "SELECT publication.title FROM publication JOIN conference ON \
            publication.cid = conference.cid WHERE conference.name = 'SIGMOD' \
            LIMIT 1")
    in
    match res.Duoengine.Executor.res_rows with
    | [| V.Text t |] :: _ -> t
    | _ -> "Scalable Query Optimization 1"
  in
  let idx = Duocore.Duoquest.session_index session in
  let prefix = String.sub sigmod_paper 0 (min 8 (String.length sigmod_paper)) in
  let known_title =
    match
      List.find_opt
        (fun h -> h.Duodb.Index.hit_value = sigmod_paper)
        (Duodb.Index.complete idx ~limit:50 ~prefix ())
    with
    | Some h -> h.Duodb.Index.hit_value
    | None -> sigmod_paper
  in
  Printf.printf "(autocompleted example title: %s)\n" known_title;
  let tsq =
    Tsq.make
      ~types:[ Duodb.Datatype.Text; Duodb.Datatype.Number ]
      ~tuples:[ [ Tsq.Exact (V.Text known_title); Tsq.Any ] ]
      ()
  in
  let outcome =
    Duocore.Duoquest.synthesize ~config ~tsq ~literals:[ V.Text "SIGMOD" ]
      session
      ~nlq:
        "List all publication titles in the \"SIGMOD\" conference and their \
         year of publication" ()
  in
  show_outcome db outcome;

  (* Task B3: organizations with more than 5 authors, with author counts.
     The user knows Michigan qualifies and roughly how many authors it
     has. *)
  print_endline "\n=== Task B3: organizations with more than 5 authors ===";
  let tsq =
    Tsq.make
      ~types:[ Duodb.Datatype.Text; Duodb.Datatype.Number ]
      ~tuples:
        [ [ Tsq.Exact (V.Text "University of Michigan"); Tsq.Range (V.Int 10, V.Int 30) ] ]
      ()
  in
  let outcome =
    Duocore.Duoquest.synthesize ~config ~tsq ~literals:[ V.Int 5 ] session
      ~nlq:
        "List organizations with more than 5 authors and the number of \
         authors for each organization" ()
  in
  show_outcome db outcome
