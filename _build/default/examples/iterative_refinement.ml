(* The interaction loop of Figure 1: issue an NLQ, inspect candidates, and
   refine the sketch with more information until the desired query
   surfaces at rank 1.

   The scenario: "actors and how many movies they starred in" — ambiguous
   enough that several groupings compete; each round adds one piece of
   sketch knowledge and the candidate list tightens.

   Run with: dune exec examples/iterative_refinement.exe *)

module Tsq = Duocore.Tsq
module V = Duodb.Value

let nlq = "List actor names and the number of movies each actor starred in"

let gold_sql =
  "SELECT a.name, COUNT(*) FROM actor a JOIN starring s ON a.aid = s.aid \
   GROUP BY a.name"

let config =
  { Duocore.Enumerate.default_config with
    Duocore.Enumerate.time_budget_s = 8.0;
    max_candidates = 30 }

let round session gold n tsq label =
  let outcome = Duocore.Duoquest.synthesize ~config ?tsq ~literals:[] session ~nlq () in
  let rank = Duocore.Duoquest.rank_of outcome ~gold in
  Printf.printf "round %d (%s): %d candidates, desired query at rank %s\n" n label
    (List.length outcome.Duocore.Enumerate.out_candidates)
    (match rank with Some r -> string_of_int r | None -> "-");
  List.iteri
    (fun i c ->
      if i < 3 then
        Printf.printf "    #%d %s\n" (i + 1)
          (Duosql.Pretty.query c.Duocore.Enumerate.cand_query))
    outcome.Duocore.Enumerate.out_candidates;
  rank

let () =
  let db = Duobench.Movies.database () in
  let session = Duocore.Duoquest.create_session db in
  let gold = Duobench.Movies.parse gold_sql in

  (* Round 1: NLQ only. *)
  ignore (round session gold 1 None "no sketch");

  (* Round 2: the user adds output types — two columns, text then number. *)
  let tsq2 = Tsq.make ~types:[ Duodb.Datatype.Text; Duodb.Datatype.Number ] () in
  ignore (round session gold 2 (Some tsq2) "types only");

  (* Round 3: one remembered example — Tom Hanks starred in two of the
     movies in the catalogue. *)
  let tsq3 =
    Tsq.make
      ~types:[ Duodb.Datatype.Text; Duodb.Datatype.Number ]
      ~tuples:[ [ Tsq.Exact (V.Text "Tom Hanks"); Tsq.Exact (V.Int 3) ] ]
      ()
  in
  let rank3 = round session gold 3 (Some tsq3) "types + 1 example" in

  (* The loop converges: with one exact example the desired query should
     be at or near the top. *)
  match rank3 with
  | Some r when r <= 3 -> Printf.printf "\nconverged: desired query at rank %d\n" r
  | Some r -> Printf.printf "\nstill rank %d; the user would add another example\n" r
  | None -> print_endline "\nnot found; the user would rephrase the NLQ"
