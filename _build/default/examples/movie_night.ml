(* The paper's motivating example (Section 2.1, Examples 2.1-2.2).

   Kevin's ambiguous NLQ admits several interpretations (CQ1-CQ3).  With
   the NLQ alone the desired query is buried in the candidate list; adding
   a two-row table sketch eliminates the wrong interpretations.

   Run with: dune exec examples/movie_night.exe *)

module Tsq = Duocore.Tsq
module V = Duodb.Value

let nlq =
  "Show names of movies starring actors from before 1995, and those after \
   2000, with corresponding actor names, and years, from earliest to most \
   recent"

let literals = [ V.Int 1995; V.Int 2000 ]

let print_candidates label outcome =
  Printf.printf "\n--- %s: %d candidates ---\n" label
    (List.length outcome.Duocore.Enumerate.out_candidates);
  List.iteri
    (fun i c ->
      if i < 8 then
        Printf.printf "#%d  %s\n" (i + 1)
          (Duosql.Pretty.query c.Duocore.Enumerate.cand_query))
    outcome.Duocore.Enumerate.out_candidates

let () =
  let db = Duobench.Movies.database () in
  let session = Duocore.Duoquest.create_session db in
  let config =
    { Duocore.Enumerate.default_config with
      Duocore.Enumerate.time_budget_s = 8.0;
      max_candidates = 40 }
  in

  (* First attempt: NLQ only (the single-specification NLI experience). *)
  let nli_outcome =
    Duocore.Duoquest.synthesize ~config ~mode:`Nli ~literals session ~nlq ()
  in
  print_candidates "NLQ only" nli_outcome;

  (* Kevin recalls two movie nights: Tom Hanks starred in Forrest Gump
     (released before 1995), and Sandra Bullock starred in Gravity,
     released sometime between 2010 and 2017 (Table 2 of the paper). *)
  let tsq =
    Tsq.make
      ~types:[ Duodb.Datatype.Text; Duodb.Datatype.Text; Duodb.Datatype.Number ]
      ~tuples:
        [
          [ Tsq.Exact (V.Text "Forrest Gump"); Tsq.Exact (V.Text "Tom Hanks"); Tsq.Any ];
          [ Tsq.Exact (V.Text "Gravity"); Tsq.Exact (V.Text "Sandra Bullock");
            Tsq.Range (V.Int 2010, V.Int 2017) ];
        ]
      ~sorted:true ()
  in
  let dual_outcome =
    Duocore.Duoquest.synthesize ~config ~tsq ~literals session ~nlq ()
  in
  print_candidates "NLQ + TSQ (dual specification)" dual_outcome;

  (* The wrong interpretations of Example 2.1 must be gone: CQ1 filters to
     male actors (Sandra Bullock fails), CQ2 reads birth years (nobody is
     born 2010-2017). *)
  let cq1 =
    Duobench.Movies.parse
      "SELECT m.name, a.name, m.year FROM actor a JOIN starring s ON a.aid = \
       s.aid JOIN movies m ON s.mid = m.mid WHERE a.gender = 'male' AND \
       (m.year < 1995 OR m.year > 2000) ORDER BY m.year ASC"
  in
  ignore cq1;
  List.iter
    (fun c ->
      let q = c.Duocore.Enumerate.cand_query in
      let mentions_gender =
        List.exists
          (fun p ->
            match p.Duosql.Ast.pr_col with
            | Some cr -> cr.Duosql.Ast.cr_col = "gender"
            | None -> false)
          (match q.Duosql.Ast.q_where with Some w -> w.Duosql.Ast.c_preds | None -> [])
      in
      assert (not mentions_gender))
    dual_outcome.Duocore.Enumerate.out_candidates;
  print_endline "\n(no surviving candidate filters on actor gender: CQ1-style readings eliminated)"
