examples/quickstart.ml: Array Duobench Duocore Duodb Duoengine Duosql List Printf String
