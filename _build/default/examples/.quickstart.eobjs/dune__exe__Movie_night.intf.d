examples/movie_night.mli:
