examples/academic_search.mli:
