examples/academic_search.ml: Array Duobench Duocore Duodb Duoengine Duosql List Printf String
