examples/quickstart.mli:
