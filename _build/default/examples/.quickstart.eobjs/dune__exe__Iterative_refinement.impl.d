examples/iterative_refinement.ml: Duobench Duocore Duodb Duosql List Printf
