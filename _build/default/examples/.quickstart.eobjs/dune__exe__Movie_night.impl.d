examples/movie_night.ml: Duobench Duocore Duodb Duosql List Printf
