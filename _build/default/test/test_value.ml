module Value = Duodb.Value

let check_cmp name expected a b () =
  Alcotest.(check int) name expected (compare (Value.compare a b) 0)

let test_numeric_cross_repr () =
  Alcotest.(check bool) "Int 3 = Float 3.0" true (Value.equal (Value.Int 3) (Value.Float 3.0));
  Alcotest.(check bool) "Int 3 <> Float 3.5" false (Value.equal (Value.Int 3) (Value.Float 3.5))

let test_null_sorts_first () =
  Alcotest.(check bool) "null < int" true (Value.compare Value.Null (Value.Int (-100)) < 0);
  Alcotest.(check bool) "null < text" true (Value.compare Value.Null (Value.Text "") < 0)

let test_numbers_before_text () =
  Alcotest.(check bool) "number < text" true
    (Value.compare (Value.Int 99) (Value.Text "0") < 0)

let test_to_sql_quoting () =
  Alcotest.(check string) "escapes quotes" "'O''Brien'" (Value.to_sql (Value.Text "O'Brien"));
  Alcotest.(check string) "int" "42" (Value.to_sql (Value.Int 42));
  Alcotest.(check string) "round float" "3" (Value.to_sql (Value.Float 3.0));
  Alcotest.(check string) "frac float" "3.5" (Value.to_sql (Value.Float 3.5))

let test_like () =
  Alcotest.(check bool) "substring" true (Value.like "Forrest Gump" ~pattern:"%Gump%");
  Alcotest.(check bool) "case-insensitive" true (Value.like "FORREST" ~pattern:"forrest");
  Alcotest.(check bool) "underscore" true (Value.like "cat" ~pattern:"c_t");
  Alcotest.(check bool) "no match" false (Value.like "cat" ~pattern:"c_");
  Alcotest.(check bool) "anchored prefix" true (Value.like "Gravity" ~pattern:"Grav%");
  Alcotest.(check bool) "anchored miss" false (Value.like "Gravity" ~pattern:"rav%");
  Alcotest.(check bool) "empty pattern on empty" true (Value.like "" ~pattern:"");
  Alcotest.(check bool) "percent matches empty" true (Value.like "" ~pattern:"%")

let test_hash_consistent_with_equal () =
  Alcotest.(check int) "Int/Float hash agree"
    (Value.hash (Value.Int 7)) (Value.hash (Value.Float 7.0))

(* Property: Value.compare is a total order (antisymmetric, transitive on
   sampled triples) and consistent with equal. *)
let value_gen =
  QCheck.Gen.(
    oneof
      [
        return Value.Null;
        map (fun i -> Value.Int i) small_signed_int;
        map (fun f -> Value.Float f) (float_bound_inclusive 1000.0);
        map (fun s -> Value.Text s) (string_size (int_range 0 8));
      ])

let value_arb = QCheck.make ~print:Value.to_sql value_gen

let prop_compare_antisym =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:500
    (QCheck.pair value_arb value_arb) (fun (a, b) ->
      Value.compare a b = -Value.compare b a)

let prop_compare_trans =
  QCheck.Test.make ~name:"compare transitive" ~count:500
    (QCheck.triple value_arb value_arb value_arb) (fun (a, b, c) ->
      let sorted = List.sort Value.compare [ a; b; c ] in
      match sorted with
      | [ x; y; z ] -> Value.compare x y <= 0 && Value.compare y z <= 0 && Value.compare x z <= 0
      | _ -> false)

let prop_equal_consistent =
  QCheck.Test.make ~name:"equal iff compare=0" ~count:500
    (QCheck.pair value_arb value_arb) (fun (a, b) ->
      Value.equal a b = (Value.compare a b = 0))

let prop_hash_consistent =
  QCheck.Test.make ~name:"equal values hash equal" ~count:500
    (QCheck.pair value_arb value_arb) (fun (a, b) ->
      (not (Value.equal a b)) || Value.hash a = Value.hash b)

let suite =
  [
    Alcotest.test_case "numeric cross-representation equality" `Quick test_numeric_cross_repr;
    Alcotest.test_case "null sorts first" `Quick test_null_sorts_first;
    Alcotest.test_case "numbers before text" `Quick test_numbers_before_text;
    Alcotest.test_case "sql quoting" `Quick test_to_sql_quoting;
    Alcotest.test_case "like matching" `Quick test_like;
    Alcotest.test_case "hash consistent with equal" `Quick test_hash_consistent_with_equal;
    Alcotest.test_case "compare Int 1 < Int 2" `Quick (check_cmp "lt" (-1) (Value.Int 1) (Value.Int 2));
    QCheck_alcotest.to_alcotest prop_compare_antisym;
    QCheck_alcotest.to_alcotest prop_compare_trans;
    QCheck_alcotest.to_alcotest prop_equal_consistent;
    QCheck_alcotest.to_alcotest prop_hash_consistent;
  ]
