(* Integration: the simulation pipeline end to end on a small split —
   the same code path fig10/fig11/fig12/table6 run at paper scale. *)

module Simulation = Duobench.Simulation
module Spider = Duobench.Spider_gen

let split = Spider.mini ~seed:17 ~n_dbs:3 ~per_db:6 ()

let fast_config =
  { Simulation.sim_config with
    Duocore.Enumerate.max_pops = 15_000;
    time_budget_s = 0.8 }

let dq =
  lazy
    (Simulation.run_split ~config:fast_config ~mode:`Duoquest
       ~detail:(Some Duobench.Tsq_synth.Full) split)

let nli =
  lazy (Simulation.run_split ~config:fast_config ~mode:`Nli ~detail:None split)

let test_all_tasks_ran () =
  Alcotest.(check int) "one record per task" (List.length split.Spider.tasks)
    (List.length (Lazy.force dq))

let test_duoquest_beats_nli () =
  let d = Simulation.top_k_count (Lazy.force dq) 10 in
  let n = Simulation.top_k_count (Lazy.force nli) 10 in
  Alcotest.(check bool)
    (Printf.sprintf "dq %d >= nli %d (top-10)" d n)
    true (d >= n);
  Alcotest.(check bool) "duoquest finds a majority" true
    (2 * d >= List.length split.Spider.tasks)

let test_ranks_within_candidates () =
  List.iter
    (fun r ->
      match r.Simulation.pt_rank with
      | Some rank ->
          Alcotest.(check bool) "rank within candidate count" true
            (rank >= 1 && rank <= r.Simulation.pt_candidates)
      | None -> ())
    (Lazy.force dq)

let test_times_monotone_with_rank () =
  List.iter
    (fun r ->
      match r.Simulation.pt_rank, r.Simulation.pt_time with
      | Some _, Some t -> Alcotest.(check bool) "time nonnegative" true (t >= 0.0)
      | Some _, None -> Alcotest.fail "found rank without time"
      | None, _ -> ())
    (Lazy.force dq)

let test_by_difficulty_partitions () =
  let results = Lazy.force dq in
  let total =
    List.length (Simulation.by_difficulty results `Easy)
    + List.length (Simulation.by_difficulty results `Medium)
    + List.length (Simulation.by_difficulty results `Hard)
  in
  Alcotest.(check int) "difficulties partition" (List.length results) total

let test_completed_within_monotone () =
  let results = Lazy.force dq in
  let a = Simulation.completed_within results 0.01 in
  let b = Simulation.completed_within results 0.5 in
  Alcotest.(check bool) "CDF monotone" true (b >= a)

let test_pbe_statuses () =
  let statuses = Simulation.run_pbe split in
  Alcotest.(check int) "one status per task" (List.length split.Spider.tasks)
    (List.length statuses);
  (* every hard task projects an aggregate, so PBE cannot support it *)
  List.iter
    (fun (task, status) ->
      if task.Spider.sp_difficulty = `Hard
         && Duosql.Ast.has_aggregate task.Spider.sp_gold
      then
        Alcotest.(check bool) "hard task unsupported" true
          (status = Simulation.Pbe_unsupported))
    statuses

let suite =
  [
    Alcotest.test_case "all tasks ran" `Slow test_all_tasks_ran;
    Alcotest.test_case "duoquest >= NLI" `Slow test_duoquest_beats_nli;
    Alcotest.test_case "ranks within bounds" `Slow test_ranks_within_candidates;
    Alcotest.test_case "times present with ranks" `Slow test_times_monotone_with_rank;
    Alcotest.test_case "difficulty partition" `Slow test_by_difficulty_partitions;
    Alcotest.test_case "CDF monotone" `Slow test_completed_within_monotone;
    Alcotest.test_case "PBE statuses" `Slow test_pbe_statuses;
  ]
