module Rng = Duobench.Rng

let test_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same stream" xs ys

let test_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_split_independence () =
  let a = Rng.create 7 in
  let c1 = Rng.split a in
  let v = Rng.int a 100 in
  let a2 = Rng.create 7 in
  let _ = Rng.split a2 in
  Alcotest.(check int) "parent stream unaffected by child use" v
    (let _ = Rng.int c1 5 in
     Rng.int a2 100)

let prop_int_bounds =
  QCheck.Test.make ~name:"int within bounds" ~count:500
    QCheck.(pair (int_range 1 10000) small_int)
    (fun (bound, seed) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let prop_range_bounds =
  QCheck.Test.make ~name:"range inclusive" ~count:500
    QCheck.(triple (int_range (-100) 100) (int_range 0 200) small_int)
    (fun (lo, span, seed) ->
      let r = Rng.create seed in
      let v = Rng.range r lo (lo + span) in
      v >= lo && v <= lo + span)

let prop_float_unit =
  QCheck.Test.make ~name:"float in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let r = Rng.create seed in
      let f = Rng.float r in
      f >= 0.0 && f < 1.0)

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair (list small_int) small_int)
    (fun (xs, seed) ->
      let r = Rng.create seed in
      List.sort compare (Rng.shuffle r xs) = List.sort compare xs)

let prop_sample_size =
  QCheck.Test.make ~name:"sample size" ~count:200
    QCheck.(triple (list_of_size (Gen.int_range 0 20) small_int) (int_range 0 25) small_int)
    (fun (xs, k, seed) ->
      let r = Rng.create seed in
      List.length (Rng.sample r k xs) = min k (List.length xs))

let suite =
  [
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "seeds differ" `Quick test_different_seeds;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    QCheck_alcotest.to_alcotest prop_int_bounds;
    QCheck_alcotest.to_alcotest prop_range_bounds;
    QCheck_alcotest.to_alcotest prop_float_unit;
    QCheck_alcotest.to_alcotest prop_shuffle_permutation;
    QCheck_alcotest.to_alcotest prop_sample_size;
  ]
