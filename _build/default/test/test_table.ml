module Table = Duodb.Table
module Database = Duodb.Database
module Value = Duodb.Value
module Index = Duodb.Index

let db () = Fixtures.movie_db ()

let test_row_counts () =
  let db = db () in
  Alcotest.(check int) "actors" 5 (Table.row_count (Database.table_exn db "actor"));
  Alcotest.(check int) "movies" 6 (Table.row_count (Database.table_exn db "movies"));
  Alcotest.(check int) "total" 18 (Database.total_rows db)

let test_arity_check () =
  let db = db () in
  Alcotest.(check bool) "bad arity raises" true
    (try
       Database.insert db ~table:"actor" [| Value.Int 9 |];
       false
     with Invalid_argument _ -> true)

let test_type_check () =
  let db = db () in
  Alcotest.(check bool) "text into number column raises" true
    (try
       Database.insert db ~table:"movies"
         [| Value.Text "not a number"; Value.Text "m"; Value.Int 2000; Value.Int 1 |];
       false
     with Invalid_argument _ -> true)

let test_null_is_typable () =
  let db = db () in
  Database.insert db ~table:"movies" [| Value.Int 99; Value.Null; Value.Null; Value.Null |];
  Alcotest.(check int) "insert with nulls ok" 7
    (Table.row_count (Database.table_exn db "movies"))

let test_column_values () =
  let db = db () in
  let years = Table.column_values (Database.table_exn db "movies") "year" in
  Alcotest.(check int) "6 years" 6 (List.length years);
  Alcotest.(check bool) "1994 present" true (List.mem (Value.Int 1994) years)

let test_column_range () =
  let db = db () in
  match Table.column_range (Database.table_exn db "movies") "year" with
  | Some (lo, hi) ->
      Alcotest.check Fixtures.value_testable "lo" (Value.Int 1994) lo;
      Alcotest.check Fixtures.value_testable "hi" (Value.Int 2017) hi
  | None -> Alcotest.fail "expected range"

let test_integrity_ok () =
  Alcotest.(check (list string)) "no violations" [] (Database.check_integrity (db ()))

let test_integrity_dangling_fk () =
  let db = db () in
  Database.insert db ~table:"starring" [| Value.Int 999; Value.Int 42; Value.Int 10 |];
  Alcotest.(check bool) "dangling fk reported" true
    (List.exists
       (fun s -> String.length s > 0 && String.sub s 0 8 = "dangling")
       (Database.check_integrity db))

let test_integrity_dup_pk () =
  let db = db () in
  Database.insert db ~table:"actor"
    [| Value.Int 1; Value.Text "Clone"; Value.Text "male"; Value.Int 1990;
       Value.Text "Lab"; Value.Int 2010 |];
  Alcotest.(check bool) "dup pk reported" true
    (List.exists
       (fun s -> String.length s > 8 && String.sub s 0 9 = "duplicate")
       (Database.check_integrity db))

let test_index_lookup () =
  let idx = Index.build (db ()) in
  let hits = Index.lookup idx "tom hanks" in
  Alcotest.(check int) "one hit" 1 (List.length hits);
  let h = List.hd hits in
  Alcotest.(check string) "table" "actor" h.Index.hit_table;
  Alcotest.(check string) "column" "name" h.Index.hit_column

let test_index_complete () =
  let idx = Index.build (db ()) in
  let hits = Index.complete idx ~prefix:"t" () in
  Alcotest.(check bool) "titanic or tom" true
    (List.exists (fun h -> h.Index.hit_value = "Titanic") hits
    && List.exists (fun h -> h.Index.hit_value = "Tom Hanks") hits);
  let limited = Index.complete idx ~limit:1 ~prefix:"t" () in
  Alcotest.(check int) "limit respected" 1 (List.length limited)

let test_index_contains () =
  let idx = Index.build (db ()) in
  Alcotest.(check bool) "contains" true
    (Index.contains idx ~table:"movies" ~column:"name" "Gravity");
  Alcotest.(check bool) "absent value" false
    (Index.contains idx ~table:"movies" ~column:"name" "Tom Hanks")

let suite =
  [
    Alcotest.test_case "row counts" `Quick test_row_counts;
    Alcotest.test_case "arity check" `Quick test_arity_check;
    Alcotest.test_case "type check" `Quick test_type_check;
    Alcotest.test_case "null insert" `Quick test_null_is_typable;
    Alcotest.test_case "column values" `Quick test_column_values;
    Alcotest.test_case "column range" `Quick test_column_range;
    Alcotest.test_case "integrity: clean db" `Quick test_integrity_ok;
    Alcotest.test_case "integrity: dangling fk" `Quick test_integrity_dangling_fk;
    Alcotest.test_case "integrity: duplicate pk" `Quick test_integrity_dup_pk;
    Alcotest.test_case "index lookup" `Quick test_index_lookup;
    Alcotest.test_case "index autocomplete" `Quick test_index_complete;
    Alcotest.test_case "index contains" `Quick test_index_contains;
  ]
