(* Shared test fixtures: the movie database from the paper's running
   example (Section 2.1) — actor / movies / starring — with enough rows to
   make the candidate queries CQ1-CQ3 distinguishable. *)

module Schema = Duodb.Schema
module Value = Duodb.Value
module Database = Duodb.Database

let movie_schema =
  Schema.make ~name:"movies_db"
    [
      Schema.table "actor"
        [ ("aid", Duodb.Datatype.Number); ("name", Duodb.Datatype.Text);
          ("gender", Duodb.Datatype.Text); ("birth_yr", Duodb.Datatype.Number);
          ("birthplace", Duodb.Datatype.Text); ("debut_yr", Duodb.Datatype.Number) ]
        ~pk:[ "aid" ];
      Schema.table "movies"
        [ ("mid", Duodb.Datatype.Number); ("name", Duodb.Datatype.Text);
          ("year", Duodb.Datatype.Number); ("revenue", Duodb.Datatype.Number) ]
        ~pk:[ "mid" ];
      Schema.table "starring"
        [ ("sid", Duodb.Datatype.Number); ("aid", Duodb.Datatype.Number);
          ("mid", Duodb.Datatype.Number) ]
        ~pk:[ "sid" ];
    ]
    [
      Schema.fk ("starring", "aid") ("actor", "aid");
      Schema.fk ("starring", "mid") ("movies", "mid");
    ]

let i n = Value.Int n
let t s = Value.Text s

let movie_db () =
  let db = Database.create movie_schema in
  Database.insert_all db ~table:"actor"
    [
      [| i 1; t "Tom Hanks"; t "male"; i 1956; t "Concord"; i 1980 |];
      [| i 2; t "Sandra Bullock"; t "female"; i 1964; t "Arlington"; i 1987 |];
      [| i 3; t "Brad Pitt"; t "male"; i 1963; t "Shawnee"; i 1987 |];
      [| i 4; t "Meryl Streep"; t "female"; i 1949; t "Summit"; i 1971 |];
      [| i 5; t "Leonardo DiCaprio"; t "male"; i 1974; t "Los Angeles"; i 1991 |];
    ];
  Database.insert_all db ~table:"movies"
    [
      [| i 10; t "Forrest Gump"; i 1994; i 678 |];
      [| i 11; t "Gravity"; i 2013; i 723 |];
      [| i 12; t "Seven"; i 1995; i 327 |];
      [| i 13; t "The Post"; i 2017; i 193 |];
      [| i 14; t "Titanic"; i 1997; i 2187 |];
      [| i 15; t "Inception"; i 2010; i 836 |];
    ];
  Database.insert_all db ~table:"starring"
    [
      [| i 100; i 1; i 10 |];
      (* Tom Hanks in Forrest Gump *)
      [| i 101; i 2; i 11 |];
      (* Sandra Bullock in Gravity *)
      [| i 102; i 3; i 12 |];
      [| i 103; i 4; i 13 |];
      [| i 104; i 5; i 14 |];
      [| i 105; i 5; i 15 |];
      [| i 106; i 1; i 13 |];
      (* Tom Hanks in The Post *)
    ];
  db

(* Parse against the movie schema; fails the test on parse errors. *)
let parse sql = Duosql.Parser.query_exn ~schema:movie_schema sql

let value_testable = Alcotest.testable Value.pp Value.equal

let rows_testable =
  Alcotest.(list (array value_testable))

(* Substring containment, for checking error messages. *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let run_rows db sql =
  let q = parse sql in
  (Duoengine.Executor.run_exn db q).Duoengine.Executor.res_rows
