(* The Section 7 extensions: negative examples, noisy-example tolerance,
   and the sketch-refinement helpers. *)

module Tsq = Duocore.Tsq
module Feedback = Duocore.Feedback
module Value = Duodb.Value

let db = Fixtures.movie_db ()
let parse = Fixtures.parse
let t s = Value.Text s

let test_negative_example_rejects () =
  let tsq =
    Tsq.make ~tuples:[ [ Tsq.Exact (t "Forrest Gump") ] ]
      ~negatives:[ [ Tsq.Exact (t "Gravity") ] ]
      ()
  in
  Alcotest.(check bool) "movie names include Gravity: rejected" false
    (Tsq.satisfies tsq db (parse "SELECT movies.name FROM movies"));
  Alcotest.(check bool) "filtered query excludes Gravity: accepted" true
    (Tsq.satisfies tsq db
       (parse "SELECT movies.name FROM movies WHERE movies.year < 2010"))

let test_reject_row_builder () =
  let tsq = Tsq.make ~tuples:[ [ Tsq.Exact (t "Forrest Gump") ] ] () in
  let refined = Feedback.reject_row tsq [| t "Gravity" |] in
  Alcotest.(check int) "one negative" 1 (List.length refined.Tsq.negatives);
  Alcotest.(check bool) "now rejects" false
    (Tsq.satisfies refined db (parse "SELECT movies.name FROM movies"))

let test_accept_row_builder () =
  let tsq = Tsq.make ~tuples:[] () in
  let refined = Feedback.accept_row tsq [| t "Seven" |] in
  Alcotest.(check int) "one positive" 1 (Tsq.num_tuples refined);
  Alcotest.(check bool) "movie names satisfy" true
    (Tsq.satisfies refined db (parse "SELECT movies.name FROM movies"))

let test_noise_tolerance () =
  (* One correct example and one wrong one: strict matching fails, but
     min_support = 1 tolerates the noise (Section 7's noisy examples). *)
  let tuples =
    [ [ Tsq.Exact (t "Forrest Gump") ]; [ Tsq.Exact (t "Not A Real Movie") ] ]
  in
  let strict = Tsq.make ~tuples () in
  let q = parse "SELECT movies.name FROM movies" in
  Alcotest.(check bool) "strict fails" false (Tsq.satisfies strict db q);
  let tolerant = Feedback.tolerate_noise strict ~slack:1 in
  Alcotest.(check bool) "tolerant succeeds" true (Tsq.satisfies tolerant db q);
  let restored = Feedback.tolerate_noise tolerant ~slack:0 in
  Alcotest.(check bool) "slack 0 restores strictness" false (Tsq.satisfies restored db q)

let test_required_support () =
  let tuples = [ [ Tsq.Any ]; [ Tsq.Any ]; [ Tsq.Any ] ] in
  Alcotest.(check int) "default all" 3 (Tsq.required_support (Tsq.make ~tuples ()));
  Alcotest.(check int) "clamped" 3
    (Tsq.required_support (Tsq.make ~tuples ~min_support:9 ()));
  Alcotest.(check int) "explicit" 2
    (Tsq.required_support (Tsq.make ~tuples ~min_support:2 ()))

let test_noisy_synthesis_end_to_end () =
  (* The synthesizer still finds the gold query when one of the user's
     examples is wrong, once noise is tolerated. *)
  let session = Duocore.Duoquest.create_session db in
  let tuples =
    [ [ Tsq.Exact (t "Forrest Gump") ]; [ Tsq.Exact (t "Totally Wrong") ] ]
  in
  let tsq =
    Feedback.tolerate_noise
      (Tsq.make ~types:[ Duodb.Datatype.Text ] ~tuples ())
      ~slack:1
  in
  let config =
    { Duocore.Enumerate.default_config with
      Duocore.Enumerate.max_pops = 30_000;
      max_candidates = 30;
      time_budget_s = 15.0 }
  in
  let outcome =
    Duocore.Duoquest.synthesize ~config ~tsq ~literals:[ Value.Int 1995 ] session
      ~nlq:"Find all movies from before 1995" ()
  in
  let gold = parse "SELECT movies.name FROM movies WHERE movies.year < 1995" in
  match Duocore.Duoquest.rank_of outcome ~gold with
  | Some _ -> ()
  | None -> Alcotest.fail "gold not found despite noise tolerance"

let test_rerank () =
  let session = Duocore.Duoquest.create_session db in
  let tsq = Tsq.make ~types:[ Duodb.Datatype.Text ] () in
  let config =
    { Duocore.Enumerate.default_config with
      Duocore.Enumerate.max_pops = 10_000;
      max_candidates = 20 }
  in
  let outcome =
    Duocore.Duoquest.synthesize ~config ~tsq ~literals:[] session
      ~nlq:"names of movies" ()
  in
  let refined = Feedback.reject_row tsq [| t "Gravity" |] in
  let survivors =
    Feedback.rerank db refined outcome.Duocore.Enumerate.out_candidates
  in
  Alcotest.(check bool) "reranking filters" true
    (List.length survivors <= List.length outcome.Duocore.Enumerate.out_candidates);
  List.iter
    (fun c ->
      let res = Duoengine.Executor.run_exn db c.Duocore.Enumerate.cand_query in
      Alcotest.(check bool) "no survivor returns Gravity" true
        (not
           (List.exists
              (fun row -> Array.exists (Value.equal (t "Gravity")) row)
              res.Duoengine.Executor.res_rows)))
    survivors

let suite =
  [
    Alcotest.test_case "negative example" `Quick test_negative_example_rejects;
    Alcotest.test_case "reject_row" `Quick test_reject_row_builder;
    Alcotest.test_case "accept_row" `Quick test_accept_row_builder;
    Alcotest.test_case "noise tolerance" `Quick test_noise_tolerance;
    Alcotest.test_case "required support" `Quick test_required_support;
    Alcotest.test_case "noisy synthesis end-to-end" `Quick test_noisy_synthesis_end_to_end;
    Alcotest.test_case "rerank with feedback" `Quick test_rerank;
  ]
