module Squid = Duopbe.Squid
module Tsq = Duocore.Tsq
module Value = Duodb.Value

let db = Fixtures.movie_db ()
let parse = Fixtures.parse
let t s = Value.Text s

let test_supported_scope () =
  Alcotest.(check bool) "plain text projection" true
    (Squid.supported_query db (parse "SELECT actor.name FROM actor"));
  Alcotest.(check bool) "numeric projection unsupported" false
    (Squid.supported_query db (parse "SELECT movies.year FROM movies"));
  Alcotest.(check bool) "aggregate projection unsupported" false
    (Squid.supported_query db (parse "SELECT COUNT(*) FROM movies"));
  Alcotest.(check bool) "LIKE unsupported" false
    (Squid.supported_query db
       (parse "SELECT movies.name FROM movies WHERE movies.name LIKE 'G%'"));
  Alcotest.(check bool) "negation unsupported" false
    (Squid.supported_query db
       (parse "SELECT movies.name FROM movies WHERE movies.name != 'Seven'"));
  Alcotest.(check bool) "range predicates supported" true
    (Squid.supported_query db
       (parse "SELECT movies.name FROM movies WHERE movies.year > 2000"))

let test_discover_projection () =
  match Squid.discover db [ [ Tsq.Exact (t "Forrest Gump") ] ] with
  | Some r -> (
      match r.Squid.projections with
      | [ c ] ->
          Alcotest.(check string) "movies" "movies" c.Duodb.Schema.col_table;
          Alcotest.(check string) "name" "name" c.Duodb.Schema.col_name
      | _ -> Alcotest.fail "expected one projection")
  | None -> Alcotest.fail "expected discovery"

let test_discover_filters () =
  (* Both examples are male actors: gender = 'male' must be abduced. *)
  match
    Squid.discover db
      [ [ Tsq.Exact (t "Tom Hanks") ]; [ Tsq.Exact (t "Brad Pitt") ] ]
  with
  | Some r ->
      Alcotest.(check bool) "gender filter found" true
        (List.exists
           (fun (c, f) ->
             c.Duodb.Schema.col_name = "gender"
             && match f with Squid.F_eq (Value.Text "male") -> true | _ -> false)
           r.Squid.filters)
  | None -> Alcotest.fail "expected discovery"

let test_discover_join () =
  (* (movie, actor) pairs force the 3-table join. *)
  match
    Squid.discover db
      [ [ Tsq.Exact (t "Gravity"); Tsq.Exact (t "Sandra Bullock") ] ]
  with
  | Some r ->
      Alcotest.(check int) "two projections" 2 (List.length r.Squid.projections);
      Alcotest.(check bool) "witnesses exist" true (r.Squid.witness_count > 0)
  | None -> Alcotest.fail "expected discovery"

let test_discover_unmappable () =
  Alcotest.(check bool) "nonsense value fails" true
    (Option.is_none (Squid.discover db [ [ Tsq.Exact (t "No Such Movie") ] ]))

let test_correct_for () =
  let gold =
    parse
      "SELECT a.name FROM actor a JOIN starring s ON a.aid = s.aid JOIN movies m \
       ON s.mid = m.mid WHERE m.name = 'Gravity'"
  in
  match Squid.discover db [ [ Tsq.Exact (t "Sandra Bullock") ] ] with
  | Some r ->
      (* the witness is the Gravity row, so movies.name = 'Gravity' is an
         abduced filter and the gold predicates are covered *)
      Alcotest.(check bool) "gold covered" true (Squid.correct_for r ~gold)
  | None -> Alcotest.fail "expected discovery"

let test_correct_for_misses_uncovered_predicate () =
  let gold =
    parse "SELECT actor.name FROM actor WHERE actor.debut_yr < 1985"
  in
  (* Examples: one actor with debut < 1985 and one without any shared
     property on debut_yr; the range filter exists but gold projection must
     still match — use an example set whose witnesses do NOT determine the
     filter column at all: empty filter list can't happen for numeric cols
     (range always derivable), so correctness here holds via the range. *)
  match Squid.discover db [ [ Tsq.Exact (t "Tom Hanks") ] ] with
  | Some r ->
      Alcotest.(check bool) "debut filter derivable from witnesses" true
        (Squid.correct_for r ~gold)
  | None -> Alcotest.fail "expected discovery"

let suite =
  [
    Alcotest.test_case "supported scope" `Quick test_supported_scope;
    Alcotest.test_case "projection discovery" `Quick test_discover_projection;
    Alcotest.test_case "filter abduction" `Quick test_discover_filters;
    Alcotest.test_case "join discovery" `Quick test_discover_join;
    Alcotest.test_case "unmappable examples" `Quick test_discover_unmappable;
    Alcotest.test_case "correctness criterion" `Quick test_correct_for;
    Alcotest.test_case "numeric range filters" `Quick test_correct_for_misses_uncovered_predicate;
  ]
