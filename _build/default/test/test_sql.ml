open Duosql
module Value = Duodb.Value

let parse = Fixtures.parse

let roundtrip sql =
  let q = parse sql in
  let printed = Pretty.query q in
  let q' = parse printed in
  Alcotest.(check bool)
    (Printf.sprintf "roundtrip %s" sql)
    true (Equal.queries q q')

let test_lexer_basic () =
  match Lexer.tokenize "SELECT a.b, 'it''s' FROM t WHERE x >= 3.5" with
  | Error e -> Alcotest.fail e
  | Ok toks ->
      Alcotest.(check int) "token count" 12 (List.length toks);
      Alcotest.(check bool) "escaped quote" true
        (List.mem (Lexer.String "it's") toks);
      Alcotest.(check bool) "float" true
        (List.mem (Lexer.Number (Value.Float 3.5)) toks)

let test_lexer_neq_variants () =
  let ops toks = List.filter_map (function Lexer.Op o -> Some o | _ -> None) toks in
  match Lexer.tokenize "a != b c <> d" with
  | Error e -> Alcotest.fail e
  | Ok toks -> Alcotest.(check (list string)) "both neq" [ "!="; "!=" ] (ops toks)

let test_lexer_error () =
  (match Lexer.tokenize "SELECT ;" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected lex error on ;");
  match Lexer.tokenize "SELECT 'oops" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected lex error on unterminated string"

let test_parse_simple () =
  let q = parse "SELECT actor.name FROM actor" in
  Alcotest.(check int) "one projection" 1 (List.length q.Ast.q_select);
  Alcotest.(check (list string)) "one table" [ "actor" ] q.Ast.q_from.Ast.f_tables

let test_parse_aliases () =
  let q =
    parse
      "SELECT t1.name FROM actor AS t1 JOIN starring AS t2 ON t1.aid = t2.aid"
  in
  Alcotest.(check (list string)) "aliases resolved" [ "actor"; "starring" ]
    q.Ast.q_from.Ast.f_tables;
  match q.Ast.q_select with
  | [ { Ast.p_col = Some c; _ } ] -> Alcotest.(check string) "table name" "actor" c.Ast.cr_table
  | _ -> Alcotest.fail "unexpected select shape"

let test_parse_implicit_alias () =
  let q = parse "SELECT a.name FROM actor a JOIN starring s ON a.aid = s.aid" in
  Alcotest.(check (list string)) "implicit aliases" [ "actor"; "starring" ]
    q.Ast.q_from.Ast.f_tables

let test_parse_unqualified () =
  let q = parse "SELECT name FROM movies WHERE year < 1995" in
  (match q.Ast.q_select with
  | [ { Ast.p_col = Some c; _ } ] ->
      Alcotest.(check string) "resolved to movies" "movies" c.Ast.cr_table
  | _ -> Alcotest.fail "unexpected select shape");
  match q.Ast.q_where with
  | Some { Ast.c_preds = [ p ]; _ } -> (
      match p.Ast.pr_rhs with
      | Ast.Cmp (Ast.Lt, Value.Int 1995) -> ()
      | _ -> Alcotest.fail "bad predicate")
  | _ -> Alcotest.fail "missing where"

let test_parse_ambiguous_unqualified () =
  (* `aid` exists in both actor and starring. *)
  match
    Parser.query ~schema:Fixtures.movie_schema
      "SELECT aid FROM actor JOIN starring ON actor.aid = starring.aid"
  with
  | Error e ->
      Alcotest.(check bool) "mentions ambiguity" true
        (Fixtures.contains e "ambiguous")
  | Ok _ -> Alcotest.fail "expected ambiguity error"

let test_parse_aggregates () =
  let q = parse "SELECT COUNT(*), AVG(movies.revenue) FROM movies" in
  match q.Ast.q_select with
  | [ p1; p2 ] ->
      Alcotest.(check bool) "count star" true (p1.Ast.p_agg = Some Ast.Count && p1.Ast.p_col = None);
      Alcotest.(check bool) "avg revenue" true (p2.Ast.p_agg = Some Ast.Avg)
  | _ -> Alcotest.fail "unexpected select shape"

let test_parse_count_distinct () =
  let q = parse "SELECT COUNT(DISTINCT actor.name) FROM actor" in
  match q.Ast.q_select with
  | [ p ] -> Alcotest.(check bool) "distinct" true p.Ast.p_distinct
  | _ -> Alcotest.fail "unexpected select shape"

let test_parse_full_query () =
  let q =
    parse
      "SELECT a.name, COUNT(*) FROM actor a JOIN starring s ON a.aid = s.aid \
       JOIN movies m ON s.mid = m.mid WHERE m.year > 2000 GROUP BY a.name \
       HAVING COUNT(*) >= 1 ORDER BY COUNT(*) DESC LIMIT 3"
  in
  Alcotest.(check int) "three tables" 3 (List.length q.Ast.q_from.Ast.f_tables);
  Alcotest.(check bool) "has where" true (Option.is_some q.Ast.q_where);
  Alcotest.(check int) "group by 1" 1 (List.length q.Ast.q_group_by);
  Alcotest.(check bool) "has having" true (Option.is_some q.Ast.q_having);
  Alcotest.(check int) "order by 1" 1 (List.length q.Ast.q_order_by);
  Alcotest.(check (option int)) "limit" (Some 3) q.Ast.q_limit

let test_parse_between_and_like () =
  let q =
    parse
      "SELECT movies.name FROM movies WHERE movies.year BETWEEN 1990 AND 2000 \
       OR movies.name LIKE '%it%'"
  in
  match q.Ast.q_where with
  | Some { Ast.c_preds = [ p1; p2 ]; c_conn = Ast.Or } ->
      (match p1.Ast.pr_rhs with
      | Ast.Between (Value.Int 1990, Value.Int 2000) -> ()
      | _ -> Alcotest.fail "bad between");
      (match p2.Ast.pr_rhs with
      | Ast.Cmp (Ast.Like, Value.Text "%it%") -> ()
      | _ -> Alcotest.fail "bad like")
  | _ -> Alcotest.fail "bad where"

let test_parse_not_like () =
  let q = parse "SELECT movies.name FROM movies WHERE movies.name NOT LIKE 'G%'" in
  match q.Ast.q_where with
  | Some { Ast.c_preds = [ { Ast.pr_rhs = Ast.Cmp (Ast.Not_like, _); _ } ]; _ } -> ()
  | _ -> Alcotest.fail "bad not like"

let test_rejects_mixed_connectives () =
  match
    Parser.query ~schema:Fixtures.movie_schema
      "SELECT movies.name FROM movies WHERE movies.year > 1 AND movies.year < 5 OR movies.year = 7"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected rejection of mixed AND/OR"

let test_rejects_trailing_garbage () =
  match Parser.query ~schema:Fixtures.movie_schema "SELECT movies.name FROM movies extra stuff" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected trailing input error"

let test_roundtrips () =
  List.iter roundtrip
    [
      "SELECT actor.name FROM actor";
      "SELECT DISTINCT actor.name FROM actor";
      "SELECT movies.name, movies.year FROM movies WHERE movies.year < 1995 ORDER BY movies.year ASC";
      "SELECT a.name, COUNT(*) FROM actor a JOIN starring s ON a.aid = s.aid GROUP BY a.name";
      "SELECT m.name FROM movies m WHERE m.year BETWEEN 1990 AND 2000";
      "SELECT a.name, MAX(m.revenue) FROM actor a JOIN starring s ON a.aid = s.aid \
       JOIN movies m ON s.mid = m.mid GROUP BY a.name HAVING COUNT(*) >= 2 \
       ORDER BY MAX(m.revenue) DESC LIMIT 5";
      "SELECT COUNT(DISTINCT actor.gender) FROM actor";
      "SELECT movies.name FROM movies WHERE movies.name NOT LIKE '%x%' OR movies.year != 2000";
    ]

let test_equal_modulo_join_direction () =
  let q1 = parse "SELECT a.name FROM actor a JOIN starring s ON a.aid = s.aid" in
  let q2 = parse "SELECT a.name FROM actor a JOIN starring s ON s.aid = a.aid" in
  Alcotest.(check bool) "join direction ignored" true (Equal.queries q1 q2)

let test_equal_modulo_pred_order () =
  let q1 = parse "SELECT m.name FROM movies m WHERE m.year > 1 AND m.revenue > 2" in
  let q2 = parse "SELECT m.name FROM movies m WHERE m.revenue > 2 AND m.year > 1" in
  Alcotest.(check bool) "predicate order ignored" true (Equal.queries q1 q2);
  let q3 = parse "SELECT m.name FROM movies m WHERE m.revenue > 2 OR m.year > 1" in
  Alcotest.(check bool) "connective matters" false (Equal.queries q1 q3)

let test_equal_single_pred_connective_vacuous () =
  let q1 = parse "SELECT m.name FROM movies m WHERE m.year > 1" in
  let q2 = { q1 with Ast.q_where = Option.map (fun c -> { c with Ast.c_conn = Ast.Or }) q1.Ast.q_where } in
  Alcotest.(check bool) "single-pred connective vacuous" true (Equal.queries q1 q2)

let test_equal_projection_order_matters () =
  let q1 = parse "SELECT movies.name, movies.year FROM movies" in
  let q2 = parse "SELECT movies.year, movies.name FROM movies" in
  Alcotest.(check bool) "projection order" false (Equal.queries q1 q2)

(* Property: pretty-print then parse is the identity modulo Equal.queries
   on randomly assembled in-scope queries. *)
let random_query_gen =
  let open QCheck.Gen in
  let cols_movies = [ "name"; "year"; "revenue" ] in
  let* ncols = int_range 1 3 in
  let* cols = flatten_l (List.init ncols (fun _ -> oneofl cols_movies)) in
  let* use_where = bool in
  let* year = int_range 1950 2020 in
  let select = List.map (fun c -> Ast.proj_col (Ast.col "movies" c)) cols in
  let q = Ast.simple select (Ast.from_table "movies") in
  let q =
    if use_where then
      { q with
        Ast.q_where =
          Some { Ast.c_preds = [ Ast.pred (Ast.col "movies" "year") Ast.Lt (Value.Int year) ];
                 c_conn = Ast.And } }
    else q
  in
  return q

let prop_roundtrip =
  QCheck.Test.make ~name:"pretty/parse roundtrip" ~count:200
    (QCheck.make ~print:Pretty.query random_query_gen) (fun q ->
      match Parser.query ~schema:Fixtures.movie_schema (Pretty.query q) with
      | Ok q' -> Equal.queries q q'
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basic;
    Alcotest.test_case "lexer neq variants" `Quick test_lexer_neq_variants;
    Alcotest.test_case "lexer errors" `Quick test_lexer_error;
    Alcotest.test_case "parse simple" `Quick test_parse_simple;
    Alcotest.test_case "parse AS aliases" `Quick test_parse_aliases;
    Alcotest.test_case "parse implicit aliases" `Quick test_parse_implicit_alias;
    Alcotest.test_case "parse unqualified columns" `Quick test_parse_unqualified;
    Alcotest.test_case "parse ambiguous unqualified" `Quick test_parse_ambiguous_unqualified;
    Alcotest.test_case "parse aggregates" `Quick test_parse_aggregates;
    Alcotest.test_case "parse count distinct" `Quick test_parse_count_distinct;
    Alcotest.test_case "parse full query" `Quick test_parse_full_query;
    Alcotest.test_case "parse between/like" `Quick test_parse_between_and_like;
    Alcotest.test_case "parse not like" `Quick test_parse_not_like;
    Alcotest.test_case "reject mixed connectives" `Quick test_rejects_mixed_connectives;
    Alcotest.test_case "reject trailing garbage" `Quick test_rejects_trailing_garbage;
    Alcotest.test_case "roundtrips" `Quick test_roundtrips;
    Alcotest.test_case "equal: join direction" `Quick test_equal_modulo_join_direction;
    Alcotest.test_case "equal: predicate order" `Quick test_equal_modulo_pred_order;
    Alcotest.test_case "equal: vacuous connective" `Quick test_equal_single_pred_connective_vacuous;
    Alcotest.test_case "equal: projection order" `Quick test_equal_projection_order_matters;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
