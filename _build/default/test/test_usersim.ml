module User_sim = Duobench.User_sim
module Rng = Duobench.Rng

let profile = { User_sim.sql_reader = true; speed = 1.0 }

let test_participants () =
  let users = User_sim.participants ~seed:1 in
  Alcotest.(check int) "16 participants" 16 (List.length users);
  Alcotest.(check int) "10 SQL readers" 10
    (List.length (List.filter (fun u -> u.User_sim.sql_reader) users));
  List.iter
    (fun u ->
      Alcotest.(check bool) "speed in [0.75, 1.25]" true
        (u.User_sim.speed >= 0.75 && u.User_sim.speed <= 1.25))
    users

let test_typing_time_scales () =
  let rng = Rng.create 2 in
  let short = User_sim.typing_time rng profile "two words" in
  let rng = Rng.create 2 in
  let long =
    User_sim.typing_time rng profile
      "this natural language query has quite a few more words than the other"
  in
  Alcotest.(check bool) "longer NLQ types slower" true (long > short)

let test_found_at_rank_one () =
  let rng = Rng.create 3 in
  let trial =
    User_sim.inspect_candidates rng profile ~elapsed:10.0 ~rank:(Some 1) ~available:10
  in
  Alcotest.(check bool) "succeeds" true trial.User_sim.success;
  Alcotest.(check bool) "fast" true (trial.User_sim.time_s < 30.0)

let test_not_in_list () =
  let rng = Rng.create 4 in
  let trial =
    User_sim.inspect_candidates rng profile ~elapsed:10.0 ~rank:None ~available:10
  in
  Alcotest.(check bool) "fails" false trial.User_sim.success

let test_deep_rank_times_out () =
  let rng = Rng.create 5 in
  let trial =
    User_sim.inspect_candidates rng profile ~elapsed:0.0 ~rank:(Some 100)
      ~available:100
  in
  (* 100 candidates at >=4 s each cannot fit in the 300 s budget *)
  Alcotest.(check bool) "deep rank fails" false trial.User_sim.success;
  Alcotest.(check (float 0.001)) "time capped at budget" User_sim.budget_s
    trial.User_sim.time_s

let test_preview_users_slower () =
  let novice = { User_sim.sql_reader = false; speed = 1.0 } in
  let trials profile =
    List.init 30 (fun i ->
        let rng = Rng.create (100 + i) in
        (User_sim.inspect_candidates rng profile ~elapsed:0.0 ~rank:(Some 5)
           ~available:10)
          .User_sim.time_s)
  in
  let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  Alcotest.(check bool) "preview users slower on average" true
    (mean (trials novice) > mean (trials profile))

let test_budget_never_exceeded () =
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let trial =
        User_sim.inspect_candidates rng profile
          ~elapsed:(Rng.float rng *. 400.0)
          ~rank:(Some (1 + Rng.int rng 50))
          ~available:60
      in
      Alcotest.(check bool) "time <= budget" true
        (trial.User_sim.time_s <= User_sim.budget_s +. 1e-9))
    (List.init 50 (fun i -> i))

let suite =
  [
    Alcotest.test_case "participants" `Quick test_participants;
    Alcotest.test_case "typing time scales" `Quick test_typing_time_scales;
    Alcotest.test_case "rank 1 succeeds" `Quick test_found_at_rank_one;
    Alcotest.test_case "absent rank fails" `Quick test_not_in_list;
    Alcotest.test_case "deep rank times out" `Quick test_deep_rank_times_out;
    Alcotest.test_case "preview users slower" `Quick test_preview_users_slower;
    Alcotest.test_case "budget respected" `Quick test_budget_never_exceeded;
  ]
