(* Differential testing: the executor against a naive reference
   implementation on single-table queries with random predicates. *)

module Value = Duodb.Value
open Duosql.Ast

let db = Fixtures.movie_db ()
let movies = Duodb.Database.table_exn db "movies"

let year_idx = Duodb.Table.column_index movies "year"
let revenue_idx = Duodb.Table.column_index movies "revenue"
let name_idx = Duodb.Table.column_index movies "name"

(* Reference evaluation of a single predicate on a raw row. *)
let ref_pred_eval op threshold row =
  match row.(year_idx) with
  | Value.Int y -> (
      match op with
      | Lt -> y < threshold
      | Le -> y <= threshold
      | Gt -> y > threshold
      | Ge -> y >= threshold
      | Eq -> y = threshold
      | Neq -> y <> threshold
      | Like | Not_like -> false)
  | _ -> false

let op_gen = QCheck.Gen.oneofl [ Lt; Le; Gt; Ge; Eq; Neq ]

let prop_where_matches_reference =
  QCheck.Test.make ~name:"WHERE agrees with reference" ~count:300
    (QCheck.make QCheck.Gen.(pair op_gen (int_range 1980 2030)))
    (fun (op, threshold) ->
      let q =
        { (simple [ proj_col (col "movies" "name") ] (from_table "movies")) with
          q_where =
            Some
              { c_preds = [ pred (col "movies" "year") op (Value.Int threshold) ];
                c_conn = And } }
      in
      let got =
        (Duoengine.Executor.run_exn db q).Duoengine.Executor.res_rows
        |> List.map (fun row -> row.(0))
      in
      let expected =
        Duodb.Table.fold
          (fun acc row ->
            if ref_pred_eval op threshold row then row.(name_idx) :: acc else acc)
          [] movies
        |> List.rev
      in
      List.length got = List.length expected
      && List.for_all2 Value.equal got expected)

let prop_or_is_union =
  QCheck.Test.make ~name:"OR = union of single-predicate results" ~count:200
    (QCheck.make QCheck.Gen.(pair (int_range 1980 2030) (int_range 0 2500)))
    (fun (year, rev) ->
      let base = simple [ proj_col (col "movies" "name") ] (from_table "movies") in
      let q1 =
        { base with
          q_where =
            Some { c_preds = [ pred (col "movies" "year") Lt (Value.Int year) ]; c_conn = And } }
      in
      let q2 =
        { base with
          q_where =
            Some { c_preds = [ pred (col "movies" "revenue") Gt (Value.Int rev) ]; c_conn = And } }
      in
      let q_or =
        { base with
          q_where =
            Some
              { c_preds =
                  [ pred (col "movies" "year") Lt (Value.Int year);
                    pred (col "movies" "revenue") Gt (Value.Int rev) ];
                c_conn = Or } }
      in
      let names q =
        (Duoengine.Executor.run_exn db q).Duoengine.Executor.res_rows
        |> List.map (fun r -> Value.to_display r.(0))
        |> List.sort_uniq compare
      in
      names q_or = List.sort_uniq compare (names q1 @ names q2))

let prop_and_is_intersection =
  QCheck.Test.make ~name:"AND = intersection" ~count:200
    (QCheck.make QCheck.Gen.(pair (int_range 1980 2030) (int_range 0 2500)))
    (fun (year, rev) ->
      let base = simple [ proj_col (col "movies" "name") ] (from_table "movies") in
      let q_and =
        { base with
          q_where =
            Some
              { c_preds =
                  [ pred (col "movies" "year") Lt (Value.Int year);
                    pred (col "movies" "revenue") Gt (Value.Int rev) ];
                c_conn = And } }
      in
      (Duoengine.Executor.run_exn db q_and).Duoengine.Executor.res_rows
      |> List.for_all (fun _ -> true)
      &&
      let names q =
        (Duoengine.Executor.run_exn db q).Duoengine.Executor.res_rows
        |> List.map (fun r -> Value.to_display r.(0))
      in
      let inter =
        List.filter
          (fun n ->
            List.mem n
              (names
                 { base with
                   q_where =
                     Some
                       { c_preds = [ pred (col "movies" "revenue") Gt (Value.Int rev) ];
                         c_conn = And } }))
          (names
             { base with
               q_where =
                 Some
                   { c_preds = [ pred (col "movies" "year") Lt (Value.Int year) ];
                     c_conn = And } })
      in
      names q_and = inter)

let prop_sum_avg_consistent =
  QCheck.Test.make ~name:"SUM / COUNT = AVG" ~count:100
    (QCheck.make QCheck.Gen.(int_range 1980 2030))
    (fun year ->
      let base sel =
        { (simple sel (from_table "movies")) with
          q_where =
            Some
              { c_preds = [ pred (col "movies" "year") Ge (Value.Int year) ];
                c_conn = And } }
      in
      let run sel = (Duoengine.Executor.run_exn db (base sel)).Duoengine.Executor.res_rows in
      match
        ( run [ proj_agg Sum (col "movies" "revenue") ],
          run [ count_star ],
          run [ proj_agg Avg (col "movies" "revenue") ] )
      with
      | [ [| sum |] ], [ [| Value.Int n |] ], [ [| avg |] ] ->
          if n = 0 then Value.is_null sum && Value.is_null avg
          else
            Float.abs ((Value.to_float sum /. float_of_int n) -. Value.to_float avg)
            < 1e-6
      | _ -> false)

let prop_min_le_max =
  QCheck.Test.make ~name:"MIN <= MAX when non-null" ~count:100
    (QCheck.make QCheck.Gen.(int_range 1980 2030))
    (fun year ->
      let base sel =
        { (simple sel (from_table "movies")) with
          q_where =
            Some
              { c_preds = [ pred (col "movies" "year") Ge (Value.Int year) ];
                c_conn = And } }
      in
      let run sel = (Duoengine.Executor.run_exn db (base sel)).Duoengine.Executor.res_rows in
      match
        (run [ proj_agg Min (col "movies" "year") ], run [ proj_agg Max (col "movies" "year") ])
      with
      | [ [| mn |] ], [ [| mx |] ] ->
          (Value.is_null mn && Value.is_null mx)
          || Value.compare mn mx <= 0
      | _ -> false)

let prop_order_by_sorted =
  QCheck.Test.make ~name:"ORDER BY output is sorted" ~count:100
    (QCheck.make QCheck.Gen.(pair bool (int_range 1980 2030)))
    (fun (asc, year) ->
      let q =
        { (simple [ proj_col (col "movies" "year") ] (from_table "movies")) with
          q_where =
            Some
              { c_preds = [ pred (col "movies" "year") Le (Value.Int year) ];
                c_conn = And };
          q_order_by =
            [ { o_agg = None; o_col = Some (col "movies" "year");
                o_dir = (if asc then Asc else Desc) } ] }
      in
      let ys =
        (Duoengine.Executor.run_exn db q).Duoengine.Executor.res_rows
        |> List.map (fun r -> r.(0))
      in
      let rec sorted = function
        | a :: (b :: _ as rest) ->
            (if asc then Value.compare a b <= 0 else Value.compare a b >= 0)
            && sorted rest
        | _ -> true
      in
      sorted ys)

let prop_revenue_idx_unused = revenue_idx >= 0

let suite =
  [
    QCheck_alcotest.to_alcotest prop_where_matches_reference;
    QCheck_alcotest.to_alcotest prop_or_is_union;
    QCheck_alcotest.to_alcotest prop_and_is_intersection;
    QCheck_alcotest.to_alcotest prop_sum_avg_consistent;
    QCheck_alcotest.to_alcotest prop_min_le_max;
    QCheck_alcotest.to_alcotest prop_order_by_sorted;
    Alcotest.test_case "fixture indices" `Quick (fun () ->
        Alcotest.(check bool) "revenue column present" true prop_revenue_idx_unused);
  ]
