module Model = Duoguide.Model
module Score = Duoguide.Score
module Hints = Duoguide.Hints

let schema = Fixtures.movie_schema

let ctx nlq_text =
  Model.make schema (Duonl.Nlq.analyze nlq_text)

let sums_to_one name cands =
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 cands in
  Alcotest.(check (float 1e-6)) name 1.0 total

let all_positive cands = List.for_all (fun (_, p) -> p > 0.0) cands

let test_softmax_normalizes () =
  let p = Score.softmax [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 p);
  Alcotest.(check bool) "monotone" true (p.(0) < p.(1) && p.(1) < p.(2))

let test_softmax_empty () =
  Alcotest.(check int) "empty ok" 0 (Array.length (Score.softmax [||]))

let test_softmax_temperature () =
  let sharp = Score.softmax ~temperature:0.5 [| 0.0; 1.0 |] in
  let flat = Score.softmax ~temperature:2.0 [| 0.0; 1.0 |] in
  Alcotest.(check bool) "low temperature sharpens" true (sharp.(1) > flat.(1))

let test_name_similarity () =
  Alcotest.(check bool) "exact token" true
    (Score.name_similarity ~nlq_words:[ "birth"; "year" ] "birth_yr" > 0.4);
  Alcotest.(check bool) "unrelated" true
    (Score.name_similarity ~nlq_words:[ "movy" ] "gender" = 0.0)

(* Property 1 of the paper: each decision's candidate masses sum to 1, so
   children partition their parent's confidence. *)
let test_property1_keywords () =
  sums_to_one "keywords" (Model.keywords (ctx "movies before 1995 sorted by year"))

let test_property1_other_modules () =
  let c = ctx "number of movies per actor name ordered from most to least" in
  sums_to_one "num_projections" (Model.num_projections c ~hint:None);
  sums_to_one "projection_targets" (Model.projection_targets c ~used:[]);
  sums_to_one "where_columns" (Model.where_columns c ~used:[]);
  sums_to_one "group_columns" (Model.group_columns c ~projected:[]);
  sums_to_one "aggregates text" (Model.aggregates c Duodb.Datatype.Text);
  sums_to_one "aggregates number" (Model.aggregates c Duodb.Datatype.Number);
  sums_to_one "operators" (Model.operators c Duodb.Datatype.Number);
  sums_to_one "connective" (Model.connective c);
  sums_to_one "having" (Model.having_presence c);
  sums_to_one "direction" (Model.direction c);
  sums_to_one "limit" (Model.limit c ~hint:None)

let test_keyword_evidence () =
  let p_of ctx pred =
    List.fold_left
      (fun acc (kw, p) -> if pred kw then acc +. p else acc)
      0.0 (Model.keywords ctx)
  in
  let order_ctx = ctx "movies sorted by year" in
  let plain_ctx = ctx "movie names" in
  Alcotest.(check bool) "sorting words raise P(order)" true
    (p_of order_ctx (fun kw -> kw.Model.kw_order)
    > p_of plain_ctx (fun kw -> kw.Model.kw_order))

let test_column_evidence () =
  let c = ctx "show the revenue of movies" in
  let targets = Model.projection_targets c ~used:[] in
  let p_of name =
    List.fold_left
      (fun acc (t, p) ->
        match t with
        | Model.Target_column col when col.Duodb.Schema.col_name = name -> acc +. p
        | _ -> acc)
      0.0 targets
  in
  Alcotest.(check bool) "revenue outranks gender" true (p_of "revenue" > p_of "gender")

let test_grounded_literal_guides_where () =
  let db = Fixtures.movie_db () in
  let index = Duodb.Index.build db in
  let nlq = Duonl.Nlq.analyze ~index "movies starring \"Tom Hanks\"" in
  let c = Model.make ~index schema nlq in
  let cands = Model.where_columns c ~used:[] in
  let p_of table name =
    List.fold_left
      (fun acc (col, p) ->
        if col.Duodb.Schema.col_table = table && col.Duodb.Schema.col_name = name
        then acc +. p
        else acc)
      0.0 cands
  in
  Alcotest.(check bool) "actor.name leads after grounding" true
    (p_of "actor" "name" > p_of "movies" "revenue")

let test_values_respect_types () =
  let db = Fixtures.movie_db () in
  let index = Duodb.Index.build db in
  let nlq =
    Duonl.Nlq.with_literals ~index "movies named \"Gravity\" after 2000"
      [ Duodb.Value.Text "Gravity"; Duodb.Value.Int 2000 ]
  in
  let c = Model.make ~index schema nlq in
  let year_col = Duodb.Schema.find_column_exn schema ~table:"movies" "year" in
  let name_col = Duodb.Schema.find_column_exn schema ~table:"movies" "name" in
  Alcotest.(check bool) "numeric col gets numeric values" true
    (List.for_all (fun (v, _) -> Duodb.Value.is_numeric v) (Model.values c year_col));
  Alcotest.(check bool) "text col gets text values" true
    (List.for_all
       (fun (v, _) -> match v with Duodb.Value.Text _ -> true | _ -> false)
       (Model.values c name_col))

let test_used_columns_excluded () =
  let c = ctx "movie names and years" in
  let all = Model.projection_targets c ~used:[] in
  match all with
  | (first, _) :: _ ->
      let rest = Model.projection_targets c ~used:[ first ] in
      Alcotest.(check int) "one fewer candidate" (List.length all - 1) (List.length rest);
      Alcotest.(check bool) "still a distribution" true (all_positive rest);
      sums_to_one "renormalized" rest
  | [] -> Alcotest.fail "expected candidates"

let test_limit_hint () =
  let c = ctx "top movies" in
  let with_hint = Model.limit c ~hint:(Some 7) in
  Alcotest.(check bool) "hinted limit offered" true
    (List.exists (fun (l, _) -> l = Some 7) with_hint)

let test_hint_lexicon () =
  let w = [ "average"; "revenue" ] in
  let _, _, _, avg, _, _ = Hints.agg_signals w in
  Alcotest.(check bool) "average detected" true (avg > 0.0);
  Alcotest.(check bool) "descending from most" true
    (Hints.descending_signal [ "most"; "recent" ] > 0.0);
  let ops = Hints.op_signals [ "more"; "than" ] in
  Alcotest.(check bool) "more-than favors Gt" true (ops.(4) > ops.(2))

let prop_distributions_sum_to_one =
  QCheck.Test.make ~name:"module outputs are distributions" ~count:50
    QCheck.(oneofl
      [ "movies before 1995"; "actor names and movie count";
        "total revenue per actor ordered from most to least";
        "names of actors from \"Concord\""; "how many movies are there" ])
    (fun text ->
      let c = ctx text in
      let close l =
        abs_float (List.fold_left (fun acc (_, p) -> acc +. p) 0.0 l -. 1.0) < 1e-6
      in
      close (Model.keywords c)
      && close (Model.projection_targets c ~used:[])
      && close (Model.where_columns c ~used:[])
      && close (Model.num_projections c ~hint:None))

let suite =
  [
    Alcotest.test_case "softmax normalizes" `Quick test_softmax_normalizes;
    Alcotest.test_case "softmax empty" `Quick test_softmax_empty;
    Alcotest.test_case "softmax temperature" `Quick test_softmax_temperature;
    Alcotest.test_case "name similarity" `Quick test_name_similarity;
    Alcotest.test_case "Property 1: keywords" `Quick test_property1_keywords;
    Alcotest.test_case "Property 1: all modules" `Quick test_property1_other_modules;
    Alcotest.test_case "keyword evidence" `Quick test_keyword_evidence;
    Alcotest.test_case "column evidence" `Quick test_column_evidence;
    Alcotest.test_case "grounding guides WHERE" `Quick test_grounded_literal_guides_where;
    Alcotest.test_case "values respect types" `Quick test_values_respect_types;
    Alcotest.test_case "used columns excluded" `Quick test_used_columns_excluded;
    Alcotest.test_case "limit hint" `Quick test_limit_hint;
    Alcotest.test_case "hint lexicon" `Quick test_hint_lexicon;
    QCheck_alcotest.to_alcotest prop_distributions_sum_to_one;
  ]
