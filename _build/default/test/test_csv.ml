module Csv = Duodb.Csv
module Table = Duodb.Table
module Value = Duodb.Value

let actor_schema = Duodb.Schema.find_table_exn Fixtures.movie_schema "actor"

let test_roundtrip_table () =
  let db = Fixtures.movie_db () in
  let tbl = Duodb.Database.table_exn db "actor" in
  let csv = Csv.table_to_string tbl in
  match Csv.table_of_string actor_schema csv with
  | Ok tbl' ->
      Alcotest.(check int) "row count" (Table.row_count tbl) (Table.row_count tbl');
      Alcotest.check Fixtures.rows_testable "rows preserved"
        (Array.to_list (Table.rows tbl))
        (Array.to_list (Table.rows tbl'))
  | Error e -> Alcotest.fail e

let test_quoting () =
  let schema_t =
    Duodb.Schema.table "t" [ ("s", Duodb.Datatype.Text); ("n", Duodb.Datatype.Number) ]
      ~pk:[]
  in
  let tbl = Table.create schema_t in
  Table.insert tbl [| Value.Text "has,comma"; Value.Int 1 |];
  Table.insert tbl [| Value.Text "has\"quote"; Value.Int 2 |];
  Table.insert tbl [| Value.Text "has\nnewline"; Value.Null |];
  let csv = Csv.table_to_string tbl in
  match Csv.table_of_string schema_t csv with
  | Ok tbl' ->
      Alcotest.check Fixtures.rows_testable "tricky values survive"
        (Array.to_list (Table.rows tbl))
        (Array.to_list (Table.rows tbl'))
  | Error e -> Alcotest.fail e

let test_header_mismatch () =
  match Csv.table_of_string actor_schema "wrong,header\n1,2\n" with
  | Error e -> Alcotest.(check bool) "mentions header" true (Fixtures.contains e "header")
  | Ok _ -> Alcotest.fail "expected header error"

let test_bad_number () =
  let schema_t = Duodb.Schema.table "t" [ ("n", Duodb.Datatype.Number) ] ~pk:[] in
  match Csv.table_of_string schema_t "n\nnot_a_number\n" with
  | Error e -> Alcotest.(check bool) "mentions number" true (Fixtures.contains e "number")
  | Ok _ -> Alcotest.fail "expected parse error"

let test_null_roundtrip () =
  let schema_t = Duodb.Schema.table "t" [ ("n", Duodb.Datatype.Number) ] ~pk:[] in
  match Csv.table_of_string schema_t "n\n\n7\n" with
  | Ok tbl ->
      Alcotest.check Fixtures.rows_testable "null then 7"
        [ [| Value.Null |]; [| Value.Int 7 |] ]
        (Array.to_list (Table.rows tbl))
  | Error e -> Alcotest.fail e

let test_database_roundtrip () =
  let db = Fixtures.movie_db () in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "duoquest_csv_test" in
  (match Csv.export_database db ~dir with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Csv.import_database Fixtures.movie_schema ~dir with
  | Ok db' ->
      Alcotest.(check int) "same total rows" (Duodb.Database.total_rows db)
        (Duodb.Database.total_rows db');
      Alcotest.(check (list string)) "still consistent" []
        (Duodb.Database.check_integrity db')
  | Error e -> Alcotest.fail e

let suite =
  [
    Alcotest.test_case "table roundtrip" `Quick test_roundtrip_table;
    Alcotest.test_case "quoting" `Quick test_quoting;
    Alcotest.test_case "header mismatch" `Quick test_header_mismatch;
    Alcotest.test_case "bad number" `Quick test_bad_number;
    Alcotest.test_case "null roundtrip" `Quick test_null_roundtrip;
    Alcotest.test_case "database roundtrip" `Quick test_database_roundtrip;
  ]
