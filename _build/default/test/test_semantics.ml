module Semantics = Duocore.Semantics

let schema = Fixtures.movie_schema
let parse = Fixtures.parse

let check_rejects name sql expected =
  Alcotest.test_case name `Quick (fun () ->
      match Semantics.check_query schema (parse sql) with
      | Error v ->
          Alcotest.(check string) name expected (Semantics.violation_to_string v)
      | Ok () -> Alcotest.fail (Printf.sprintf "%s: expected rejection" sql))

let check_accepts name sql =
  Alcotest.test_case name `Quick (fun () ->
      match Semantics.check_query schema (parse sql) with
      | Ok () -> ()
      | Error v ->
          Alcotest.fail
            (Printf.sprintf "%s: unexpectedly rejected (%s)" sql
               (Semantics.violation_to_string v)))

let test_condition_consistency () =
  let mk sql =
    match (parse sql).Duosql.Ast.q_where with
    | Some c -> c
    | None -> Alcotest.fail "expected where"
  in
  Alcotest.(check bool) "contradicting equalities" false
    (Semantics.condition_consistent
       (mk "SELECT movies.year FROM movies WHERE movies.name = 'A' AND movies.name = 'B'"));
  Alcotest.(check bool) "same under OR is fine" true
    (Semantics.condition_consistent
       (mk "SELECT movies.year FROM movies WHERE movies.name = 'A' OR movies.name = 'B'"));
  Alcotest.(check bool) "empty numeric interval" false
    (Semantics.condition_consistent
       (mk "SELECT movies.name FROM movies WHERE movies.year > 2000 AND movies.year < 1999"));
  Alcotest.(check bool) "touching interval ok" true
    (Semantics.condition_consistent
       (mk "SELECT movies.name FROM movies WHERE movies.year >= 2000 AND movies.year <= 2000"));
  Alcotest.(check bool) "strict touching empty" false
    (Semantics.condition_consistent
       (mk "SELECT movies.name FROM movies WHERE movies.year > 2000 AND movies.year <= 2000"));
  Alcotest.(check bool) "duplicate predicate redundant" false
    (Semantics.condition_consistent
       (mk "SELECT movies.name FROM movies WHERE movies.year > 2000 AND movies.year > 2000"));
  Alcotest.(check bool) "different columns independent" true
    (Semantics.condition_consistent
       (mk "SELECT movies.name FROM movies WHERE movies.year > 2000 AND movies.revenue < 10"))

let test_catalogue_completeness () =
  Alcotest.(check int) "eight catalogued rules" 8 (List.length Semantics.catalogue)

let suite =
  [
    check_rejects "inconsistent predicates"
      "SELECT actor.name FROM actor WHERE actor.name = 'Tom Hanks' AND actor.name = 'Brad Pitt'"
      "inconsistent predicates";
    check_accepts "or alternative"
      "SELECT actor.name FROM actor WHERE actor.name = 'Tom Hanks' OR actor.name = 'Brad Pitt'";
    check_rejects "constant output column"
      "SELECT actor.name, actor.birth_yr FROM actor WHERE actor.birth_yr = 1956"
      "constant output column";
    check_accepts "constant output fixed"
      "SELECT actor.name FROM actor WHERE actor.birth_yr = 1956";
    check_rejects "ungrouped aggregation"
      "SELECT actor.birth_yr, COUNT(*) FROM actor" "ungrouped aggregation";
    check_accepts "grouped aggregation"
      "SELECT actor.birth_yr, COUNT(*) FROM actor GROUP BY actor.birth_yr";
    check_rejects "singleton groups"
      "SELECT actor.aid, MAX(actor.birth_yr) FROM actor GROUP BY actor.aid"
      "GROUP BY with singleton groups";
    check_rejects "unnecessary group by"
      "SELECT actor.name FROM actor GROUP BY actor.name" "unnecessary GROUP BY";
    check_accepts "group by justified by having"
      "SELECT a.name FROM actor a JOIN starring s ON a.aid = s.aid GROUP BY a.name \
       HAVING COUNT(*) >= 2";
    check_rejects "aggregate type usage" "SELECT AVG(actor.name) FROM actor"
      "aggregate type usage";
    check_rejects "faulty comparison on text"
      "SELECT actor.name FROM actor WHERE actor.name >= 'Tom Hanks'"
      "faulty type comparison";
    check_rejects "LIKE on numeric"
      "SELECT actor.birth_yr FROM actor WHERE actor.birth_yr LIKE '%1956%'"
      "faulty type comparison";
    check_rejects "projection not in group by"
      "SELECT actor.name, actor.gender, COUNT(*) FROM actor GROUP BY actor.gender"
      "ungrouped aggregation";
    check_accepts "order by aggregate justifies group"
      "SELECT a.gender FROM actor a GROUP BY a.gender ORDER BY COUNT(*) DESC";
    Alcotest.test_case "condition consistency" `Quick test_condition_consistency;
    Alcotest.test_case "catalogue" `Quick test_catalogue_completeness;
  ]
