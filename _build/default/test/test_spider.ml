(* Generator invariants for the Spider-like benchmark: counts, scope,
   non-emptiness, semantic validity, reachability prerequisites. *)

module Spider = Duobench.Spider_gen
module Semantics = Duocore.Semantics

let mini = Spider.mini ~seed:3 ~n_dbs:4 ~per_db:9 ()

let db_of task = List.assoc task.Spider.sp_db mini.Spider.databases

let test_counts () =
  Alcotest.(check int) "databases" 4 (List.length mini.Spider.databases);
  Alcotest.(check int) "tasks" 36 (List.length mini.Spider.tasks)

let test_difficulty_definition () =
  List.iter
    (fun task ->
      let q = task.Spider.sp_gold in
      match task.Spider.sp_difficulty with
      | `Easy ->
          Alcotest.(check bool) "easy: no where/group" true
            (q.Duosql.Ast.q_where = None && q.Duosql.Ast.q_group_by = [])
      | `Medium ->
          Alcotest.(check bool) "medium: where, no group" true
            (Option.is_some q.Duosql.Ast.q_where && q.Duosql.Ast.q_group_by = [])
      | `Hard ->
          Alcotest.(check bool) "hard: grouped" true (q.Duosql.Ast.q_group_by <> []))
    mini.Spider.tasks

let test_non_empty_results () =
  List.iter
    (fun task ->
      let res = Duoengine.Executor.run_exn (db_of task) task.Spider.sp_gold in
      Alcotest.(check bool)
        (Duosql.Pretty.query task.Spider.sp_gold ^ " non-empty")
        true
        (res.Duoengine.Executor.res_rows <> []))
    mini.Spider.tasks

let test_semantically_valid () =
  List.iter
    (fun task ->
      let schema = Duodb.Database.schema (db_of task) in
      match Semantics.check_query schema task.Spider.sp_gold with
      | Ok () -> ()
      | Error v ->
          Alcotest.fail
            (Printf.sprintf "%s violates %s"
               (Duosql.Pretty.query task.Spider.sp_gold)
               (Semantics.violation_to_string v)))
    mini.Spider.tasks

let test_literals_cover_gold () =
  (* Every literal of the gold query must be in the task's tagged set;
     otherwise the synthesizer could never verify literal usage. *)
  List.iter
    (fun task ->
      let gold_lits = Duosql.Ast.literals task.Spider.sp_gold in
      List.iter
        (fun v ->
          Alcotest.(check bool)
            (Printf.sprintf "%s tagged in %s" (Duodb.Value.to_sql v)
               (Duosql.Pretty.query task.Spider.sp_gold))
            true
            (List.exists (Duodb.Value.equal v) task.Spider.sp_literals
            || Duodb.Value.equal v (Duodb.Value.Int 1) (* bare LIMIT 1 *)))
        gold_lits)
    mini.Spider.tasks

let test_nlq_nonempty () =
  List.iter
    (fun task ->
      Alcotest.(check bool) "NLQ has words" true
        (String.length task.Spider.sp_nlq > 10))
    mini.Spider.tasks

let test_deterministic () =
  let again = Spider.mini ~seed:3 ~n_dbs:4 ~per_db:9 () in
  List.iter2
    (fun a b ->
      Alcotest.(check string) "same gold"
        (Duosql.Pretty.query a.Spider.sp_gold)
        (Duosql.Pretty.query b.Spider.sp_gold))
    mini.Spider.tasks again.Spider.tasks

let test_integrity_of_generated_dbs () =
  List.iter
    (fun (name, db) ->
      Alcotest.(check (list string)) (name ^ " consistent") []
        (Duodb.Database.check_integrity db))
    mini.Spider.databases

let test_tsq_synthesis_on_tasks () =
  let rng = Duobench.Rng.create 5 in
  List.iter
    (fun task ->
      let db = db_of task in
      match Duobench.Tsq_synth.synthesize rng db task.Spider.sp_gold ~detail:Duobench.Tsq_synth.Full with
      | Some tsq ->
          Alcotest.(check bool) "gold satisfies its own TSQ" true
            (Duocore.Tsq.satisfies tsq db task.Spider.sp_gold)
      | None -> Alcotest.fail "TSQ synthesis failed on non-empty task")
    mini.Spider.tasks

let test_detail_levels () =
  let rng = Duobench.Rng.create 6 in
  let task = List.hd mini.Spider.tasks in
  let db = db_of task in
  let syn d = Duobench.Tsq_synth.synthesize rng db task.Spider.sp_gold ~detail:d in
  (match syn Duobench.Tsq_synth.Minimal with
  | Some tsq -> Alcotest.(check int) "minimal has no tuples" 0 (Duocore.Tsq.num_tuples tsq)
  | None -> Alcotest.fail "minimal failed");
  match syn Duobench.Tsq_synth.Full with
  | Some tsq ->
      Alcotest.(check bool) "full has tuples" true (Duocore.Tsq.num_tuples tsq >= 1)
  | None -> Alcotest.fail "full failed"

let suite =
  [
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "difficulty definitions" `Quick test_difficulty_definition;
    Alcotest.test_case "non-empty results" `Quick test_non_empty_results;
    Alcotest.test_case "semantic validity" `Quick test_semantically_valid;
    Alcotest.test_case "literal coverage" `Quick test_literals_cover_gold;
    Alcotest.test_case "NLQs non-empty" `Quick test_nlq_nonempty;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "generated db integrity" `Quick test_integrity_of_generated_dbs;
    Alcotest.test_case "TSQ synthesis" `Quick test_tsq_synthesis_on_tasks;
    Alcotest.test_case "TSQ detail levels" `Quick test_detail_levels;
  ]
