module Schema = Duodb.Schema
module Datatype = Duodb.Datatype

let sch = Fixtures.movie_schema

let test_lookup () =
  Alcotest.(check bool) "finds actor" true (Option.is_some (Schema.find_table sch "actor"));
  Alcotest.(check bool) "no ghosts" true (Option.is_none (Schema.find_table sch "ghost"));
  let c = Schema.find_column_exn sch ~table:"movies" "year" in
  Alcotest.(check string) "column type" "number" (Datatype.to_string c.Schema.col_type)

let test_counts () =
  Alcotest.(check int) "tables" 3 (Schema.num_tables sch);
  Alcotest.(check int) "columns" 13 (Schema.num_columns sch);
  Alcotest.(check int) "fks" 2 (Schema.num_foreign_keys sch)

let test_pk () =
  Alcotest.(check bool) "aid is pk" true (Schema.is_pk_column sch ~table:"actor" "aid");
  Alcotest.(check bool) "name not pk" false (Schema.is_pk_column sch ~table:"actor" "name")

let test_join_graph () =
  Alcotest.(check int) "starring has 2 edges" 2
    (List.length (Schema.join_edges sch ~table:"starring"));
  Alcotest.(check int) "actor-starring joinable" 1
    (List.length (Schema.joinable sch "actor" "starring"));
  Alcotest.(check int) "actor-movies not directly joinable" 0
    (List.length (Schema.joinable sch "actor" "movies"))

let test_validation_rejects_bad_fk () =
  let bad () =
    ignore
      (Schema.make ~name:"bad"
         [ Schema.table "a" [ ("x", Datatype.Number) ] ~pk:[ "x" ] ]
         [ Schema.fk ("a", "x") ("b", "y") ])
  in
  Alcotest.check_raises "missing fk target"
    (Invalid_argument "Schema.make: foreign key references missing column b.y") bad

let test_validation_rejects_dup_table () =
  let bad () =
    ignore
      (Schema.make ~name:"bad"
         [ Schema.table "a" [ ("x", Datatype.Number) ] ~pk:[];
           Schema.table "a" [ ("y", Datatype.Number) ] ~pk:[] ]
         [])
  in
  Alcotest.check_raises "dup table" (Invalid_argument "Schema.make: duplicate table \"a\"") bad

let test_validation_rejects_bad_pk () =
  let bad () =
    ignore
      (Schema.make ~name:"bad"
         [ Schema.table "a" [ ("x", Datatype.Number) ] ~pk:[ "nope" ] ]
         [])
  in
  Alcotest.check_raises "bad pk"
    (Invalid_argument "Schema.make: primary key column a.nope does not exist") bad

let suite =
  [
    Alcotest.test_case "lookup" `Quick test_lookup;
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "primary keys" `Quick test_pk;
    Alcotest.test_case "join graph" `Quick test_join_graph;
    Alcotest.test_case "validation: bad fk" `Quick test_validation_rejects_bad_fk;
    Alcotest.test_case "validation: duplicate table" `Quick test_validation_rejects_dup_table;
    Alcotest.test_case "validation: bad pk" `Quick test_validation_rejects_bad_pk;
  ]
