module Describe = Duosql.Describe

let parse = Fixtures.parse

let check name sql expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check string) name expected (Describe.query (parse sql)))

let suite =
  [
    check "plain projection" "SELECT movies.name FROM movies"
      "show the name of movies from the movies table";
    check "two projections + where"
      "SELECT movies.name, movies.year FROM movies WHERE movies.year < 1995"
      "show the name of movies, and the year of movies from the movies table; \
       keep rows where the year of movies is below 1995";
    check "join + text predicate"
      "SELECT a.name FROM actor a JOIN starring s ON a.aid = s.aid WHERE \
       a.gender = 'male'"
      "show the name of actor by combining actor, starring; keep rows where \
       the gender of actor is \"male\"";
    check "grouped count with having"
      "SELECT a.name, COUNT(*) FROM actor a JOIN starring s ON a.aid = s.aid \
       GROUP BY a.name HAVING COUNT(*) > 1"
      "show the name of actor, and the number of rows by combining actor, \
       starring, for each name of actor; keep groups where the number of rows \
       is above 1";
    check "order and limit"
      "SELECT movies.name FROM movies ORDER BY movies.year DESC LIMIT 1"
      "show the name of movies from the movies table; ordered by the year of \
       movies from highest to lowest; first 1 row only";
    check "between"
      "SELECT movies.name FROM movies WHERE movies.year BETWEEN 2010 AND 2017"
      "show the name of movies from the movies table; keep rows where the \
       year of movies is between 2010 and 2017";
    check "aggregates"
      "SELECT AVG(movies.revenue), MAX(movies.year) FROM movies"
      "show the average revenue of movies, and the largest year of movies \
       from the movies table";
  ]
