module Mas = Duobench.Mas
module Executor = Duoengine.Executor

let db = Mas.database ()

let test_schema_stats () =
  Alcotest.(check int) "15 tables" 15 (Duodb.Schema.num_tables Mas.schema);
  Alcotest.(check int) "19 fks" 19 (Duodb.Schema.num_foreign_keys Mas.schema);
  Alcotest.(check bool) "roughly 44 columns" true
    (abs (Duodb.Schema.num_columns Mas.schema - 44) <= 4)

let test_integrity () =
  Alcotest.(check (list string)) "consistent instance" [] (Duodb.Database.check_integrity db)

let test_deterministic () =
  let db2 = Mas.database () in
  Alcotest.(check int) "same row count" (Duodb.Database.total_rows db)
    (Duodb.Database.total_rows db2)

let check_task (task : Mas.task) () =
  let gold = Mas.gold task in
  let res = Executor.run_exn db gold in
  let n = Executor.cardinality res in
  Alcotest.(check bool)
    (Printf.sprintf "%s non-empty (%d rows)" task.Mas.task_id n)
    true (n > 0);
  (* Discriminative: the task should not return the whole base table. *)
  Alcotest.(check bool) (task.Mas.task_id ^ " selective") true (n < 260)

let task_cases =
  List.map
    (fun (task : Mas.task) ->
      Alcotest.test_case
        (Printf.sprintf "task %s executes" task.Mas.task_id)
        `Quick (check_task task))
    (Mas.nli_study_tasks @ Mas.pbe_study_tasks)

let test_prolific_author_exists () =
  (* Tasks B1/D1 reference these authors; they must have publications. *)
  List.iter
    (fun name ->
      let rows =
        Executor.run_exn db
          (Duosql.Parser.query_exn ~schema:Mas.schema
             (Printf.sprintf
                "SELECT COUNT(*) FROM author JOIN writes ON author.aid = \
                 writes.aid WHERE author.name = '%s'"
                name))
      in
      match rows.Executor.res_rows with
      | [ [| Duodb.Value.Int n |] ] ->
          Alcotest.(check bool) (name ^ " has publications") true (n > 0)
      | _ -> Alcotest.fail "unexpected result shape")
    [ "Wei Zhang"; "Maria Garcia" ]

let suite =
  [
    Alcotest.test_case "schema statistics" `Quick test_schema_stats;
    Alcotest.test_case "referential integrity" `Quick test_integrity;
    Alcotest.test_case "deterministic generation" `Quick test_deterministic;
    Alcotest.test_case "prolific authors exist" `Quick test_prolific_author_exists;
  ]
  @ task_cases
