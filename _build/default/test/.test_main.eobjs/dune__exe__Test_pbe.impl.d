test/test_pbe.ml: Alcotest Duocore Duodb Duopbe Fixtures List Option
