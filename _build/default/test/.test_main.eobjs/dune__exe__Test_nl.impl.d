test/test_nl.ml: Alcotest Duodb Duonl Fixtures Gen List QCheck QCheck_alcotest String
