test/test_steiner.ml: Alcotest Duobench Duocore Duodb Duosql Fixtures Gen List Option QCheck QCheck_alcotest String
