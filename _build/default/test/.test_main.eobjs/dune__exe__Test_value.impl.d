test/test_value.ml: Alcotest Duodb List QCheck QCheck_alcotest
