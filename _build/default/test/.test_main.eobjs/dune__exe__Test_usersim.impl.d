test/test_usersim.ml: Alcotest Duobench List
