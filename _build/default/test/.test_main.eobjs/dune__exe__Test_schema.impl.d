test/test_schema.ml: Alcotest Duodb Fixtures List Option
