test/test_describe.ml: Alcotest Duosql Fixtures
