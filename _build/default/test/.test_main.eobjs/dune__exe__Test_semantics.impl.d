test/test_semantics.ml: Alcotest Duocore Duosql Fixtures List Printf
