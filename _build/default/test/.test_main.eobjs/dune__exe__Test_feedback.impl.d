test/test_feedback.ml: Alcotest Array Duocore Duodb Duoengine Fixtures List
