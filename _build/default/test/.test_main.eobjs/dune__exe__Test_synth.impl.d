test/test_synth.ml: Alcotest Duocore Duodb Duosql Fixtures List Printf
