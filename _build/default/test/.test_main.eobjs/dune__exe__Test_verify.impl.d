test/test_verify.ml: Alcotest Duobench Duocore Duodb Duoguide Duosql Fixtures Hashtbl Option QCheck QCheck_alcotest
