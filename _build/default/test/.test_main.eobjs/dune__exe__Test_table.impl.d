test/test_table.ml: Alcotest Duodb Fixtures List String
