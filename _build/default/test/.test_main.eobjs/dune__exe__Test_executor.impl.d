test/test_executor.ml: Alcotest Array Duodb Duoengine Duosql Fixtures List Printf QCheck QCheck_alcotest
