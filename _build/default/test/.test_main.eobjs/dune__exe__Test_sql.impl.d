test/test_sql.ml: Alcotest Ast Duodb Duosql Equal Fixtures Lexer List Option Parser Pretty Printf QCheck QCheck_alcotest
