test/test_simulation.ml: Alcotest Duobench Duocore Duosql Lazy List Printf
