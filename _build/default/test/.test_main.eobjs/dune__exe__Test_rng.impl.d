test/test_rng.ml: Alcotest Duobench Gen List QCheck QCheck_alcotest
