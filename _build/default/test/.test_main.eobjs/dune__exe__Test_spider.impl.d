test/test_spider.ml: Alcotest Duobench Duocore Duodb Duoengine Duosql List Option Printf String
