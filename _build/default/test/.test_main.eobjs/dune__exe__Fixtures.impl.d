test/fixtures.ml: Alcotest Duodb Duoengine Duosql String
