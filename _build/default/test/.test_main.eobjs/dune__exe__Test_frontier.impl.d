test/test_frontier.ml: Alcotest Duocore Duosql Gen List Option QCheck QCheck_alcotest
