test/test_tsq.ml: Alcotest Array Duocore Duodb Duoengine Fixtures Printf QCheck QCheck_alcotest
