test/test_mas.ml: Alcotest Duobench Duodb Duoengine Duosql List Printf
