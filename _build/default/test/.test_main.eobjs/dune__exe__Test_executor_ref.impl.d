test/test_executor_ref.ml: Alcotest Array Duodb Duoengine Duosql Fixtures Float List QCheck QCheck_alcotest
