test/test_csv.ml: Alcotest Array Duodb Filename Fixtures
