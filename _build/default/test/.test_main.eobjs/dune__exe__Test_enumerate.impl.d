test/test_enumerate.ml: Alcotest Duocore Duodb Duoengine Duoguide Duonl Duosql Fixtures List
