test/test_guidance.ml: Alcotest Array Duodb Duoguide Duonl Fixtures List QCheck QCheck_alcotest
