(* End-to-end synthesis tests on the movie database: the simplified GPQE
   example of Figure 2 and the motivating example of Section 2. *)

module Tsq = Duocore.Tsq
module Duoquest = Duocore.Duoquest
module Enumerate = Duocore.Enumerate
module Value = Duodb.Value

let session = Duoquest.create_session (Fixtures.movie_db ())

let small_config =
  { Enumerate.default_config with
    Enumerate.max_pops = 30_000;
    max_candidates = 40;
    time_budget_s = 20.0 }

let gold sql = Fixtures.parse sql

(* Figure 2: "Find all movies before 1995." with TSQ (text; Forrest Gump) *)
let fig2_tsq =
  Tsq.make ~types:[ Duodb.Datatype.Text ]
    ~tuples:[ [ Tsq.Exact (Value.Text "Forrest Gump") ] ]
    ()

let test_fig2_duoquest () =
  let outcome =
    Duoquest.synthesize ~config:small_config ~tsq:fig2_tsq
      ~literals:[ Value.Int 1995 ] session
      ~nlq:"Find all movies from before 1995" ()
  in
  let gold = gold "SELECT movies.name FROM movies WHERE movies.year < 1995" in
  match Duoquest.rank_of outcome ~gold with
  | Some r -> Alcotest.(check bool) "gold in top 5" true (r <= 5)
  | None -> Alcotest.fail "gold query not found"

let test_fig2_pruning_blocks_actor_names () =
  (* Every emitted candidate must satisfy the TSQ: project one text column
     containing 'Forrest Gump'. *)
  let outcome =
    Duoquest.synthesize ~config:small_config ~tsq:fig2_tsq
      ~literals:[ Value.Int 1995 ] session
      ~nlq:"Find all movies from before 1995" ()
  in
  Alcotest.(check bool) "has candidates" true (outcome.Enumerate.out_candidates <> []);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "satisfies TSQ: %s" (Duosql.Pretty.query c.Enumerate.cand_query))
        true
        (Tsq.satisfies fig2_tsq (Duoquest.session_db session) c.Enumerate.cand_query))
    outcome.Enumerate.out_candidates

let test_nli_mode_ignores_tsq () =
  let outcome =
    Duoquest.synthesize ~config:small_config ~mode:`Nli ~tsq:fig2_tsq
      ~literals:[ Value.Int 1995 ] session
      ~nlq:"Find all movies from before 1995" ()
  in
  (* Without the TSQ, some candidate may project actor columns. *)
  Alcotest.(check bool) "has candidates" true (outcome.Enumerate.out_candidates <> []);
  let gold = gold "SELECT movies.name FROM movies WHERE movies.year < 1995" in
  match Duoquest.rank_of outcome ~gold with
  | Some _ -> ()
  | None -> Alcotest.fail "NLI should still be able to reach the gold query"

let test_sorted_tsq_requires_order_by () =
  let tsq =
    Tsq.make ~types:[ Duodb.Datatype.Text; Duodb.Datatype.Number ]
      ~tuples:
        [ [ Tsq.Exact (Value.Text "Forrest Gump"); Tsq.Any ];
          [ Tsq.Exact (Value.Text "Gravity"); Tsq.Any ] ]
      ~sorted:true ()
  in
  let outcome =
    Duoquest.synthesize ~config:small_config ~tsq ~literals:[] session
      ~nlq:"movie names and years from earliest to most recent" ()
  in
  Alcotest.(check bool) "has candidates" true (outcome.Enumerate.out_candidates <> []);
  List.iter
    (fun c ->
      Alcotest.(check bool) "all candidates sorted" true
        (c.Enumerate.cand_query.Duosql.Ast.q_order_by <> []))
    outcome.Enumerate.out_candidates

let test_group_by_synthesis () =
  let tsq =
    Tsq.make ~types:[ Duodb.Datatype.Text; Duodb.Datatype.Number ]
      ~tuples:[ [ Tsq.Exact (Value.Text "Tom Hanks"); Tsq.Exact (Value.Int 2) ] ]
      ()
  in
  let outcome =
    Duoquest.synthesize ~config:small_config ~tsq ~literals:[] session
      ~nlq:"actor names and the number of movies each actor starred in" ()
  in
  let gold =
    gold
      "SELECT a.name, COUNT(*) FROM actor a JOIN starring s ON a.aid = s.aid \
       GROUP BY a.name"
  in
  match Duoquest.rank_of outcome ~gold with
  | Some r -> Alcotest.(check bool) "gold in top 10" true (r <= 10)
  | None -> Alcotest.fail "gold grouped query not found"

let test_noguide_still_finds_with_pruning () =
  let outcome =
    Duoquest.synthesize
      ~config:{ small_config with Enumerate.max_pops = 100_000 }
      ~mode:`No_guide ~tsq:fig2_tsq ~literals:[ Value.Int 1995 ] session
      ~nlq:"Find all movies from before 1995" ()
  in
  let gold = gold "SELECT movies.name FROM movies WHERE movies.year < 1995" in
  match Duoquest.rank_of outcome ~gold with
  | Some _ -> ()
  | None -> Alcotest.fail "NoGuide should eventually reach the gold query"

let test_nopq_same_candidates_slower () =
  let run mode =
    Duoquest.synthesize
      ~config:{ small_config with Enumerate.max_pops = 100_000 }
      ~mode ~tsq:fig2_tsq ~literals:[ Value.Int 1995 ] session
      ~nlq:"Find all movies from before 1995" ()
  in
  let dq = run `Duoquest and nopq = run `No_pq in
  let gold = gold "SELECT movies.name FROM movies WHERE movies.year < 1995" in
  (match Duoquest.rank_of nopq ~gold with
  | Some _ -> ()
  | None -> Alcotest.fail "NoPQ should find the gold query");
  (* NoPQ explores at least as many states to reach the same candidate. *)
  Alcotest.(check bool) "NoPQ pops >= Duoquest pops" true
    (nopq.Enumerate.out_pops >= dq.Enumerate.out_pops)

let test_candidates_ranked_by_confidence () =
  let outcome =
    Duoquest.synthesize ~config:small_config ~tsq:fig2_tsq
      ~literals:[ Value.Int 1995 ] session
      ~nlq:"Find all movies from before 1995" ()
  in
  let rec weakly_decreasing = function
    | a :: (b :: _ as rest) ->
        (* best-first emission: later candidates never have strictly higher
           confidence, up to join-length tie-breaking noise *)
        a.Enumerate.cand_confidence +. 1e-9 >= b.Enumerate.cand_confidence
        && weakly_decreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "emission order follows confidence" true
    (weakly_decreasing outcome.Enumerate.out_candidates)

let suite =
  [
    Alcotest.test_case "figure 2 example" `Quick test_fig2_duoquest;
    Alcotest.test_case "pruning soundness on emissions" `Quick test_fig2_pruning_blocks_actor_names;
    Alcotest.test_case "NLI mode" `Quick test_nli_mode_ignores_tsq;
    Alcotest.test_case "sorted TSQ forces ORDER BY" `Quick test_sorted_tsq_requires_order_by;
    Alcotest.test_case "grouped aggregate synthesis" `Quick test_group_by_synthesis;
    Alcotest.test_case "NoGuide ablation" `Quick test_noguide_still_finds_with_pruning;
    Alcotest.test_case "NoPQ ablation" `Quick test_nopq_same_candidates_slower;
    Alcotest.test_case "ranking by confidence" `Quick test_candidates_ranked_by_confidence;
  ]
