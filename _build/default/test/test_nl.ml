module Token = Duonl.Token
module Nlq = Duonl.Nlq
module Value = Duodb.Value

let test_tokenize_words () =
  let toks = Token.tokenize "Show the names of movies from before 1995" in
  Alcotest.(check bool) "has number" true (List.mem (Token.Number 1995.0) toks);
  Alcotest.(check bool) "stems names->name" true (List.mem (Token.Word "name") toks)

let test_tokenize_quoted () =
  let toks = Token.tokenize "publications in \"SIGMOD\" since 2010" in
  Alcotest.(check bool) "quoted literal kept verbatim" true
    (List.mem (Token.Quoted "SIGMOD") toks)

let test_tokenize_unterminated_quote () =
  let toks = Token.tokenize "find \"Forrest Gump" in
  Alcotest.(check bool) "unterminated quote still a literal" true
    (List.mem (Token.Quoted "Forrest Gump") toks)

let test_stem () =
  Alcotest.(check string) "plural" "movy" (Token.stem "movies");
  Alcotest.(check string) "simple plural" "author" (Token.stem "authors");
  Alcotest.(check string) "ing" "sort" (Token.stem "sorting");
  Alcotest.(check string) "ed" "order" (Token.stem "ordered");
  Alcotest.(check string) "short words untouched" "the" (Token.stem "the");
  Alcotest.(check string) "idempotent-ish" "name" (Token.stem "names")

let test_stopwords () =
  Alcotest.(check bool) "the" true (Token.is_stopword "the");
  Alcotest.(check bool) "organization" false (Token.is_stopword "organization")

let test_literal_extraction () =
  let nlq = Nlq.analyze "movies from before 1995 named \"Forrest Gump\"" in
  Alcotest.(check int) "two literals" 2 (List.length nlq.Nlq.literals);
  Alcotest.(check (list string)) "text literal" [ "Forrest Gump" ] (Nlq.text_literals nlq);
  Alcotest.(check bool) "numeric literal" true
    (List.mem (Value.Int 1995) (Nlq.numeric_literals nlq))

let test_grounding () =
  let db = Fixtures.movie_db () in
  let index = Duodb.Index.build db in
  let nlq = Nlq.analyze ~index "who starred in \"Gravity\"" in
  match nlq.Nlq.literals with
  | [ l ] ->
      Alcotest.(check (list (pair string string))) "grounded to movies.name"
        [ ("movies", "name") ] l.Nlq.lit_columns
  | _ -> Alcotest.fail "expected one literal"

let test_with_literals () =
  let nlq = Nlq.with_literals "some question" [ Value.Int 7; Value.Text "x" ] in
  Alcotest.(check int) "two provided" 2 (List.length nlq.Nlq.literals)

let test_content_words () =
  let nlq = Nlq.analyze "Show the names of all the movies" in
  let words = Nlq.content_words nlq in
  Alcotest.(check bool) "no stopwords" true
    (not (List.exists Token.is_stopword words));
  Alcotest.(check bool) "keeps name" true (List.mem "name" words)

(* Property: tokenize never produces empty word tokens and is total. *)
let prop_tokenize_total =
  QCheck.Test.make ~name:"tokenize total, no empty words" ~count:300
    QCheck.(string_of_size (Gen.int_range 0 60))
    (fun s ->
      List.for_all
        (function Token.Word w -> String.length w > 0 | _ -> true)
        (Token.tokenize s))

let suite =
  [
    Alcotest.test_case "tokenize words" `Quick test_tokenize_words;
    Alcotest.test_case "tokenize quoted" `Quick test_tokenize_quoted;
    Alcotest.test_case "unterminated quote" `Quick test_tokenize_unterminated_quote;
    Alcotest.test_case "stemming" `Quick test_stem;
    Alcotest.test_case "stopwords" `Quick test_stopwords;
    Alcotest.test_case "literal extraction" `Quick test_literal_extraction;
    Alcotest.test_case "index grounding" `Quick test_grounding;
    Alcotest.test_case "explicit literals" `Quick test_with_literals;
    Alcotest.test_case "content words" `Quick test_content_words;
    QCheck_alcotest.to_alcotest prop_tokenize_total;
  ]
