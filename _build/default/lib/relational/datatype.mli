(** Column data types in the paper's scope: text or number (Section 2.2,
    Table 2). *)

type t =
  | Text
  | Number

val equal : t -> t -> bool
val to_string : t -> string

(** Parse "text" / "number" (case-insensitive). *)
val of_string : string -> t option

val pp : Format.formatter -> t -> unit

(** Type of a value, if determinate. [Value.Null] has no type. *)
val of_value : Value.t -> t option

(** [value_matches ty v] holds when [v] could be stored in a column of type
    [ty]; [Null] matches both types. *)
val value_matches : t -> Value.t -> bool
