type t = {
  dschema : Schema.t;
  tables : (string, Table.t) Hashtbl.t;
}

let create dschema =
  let tables = Hashtbl.create 16 in
  List.iter
    (fun tbl -> Hashtbl.replace tables tbl.Schema.tbl_name (Table.create tbl))
    dschema.Schema.tables;
  { dschema; tables }

let schema t = t.dschema
let name t = t.dschema.Schema.name
let table t tbl = Hashtbl.find_opt t.tables tbl

let table_exn t tbl =
  match table t tbl with
  | Some x -> x
  | None ->
      invalid_arg (Printf.sprintf "Database.table_exn: no table %S in %s" tbl (name t))

let insert t ~table row = Table.insert (table_exn t table) row
let insert_all t ~table rows = Table.insert_all (table_exn t table) rows

let total_rows t =
  Hashtbl.fold (fun _ tbl acc -> acc + Table.row_count tbl) t.tables 0

(* Key of a row restricted to the given column names, for PK uniqueness and
   FK membership checks. *)
let key_of tbl cols row =
  List.map (fun c -> row.(Table.column_index tbl c)) cols

let check_integrity t =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  (* Primary key uniqueness. *)
  List.iter
    (fun ts ->
      match ts.Schema.tbl_pk with
      | [] -> ()
      | pk ->
          let tbl = table_exn t ts.Schema.tbl_name in
          let seen = Hashtbl.create 64 in
          Table.iter
            (fun row ->
              let k = List.map Value.to_sql (key_of tbl pk row) in
              if Hashtbl.mem seen k then
                add "duplicate primary key %s in %s" (String.concat "," k)
                  ts.Schema.tbl_name
              else Hashtbl.add seen k ())
            tbl)
    t.dschema.Schema.tables;
  (* Foreign key membership. *)
  List.iter
    (fun e ->
      let src = table_exn t e.Schema.fk_table in
      let dst = table_exn t e.Schema.pk_table in
      let dst_idx = Table.column_index dst e.Schema.pk_column in
      let keys = Hashtbl.create 256 in
      Table.iter (fun row -> Hashtbl.replace keys (Value.to_sql row.(dst_idx)) ()) dst;
      let src_idx = Table.column_index src e.Schema.fk_column in
      Table.iter
        (fun row ->
          let v = row.(src_idx) in
          if (not (Value.is_null v)) && not (Hashtbl.mem keys (Value.to_sql v)) then
            add "dangling foreign key %s.%s=%s (-> %s.%s)" e.Schema.fk_table
              e.Schema.fk_column (Value.to_sql v) e.Schema.pk_table
              e.Schema.pk_column)
        src)
    t.dschema.Schema.foreign_keys;
  List.rev !violations

let pp_stats ppf t =
  Format.fprintf ppf "@[<v>database %s: %d tables, %d rows@," (name t)
    (Schema.num_tables t.dschema) (total_rows t);
  List.iter
    (fun ts ->
      Format.fprintf ppf "  %-24s %6d rows@," ts.Schema.tbl_name
        (Table.row_count (table_exn t ts.Schema.tbl_name)))
    t.dschema.Schema.tables;
  Format.fprintf ppf "@]"
