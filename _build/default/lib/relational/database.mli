(** A database: a schema plus one {!Table.t} of rows per schema table. *)

type t

(** [create schema] builds a database with one empty table per schema
    table. *)
val create : Schema.t -> t

val schema : t -> Schema.t
val name : t -> string

val table : t -> string -> Table.t option
val table_exn : t -> string -> Table.t

(** [insert db ~table row] appends a row into [table]. *)
val insert : t -> table:string -> Value.t array -> unit

val insert_all : t -> table:string -> Value.t array list -> unit

(** Total rows across all tables. *)
val total_rows : t -> int

(** [check_integrity db] verifies that every foreign key value (when not
    null) references an existing primary key value, and that primary keys
    are unique.  Returns the list of violations as human-readable strings
    (empty when consistent). *)
val check_integrity : t -> string list

val pp_stats : Format.formatter -> t -> unit
