type column = {
  col_table : string;
  col_name : string;
  col_type : Datatype.t;
}

type table = {
  tbl_name : string;
  tbl_columns : column list;
  tbl_pk : string list;
}

type foreign_key = {
  fk_table : string;
  fk_column : string;
  pk_table : string;
  pk_column : string;
}

type t = {
  name : string;
  tables : table list;
  foreign_keys : foreign_key list;
}

let table name cols ~pk =
  let tbl_columns =
    List.map (fun (c, ty) -> { col_table = name; col_name = c; col_type = ty }) cols
  in
  { tbl_name = name; tbl_columns; tbl_pk = pk }

let fk (fk_table, fk_column) (pk_table, pk_column) =
  { fk_table; fk_column; pk_table; pk_column }

let find_table t name =
  List.find_opt (fun tbl -> String.equal tbl.tbl_name name) t.tables

let find_table_exn t name =
  match find_table t name with
  | Some tbl -> tbl
  | None -> invalid_arg (Printf.sprintf "Schema.find_table_exn: no table %S in %s" name t.name)

let find_column t ~table name =
  match find_table t table with
  | None -> None
  | Some tbl -> List.find_opt (fun c -> String.equal c.col_name name) tbl.tbl_columns

let find_column_exn t ~table name =
  match find_column t ~table name with
  | Some c -> c
  | None ->
      invalid_arg (Printf.sprintf "Schema.find_column_exn: no column %s.%s" table name)

let validate t =
  let fail fmt = Printf.ksprintf invalid_arg ("Schema.make: " ^^ fmt) in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun tbl ->
      if Hashtbl.mem seen tbl.tbl_name then fail "duplicate table %S" tbl.tbl_name;
      Hashtbl.add seen tbl.tbl_name ();
      let col_seen = Hashtbl.create 16 in
      List.iter
        (fun c ->
          if not (String.equal c.col_table tbl.tbl_name) then
            fail "column %s.%s claims table %S" tbl.tbl_name c.col_name c.col_table;
          if Hashtbl.mem col_seen c.col_name then
            fail "duplicate column %s.%s" tbl.tbl_name c.col_name;
          Hashtbl.add col_seen c.col_name ())
        tbl.tbl_columns;
      List.iter
        (fun k ->
          if not (Hashtbl.mem col_seen k) then
            fail "primary key column %s.%s does not exist" tbl.tbl_name k)
        tbl.tbl_pk)
    t.tables;
  List.iter
    (fun e ->
      let check tbl col =
        match find_column t ~table:tbl col with
        | Some _ -> ()
        | None -> fail "foreign key references missing column %s.%s" tbl col
      in
      check e.fk_table e.fk_column;
      check e.pk_table e.pk_column)
    t.foreign_keys

let make ~name tables foreign_keys =
  let t = { name; tables; foreign_keys } in
  validate t;
  t

let all_columns t = List.concat_map (fun tbl -> tbl.tbl_columns) t.tables

let is_pk_column t ~table col =
  match find_table t table with
  | None -> false
  | Some tbl -> List.exists (String.equal col) tbl.tbl_pk

let num_tables t = List.length t.tables
let num_columns t = List.length (all_columns t)
let num_foreign_keys t = List.length t.foreign_keys

let join_edges t ~table =
  List.filter
    (fun e -> String.equal e.fk_table table || String.equal e.pk_table table)
    t.foreign_keys

let joinable t t1 t2 =
  List.filter
    (fun e ->
      (String.equal e.fk_table t1 && String.equal e.pk_table t2)
      || (String.equal e.fk_table t2 && String.equal e.pk_table t1))
    t.foreign_keys

let pp ppf t =
  Format.fprintf ppf "@[<v>schema %s@," t.name;
  List.iter
    (fun tbl ->
      Format.fprintf ppf "  @[<h>%s(%s)@]@," tbl.tbl_name
        (String.concat ", "
           (List.map
              (fun c ->
                let mark = if List.exists (String.equal c.col_name) tbl.tbl_pk then "*" else "" in
                Printf.sprintf "%s%s:%s" mark c.col_name (Datatype.to_string c.col_type))
              tbl.tbl_columns)))
    t.tables;
  List.iter
    (fun e ->
      Format.fprintf ppf "  %s.%s -> %s.%s@," e.fk_table e.fk_column e.pk_table e.pk_column)
    t.foreign_keys;
  Format.fprintf ppf "@]"
