type t =
  | Text
  | Number

let equal a b =
  match a, b with
  | Text, Text | Number, Number -> true
  | Text, Number | Number, Text -> false

let to_string = function Text -> "text" | Number -> "number"

let of_string s =
  match String.lowercase_ascii s with
  | "text" -> Some Text
  | "number" -> Some Number
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)

let of_value = function
  | Value.Null -> None
  | Value.Int _ | Value.Float _ -> Some Number
  | Value.Text _ -> Some Text

let value_matches ty v =
  match of_value v with
  | None -> true
  | Some ty' -> equal ty ty'
