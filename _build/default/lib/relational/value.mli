(** Scalar values stored in database cells.

    The paper's task scope (Section 2.5) only distinguishes [text] and
    [number] columns; we keep integers and floats separate in storage but
    compare them numerically so that a TSQ range such as [[2010, 2017]]
    matches a float-typed year column. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Text of string

(** Total order used for ORDER BY and range comparisons. [Null] sorts before
    every other value; numbers compare numerically across [Int]/[Float];
    numbers sort before text. *)
val compare : t -> t -> int

(** Structural equality modulo numeric representation: [Int 3] equals
    [Float 3.0]. *)
val equal : t -> t -> bool

val is_null : t -> bool

(** [is_numeric v] is true for [Int] and [Float] values. *)
val is_numeric : t -> bool

(** Numeric view of a value. Raises [Invalid_argument] on text. *)
val to_float : t -> float

(** SQL-literal rendering: text is single-quoted with quote doubling. *)
val to_sql : t -> string

(** Raw rendering without quoting, used for display and CSV-ish output. *)
val to_display : t -> string

val pp : Format.formatter -> t -> unit

(** Case-insensitive LIKE with [%] (any substring) and [_] (any character)
    wildcards, as used by predicate evaluation. *)
val like : string -> pattern:string -> bool

(** Hash compatible with [equal] (numeric values hash by magnitude). *)
val hash : t -> int
