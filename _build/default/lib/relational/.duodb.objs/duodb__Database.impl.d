lib/relational/database.ml: Array Format Hashtbl List Printf Schema String Table Value
