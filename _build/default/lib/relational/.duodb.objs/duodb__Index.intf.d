lib/relational/index.mli: Database
