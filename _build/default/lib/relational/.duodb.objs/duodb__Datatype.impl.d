lib/relational/datatype.ml: Format String Value
