lib/relational/datatype.mli: Format Value
