lib/relational/value.ml: Array Float Format Hashtbl Int Printf String
