lib/relational/database.mli: Format Schema Table Value
