lib/relational/schema.ml: Datatype Format Hashtbl List Printf String
