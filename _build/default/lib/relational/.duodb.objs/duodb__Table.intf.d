lib/relational/table.mli: Schema Value
