lib/relational/index.ml: Array Database Datatype List Map Option Schema String Table Value
