lib/relational/table.ml: Array Datatype List Printf Schema String Value
