lib/relational/csv.ml: Array Buffer Database Datatype Filename List Printf Schema String Sys Table Value
