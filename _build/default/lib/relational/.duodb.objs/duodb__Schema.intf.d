lib/relational/schema.mli: Datatype Format
