lib/relational/csv.mli: Database Schema Table Value
