(** Database schemas: typed columns, primary keys, and foreign key-primary
    key (FK-PK) relationships.

    The paper restricts joins to inner joins on FK-PK edges (Section 2.5),
    so the schema also exposes the undirected {e join graph} whose nodes are
    tables and whose edges are FK-PK relationships; progressive join path
    construction (Algorithm 2) computes Steiner trees on this graph. *)

type column = {
  col_table : string;  (** owning table name *)
  col_name : string;
  col_type : Datatype.t;
}

type table = {
  tbl_name : string;
  tbl_columns : column list;
  tbl_pk : string list;  (** primary key column names, possibly composite *)
}

(** A directed FK-PK edge: [fk_table.fk_column] references
    [pk_table.pk_column]. *)
type foreign_key = {
  fk_table : string;
  fk_column : string;
  pk_table : string;
  pk_column : string;
}

type t = {
  name : string;
  tables : table list;
  foreign_keys : foreign_key list;
}

(** {1 Construction} *)

(** [make ~name tables fks] validates that table names are distinct, that
    PK and FK column references exist, and that FK endpoints are distinct
    tables or self-references on existing columns.
    Raises [Invalid_argument] with a description otherwise. *)
val make : name:string -> table list -> foreign_key list -> t

(** Convenience builder: [table name cols ~pk] with [cols] given as
    [(name, type)] pairs. *)
val table : string -> (string * Datatype.t) list -> pk:string list -> table

(** [fk (t1, c1) (t2, c2)] is the FK-PK edge [t1.c1 -> t2.c2]. *)
val fk : string * string -> string * string -> foreign_key

(** {1 Lookup} *)

val find_table : t -> string -> table option
val find_table_exn : t -> string -> table
val find_column : t -> table:string -> string -> column option
val find_column_exn : t -> table:string -> string -> column

(** All columns of all tables, in schema order. *)
val all_columns : t -> column list

(** [is_pk_column schema ~table col] holds when [col] is part of [table]'s
    primary key. *)
val is_pk_column : t -> table:string -> string -> bool

val num_tables : t -> int
val num_columns : t -> int
val num_foreign_keys : t -> int

(** {1 Join graph} *)

(** Undirected adjacency: for each table, the FK-PK edges incident to it
    (each edge reported from both endpoints). *)
val join_edges : t -> table:string -> foreign_key list

(** [joinable schema t1 t2] returns the FK-PK edges connecting the two
    tables in either direction. *)
val joinable : t -> string -> string -> foreign_key list

val pp : Format.formatter -> t -> unit
