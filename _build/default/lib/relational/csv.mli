(** CSV import/export for tables and databases.

    Format: RFC-4180-style — comma-separated, double-quote quoting with
    quote doubling, first line is the header.  The empty field reads back
    as [Null]; fields of numeric columns parse as numbers. *)

(** Render one table, header first. *)
val table_to_string : Table.t -> string

(** [table_of_string schema_table s] parses rows into a fresh table.
    Header column names must match the schema (order included). *)
val table_of_string : Schema.table -> string -> (Table.t, string) result

(** Write every table of the database as [<dir>/<table>.csv].  Creates the
    directory when missing. *)
val export_database : Database.t -> dir:string -> (unit, string) result

(** Load a database from a directory written by {!export_database}; tables
    without a file stay empty. *)
val import_database : Schema.t -> dir:string -> (Database.t, string) result

(** Render arbitrary rows with a header (used by the CLI's full query
    view). *)
val rows_to_string : header:string list -> Value.t array list -> string
