(** TSQ synthesis for the simulation study (Section 5.4.1) and the detail
    sweep (Section 5.4.4, Table 6).

    For each task, the gold query's result determines the sketch: type
    annotations from the output schema, two example tuples drawn from the
    result set (order-preserving when the query sorts), and tau/k from the
    gold ORDER BY / LIMIT clauses. *)

type detail =
  | Full  (** types + 2 example tuples + tau/k *)
  | Partial
      (** Full with every value of one randomly chosen column erased
          (tasks with at least 2 projected columns; otherwise = Full) *)
  | Minimal  (** types + tau/k only, no example tuples *)

val detail_to_string : detail -> string

(** [synthesize rng db gold ~detail ~n_examples] builds the sketch;
    [None] when the gold query fails to execute or returns no rows.
    [n_examples] defaults to 2 (capped to the result size). *)
val synthesize :
  ?n_examples:int ->
  Rng.t ->
  Duodb.Database.t ->
  Duosql.Ast.query ->
  detail:detail ->
  Duocore.Tsq.t option

(** Example tuples a simulated user would supply from partial domain
    knowledge: cells are kept exact with probability [exact_p], converted
    to a numeric range around the true value with probability [range_p],
    and erased otherwise. *)
val user_tuples :
  ?exact_p:float ->
  ?range_p:float ->
  Rng.t ->
  Duodb.Database.t ->
  Duosql.Ast.query ->
  n:int ->
  Duocore.Tsq.tuple list option
