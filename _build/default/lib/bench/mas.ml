module Schema = Duodb.Schema
module Value = Duodb.Value
module Datatype = Duodb.Datatype

let text = Datatype.Text
let number = Datatype.Number

let schema =
  Schema.make ~name:"mas"
    [
      Schema.table "author"
        [ ("aid", number); ("name", text); ("homepage", text); ("oid", number) ]
        ~pk:[ "aid" ];
      Schema.table "publication"
        [ ("pid", number); ("title", text); ("abstract", text); ("year", number);
          ("citation_count", number); ("cid", number); ("jid", number) ]
        ~pk:[ "pid" ];
      Schema.table "conference"
        [ ("cid", number); ("name", text); ("homepage", text) ]
        ~pk:[ "cid" ];
      Schema.table "journal"
        [ ("jid", number); ("name", text); ("homepage", text) ]
        ~pk:[ "jid" ];
      Schema.table "keyword"
        [ ("kid", number); ("keyword", text) ]
        ~pk:[ "kid" ];
      Schema.table "organization"
        [ ("oid", number); ("name", text); ("continent", text); ("homepage", text) ]
        ~pk:[ "oid" ];
      Schema.table "domain"
        [ ("did", number); ("name", text) ]
        ~pk:[ "did" ];
      Schema.table "writes"
        [ ("wid", number); ("aid", number); ("pid", number) ]
        ~pk:[ "wid" ];
      Schema.table "publication_keyword"
        [ ("pkid", number); ("pid", number); ("kid", number) ]
        ~pk:[ "pkid" ];
      Schema.table "domain_author"
        [ ("daid", number); ("aid", number); ("did", number) ]
        ~pk:[ "daid" ];
      Schema.table "domain_conference"
        [ ("dcid", number); ("cid", number); ("did", number) ]
        ~pk:[ "dcid" ];
      Schema.table "domain_journal"
        [ ("djid", number); ("jid", number); ("did", number) ]
        ~pk:[ "djid" ];
      Schema.table "domain_keyword"
        [ ("dkid", number); ("kid", number); ("did", number) ]
        ~pk:[ "dkid" ];
      Schema.table "domain_publication"
        [ ("dpid", number); ("did", number); ("pid", number) ]
        ~pk:[ "dpid" ];
      Schema.table "cite"
        [ ("citing", number); ("cited", number) ]
        ~pk:[];
    ]
    [
      Schema.fk ("author", "oid") ("organization", "oid");
      Schema.fk ("publication", "cid") ("conference", "cid");
      Schema.fk ("publication", "jid") ("journal", "jid");
      Schema.fk ("writes", "aid") ("author", "aid");
      Schema.fk ("writes", "pid") ("publication", "pid");
      Schema.fk ("publication_keyword", "pid") ("publication", "pid");
      Schema.fk ("publication_keyword", "kid") ("keyword", "kid");
      Schema.fk ("domain_author", "aid") ("author", "aid");
      Schema.fk ("domain_author", "did") ("domain", "did");
      Schema.fk ("domain_conference", "cid") ("conference", "cid");
      Schema.fk ("domain_conference", "did") ("domain", "did");
      Schema.fk ("domain_journal", "jid") ("journal", "jid");
      Schema.fk ("domain_journal", "did") ("domain", "did");
      Schema.fk ("domain_keyword", "kid") ("keyword", "kid");
      Schema.fk ("domain_keyword", "did") ("domain", "did");
      Schema.fk ("domain_publication", "did") ("domain", "did");
      Schema.fk ("domain_publication", "pid") ("publication", "pid");
      Schema.fk ("cite", "citing") ("publication", "pid");
      Schema.fk ("cite", "cited") ("publication", "pid");
    ]

(* --- data pools --- *)

let first_names =
  [ "Wei"; "Maria"; "James"; "Aisha"; "Chen"; "Elena"; "Rahul"; "Sofia";
    "Daniel"; "Yuki"; "Omar"; "Ingrid"; "Carlos"; "Priya"; "Tom"; "Nadia";
    "Ivan"; "Grace"; "Ahmed"; "Lucia" ]

let last_names =
  [ "Zhang"; "Garcia"; "Smith"; "Khan"; "Liu"; "Petrov"; "Sharma"; "Rossi";
    "Kim"; "Tanaka"; "Hassan"; "Larsen"; "Mendoza"; "Patel"; "Baker";
    "Novak"; "Ivanov"; "Chen"; "Ali"; "Moreau" ]

let title_topics =
  [ "Query Optimization"; "Neural Networks"; "Data Integration";
    "Stream Processing"; "Knowledge Graphs"; "Transaction Management";
    "Program Synthesis"; "Entity Resolution"; "Index Structures";
    "Crowdsourcing"; "Approximate Queries"; "Schema Mapping"; "Provenance";
    "Text Mining"; "Graph Analytics" ]

let title_modifiers =
  [ "Scalable"; "Efficient"; "Adaptive"; "Distributed"; "Interactive";
    "Robust"; "Incremental"; "Learned"; "Declarative"; "Parallel" ]

let conference_names =
  [ "SIGMOD"; "VLDB"; "ICDE"; "KDD"; "CHI"; "SOSP"; "NeurIPS"; "ACL" ]

let journal_names = [ "TODS"; "VLDBJ"; "TKDE"; "JMLR"; "CACM" ]

let organization_names =
  [ ("University of Michigan", "North America");
    ("Stanford University", "North America");
    ("MIT", "North America");
    ("ETH Zurich", "Europe");
    ("University of Oxford", "Europe");
    ("Tsinghua University", "Asia");
    ("University of Tokyo", "Asia");
    ("University of Melbourne", "Oceania");
    ("TU Munich", "Europe");
    ("University of Toronto", "North America") ]

let domain_names =
  [ "Databases"; "Machine Learning"; "Systems"; "Human Computer Interaction";
    "Natural Language Processing"; "Theory" ]

let keyword_names =
  [ "indexing"; "joins"; "learning"; "privacy"; "caching"; "sampling";
    "clustering"; "ranking"; "parsing"; "hashing"; "scheduling"; "replication";
    "compression"; "visualization"; "benchmarking"; "crowdsourcing";
    "optimization"; "streaming"; "provenance"; "integration" ]

let i n = Value.Int n
let t s = Value.Text s

let database ?(seed = 42) () =
  let rng = Rng.create seed in
  let db = Duodb.Database.create schema in
  let n_conf = List.length conference_names in
  List.iteri
    (fun idx name ->
      Duodb.Database.insert db ~table:"conference"
        [| i (idx + 1); t name; t (Printf.sprintf "http://%s.org" (String.lowercase_ascii name)) |])
    conference_names;
  List.iteri
    (fun idx name ->
      Duodb.Database.insert db ~table:"journal"
        [| i (idx + 1); t name; t (Printf.sprintf "http://%s.org" (String.lowercase_ascii name)) |])
    journal_names;
  List.iteri
    (fun idx (name, continent) ->
      Duodb.Database.insert db ~table:"organization"
        [| i (idx + 1); t name; t continent;
           t (Printf.sprintf "http://org%d.edu" (idx + 1)) |])
    organization_names;
  List.iteri
    (fun idx name -> Duodb.Database.insert db ~table:"domain" [| i (idx + 1); t name |])
    domain_names;
  List.iteri
    (fun idx kw -> Duodb.Database.insert db ~table:"keyword" [| i (idx + 1); t kw |])
    keyword_names;
  (* Authors: 60, spread over organizations (org 1 gets a large group so
     B3/B4-style tasks discriminate). *)
  let n_authors = 60 in
  let author_names =
    (* distinct first+last combinations, deterministic *)
    (* Offset the surname index by the "generation" so every draw is a
       fresh pair: 20 first names x shifting surnames. *)
    List.init n_authors (fun k ->
        let f = List.nth first_names (k mod List.length first_names) in
        let l =
          List.nth last_names ((k + (k / List.length first_names)) mod List.length last_names)
        in
        f ^ " " ^ l)
  in
  List.iteri
    (fun idx name ->
      let oid =
        if idx < 10 then 1 (* a big Michigan cluster *)
        else 1 + Rng.int rng (List.length organization_names)
      in
      Duodb.Database.insert db ~table:"author"
        [| i (idx + 1); t name; t (Printf.sprintf "http://people.org/%d" (idx + 1)); i oid |])
    author_names;
  (* Publications: 260, venue is conference or journal. *)
  let n_pubs = 260 in
  for pid = 1 to n_pubs do
    let topic = Rng.choose rng title_topics in
    let modifier = Rng.choose rng title_modifiers in
    let title = Printf.sprintf "%s %s %d" modifier topic pid in
    let year = Rng.range rng 1990 2020 in
    let cites = Rng.int rng 400 in
    let in_conf = Rng.bool rng 0.7 in
    let cid = if in_conf then i (1 + Rng.int rng n_conf) else Value.Null in
    let jid =
      if in_conf then Value.Null else i (1 + Rng.int rng (List.length journal_names))
    in
    Duodb.Database.insert db ~table:"publication"
      [| i pid; t title; t (Printf.sprintf "We study %s." (String.lowercase_ascii topic));
         i year; i cites; cid; jid |]
  done;
  (* Authorship: 1-3 authors per publication; the first ten authors write
     more (so per-author counts spread for A3/B4). *)
  let wid = ref 0 in
  for pid = 1 to n_pubs do
    let n_auth = 1 + Rng.int rng 3 in
    let chosen = ref [] in
    for _ = 1 to n_auth do
      let aid =
        if Rng.bool rng 0.35 then 1 + Rng.int rng 10 else 1 + Rng.int rng n_authors
      in
      if not (List.mem aid !chosen) then chosen := aid :: !chosen
    done;
    List.iter
      (fun aid ->
        incr wid;
        Duodb.Database.insert db ~table:"writes" [| i !wid; i aid; i pid |])
      !chosen
  done;
  (* Keywords per publication. *)
  let pkid = ref 0 in
  for pid = 1 to n_pubs do
    let n_kw = 1 + Rng.int rng 3 in
    let chosen = ref [] in
    for _ = 1 to n_kw do
      let kid = 1 + Rng.int rng (List.length keyword_names) in
      if not (List.mem kid !chosen) then chosen := kid :: !chosen
    done;
    List.iter
      (fun kid ->
        incr pkid;
        Duodb.Database.insert db ~table:"publication_keyword" [| i !pkid; i pid; i kid |])
      !chosen
  done;
  (* Domain links. *)
  let daid = ref 0 in
  for aid = 1 to n_authors do
    let did = 1 + Rng.int rng (List.length domain_names) in
    incr daid;
    Duodb.Database.insert db ~table:"domain_author" [| i !daid; i aid; i did |];
    (* authors 1-10 are also all in Databases, making task C2/B2 rich *)
    if aid <= 10 && did <> 1 then begin
      incr daid;
      Duodb.Database.insert db ~table:"domain_author" [| i !daid; i aid; i 1 |]
    end
  done;
  let dcid = ref 0 in
  List.iteri
    (fun idx _ ->
      let did = if idx < 3 then 1 else 1 + Rng.int rng (List.length domain_names) in
      incr dcid;
      Duodb.Database.insert db ~table:"domain_conference" [| i !dcid; i (idx + 1); i did |])
    conference_names;
  let djid = ref 0 in
  List.iteri
    (fun idx _ ->
      incr djid;
      let did = 1 + Rng.int rng (List.length domain_names) in
      Duodb.Database.insert db ~table:"domain_journal" [| i !djid; i (idx + 1); i did |])
    journal_names;
  let dkid = ref 0 in
  List.iteri
    (fun idx _ ->
      incr dkid;
      let did = 1 + Rng.int rng (List.length domain_names) in
      Duodb.Database.insert db ~table:"domain_keyword" [| i !dkid; i (idx + 1); i did |])
    keyword_names;
  let dpid = ref 0 in
  for pid = 1 to n_pubs do
    incr dpid;
    let did = 1 + Rng.int rng (List.length domain_names) in
    Duodb.Database.insert db ~table:"domain_publication" [| i !dpid; i did; i pid |]
  done;
  (* Sparse citation graph. *)
  for _ = 1 to 300 do
    let a = 1 + Rng.int rng n_pubs and b = 1 + Rng.int rng n_pubs in
    if a <> b then Duodb.Database.insert db ~table:"cite" [| i a; i b |]
  done;
  db

(* --- study tasks (Appendix A, thresholds scaled to the instance) --- *)

type level =
  | Medium
  | Hard

let level_to_string = function Medium -> "Medium" | Hard -> "Hard"

type task = {
  task_id : string;
  task_level : level;
  task_nlq : string;
  task_sql : string;
  task_literals : Value.t list;
}

let gold task = Duosql.Parser.query_exn ~schema task.task_sql

let mk task_id task_level task_nlq task_sql task_literals =
  { task_id; task_level; task_nlq; task_sql; task_literals }

let nli_study_tasks =
  [
    mk "A1" Medium
      "List all publication titles in the \"SIGMOD\" conference and their year of publication"
      "SELECT publication.title, publication.year FROM conference JOIN \
       publication ON conference.cid = publication.cid WHERE conference.name \
       = 'SIGMOD'"
      [ t "SIGMOD" ];
    mk "A2" Hard
      "List keywords and the number of publications containing each keyword, \
       ordered from most to least publications"
      "SELECT keyword.keyword, COUNT(*) FROM keyword JOIN publication_keyword \
       ON keyword.kid = publication_keyword.kid JOIN publication ON \
       publication_keyword.pid = publication.pid GROUP BY keyword.keyword \
       ORDER BY COUNT(*) DESC"
      [];
    mk "A3" Hard
      "How many publications has each author from organization \"University of Michigan\" published"
      "SELECT author.name, COUNT(*) FROM author JOIN writes ON writes.aid = \
       author.aid JOIN organization ON organization.oid = author.oid JOIN \
       publication ON publication.pid = writes.pid WHERE organization.name = \
       'University of Michigan' GROUP BY author.name"
      [ t "University of Michigan" ];
    mk "A4" Hard
      "List journals with more than 14 publications and the publication \
       count for each journal"
      "SELECT journal.name, COUNT(*) FROM journal JOIN publication ON \
       journal.jid = publication.jid GROUP BY journal.name HAVING COUNT(*) > \
       14"
      [ i 14 ];
    mk "B1" Medium
      "List the titles and years of publications by author \"Wei Zhang\""
      "SELECT publication.title, publication.year FROM publication JOIN \
       writes ON writes.pid = publication.pid JOIN author ON author.aid = \
       writes.aid WHERE author.name = 'Wei Zhang'"
      [ t "Wei Zhang" ];
    mk "B2" Medium
      "List the conference names and homepages in the \"Databases\" domain"
      "SELECT conference.name, conference.homepage FROM conference JOIN \
       domain_conference ON domain_conference.cid = conference.cid JOIN \
       domain ON domain.did = domain_conference.did WHERE domain.name = \
       'Databases'"
      [ t "Databases" ];
    mk "B3" Hard
      "List organizations with more than 5 authors and the number of authors \
       for each organization"
      "SELECT organization.name, COUNT(*) FROM author JOIN organization ON \
       author.oid = organization.oid GROUP BY organization.name HAVING \
       COUNT(*) > 5"
      [ i 5 ];
    mk "B4" Hard
      "List authors from organization \"University of Michigan\" with more than 8 \
       publications and the number of publications for each author"
      "SELECT author.name, COUNT(*) FROM author JOIN writes ON author.aid = \
       writes.aid JOIN organization ON author.oid = organization.oid JOIN \
       publication ON writes.pid = publication.pid WHERE organization.name = \
       'University of Michigan' GROUP BY author.name HAVING COUNT(*) > 8"
      [ t "University of Michigan"; i 8 ];
  ]

let pbe_study_tasks =
  [
    mk "C1" Medium
      "List all publication titles in the \"VLDB\" conference"
      "SELECT publication.title FROM conference JOIN publication ON \
       conference.cid = publication.cid WHERE conference.name = 'VLDB'"
      [ t "VLDB" ];
    mk "C2" Medium
      "List authors in the \"Databases\" domain"
      "SELECT author.name FROM author JOIN domain_author ON author.aid = \
       domain_author.aid JOIN domain ON domain_author.did = domain.did WHERE \
       domain.name = 'Databases'"
      [ t "Databases" ];
    mk "C3" Hard
      "List authors with more than 2 papers in the \"SIGMOD\" conference"
      "SELECT author.name FROM author JOIN writes ON author.aid = writes.aid \
       JOIN publication ON writes.pid = publication.pid JOIN conference ON \
       publication.cid = conference.cid WHERE conference.name = 'SIGMOD' \
       GROUP BY author.name HAVING COUNT(*) > 2"
      [ t "SIGMOD"; i 2 ];
    mk "D1" Medium
      "List the titles of publications published by author \"Maria Garcia\""
      "SELECT publication.title FROM author JOIN writes ON author.aid = \
       writes.aid JOIN publication ON writes.pid = publication.pid WHERE \
       author.name = 'Maria Garcia'"
      [ t "Maria Garcia" ];
    mk "D2" Medium
      "List the names of organizations in continent \"Europe\""
      "SELECT organization.name FROM organization WHERE \
       organization.continent = 'Europe'"
      [ t "Europe" ];
    mk "D3" Hard
      "List authors with more than 3 papers in the \"KDD\" conference"
      "SELECT author.name FROM author JOIN writes ON author.aid = writes.aid \
       JOIN publication ON writes.pid = publication.pid JOIN conference ON \
       publication.cid = conference.cid WHERE conference.name = 'KDD' GROUP \
       BY author.name HAVING COUNT(*) > 3"
      [ t "KDD"; i 3 ];
  ]
