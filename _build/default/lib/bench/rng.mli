(** Deterministic splitmix64 PRNG.

    All workload generation and user simulation is seeded through this
    module so every experiment is exactly reproducible run-to-run without
    touching the global [Random] state. *)

type t

val create : int -> t

(** Uniform in [0, bound). [bound > 0]. *)
val int : t -> int -> int

(** Uniform in [lo, hi] inclusive. *)
val range : t -> int -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

(** Bernoulli draw. *)
val bool : t -> float -> bool

(** Uniform element of a non-empty list. *)
val choose : t -> 'a list -> 'a

(** [sample t k xs] draws [k] distinct elements (or all when
    [k >= length]), preserving no particular order. *)
val sample : t -> int -> 'a list -> 'a list

(** Fisher-Yates shuffle. *)
val shuffle : t -> 'a list -> 'a list

(** Derive an independent generator (for per-task streams). *)
val split : t -> t
