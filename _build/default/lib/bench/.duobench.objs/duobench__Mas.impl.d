lib/bench/mas.ml: Duodb Duosql List Printf Rng String
