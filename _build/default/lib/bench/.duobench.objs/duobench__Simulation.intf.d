lib/bench/simulation.mli: Duocore Spider_gen Tsq_synth
