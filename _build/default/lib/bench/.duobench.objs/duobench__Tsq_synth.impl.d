lib/bench/tsq_synth.ml: Array Duocore Duodb Duoengine Duosql Fun List Option Rng
