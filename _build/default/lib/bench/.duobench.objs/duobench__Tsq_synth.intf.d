lib/bench/tsq_synth.mli: Duocore Duodb Duosql Rng
