lib/bench/mas.mli: Duodb Duosql
