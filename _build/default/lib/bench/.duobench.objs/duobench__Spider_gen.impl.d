lib/bench/spider_gen.ml: Array Buffer Duocore Duodb Duoengine Duosql List Option Printf Rng String
