lib/bench/rng.mli:
