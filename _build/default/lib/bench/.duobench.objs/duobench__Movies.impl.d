lib/bench/movies.ml: Duodb Duosql
