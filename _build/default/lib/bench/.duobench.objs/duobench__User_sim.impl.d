lib/bench/user_sim.ml: Float List Rng String
