lib/bench/movies.mli: Duodb Duosql
