lib/bench/simulation.ml: Duocore Duopbe Hashtbl List Option Rng Spider_gen Tsq_synth
