lib/bench/rng.ml: Array Int64 List
