lib/bench/spider_gen.mli: Duodb Duosql
