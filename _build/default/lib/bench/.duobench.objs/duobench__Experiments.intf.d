lib/bench/experiments.mli: Format
