lib/bench/study.ml: Duocore Duoengine Duopbe Duosql Float Hashtbl List Mas Option Rng String Tsq_synth User_sim
