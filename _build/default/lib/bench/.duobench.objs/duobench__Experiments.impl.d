lib/bench/experiments.ml: Duocore Duodb Duoengine Duosql Format Hashtbl Lazy List Mas Movies Printf Rng Simulation Spider_gen String Study Tsq_synth
