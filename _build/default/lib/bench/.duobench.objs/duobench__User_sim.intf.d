lib/bench/user_sim.mli: Rng
