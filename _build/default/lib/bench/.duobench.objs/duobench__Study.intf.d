lib/bench/study.mli: User_sim
