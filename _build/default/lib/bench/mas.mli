(** The Microsoft Academic Search (MAS) database of the user studies
    (Section 5.1, Table 5): the 15-table schema of Li & Jagadish's NLI
    work, populated with a seeded synthetic instance, plus the study task
    suites of Appendix A (Tables 7 and 8).

    The original MAS dump is not redistributable, so the instance is
    synthetic; the schema, FK graph, and task set match the paper, and
    data volumes are scaled so every task has a non-empty, discriminative
    answer (HAVING thresholds are adjusted to the scaled data — e.g. the
    paper's "more than 500 publications" journal filter becomes "more than
    30"). *)

val schema : Duodb.Schema.t

(** Build the instance. Same seed, same database. *)
val database : ?seed:int -> unit -> Duodb.Database.t

type level =
  | Medium
  | Hard

type task = {
  task_id : string;  (** "A1" ... "D3" *)
  task_level : level;
  task_nlq : string;  (** English description, as the user would type it *)
  task_sql : string;  (** gold SQL (parsed against {!schema}) *)
  task_literals : Duodb.Value.t list;  (** the tagged literal set L *)
}

val gold : task -> Duosql.Ast.query

(** Tasks A1-A4, B1-B4 (Table 7: study vs. NLI). *)
val nli_study_tasks : task list

(** Tasks C1-C3, D1-D3 (Table 8: study vs. PBE). *)
val pbe_study_tasks : task list

val level_to_string : level -> string
