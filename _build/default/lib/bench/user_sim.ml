type profile = {
  sql_reader : bool;
  speed : float;
}

let budget_s = 300.0

let participants ~seed =
  let rng = Rng.create seed in
  List.init 16 (fun i ->
      { sql_reader = i < 10; speed = 0.75 +. (Rng.float rng *. 0.5) })

type trial = {
  success : bool;
  time_s : float;
  examples_used : int;
}

let uniform rng lo hi = lo +. (Rng.float rng *. (hi -. lo))

let words s =
  List.length (List.filter (fun w -> w <> "") (String.split_on_char ' ' s))

let typing_time rng profile nlq =
  float_of_int (words nlq) *. uniform rng 1.2 2.2 *. profile.speed

let tuple_entry_time rng profile n =
  float_of_int n *. uniform rng 8.0 18.0 *. profile.speed

let filter_review_time rng profile = uniform rng 15.0 30.0 *. profile.speed

let inspect_candidates rng profile ~elapsed ~rank ~available =
  let per_candidate () =
    (if profile.sql_reader then uniform rng 4.0 12.0 else uniform rng 8.0 20.0)
    *. profile.speed
  in
  let rec scan i elapsed =
    if elapsed > budget_s then
      { success = false; time_s = budget_s; examples_used = 0 }
    else
      match rank with
      | Some r when i = r ->
          (* found it; small confirmation cost *)
          let t = elapsed +. (uniform rng 2.0 6.0 *. profile.speed) in
          { success = t <= budget_s; time_s = Float.min t budget_s; examples_used = 0 }
      | _ ->
          if i > available then
            (* exhausted the list without finding the gold query *)
            { success = false; time_s = Float.min elapsed budget_s; examples_used = 0 }
          else scan (i + 1) (elapsed +. per_candidate ())
  in
  scan 1 elapsed
