(** The movie database of the paper's running example (Section 2.1):
    actor / movies / starring, sized so the motivating queries CQ1-CQ3 are
    distinguishable.  Used by the examples and the Table 4 demonstrations. *)

val schema : Duodb.Schema.t
val database : unit -> Duodb.Database.t

(** Parse a SQL string against the movie schema (raises on error). *)
val parse : string -> Duosql.Ast.query
