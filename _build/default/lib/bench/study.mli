(** The two within-subject user studies (Sections 5.2 and 5.3), run with
    simulated participants.

    16 users; in each study half performs the first task set on Duoquest
    and the second on the baseline, the other half the reverse, so every
    (task, system) pair collects 8 trials (Section 5.1.3).

    Duoquest trials: the user types the NLQ, supplies 1-2 example tuples
    from partial domain knowledge (the fact bank is emulated by
    {!Tsq_synth.user_tuples}), then scans the streamed candidates; one TSQ
    refinement round (an extra example) is attempted when time remains,
    mirroring the interaction loop of Figure 1.

    NLI trials skip the TSQ; PBE trials iterate example tuples through the
    SQuID-style baseline and review its filter explanations. *)

type arm = {
  arm_system : string;
  arm_task : string;  (** task id *)
  arm_trials : User_sim.trial list;
}

type study = {
  study_name : string;
  arms : arm list;  (** one per (system, task) *)
}

(** Fig. 5/6 source: Duoquest vs NLI on tasks A1-B4. *)
val nli_study : ?seed:int -> unit -> study

(** Fig. 7/8/9 source: Duoquest vs PBE on tasks C1-D3. *)
val pbe_study : ?seed:int -> unit -> study

(** Per-arm aggregates. *)
val success_rate : arm -> float

(** Mean time over successful trials ([None] when none succeeded). *)
val mean_success_time : arm -> float option

(** Mean example count over successful trials. *)
val mean_examples : arm -> float option
