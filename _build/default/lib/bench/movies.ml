module Schema = Duodb.Schema
module Value = Duodb.Value
module Datatype = Duodb.Datatype

let schema =
  Schema.make ~name:"movies_db"
    [
      Schema.table "actor"
        [ ("aid", Datatype.Number); ("name", Datatype.Text);
          ("gender", Datatype.Text); ("birth_yr", Datatype.Number);
          ("birthplace", Datatype.Text); ("debut_yr", Datatype.Number) ]
        ~pk:[ "aid" ];
      Schema.table "movies"
        [ ("mid", Datatype.Number); ("name", Datatype.Text);
          ("year", Datatype.Number); ("revenue", Datatype.Number) ]
        ~pk:[ "mid" ];
      Schema.table "starring"
        [ ("sid", Datatype.Number); ("aid", Datatype.Number);
          ("mid", Datatype.Number) ]
        ~pk:[ "sid" ];
    ]
    [
      Schema.fk ("starring", "aid") ("actor", "aid");
      Schema.fk ("starring", "mid") ("movies", "mid");
    ]

let i n = Value.Int n
let t s = Value.Text s

let database () =
  let db = Duodb.Database.create schema in
  Duodb.Database.insert_all db ~table:"actor"
    [
      [| i 1; t "Tom Hanks"; t "male"; i 1956; t "Concord"; i 1980 |];
      [| i 2; t "Sandra Bullock"; t "female"; i 1964; t "Arlington"; i 1987 |];
      [| i 3; t "Brad Pitt"; t "male"; i 1963; t "Shawnee"; i 1987 |];
      [| i 4; t "Meryl Streep"; t "female"; i 1949; t "Summit"; i 1971 |];
      [| i 5; t "Leonardo DiCaprio"; t "male"; i 1974; t "Los Angeles"; i 1991 |];
      [| i 6; t "Kate Winslet"; t "female"; i 1975; t "Reading"; i 1994 |];
    ];
  Duodb.Database.insert_all db ~table:"movies"
    [
      [| i 10; t "Forrest Gump"; i 1994; i 678 |];
      [| i 11; t "Gravity"; i 2013; i 723 |];
      [| i 12; t "Seven"; i 1995; i 327 |];
      [| i 13; t "The Post"; i 2017; i 193 |];
      [| i 14; t "Titanic"; i 1997; i 2187 |];
      [| i 15; t "Inception"; i 2010; i 836 |];
      [| i 16; t "Philadelphia"; i 1993; i 206 |];
    ];
  Duodb.Database.insert_all db ~table:"starring"
    [
      [| i 100; i 1; i 10 |];
      [| i 101; i 2; i 11 |];
      [| i 102; i 3; i 12 |];
      [| i 103; i 4; i 13 |];
      [| i 104; i 5; i 14 |];
      [| i 105; i 5; i 15 |];
      [| i 106; i 1; i 13 |];
      [| i 107; i 1; i 16 |];
      [| i 108; i 6; i 14 |];
    ];
  db

let parse sql = Duosql.Parser.query_exn ~schema sql
