(** Simulated study participants (substituting the paper's 16 human
    subjects, Section 5.1.2).

    A user carries a speed multiplier and an interaction style: users with
    SQL experience read candidate queries directly; novices rely on the
    "Query Preview" result sample, which takes longer per candidate
    (Section 5.1.4).  All stochastic choices are drawn from a seeded
    {!Rng.t}, so studies are reproducible.

    Cost model (seconds, scaled by the user's speed):
    - typing the NLQ: per-word cost;
    - entering one TSQ example tuple through autocomplete: per-tuple cost;
    - inspecting one candidate: cheap for SQL readers, expensive for
      preview users;
    - reviewing a PBE filter list: flat cost per round.

    A trial succeeds when the user identifies the gold query within the
    5-minute budget (Section 5.1.3). *)

type profile = {
  sql_reader : bool;
  speed : float;  (** multiplier around 1.0 *)
}

(** The 16 participants of the studies: 10 with SQL experience, 6 without
    (Section 5.1.2), speeds varied deterministically from [seed]. *)
val participants : seed:int -> profile list

type trial = {
  success : bool;
  time_s : float;  (** total interaction time, capped at the budget *)
  examples_used : int;
}

val budget_s : float

(** [inspect_candidates rng profile ~elapsed ~rank ~available] walks the
    ranked list: returns the trial outcome given the gold query's rank
    ([None] = not in the list) and the number of candidates available. *)
val inspect_candidates :
  Rng.t -> profile -> elapsed:float -> rank:int option -> available:int -> trial

val typing_time : Rng.t -> profile -> string -> float
val tuple_entry_time : Rng.t -> profile -> int -> float
val filter_review_time : Rng.t -> profile -> float
