module Enumerate = Duocore.Enumerate
module Duoquest = Duocore.Duoquest
module Tsq = Duocore.Tsq

type arm = {
  arm_system : string;
  arm_task : string;
  arm_trials : User_sim.trial list;
}

type study = {
  study_name : string;
  arms : arm list;
}

let study_config =
  { Enumerate.default_config with
    Enumerate.max_pops = 25_000;
    max_candidates = 60;
    time_budget_s = 15.0 }

(* Synthesis outcomes depend only on (task, tsq); memoize across the 8
   simulated users of an arm when their sketches coincide. *)
let run_duoquest session (task : Mas.task) tsq =
  Duoquest.synthesize ~config:study_config ?tsq
    ~literals:task.Mas.task_literals session ~nlq:task.Mas.task_nlq ()

let duoquest_trial rng session db (task : Mas.task) profile =
  let gold = Mas.gold task in
  let typing = User_sim.typing_time rng profile task.Mas.task_nlq in
  let n_examples = if Rng.bool rng 0.5 then 1 else 2 in
  let make_tsq n =
    match Tsq_synth.user_tuples rng db gold ~n with
    | None -> None
    | Some tuples ->
        (match Duoengine.Executor.output_types db gold with
        | Ok types ->
            Some
              (Tsq.make ~types ~tuples
                 ~sorted:(gold.Duosql.Ast.q_order_by <> [])
                 ~limit:(Option.value ~default:0 gold.Duosql.Ast.q_limit)
                 ())
        | Error _ -> None)
  in
  let attempt n_examples elapsed =
    let tsq = make_tsq n_examples in
    let entry = User_sim.tuple_entry_time rng profile n_examples in
    let outcome = run_duoquest session task tsq in
    let rank = Duoquest.rank_of outcome ~gold in
    let trial =
      User_sim.inspect_candidates rng profile ~elapsed:(elapsed +. entry) ~rank
        ~available:(List.length outcome.Enumerate.out_candidates)
    in
    { trial with User_sim.examples_used = n_examples }
  in
  let first = attempt n_examples typing in
  if first.User_sim.success || first.User_sim.time_s >= User_sim.budget_s -. 30.0
  then first
  else begin
    (* refinement round: add one more example (Figure 1's loop) *)
    let second = attempt (n_examples + 1) first.User_sim.time_s in
    { second with
      User_sim.examples_used = n_examples + 1;
      time_s = Float.min User_sim.budget_s second.User_sim.time_s }
  end

let nli_trial rng session (task : Mas.task) profile =
  let gold = Mas.gold task in
  let typing = User_sim.typing_time rng profile task.Mas.task_nlq in
  let outcome =
    Duoquest.synthesize ~config:study_config ~mode:`Nli
      ~literals:task.Mas.task_literals session ~nlq:task.Mas.task_nlq ()
  in
  let rank = Duoquest.rank_of outcome ~gold in
  User_sim.inspect_candidates rng profile ~elapsed:typing ~rank
    ~available:(List.length outcome.Enumerate.out_candidates)

let pbe_trial rng db (task : Mas.task) profile =
  let gold = Mas.gold task in
  (* Iteratively add examples until the filter explanations cover the gold
     predicates, the fact bank runs dry, or time runs out. *)
  let rec rounds n elapsed =
    if n > 5 || elapsed >= User_sim.budget_s then
      { User_sim.success = false; time_s = User_sim.budget_s; examples_used = n - 1 }
    else
      let entry = User_sim.tuple_entry_time rng profile n in
      let review = User_sim.filter_review_time rng profile in
      let elapsed = elapsed +. entry +. review in
      match Tsq_synth.user_tuples rng db gold ~n with
      | None -> { User_sim.success = false; time_s = User_sim.budget_s; examples_used = n }
      | Some tuples -> (
          match Duopbe.Squid.discover db tuples with
          | Some result when Duopbe.Squid.correct_for result ~gold ->
              { User_sim.success = elapsed <= User_sim.budget_s;
                time_s = Float.min elapsed User_sim.budget_s;
                examples_used = n }
          | Some _ | None -> rounds (n + 1) elapsed)
  in
  rounds 2 0.0

let run_study study_name tasks baseline_trial ~seed =
  let db = Mas.database () in
  let session = Duoquest.create_session db in
  let users = User_sim.participants ~seed in
  let rng = Rng.create (seed * 31 + 7) in
  let half = List.length tasks / 2 in
  let set_a = List.filteri (fun i _ -> i < half) tasks in
  let set_b = List.filteri (fun i _ -> i >= half) tasks in
  let arms = Hashtbl.create 32 in
  let record system (task : Mas.task) trial =
    let key = (system, task.Mas.task_id) in
    let cur = Option.value ~default:[] (Hashtbl.find_opt arms key) in
    Hashtbl.replace arms key (trial :: cur)
  in
  List.iteri
    (fun i profile ->
      let urng = Rng.split rng in
      let dq_set, base_set = if i mod 2 = 0 then (set_a, set_b) else (set_b, set_a) in
      List.iter
        (fun task -> record "Duoquest" task (duoquest_trial urng session db task profile))
        dq_set;
      List.iter
        (fun task -> record "baseline" task (baseline_trial urng session db task profile))
        base_set)
    users;
  let arm_list =
    Hashtbl.fold
      (fun (system, task) trials acc ->
        { arm_system = system; arm_task = task; arm_trials = trials } :: acc)
      arms []
  in
  let arm_list =
    List.sort
      (fun a b ->
        match String.compare a.arm_task b.arm_task with
        | 0 -> String.compare a.arm_system b.arm_system
        | c -> c)
      arm_list
  in
  { study_name; arms = arm_list }

let nli_study ?(seed = 1234) () =
  run_study "user study vs NLI" Mas.nli_study_tasks
    (fun rng session _db task profile -> nli_trial rng session task profile)
    ~seed

let pbe_study ?(seed = 5678) () =
  run_study "user study vs PBE" Mas.pbe_study_tasks
    (fun rng _session db task profile -> pbe_trial rng db task profile)
    ~seed

let success_rate arm =
  let n = List.length arm.arm_trials in
  if n = 0 then 0.0
  else
    float_of_int (List.length (List.filter (fun t -> t.User_sim.success) arm.arm_trials))
    /. float_of_int n

let mean_success_time arm =
  match List.filter (fun t -> t.User_sim.success) arm.arm_trials with
  | [] -> None
  | ok ->
      Some
        (List.fold_left (fun acc t -> acc +. t.User_sim.time_s) 0.0 ok
        /. float_of_int (List.length ok))

let mean_examples arm =
  match List.filter (fun t -> t.User_sim.success) arm.arm_trials with
  | [] -> None
  | ok ->
      Some
        (List.fold_left (fun acc t -> acc +. float_of_int t.User_sim.examples_used) 0.0 ok
        /. float_of_int (List.length ok))
