lib/sqlfront/equal.ml: Ast Bool Int List Option String
