lib/sqlfront/lexer.mli: Duodb
