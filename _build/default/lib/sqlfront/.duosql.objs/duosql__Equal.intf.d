lib/sqlfront/equal.mli: Ast
