lib/sqlfront/lexer.ml: Buffer Duodb List Printf String
