lib/sqlfront/parser.ml: Array Ast Duodb Lexer List Option Printf String
