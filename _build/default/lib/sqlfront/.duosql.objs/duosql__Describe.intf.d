lib/sqlfront/describe.mli: Ast
