lib/sqlfront/ast.mli: Duodb
