lib/sqlfront/describe.ml: Ast Buffer Duodb List Option Printf String
