lib/sqlfront/pretty.ml: Ast Buffer Duodb Format List Option Printf String
