lib/sqlfront/ast.ml: Duodb Hashtbl List Option String
