lib/sqlfront/parser.mli: Ast Duodb
