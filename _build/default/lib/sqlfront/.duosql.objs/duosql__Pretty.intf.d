lib/sqlfront/pretty.mli: Ast Format
