(** Render a query as an English sentence.

    Addresses the paper's first future-work item (Section 7): users without
    SQL knowledge need to validate candidate queries without reading SQL.
    The front-end shows this description next to each candidate, alongside
    the result preview. *)

(** [query q] — e.g. ["the name of each movie whose year is before 1995,
    ordered by year from lowest to highest"]. *)
val query : Ast.query -> string

(** Describe a single projection ("the number of rows", "the largest
    revenue"). *)
val projection : Ast.proj -> string

(** Describe one predicate ("year is at least 1995"). *)
val predicate : Ast.pred -> string
