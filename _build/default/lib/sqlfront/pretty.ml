open Ast

let col_ref c = c.cr_table ^ "." ^ c.cr_col

let agg_arg ?(distinct = false) = function
  | None -> "*"
  | Some c -> if distinct then "DISTINCT " ^ col_ref c else col_ref c

let proj p =
  match p.p_agg with
  | None -> (
      match p.p_col with
      | Some c -> if p.p_distinct then "DISTINCT " ^ col_ref c else col_ref c
      | None -> "*")
  | Some a ->
      Printf.sprintf "%s(%s)" (agg_to_string a) (agg_arg ~distinct:p.p_distinct p.p_col)

let pred_lhs p =
  match p.pr_agg with
  | None -> (
      match p.pr_col with
      | Some c -> col_ref c
      | None -> "*")
  | Some a -> Printf.sprintf "%s(%s)" (agg_to_string a) (agg_arg p.pr_col)

let pred p =
  match p.pr_rhs with
  | Cmp (op, v) ->
      Printf.sprintf "%s %s %s" (pred_lhs p) (cmp_to_string op) (Duodb.Value.to_sql v)
  | Between (lo, hi) ->
      Printf.sprintf "%s BETWEEN %s AND %s" (pred_lhs p) (Duodb.Value.to_sql lo)
        (Duodb.Value.to_sql hi)

let condition c =
  let conn = match c.c_conn with And -> " AND " | Or -> " OR " in
  String.concat conn (List.map pred c.c_preds)

(* Order the FROM tables so that each table after the first is connected to
   the already-emitted prefix by some join edge, enabling a left-deep
   [JOIN ... ON] chain.  Falls back to declaration order if the join graph
   is not connected (an invalid clause, preserved for debuggability). *)
let from_clause f =
  match f.f_tables with
  | [] -> invalid_arg "Pretty.from_clause: empty FROM"
  | [ t ] -> t
  | first :: rest ->
      let edge_touches seen e =
        let a = e.j_from.cr_table and b = e.j_to.cr_table in
        if List.mem a seen && not (List.mem b seen) then Some (b, e)
        else if List.mem b seen && not (List.mem a seen) then Some (a, e)
        else None
      in
      let buf = Buffer.create 64 in
      Buffer.add_string buf first;
      let rec emit seen pending edges =
        if pending = [] then ()
        else
          match List.find_map (edge_touches seen) edges with
          | Some (next, e) when List.mem next pending ->
              Buffer.add_string buf
                (Printf.sprintf " JOIN %s ON %s = %s" next (col_ref e.j_from)
                   (col_ref e.j_to));
              emit (next :: seen)
                (List.filter (fun t -> not (String.equal t next)) pending)
                (List.filter (fun e' -> e' != e) edges)
          | Some _ | None ->
              (* Disconnected join graph: emit remaining tables bare. *)
              List.iter (fun t -> Buffer.add_string buf (" JOIN " ^ t)) pending
      in
      emit [ first ] rest f.f_joins;
      Buffer.contents buf

let order_item o =
  let lhs =
    match o.o_agg with
    | None -> (
        match o.o_col with
        | Some c -> col_ref c
        | None -> "*")
    | Some a -> Printf.sprintf "%s(%s)" (agg_to_string a) (agg_arg o.o_col)
  in
  match o.o_dir with Asc -> lhs ^ " ASC" | Desc -> lhs ^ " DESC"

let query q =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  if q.q_distinct then Buffer.add_string buf "DISTINCT ";
  Buffer.add_string buf (String.concat ", " (List.map proj q.q_select));
  Buffer.add_string buf (" FROM " ^ from_clause q.q_from);
  Option.iter (fun c -> Buffer.add_string buf (" WHERE " ^ condition c)) q.q_where;
  if q.q_group_by <> [] then
    Buffer.add_string buf
      (" GROUP BY " ^ String.concat ", " (List.map col_ref q.q_group_by));
  Option.iter (fun c -> Buffer.add_string buf (" HAVING " ^ condition c)) q.q_having;
  if q.q_order_by <> [] then
    Buffer.add_string buf
      (" ORDER BY " ^ String.concat ", " (List.map order_item q.q_order_by));
  Option.iter (fun n -> Buffer.add_string buf (" LIMIT " ^ string_of_int n)) q.q_limit;
  Buffer.contents buf

let pp_query ppf q = Format.pp_print_string ppf (query q)
