(** Abstract syntax for the paper's task scope (Section 2.5):
    select-project-join-aggregate queries with grouping, HAVING, sorting and
    LIMIT; flat predicate lists under a single logical connective; inner
    joins on FK-PK edges.  Set operations, nested subqueries, and self-joins
    are outside the scope (Section 3.3.6), so a table appears at most once
    in a FROM clause and column references name their table directly. *)

type col_ref = {
  cr_table : string;
  cr_col : string;
}

type agg =
  | Count
  | Sum
  | Avg
  | Min
  | Max

(** A projection: an optional aggregate applied to a column, or to [*]
    ([p_col = None], only valid with [Count]).  [p_distinct] renders as
    [COUNT(DISTINCT c)]. *)
type proj = {
  p_agg : agg option;
  p_col : col_ref option;
  p_distinct : bool;
}

type cmp =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Like
  | Not_like

(** Right-hand side of a predicate: comparison against a literal, or
    [BETWEEN lo AND hi].  Column-to-column comparisons only occur in join
    conditions, which live in the FROM clause. *)
type pred_rhs =
  | Cmp of cmp * Duodb.Value.t
  | Between of Duodb.Value.t * Duodb.Value.t

(** A selection predicate.  [pr_agg] is only meaningful inside HAVING;
    [pr_col = None] stands for [COUNT of all rows] and also requires an aggregate. *)
type pred = {
  pr_agg : agg option;
  pr_col : col_ref option;
  pr_rhs : pred_rhs;
}

type connective =
  | And
  | Or

(** A flat predicate list joined by a single connective (Section 2.5
    disallows mixed AND/OR nesting). *)
type condition = {
  c_preds : pred list;
  c_conn : connective;
}

type dir =
  | Asc
  | Desc

type order_item = {
  o_agg : agg option;
  o_col : col_ref option;  (** [None] = [COUNT of all rows], requires [o_agg] *)
  o_dir : dir;
}

(** An equi-join on a FK-PK edge; direction is not semantically
    meaningful. *)
type join_edge = {
  j_from : col_ref;
  j_to : col_ref;
}

(** Tables joined along [f_joins]; a valid clause has
    [length f_joins = length f_tables - 1] and forms a tree. *)
type from_clause = {
  f_tables : string list;
  f_joins : join_edge list;
}

type query = {
  q_distinct : bool;
  q_select : proj list;
  q_from : from_clause;
  q_where : condition option;
  q_group_by : col_ref list;
  q_having : condition option;
  q_order_by : order_item list;
  q_limit : int option;
}

(** {1 Constructors and accessors} *)

val col : string -> string -> col_ref

(** Plain column projection. *)
val proj_col : col_ref -> proj

(** Aggregated projection. *)
val proj_agg : agg -> col_ref -> proj

(** [COUNT of all rows]. *)
val count_star : proj

(** Simple comparison predicate on an unaggregated column. *)
val pred : col_ref -> cmp -> Duodb.Value.t -> pred

val between : col_ref -> Duodb.Value.t -> Duodb.Value.t -> pred

(** Single-table FROM clause. *)
val from_table : string -> from_clause

(** Minimal query: [SELECT projs FROM from_clause]. *)
val simple : proj list -> from_clause -> query

(** {1 Queries over the AST} *)

(** All column references appearing anywhere in the query except the FROM
    clause (SELECT, WHERE, GROUP BY, HAVING, ORDER BY) — the set Algorithm 2
    builds join paths from. *)
val referenced_columns : query -> col_ref list

(** Distinct table names among {!referenced_columns}. *)
val referenced_tables : query -> string list

(** All literal values appearing in WHERE/HAVING predicates, plus the LIMIT
    value (the paper's literal set [L] covers every constant in the desired
    query). *)
val literals : query -> Duodb.Value.t list

(** True when some projection carries an aggregate. *)
val has_aggregate : query -> bool

val equal_col_ref : col_ref -> col_ref -> bool
val equal_agg : agg option -> agg option -> bool
val equal_pred : pred -> pred -> bool
val agg_to_string : agg -> string
val cmp_to_string : cmp -> string
