(** Recursive-descent parser for the SPJA dialect of {!Ast}.

    Accepted grammar (keywords case-insensitive):

    {v
    query   ::= SELECT [DISTINCT] projs FROM from
                [WHERE cond] [GROUP BY cols] [HAVING cond]
                [ORDER BY orders] [LIMIT int]
    projs   ::= proj ("," proj)*
    proj    ::= [DISTINCT] colref | agg "(" [DISTINCT] (colref | "*") ")"
    from    ::= tref (JOIN tref ON colref "=" colref)*
    tref    ::= ident [AS ident | ident]          (alias optional)
    cond    ::= pred ((AND | OR) pred)*           (single connective)
    pred    ::= lhs op literal | lhs BETWEEN literal AND literal
                | lhs [NOT] LIKE literal
    lhs     ::= colref | agg "(" (colref | "*") ")"
    colref  ::= ident "." ident | ident
    v}

    Aliases are resolved away: the produced AST refers to real table names.
    Unqualified column names are resolved against the FROM-clause tables,
    which requires the [schema] argument; qualified references work without
    it.  Mixing AND and OR in one condition is rejected (task scope,
    Section 2.5). *)

val query : ?schema:Duodb.Schema.t -> string -> (Ast.query, string) result

(** Like {!query} but raises [Failure] on parse errors; convenient for
    hard-coded task definitions. *)
val query_exn : ?schema:Duodb.Schema.t -> string -> Ast.query
