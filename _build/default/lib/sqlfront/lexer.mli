(** Tokenizer for the SQL dialect accepted by {!Parser}. *)

type token =
  | Ident of string  (** identifier or keyword, original casing preserved *)
  | Number of Duodb.Value.t  (** [Int] or [Float] literal *)
  | String of string  (** contents of a ['...'] or ["..."] literal *)
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Star
  | Op of string  (** one of [=], [!=], [<>], [<], [<=], [>], [>=] *)

(** [tokenize s] lexes [s]; [Error msg] reports the first bad character or
    unterminated string. *)
val tokenize : string -> (token list, string) result

val token_to_string : token -> string
