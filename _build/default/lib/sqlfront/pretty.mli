(** Rendering of {!Ast} queries to SQL text.

    Output uses fully qualified [table.column] references and renders join
    paths as a left-deep chain of [JOIN ... ON] clauses; {!Parser.query}
    parses everything this module prints (round-trip property tested in the
    suite). *)

val col_ref : Ast.col_ref -> string
val proj : Ast.proj -> string
val pred : Ast.pred -> string
val condition : Ast.condition -> string
val from_clause : Ast.from_clause -> string
val order_item : Ast.order_item -> string

(** Render a complete query on one line. *)
val query : Ast.query -> string

val pp_query : Format.formatter -> Ast.query -> unit
