type col_ref = {
  cr_table : string;
  cr_col : string;
}

type agg =
  | Count
  | Sum
  | Avg
  | Min
  | Max

type proj = {
  p_agg : agg option;
  p_col : col_ref option;
  p_distinct : bool;
}

type cmp =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Like
  | Not_like

type pred_rhs =
  | Cmp of cmp * Duodb.Value.t
  | Between of Duodb.Value.t * Duodb.Value.t

type pred = {
  pr_agg : agg option;
  pr_col : col_ref option;
  pr_rhs : pred_rhs;
}

type connective =
  | And
  | Or

type condition = {
  c_preds : pred list;
  c_conn : connective;
}

type dir =
  | Asc
  | Desc

type order_item = {
  o_agg : agg option;
  o_col : col_ref option;
  o_dir : dir;
}

type join_edge = {
  j_from : col_ref;
  j_to : col_ref;
}

type from_clause = {
  f_tables : string list;
  f_joins : join_edge list;
}

type query = {
  q_distinct : bool;
  q_select : proj list;
  q_from : from_clause;
  q_where : condition option;
  q_group_by : col_ref list;
  q_having : condition option;
  q_order_by : order_item list;
  q_limit : int option;
}

let col cr_table cr_col = { cr_table; cr_col }
let proj_col c = { p_agg = None; p_col = Some c; p_distinct = false }
let proj_agg a c = { p_agg = Some a; p_col = Some c; p_distinct = false }
let count_star = { p_agg = Some Count; p_col = None; p_distinct = false }
let pred c op v = { pr_agg = None; pr_col = Some c; pr_rhs = Cmp (op, v) }
let between c lo hi = { pr_agg = None; pr_col = Some c; pr_rhs = Between (lo, hi) }
let from_table t = { f_tables = [ t ]; f_joins = [] }

let simple projs from =
  {
    q_distinct = false;
    q_select = projs;
    q_from = from;
    q_where = None;
    q_group_by = [];
    q_having = None;
    q_order_by = [];
    q_limit = None;
  }

let equal_col_ref a b =
  String.equal a.cr_table b.cr_table && String.equal a.cr_col b.cr_col

let equal_agg a b =
  match a, b with
  | None, None -> true
  | Some x, Some y -> x = y
  | None, Some _ | Some _, None -> false

let equal_rhs a b =
  match a, b with
  | Cmp (o1, v1), Cmp (o2, v2) -> o1 = o2 && Duodb.Value.equal v1 v2
  | Between (l1, h1), Between (l2, h2) ->
      Duodb.Value.equal l1 l2 && Duodb.Value.equal h1 h2
  | Cmp _, Between _ | Between _, Cmp _ -> false

let equal_pred a b =
  equal_agg a.pr_agg b.pr_agg
  && (match a.pr_col, b.pr_col with
     | None, None -> true
     | Some x, Some y -> equal_col_ref x y
     | None, Some _ | Some _, None -> false)
  && equal_rhs a.pr_rhs b.pr_rhs

let condition_cols c =
  List.filter_map (fun p -> p.pr_col) c.c_preds

let referenced_columns q =
  let select = List.filter_map (fun p -> p.p_col) q.q_select in
  let where = Option.fold ~none:[] ~some:condition_cols q.q_where in
  let having = Option.fold ~none:[] ~some:condition_cols q.q_having in
  let order = List.filter_map (fun o -> o.o_col) q.q_order_by in
  select @ where @ q.q_group_by @ having @ order

let referenced_tables q =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun c ->
      if Hashtbl.mem seen c.cr_table then None
      else begin
        Hashtbl.add seen c.cr_table ();
        Some c.cr_table
      end)
    (referenced_columns q)

let condition_literals c =
  List.concat_map
    (fun p ->
      match p.pr_rhs with
      | Cmp (_, v) -> [ v ]
      | Between (lo, hi) -> [ lo; hi ])
    c.c_preds

let literals q =
  Option.fold ~none:[] ~some:condition_literals q.q_where
  @ Option.fold ~none:[] ~some:condition_literals q.q_having
  @ (match q.q_limit with
    | Some n when n > 0 -> [ Duodb.Value.Int n ]
    | Some _ | None -> [])

let has_aggregate q = List.exists (fun p -> Option.is_some p.p_agg) q.q_select

let agg_to_string = function
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"

let cmp_to_string = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Like -> "LIKE"
  | Not_like -> "NOT LIKE"
