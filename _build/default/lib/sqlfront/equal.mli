(** Structural query equivalence for the benchmark's exact-match metric.

    Two queries are considered equal when they agree on: the DISTINCT flag;
    the projection list {e in order} (the TSQ fixes column order); the FROM
    tables and join edges as sets (join edge direction ignored); WHERE and
    HAVING predicates as sets under the same connective (a single-predicate
    condition matches under either connective); GROUP BY columns as a set;
    the ORDER BY list in order; and LIMIT. *)

val queries : Ast.query -> Ast.query -> bool

(** Set-equality of two conditions as described above. *)
val conditions : Ast.condition option -> Ast.condition option -> bool
