open Ast

(* Multiset equality under an equivalence predicate. *)
let multiset_equal eq xs ys =
  let rec remove x = function
    | [] -> None
    | y :: rest -> if eq x y then Some rest else Option.map (fun r -> y :: r) (remove x rest)
  in
  let rec go xs ys =
    match xs with
    | [] -> ys = []
    | x :: rest -> (
        match remove x ys with
        | None -> false
        | Some ys' -> go rest ys')
  in
  List.length xs = List.length ys && go xs ys

let equal_proj a b =
  equal_agg a.p_agg b.p_agg
  && Bool.equal a.p_distinct b.p_distinct
  && (match a.p_col, b.p_col with
     | None, None -> true
     | Some x, Some y -> equal_col_ref x y
     | None, Some _ | Some _, None -> false)

let equal_join a b =
  (equal_col_ref a.j_from b.j_from && equal_col_ref a.j_to b.j_to)
  || (equal_col_ref a.j_from b.j_to && equal_col_ref a.j_to b.j_from)

let equal_order a b =
  equal_agg a.o_agg b.o_agg
  && a.o_dir = b.o_dir
  && (match a.o_col, b.o_col with
     | None, None -> true
     | Some x, Some y -> equal_col_ref x y
     | None, Some _ | Some _, None -> false)

let conditions a b =
  match a, b with
  | None, None -> true
  | Some x, Some y ->
      let conn_ok =
        x.c_conn = y.c_conn
        || List.length x.c_preds <= 1  (* connective is vacuous for 1 pred *)
      in
      conn_ok && multiset_equal equal_pred x.c_preds y.c_preds
  | None, Some _ | Some _, None -> false

let queries a b =
  Bool.equal a.q_distinct b.q_distinct
  && List.length a.q_select = List.length b.q_select
  && List.for_all2 equal_proj a.q_select b.q_select
  && multiset_equal String.equal a.q_from.f_tables b.q_from.f_tables
  && multiset_equal equal_join a.q_from.f_joins b.q_from.f_joins
  && conditions a.q_where b.q_where
  && multiset_equal equal_col_ref a.q_group_by b.q_group_by
  && conditions a.q_having b.q_having
  && List.length a.q_order_by = List.length b.q_order_by
  && List.for_all2 equal_order a.q_order_by b.q_order_by
  && Option.equal Int.equal a.q_limit b.q_limit
