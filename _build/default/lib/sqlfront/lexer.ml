type token =
  | Ident of string
  | Number of Duodb.Value.t
  | String of string
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Star
  | Op of string

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      let c = s.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1) acc
      else if c = '(' then go (i + 1) (Lparen :: acc)
      else if c = ')' then go (i + 1) (Rparen :: acc)
      else if c = ',' then go (i + 1) (Comma :: acc)
      else if c = '*' then go (i + 1) (Star :: acc)
      else if c = '=' then go (i + 1) (Op "=" :: acc)
      else if c = '!' && i + 1 < n && s.[i + 1] = '=' then go (i + 2) (Op "!=" :: acc)
      else if c = '<' then
        if i + 1 < n && s.[i + 1] = '=' then go (i + 2) (Op "<=" :: acc)
        else if i + 1 < n && s.[i + 1] = '>' then go (i + 2) (Op "!=" :: acc)
        else go (i + 1) (Op "<" :: acc)
      else if c = '>' then
        if i + 1 < n && s.[i + 1] = '=' then go (i + 2) (Op ">=" :: acc)
        else go (i + 1) (Op ">" :: acc)
      else if c = '\'' || c = '"' then begin
        (* Quoted literal; single quotes escape by doubling. *)
        let quote = c in
        let buf = Buffer.create 16 in
        let rec scan j =
          if j >= n then Error (Printf.sprintf "unterminated string at offset %d" i)
          else if s.[j] = quote then
            if quote = '\'' && j + 1 < n && s.[j + 1] = quote then begin
              Buffer.add_char buf quote;
              scan (j + 2)
            end
            else Ok (j + 1)
          else begin
            Buffer.add_char buf s.[j];
            scan (j + 1)
          end
        in
        match scan (i + 1) with
        | Error e -> Error e
        | Ok next -> go next (String (Buffer.contents buf) :: acc)
      end
      else if is_digit c || (c = '-' && i + 1 < n && is_digit s.[i + 1]) then begin
        let j = ref (if c = '-' then i + 1 else i) in
        let is_float = ref false in
        while
          !j < n
          && (is_digit s.[!j] || (s.[!j] = '.' && !j + 1 < n && is_digit s.[!j + 1]))
        do
          if s.[!j] = '.' then is_float := true;
          incr j
        done;
        let text = String.sub s i (!j - i) in
        let v =
          if !is_float then Duodb.Value.Float (float_of_string text)
          else Duodb.Value.Int (int_of_string text)
        in
        go !j (Number v :: acc)
      end
      else if c = '.' then go (i + 1) (Dot :: acc)
      else if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident_char s.[!j] do
          incr j
        done;
        go !j (Ident (String.sub s i (!j - i)) :: acc)
      end
      else Error (Printf.sprintf "unexpected character %C at offset %d" c i)
  in
  go 0 []

let token_to_string = function
  | Ident s -> s
  | Number v -> Duodb.Value.to_sql v
  | String s -> "'" ^ s ^ "'"
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Dot -> "."
  | Star -> "*"
  | Op s -> s
