(** A SQuID-style programming-by-example baseline (Fariha & Meliou, 2019)
    matching the capability envelope of Table 1 and Section 5.4.2:

    - open-world: examples are a subset of the desired output;
    - partial tuples and no schema knowledge required;
    - abductive discovery of selection predicates from example witnesses;
    - {e not} supported: projections of numeric columns or aggregates, and
      selection predicates using negation or LIKE.

    Given example tuples alone, the system (1) maps each example column to
    candidate schema text columns by containment, (2) joins them along a
    Steiner tree, and (3) abduces candidate filters: properties shared by
    every example's witness rows, which it would present as checkable
    "filters" in its explanation interface. *)

type filter =
  | F_eq of Duodb.Value.t  (** all witnesses share this value *)
  | F_range of Duodb.Value.t * Duodb.Value.t
      (** numeric witnesses span this interval *)

type result = {
  projections : Duodb.Schema.column list;
      (** chosen column per example position *)
  filters : (Duodb.Schema.column * filter) list;
      (** candidate selection predicates *)
  count_properties : (string list * int) list;
      (** derived count properties: over the given join clause, every
          example entity has at least this many witness rows (SQuID's
          aggregate semantic properties — how HAVING-COUNT intents are
          covered) *)
  witness_count : int;  (** joined rows matching all examples *)
}

(** [supported_query q] — whether the desired query is inside this
    baseline's capability envelope (used to report the paper's
    "unsupported" counts). *)
val supported_query : Duodb.Database.t -> Duosql.Ast.query -> bool

(** [discover db examples] runs predicate discovery.  [None] when the
    example columns cannot be mapped to text columns or cannot be joined. *)
val discover : Duodb.Database.t -> Duocore.Tsq.tuple list -> result option

(** The paper's correctness criterion (Section 5.4.2): the gold query's
    projected columns match the produced projections positionally, and
    every gold selection predicate's column appears among the candidate
    filters (literal values ignored). *)
val correct_for : result -> gold:Duosql.Ast.query -> bool
