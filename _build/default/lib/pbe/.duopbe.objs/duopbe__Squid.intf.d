lib/pbe/squid.mli: Duocore Duodb Duosql
