lib/pbe/squid.ml: Array Duocore Duodb Duoengine Duosql List String
