(** The system-capability matrix of Table 1: soundness, query
    expressiveness (joins, selections, grouping/aggregation), and required
    user knowledge (no schema knowledge, partial tuples, open world). *)

type row = {
  system : string;
  soundness : bool;
  joins : bool;
  selections : bool;
  grouping : bool;
  no_schema : bool;  (** [true] when schema knowledge is NOT required *)
  partial_tuples : bool;
  open_world : bool;
  note : string option;
}

(** All rows of Table 1, Duoquest last. *)
val table : row list

val duoquest : row

(** Render the matrix as fixed-width text (the bench prints this). *)
val to_string : unit -> string
