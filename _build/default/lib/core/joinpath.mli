(** Progressive join path construction (Algorithm 2).

    Given the tables referenced by a (partial) query, produce candidate
    FROM clauses: the Steiner tree over the referenced tables, plus
    one-FK-hop extensions of it (covering desired queries whose FROM clause
    contains tables not otherwise referenced, as in Example 3.2).  When no
    table is referenced yet, every single table is a candidate. *)

(** Candidate FROM clauses, shortest join paths first.  Returns [[]] when
    the referenced tables cannot be connected.  [depth] controls how many
    FK hops beyond the Steiner tree are explored (Algorithm 2's recursive
    extension); default 1.  Counting queries need depth 2: COUNT of all
    rows changes with every joined table, so the paper's A3-style tasks
    join link+entity chains past the referenced tables. *)
val construct :
  ?depth:int -> Duodb.Schema.t -> tables:string list -> Duosql.Ast.from_clause list

(** [covers from tables] checks that the clause contains all [tables]. *)
val covers : Duosql.Ast.from_clause -> string list -> bool

(** Join path length (number of join edges). *)
val length : Duosql.Ast.from_clause -> int

(** Convert a Steiner tree to a FROM clause. *)
val from_of_tree : Steiner.tree -> Duosql.Ast.from_clause
