(** Iterative sketch refinement (the Figure 1 loop, extended per Section 7):
    after inspecting a candidate's result preview, the user marks rows as
    right or wrong, and the sketch absorbs that feedback for the next
    synthesis round. *)

(** [accept_row tsq row] adds the result row as a positive example tuple
    (exact cells). *)
val accept_row : Tsq.t -> Duodb.Value.t array -> Tsq.t

(** [reject_row tsq row] adds the result row as a negative example: no
    candidate whose result contains it survives verification. *)
val reject_row : Tsq.t -> Duodb.Value.t array -> Tsq.t

(** [tolerate_noise tsq ~slack] relaxes the sketch to require all but
    [slack] of its example tuples (the noisy-example mode of Section 7).
    [slack = 0] restores exact matching. *)
val tolerate_noise : Tsq.t -> slack:int -> Tsq.t

(** One refinement round: re-rank the outcome of a synthesis run against a
    refined sketch, dropping candidates that no longer satisfy it.  Cheaper
    than a fresh synthesis when the user only pruned a few candidates. *)
val rerank :
  Duodb.Database.t ->
  Tsq.t ->
  Enumerate.candidate list ->
  Enumerate.candidate list
