(** Semantic pruning rules (Table 4): reject nonsensical or redundant but
    syntactically valid SQL, constraining the search to queries even
    non-technical users can read.

    Rules are exposed individually so the verification cascade can apply
    each as soon as the relevant part of a partial query is decided, and
    collectively via {!check_query} for complete queries. *)

(** Name of the first rule a query violates. *)
type violation =
  | Inconsistent_predicates
  | Constant_output_column
  | Ungrouped_aggregation
  | Singleton_groups
  | Unnecessary_group_by
  | Aggregate_type_error
  | Type_comparison_error

val violation_to_string : violation -> string

(** Rule "Aggregate type usage" + "Faulty type comparison" for a single
    predicate or projection: MIN/MAX/AVG/SUM require numeric columns;
    ordering comparisons and BETWEEN require numeric columns; LIKE requires
    text. *)
val predicate_types_ok : Duodb.Schema.t -> Duosql.Ast.pred -> bool

val projection_types_ok : Duodb.Schema.t -> Duosql.Ast.proj -> bool

(** Rule "Inconsistent predicates": under AND, predicates on the same column
    must be simultaneously satisfiable; exact duplicates are redundant under
    either connective. *)
val condition_consistent : Duosql.Ast.condition -> bool

(** Rule "Constant output column": under AND semantics, a projected plain
    column must not carry an equality predicate. *)
val no_constant_projection :
  Duosql.Ast.proj list -> Duosql.Ast.condition option -> bool

(** Rules "Ungrouped aggregation", "GROUP BY with singleton groups" and
    "Unnecessary GROUP BY". *)
val grouping_ok :
  Duodb.Schema.t ->
  projs:Duosql.Ast.proj list ->
  group_by:Duosql.Ast.col_ref list ->
  having:Duosql.Ast.condition option ->
  order_by:Duosql.Ast.order_item list ->
  bool

(** All rules on a complete query. *)
val check_query : Duodb.Schema.t -> Duosql.Ast.query -> (unit, violation) result

(** The rule catalogue as (name, paper example, fixed alternative) rows —
    printed by the Table 4 experiment. *)
val catalogue : (string * string * string) list
