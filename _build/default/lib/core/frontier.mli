(** Best-first frontier for Algorithm 1: a binary min-heap ordered by
    {!Partial.compare_priority} (highest confidence first, then shorter join
    paths, then insertion order for determinism). *)

type t

(** [create ?cap ()] — when more than [cap] states are queued, the frontier
    is compacted to its best [cap/2] entries (bounded best-first search: a
    memory guard, the only deviation from complete enumeration, and only
    under extreme fan-out). Default: unbounded. *)
val create : ?cap:int -> unit -> t

(** States discarded by compaction so far. *)
val dropped : t -> int

(** Number of states currently queued. *)
val size : t -> int

val is_empty : t -> bool

(** [push t pq] enqueues a state, stamping it with an insertion sequence
    number. *)
val push : t -> Partial.t -> unit

(** Remove and return the highest-priority state. *)
val pop : t -> Partial.t option

(** Total states ever pushed (the sequence counter). *)
val pushed : t -> int
