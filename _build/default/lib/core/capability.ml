type row = {
  system : string;
  soundness : bool;
  joins : bool;
  selections : bool;
  grouping : bool;
  no_schema : bool;
  partial_tuples : bool;
  open_world : bool;
  note : string option;
}

let mk system soundness joins selections grouping no_schema partial_tuples
    open_world note =
  { system; soundness; joins; selections; grouping; no_schema; partial_tuples;
    open_world; note }

let duoquest = mk "Duoquest" true true true true true true true None

(* N/A cells in the paper (NLIs have no example-tuple interface) are encoded
   as [true] with a note, matching Table 1's "N/A". *)
let table =
  [
    mk "NLIs" false true true true true true true
      (Some "PT/OW not applicable: no example input");
    mk "QBE" true true true false false false false None;
    mk "MWeaver" true true false false true true true None;
    mk "S4" true true false false true true true None;
    mk "SQuID" true true true true true true true
      (Some "no projected aggregates in SELECT");
    mk "TALOS" true true true true true false false None;
    mk "QFE" true true false false true false false None;
    mk "PALEO" true false true true false true false None;
    mk "Scythe" true true true true false true false None;
    mk "REGAL+" true true false true true false true None;
    duoquest;
  ]

let check b = if b then "yes" else "-"

let to_string () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-10s %5s %4s %3s %3s %3s %3s %3s  %s\n" "System" "Sound"
       "Join" "Sel" "Agg" "NS" "PT" "OW" "Note");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-10s %5s %4s %3s %3s %3s %3s %3s  %s\n" r.system
           (check r.soundness) (check r.joins) (check r.selections)
           (check r.grouping) (check r.no_schema) (check r.partial_tuples)
           (check r.open_world)
           (Option.value ~default:"" r.note)))
    table;
  Buffer.contents buf
