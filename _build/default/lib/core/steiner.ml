type tree = {
  tr_tables : string list;
  tr_edges : Duodb.Schema.foreign_key list;
}

let other_end e t =
  if String.equal e.Duodb.Schema.fk_table t then e.Duodb.Schema.pk_table
  else e.Duodb.Schema.fk_table

(* BFS over the join graph, returning the edge list of a shortest path. *)
let shortest_path schema a b =
  if String.equal a b then Some []
  else begin
    let visited = Hashtbl.create 16 in
    Hashtbl.replace visited a [];
    let queue = Queue.create () in
    Queue.push a queue;
    let rec bfs () =
      if Queue.is_empty queue then None
      else begin
        let t = Queue.pop queue in
        let path = Hashtbl.find visited t in
        let rec try_edges = function
          | [] -> bfs ()
          | e :: rest ->
              let next = other_end e t in
              if Hashtbl.mem visited next then try_edges rest
              else begin
                let path' = e :: path in
                if String.equal next b then Some (List.rev path')
                else begin
                  Hashtbl.replace visited next path';
                  Queue.push next queue;
                  try_edges rest
                end
              end
        in
        try_edges (Duodb.Schema.join_edges schema ~table:t)
      end
    in
    bfs ()
  end

let edge_equal (a : Duodb.Schema.foreign_key) b =
  String.equal a.Duodb.Schema.fk_table b.Duodb.Schema.fk_table
  && String.equal a.Duodb.Schema.fk_column b.Duodb.Schema.fk_column
  && String.equal a.Duodb.Schema.pk_table b.Duodb.Schema.pk_table
  && String.equal a.Duodb.Schema.pk_column b.Duodb.Schema.pk_column

let tables_of_edges first edges =
  let add acc t = if List.mem t acc then acc else acc @ [ t ] in
  List.fold_left
    (fun acc e ->
      add (add acc e.Duodb.Schema.fk_table) e.Duodb.Schema.pk_table)
    [ first ] edges

(* Metric-closure approximation: grow the tree by repeatedly attaching the
   closest unconnected terminal along its shortest path to any tree node. *)
let tree schema terminals =
  let terminals = List.sort_uniq String.compare terminals in
  match terminals with
  | [] -> None
  | first :: rest ->
      let rec grow covered edges pending =
        match pending with
        | [] -> Some { tr_tables = tables_of_edges first edges; tr_edges = edges }
        | _ ->
            (* closest pending terminal to the current tree *)
            let best =
              List.fold_left
                (fun acc term ->
                  let best_path =
                    List.fold_left
                      (fun bp node ->
                        match shortest_path schema node term with
                        | None -> bp
                        | Some p -> (
                            match bp with
                            | Some p' when List.length p' <= List.length p -> bp
                            | _ -> Some p))
                      None covered
                  in
                  match best_path, acc with
                  | None, _ -> acc
                  | Some p, Some (_, p') when List.length p' <= List.length p -> acc
                  | Some p, _ -> Some (term, p))
                None pending
            in
            (match best with
            | None -> None  (* disconnected *)
            | Some (term, path) ->
                let edges' =
                  List.fold_left
                    (fun acc e -> if List.exists (edge_equal e) acc then acc else acc @ [ e ])
                    edges path
                in
                let covered' = tables_of_edges first edges' in
                let covered' = if List.mem term covered' then covered' else covered' @ [ term ] in
                grow covered'
                  edges'
                  (List.filter (fun t -> not (String.equal t term)) pending))
      in
      grow [ first ] [] rest

let size t = List.length t.tr_edges
