(** The Duoquest system facade (Section 4).

    A {!session} packages a database with its inverted column index (the
    autocomplete substrate).  {!synthesize} consumes the dual specification
    — an NLQ plus an optional TSQ — and streams ranked candidate queries,
    exactly the Enumerator + Verifier micro-service pair of Figure 3.

    The [mode] argument selects the paper's systems:
    - [`Duoquest] — GPQE with guidance and partial-query pruning;
    - [`Nli] — guided enumeration with no TSQ (the SyntaxSQLNet-style
      baseline; the TSQ argument is ignored);
    - [`No_guide] — uniform enumeration, TSQ pruning kept (ablation);
    - [`No_pq] — guidance kept, but only complete queries verified
      (the chaining baseline of Section 3.5). *)

type session

val create_session : Duodb.Database.t -> session
val session_db : session -> Duodb.Database.t
val session_index : session -> Duodb.Index.t

type mode =
  [ `Duoquest
  | `Nli
  | `No_guide
  | `No_pq
  ]

val mode_name : mode -> string

(** [synthesize session ~nlq ()] runs query synthesis.

    - [literals]: the tagged literal set [L]; extracted from the NLQ's
      quoted spans and numbers when omitted.
    - [tsq]: the table sketch query; omitting it (or passing [`Nli]) makes
      the run single-specification.
    - [config]: enumeration budgets (see {!Enumerate.config}).
    - [on_candidate]: streaming callback, as the front-end displays
      candidates one at a time. *)
val synthesize :
  ?config:Enumerate.config ->
  ?mode:mode ->
  ?tsq:Tsq.t ->
  ?literals:Duodb.Value.t list ->
  ?on_candidate:(Enumerate.candidate -> unit) ->
  session ->
  nlq:string ->
  unit ->
  Enumerate.outcome

(** 1-based rank of the gold query among the candidates (by
    {!Duosql.Equal.queries}), or [None]. *)
val rank_of : Enumerate.outcome -> gold:Duosql.Ast.query -> int option

(** First [k] candidates in emission order. *)
val top_k : Enumerate.outcome -> int -> Enumerate.candidate list
