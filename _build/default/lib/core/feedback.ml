let cells_of_row row =
  Array.to_list (Array.map (fun v -> Tsq.Exact v) row)

let accept_row tsq row = Tsq.add_positive tsq (cells_of_row row)
let reject_row tsq row = Tsq.add_negative tsq (cells_of_row row)

let tolerate_noise (tsq : Tsq.t) ~slack =
  if slack <= 0 then { tsq with Tsq.min_support = None }
  else
    let n = List.length tsq.Tsq.tuples in
    { tsq with Tsq.min_support = Some (max 0 (n - slack)) }

let rerank db tsq candidates =
  let cache = Duoengine.Executor.create_cache () in
  List.filter
    (fun c -> Tsq.satisfies ~cache tsq db c.Enumerate.cand_query)
    candidates
