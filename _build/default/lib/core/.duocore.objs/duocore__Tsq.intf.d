lib/core/tsq.mli: Duodb Duoengine Duosql Format
