lib/core/frontier.ml: Array Partial
