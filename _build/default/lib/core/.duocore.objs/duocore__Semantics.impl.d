lib/core/semantics.ml: Duodb Duosql List Option
