lib/core/joinpath.mli: Duodb Duosql Steiner
