lib/core/verify.mli: Duodb Duosql Partial Tsq
