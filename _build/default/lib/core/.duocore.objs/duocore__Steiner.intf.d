lib/core/steiner.mli: Duodb
