lib/core/feedback.mli: Duodb Enumerate Tsq
