lib/core/enumerate.ml: Duodb Duoguide Duonl Duosql Frontier Hashtbl Joinpath List Option Partial Sys Tsq Verify
