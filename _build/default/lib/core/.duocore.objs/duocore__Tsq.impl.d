lib/core/tsq.ml: Array Bool Duodb Duoengine Duosql Format List Printf String
