lib/core/capability.mli:
