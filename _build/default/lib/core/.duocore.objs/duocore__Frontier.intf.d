lib/core/frontier.mli: Partial
