lib/core/verify.ml: Array Bool Duodb Duoengine Duoguide Duosql Hashtbl List Option Partial Printf Result Semantics String Sys Tsq
