lib/core/partial.mli: Duodb Duoguide Duosql
