lib/core/capability.ml: Buffer List Option Printf
