lib/core/duoquest.mli: Duodb Duosql Enumerate Tsq
