lib/core/enumerate.mli: Duodb Duoguide Duosql Partial Tsq Verify
