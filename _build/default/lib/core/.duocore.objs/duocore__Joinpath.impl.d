lib/core/joinpath.ml: Duodb Duosql Hashtbl List Steiner String
