lib/core/semantics.mli: Duodb Duosql
