lib/core/partial.ml: Buffer Duodb Duoguide Duosql Float Int List Option Printf String
