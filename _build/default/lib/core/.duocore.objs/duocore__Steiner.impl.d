lib/core/steiner.ml: Duodb Hashtbl List Queue String
