lib/core/feedback.ml: Array Duoengine Enumerate List Tsq
