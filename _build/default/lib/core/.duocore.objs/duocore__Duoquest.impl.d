lib/core/duoquest.ml: Duodb Duoguide Duonl Duosql Enumerate List
