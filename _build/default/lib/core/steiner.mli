(** Steiner trees on the schema's join graph.

    Nodes are tables, edges are FK-PK relationships with unit weight
    (Section 3.3.4).  Schemas are small, so the classic metric-closure
    approximation is exact enough in practice and deterministic. *)

type tree = {
  tr_tables : string list;  (** tables in the tree, first terminal first *)
  tr_edges : Duodb.Schema.foreign_key list;  (** the FK-PK edges used *)
}

(** [tree schema terminals] connects all [terminals]; [None] when the join
    graph cannot connect them.  A single terminal yields the trivial
    single-table tree. *)
val tree : Duodb.Schema.t -> string list -> tree option

(** [shortest_path schema a b] is the list of FK edges on a shortest path
    between two tables ([None] when disconnected). *)
val shortest_path :
  Duodb.Schema.t -> string -> string -> Duodb.Schema.foreign_key list option

(** Number of edges in the tree. *)
val size : tree -> int
