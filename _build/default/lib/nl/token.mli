(** NLQ tokenization and normalization.

    The guidance model works on lowercase, lightly stemmed word tokens; the
    tokenizer also recognizes numbers and double-quoted spans (which mark
    literal text values, as in the paper's front-end where typing a double-quote
    triggers autocomplete tagging). *)

type t =
  | Word of string  (** lowercased, stemmed *)
  | Number of float
  | Quoted of string  (** literal text value, original casing *)

(** [tokenize s] splits on whitespace and punctuation, lowercases words,
    applies {!stem}, parses numeric tokens, and keeps double-quoted spans
    intact. *)
val tokenize : string -> t list

(** Word tokens only (stemmed), in order. *)
val words : t list -> string list

(** Light suffix stemmer: plural [-s]/[-es]/[-ies], [-ing], [-ed].
    Deliberately conservative — it never shortens words below 3
    characters. *)
val stem : string -> string

(** Stopwords filtered by the guidance model's lexical matchers. *)
val is_stopword : string -> bool

val to_string : t -> string
