type t =
  | Word of string
  | Number of float
  | Quoted of string

let ends_with ~suffix s =
  let ls = String.length s and lu = String.length suffix in
  ls >= lu && String.sub s (ls - lu) lu = suffix

let stem w =
  let n = String.length w in
  let es_plural =
    (* -es only marks a plural after sibilants: classes, boxes, churches *)
    List.exists
      (fun suffix -> ends_with ~suffix w)
      [ "sses"; "xes"; "zes"; "ches"; "shes" ]
  in
  if n <= 3 then w
  else if ends_with ~suffix:"ies" w && n > 4 then String.sub w 0 (n - 3) ^ "y"
  else if es_plural then String.sub w 0 (n - 2)
  else if ends_with ~suffix:"s" w && not (ends_with ~suffix:"ss" w) then
    String.sub w 0 (n - 1)
  else if ends_with ~suffix:"ing" w && n > 5 then String.sub w 0 (n - 3)
  else if ends_with ~suffix:"ed" w && n > 4 then String.sub w 0 (n - 2)
  else w

let stopwords =
  [ "a"; "an"; "the"; "of"; "in"; "on"; "at"; "to"; "for"; "with"; "by";
    "and"; "or"; "is"; "are"; "was"; "were"; "be"; "been"; "it"; "its";
    "that"; "this"; "these"; "those"; "as"; "from"; "into"; "their";
    "there"; "each"; "all"; "any"; "me"; "my"; "please"; "show"; "list";
    "find"; "give"; "what"; "which"; "who"; "whose"; "how"; "many"; "much";
    "do"; "does"; "have"; "has"; "had"; "i"; "we"; "you"; "they"; "them" ]

let is_stopword w = List.mem w stopwords

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '\'' || c = '.' || c = '-'

let classify raw =
  let lower = String.lowercase_ascii raw in
  match float_of_string_opt raw with
  | Some f -> Number f
  | None ->
      (* Strip possessives and trailing punctuation-ish chars kept by the
         scanner (periods, hyphens at edges). *)
      let trimmed =
        let l = String.length lower in
        let stop = if l > 2 && ends_with ~suffix:"'s" lower then l - 2 else l in
        String.sub lower 0 stop
      in
      let trimmed = String.concat "" (String.split_on_char '.' trimmed) in
      if trimmed = "" then Word raw else Word (stem trimmed)

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else if s.[i] = '"' then begin
      (* Double-quoted literal span. *)
      let j = try String.index_from s (i + 1) '"' with Not_found -> n in
      let inner = String.sub s (i + 1) (min j n - i - 1) in
      let next = if j >= n then n else j + 1 in
      go next (Quoted inner :: acc)
    end
    else if is_word_char s.[i] then begin
      let j = ref i in
      while !j < n && is_word_char s.[!j] do
        incr j
      done;
      let raw = String.sub s i (!j - i) in
      go !j (classify raw :: acc)
    end
    else go (i + 1) acc
  in
  go 0 []

let words toks = List.filter_map (function Word w -> Some w | Number _ | Quoted _ -> None) toks

let to_string = function
  | Word w -> w
  | Number f ->
      if Float.is_integer f then string_of_int (int_of_float f) else string_of_float f
  | Quoted s -> "\"" ^ s ^ "\""
