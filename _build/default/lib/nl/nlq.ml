type literal = {
  lit_value : Duodb.Value.t;
  lit_columns : (string * string) list;
}

type t = {
  raw : string;
  tokens : Token.t list;
  literals : literal list;
}

let ground_text index s =
  match index with
  | None -> []
  | Some idx ->
      List.map
        (fun h -> (h.Duodb.Index.hit_table, h.Duodb.Index.hit_column))
        (Duodb.Index.lookup idx s)

let number_value f =
  if Float.is_integer f && Float.abs f < 1e15 then Duodb.Value.Int (int_of_float f)
  else Duodb.Value.Float f

let literal_of_token index = function
  | Token.Quoted s ->
      Some { lit_value = Duodb.Value.Text s; lit_columns = ground_text index s }
  | Token.Number f -> Some { lit_value = number_value f; lit_columns = [] }
  | Token.Word _ -> None

let analyze ?index raw =
  let tokens = Token.tokenize raw in
  let literals = List.filter_map (literal_of_token index) tokens in
  { raw; tokens; literals }

let with_literals ?index raw lits =
  let tokens = Token.tokenize raw in
  let literals =
    List.map
      (fun v ->
        match v with
        | Duodb.Value.Text s -> { lit_value = v; lit_columns = ground_text index s }
        | Duodb.Value.Int _ | Duodb.Value.Float _ | Duodb.Value.Null ->
            { lit_value = v; lit_columns = [] })
      lits
  in
  { raw; tokens; literals }

let content_words t =
  List.filter (fun w -> not (Token.is_stopword w)) (Token.words t.tokens)

let text_literals t =
  List.filter_map
    (fun l ->
      match l.lit_value with
      | Duodb.Value.Text s -> Some s
      | Duodb.Value.Int _ | Duodb.Value.Float _ | Duodb.Value.Null -> None)
    t.literals

let numeric_literals t =
  List.filter_map
    (fun l -> if Duodb.Value.is_numeric l.lit_value then Some l.lit_value else None)
    t.literals
