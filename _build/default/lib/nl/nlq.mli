(** Analyzed natural language queries.

    Per the problem definition (Section 2.3) the input NLQ [N] carries a set
    of text and numeric literal values [L], obtained in the paper through an
    autocomplete tagging interface.  [analyze] extracts those literals
    (double-quoted spans and numeric tokens) and grounds text literals to
    candidate columns via the inverted column index. *)

type literal = {
  lit_value : Duodb.Value.t;
  lit_columns : (string * string) list;
      (** candidate (table, column) groundings; empty when unknown *)
}

type t = {
  raw : string;
  tokens : Token.t list;
  literals : literal list;
}

(** [analyze ?index raw] tokenizes and extracts literals.  With [index],
    text literals are grounded to the columns containing them. *)
val analyze : ?index:Duodb.Index.t -> string -> t

(** Build an NLQ with an explicitly provided literal set (the simulation
    study supplies literals from the gold query, as Section 5.4.1 does). *)
val with_literals : ?index:Duodb.Index.t -> string -> Duodb.Value.t list -> t

(** Content words (stemmed, stopwords removed). *)
val content_words : t -> string list

val text_literals : t -> string list
val numeric_literals : t -> Duodb.Value.t list
