lib/nl/token.mli:
