lib/nl/nlq.mli: Duodb Token
