lib/nl/token.ml: Float List String
