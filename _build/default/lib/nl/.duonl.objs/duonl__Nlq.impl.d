lib/nl/nlq.ml: Duodb Float List Token
