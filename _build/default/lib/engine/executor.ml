open Duosql.Ast
module Value = Duodb.Value
module Datatype = Duodb.Datatype

(* Hashing on values directly avoids rendering SQL strings for every join
   bucket, group key, and DISTINCT check. *)
module Vkey = struct
  type t = Value.t list

  let equal a b = List.length a = List.length b && List.for_all2 Value.equal a b
  let hash vs = Hashtbl.hash (List.map Value.hash vs)
end

module Vtbl = Hashtbl.Make (Vkey)

type resultset = {
  res_cols : (string * Datatype.t) list;
  res_rows : Value.t array list;
}

exception Exec_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Exec_error s)) fmt

(* A joined relation: wide rows concatenating the base tables' columns,
   with a lookup from (table, column) to position. *)
type relation = {
  rel_index : (string * string, int) Hashtbl.t;
  rel_rows : Value.t array list;
}

let column_type db c =
  match Duodb.Schema.find_column (Duodb.Database.schema db) ~table:c.cr_table c.cr_col with
  | Some col -> col.Duodb.Schema.col_type
  | None -> fail "unknown column %s.%s" c.cr_table c.cr_col

let table_columns db t =
  match Duodb.Schema.find_table (Duodb.Database.schema db) t with
  | Some ts -> ts.Duodb.Schema.tbl_columns
  | None -> fail "unknown table %s" t

(* Cartesian base of a single table. *)
let base_relation db t =
  let cols = table_columns db t in
  let rel_index = Hashtbl.create 16 in
  List.iteri (fun i c -> Hashtbl.replace rel_index (t, c.Duodb.Schema.col_name) i) cols;
  let tbl = Duodb.Database.table_exn db t in
  { rel_index; rel_rows = Array.to_list (Duodb.Table.rows tbl) }

(* Hash join [rel] with table [t] on [left] (a column of rel) = [right]
   (a column of t). *)
let join_step ?(max_rows = max_int) db rel t ~left ~right =
  let cols = table_columns db t in
  let tbl = Duodb.Database.table_exn db t in
  let right_idx = Duodb.Table.column_index tbl right in
  let buckets = Vtbl.create 256 in
  Duodb.Table.iter
    (fun row ->
      let v = row.(right_idx) in
      if not (Value.is_null v) then Vtbl.add buckets [ v ] row)
    tbl;
  let left_idx =
    match Hashtbl.find_opt rel.rel_index left with
    | Some i -> i
    | None -> fail "join column %s.%s not in relation" (fst left) (snd left)
  in
  let width = Hashtbl.length rel.rel_index in
  let rel_index = Hashtbl.copy rel.rel_index in
  List.iteri
    (fun i c -> Hashtbl.replace rel_index (t, c.Duodb.Schema.col_name) (width + i))
    cols;
  let count = ref 0 in
  let rel_rows =
    List.concat_map
      (fun wide ->
        let v = wide.(left_idx) in
        if Value.is_null v then []
        else begin
          let matches = Vtbl.find_all buckets [ v ] in
          count := !count + List.length matches;
          if !count > max_rows then fail "joined relation exceeds %d rows" max_rows;
          List.rev_map (fun row -> Array.append wide row) matches
        end)
      rel.rel_rows
  in
  { rel_index; rel_rows }

(* [Error msg] entries memoize relations that exceeded the row bound, so
   repeated probes over an exploding join fail fast. *)
type relation_cache = (string, (relation, string) result) Hashtbl.t

let create_cache () : relation_cache = Hashtbl.create 64

let from_key (f : from_clause) =
  String.concat ";" f.f_tables ^ "|"
  ^ String.concat ";"
      (List.map
         (fun j ->
           j.j_from.cr_table ^ "." ^ j.j_from.cr_col ^ "=" ^ j.j_to.cr_table
           ^ "." ^ j.j_to.cr_col)
         f.f_joins)

(* Build the joined relation following the FROM clause's join tree. *)
let build_relation ?max_rows db (f : from_clause) =
  match f.f_tables with
  | [] -> fail "empty FROM clause"
  | first :: rest ->
      let rec attach rel pending edges =
        if pending = [] then rel
        else
          let joined t = Hashtbl.fold (fun (tb, _) _ acc -> acc || String.equal tb t) rel.rel_index false in
          let usable e =
            let a = e.j_from.cr_table and b = e.j_to.cr_table in
            if joined a && (not (joined b)) && List.mem b pending then
              Some (b, (e.j_from.cr_table, e.j_from.cr_col), e.j_to.cr_col)
            else if joined b && (not (joined a)) && List.mem a pending then
              Some (a, (e.j_to.cr_table, e.j_to.cr_col), e.j_from.cr_col)
            else None
          in
          match List.find_map usable edges with
          | None -> fail "FROM clause is not a connected join tree"
          | Some (t, left, right) ->
              let rel = join_step ?max_rows db rel t ~left ~right in
              attach rel (List.filter (fun x -> not (String.equal x t)) pending) edges
      in
      attach (base_relation db first) rest f.f_joins

let lookup rel c =
  match Hashtbl.find_opt rel.rel_index (c.cr_table, c.cr_col) with
  | Some i -> i
  | None -> fail "column %s.%s not in FROM clause" c.cr_table c.cr_col

(* Scalar predicate evaluation on a single wide row. *)
let eval_cmp op lhs rhs =
  if Value.is_null lhs || Value.is_null rhs then false
  else
    match op with
    | Eq -> Value.equal lhs rhs
    | Neq -> not (Value.equal lhs rhs)
    | Lt -> Value.compare lhs rhs < 0
    | Le -> Value.compare lhs rhs <= 0
    | Gt -> Value.compare lhs rhs > 0
    | Ge -> Value.compare lhs rhs >= 0
    | Like -> (
        match lhs, rhs with
        | Value.Text s, Value.Text p -> Value.like s ~pattern:p
        | _ -> fail "LIKE requires text operands")
    | Not_like -> (
        match lhs, rhs with
        | Value.Text s, Value.Text p -> not (Value.like s ~pattern:p)
        | _ -> fail "NOT LIKE requires text operands")

let eval_rhs rhs v =
  match rhs with
  | Cmp (op, lit) -> eval_cmp op v lit
  | Between (lo, hi) ->
      (not (Value.is_null v))
      && Value.compare v lo >= 0
      && Value.compare v hi <= 0

let eval_where rel cond wide =
  let eval_pred p =
    match p.pr_agg, p.pr_col with
    | Some _, _ -> fail "aggregate predicate in WHERE"
    | None, None -> fail "missing column in WHERE predicate"
    | None, Some c -> eval_rhs p.pr_rhs wide.(lookup rel c)
  in
  match cond.c_conn with
  | And -> List.for_all eval_pred cond.c_preds
  | Or -> List.exists eval_pred cond.c_preds

(* Aggregate over a group of wide rows. *)
let eval_agg rel agg col distinct group =
  let values () =
    let c = match col with Some c -> c | None -> fail "aggregate needs a column" in
    let i = lookup rel c in
    List.filter_map
      (fun row -> if Value.is_null row.(i) then None else Some row.(i))
      group
  in
  let distinct_values vs =
    let seen = Vtbl.create 16 in
    List.filter
      (fun v ->
        if Vtbl.mem seen [ v ] then false
        else begin
          Vtbl.add seen [ v ] ();
          true
        end)
      vs
  in
  let numeric vs =
    List.map
      (fun v -> if Value.is_numeric v then Value.to_float v else fail "numeric aggregate over text")
      vs
  in
  match agg with
  | Count -> (
      match col with
      | None -> Value.Int (List.length group)
      | Some _ ->
          let vs = values () in
          let vs = if distinct then distinct_values vs else vs in
          Value.Int (List.length vs))
  | Sum -> (
      match values () with
      | [] -> Value.Null
      | vs ->
          let total = List.fold_left ( +. ) 0. (numeric vs) in
          if Float.is_integer total then Value.Int (int_of_float total) else Value.Float total)
  | Avg -> (
      match values () with
      | [] -> Value.Null
      | vs ->
          let fs = numeric vs in
          Value.Float (List.fold_left ( +. ) 0. fs /. float_of_int (List.length fs)))
  | Min -> (
      match values () with
      | [] -> Value.Null
      | v :: vs -> List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) v vs)
  | Max -> (
      match values () with
      | [] -> Value.Null
      | v :: vs -> List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) v vs)

(* Evaluate a projection-like item (agg option, col option, distinct) for a
   group.  For unaggregated items the group's first row supplies the value
   (SQL-legal only when the item is in GROUP BY; Semantics rules enforce
   this upstream, and tests rely on executor-level enforcement too). *)
let eval_item rel ~grouped (agg, col, distinct) group =
  match agg with
  | Some a -> eval_agg rel a col distinct group
  | None -> (
      match col, group with
      | Some c, row :: _ -> row.(lookup rel c)
      | Some _, [] -> Value.Null
      | None, _ -> if grouped then fail "bare star projection" else fail "bare star projection")

let eval_having rel cond group =
  let eval_pred p =
    let v = eval_item rel ~grouped:true (p.pr_agg, p.pr_col, false) group in
    eval_rhs p.pr_rhs v
  in
  match cond.c_conn with
  | And -> List.for_all eval_pred cond.c_preds
  | Or -> List.exists eval_pred cond.c_preds

let proj_type db (p : proj) =
  match p.p_agg with
  | Some Count -> Datatype.Number
  | Some (Sum | Avg) -> Datatype.Number
  | Some (Min | Max) | None -> (
      match p.p_col with
      | Some c -> column_type db c
      | None -> Datatype.Number)

let output_types db q =
  try Ok (List.map (proj_type db) q.q_select) with
  | Exec_error e -> Error e

(* Group the filtered rows when the query aggregates; otherwise each row is
   its own singleton group. *)
let make_groups q rel rows =
  let needs_groups =
    q.q_group_by <> []
    || List.exists (fun p -> Option.is_some p.p_agg) q.q_select
    || Option.is_some q.q_having
    || List.exists (fun o -> Option.is_some o.o_agg) q.q_order_by
  in
  if not needs_groups then List.map (fun r -> [ r ]) rows
  else if q.q_group_by = [] then [ rows ]  (* single group, even when empty *)
  else begin
    let idxs = List.map (lookup rel) q.q_group_by in
    let order = ref [] in
    let buckets = Vtbl.create 64 in
    List.iter
      (fun row ->
        let key = List.map (fun i -> row.(i)) idxs in
        match Vtbl.find_opt buckets key with
        | Some cell -> cell := row :: !cell
        | None ->
            let cell = ref [ row ] in
            Vtbl.add buckets key cell;
            order := key :: !order)
      rows;
    List.rev_map (fun key -> List.rev !(Vtbl.find buckets key)) !order
  end

let build_relation_cached ?cache ?max_rows db f =
  match cache with
  | None -> build_relation ?max_rows db f
  | Some tbl -> (
      let key = from_key f in
      match Hashtbl.find_opt tbl key with
      | Some (Ok rel) -> rel
      | Some (Error e) -> raise (Exec_error e)
      | None -> (
          match build_relation ?max_rows db f with
          | rel ->
              Hashtbl.replace tbl key (Ok rel);
              rel
          | exception Exec_error e ->
              Hashtbl.replace tbl key (Error e);
              raise (Exec_error e)))

let run ?cache ?max_rows db q =
  try
    let rel = build_relation_cached ?cache ?max_rows db q.q_from in
    (* Validate every referenced column against the FROM clause up front. *)
    List.iter (fun c -> ignore (lookup rel c)) (referenced_columns q);
    let rows =
      match q.q_where with
      | None -> rel.rel_rows
      | Some cond -> List.filter (eval_where rel cond) rel.rel_rows
    in
    let groups = make_groups q rel rows in
    let groups =
      match q.q_having with
      | None -> groups
      | Some cond -> List.filter (eval_having rel cond) groups
    in
    (* Project and compute ORDER BY keys in the same pass so sort keys can
       reference non-projected expressions. *)
    let project group =
      let out =
        Array.of_list
          (List.map (fun p -> eval_item rel ~grouped:true (p.p_agg, p.p_col, p.p_distinct) group) q.q_select)
      in
      let keys =
        List.map (fun o -> eval_item rel ~grouped:true (o.o_agg, o.o_col, false) group) q.q_order_by
      in
      (out, keys)
    in
    let projected = List.map project groups in
    let projected =
      if not q.q_distinct then projected
      else begin
        let seen = Vtbl.create 64 in
        List.filter
          (fun (out, _) ->
            let k = Array.to_list out in
            if Vtbl.mem seen k then false
            else begin
              Vtbl.add seen k ();
              true
            end)
          projected
      end
    in
    let projected =
      if q.q_order_by = [] then projected
      else
        let dirs = List.map (fun o -> o.o_dir) q.q_order_by in
        let cmp (_, ka) (_, kb) =
          let rec go ks1 ks2 ds =
            match ks1, ks2, ds with
            | [], [], _ -> 0
            | k1 :: r1, k2 :: r2, d :: rd ->
                let c = Value.compare k1 k2 in
                let c = match d with Asc -> c | Desc -> -c in
                if c <> 0 then c else go r1 r2 rd
            | _ -> 0
          in
          go ka kb dirs
        in
        List.stable_sort cmp projected
    in
    let out_rows = List.map fst projected in
    let out_rows =
      match q.q_limit with
      | None -> out_rows
      | Some n -> List.filteri (fun i _ -> i < n) out_rows
    in
    let res_cols =
      List.map (fun p -> (Duosql.Pretty.proj p, proj_type db p)) q.q_select
    in
    Ok { res_cols; res_rows = out_rows }
  with
  | Exec_error e -> Error e

let run_exn ?cache ?max_rows db q =
  match run ?cache ?max_rows db q with
  | Ok r -> r
  | Error e -> failwith (Printf.sprintf "Executor.run_exn: %s on %s" e (Duosql.Pretty.query q))

let cardinality r = List.length r.res_rows
