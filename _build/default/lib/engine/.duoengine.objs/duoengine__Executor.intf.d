lib/engine/executor.mli: Duodb Duosql
