lib/engine/executor.ml: Array Duodb Duosql Float Hashtbl List Option Printf String
