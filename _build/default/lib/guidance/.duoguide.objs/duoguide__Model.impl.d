lib/guidance/model.ml: Array Duodb Duonl Duosql Hints List Score String
