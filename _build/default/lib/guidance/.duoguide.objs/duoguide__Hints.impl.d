lib/guidance/hints.ml: Array List String
