lib/guidance/score.ml: Array Duodb Duonl Float List String
