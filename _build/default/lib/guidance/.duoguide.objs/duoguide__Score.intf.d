lib/guidance/score.mli: Duodb
