lib/guidance/model.mli: Duodb Duonl Duosql
