lib/guidance/hints.mli:
