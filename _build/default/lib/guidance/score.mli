(** Scoring utilities shared by the guidance modules. *)

(** [softmax ?temperature scores] maps raw evidence scores to a probability
    distribution: strictly positive, sums to 1 (Property 1 of the paper
    requires each inference decision's candidate scores to sum to the
    parent's mass).  Default temperature 1.0; higher values flatten the
    distribution. *)
val softmax : ?temperature:float -> float array -> float array

(** [name_tokens s] splits an identifier on underscores and stems each
    part: ["birth_yr"] gives [["birth"; "yr"]]. *)
val name_tokens : string -> string list

(** [name_similarity ~nlq_words name] in [0, 1]: fraction of [name]'s
    tokens that appear (exactly or by 4-character prefix) among the NLQ's
    stemmed content words. *)
val name_similarity : nlq_words:string list -> string -> float

(** [column_similarity ~nlq_words col] combines column-name and table-name
    similarity (column dominates). *)
val column_similarity : nlq_words:string list -> Duodb.Schema.column -> float

(** Attach softmax probabilities to scored candidates, preserving order of
    the input list. *)
val normalize : ?temperature:float -> ('a * float) list -> ('a * float) list

(** Sort candidates by probability, highest first (stable). *)
val rank : ('a * float) list -> ('a * float) list
