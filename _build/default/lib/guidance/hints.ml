(* All entries are pre-stemmed to match Duonl.Token.stem output. *)

let count_matches words lexicon =
  List.fold_left
    (fun acc w -> if List.mem w lexicon then acc +. 1.0 else acc)
    0.0 words

(* Bigram matcher: "more than", "at least", ... on the stemmed stream. *)
let count_bigrams words bigrams =
  let rec go acc = function
    | a :: (b :: _ as rest) ->
        let hit = List.exists (fun (x, y) -> String.equal a x && String.equal b y) bigrams in
        go (if hit then acc +. 1.0 else acc) rest
    | [ _ ] | [] -> acc
  in
  go 0.0 words

let order_lexicon =
  [ "order"; "sort"; "rank"; "earliest"; "latest"; "newest"; "oldest";
    "recent"; "ascend"; "descend"; "alphabetical"; "chronological"; "top";
    "increas"; "decreas" ]

let order_signal words = count_matches words order_lexicon

let group_lexicon = [ "per"; "every"; "group"; "respective"; "correspond" ]

(* "each" is a stopword in Token, but "for each" style phrasing usually
   leaves "per"/"every"/aggregate words as residue; we additionally accept
   the unstopped "each" if present. *)
let group_signal words = count_matches words ("each" :: group_lexicon)

let where_lexicon =
  [ "where"; "whose"; "only"; "before"; "after"; "between"; "above"; "below";
    "over"; "under"; "contain"; "start"; "end"; "exceed"; "within"; "than" ]

let where_signal words = count_matches words where_lexicon

let having_lexicon = [ "than"; "least"; "exceed"; "more"; "fewer"; "over" ]

let having_signal words =
  (* HAVING phrasing pairs a grouping cue with a count comparison. *)
  let cmp = count_matches words having_lexicon in
  let grp = group_signal words in
  if grp > 0.0 then cmp else cmp /. 2.0

let count_lexicon = [ "count"; "number"; "time" ]
let sum_lexicon = [ "total"; "sum"; "combined"; "altogether" ]
let avg_lexicon = [ "average"; "mean" ]
let max_lexicon = [ "maximum"; "most"; "highest"; "largest"; "biggest"; "max" ]
let min_lexicon = [ "minimum"; "least"; "lowest"; "smallest"; "fewest"; "min" ]

let agg_signals words =
  let none = 1.0 in
  let count = count_matches words count_lexicon in
  let sum = count_matches words sum_lexicon in
  let avg = count_matches words avg_lexicon in
  let mx = count_matches words max_lexicon in
  let mn = count_matches words min_lexicon in
  (none, count, sum, avg, mx, mn)

let desc_lexicon =
  [ "descend"; "decreas"; "most"; "latest"; "newest"; "recent"; "highest";
    "largest"; "biggest" ]

let descending_signal words = count_matches words desc_lexicon

let limit_lexicon = [ "top"; "first"; "best" ]

let limit_signal words = count_matches words limit_lexicon

(* Index layout matches Duosql.Ast.cmp declaration order:
   Eq Neq Lt Le Gt Ge Like Not_like *)
let op_signals words =
  let s = Array.make 8 0.0 in
  let add i v = s.(i) <- s.(i) +. v in
  add 0 (0.5 +. count_matches words [ "i"; "equal"; "exactly"; "name" ]);
  add 1 (count_matches words [ "not"; "other"; "except"; "besides" ]);
  add 2 (count_matches words [ "before"; "under"; "below"; "earlier" ]
         +. count_bigrams words [ ("less", "than"); ("fewer", "than"); ("smaller", "than") ]);
  add 3 (count_bigrams words [ ("at", "most"); ("no", "more") ]);
  add 4 (count_matches words [ "after"; "over"; "above"; "exceed"; "later" ]
         +. count_bigrams words [ ("more", "than"); ("greater", "than"); ("larger", "than") ]);
  add 5 (count_bigrams words [ ("at", "least"); ("no", "less"); ("no", "fewer") ]);
  add 6 (count_matches words [ "contain"; "include"; "like"; "substring"; "match" ]
         +. count_bigrams words [ ("start", "with"); ("end", "with") ]);
  add 7 (count_bigrams words [ ("not", "contain"); ("not", "like") ]);
  s

let or_lexicon = [ "or"; "either"; "alternatively" ]

let or_signal words =
  (* "or" itself is a stopword for content extraction, so callers pass raw
     word streams here. *)
  count_matches words or_lexicon
