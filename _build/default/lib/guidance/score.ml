let softmax ?(temperature = 1.0) scores =
  let n = Array.length scores in
  if n = 0 then [||]
  else begin
    let m = Array.fold_left Float.max neg_infinity scores in
    let exps = Array.map (fun s -> Float.exp ((s -. m) /. temperature)) scores in
    let total = Array.fold_left ( +. ) 0.0 exps in
    Array.map (fun e -> e /. total) exps
  end

let name_tokens s =
  String.split_on_char '_' (String.lowercase_ascii s)
  |> List.filter (fun t -> t <> "")
  |> List.map Duonl.Token.stem

let prefix_match a b =
  let l = min (String.length a) (String.length b) in
  l >= 4 && String.sub a 0 4 = String.sub b 0 4

let name_similarity ~nlq_words name =
  let toks = name_tokens name in
  match toks with
  | [] -> 0.0
  | _ ->
      let hit t =
        if List.mem t nlq_words then 1.0
        else if List.exists (prefix_match t) nlq_words then 0.5
        else 0.0
      in
      List.fold_left (fun acc t -> acc +. hit t) 0.0 toks
      /. float_of_int (List.length toks)

let column_similarity ~nlq_words col =
  let cs = name_similarity ~nlq_words col.Duodb.Schema.col_name in
  let ts = name_similarity ~nlq_words col.Duodb.Schema.col_table in
  (0.8 *. cs) +. (0.2 *. ts)

let normalize ?temperature cands =
  let probs = softmax ?temperature (Array.of_list (List.map snd cands)) in
  List.mapi (fun i (x, _) -> (x, probs.(i))) cands

let rank cands =
  List.stable_sort (fun (_, a) (_, b) -> Float.compare b a) cands
