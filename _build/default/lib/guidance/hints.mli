(** Hint lexicon: surface words that signal SQL constructs.

    This is the stand-in for the distributional knowledge a trained
    SyntaxSQLNet acquires from the Spider corpus; here it is an explicit,
    inspectable lexicon.  All entries are matched against {e stemmed}
    content words (see {!Duonl.Token.stem}). *)

(** [count_matches words lexicon] counts how many of [words] appear in
    [lexicon]. *)
val count_matches : string list -> string list -> float

(** Evidence strength that the NLQ requests an ORDER BY clause. *)
val order_signal : string list -> float

(** Evidence that the NLQ requests grouping. *)
val group_signal : string list -> float

(** Evidence for a WHERE clause beyond the presence of literals. *)
val where_signal : string list -> float

(** Evidence for a HAVING clause (count/sum comparisons on groups). *)
val having_signal : string list -> float

(** Per-aggregate evidence: scores for (None, Count, Sum, Avg, Min, Max). *)
val agg_signals : string list -> float * float * float * float * float * float

(** Evidence that sorting should be descending. *)
val descending_signal : string list -> float

(** Evidence that results are limited to the top row(s): "top", "first",
    superlatives. *)
val limit_signal : string list -> float

(** Comparison-operator evidence given the words adjacent to a numeric
    literal: scores for (=, !=, <, <=, >, >=, LIKE, NOT LIKE). *)
val op_signals : string list -> float array

(** Evidence that predicates combine with OR rather than AND. *)
val or_signal : string list -> float
