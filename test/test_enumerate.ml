module Enumerate = Duocore.Enumerate
module Partial = Duocore.Partial
module Model = Duoguide.Model

let schema = Fixtures.movie_schema
let db = Fixtures.movie_db ()

let ctx nlq = Model.make schema (Duonl.Nlq.analyze nlq)

let test_root_expansion () =
  let children =
    Enumerate.expand ~guided:true Enumerate.no_hints
      (ctx "movie names") Partial.root
  in
  Alcotest.(check int) "8 keyword subsets" 8 (List.length children);
  List.iter
    (fun (c : Partial.t) ->
      Alcotest.(check bool) "moved past keywords" true
        (c.Partial.phase = Partial.P_num_proj))
    children

let test_confidence_partition () =
  (* Property 1 at the root: children's confidences sum to the parent's. *)
  let children =
    Enumerate.expand ~guided:true Enumerate.no_hints (ctx "movie names") Partial.root
  in
  let total = List.fold_left (fun acc c -> acc +. c.Partial.confidence) 0.0 children in
  Alcotest.(check (float 1e-6)) "children partition parent mass" 1.0 total

let test_uniform_mode () =
  let children =
    Enumerate.expand ~guided:false Enumerate.no_hints (ctx "movie names") Partial.root
  in
  List.iter
    (fun (c : Partial.t) ->
      Alcotest.(check (float 1e-9)) "uniform 1/8" 0.125 c.Partial.confidence)
    children

let test_done_is_terminal () =
  let s = { Partial.root with Partial.phase = Partial.P_done } in
  Alcotest.(check int) "no children" 0
    (List.length (Enumerate.expand ~guided:true Enumerate.no_hints (ctx "x") s))

let test_hints_of_tsq () =
  let tsq =
    Duocore.Tsq.make ~types:[ Duodb.Datatype.Text; Duodb.Datatype.Number ]
      ~sorted:true ~limit:5 ()
  in
  let h = Enumerate.hints_of_tsq tsq in
  Alcotest.(check (option int)) "width hint" (Some 2) h.Enumerate.h_nproj;
  Alcotest.(check (option int)) "limit hint" (Some 5) h.Enumerate.h_limit

let test_run_respects_budget () =
  let config =
    { Enumerate.default_config with Enumerate.max_pops = 50; max_candidates = 1000 }
  in
  let outcome =
    Enumerate.run config (ctx "movie names") db ~tsq:None ~literals:[] ()
  in
  Alcotest.(check bool) "pops bounded" true (outcome.Enumerate.out_pops <= 50)

let test_run_exhausts_tiny_space () =
  (* An impossible TSQ: a text type annotation whose value exists nowhere.
     Everything prunes and the frontier drains. *)
  let tsq =
    Duocore.Tsq.make ~types:[ Duodb.Datatype.Text ]
      ~tuples:[ [ Duocore.Tsq.Exact (Duodb.Value.Text "No Such Value Anywhere") ] ]
      ()
  in
  let config =
    { Enumerate.default_config with
      Enumerate.max_pops = 200_000;
      time_budget_s = 20.0 }
  in
  let outcome =
    Enumerate.run config (ctx "names") db ~tsq:(Some tsq) ~literals:[] ()
  in
  Alcotest.(check int) "no candidates" 0 (List.length outcome.Enumerate.out_candidates);
  (* the frontier drained without compaction ever discarding a state, so
     this really was an exhaustive enumeration *)
  Alcotest.(check int) "nothing dropped" 0 outcome.Enumerate.out_dropped;
  Alcotest.(check bool) "exhaustion reported" true outcome.Enumerate.out_exhausted

let test_dropped_states_veto_exhaustion () =
  (* regression: with a tiny frontier cap, compaction throws states away;
     an empty frontier then no longer proves the space was enumerated, so
     out_exhausted must stay false (and out_dropped says why) *)
  let tsq =
    Duocore.Tsq.make ~types:[ Duodb.Datatype.Text ]
      ~tuples:[ [ Duocore.Tsq.Exact (Duodb.Value.Text "No Such Value Anywhere") ] ]
      ()
  in
  let config =
    { Enumerate.default_config with
      Enumerate.max_pops = 200_000;
      time_budget_s = 20.0;
      max_frontier = 4 }
  in
  let outcome =
    Enumerate.run config (ctx "names") db ~tsq:(Some tsq) ~literals:[] ()
  in
  Alcotest.(check bool) "compaction dropped states" true
    (outcome.Enumerate.out_dropped > 0);
  Alcotest.(check bool) "no exhaustion claim after drops" false
    outcome.Enumerate.out_exhausted

let test_time_budget_is_wall_clock () =
  (* regression: the budget must follow real time, not processor time — a
     stalled consumer (sleeping callback burns no CPU) still exhausts it *)
  let config =
    { Enumerate.default_config with
      Enumerate.max_pops = 1_000_000;
      max_candidates = 1_000;
      time_budget_s = 0.05 }
  in
  let outcome =
    Enumerate.run config (ctx "movie names") db ~tsq:None ~literals:[]
      ~on_candidate:(fun _ -> Unix.sleepf 0.06) ()
  in
  Alcotest.(check bool) "stopped after the first stall" true
    (List.length outcome.Enumerate.out_candidates <= 2);
  Alcotest.(check bool) "elapsed measured in wall time" true
    (outcome.Enumerate.out_elapsed_s >= 0.05)

let test_candidates_unique () =
  let config =
    { Enumerate.default_config with Enumerate.max_pops = 20_000; max_candidates = 50 }
  in
  let outcome =
    Enumerate.run config (ctx "movie names and years") db ~tsq:None ~literals:[] ()
  in
  let rec pairwise_distinct = function
    | [] -> true
    | c :: rest ->
        List.for_all
          (fun c' ->
            not
              (Duosql.Equal.queries c.Enumerate.cand_query c'.Enumerate.cand_query))
          rest
        && pairwise_distinct rest
  in
  Alcotest.(check bool) "no duplicate candidates" true
    (pairwise_distinct outcome.Enumerate.out_candidates)

let test_partial_to_query_roundtrip () =
  (* A fully decided state must render to a runnable query. *)
  let name_col = Duodb.Schema.find_column_exn schema ~table:"movies" "name" in
  let st =
    { Partial.root with
      Partial.phase = Partial.P_done;
      kw = { Model.kw_where = false; kw_group = false; kw_order = false };
      nproj = 1;
      projs =
        [ { Partial.pj_target = Model.Target_column name_col; pj_agg = Some None } ];
      from = Some (Duosql.Ast.from_table "movies") }
  in
  match Partial.to_query st with
  | Some q ->
      let res = Duoengine.Executor.run_exn db q in
      Alcotest.(check int) "6 movies" 6 (Duoengine.Executor.cardinality res)
  | None -> Alcotest.fail "expected a complete query"

let test_partial_key_distinguishes () =
  let a = Partial.root in
  let b = { Partial.root with Partial.phase = Partial.P_num_proj } in
  Alcotest.(check bool) "different phases, different keys" true
    (Partial.key a <> Partial.key b);
  Alcotest.(check string) "key deterministic" (Partial.key a) (Partial.key a)

let test_stats_attribution () =
  let tsq =
    Duocore.Tsq.make ~types:[ Duodb.Datatype.Text ]
      ~tuples:[ [ Duocore.Tsq.Exact (Duodb.Value.Text "Forrest Gump") ] ]
      ()
  in
  let config =
    { Enumerate.default_config with Enumerate.max_pops = 5_000; max_candidates = 20 }
  in
  let outcome =
    Enumerate.run config (ctx "movie names") db ~tsq:(Some tsq) ~literals:[] ()
  in
  let s = outcome.Enumerate.out_stats in
  let attributed =
    List.fold_left
      (fun acc st -> acc + Duocore.Verify.pruned_by s st)
      0 Duocore.Verify.all_stages
  in
  Alcotest.(check int) "every prune attributed to a stage" s.Duocore.Verify.pruned
    attributed

(* --- Duopar: parallel enumeration is observably identical --- *)

(* [overcommit] forces the speculative path even on a single-core test
   machine — these tests are about determinism of the machinery, not
   about whether parallelism pays off here. *)
let run_at ~domains ?tsq nlq =
  let config =
    { Enumerate.default_config with
      Enumerate.max_pops = 4_000;
      max_candidates = 30;
      time_budget_s = 20.0;
      domains;
      overcommit = true }
  in
  Enumerate.run config (ctx nlq) db ~tsq ~literals:[] ()

let candidate_sigs (o : Enumerate.outcome) =
  List.map
    (fun c ->
      ( Duosql.Pretty.query c.Enumerate.cand_query,
        c.Enumerate.cand_index,
        c.Enumerate.cand_pops ))
    o.Enumerate.out_candidates

let check_identical seq par =
  Alcotest.(check (list (triple string int int)))
    "same candidates, same order, same pop counts" (candidate_sigs seq)
    (candidate_sigs par);
  Alcotest.(check int) "same pops" seq.Enumerate.out_pops par.Enumerate.out_pops;
  Alcotest.(check int) "same pushes" seq.Enumerate.out_pushed
    par.Enumerate.out_pushed;
  List.iter
    (fun stage ->
      Alcotest.(check int)
        (Printf.sprintf "same prunes in %s" (Duocore.Verify.stage_name stage))
        (Duocore.Verify.pruned_by seq.Enumerate.out_stats stage)
        (Duocore.Verify.pruned_by par.Enumerate.out_stats stage))
    Duocore.Verify.all_stages

let test_parallel_identical_nli () =
  check_identical
    (run_at ~domains:1 "movie names and years")
    (run_at ~domains:4 "movie names and years")

let test_parallel_identical_dual () =
  let tsq =
    Duocore.Tsq.make ~types:[ Duodb.Datatype.Text ]
      ~tuples:[ [ Duocore.Tsq.Exact (Duodb.Value.Text "Forrest Gump") ] ]
      ()
  in
  let seq = run_at ~domains:1 ~tsq "movie names" in
  let par = run_at ~domains:4 ~tsq "movie names" in
  check_identical seq par;
  Alcotest.(check bool) "found something" true
    (seq.Enumerate.out_candidates <> []);
  Alcotest.(check int) "domains recorded" 4 par.Enumerate.out_domains;
  (* per-domain records add up to the merged totals *)
  let committed =
    Array.fold_left
      (fun acc (ds : Duocore.Verify.stats) -> acc + ds.Duocore.Verify.pruned)
      0 par.Enumerate.out_domain_stats
  in
  Alcotest.(check int) "domain prunes sum to total"
    par.Enumerate.out_stats.Duocore.Verify.pruned committed

(* Duopar v2: the adaptive controller, a pinned adversarial schedule and
   the arena on/off switch are all pure performance knobs — every
   configuration is observably identical to the sequential run, and the
   outcome's controller counters reflect the regime that ran. *)
let test_adaptive_regimes_identical () =
  let run ?(adaptive = true) ?schedule ?(arena = true) domains =
    let config =
      { Enumerate.default_config with
        Enumerate.max_pops = 4_000;
        max_candidates = 30;
        time_budget_s = 20.0;
        domains;
        overcommit = true;
        spec_adaptive = adaptive;
        spec_schedule = schedule;
        arena }
    in
    Enumerate.run config (ctx "movie names and years") db ~tsq:None
      ~literals:[] ()
  in
  let seq = run 1 in
  let adaptive = run 4 in
  check_identical seq adaptive;
  Alcotest.(check bool) "controller sized some round" true
    (adaptive.Enumerate.out_spec_round_size >= 1);
  let fixed = run ~adaptive:false 4 in
  check_identical seq fixed;
  Alcotest.(check int) "fixed profile never adapts" 0
    (fixed.Enumerate.out_spec_grows + fixed.Enumerate.out_spec_shrinks);
  (* thrash the size between the floor and far past the ceiling *)
  let adversarial = run ~schedule:(fun i -> (i * 13 mod 37) - 1) 4 in
  check_identical seq adversarial;
  let no_arena = run ~arena:false 4 in
  check_identical seq no_arena;
  (* floor-1 rounds degenerate to the sequential loop: every speculated
     state is the one the committing loop pops next *)
  let floor1 = run ~schedule:(fun _ -> 1) 4 in
  check_identical seq floor1;
  Alcotest.(check int) "floor-1 speculation all commits"
    floor1.Enumerate.out_spec_tasks floor1.Enumerate.out_spec_hits

let test_parallel_exhaustion_identical () =
  (* the exhaustive-enumeration flag and drop accounting survive
     speculation: restored states keep their identity *)
  let tsq =
    Duocore.Tsq.make ~types:[ Duodb.Datatype.Text ]
      ~tuples:[ [ Duocore.Tsq.Exact (Duodb.Value.Text "No Such Value Anywhere") ] ]
      ()
  in
  let run domains =
    let config =
      { Enumerate.default_config with
        Enumerate.max_pops = 200_000;
        time_budget_s = 20.0;
        domains;
        overcommit = true }
    in
    Enumerate.run config (ctx "names") db ~tsq:(Some tsq) ~literals:[] ()
  in
  let seq = run 1 and par = run 3 in
  Alcotest.(check int) "no candidates" 0 (List.length par.Enumerate.out_candidates);
  Alcotest.(check bool) "still exhausted" par.Enumerate.out_exhausted
    seq.Enumerate.out_exhausted;
  Alcotest.(check int) "same pops" seq.Enumerate.out_pops par.Enumerate.out_pops

(* --- resumable stepping: pause/resume is observably identical --------- *)

let config_for ~domains =
  { Enumerate.default_config with
    Enumerate.max_pops = 4_000;
    max_candidates = 30;
    time_budget_s = 20.0;
    domains;
    overcommit = true }

(* Drive a run as a sequence of [slice]-pop steps; returns the final
   outcome and how many step calls it took. *)
let stepped ~slice ~domains ?tsq ?config nlq =
  let config = match config with Some c -> c | None -> config_for ~domains in
  let s = Enumerate.init config (ctx nlq) db ~tsq ~literals:[] () in
  Fun.protect
    ~finally:(fun () -> Enumerate.release s)
    (fun () ->
      let steps = ref 0 in
      let rec go () =
        incr steps;
        match Enumerate.step ~max_pops:slice s with
        | Enumerate.Running -> go ()
        | Enumerate.Finished -> ()
      in
      go ();
      Alcotest.(check bool) "finished reported" true (Enumerate.finished s);
      (* stepping a finished state is a no-op *)
      (match Enumerate.step ~max_pops:slice s with
      | Enumerate.Finished -> ()
      | Enumerate.Running -> Alcotest.fail "step after Finished ran");
      (Enumerate.outcome s, !steps))

let check_flags (seq : Enumerate.outcome) (st : Enumerate.outcome) =
  Alcotest.(check bool) "same exhausted flag" seq.Enumerate.out_exhausted
    st.Enumerate.out_exhausted;
  Alcotest.(check int) "same dropped count" seq.Enumerate.out_dropped
    st.Enumerate.out_dropped

let test_resume_identical_nli () =
  let full = run_at ~domains:1 "movie names and years" in
  List.iter
    (fun slice ->
      let st, steps = stepped ~slice ~domains:1 "movie names and years" in
      Alcotest.(check bool)
        (Printf.sprintf "slice %d really paused" slice)
        true
        (steps > 1);
      check_identical full st;
      check_flags full st)
    [ 1; 7; 64 ]

let test_resume_identical_dual () =
  let tsq =
    Duocore.Tsq.make ~types:[ Duodb.Datatype.Text ]
      ~tuples:[ [ Duocore.Tsq.Exact (Duodb.Value.Text "Forrest Gump") ] ]
      ()
  in
  let full = run_at ~domains:1 ~tsq "movie names" in
  Alcotest.(check bool) "found something" true
    (full.Enumerate.out_candidates <> []);
  let st, _ = stepped ~slice:5 ~domains:1 ~tsq "movie names" in
  check_identical full st;
  check_flags full st

let test_resume_identical_duopar () =
  (* pausing between speculative rounds must not change what the
     committing loop commits *)
  let full = run_at ~domains:1 "movie names and years" in
  let st, _ = stepped ~slice:3 ~domains:4 "movie names and years" in
  check_identical full st;
  check_flags full st

let test_resume_exhaustion_flags () =
  let tsq =
    Duocore.Tsq.make ~types:[ Duodb.Datatype.Text ]
      ~tuples:[ [ Duocore.Tsq.Exact (Duodb.Value.Text "No Such Value Anywhere") ] ]
      ()
  in
  let config =
    { Enumerate.default_config with
      Enumerate.max_pops = 200_000;
      time_budget_s = 20.0 }
  in
  let full = Enumerate.run config (ctx "names") db ~tsq:(Some tsq) ~literals:[] () in
  let st, _ = stepped ~slice:17 ~domains:1 ~tsq ~config "names" in
  Alcotest.(check bool) "exhaustive run" true full.Enumerate.out_exhausted;
  check_identical full st;
  check_flags full st

let test_resume_snapshot_prefix () =
  (* a mid-run snapshot's candidates are a prefix of the final list *)
  let config = config_for ~domains:1 in
  let s =
    Enumerate.init config (ctx "movie names and years") db ~tsq:None
      ~literals:[] ()
  in
  Fun.protect
    ~finally:(fun () -> Enumerate.release s)
    (fun () ->
      let rec drive snapshots =
        let snap = Enumerate.outcome s in
        match Enumerate.step ~max_pops:40 s with
        | Enumerate.Running -> drive (snap :: snapshots)
        | Enumerate.Finished -> (Enumerate.outcome s, snapshots)
      in
      let final, snapshots = drive [] in
      let final_sigs = candidate_sigs final in
      List.iter
        (fun snap ->
          let sigs = candidate_sigs snap in
          let n = List.length sigs in
          Alcotest.(check (list (triple string int int)))
            "snapshot is a prefix of the final candidates" sigs
            (List.filteri (fun i _ -> i < n) final_sigs))
        snapshots)

let suite =
  [
    Alcotest.test_case "root expansion" `Quick test_root_expansion;
    Alcotest.test_case "resume: stepped NLI run identical" `Quick
      test_resume_identical_nli;
    Alcotest.test_case "resume: stepped dual-spec run identical" `Quick
      test_resume_identical_dual;
    Alcotest.test_case "resume: stepped duopar run identical" `Quick
      test_resume_identical_duopar;
    Alcotest.test_case "resume: exhaustion flags survive pausing" `Quick
      test_resume_exhaustion_flags;
    Alcotest.test_case "resume: snapshots are prefixes" `Quick
      test_resume_snapshot_prefix;
    Alcotest.test_case "duopar: NLI run identical" `Quick
      test_parallel_identical_nli;
    Alcotest.test_case "duopar: dual-spec run identical" `Quick
      test_parallel_identical_dual;
    Alcotest.test_case "duopar: adaptive regimes identical" `Quick
      test_adaptive_regimes_identical;
    Alcotest.test_case "duopar: exhaustion identical" `Quick
      test_parallel_exhaustion_identical;
    Alcotest.test_case "confidence partition" `Quick test_confidence_partition;
    Alcotest.test_case "uniform mode" `Quick test_uniform_mode;
    Alcotest.test_case "done is terminal" `Quick test_done_is_terminal;
    Alcotest.test_case "hints from TSQ" `Quick test_hints_of_tsq;
    Alcotest.test_case "pop budget respected" `Quick test_run_respects_budget;
    Alcotest.test_case "impossible TSQ yields nothing" `Quick test_run_exhausts_tiny_space;
    Alcotest.test_case "dropped states veto exhaustion" `Quick
      test_dropped_states_veto_exhaustion;
    Alcotest.test_case "time budget is wall-clock" `Quick
      test_time_budget_is_wall_clock;
    Alcotest.test_case "candidates unique" `Quick test_candidates_unique;
    Alcotest.test_case "partial to_query" `Quick test_partial_to_query_roundtrip;
    Alcotest.test_case "partial keys" `Quick test_partial_key_distinguishes;
    Alcotest.test_case "prune attribution" `Quick test_stats_attribution;
  ]
