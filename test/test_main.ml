let () =
  Alcotest.run "duoquest"
    [
      ("value", Test_value.suite);
      ("schema", Test_schema.suite);
      ("table+db+index", Test_table.suite);
      ("sql front", Test_sql.suite);
      ("executor", Test_executor.suite);
      ("executor vs reference", Test_executor_ref.suite);
      ("planner", Test_planner.suite);
      ("nl", Test_nl.suite);
      ("guidance", Test_guidance.suite);
      ("tsq", Test_tsq.suite);
      ("steiner+joinpath", Test_steiner.suite);
      ("semantics", Test_semantics.suite);
      ("duolint", Test_lint.suite);
      ("duosem", Test_sem.suite);
      ("verify", Test_verify.suite);
      ("frontier", Test_frontier.suite);
      ("duopar pool", Test_par.suite);
      ("enumerate", Test_enumerate.suite);
      ("rng", Test_rng.suite);
      ("pbe", Test_pbe.suite);
      ("describe", Test_describe.suite);
      ("csv", Test_csv.suite);
      ("feedback", Test_feedback.suite);
      ("spider workload", Test_spider.suite);
      ("simulation pipeline", Test_simulation.suite);
      ("synthesis", Test_synth.suite);
      ("refinement", Test_refine.suite);
      ("mas workload", Test_mas.suite);
      ("duoserve", Test_serve.suite);
      ("duocheck", Test_check.suite);
      ("user simulation", Test_usersim.suite);
    ]
