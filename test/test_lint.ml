(* Duolint: the interval/constant abstract domain (meet/join/widen,
   QCheck abstraction soundness) and the rule engine's open-world
   discipline — errors may only fire on decided clauses, and a partial
   query that could still repair itself must never be rejected. *)

open Duosql.Ast
module Value = Duodb.Value
module Domain = Duolint.Domain
module Diag = Duolint.Diagnostic
module Outline = Duolint.Outline
module Analyze = Duolint.Analyze

let i n = Value.Int n
let f x = Value.Float x
let t s = Value.Text s

let dom =
  Alcotest.testable Domain.pp Domain.equal

let itv ?lo ?hi ?(excl = []) () = Domain.Itv { lo; hi; excl }

(* --- meet --- *)

let test_meet_contradiction () =
  (* x > 5 AND x < 3 *)
  Alcotest.check dom "x>5 /\\ x<3 = bot" Domain.bot
    (Domain.meet (Domain.of_rhs (Cmp (Gt, i 5))) (Domain.of_rhs (Cmp (Lt, i 3))));
  (* x = 'a' AND x = 'b' *)
  Alcotest.check dom "'a' /\\ 'b' = bot" Domain.bot
    (Domain.meet (Domain.point (t "a")) (Domain.point (t "b")));
  (* x = 5 AND x <> 5 *)
  Alcotest.check dom "=5 /\\ <>5 = bot" Domain.bot
    (Domain.meet (Domain.of_rhs (Cmp (Eq, i 5))) (Domain.of_rhs (Cmp (Neq, i 5))));
  (* strict empty pinch: x > 5 AND x < 5 and even x >= 5 AND x < 5 *)
  Alcotest.check dom ">5 /\\ <5 = bot" Domain.bot
    (Domain.meet (Domain.of_rhs (Cmp (Gt, i 5))) (Domain.of_rhs (Cmp (Lt, i 5))));
  Alcotest.check dom ">=5 /\\ <5 = bot" Domain.bot
    (Domain.meet (Domain.of_rhs (Cmp (Ge, i 5))) (Domain.of_rhs (Cmp (Lt, i 5))))

let test_meet_narrows () =
  Alcotest.check dom "[1,10] /\\ [5,20] = [5,10]"
    (itv ~lo:(i 5, false) ~hi:(i 10, false) ())
    (Domain.meet
       (Domain.of_rhs (Between (i 1, i 10)))
       (Domain.of_rhs (Between (i 5, i 20))));
  (* the Helly-breaking trio: pairwise nonempty, jointly empty *)
  let neq5 = Domain.of_rhs (Cmp (Neq, i 5)) in
  let ge5 = Domain.of_rhs (Cmp (Ge, i 5)) in
  let le5 = Domain.of_rhs (Cmp (Le, i 5)) in
  Alcotest.(check bool) "pairwise nonempty" false
    (Domain.is_bot (Domain.meet neq5 ge5)
    || Domain.is_bot (Domain.meet neq5 le5)
    || Domain.is_bot (Domain.meet ge5 le5));
  Alcotest.check dom "jointly bot" Domain.bot
    (Domain.meet neq5 (Domain.meet ge5 le5))

let test_meet_floats_cross_type () =
  (* ints and floats share one numeric order *)
  Alcotest.(check bool) "2.5 in [2,3]" true
    (Domain.mem (f 2.5) (Domain.of_rhs (Between (i 2, i 3))));
  Alcotest.check dom "[1.5,2.5] /\\ [2,3] = [2,2.5]"
    (itv ~lo:(i 2, false) ~hi:(f 2.5, false) ())
    (Domain.meet
       (Domain.of_rhs (Between (f 1.5, f 2.5)))
       (Domain.of_rhs (Between (i 2, i 3))))

(* --- join --- *)

let test_join_hull () =
  Alcotest.check dom "[1,2] \\/ [5,6] = [1,6]"
    (itv ~lo:(i 1, false) ~hi:(i 6, false) ())
    (Domain.join
       (Domain.of_rhs (Between (i 1, i 2)))
       (Domain.of_rhs (Between (i 5, i 6))));
  Alcotest.check dom "top absorbs" Domain.top
    (Domain.join Domain.top (Domain.point (i 3)));
  Alcotest.check dom "bot is neutral" (Domain.point (i 3))
    (Domain.join Domain.bot (Domain.point (i 3)))

let test_join_keeps_common_exclusion () =
  (* 5 is outside both operands, so it stays excluded *)
  let j = Domain.join (Domain.of_rhs (Cmp (Neq, i 5))) (Domain.point (i 3)) in
  Alcotest.(check bool) "5 still out" false (Domain.mem (i 5) j);
  (* but an exclusion one side covers is dropped *)
  let j' =
    Domain.join (Domain.of_rhs (Cmp (Neq, i 5))) (Domain.of_rhs (Between (i 4, i 6)))
  in
  Alcotest.(check bool) "5 back in" true (Domain.mem (i 5) j')

(* --- widening --- *)

let test_widen () =
  let b lo hi = itv ~lo:(i lo, false) ~hi:(i hi, false) () in
  (* moved hi drops to +inf, stable lo survives *)
  Alcotest.check dom "growing hi widens" (itv ~lo:(i 1, false) ())
    (Domain.widen (b 1 10) (b 1 12));
  Alcotest.check dom "growing lo widens" (itv ~hi:(i 10, false) ())
    (Domain.widen (b 1 10) (b 0 10));
  Alcotest.check dom "stable interval unchanged" (b 1 10)
    (Domain.widen (b 1 10) (b 1 10));
  (* a chain that alternates growth stabilizes at top in two steps *)
  let w1 = Domain.widen (b 1 10) (b 0 12) in
  Alcotest.check dom "both moved: top" Domain.top w1;
  Alcotest.check dom "widen is idempotent at top" Domain.top
    (Domain.widen w1 Domain.top);
  (* exclusions only shrink *)
  let ne = Domain.of_rhs (Cmp (Neq, i 5)) in
  Alcotest.(check bool) "exclusion kept while next rules it out" false
    (Domain.mem (i 5) (Domain.widen ne ne));
  Alcotest.check dom "exclusion dropped when next admits it" Domain.top
    (Domain.widen ne Domain.top);
  (* unbounded on both ends from the start *)
  Alcotest.check dom "top widens to top" Domain.top (Domain.widen Domain.top Domain.top)

(* --- order, emptiness, null --- *)

let test_leq_and_empty () =
  Alcotest.(check bool) "[2,3] <= [1,5]" true
    (Domain.leq (Domain.of_rhs (Between (i 2, i 3))) (Domain.of_rhs (Between (i 1, i 5))));
  Alcotest.(check bool) "[1,5] </= [2,3]" false
    (Domain.leq (Domain.of_rhs (Between (i 1, i 5))) (Domain.of_rhs (Between (i 2, i 3))));
  Alcotest.(check bool) "bot <= everything" true
    (Domain.leq Domain.bot (Domain.point (t "z")));
  (* inverted BETWEEN is empty *)
  Alcotest.check dom "BETWEEN 5 AND 1 = bot" Domain.bot
    (Domain.of_rhs (Between (i 5, i 1)));
  (* text ordering: 'a' < 'b' *)
  Alcotest.(check bool) "'a' in (-inf,'b')" true
    (Domain.mem (t "a") (Domain.of_rhs (Cmp (Lt, t "b"))))

let test_null_never_member () =
  List.iter
    (fun d ->
      Alcotest.(check bool) "null out" false (Domain.mem Value.Null d))
    [ Domain.top; Domain.point Value.Null; Domain.of_rhs (Cmp (Neq, i 1));
      Domain.of_rhs (Between (i (-5), i 5)) ];
  Alcotest.check dom "point null = bot" Domain.bot (Domain.point Value.Null);
  Alcotest.check dom "x = NULL is unsatisfiable" Domain.bot
    (Domain.of_rhs (Cmp (Eq, Value.Null)))

(* --- QCheck: abstraction soundness --- *)

let arb_value =
  QCheck.oneof
    [
      QCheck.map (fun n -> i n) QCheck.(int_range (-20) 20);
      QCheck.map (fun x -> f (float_of_int x /. 4.0)) QCheck.(int_range (-80) 80);
      QCheck.map (fun c -> t (String.make 1 c)) QCheck.printable_char;
    ]

let arb_rhs =
  QCheck.oneof
    [
      QCheck.map (fun v -> Cmp (Eq, v)) arb_value;
      QCheck.map (fun v -> Cmp (Neq, v)) arb_value;
      QCheck.map (fun v -> Cmp (Lt, v)) arb_value;
      QCheck.map (fun v -> Cmp (Le, v)) arb_value;
      QCheck.map (fun v -> Cmp (Gt, v)) arb_value;
      QCheck.map (fun v -> Cmp (Ge, v)) arb_value;
      QCheck.map
        (fun (a, b) -> Between (a, b))
        (QCheck.pair arb_value arb_value);
    ]

(* the concrete truth of [v <op> w] under SQL three-valued logic with
   NULL collapsed to false — mirrors the executor's eval_cmp *)
let concrete_sat v rhs =
  match rhs with
  | Cmp (op, w) -> (
      let c = Value.compare v w in
      match op with
      | Eq -> c = 0
      | Neq -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0
      | Like | Not_like -> false (* not generated *))
  | Between (lo, hi) -> Value.compare lo v <= 0 && Value.compare v hi <= 0

let abstraction_sound =
  QCheck.Test.make ~count:2000 ~name:"mem (of_rhs p) = concrete truth"
    (QCheck.pair arb_value arb_rhs)
    (fun (v, rhs) -> Domain.mem v (Domain.of_rhs rhs) = concrete_sat v rhs)

let concretize_abstract =
  QCheck.Test.make ~count:500 ~name:"concretize (abstract v) = Some v"
    arb_value
    (fun v -> Domain.concretize (Domain.abstract v) = Some v)

let meet_exact =
  QCheck.Test.make ~count:2000 ~name:"meet is exact intersection"
    (QCheck.triple arb_value arb_rhs arb_rhs)
    (fun (v, r1, r2) ->
      Domain.mem v (Domain.meet (Domain.of_rhs r1) (Domain.of_rhs r2))
      = (concrete_sat v r1 && concrete_sat v r2))

let join_sound =
  QCheck.Test.make ~count:2000 ~name:"join over-approximates union"
    (QCheck.triple arb_value arb_rhs arb_rhs)
    (fun (v, r1, r2) ->
      (not (concrete_sat v r1 || concrete_sat v r2))
      || Domain.mem v (Domain.join (Domain.of_rhs r1) (Domain.of_rhs r2)))

let widen_sound =
  QCheck.Test.make ~count:2000 ~name:"widen over-approximates its operands"
    (QCheck.triple arb_value arb_rhs arb_rhs)
    (fun (v, r1, r2) ->
      let a = Domain.of_rhs r1 and b = Domain.of_rhs r2 in
      (not (Domain.mem v a || Domain.mem v b)) || Domain.mem v (Domain.widen a b))

(* --- rules: errors, warnings, open-world gating --- *)

let schema = Fixtures.movie_schema

let year = col "movies" "year"
let name = col "movies" "name"
let mid = col "movies" "mid"

let sel cols =
  List.map (fun c -> { p_agg = None; p_col = Some c; p_distinct = false }) cols

let from1 = { f_tables = [ "movies" ]; f_joins = [] }

let base_query =
  {
    q_distinct = false;
    q_select = sel [ name ];
    q_from = from1;
    q_where = None;
    q_group_by = [];
    q_having = None;
    q_order_by = [];
    q_limit = None;
  }

let rules ds = List.map (fun d -> d.Diag.d_rule) ds

let has rule ds = List.mem rule (rules ds)

let test_clean_query () =
  Alcotest.(check (list string)) "no diagnostics" []
    (List.map Diag.rule_name (rules (Analyze.check_query schema base_query)))

let test_error_rules () =
  let where preds =
    { base_query with q_where = Some { c_preds = preds; c_conn = And } }
  in
  let p c rhs = { pr_agg = None; pr_col = Some c; pr_rhs = rhs } in
  Alcotest.(check bool) "contradiction" true
    (has Diag.Unsatisfiable_where
       (Analyze.check_query schema
          (where [ p year (Cmp (Gt, i 2000)); p year (Cmp (Lt, i 1990)) ])));
  Alcotest.(check bool) "eq/neq conflict" true
    (has Diag.Unsatisfiable_where
       (Analyze.check_query schema
          (where [ p name (Cmp (Eq, t "Seven")); p name (Cmp (Neq, t "Seven")) ])));
  Alcotest.(check bool) "unknown column" true
    (has Diag.Unknown_column
       (Analyze.check_query schema (where [ p (col "movies" "nope") (Cmp (Eq, i 1)) ])));
  Alcotest.(check bool) "unknown table" true
    (has Diag.Unknown_table
       (Analyze.check_query schema
          { base_query with
            q_from = { f_tables = [ "moviez" ]; f_joins = [] };
            q_select = sel [ col "moviez" "name" ] }));
  Alcotest.(check bool) "type error" true
    (has Diag.Comparison_type
       (Analyze.check_query schema (where [ p name (Cmp (Lt, i 3)) ])));
  Alcotest.(check bool) "sum over text" true
    (has Diag.Aggregate_type
       (Analyze.check_query schema
          { base_query with
            q_select = [ { p_agg = Some Sum; p_col = Some name; p_distinct = false } ] }));
  Alcotest.(check bool) "limit 0" true
    (has Diag.Nonpositive_limit
       (Analyze.check_query schema { base_query with q_limit = Some 0 }));
  Alcotest.(check bool) "group by pk" true
    (has Diag.Group_by_primary_key
       (Analyze.check_query schema
          { base_query with
            q_select =
              [ { p_agg = None; p_col = Some mid; p_distinct = false };
                { p_agg = Some Count; p_col = Some year; p_distinct = false } ];
            q_group_by = [ mid ] }));
  Alcotest.(check bool) "disconnected from" true
    (has Diag.Disconnected_from
       (Analyze.check_query schema
          { base_query with
            q_from = { f_tables = [ "movies"; "actor" ]; f_joins = [] } }))

let test_warning_rules () =
  let where preds =
    { base_query with q_where = Some { c_preds = preds; c_conn = And } }
  in
  let p c rhs = { pr_agg = None; pr_col = Some c; pr_rhs = rhs } in
  let dup = where [ p year (Cmp (Gt, i 2000)); p year (Cmp (Gt, i 2000)) ] in
  Alcotest.(check bool) "duplicate predicate" true
    (has Diag.Duplicate_predicate (Analyze.check_query schema dup));
  Alcotest.(check bool) "duplicates are warnings, not errors" true
    (Analyze.errors (Analyze.check_query schema dup) = []);
  Alcotest.(check bool) "subsumed predicate" true
    (has Diag.Subsumed_predicate
       (Analyze.check_query schema
          (where [ p year (Cmp (Gt, i 2000)); p year (Cmp (Gt, i 1990)) ])));
  Alcotest.(check bool) "self join" true
    (has Diag.Self_join
       (Analyze.check_query schema
          { base_query with
            q_from =
              { f_tables = [ "movies" ];
                f_joins = [ { j_from = mid; j_to = mid } ] } }));
  Alcotest.(check bool) "constant output" true
    (has Diag.Constant_output
       (Analyze.check_query schema
          { (where [ p name (Cmp (Eq, t "Seven")) ]) with q_select = sel [ name ] }))

let test_open_world_gating () =
  (* the same contradictory predicates: decided but non-final WHERE must
     not error (an open OR could still repair the conjunction) *)
  let p c rhs = { pr_agg = None; pr_col = Some c; pr_rhs = rhs } in
  let preds = [ p year (Cmp (Gt, i 2000)); p year (Cmp (Lt, i 1990)) ] in
  let partial =
    { Outline.empty with Outline.o_where = preds; o_where_conn = None }
  in
  Alcotest.(check bool) "non-final WHERE: no error" false
    (Analyze.has_errors schema partial);
  let final =
    { partial with Outline.o_where_conn = Some And; o_where_final = true }
  in
  Alcotest.(check bool) "final WHERE: error" true (Analyze.has_errors schema final);
  (* structural FROM errors wait for the final clause — join-path
     construction may replace FROM wholesale *)
  let broken_from =
    { Outline.empty with
      Outline.o_from = Some { f_tables = [ "movies"; "actor" ]; f_joins = [] } }
  in
  Alcotest.(check bool) "non-final FROM: no error" false
    (Analyze.has_errors schema broken_from);
  Alcotest.(check bool) "final FROM: error" true
    (Analyze.has_errors schema { broken_from with Outline.o_from_final = true });
  (* unknown column references are decided facts: they fire immediately *)
  let bad_sel =
    { Outline.empty with Outline.o_select = sel [ col "movies" "nope" ] }
  in
  Alcotest.(check bool) "unknown column fires on partials" true
    (Analyze.has_errors schema bad_sel);
  (* empty outline (the enumeration root) is silent *)
  Alcotest.(check bool) "root outline clean" false
    (Analyze.has_errors schema Outline.empty)

let qcheck_cases =
  List.map
    (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x11A7 |]))
    [ abstraction_sound; concretize_abstract; meet_exact; join_sound; widen_sound ]

(* --- LIKE refinement: the case-folded prefix band --- *)

let test_like_prefix_band () =
  (* LIKE 'abc%': every match starts with abc in some case, so it lies in
     [uppercase(prefix), succ(lowercase(prefix))) — here ['ABC', 'abd') *)
  Alcotest.check dom "LIKE 'abc%' = ['ABC','abd')"
    (itv ~lo:(t "ABC", false) ~hi:(t "abd", true) ())
    (Domain.of_rhs (Cmp (Like, t "abc%")));
  (* members and non-members of the band *)
  Alcotest.(check bool) "'abcde' in band" true
    (Domain.mem (t "abcde") (Domain.of_rhs (Cmp (Like, t "abc%"))));
  Alcotest.(check bool) "'abd' out of band" false
    (Domain.mem (t "abd") (Domain.of_rhs (Cmp (Like, t "abc%"))));
  (* the band is an over-approximation: 'abZ' is inside ['AB','ac') yet
     does not match 'ab%' — which is exactly why LIKE is not exact *)
  Alcotest.(check bool) "'abZ' inside the LIKE 'ab%' band" true
    (Domain.mem (t "abZ") (Domain.of_rhs (Cmp (Like, t "ab%"))));
  (* _ is a wildcard too and ends the prefix *)
  Alcotest.check dom "LIKE 'ab_d' = ['AB','ac')"
    (itv ~lo:(t "AB", false) ~hi:(t "ac", true) ())
    (Domain.of_rhs (Cmp (Like, t "ab_d")))

let test_like_no_wildcard () =
  (* a wildcard-free pattern is a case-insensitive equality: the band
     closes at lowercase(pattern) inclusive *)
  Alcotest.check dom "LIKE 'AbC' = ['ABC','abc']"
    (itv ~lo:(t "ABC", false) ~hi:(t "abc", false) ())
    (Domain.of_rhs (Cmp (Like, t "AbC")));
  Alcotest.(check bool) "'aBc' member" true
    (Domain.mem (t "aBc") (Domain.of_rhs (Cmp (Like, t "AbC"))))

let test_like_degenerate () =
  (* a leading wildcard gives no prefix: anything can match *)
  Alcotest.check dom "LIKE '%abc' = top" Domain.top
    (Domain.of_rhs (Cmp (Like, t "%abc")));
  (* NOT LIKE's satisfying set is no interval at all *)
  Alcotest.check dom "NOT LIKE 'abc%' = top" Domain.top
    (Domain.of_rhs (Cmp (Not_like, t "abc%")));
  (* LIKE intersects usefully with other constraints for unsat proofs *)
  Alcotest.check dom "LIKE 'abc%' /\\ ='zz' = bot" Domain.bot
    (Domain.meet
       (Domain.of_rhs (Cmp (Like, t "abc%")))
       (Domain.of_rhs (Cmp (Eq, t "zz"))))

let test_like_not_exact () =
  (* only exact abstractions may sit on the implied side of subsumption *)
  Alcotest.(check bool) "LIKE inexact" false
    (Domain.exact_rhs (Cmp (Like, t "abc%")));
  Alcotest.(check bool) "NOT LIKE inexact" false
    (Domain.exact_rhs (Cmp (Not_like, t "abc%")));
  Alcotest.(check bool) "Eq exact" true (Domain.exact_rhs (Cmp (Eq, t "abc")));
  Alcotest.(check bool) "BETWEEN exact" true
    (Domain.exact_rhs (Between (i 1, i 2)))

let suite =
  [
    Alcotest.test_case "meet: contradictions" `Quick test_meet_contradiction;
    Alcotest.test_case "like: prefix band" `Quick test_like_prefix_band;
    Alcotest.test_case "like: no wildcard" `Quick test_like_no_wildcard;
    Alcotest.test_case "like: degenerate" `Quick test_like_degenerate;
    Alcotest.test_case "like: inexact" `Quick test_like_not_exact;
    Alcotest.test_case "meet: narrowing" `Quick test_meet_narrows;
    Alcotest.test_case "meet: numeric cross-type" `Quick test_meet_floats_cross_type;
    Alcotest.test_case "join: hull" `Quick test_join_hull;
    Alcotest.test_case "join: exclusions" `Quick test_join_keeps_common_exclusion;
    Alcotest.test_case "widening" `Quick test_widen;
    Alcotest.test_case "leq + emptiness" `Quick test_leq_and_empty;
    Alcotest.test_case "null membership" `Quick test_null_never_member;
    Alcotest.test_case "rules: clean query" `Quick test_clean_query;
    Alcotest.test_case "rules: errors" `Quick test_error_rules;
    Alcotest.test_case "rules: warnings" `Quick test_warning_rules;
    Alcotest.test_case "rules: open-world gating" `Quick test_open_world_gating;
  ]
  @ qcheck_cases
