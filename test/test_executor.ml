module Value = Duodb.Value
module Executor = Duoengine.Executor

let db = Fixtures.movie_db ()
let run sql = Fixtures.run_rows db sql
let i n = Value.Int n
let t s = Value.Text s

let check_rows name expected actual =
  Alcotest.check Fixtures.rows_testable name expected actual

let test_project () =
  check_rows "actor names"
    [ [| t "Tom Hanks" |]; [| t "Sandra Bullock" |]; [| t "Brad Pitt" |];
      [| t "Meryl Streep" |]; [| t "Leonardo DiCaprio" |] ]
    (run "SELECT actor.name FROM actor")

let test_where_and () =
  check_rows "male actors born after 1960"
    [ [| t "Brad Pitt" |]; [| t "Leonardo DiCaprio" |] ]
    (run "SELECT actor.name FROM actor WHERE actor.gender = 'male' AND actor.birth_yr > 1960")

let test_where_or () =
  check_rows "movies before 1995 or after 2015"
    [ [| t "Forrest Gump" |]; [| t "The Post" |] ]
    (run "SELECT movies.name FROM movies WHERE movies.year < 1995 OR movies.year > 2015")

let test_between () =
  check_rows "movies 2010-2017"
    [ [| t "Gravity" |]; [| t "The Post" |]; [| t "Inception" |] ]
    (run "SELECT movies.name FROM movies WHERE movies.year BETWEEN 2010 AND 2017")

let test_like () =
  check_rows "like G%"
    [ [| t "Gravity" |] ]
    (run "SELECT movies.name FROM movies WHERE movies.name LIKE 'G%'")

let test_not_like () =
  check_rows "not like %i%"
    [ [| t "Forrest Gump"; |]; [| t "Seven" |]; [| t "The Post" |] ]
    (run "SELECT movies.name FROM movies WHERE movies.name NOT LIKE '%i%'")

let test_join () =
  check_rows "who starred in Gravity"
    [ [| t "Sandra Bullock" |] ]
    (run
       "SELECT a.name FROM actor a JOIN starring s ON a.aid = s.aid JOIN movies m \
        ON s.mid = m.mid WHERE m.name = 'Gravity'")

let test_join_order_independent () =
  let q1 =
    run
      "SELECT m.name FROM movies m JOIN starring s ON m.mid = s.mid JOIN actor a \
       ON s.aid = a.aid WHERE a.name = 'Tom Hanks'"
  in
  Alcotest.(check int) "tom hanks stars in 2" 2 (List.length q1)

let test_count_star () =
  check_rows "count actors" [ [| i 5 |] ] (run "SELECT COUNT(*) FROM actor")

let test_count_on_empty_filter () =
  check_rows "count empty is one row of 0" [ [| i 0 |] ]
    (run "SELECT COUNT(*) FROM actor WHERE actor.birth_yr > 3000")

let test_min_max_on_empty_filter () =
  check_rows "min over empty is null" [ [| Value.Null |] ]
    (run "SELECT MIN(actor.birth_yr) FROM actor WHERE actor.birth_yr > 3000")

let test_sum_avg () =
  check_rows "sum revenue pre-1996" [ [| i 1005 |] ]
    (run "SELECT SUM(movies.revenue) FROM movies WHERE movies.year < 1996");
  match run "SELECT AVG(movies.revenue) FROM movies WHERE movies.year < 1996" with
  | [ [| Value.Float f |] ] -> Alcotest.(check (float 0.001)) "avg" 502.5 f
  | _ -> Alcotest.fail "unexpected avg result"

let test_group_by () =
  check_rows "movies per actor"
    [ [| t "Tom Hanks"; i 2 |]; [| t "Sandra Bullock"; i 1 |]; [| t "Brad Pitt"; i 1 |];
      [| t "Meryl Streep"; i 1 |]; [| t "Leonardo DiCaprio"; i 2 |] ]
    (run
       "SELECT a.name, COUNT(*) FROM actor a JOIN starring s ON a.aid = s.aid \
        GROUP BY a.name")

let test_having () =
  check_rows "actors with 2+ movies"
    [ [| t "Tom Hanks" |]; [| t "Leonardo DiCaprio" |] ]
    (run
       "SELECT a.name FROM actor a JOIN starring s ON a.aid = s.aid GROUP BY a.name \
        HAVING COUNT(*) >= 2")

let test_group_max () =
  check_rows "max revenue per gender"
    [ [| t "male"; i 2187 |]; [| t "female"; i 723 |] ]
    (run
       "SELECT a.gender, MAX(m.revenue) FROM actor a JOIN starring s ON a.aid = s.aid \
        JOIN movies m ON s.mid = m.mid GROUP BY a.gender")

let test_order_by () =
  check_rows "movies by year desc, first 3"
    [ [| t "The Post" |]; [| t "Gravity" |]; [| t "Inception" |] ]
    (run "SELECT movies.name FROM movies ORDER BY movies.year DESC LIMIT 3")

let test_order_by_non_projected () =
  check_rows "names ordered by revenue"
    [ [| t "The Post" |]; [| t "Seven" |]; [| t "Forrest Gump" |]; [| t "Gravity" |];
      [| t "Inception" |]; [| t "Titanic" |] ]
    (run "SELECT movies.name FROM movies ORDER BY movies.revenue ASC")

let test_order_by_aggregate () =
  check_rows "actors by movie count desc"
    [ [| t "Tom Hanks" |]; [| t "Leonardo DiCaprio" |]; [| t "Sandra Bullock" |];
      [| t "Brad Pitt" |]; [| t "Meryl Streep" |] ]
    (run
       "SELECT a.name FROM actor a JOIN starring s ON a.aid = s.aid GROUP BY a.name \
        ORDER BY COUNT(*) DESC")

let test_distinct () =
  check_rows "distinct genders" [ [| t "male" |]; [| t "female" |] ]
    (run "SELECT DISTINCT actor.gender FROM actor")

let test_count_distinct () =
  check_rows "count distinct genders" [ [| i 2 |] ]
    (run "SELECT COUNT(DISTINCT actor.gender) FROM actor")

let test_limit_zero () =
  check_rows "limit 0" [] (run "SELECT actor.name FROM actor LIMIT 0")

let test_null_comparisons_false () =
  let db2 = Fixtures.movie_db () in
  Duodb.Database.insert db2 ~table:"movies" [| i 99; t "Mystery"; Value.Null; Value.Null |];
  let rows = Fixtures.run_rows db2 "SELECT movies.name FROM movies WHERE movies.year < 3000" in
  Alcotest.(check int) "null year filtered out" 6 (List.length rows);
  let rows = Fixtures.run_rows db2 "SELECT movies.name FROM movies WHERE movies.year != 1994" in
  Alcotest.(check bool) "null not in !=" true
    (not (List.mem [| t "Mystery" |] rows))

let test_error_unknown_column () =
  match Executor.run db (Fixtures.parse "SELECT movies.name FROM movies" |> fun q ->
    { q with Duosql.Ast.q_select = [ Duosql.Ast.proj_col (Duosql.Ast.col "movies" "ghost") ] })
  with
  | Error e -> Alcotest.(check bool) "mentions column" true (Fixtures.contains e "ghost")
  | Ok _ -> Alcotest.fail "expected error"

let test_error_disconnected_from () =
  let q = Fixtures.parse "SELECT actor.name FROM actor" in
  let q =
    { q with
      Duosql.Ast.q_from = { Duosql.Ast.f_tables = [ "actor"; "movies" ]; f_joins = [] } }
  in
  match Executor.run db q with
  | Error e -> Alcotest.(check bool) "mentions connectivity" true (Fixtures.contains e "connected")
  | Ok _ -> Alcotest.fail "expected error"

let test_output_types () =
  let q =
    Fixtures.parse
      "SELECT a.name, COUNT(*), AVG(m.revenue) FROM actor a JOIN starring s ON \
       a.aid = s.aid JOIN movies m ON s.mid = m.mid GROUP BY a.name"
  in
  match Executor.output_types db q with
  | Ok tys ->
      Alcotest.(check (list string)) "types" [ "text"; "number"; "number" ]
        (List.map Duodb.Datatype.to_string tys)
  | Error e -> Alcotest.fail e

(* Properties over random WHERE thresholds. *)
let prop_where_monotone =
  QCheck.Test.make ~name:"WHERE year < t monotone in t" ~count:100
    QCheck.(pair (int_range 1900 2030) (int_range 1900 2030))
    (fun (t1, t2) ->
      let lo = min t1 t2 and hi = max t1 t2 in
      let count t =
        List.length
          (run (Printf.sprintf "SELECT movies.name FROM movies WHERE movies.year < %d" t))
      in
      count lo <= count hi)

let prop_limit_bounds =
  QCheck.Test.make ~name:"LIMIT n returns at most n" ~count:50
    QCheck.(int_range 0 10)
    (fun n ->
      let rows = run (Printf.sprintf "SELECT movies.name FROM movies LIMIT %d" n) in
      List.length rows <= n && List.length rows = min n 6)

let prop_group_partition =
  QCheck.Test.make ~name:"GROUP BY counts sum to row count" ~count:20 QCheck.unit
    (fun () ->
      let grouped =
        run "SELECT movies.year, COUNT(*) FROM movies GROUP BY movies.year"
      in
      let total =
        List.fold_left
          (fun acc row -> match row.(1) with Value.Int n -> acc + n | _ -> acc)
          0 grouped
      in
      total = 6)

let prop_distinct_subset =
  QCheck.Test.make ~name:"DISTINCT result is a subset with no duplicates" ~count:20
    QCheck.unit (fun () ->
      let all = run "SELECT actor.gender FROM actor" in
      let d = run "SELECT DISTINCT actor.gender FROM actor" in
      let mem r rs = List.exists (fun r' -> r = r') rs in
      List.for_all (fun r -> mem r all) d
      && List.length (List.sort_uniq compare d) = List.length d)

(* --- batched multi-candidate execution --- *)

let test_run_batch_agrees () =
  let sqls =
    [
      "SELECT movies.name FROM movies WHERE movies.year > 2000";
      "SELECT movies.name FROM movies WHERE movies.year < 1995";
      "SELECT movies.revenue FROM movies WHERE movies.name = 'Gravity'";
      "SELECT movies.name FROM movies WHERE movies.year BETWEEN 1994 AND 1997";
      "SELECT movies.name FROM movies";
      "SELECT COUNT(*) FROM movies WHERE movies.revenue > 500";
      "SELECT movies.name FROM movies WHERE movies.name LIKE 'G%'";
      "SELECT movies.name, COUNT(*) FROM movies";
      (* executor error: non-grouped projection mixed with an aggregate *)
      "SELECT actor.name FROM actor WHERE actor.gender = 'female'";
      "SELECT actor.name FROM actor WHERE actor.birth_yr > 1960";
      "SELECT a.name FROM actor a JOIN starring s ON a.aid = s.aid JOIN \
       movies m ON s.mid = m.mid WHERE m.name = 'Gravity'";
    ]
  in
  let qs = Array.of_list (List.map Fixtures.parse sqls) in
  let batched, report = Executor.run_batch db qs in
  Array.iteri
    (fun k q ->
      match (batched.(k), Executor.run db q) with
      | Ok a, Ok b ->
          Alcotest.check Fixtures.rows_testable
            (Printf.sprintf "batch query %d rows" k)
            b.Executor.res_rows a.Executor.res_rows
      | Error a, Error b ->
          Alcotest.(check string) (Printf.sprintf "batch query %d error" k) b a
      | Ok _, Error _ | Error _, Ok _ ->
          Alcotest.fail (Printf.sprintf "batch query %d verdict diverges" k))
    qs;
  Alcotest.(check int) "queries" 11 report.Executor.br_queries;
  Alcotest.(check int) "groups" 2 report.Executor.br_groups;
  Alcotest.(check int) "shared" 10 report.Executor.br_shared

let test_run_batch_singleton () =
  (* a lone query and a group of one never share — they run individually *)
  let qs =
    [| Fixtures.parse "SELECT movies.name FROM movies WHERE movies.year > 2000" |]
  in
  let batched, report = Executor.run_batch db qs in
  (match batched.(0) with
  | Ok res ->
      Alcotest.check Fixtures.rows_testable "same rows"
        [ [| t "Gravity" |]; [| t "The Post" |]; [| t "Inception" |] ]
        res.Executor.res_rows
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "no groups" 0 report.Executor.br_groups;
  Alcotest.(check int) "nothing shared" 0 report.Executor.br_shared

let suite =
  [
    Alcotest.test_case "projection" `Quick test_project;
    Alcotest.test_case "where AND" `Quick test_where_and;
    Alcotest.test_case "where OR" `Quick test_where_or;
    Alcotest.test_case "between" `Quick test_between;
    Alcotest.test_case "like" `Quick test_like;
    Alcotest.test_case "not like" `Quick test_not_like;
    Alcotest.test_case "three-way join" `Quick test_join;
    Alcotest.test_case "join order independence" `Quick test_join_order_independent;
    Alcotest.test_case "count star" `Quick test_count_star;
    Alcotest.test_case "count over empty" `Quick test_count_on_empty_filter;
    Alcotest.test_case "min over empty" `Quick test_min_max_on_empty_filter;
    Alcotest.test_case "sum and avg" `Quick test_sum_avg;
    Alcotest.test_case "group by" `Quick test_group_by;
    Alcotest.test_case "having" `Quick test_having;
    Alcotest.test_case "group max" `Quick test_group_max;
    Alcotest.test_case "order by + limit" `Quick test_order_by;
    Alcotest.test_case "order by non-projected" `Quick test_order_by_non_projected;
    Alcotest.test_case "order by aggregate" `Quick test_order_by_aggregate;
    Alcotest.test_case "distinct" `Quick test_distinct;
    Alcotest.test_case "count distinct" `Quick test_count_distinct;
    Alcotest.test_case "limit zero" `Quick test_limit_zero;
    Alcotest.test_case "null comparisons" `Quick test_null_comparisons_false;
    Alcotest.test_case "error: unknown column" `Quick test_error_unknown_column;
    Alcotest.test_case "error: disconnected FROM" `Quick test_error_disconnected_from;
    Alcotest.test_case "output types" `Quick test_output_types;
    Alcotest.test_case "run_batch = run" `Quick test_run_batch_agrees;
    Alcotest.test_case "run_batch singleton" `Quick test_run_batch_singleton;
    QCheck_alcotest.to_alcotest prop_where_monotone;
    QCheck_alcotest.to_alcotest prop_limit_bounds;
    QCheck_alcotest.to_alcotest prop_group_partition;
    QCheck_alcotest.to_alcotest prop_distinct_subset;
  ]
