(* Duosem: the canonicalizer (semantically equal candidates render to one
   key), the database-free cardinality bounder, the constraint reasoner,
   and the enumerator counters the bench reports (dedup_semantic /
   pruned_by_cardinality). *)

open Duosql.Ast
module Value = Duodb.Value
module Duosem = Duolint.Duosem

let schema = Fixtures.movie_schema
let pre = Duosem.prepare schema
let i n = Value.Int n
let t s = Value.Text s

let movies_from = from_table "movies"

let star_movies_from =
  { f_tables = [ "starring"; "movies" ];
    f_joins = [ { j_from = col "starring" "mid"; j_to = col "movies" "mid" } ] }

let where preds = Some { c_preds = preds; c_conn = And }

(* --- canonicalizer --- *)

let test_between_vs_range () =
  let year = col "movies" "year" in
  let q_range =
    { (simple [ proj_col (col "movies" "name") ] movies_from) with
      q_where = where [ pred year Ge (i 1990); pred year Le (i 1999) ] }
  in
  let q_between =
    { (simple [ proj_col (col "movies" "name") ] movies_from) with
      q_where = where [ between year (i 1990) (i 1999) ] }
  in
  Alcotest.(check bool) "range = BETWEEN" true
    (Duosem.equal_queries q_range q_between)

let test_commuted_join () =
  let projs = [ proj_col (col "movies" "name") ] in
  let flipped =
    { f_tables = [ "movies"; "starring" ];
      f_joins = [ { j_from = col "movies" "mid"; j_to = col "starring" "mid" } ] }
  in
  Alcotest.(check bool) "join commutes" true
    (Duosem.equal_queries (simple projs star_movies_from) (simple projs flipped))

let test_conjunct_order () =
  let p1 = pred (col "movies" "year") Gt (i 1990) in
  let p2 = pred (col "movies" "name") Neq (t "Seven") in
  let q ps =
    { (simple [ proj_col (col "movies" "name") ] movies_from) with q_where = where ps }
  in
  Alcotest.(check bool) "AND commutes" true
    (Duosem.equal_queries (q [ p1; p2 ]) (q [ p2; p1 ]));
  Alcotest.(check bool) "different predicates differ" false
    (Duosem.equal_queries (q [ p1 ]) (q [ p2 ]))

let test_subsumed_conjunct_folds () =
  let year = col "movies" "year" in
  let q ps =
    { (simple [ proj_col (col "movies" "name") ] movies_from) with q_where = where ps }
  in
  Alcotest.(check bool) "x>2 AND x>5 = x>5" true
    (Duosem.equal_queries
       (q [ pred year Gt (i 2); pred year Gt (i 5) ])
       (q [ pred year Gt (i 5) ]));
  (* a point pinch folds to equality *)
  Alcotest.(check bool) "x>=5 AND x<=5 = x=5" true
    (Duosem.equal_queries
       (q [ pred year Ge (i 5); pred year Le (i 5) ])
       (q [ pred year Eq (i 5) ]))

let test_unsat_conjuncts_kept () =
  (* Bot: the fold must not invent a rewriting for a contradiction *)
  let year = col "movies" "year" in
  let ps = [ pred year Gt (i 5); pred year Lt (i 3) ] in
  Alcotest.(check int) "both conjuncts survive" 2
    (List.length (Duosem.canonical_conjuncts ps))

let test_order_sensitive_from_kept () =
  (* LIMIT makes the result observe scan order: FROM stays verbatim in the
     canonical query, while dedup_key still coarsens it *)
  let projs = [ proj_col (col "starring" "sid") ] in
  let q = { (simple projs star_movies_from) with q_limit = Some 1 } in
  let flipped =
    { q with
      q_from =
        { f_tables = [ "movies"; "starring" ];
          f_joins =
            [ { j_from = col "movies" "mid"; j_to = col "starring" "mid" } ] } }
  in
  Alcotest.(check bool) "canonical keys differ under LIMIT" false
    (Duosem.equal_queries q flipped);
  Alcotest.(check string) "dedup keys collide" (Duosem.dedup_key q)
    (Duosem.dedup_key flipped)

(* --- cardinality bounder --- *)

let card = Alcotest.testable
    (fun fmt c -> Format.pp_print_string fmt (Duosem.card_to_string c))
    (fun (a : Duosem.card) b -> a.c_lo = b.c_lo && a.c_hi = b.c_hi)

let test_bound_agg_no_group () =
  Alcotest.check card "COUNT(*) with no grouping = [1,1]"
    { Duosem.c_lo = 1; c_hi = Some 1 }
    (Duosem.bound_query pre (simple [ count_star ] movies_from))

let test_bound_pinned_pk () =
  let q =
    { (simple [ proj_col (col "movies" "name") ] movies_from) with
      q_where = where [ pred (col "movies" "mid") Eq (i 10) ] }
  in
  Alcotest.check card "PK point lookup = [0,1]"
    { Duosem.c_lo = 0; c_hi = Some 1 } (Duosem.bound_query pre q);
  (* a non-key point predicate bounds nothing *)
  let q' =
    { q with q_where = where [ pred (col "movies" "name") Eq (t "Seven") ] }
  in
  Alcotest.check card "non-key point = unbounded"
    { Duosem.c_lo = 0; c_hi = None } (Duosem.bound_query pre q')

let test_bound_pk_closure () =
  (* pinning starring by its PK pins actor through the key-preserving
     edge actor.aid = starring.aid *)
  let q =
    { (simple
         [ proj_col (col "actor" "name") ]
         { f_tables = [ "starring"; "actor" ];
           f_joins =
             [ { j_from = col "starring" "aid"; j_to = col "actor" "aid" } ] })
      with
      q_where = where [ pred (col "starring" "sid") Eq (i 1) ] }
  in
  Alcotest.check card "closure over FK edge = [0,1]"
    { Duosem.c_lo = 0; c_hi = Some 1 } (Duosem.bound_query pre q)

let test_bound_limit () =
  let q = { (simple [ proj_col (col "movies" "name") ] movies_from) with q_limit = Some 3 } in
  Alcotest.check card "LIMIT 3 caps at 3"
    { Duosem.c_lo = 0; c_hi = Some 3 } (Duosem.bound_query pre q)

let test_bound_pinned_group_key () =
  (* grouping by a column the conjuncts pin to one constant: one group *)
  let name = col "movies" "name" in
  let q =
    { (simple [ proj_col name; count_star ] movies_from) with
      q_where = where [ pred name Eq (t "Seven") ];
      q_group_by = [ name ] }
  in
  Alcotest.check card "pinned group key = [0,1]"
    { Duosem.c_lo = 0; c_hi = Some 1 } (Duosem.bound_query pre q);
  (* an unpinned group key bounds nothing *)
  let q' = { q with q_where = None } in
  Alcotest.check card "free group key = unbounded"
    { Duosem.c_lo = 0; c_hi = None } (Duosem.bound_query pre q')

(* --- constraint reasoner --- *)

let test_redundant_distinct () =
  let q =
    { (simple [ proj_col (col "movies" "mid") ] movies_from) with q_distinct = true }
  in
  Alcotest.(check bool) "DISTINCT over the full PK" true
    (Duosem.redundant_distinct pre q);
  let q' =
    { (simple [ proj_col (col "movies" "name") ] movies_from) with q_distinct = true }
  in
  Alcotest.(check bool) "DISTINCT over a plain column" false
    (Duosem.redundant_distinct pre q')

let test_eliminable_joins () =
  (* movies is unreferenced and joined on its full PK: the join can only
     restrict starring rows, and FK integrity makes it a no-op *)
  let q = simple [ proj_col (col "starring" "sid") ] star_movies_from in
  Alcotest.(check (list string)) "movies removable" [ "movies" ]
    (Duosem.eliminable_joins pre q);
  (* referencing the joined table keeps it *)
  let q' =
    simple [ proj_col (col "starring" "sid"); proj_col (col "movies" "name") ]
      star_movies_from
  in
  Alcotest.(check (list string)) "referenced table kept" []
    (Duosem.eliminable_joins pre q')

let test_explain () =
  let q =
    { (simple [ count_star ] movies_from) with
      q_where = where [ pred (col "movies" "mid") Eq (i 10) ] }
  in
  let ex = Duosem.explain pre q in
  Alcotest.(check bool) "canonical key non-empty" true
    (String.length ex.Duosem.ex_canonical > 0);
  Alcotest.check card "explained bound" { Duosem.c_lo = 1; c_hi = Some 1 }
    ex.Duosem.ex_card

(* --- enumerator counters (the bench's duosem section) --- *)

let test_mas_counters () =
  (* The same deterministic A1 setup the bench profiles: deep enough that
     both semantic dedup and the database-free cardinality prune fire. *)
  let db = Duobench.Mas.database () in
  let session = Duocore.Duoquest.create_session db in
  let task = List.hd Duobench.Mas.nli_study_tasks in
  let rng = Duobench.Rng.create 29 in
  let tsq =
    Duobench.Tsq_synth.synthesize rng db (Duobench.Mas.gold task)
      ~detail:Duobench.Tsq_synth.Full
  in
  let config =
    { Duocore.Enumerate.default_config with
      Duocore.Enumerate.max_pops = 6_000;
      max_candidates = 40;
      time_budget_s = 30.0 }
  in
  let outcome =
    Duocore.Duoquest.synthesize ~config ?tsq
      ~literals:task.Duobench.Mas.task_literals session
      ~nlq:task.Duobench.Mas.task_nlq ()
  in
  let st = outcome.Duocore.Enumerate.out_stats in
  Alcotest.(check bool) "dedup_semantic fired" true
    (st.Duocore.Verify.dedup_semantic > 0);
  Alcotest.(check bool) "cardinality prune fired" true
    (st.Duocore.Verify.pruned_by_cardinality > 0);
  Alcotest.(check bool) "candidates still found" true
    (outcome.Duocore.Enumerate.out_candidates <> [])

let suite =
  [
    Alcotest.test_case "canon: BETWEEN vs range" `Quick test_between_vs_range;
    Alcotest.test_case "canon: join commutes" `Quick test_commuted_join;
    Alcotest.test_case "canon: conjunct order" `Quick test_conjunct_order;
    Alcotest.test_case "canon: subsumption folds" `Quick test_subsumed_conjunct_folds;
    Alcotest.test_case "canon: unsat kept" `Quick test_unsat_conjuncts_kept;
    Alcotest.test_case "canon: order-sensitive FROM" `Quick test_order_sensitive_from_kept;
    Alcotest.test_case "bound: agg without group" `Quick test_bound_agg_no_group;
    Alcotest.test_case "bound: pinned PK" `Quick test_bound_pinned_pk;
    Alcotest.test_case "bound: PK closure" `Quick test_bound_pk_closure;
    Alcotest.test_case "bound: limit" `Quick test_bound_limit;
    Alcotest.test_case "bound: pinned group key" `Quick test_bound_pinned_group_key;
    Alcotest.test_case "reason: redundant DISTINCT" `Quick test_redundant_distinct;
    Alcotest.test_case "reason: eliminable joins" `Quick test_eliminable_joins;
    Alcotest.test_case "reason: explain" `Quick test_explain;
    Alcotest.test_case "enumerate: MAS counters" `Slow test_mas_counters;
  ]
