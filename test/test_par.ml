(* Duopar pool unit tests: coverage, worker-id validity, barrier
   semantics across many rounds, exception propagation, reuse after
   failure, and the degenerate domains=1 pool. *)

module Pool = Duopar.Pool

let test_domains_clamped () =
  Pool.with_pool ~domains:0 (fun p ->
      Alcotest.(check int) "clamped up" 1 (Pool.domains p));
  Pool.with_pool ~domains:3 (fun p ->
      Alcotest.(check int) "kept" 3 (Pool.domains p))

(* Every task index runs exactly once, with a valid worker id. *)
let coverage domains n =
  Pool.with_pool ~domains (fun p ->
      let hits = Array.make n 0 in
      let bad_worker = Atomic.make false in
      Pool.run p n (fun ~worker i ->
          if worker < 0 || worker >= domains then Atomic.set bad_worker true;
          (* distinct slots: no two tasks share i *)
          hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool) "worker ids in range" false (Atomic.get bad_worker);
      Array.iteri
        (fun i h -> Alcotest.(check int) (Printf.sprintf "task %d ran once" i) 1 h)
        hits)

let test_coverage_seq () = coverage 1 17
let test_coverage_par () = coverage 4 57
let test_empty_round () = Pool.with_pool ~domains:4 (fun p -> Pool.run p 0 (fun ~worker:_ _ -> assert false))

(* run is a barrier: summed work from a round is fully visible before
   the next round starts, across many consecutive rounds. *)
let test_barrier_rounds () =
  Pool.with_pool ~domains:4 (fun p ->
      let acc = Atomic.make 0 in
      for round = 1 to 50 do
        Pool.run p 8 (fun ~worker:_ _ -> Atomic.incr acc);
        Alcotest.(check int)
          (Printf.sprintf "round %d complete" round)
          (round * 8) (Atomic.get acc)
      done)

exception Boom of int

let test_exception_propagates () =
  Pool.with_pool ~domains:4 (fun p ->
      let ran = Atomic.make 0 in
      (match Pool.run p 20 (fun ~worker:_ i ->
               Atomic.incr ran;
               if i = 7 then raise (Boom i))
       with
      | () -> Alcotest.fail "expected Boom"
      | exception Boom 7 -> ()
      | exception e -> raise e);
      (* the round still completed: every task ran despite the failure *)
      Alcotest.(check int) "all tasks ran" 20 (Atomic.get ran);
      (* the pool is reusable after a failed round *)
      let ok = Atomic.make 0 in
      Pool.run p 10 (fun ~worker:_ _ -> Atomic.incr ok);
      Alcotest.(check int) "pool reusable" 10 (Atomic.get ok))

let test_shutdown_idempotent () =
  let p = Pool.create ~domains:3 in
  Pool.run p 5 (fun ~worker:_ _ -> ());
  Pool.shutdown p;
  Pool.shutdown p

(* Tasks see real parallel worker ids: with enough tasks per round, at
   least worker 0 (the caller) claims some — the caller participates. *)
let test_caller_participates () =
  Pool.with_pool ~domains:1 (fun p ->
      let seen = Atomic.make (-1) in
      Pool.run p 3 (fun ~worker i -> if i = 0 then Atomic.set seen worker);
      Alcotest.(check int) "domains=1 runs on caller" 0 (Atomic.get seen))

let suite =
  [
    Alcotest.test_case "domains clamped" `Quick test_domains_clamped;
    Alcotest.test_case "coverage domains=1" `Quick test_coverage_seq;
    Alcotest.test_case "coverage domains=4" `Quick test_coverage_par;
    Alcotest.test_case "empty round" `Quick test_empty_round;
    Alcotest.test_case "barrier across rounds" `Quick test_barrier_rounds;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "caller participates" `Quick test_caller_participates;
  ]
