(* Duopar pool unit tests: coverage, worker-id validity, barrier
   semantics across many rounds, exception propagation, reuse after
   failure, and the degenerate domains=1 pool. *)

module Pool = Duopar.Pool

let test_domains_clamped () =
  Pool.with_pool ~domains:0 (fun p ->
      Alcotest.(check int) "clamped up" 1 (Pool.domains p));
  Pool.with_pool ~domains:3 (fun p ->
      Alcotest.(check int) "kept" 3 (Pool.domains p))

(* Every task index runs exactly once, with a valid worker id. *)
let coverage domains n =
  Pool.with_pool ~domains (fun p ->
      let hits = Array.make n 0 in
      let bad_worker = Atomic.make false in
      Pool.run p n (fun ~worker i ->
          if worker < 0 || worker >= domains then Atomic.set bad_worker true;
          (* distinct slots: no two tasks share i *)
          hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool) "worker ids in range" false (Atomic.get bad_worker);
      Array.iteri
        (fun i h -> Alcotest.(check int) (Printf.sprintf "task %d ran once" i) 1 h)
        hits)

let test_coverage_seq () = coverage 1 17
let test_coverage_par () = coverage 4 57
let test_empty_round () = Pool.with_pool ~domains:4 (fun p -> Pool.run p 0 (fun ~worker:_ _ -> assert false))

(* run is a barrier: summed work from a round is fully visible before
   the next round starts, across many consecutive rounds. *)
let test_barrier_rounds () =
  Pool.with_pool ~domains:4 (fun p ->
      let acc = Atomic.make 0 in
      for round = 1 to 50 do
        Pool.run p 8 (fun ~worker:_ _ -> Atomic.incr acc);
        Alcotest.(check int)
          (Printf.sprintf "round %d complete" round)
          (round * 8) (Atomic.get acc)
      done)

exception Boom of int

let test_exception_propagates () =
  Pool.with_pool ~domains:4 (fun p ->
      let ran = Atomic.make 0 in
      (match Pool.run p 20 (fun ~worker:_ i ->
               Atomic.incr ran;
               if i = 7 then raise (Boom i))
       with
      | () -> Alcotest.fail "expected Boom"
      | exception Boom 7 -> ()
      | exception e -> raise e);
      (* the round still completed: every task ran despite the failure *)
      Alcotest.(check int) "all tasks ran" 20 (Atomic.get ran);
      (* the pool is reusable after a failed round *)
      let ok = Atomic.make 0 in
      Pool.run p 10 (fun ~worker:_ _ -> Atomic.incr ok);
      Alcotest.(check int) "pool reusable" 10 (Atomic.get ok))

let test_shutdown_idempotent () =
  let p = Pool.create ~domains:3 in
  Pool.run p 5 (fun ~worker:_ _ -> ());
  Pool.shutdown p;
  Pool.shutdown p

(* Tasks see real parallel worker ids: with enough tasks per round, at
   least worker 0 (the caller) claims some — the caller participates. *)
let test_caller_participates () =
  Pool.with_pool ~domains:1 (fun p ->
      let seen = Atomic.make (-1) in
      Pool.run p 3 (fun ~worker i -> if i = 0 then Atomic.set seen worker);
      Alcotest.(check int) "domains=1 runs on caller" 0 (Atomic.get seen))

(* --- adaptive speculation controller (Duopar v2) -------------------- *)

module Controller = Duopar.Controller

(* Feed a synthetic per-round (tasks, hits) trace through the raw AIMD
   step and return the size after each observation. *)
let trace domains samples =
  let c = Controller.create ~domains () in
  List.map
    (fun (tasks, hits) ->
      Controller.observe c ~tasks ~hits;
      Controller.size c)
    samples

let test_controller_initial () =
  let c = Controller.create ~domains:4 () in
  Alcotest.(check int) "starts at 4*domains" 16 (Controller.size c);
  Alcotest.(check (float 1e-9)) "ewma starts at 1" 1.0 (Controller.ewma c);
  let tiny = Controller.create ~domains:1 ~ceiling:2 () in
  Alcotest.(check int) "ceiling bounds the initial size" 2
    (Controller.size tiny)

let test_controller_grows_on_high_rate () =
  (* perfect commit rate: additive +domains per round up to the ceiling,
     then hold *)
  Alcotest.(check (list int))
    "16 -> 20 -> ... -> 32, then capped"
    [ 20; 24; 28; 32; 32 ]
    (trace 4 [ (16, 16); (20, 20); (24, 24); (28, 28); (32, 32) ]);
  let c = Controller.create ~domains:4 () in
  List.iter (fun _ -> Controller.observe c ~tasks:16 ~hits:16) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "grow decisions counted" 4 (Controller.grows c)

let test_controller_shrinks_on_collapse () =
  (* rate 0: the first sample replaces the EWMA (no stale optimism), so
     the size halves every round down to the floor of 1 *)
  Alcotest.(check (list int))
    "16 -> 8 -> 4 -> 2 -> 1 -> 1"
    [ 8; 4; 2; 1; 1 ]
    (trace 4 [ (16, 0); (8, 0); (4, 0); (2, 0); (1, 0) ]);
  let c = Controller.create ~domains:4 () in
  Controller.observe c ~tasks:16 ~hits:0;
  Alcotest.(check int) "shrink decisions counted" 1 (Controller.shrinks c)

let test_controller_holds_between_thresholds () =
  (* EWMA in [0.5, 0.8): neither law fires *)
  let c = Controller.create ~domains:4 () in
  Controller.observe c ~tasks:100 ~hits:60;
  Alcotest.(check int) "size held at 0.6" 16 (Controller.size c);
  Alcotest.(check int) "no grow" 0 (Controller.grows c);
  Alcotest.(check int) "no shrink" 0 (Controller.shrinks c)

let test_controller_ewma_damps_noise () =
  (* one bad round after a long good run must not halve the size:
     EWMA = 0.7*1.0 + 0.3*0.0 = 0.7, above the shrink threshold *)
  let c = Controller.create ~domains:4 () in
  Controller.observe c ~tasks:16 ~hits:16;
  Controller.observe c ~tasks:20 ~hits:0;
  Alcotest.(check (float 1e-9)) "ewma damped" 0.7 (Controller.ewma c);
  Alcotest.(check int) "size held after one bad round" 20 (Controller.size c);
  (* a second zero round pushes the EWMA to 0.49 < 0.5: now it halves *)
  Controller.observe c ~tasks:20 ~hits:0;
  Alcotest.(check int) "second bad round halves" 10 (Controller.size c)

let test_controller_empty_rounds_ignored () =
  let c = Controller.create ~domains:4 () in
  Controller.observe c ~tasks:0 ~hits:0;
  Alcotest.(check (float 1e-9)) "no sample from an empty round" 1.0
    (Controller.ewma c);
  Alcotest.(check int) "size untouched" 16 (Controller.size c)

let test_controller_begin_round_cumulative () =
  (* begin_round differentiates the cumulative hit counter itself *)
  let c = Controller.create ~domains:2 () in
  Alcotest.(check int) "round 0 at the initial size" 8
    (Controller.begin_round c ~hits:0);
  Controller.launched c ~tasks:8;
  (* all 8 committed: cumulative hits 8, delta 8/8 = 1.0 -> grow *)
  Alcotest.(check int) "round 1 grew" 10 (Controller.begin_round c ~hits:8);
  Controller.launched c ~tasks:10;
  (* nothing new committed: delta 0 damps the EWMA to 0.7 — held *)
  Alcotest.(check int) "round 2 held" 10 (Controller.begin_round c ~hits:8);
  Controller.launched c ~tasks:10;
  (* still nothing: EWMA 0.49 crosses the shrink threshold — halved *)
  Alcotest.(check int) "round 3 halved" 5 (Controller.begin_round c ~hits:8);
  Alcotest.(check int) "rounds counted" 4 (Controller.rounds c)

let test_controller_schedule_overrides () =
  let c = Controller.create ~schedule:(fun i -> 1000 * (i + 1)) ~domains:2 () in
  (* clamped to the ceiling (16), but accounting still runs *)
  Alcotest.(check int) "round 0 clamped" 16 (Controller.begin_round c ~hits:0);
  Controller.launched c ~tasks:16;
  Alcotest.(check int) "round 1 clamped" 16 (Controller.begin_round c ~hits:16);
  Alcotest.(check int) "rounds counted under schedule" 2 (Controller.rounds c);
  let floor1 = Controller.create ~schedule:(fun _ -> -5) ~domains:2 () in
  Alcotest.(check int) "clamped to the floor" 1
    (Controller.begin_round floor1 ~hits:0)

let suite =
  [
    Alcotest.test_case "domains clamped" `Quick test_domains_clamped;
    Alcotest.test_case "controller initial size" `Quick test_controller_initial;
    Alcotest.test_case "controller grows on high rate" `Quick
      test_controller_grows_on_high_rate;
    Alcotest.test_case "controller shrinks on collapse" `Quick
      test_controller_shrinks_on_collapse;
    Alcotest.test_case "controller holds between thresholds" `Quick
      test_controller_holds_between_thresholds;
    Alcotest.test_case "controller ewma damps noise" `Quick
      test_controller_ewma_damps_noise;
    Alcotest.test_case "controller ignores empty rounds" `Quick
      test_controller_empty_rounds_ignored;
    Alcotest.test_case "controller begin_round cumulative" `Quick
      test_controller_begin_round_cumulative;
    Alcotest.test_case "controller schedule override" `Quick
      test_controller_schedule_overrides;
    Alcotest.test_case "coverage domains=1" `Quick test_coverage_seq;
    Alcotest.test_case "coverage domains=4" `Quick test_coverage_par;
    Alcotest.test_case "empty round" `Quick test_empty_round;
    Alcotest.test_case "barrier across rounds" `Quick test_barrier_rounds;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "caller participates" `Quick test_caller_participates;
  ]
