module Table = Duodb.Table
module Database = Duodb.Database
module Value = Duodb.Value
module Index = Duodb.Index

let db () = Fixtures.movie_db ()

let test_row_counts () =
  let db = db () in
  Alcotest.(check int) "actors" 5 (Table.row_count (Database.table_exn db "actor"));
  Alcotest.(check int) "movies" 6 (Table.row_count (Database.table_exn db "movies"));
  Alcotest.(check int) "total" 18 (Database.total_rows db)

let test_arity_check () =
  let db = db () in
  Alcotest.(check bool) "bad arity raises" true
    (try
       Database.insert db ~table:"actor" [| Value.Int 9 |];
       false
     with Invalid_argument _ -> true)

let test_type_check () =
  let db = db () in
  Alcotest.(check bool) "text into number column raises" true
    (try
       Database.insert db ~table:"movies"
         [| Value.Text "not a number"; Value.Text "m"; Value.Int 2000; Value.Int 1 |];
       false
     with Invalid_argument _ -> true)

let test_null_is_typable () =
  let db = db () in
  Database.insert db ~table:"movies" [| Value.Int 99; Value.Null; Value.Null; Value.Null |];
  Alcotest.(check int) "insert with nulls ok" 7
    (Table.row_count (Database.table_exn db "movies"))

let test_column_values () =
  let db = db () in
  let years = Table.column_values (Database.table_exn db "movies") "year" in
  Alcotest.(check int) "6 years" 6 (List.length years);
  Alcotest.(check bool) "1994 present" true (List.mem (Value.Int 1994) years)

let test_column_range () =
  let db = db () in
  match Table.column_range (Database.table_exn db "movies") "year" with
  | Some (lo, hi) ->
      Alcotest.check Fixtures.value_testable "lo" (Value.Int 1994) lo;
      Alcotest.check Fixtures.value_testable "hi" (Value.Int 2017) hi
  | None -> Alcotest.fail "expected range"

let test_integrity_ok () =
  Alcotest.(check (list string)) "no violations" [] (Database.check_integrity (db ()))

let test_integrity_dangling_fk () =
  let db = db () in
  Database.insert db ~table:"starring" [| Value.Int 999; Value.Int 42; Value.Int 10 |];
  Alcotest.(check bool) "dangling fk reported" true
    (List.exists
       (fun s -> String.length s > 0 && String.sub s 0 8 = "dangling")
       (Database.check_integrity db))

let test_integrity_dup_pk () =
  let db = db () in
  Database.insert db ~table:"actor"
    [| Value.Int 1; Value.Text "Clone"; Value.Text "male"; Value.Int 1990;
       Value.Text "Lab"; Value.Int 2010 |];
  Alcotest.(check bool) "dup pk reported" true
    (List.exists
       (fun s -> String.length s > 8 && String.sub s 0 9 = "duplicate")
       (Database.check_integrity db))

let test_index_lookup () =
  let idx = Index.build (db ()) in
  let hits = Index.lookup idx "tom hanks" in
  Alcotest.(check int) "one hit" 1 (List.length hits);
  let h = List.hd hits in
  Alcotest.(check string) "table" "actor" h.Index.hit_table;
  Alcotest.(check string) "column" "name" h.Index.hit_column

let test_index_complete () =
  let idx = Index.build (db ()) in
  let hits = Index.complete idx ~prefix:"t" () in
  Alcotest.(check bool) "titanic or tom" true
    (List.exists (fun h -> h.Index.hit_value = "Titanic") hits
    && List.exists (fun h -> h.Index.hit_value = "Tom Hanks") hits);
  let limited = Index.complete idx ~limit:1 ~prefix:"t" () in
  Alcotest.(check int) "limit respected" 1 (List.length limited)

let test_index_contains () =
  let idx = Index.build (db ()) in
  Alcotest.(check bool) "contains" true
    (Index.contains idx ~table:"movies" ~column:"name" "Gravity");
  Alcotest.(check bool) "absent value" false
    (Index.contains idx ~table:"movies" ~column:"name" "Tom Hanks")

(* --- columnar internals: dictionary, null bitmaps, zone maps --- *)

let i n = Value.Int n
let t s = Value.Text s

let wide_schema =
  Duodb.Schema.make ~name:"wide"
    [ Duodb.Schema.table "t"
        [ ("id", Duodb.Datatype.Number); ("tag", Duodb.Datatype.Text) ]
        ~pk:[ "id" ] ]
    []

let wide_tbl rows =
  let db = Database.create wide_schema in
  List.iter (fun r -> Database.insert db ~table:"t" r) rows;
  Database.table_exn db "t"

let test_dict_encoding () =
  let tbl =
    wide_tbl
      [ [| i 1; t "red" |]; [| i 2; t "blue" |]; [| i 3; t "red" |];
        [| i 4; Value.Null |]; [| i 5; t "blue" |]; [| i 6; t "red" |] ]
  in
  let j = Table.column_index tbl "tag" in
  (match Table.view tbl j with
  | Table.V_txt { codes; dict; dict_len; nulls = _ } ->
      Alcotest.(check int) "two distinct strings" 2 dict_len;
      Alcotest.(check string) "decode row 0" "red" dict.(codes.(0));
      Alcotest.(check string) "decode row 1" "blue" dict.(codes.(1));
      Alcotest.(check int) "repeats share a code" codes.(0) codes.(2);
      Alcotest.(check int) "null sentinel" (-1) codes.(3)
  | Table.V_num _ -> Alcotest.fail "expected a text view");
  Alcotest.(check bool) "find_code present" true
    (Option.is_some (Table.find_code tbl j "blue"));
  Alcotest.(check bool) "find_code absent" false
    (Option.is_some (Table.find_code tbl j "green"))

let test_null_bitmaps () =
  let tbl =
    wide_tbl [ [| i 1; t "x" |]; [| Value.Null; Value.Null |]; [| i 3; t "y" |] ]
  in
  let jn = Table.column_index tbl "id" in
  (match Table.view tbl jn with
  | Table.V_num { nulls; _ } ->
      Alcotest.(check bool) "row 0 not null" false (Duodb.Bitset.get nulls 0);
      Alcotest.(check bool) "row 1 null" true (Duodb.Bitset.get nulls 1)
  | Table.V_txt _ -> Alcotest.fail "expected a numeric view");
  Alcotest.check Fixtures.value_testable "value_at reconstructs NULL" Value.Null
    (Table.value_at tbl ~col:(Table.column_index tbl "tag") ~row:1)

let test_zone_maps () =
  (* three blocks: ids 0..255, then 1256..1511, then 1512..1599; the text
     column stays entirely NULL, so its zones are all absent *)
  let rows =
    List.init 600 (fun k ->
        [| i (if k < 256 then k else 1000 + k); Value.Null |])
  in
  let tbl = wide_tbl rows in
  let j = Table.column_index tbl "id" in
  Alcotest.(check int) "blocks" 3 (Table.num_blocks tbl);
  (match Table.zone tbl ~col:j ~blk:0 with
  | Some (lo, hi) ->
      Alcotest.check Fixtures.value_testable "blk0 lo" (Value.Int 0) lo;
      Alcotest.check Fixtures.value_testable "blk0 hi" (Value.Int 255) hi
  | None -> Alcotest.fail "expected a zone for block 0");
  (match Table.zone tbl ~col:j ~blk:1 with
  | Some (lo, hi) ->
      Alcotest.check Fixtures.value_testable "blk1 lo" (Value.Int 1256) lo;
      Alcotest.check Fixtures.value_testable "blk1 hi" (Value.Int 1511) hi
  | None -> Alcotest.fail "expected a zone for block 1");
  Alcotest.(check bool) "all-null block has no zone" true
    (Table.zone tbl ~col:(Table.column_index tbl "tag") ~blk:0 = None)

let test_exact_big_ints () =
  (* 2^53 and 2^53 + 1 collapse to one float; the exact side table keeps
     them distinct *)
  let big = 9007199254740993 in
  let tbl = wide_tbl [ [| i 9007199254740992; Value.Null |]; [| i big; Value.Null |] ] in
  let j = Table.column_index tbl "id" in
  Alcotest.check Fixtures.value_testable "exact reconstruction" (Value.Int big)
    (Table.value_at tbl ~col:j ~row:1);
  Alcotest.(check bool) "distinct beyond float precision" false
    (Value.equal
       (Table.value_at tbl ~col:j ~row:0)
       (Table.value_at tbl ~col:j ~row:1))

let test_incremental_rows () =
  let db = db () in
  let tbl = Database.table_exn db "movies" in
  let before = Array.length (Table.rows tbl) in
  Database.insert db ~table:"movies" [| i 99; t "New"; i 2024; i 1 |];
  let rows = Table.rows tbl in
  Alcotest.(check int) "suffix appended" (before + 1) (Array.length rows);
  Alcotest.check Fixtures.value_testable "new row visible" (Value.Text "New")
    rows.(before).(1)

let suite =
  [
    Alcotest.test_case "row counts" `Quick test_row_counts;
    Alcotest.test_case "arity check" `Quick test_arity_check;
    Alcotest.test_case "type check" `Quick test_type_check;
    Alcotest.test_case "null insert" `Quick test_null_is_typable;
    Alcotest.test_case "column values" `Quick test_column_values;
    Alcotest.test_case "column range" `Quick test_column_range;
    Alcotest.test_case "integrity: clean db" `Quick test_integrity_ok;
    Alcotest.test_case "integrity: dangling fk" `Quick test_integrity_dangling_fk;
    Alcotest.test_case "integrity: duplicate pk" `Quick test_integrity_dup_pk;
    Alcotest.test_case "index lookup" `Quick test_index_lookup;
    Alcotest.test_case "index autocomplete" `Quick test_index_complete;
    Alcotest.test_case "index contains" `Quick test_index_contains;
    Alcotest.test_case "dictionary encoding" `Quick test_dict_encoding;
    Alcotest.test_case "null bitmaps" `Quick test_null_bitmaps;
    Alcotest.test_case "zone maps" `Quick test_zone_maps;
    Alcotest.test_case "exact big ints" `Quick test_exact_big_ints;
    Alcotest.test_case "incremental row view" `Quick test_incremental_rows;
  ]
