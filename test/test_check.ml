(* Duocheck: the differential + metamorphic fuzz subsystem, run here with
   small seeded iteration counts (`dune build @fuzz` scales them up), plus
   deterministic gold-survival checks: the Figure 2 worked example and the
   MAS A1-B4 study golds must survive every cascade stage of their own
   derivations when the TSQ is synthesized from their own results. *)

module Tsq = Duocore.Tsq
module Verify = Duocore.Verify
module Value = Duodb.Value
module Soundness = Duocheck.Soundness

let seeded_props =
  List.map
    (fun t ->
      QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xD0C4EC |]) t)
    (Duocheck.Props.tests ())

let movie_db = Fixtures.movie_db ()

let test_reference_on_fig2 () =
  let q =
    Fixtures.parse "SELECT movies.name FROM movies WHERE movies.year < 1995"
  in
  match Duocheck.Reference.run movie_db q with
  | Error e -> Alcotest.fail e
  | Ok res ->
      let names =
        List.filter_map
          (fun r -> match r.(0) with Value.Text s -> Some s | _ -> None)
          res.Duoengine.Executor.res_rows
      in
      Alcotest.(check bool) "Forrest Gump (1994) included" true
        (List.mem "Forrest Gump" names);
      (* and the engine agrees, both with and without the planner *)
      Alcotest.(check bool) "differential agreement" true
        (Duocheck.Props.differential_prop
           { Duocheck.Gen.sc_db = movie_db; sc_query = q; sc_tsq = Tsq.empty })

let test_fig2_gold_survives_cascade () =
  let gold =
    Fixtures.parse "SELECT movies.name FROM movies WHERE movies.year < 1995"
  in
  let tsq =
    Tsq.make ~types:[ Duodb.Datatype.Text ]
      ~tuples:[ [ Tsq.Exact (Value.Text "Forrest Gump") ] ]
      ()
  in
  let env =
    Verify.make_env ~db:movie_db ~tsq:(Some tsq)
      ~literals:[ Value.Int 1995 ] ()
  in
  (match Soundness.derivation_states Fixtures.movie_schema gold with
  | None -> Alcotest.fail "Figure 2 gold should be representable"
  | Some states ->
      Alcotest.(check bool) "derivation has intermediate states" true
        (List.length states > 3));
  match Soundness.gold_survival env Fixtures.movie_schema gold with
  | None -> ()
  | Some (stage, st) ->
      Alcotest.failf "stage %s pruned gold prefix %s" stage
        (Duocore.Partial.to_string st)

let test_mas_golds_survive_cascade () =
  let db = Duobench.Mas.database () in
  let representable = ref 0 in
  List.iter
    (fun (task : Duobench.Mas.task) ->
      let gold = Duobench.Mas.gold task in
      if Option.is_some (Soundness.derivation_states Duobench.Mas.schema gold)
      then incr representable;
      List.iter
        (fun detail ->
          let rng =
            Duobench.Rng.create
              (Hashtbl.hash
                 (task.Duobench.Mas.task_id,
                  Duobench.Tsq_synth.detail_to_string detail))
          in
          match Duobench.Tsq_synth.synthesize rng db gold ~detail with
          | None -> () (* gold returned no rows: nothing to sketch *)
          | Some tsq ->
              let env =
                Verify.make_env ~db ~tsq:(Some tsq)
                  ~literals:task.Duobench.Mas.task_literals ()
              in
              (match Soundness.gold_survival env Duobench.Mas.schema gold with
              | None -> ()
              | Some (stage, st) ->
                  Alcotest.failf "%s at detail %s: stage %s pruned %s"
                    task.Duobench.Mas.task_id
                    (Duobench.Tsq_synth.detail_to_string detail)
                    stage
                    (Duocore.Partial.to_string st)))
        [ Duobench.Tsq_synth.Full; Duobench.Tsq_synth.Partial;
          Duobench.Tsq_synth.Minimal ])
    Duobench.Mas.nli_study_tasks;
  Alcotest.(check bool) "some MAS golds are representable" true
    (!representable > 0)

(* Duopar on the study golds: end-to-end synthesis of the MAS tasks with
   their own synthesized TSQs must find the gold at the same rank, with
   the same candidate list, at domains=1 and domains=4. *)
let test_mas_golds_parallel_identical () =
  let db = Duobench.Mas.database () in
  let session = Duocore.Duoquest.create_session db in
  let tasks =
    List.filter
      (fun (t : Duobench.Mas.task) ->
        List.mem t.Duobench.Mas.task_id [ "A1"; "B1"; "B4" ])
      Duobench.Mas.nli_study_tasks
  in
  List.iter
    (fun (task : Duobench.Mas.task) ->
      let gold = Duobench.Mas.gold task in
      let rng = Duobench.Rng.create 29 in
      let tsq =
        Duobench.Tsq_synth.synthesize rng db gold
          ~detail:Duobench.Tsq_synth.Full
      in
      let run domains =
        let config =
          { Duocore.Enumerate.default_config with
            Duocore.Enumerate.max_pops = 3_000;
            max_candidates = 10;
            time_budget_s = 20.0;
            domains }
        in
        Duocore.Duoquest.synthesize ~config ?tsq
          ~literals:task.Duobench.Mas.task_literals session
          ~nlq:task.Duobench.Mas.task_nlq ()
      in
      let seq = run 1 and par = run 4 in
      let qs (o : Duocore.Enumerate.outcome) =
        List.map
          (fun (c : Duocore.Enumerate.candidate) ->
            Duosql.Pretty.query c.Duocore.Enumerate.cand_query)
          o.Duocore.Enumerate.out_candidates
      in
      Alcotest.(check (list string))
        (task.Duobench.Mas.task_id ^ ": identical candidates")
        (qs seq) (qs par);
      Alcotest.(check (option int))
        (task.Duobench.Mas.task_id ^ ": identical gold rank")
        (Duocore.Duoquest.rank_of seq ~gold)
        (Duocore.Duoquest.rank_of par ~gold))
    tasks

let suite =
  [
    Alcotest.test_case "reference: Figure 2 query" `Quick test_reference_on_fig2;
    Alcotest.test_case "Figure 2 gold survives its derivation" `Quick
      test_fig2_gold_survives_cascade;
    Alcotest.test_case "MAS A1-B4 golds survive at all detail levels" `Quick
      test_mas_golds_survive_cascade;
    Alcotest.test_case "MAS golds: domains=4 synthesis identical" `Quick
      test_mas_golds_parallel_identical;
  ]
  @ seeded_props
