module Frontier = Duocore.Frontier
module Partial = Duocore.Partial

let state conf = { Partial.root with Partial.confidence = conf }

let test_pop_order () =
  let f = Frontier.create () in
  List.iter (fun c -> Frontier.push f (state c)) [ 0.3; 0.9; 0.1; 0.5 ];
  let popped = List.init 4 (fun _ -> (Option.get (Frontier.pop f)).Partial.confidence) in
  Alcotest.(check (list (float 1e-9))) "descending confidence" [ 0.9; 0.5; 0.3; 0.1 ] popped

let test_fifo_on_ties () =
  let f = Frontier.create () in
  let a = { (state 0.5) with Partial.nproj = 1 } in
  let b = { (state 0.5) with Partial.nproj = 2 } in
  Frontier.push f a;
  Frontier.push f b;
  Alcotest.(check int) "first pushed pops first" 1
    (Option.get (Frontier.pop f)).Partial.nproj

let test_join_length_tiebreak () =
  let f = Frontier.create () in
  let with_from tables joins =
    { (state 0.5) with
      Partial.from = Some { Duosql.Ast.f_tables = tables; f_joins = joins } }
  in
  let long =
    with_from [ "actor"; "starring" ]
      [ { Duosql.Ast.j_from = Duosql.Ast.col "starring" "aid";
          j_to = Duosql.Ast.col "actor" "aid" } ]
  in
  let short = with_from [ "actor" ] [] in
  Frontier.push f long;
  Frontier.push f short;
  Alcotest.(check int) "shorter join path first" 0
    (match (Option.get (Frontier.pop f)).Partial.from with
    | Some fr -> List.length fr.Duosql.Ast.f_joins
    | None -> -1)

let test_empty_pop () =
  let f = Frontier.create () in
  Alcotest.(check bool) "empty" true (Option.is_none (Frontier.pop f))

let test_cap_compaction () =
  let f = Frontier.create ~cap:10 () in
  for i = 1 to 50 do
    Frontier.push f (state (float_of_int i /. 100.0))
  done;
  Alcotest.(check bool) "size bounded" true (Frontier.size f <= 11);
  Alcotest.(check bool) "some dropped" true (Frontier.dropped f > 0);
  (* survivors are the best ones *)
  Alcotest.(check (float 1e-9)) "best kept" 0.5
    (Option.get (Frontier.pop f)).Partial.confidence

let prop_heap_order =
  QCheck.Test.make ~name:"pops are sorted by priority" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 40) (float_bound_inclusive 1.0))
    (fun confs ->
      let f = Frontier.create () in
      List.iter (fun c -> Frontier.push f (state c)) confs;
      let rec drain acc =
        match Frontier.pop f with
        | Some s -> drain (s.Partial.confidence :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort (fun a b -> compare b a) confs)

let prop_pushed_count =
  QCheck.Test.make ~name:"pushed counter" ~count:50
    QCheck.(int_range 0 60)
    (fun n ->
      let f = Frontier.create () in
      for i = 1 to n do
        Frontier.push f (state (float_of_int i))
      done;
      Frontier.pushed f = n)

let test_pop_k_order () =
  let f = Frontier.create () in
  List.iter (fun c -> Frontier.push f (state c)) [ 0.3; 0.9; 0.1; 0.5; 0.7 ];
  let confs l = List.map (fun (s : Partial.t) -> s.Partial.confidence) l in
  Alcotest.(check (list (float 1e-9))) "best k, descending" [ 0.9; 0.7; 0.5 ]
    (confs (Frontier.pop_k f 3));
  Alcotest.(check (list (float 1e-9))) "remainder still ordered" [ 0.3; 0.1 ]
    (confs (Frontier.pop_k f 10));
  Alcotest.(check (list (float 1e-9))) "empty" [] (confs (Frontier.pop_k f 4))

let test_pop_k_matches_pops =
  QCheck.Test.make ~name:"pop_k equals k single pops" ~count:100
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 30) (float_bound_inclusive 1.0))
        (int_range 0 12))
    (fun (confs, k) ->
      let f1 = Frontier.create () and f2 = Frontier.create () in
      List.iter
        (fun c ->
          Frontier.push f1 (state c);
          Frontier.push f2 (state c))
        confs;
      let batch =
        List.map (fun (s : Partial.t) -> s.Partial.confidence) (Frontier.pop_k f1 k)
      in
      let rec singles n acc =
        if n = 0 then List.rev acc
        else
          match Frontier.pop f2 with
          | Some s -> singles (n - 1) (s.Partial.confidence :: acc)
          | None -> List.rev acc
      in
      batch = singles k [] && Frontier.size f1 = Frontier.size f2)

let test_restore_preserves_order () =
  let f = Frontier.create () in
  (* ties everywhere: FIFO order is carried by the entry seq numbers *)
  List.iteri
    (fun i _ -> Frontier.push f { (state 0.5) with Partial.nproj = i })
    [ (); (); (); () ];
  let entries = Frontier.pop_entries f 3 in
  Frontier.restore f entries;
  let order = List.init 4 (fun _ -> (Option.get (Frontier.pop f)).Partial.nproj) in
  Alcotest.(check (list int)) "original FIFO order back" [ 0; 1; 2; 3 ] order;
  Alcotest.(check int) "restore does not count as pushes" 4 (Frontier.pushed f)

let test_pop_k_compaction_interaction () =
  let f = Frontier.create ~cap:10 () in
  for i = 1 to 50 do
    Frontier.push f (state (float_of_int i /. 100.0))
  done;
  let dropped0 = Frontier.dropped f in
  Alcotest.(check bool) "compaction dropped some" true (dropped0 > 0);
  (* batch pop + restore must not disturb the dropped accounting, and
     restoring past the cap still triggers compaction rather than
     unbounded growth *)
  let entries = Frontier.pop_entries f (Frontier.size f) in
  Frontier.restore f entries;
  Alcotest.(check bool) "size still bounded" true (Frontier.size f <= 11);
  Alcotest.(check (float 1e-9)) "best survivor unchanged" 0.5
    (Option.get (Frontier.pop f)).Partial.confidence;
  Alcotest.(check bool) "dropped monotone" true (Frontier.dropped f >= dropped0)

let suite =
  [
    Alcotest.test_case "pop order" `Quick test_pop_order;
    Alcotest.test_case "pop_k order" `Quick test_pop_k_order;
    Alcotest.test_case "restore preserves order" `Quick test_restore_preserves_order;
    Alcotest.test_case "pop_k + compaction" `Quick test_pop_k_compaction_interaction;
    QCheck_alcotest.to_alcotest test_pop_k_matches_pops;
    Alcotest.test_case "FIFO on ties" `Quick test_fifo_on_ties;
    Alcotest.test_case "join-length tiebreak" `Quick test_join_length_tiebreak;
    Alcotest.test_case "empty pop" `Quick test_empty_pop;
    Alcotest.test_case "cap compaction" `Quick test_cap_compaction;
    QCheck_alcotest.to_alcotest prop_heap_order;
    QCheck_alcotest.to_alcotest prop_pushed_count;
  ]
