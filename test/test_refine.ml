(* Incremental re-synthesis on TSQ refinement: the [Tsq.refines]
   classifier, warm-restart equivalence ([Enumerate.rebase] emits exactly
   what a from-root run under the tightened sketch emits, while
   re-verifying strictly fewer states), and the Duoserve session
   lifecycle around refinement (Incomparable fallback, close/cancel
   status bookkeeping, per-call empty outcomes). *)

module Tsq = Duocore.Tsq
module Verify = Duocore.Verify
module Enumerate = Duocore.Enumerate
module Duoquest = Duocore.Duoquest
module Session = Duoserve.Session
module Tsq_synth = Duobench.Tsq_synth
module Rng = Duobench.Rng
module Mas = Duobench.Mas
module Value = Duodb.Value

let config =
  { Enumerate.default_config with
    Enumerate.max_candidates = 8;
    time_budget_s = 30.0 }

(* --- the refinement classifier ------------------------------------- *)

let fg = [ Tsq.Exact (Value.Text "Forrest Gump") ]
let seven = [ Tsq.Exact (Value.Text "Seven") ]
let titanic = [ Tsq.Exact (Value.Text "Titanic") ]
let base = Tsq.make ~types:[ Duodb.Datatype.Text ] ~tuples:[ fg ] ()

let check_refines msg expected ~old ~new_ =
  let show = function
    | Tsq.Tightening -> "Tightening"
    | Tsq.Incomparable -> "Incomparable"
  in
  Alcotest.(check string) msg (show expected) (show (Tsq.refines ~old ~new_))

let test_classifier_tightenings () =
  check_refines "reflexive" Tsq.Tightening ~old:base ~new_:base;
  check_refines "append tuple, full support" Tsq.Tightening ~old:base
    ~new_:(Tsq.add_positive base seven);
  check_refines "toggle sorted on" Tsq.Tightening ~old:base
    ~new_:{ base with Tsq.sorted = true };
  check_refines "add negative" Tsq.Tightening ~old:base
    ~new_:(Tsq.add_negative base titanic);
  check_refines "raise support on fixed tuples" Tsq.Tightening
    ~old:
      { base with Tsq.tuples = [ fg; seven ]; min_support = Some 1 }
    ~new_:{ base with Tsq.tuples = [ fg; seven ]; min_support = Some 2 };
  (* a supersequence may interleave, not only append *)
  check_refines "insert tuple mid-sequence" Tsq.Tightening
    ~old:{ base with Tsq.tuples = [ fg; titanic ] }
    ~new_:{ base with Tsq.tuples = [ fg; seven; titanic ] }

let test_classifier_incomparable () =
  check_refines "type edit" Tsq.Incomparable ~old:base
    ~new_:{ base with Tsq.types = Some [ Duodb.Datatype.Number ] };
  check_refines "width edit" Tsq.Incomparable ~old:base
    ~new_:
      (Tsq.make
         ~types:[ Duodb.Datatype.Text; Duodb.Datatype.Number ]
         ~tuples:[ [ Tsq.Exact (Value.Text "Forrest Gump"); Tsq.Any ] ]
         ());
  check_refines "limit edit" Tsq.Incomparable ~old:base
    ~new_:{ base with Tsq.limit = 3 };
  check_refines "toggle sorted off" Tsq.Incomparable
    ~old:{ base with Tsq.sorted = true } ~new_:base;
  check_refines "drop a tuple" Tsq.Incomparable
    ~old:{ base with Tsq.tuples = [ fg; seven ] }
    ~new_:{ base with Tsq.tuples = [ fg ] };
  check_refines "drop a negative" Tsq.Incomparable
    ~old:(Tsq.add_negative base titanic) ~new_:base;
  check_refines "lower support" Tsq.Incomparable
    ~old:{ base with Tsq.tuples = [ fg; seven ] }
    ~new_:{ base with Tsq.tuples = [ fg; seven ]; min_support = Some 1 };
  (* appending an example while only some tuples are required is not
     monotone: the bipartite matcher may satisfy the threshold using the
     new tuple on queries the old sketch rejected *)
  check_refines "append under partial support" Tsq.Incomparable
    ~old:{ base with Tsq.tuples = [ fg; seven ]; min_support = Some 1 }
    ~new_:
      { base with
        Tsq.tuples = [ fg; seven; titanic ];
        min_support = Some 2 }

(* --- warm rebase = from-root restart ------------------------------- *)

let sqls (o : Enumerate.outcome) =
  List.map
    (fun (c : Enumerate.candidate) -> Duosql.Pretty.query c.Enumerate.cand_query)
    o.Enumerate.out_candidates

let confs (o : Enumerate.outcome) =
  List.map
    (fun (c : Enumerate.candidate) -> c.Enumerate.cand_confidence)
    o.Enumerate.out_candidates

(* A strictly looser ancestor of [tsq]: first example tuple only, unsorted,
   no negatives.  Header untouched, so the edit back classifies as a
   tightening. *)
let loosen (tsq : Tsq.t) =
  let tuples = match tsq.Tsq.tuples with [] -> [] | t :: _ -> [ t ] in
  { tsq with Tsq.tuples; sorted = false; negatives = []; min_support = None }

let run_to_completion st =
  match Enumerate.step st with
  | Enumerate.Finished -> ()
  | Enumerate.Running -> Alcotest.fail "unbounded step left the run running"

(* Run the dual-spec task under [loose] to completion, rebase onto
   [tight], finish — and compare against a from-root run under [tight]. *)
let check_warm_vs_cold ~name session ~nlq ~literals ~tight =
  let loose = loosen tight in
  check_refines (name ^ ": edit classifies as tightening") Tsq.Tightening
    ~old:loose ~new_:tight;
  let st = Duoquest.prepare ~config ~tsq:loose ~literals session ~nlq () in
  let warm, warm_verifies =
    Fun.protect
      ~finally:(fun () -> Enumerate.release st)
      (fun () ->
        run_to_completion st;
        let v0 = Verify.total_verifies () in
        Enumerate.rebase st ~tsq:tight;
        run_to_completion st;
        (Enumerate.outcome st, Verify.total_verifies () - v0))
  in
  let v0 = Verify.total_verifies () in
  let cold = Duoquest.synthesize ~config ~tsq:tight ~literals session ~nlq () in
  let cold_verifies = Verify.total_verifies () - v0 in
  Alcotest.(check (list string))
    (name ^ ": identical candidates") (sqls cold) (sqls warm);
  Alcotest.(check (list (float 1e-9)))
    (name ^ ": identical confidences") (confs cold) (confs warm);
  Alcotest.(check int) (name ^ ": one rebase recorded") 1
    warm.Enumerate.out_rebases;
  Alcotest.(check bool)
    (Printf.sprintf "%s: rebase re-checked something (kept %d, dropped %d)"
       name warm.Enumerate.out_rebase_kept warm.Enumerate.out_rebase_dropped)
    true
    (warm.Enumerate.out_rebase_kept + warm.Enumerate.out_rebase_dropped > 0);
  Alcotest.(check bool)
    (Printf.sprintf "%s: warm re-verifies fewer states (%d < %d)" name
       warm_verifies cold_verifies)
    true
    (warm_verifies < cold_verifies)

let movie_session = lazy (Duoquest.create_session (Fixtures.movie_db ()))

(* Figure-2 flavour with a 3-row gold, so Full detail carries two example
   tuples and [loosen] actually loosens. *)
let movie_gold =
  lazy (Fixtures.parse "SELECT movies.name FROM movies WHERE movies.year < 2000")

let movie_tight ~detail ~seed =
  let session = Lazy.force movie_session in
  match
    Tsq_synth.synthesize (Rng.create seed)
      (Duoquest.session_db session)
      (Lazy.force movie_gold) ~detail
  with
  | Some t -> { t with Tsq.min_support = None }
  | None -> Alcotest.fail "TSQ synthesis failed on the movie gold"

let test_movie_detail detail () =
  let name = "fig2/" ^ Tsq_synth.detail_to_string detail in
  check_warm_vs_cold ~name
    (Lazy.force movie_session)
    ~nlq:"Find all movies from before 2000"
    ~literals:[ Value.Int 2000 ]
    ~tight:(movie_tight ~detail ~seed:11)

(* Same sweep on a MAS study task (Section 5.4): a bigger schema, joins,
   and a synthesized sketch per detail level. *)
let mas_session = lazy (Duoquest.create_session (Mas.database ()))

let test_mas_detail detail () =
  let task = List.hd Mas.nli_study_tasks in
  let session = Lazy.force mas_session in
  let tight =
    match
      Tsq_synth.synthesize (Rng.create 23)
        (Duoquest.session_db session)
        (Mas.gold task) ~detail
    with
    | Some t -> { t with Tsq.min_support = None }
    | None -> Alcotest.fail ("TSQ synthesis failed on " ^ task.Mas.task_id)
  in
  check_warm_vs_cold
    ~name:(task.Mas.task_id ^ "/" ^ Tsq_synth.detail_to_string detail)
    session ~nlq:task.Mas.task_nlq ~literals:task.Mas.task_literals ~tight

(* The sorted flag alone: warm-toggling tau on mid-run must equal a
   from-root sorted run (the ordered matcher accepts a subset of the
   distinct matcher's queries, so verdicts stay monotone). *)
let test_sorted_toggle_rebase () =
  let tight =
    Tsq.make
      ~types:[ Duodb.Datatype.Text; Duodb.Datatype.Number ]
      ~tuples:
        [ [ Tsq.Exact (Value.Text "Forrest Gump"); Tsq.Any ];
          [ Tsq.Exact (Value.Text "Gravity"); Tsq.Any ] ]
      ~sorted:true ()
  in
  (* [loosen] keeps only the first tuple and clears tau: the rebase must
     re-impose both. *)
  check_warm_vs_cold ~name:"sorted-toggle"
    (Lazy.force movie_session)
    ~nlq:"movie names and years from earliest to most recent" ~literals:[]
    ~tight

(* --- session lifecycle --------------------------------------------- *)

let movies_nlq = "Find all movies from before 1995"
let movies_literals = [ Value.Int 1995 ]

let make_session ?tsq duo =
  Session.create ~sid:1 ~db_name:"movies" ~config ~nlq:movies_nlq ?tsq
    ~literals:movies_literals duo

let finish s =
  let guard = ref 0 in
  while Session.status s = Session.Running && !guard < 10_000 do
    incr guard;
    Session.step ~max_pops:500 s
  done;
  Alcotest.(check string) "session ran to completion" "finished"
    (Session.status_name (Session.status s))

let test_session_warm_refine () =
  let duo = Lazy.force movie_session in
  let s = make_session ~tsq:base duo in
  finish s;
  (* Tightening edit: exclude a row no <1995 candidate returns anyway. *)
  let tight = Tsq.add_negative base [ Tsq.Exact (Value.Text "Gravity") ] in
  Session.refine s tight;
  Alcotest.(check int) "refinements" 1 (Session.refinements s);
  Alcotest.(check int) "served by rebase" 1 (Session.rebased s);
  finish s;
  let o = Session.outcome s in
  Alcotest.(check int) "outcome reports the rebase" 1 o.Enumerate.out_rebases;
  let solo =
    Duoquest.synthesize ~config ~tsq:tight ~literals:movies_literals duo
      ~nlq:movies_nlq ()
  in
  Alcotest.(check (list string)) "refined session = solo run" (sqls solo)
    (sqls o);
  Session.close s;
  Alcotest.(check string) "close preserves Finished" "finished"
    (Session.status_name (Session.status s))

let test_session_incomparable_fallback () =
  let duo = Lazy.force movie_session in
  let s = make_session ~tsq:base duo in
  finish s;
  (* Width edit: the warm path must refuse and restart from the root. *)
  let wide =
    Tsq.make
      ~types:[ Duodb.Datatype.Text; Duodb.Datatype.Number ]
      ~tuples:[ [ Tsq.Exact (Value.Text "Forrest Gump"); Tsq.Any ] ]
      ()
  in
  check_refines "edit classifies incomparable" Tsq.Incomparable ~old:base
    ~new_:wide;
  Session.refine s wide;
  Alcotest.(check int) "refinements" 1 (Session.refinements s);
  Alcotest.(check int) "no rebase taken" 0 (Session.rebased s);
  finish s;
  let o = Session.outcome s in
  Alcotest.(check int) "fresh run, no rebases" 0 o.Enumerate.out_rebases;
  let solo =
    Duoquest.synthesize ~config ~tsq:wide ~literals:movies_literals duo
      ~nlq:movies_nlq ()
  in
  Alcotest.(check (list string)) "fallback = solo from-root run" (sqls solo)
    (sqls o);
  Session.close s

let test_close_cancels_running () =
  let duo = Lazy.force movie_session in
  let s = make_session ~tsq:base duo in
  (* never stepped: still Running *)
  Session.close s;
  Alcotest.(check string) "interrupted run reports cancelled" "cancelled"
    (Session.status_name (Session.status s))

let test_empty_outcome_not_shared () =
  let duo = Lazy.force movie_session in
  let s = make_session ~tsq:base duo in
  Session.close s;
  (* closed before any step: outcome falls back to the empty record *)
  let o1 = Session.outcome s in
  Alcotest.(check int) "fresh empty outcome" 0 o1.Enumerate.out_stats.Verify.pruned;
  o1.Enumerate.out_stats.Verify.pruned <- 99;
  let o2 = Session.outcome s in
  Alcotest.(check int) "mutation does not leak across calls" 0
    o2.Enumerate.out_stats.Verify.pruned

let suite =
  [
    Alcotest.test_case "classifier: tightenings" `Quick
      test_classifier_tightenings;
    Alcotest.test_case "classifier: incomparable edits" `Quick
      test_classifier_incomparable;
    Alcotest.test_case "fig2 warm = cold (Full)" `Quick
      (test_movie_detail Tsq_synth.Full);
    Alcotest.test_case "fig2 warm = cold (Partial)" `Quick
      (test_movie_detail Tsq_synth.Partial);
    Alcotest.test_case "fig2 warm = cold (Minimal)" `Quick
      (test_movie_detail Tsq_synth.Minimal);
    Alcotest.test_case "MAS warm = cold (Full)" `Slow
      (test_mas_detail Tsq_synth.Full);
    Alcotest.test_case "MAS warm = cold (Partial)" `Slow
      (test_mas_detail Tsq_synth.Partial);
    Alcotest.test_case "MAS warm = cold (Minimal)" `Slow
      (test_mas_detail Tsq_synth.Minimal);
    Alcotest.test_case "sorted toggle rebases" `Quick
      test_sorted_toggle_rebase;
    Alcotest.test_case "session warm refine" `Quick test_session_warm_refine;
    Alcotest.test_case "session incomparable fallback" `Quick
      test_session_incomparable_fallback;
    Alcotest.test_case "close cancels a running session" `Quick
      test_close_cancels_running;
    Alcotest.test_case "empty outcome is per-call" `Quick
      test_empty_outcome_not_shared;
  ]
