(* The verification cascade: stage behaviour on hand-built partial states,
   plus the anti-pruning property — no prefix of a satisfying query is ever
   pruned (the soundness of partial-query pruning, Section 3.4). *)

module Verify = Duocore.Verify
module Partial = Duocore.Partial
module Tsq = Duocore.Tsq
module Model = Duoguide.Model
module Enumerate = Duocore.Enumerate
module Value = Duodb.Value

let db = Fixtures.movie_db ()
let schema = Fixtures.movie_schema
let column t c = Duodb.Schema.find_column_exn schema ~table:t c

let env ?tsq ?(literals = []) () = Verify.make_env ~db ~tsq ~literals ()

let with_kw ?(where = false) ?(group = false) ?(order = false) phase =
  { Partial.root with
    Partial.phase;
    kw = { Model.kw_where = where; kw_group = group; kw_order = order } }

let test_clauses_sorted_mismatch () =
  let tsq = Tsq.make ~sorted:true () in
  let e = env ~tsq () in
  Alcotest.(check bool) "no-order kw fails sorted TSQ" false
    (Verify.verify_clauses e (with_kw Partial.P_num_proj));
  Alcotest.(check bool) "order kw passes" true
    (Verify.verify_clauses e (with_kw ~order:true Partial.P_num_proj));
  Alcotest.(check bool) "undecided kw passes" true
    (Verify.verify_clauses e Partial.root)

let test_clauses_sorted_is_implication () =
  (* regression: an unchecked sorted box must not prune ORDER BY states —
     Definition 2.4 reads tau as an implication, not an equivalence *)
  let tsq = Tsq.make ~sorted:false () in
  let e = env ~tsq () in
  Alcotest.(check bool) "order kw survives unsorted TSQ" true
    (Verify.verify_clauses e (with_kw ~order:true Partial.P_num_proj));
  (* end to end: an ORDER BY gold stays reachable under a sorted=false
     sketch built from its own (ordered) result *)
  let gold =
    Fixtures.parse
      "SELECT movies.name, movies.year FROM movies ORDER BY movies.year ASC"
  in
  let res = Duoengine.Executor.run_exn db gold in
  let tuple =
    match res.Duoengine.Executor.res_rows with
    | r :: _ -> Array.to_list (Array.map (fun v -> Tsq.Exact v) r)
    | [] -> Alcotest.fail "gold returned no rows"
  in
  let tsq =
    Tsq.make
      ~types:[ Duodb.Datatype.Text; Duodb.Datatype.Number ]
      ~tuples:[ tuple ] ~sorted:false ()
  in
  let session = Duocore.Duoquest.create_session db in
  let config =
    { Enumerate.default_config with
      Enumerate.max_pops = 60_000;
      max_candidates = 80;
      time_budget_s = 20.0 }
  in
  let outcome =
    Duocore.Duoquest.synthesize ~config ~tsq ~literals:[] session
      ~nlq:"movie names and years from earliest to latest" ()
  in
  Alcotest.(check bool) "ORDER BY gold emitted" true
    (Option.is_some (Duocore.Duoquest.rank_of outcome ~gold))

let test_clauses_limit () =
  let tsq = Tsq.make ~sorted:true ~limit:3 () in
  let e = env ~tsq () in
  let state = { (with_kw ~order:true Partial.P_done) with Partial.limit = Some 5 } in
  Alcotest.(check bool) "limit above k fails" false (Verify.verify_clauses e state);
  let state = { state with Partial.limit = Some 2 } in
  Alcotest.(check bool) "limit below k ok" true (Verify.verify_clauses e state)

let slot table col_name agg =
  { Partial.pj_target = Model.Target_column (column table col_name);
    pj_agg = agg }

let test_column_types_prefix () =
  let tsq = Tsq.make ~types:[ Duodb.Datatype.Text; Duodb.Datatype.Number ] () in
  let e = env ~tsq () in
  let good =
    { (with_kw (Partial.P_proj_agg 0)) with
      Partial.nproj = 2;
      projs = [ slot "movies" "name" (Some None) ] }
  in
  Alcotest.(check bool) "text prefix ok" true (Verify.verify_column_types e good);
  let bad = { good with Partial.projs = [ slot "movies" "year" (Some None) ] } in
  Alcotest.(check bool) "number in text slot fails" false (Verify.verify_column_types e bad);
  let wrong_width = { good with Partial.nproj = 3 } in
  Alcotest.(check bool) "width mismatch fails" false
    (Verify.verify_column_types e wrong_width)

let test_column_probe () =
  let tsq = Tsq.make ~tuples:[ [ Tsq.Exact (Value.Text "Forrest Gump") ] ] () in
  let e = env ~tsq () in
  let movie_state =
    { (with_kw (Partial.P_proj_agg 0)) with
      Partial.nproj = 1;
      projs = [ slot "movies" "name" (Some None) ] }
  in
  Alcotest.(check bool) "movies.name contains the value" true
    (Verify.verify_by_column e movie_state);
  let actor_state =
    { movie_state with Partial.projs = [ slot "actor" "name" (Some None) ] }
  in
  Alcotest.(check bool) "actor.name does not" false
    (Verify.verify_by_column e actor_state);
  Alcotest.(check bool) "undecided aggregate is never pruned" true
    (Verify.verify_by_column e
       { movie_state with Partial.projs = [ slot "actor" "name" None ] })

let test_avg_range_check () =
  let tsq = Tsq.make ~tuples:[ [ Tsq.Exact (Value.Int 100000) ] ] () in
  let e = env ~tsq () in
  let avg_year =
    { (with_kw (Partial.P_where_num)) with
      Partial.nproj = 1;
      projs = [ slot "movies" "year" (Some (Some Duosql.Ast.Avg)) ] }
  in
  (* years range 1993-2017: an average of 100000 is impossible *)
  Alcotest.(check bool) "impossible AVG pruned" false (Verify.verify_by_column e avg_year);
  let tsq2 = Tsq.make ~tuples:[ [ Tsq.Exact (Value.Int 2000) ] ] () in
  let e2 = env ~tsq:tsq2 () in
  Alcotest.(check bool) "plausible AVG kept" true (Verify.verify_by_column e2 avg_year)

let test_count_sum_never_pruned_column_wise () =
  let tsq = Tsq.make ~tuples:[ [ Tsq.Exact (Value.Int 99999) ] ] () in
  let e = env ~tsq () in
  let st agg =
    { (with_kw Partial.P_where_num) with
      Partial.nproj = 1;
      projs = [ slot "movies" "year" (Some (Some agg)) ] }
  in
  Alcotest.(check bool) "COUNT unconstrained" true
    (Verify.verify_by_column e (st Duosql.Ast.Count));
  Alcotest.(check bool) "SUM unconstrained" true
    (Verify.verify_by_column e (st Duosql.Ast.Sum))

let test_literals_must_be_used () =
  let e = env ~literals:[ Value.Int 1995 ] () in
  let q_with = Fixtures.parse "SELECT movies.name FROM movies WHERE movies.year < 1995" in
  let q_without = Fixtures.parse "SELECT movies.name FROM movies" in
  Alcotest.(check bool) "literal used" true (Verify.verify_complete e q_with);
  Alcotest.(check bool) "literal unused" false (Verify.verify_complete e q_without)

let test_limit_counts_as_literal_use () =
  let e = env ~literals:[ Value.Int 3 ] () in
  let q = Fixtures.parse "SELECT movies.name FROM movies ORDER BY movies.year DESC LIMIT 3" in
  Alcotest.(check bool) "LIMIT 3 uses literal 3" true (Verify.verify_complete e q)

(* Anti-pruning property: run full GPQE on a task where the gold query is
   known to satisfy the sketch; the gold must be emitted, which can only
   happen if none of its prefixes was pruned. *)
let prop_no_prefix_of_gold_pruned =
  QCheck.Test.make ~name:"gold query survives pruning" ~count:8
    (QCheck.make
       (QCheck.Gen.oneofl
          [ ("SELECT movies.name FROM movies WHERE movies.year < 1995",
             "movies from before 1995", [ Value.Int 1995 ]);
            ("SELECT movies.name, movies.year FROM movies ORDER BY movies.year ASC",
             "movie names and years from earliest to latest", []);
            ("SELECT a.name, COUNT(*) FROM actor a JOIN starring s ON a.aid = s.aid \
              GROUP BY a.name",
             "actors and the number of movies each actor starred in", []) ]))
    (fun (sql, nlq, literals) ->
      let gold = Fixtures.parse sql in
      let rng = Duobench.Rng.create (Hashtbl.hash sql) in
      match Duobench.Tsq_synth.synthesize rng db gold ~detail:Duobench.Tsq_synth.Full with
      | None -> false
      | Some tsq ->
          let session = Duocore.Duoquest.create_session db in
          let config =
            { Enumerate.default_config with
              Enumerate.max_pops = 60_000;
              max_candidates = 80;
              time_budget_s = 20.0 }
          in
          let outcome =
            Duocore.Duoquest.synthesize ~config ~tsq ~literals session ~nlq ()
          in
          Option.is_some (Duocore.Duoquest.rank_of outcome ~gold))

let suite =
  [
    Alcotest.test_case "clauses: sorted flag" `Quick test_clauses_sorted_mismatch;
    Alcotest.test_case "clauses: tau is an implication" `Quick
      test_clauses_sorted_is_implication;
    Alcotest.test_case "clauses: limit" `Quick test_clauses_limit;
    Alcotest.test_case "column types on prefixes" `Quick test_column_types_prefix;
    Alcotest.test_case "column probes" `Quick test_column_probe;
    Alcotest.test_case "AVG range check" `Quick test_avg_range_check;
    Alcotest.test_case "COUNT/SUM skipped column-wise" `Quick test_count_sum_never_pruned_column_wise;
    Alcotest.test_case "literal usage" `Quick test_literals_must_be_used;
    Alcotest.test_case "limit as literal use" `Quick test_limit_counts_as_literal_use;
    QCheck_alcotest.to_alcotest prop_no_prefix_of_gold_pruned;
  ]
