module Steiner = Duocore.Steiner
module Joinpath = Duocore.Joinpath
module Mas = Duobench.Mas

let movie_schema = Fixtures.movie_schema

let test_single_terminal () =
  match Steiner.tree movie_schema [ "actor" ] with
  | Some tr ->
      Alcotest.(check (list string)) "just actor" [ "actor" ] tr.Steiner.tr_tables;
      Alcotest.(check int) "no edges" 0 (Steiner.size tr)
  | None -> Alcotest.fail "expected tree"

let test_adjacent_terminals () =
  match Steiner.tree movie_schema [ "actor"; "starring" ] with
  | Some tr -> Alcotest.(check int) "one edge" 1 (Steiner.size tr)
  | None -> Alcotest.fail "expected tree"

let test_steiner_node_inserted () =
  (* actor and movies connect only through starring. *)
  match Steiner.tree movie_schema [ "actor"; "movies" ] with
  | Some tr ->
      Alcotest.(check bool) "starring included" true
        (List.mem "starring" tr.Steiner.tr_tables);
      Alcotest.(check int) "two edges" 2 (Steiner.size tr)
  | None -> Alcotest.fail "expected tree"

let test_disconnected () =
  let schema =
    Duodb.Schema.make ~name:"iso"
      [ Duodb.Schema.table "a" [ ("x", Duodb.Datatype.Number) ] ~pk:[ "x" ];
        Duodb.Schema.table "b" [ ("y", Duodb.Datatype.Number) ] ~pk:[ "y" ] ]
      []
  in
  Alcotest.(check bool) "no tree" true (Option.is_none (Steiner.tree schema [ "a"; "b" ]))

let test_mas_four_terminals () =
  (* author, publication, conference: connected through writes. *)
  match Steiner.tree Mas.schema [ "author"; "publication"; "conference" ] with
  | Some tr ->
      Alcotest.(check bool) "writes on the path" true
        (List.mem "writes" tr.Steiner.tr_tables);
      Alcotest.(check bool) "tree edges = tables - 1" true
        (Steiner.size tr = List.length tr.Steiner.tr_tables - 1)
  | None -> Alcotest.fail "expected tree"

let test_shortest_path () =
  match Steiner.shortest_path Mas.schema "keyword" "publication" with
  | Some edges -> Alcotest.(check int) "two hops via publication_keyword" 2 (List.length edges)
  | None -> Alcotest.fail "expected path"

let test_joinpath_construct_base_first () =
  let clauses = Joinpath.construct movie_schema ~tables:[ "actor" ] in
  (match clauses with
  | first :: _ ->
      Alcotest.(check (list string)) "base clause first" [ "actor" ]
        first.Duosql.Ast.f_tables
  | [] -> Alcotest.fail "expected clauses");
  Alcotest.(check bool) "one-hop extension present" true
    (List.exists
       (fun f -> List.mem "starring" f.Duosql.Ast.f_tables)
       clauses)

let test_joinpath_depth2 () =
  let d1 = Joinpath.construct ~depth:1 Mas.schema ~tables:[ "organization" ] in
  let d2 = Joinpath.construct ~depth:2 Mas.schema ~tables:[ "organization" ] in
  Alcotest.(check bool) "depth-2 strictly larger" true (List.length d2 > List.length d1);
  (* the A3 join path: organization - author - writes *)
  Alcotest.(check bool) "org-author-writes reachable at depth 2" true
    (List.exists
       (fun f ->
         List.sort String.compare f.Duosql.Ast.f_tables
         = [ "author"; "organization"; "writes" ])
       d2)

let test_joinpath_empty_tables () =
  let clauses = Joinpath.construct movie_schema ~tables:[] in
  Alcotest.(check int) "one clause per table" 3 (List.length clauses)

let test_joinpath_cache_keyed_by_structure () =
  (* regression (found by Duocheck): two same-named schemas with different
     FK graphs must not be served each other's memoized join paths *)
  let mk child_parent_fk =
    let t name cols = Duodb.Schema.table name cols ~pk:[ name ^ "_id" ] in
    Duodb.Schema.make ~name:"fuzzdb"
      [ t "users" [ ("users_id", Duodb.Datatype.Number) ];
        t "orders"
          [ ("orders_id", Duodb.Datatype.Number);
            ("users_ref", Duodb.Datatype.Number) ];
        t "items"
          [ ("items_id", Duodb.Datatype.Number);
            (fst child_parent_fk, Duodb.Datatype.Number) ] ]
      [ Duodb.Schema.fk ("orders", "users_ref") ("users", "users_id");
        Duodb.Schema.fk ("items", fst child_parent_fk) (snd child_parent_fk) ]
  in
  let s1 = mk ("users_ref", ("users", "users_id")) in
  let s2 = mk ("orders_ref", ("orders", "orders_id")) in
  let joins_of s =
    List.concat_map
      (fun f -> f.Duosql.Ast.f_joins)
      (Joinpath.construct s ~tables:[ "items"; "users" ])
  in
  ignore (joins_of s1);
  (* under the name-only cache key this returned s1's items.users_ref edge *)
  List.iter
    (fun (j : Duosql.Ast.join_edge) ->
      List.iter
        (fun (c : Duosql.Ast.col_ref) ->
          Alcotest.(check bool)
            (Printf.sprintf "column %s.%s exists in s2" c.Duosql.Ast.cr_table
               c.Duosql.Ast.cr_col)
            true
            (Option.is_some
               (Duodb.Schema.find_column s2 ~table:c.Duosql.Ast.cr_table
                  c.Duosql.Ast.cr_col)))
        [ j.Duosql.Ast.j_from; j.Duosql.Ast.j_to ])
    (joins_of s2)

let test_covers () =
  let f = List.hd (Joinpath.construct movie_schema ~tables:[ "actor"; "movies" ]) in
  Alcotest.(check bool) "covers terminals" true (Joinpath.covers f [ "actor"; "movies" ]);
  Alcotest.(check bool) "does not cover ghosts" false (Joinpath.covers f [ "ghost" ])

(* Property: Steiner trees over random terminal sets of the MAS schema are
   valid trees covering all terminals. *)
let prop_tree_valid =
  let tables = List.map (fun t -> t.Duodb.Schema.tbl_name) Mas.schema.Duodb.Schema.tables in
  QCheck.Test.make ~name:"steiner trees cover terminals and are trees" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 4) (oneofl tables))
    (fun terminals ->
      match Steiner.tree Mas.schema terminals with
      | None -> false (* MAS join graph is connected *)
      | Some tr ->
          List.for_all (fun t -> List.mem t tr.Steiner.tr_tables) terminals
          && Steiner.size tr = List.length tr.Steiner.tr_tables - 1)

let suite =
  [
    Alcotest.test_case "single terminal" `Quick test_single_terminal;
    Alcotest.test_case "adjacent terminals" `Quick test_adjacent_terminals;
    Alcotest.test_case "steiner node inserted" `Quick test_steiner_node_inserted;
    Alcotest.test_case "disconnected graph" `Quick test_disconnected;
    Alcotest.test_case "MAS multi-terminal" `Quick test_mas_four_terminals;
    Alcotest.test_case "shortest path" `Quick test_shortest_path;
    Alcotest.test_case "joinpath: base first + extension" `Quick test_joinpath_construct_base_first;
    Alcotest.test_case "joinpath: depth 2" `Quick test_joinpath_depth2;
    Alcotest.test_case "joinpath: no tables" `Quick test_joinpath_empty_tables;
    Alcotest.test_case "joinpath: cache keyed by structure" `Quick
      test_joinpath_cache_keyed_by_structure;
    Alcotest.test_case "joinpath: covers" `Quick test_covers;
    QCheck_alcotest.to_alcotest prop_tree_valid;
  ]
