(* Long-running Duocheck fuzz entry point: `dune build @fuzz`.

   The run is reproducible: the seed and the iteration-count multiplier
   are printed at startup and can be pinned via the FUZZ_SEED and
   FUZZ_MULT environment variables (QCheck shrinking then prints a
   minimal query/TSQ pair for any failure). *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try int_of_string s with _ -> default)
  | None -> default

let () =
  let seed = env_int "FUZZ_SEED" 421733 in
  let mult = env_int "FUZZ_MULT" 25 in
  Printf.printf "duocheck fuzz: FUZZ_SEED=%d FUZZ_MULT=%d\n%!" seed mult;
  let rand = Random.State.make [| seed |] in
  exit
    (QCheck_base_runner.run_tests ~colors:false ~verbose:true ~rand
       (Duocheck.Props.tests ~mult ()))
