module Tsq = Duocore.Tsq
module Value = Duodb.Value

let db = Fixtures.movie_db ()
let parse = Fixtures.parse
let t s = Value.Text s
let i n = Value.Int n

let test_cell_matching () =
  Alcotest.(check bool) "any" true (Tsq.cell_matches Tsq.Any (t "x"));
  Alcotest.(check bool) "exact hit" true (Tsq.cell_matches (Tsq.Exact (i 5)) (i 5));
  Alcotest.(check bool) "exact cross-repr" true
    (Tsq.cell_matches (Tsq.Exact (i 5)) (Value.Float 5.0));
  Alcotest.(check bool) "exact miss" false (Tsq.cell_matches (Tsq.Exact (i 5)) (i 6));
  Alcotest.(check bool) "range hit" true
    (Tsq.cell_matches (Tsq.Range (i 2010, i 2017)) (i 2013));
  Alcotest.(check bool) "range boundary" true
    (Tsq.cell_matches (Tsq.Range (i 2010, i 2017)) (i 2017));
  Alcotest.(check bool) "range miss" false
    (Tsq.cell_matches (Tsq.Range (i 2010, i 2017)) (i 2009));
  Alcotest.(check bool) "range rejects null" false
    (Tsq.cell_matches (Tsq.Range (i 0, i 9)) Value.Null)

let test_empty_tsq_accepts_plain_query () =
  Alcotest.(check bool) "plain query ok" true
    (Tsq.satisfies Tsq.empty db (parse "SELECT movies.name FROM movies"))

let test_sorted_flag_is_an_implication () =
  (* tau = false leaves the order unconstrained: Definition 2.4 only
     requires ORDER BY *when* the sorted box is checked, so an unchecked
     box must not reject queries that happen to sort their output. *)
  Alcotest.(check bool) "unsorted TSQ accepts ORDER BY query" true
    (Tsq.satisfies Tsq.empty db
       (parse "SELECT movies.name FROM movies ORDER BY movies.year ASC"));
  (* the forward implication still holds: tau = true needs ORDER BY *)
  Alcotest.(check bool) "sorted TSQ rejects unsorted query" false
    (Tsq.satisfies (Tsq.make ~sorted:true ()) db
       (parse "SELECT movies.name FROM movies"))

let test_type_annotations () =
  let tsq = Tsq.make ~types:[ Duodb.Datatype.Text; Duodb.Datatype.Number ] () in
  Alcotest.(check bool) "matching types" true
    (Tsq.satisfies tsq db (parse "SELECT movies.name, movies.year FROM movies"));
  Alcotest.(check bool) "wrong arity" false
    (Tsq.satisfies tsq db (parse "SELECT movies.name FROM movies"));
  Alcotest.(check bool) "wrong types" false
    (Tsq.satisfies tsq db (parse "SELECT movies.name, actor.name FROM movies JOIN \
                                  starring ON movies.mid = starring.mid JOIN actor \
                                  ON starring.aid = actor.aid"))

let test_example_tuples () =
  let tsq =
    Tsq.make ~tuples:[ [ Tsq.Exact (t "Forrest Gump") ] ] ()
  in
  Alcotest.(check bool) "movie names contain it" true
    (Tsq.satisfies tsq db (parse "SELECT movies.name FROM movies"));
  Alcotest.(check bool) "actor names do not" false
    (Tsq.satisfies tsq db (parse "SELECT actor.name FROM actor"))

let test_distinct_tuples_required () =
  (* Two identical example tuples need two distinct result rows. *)
  let tsq =
    Tsq.make
      ~tuples:[ [ Tsq.Exact (t "Tom Hanks") ]; [ Tsq.Exact (t "Tom Hanks") ] ]
      ()
  in
  Alcotest.(check bool) "one Tom Hanks row is not enough" false
    (Tsq.satisfies tsq db (parse "SELECT actor.name FROM actor"));
  (* the starring join yields multiple Tom Hanks rows *)
  Alcotest.(check bool) "join provides distinct rows" true
    (Tsq.satisfies tsq db
       (parse "SELECT a.name FROM actor a JOIN starring s ON a.aid = s.aid"))

let test_ordered_matching () =
  let tsq =
    Tsq.make
      ~tuples:
        [ [ Tsq.Exact (t "Forrest Gump"); Tsq.Any ];
          [ Tsq.Exact (t "Gravity"); Tsq.Any ] ]
      ~sorted:true ()
  in
  Alcotest.(check bool) "ascending year: Gump (1994) before Gravity (2013)" true
    (Tsq.satisfies tsq db
       (parse "SELECT movies.name, movies.year FROM movies ORDER BY movies.year ASC"));
  Alcotest.(check bool) "descending year breaks the order" false
    (Tsq.satisfies tsq db
       (parse "SELECT movies.name, movies.year FROM movies ORDER BY movies.year DESC"))

let test_limit_flag () =
  let tsq = Tsq.make ~sorted:true ~limit:3 () in
  Alcotest.(check bool) "limit 3 ok" true
    (Tsq.satisfies tsq db
       (parse "SELECT movies.name FROM movies ORDER BY movies.year DESC LIMIT 3"));
  Alcotest.(check bool) "limit 5 exceeds k" false
    (Tsq.satisfies tsq db
       (parse "SELECT movies.name FROM movies ORDER BY movies.year DESC LIMIT 5"));
  Alcotest.(check bool) "missing limit fails" false
    (Tsq.satisfies tsq db
       (parse "SELECT movies.name FROM movies ORDER BY movies.year DESC"))

let test_shared_position_matcher () =
  let rows = [ [| t "a"; i 1 |]; [| t "b"; i 2 |] ] in
  let tuples =
    [ [ Tsq.Exact (t "a"); Tsq.Exact (i 1) ]; [ Tsq.Exact (t "b"); Tsq.Any ] ]
  in
  (* On full-width position lists the restricted matcher and the plain
     distinct matcher are the same function (they share the backtracking
     core), so their verdicts must coincide. *)
  Alcotest.(check bool) "full positions agree with distinct matcher"
    (Tsq.distinct_match_atleast 2 tuples rows)
    (Tsq.distinct_match_on ~support:2 [ (0, 0); (1, 1) ] tuples rows);
  (* Restricting to the decided column ignores the undecided cell... *)
  let tuples' = [ [ Tsq.Exact (t "a"); Tsq.Exact (i 99) ] ] in
  Alcotest.(check bool) "restricted positions skip undecided cells" true
    (Tsq.distinct_match_on ~support:1 [ (0, 0) ] tuples' rows);
  (* ... while the full-width check still sees the mismatch. *)
  Alcotest.(check bool) "full-width check fails on the bad cell" false
    (Tsq.distinct_match_atleast 1 tuples' rows);
  (* Cell indices beyond a tuple's width are unconstrained. *)
  Alcotest.(check bool) "out-of-width cell index matches anything" true
    (Tsq.distinct_match_on ~support:1 [ (1, 5) ] [ [ Tsq.Exact (t "a") ] ] rows);
  (* Distinctness: two identical tuples need two distinct rows. *)
  Alcotest.(check bool) "distinctness enforced through positions" false
    (Tsq.distinct_match_on ~support:2 [ (0, 0) ]
       [ [ Tsq.Exact (t "a") ]; [ Tsq.Exact (t "a") ] ]
       rows)

let test_width () =
  Alcotest.(check (option int)) "from types" (Some 2)
    (Tsq.width (Tsq.make ~types:[ Duodb.Datatype.Text; Duodb.Datatype.Number ] ()));
  Alcotest.(check (option int)) "from tuples" (Some 1)
    (Tsq.width (Tsq.make ~tuples:[ [ Tsq.Any ] ] ()));
  Alcotest.(check (option int)) "unknown" None (Tsq.width Tsq.empty)

(* Soundness property: every query accepted by [satisfies] really contains
   a distinct matching row per example tuple, checked independently. *)
let prop_satisfies_soundness =
  QCheck.Test.make ~name:"satisfies implies per-tuple witnesses" ~count:60
    QCheck.(pair (int_range 1990 2020) bool)
    (fun (year, asc) ->
      let q =
        Fixtures.parse
          (Printf.sprintf
             "SELECT movies.name, movies.year FROM movies WHERE movies.year \
              >= %d ORDER BY movies.year %s"
             year
             (if asc then "ASC" else "DESC"))
      in
      let res = Duoengine.Executor.run_exn db q in
      match res.Duoengine.Executor.res_rows with
      | first :: _ ->
          let tuple = Array.to_list (Array.map (fun v -> Tsq.Exact v) first) in
          let tsq = Tsq.make ~tuples:[ tuple ] ~sorted:true () in
          Tsq.satisfies tsq db q
      | [] -> QCheck.assume_fail ())

let suite =
  [
    Alcotest.test_case "cell matching" `Quick test_cell_matching;
    Alcotest.test_case "empty TSQ accepts" `Quick test_empty_tsq_accepts_plain_query;
    Alcotest.test_case "tau=false leaves order unconstrained" `Quick
      test_sorted_flag_is_an_implication;
    Alcotest.test_case "type annotations" `Quick test_type_annotations;
    Alcotest.test_case "example tuples" `Quick test_example_tuples;
    Alcotest.test_case "distinct witnesses" `Quick test_distinct_tuples_required;
    Alcotest.test_case "ordered matching" `Quick test_ordered_matching;
    Alcotest.test_case "limit flag" `Quick test_limit_flag;
    Alcotest.test_case "shared position matcher" `Quick test_shared_position_matcher;
    Alcotest.test_case "width" `Quick test_width;
    QCheck_alcotest.to_alcotest prop_satisfies_soundness;
  ]
